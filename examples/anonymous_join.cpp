// Anonymous join over an onion circuit (paper §7.3): a privacy-conscious
// user joins her small local `interests` table against a public repository
// without revealing her identity to the repository owner.
//
//   ./build/examples/anonymous_join
#include <cstdio>

#include "apps/anonjoin.h"

using namespace secureblox;

int main() {
  apps::AnonJoinConfig config;
  config.num_nodes = 4;  // initiator -> relay -> relay -> data owner
  config.interests = 8;
  config.publicdata = 150;
  config.value_domain = 30;

  std::printf("anonymous join through a %zu-hop onion circuit\n\n",
              config.num_nodes - 1);

  auto result = apps::RunAnonJoin(config);
  if (!result.ok()) {
    std::fprintf(stderr, "failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("results at the initiator : %zu (expected %zu)\n",
              result->results_at_initiator, result->expected_results);
  std::printf("initiator identity hidden from the data owner: %s\n",
              result->initiator_hidden_from_owner ? "yes" : "NO (bug!)");
  std::printf("messages relayed          : %llu\n",
              static_cast<unsigned long long>(
                  result->metrics.total_messages));
  std::printf(
      "\nRequests left the initiator as layered AES ciphertexts; each relay "
      "peeled\none layer and learned only its neighbours. The owner saw "
      "requests keyed by\ncircuit id, answered by hash of the join key, and "
      "replies were onion-wrapped\nback along the same circuit.\n");
  return result->results_at_initiator == result->expected_results &&
                 result->initiator_hidden_from_owner
             ? 0
             : 1;
}
