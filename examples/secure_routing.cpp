// Secure path-vector routing (paper §7.1): authenticated, encrypted route
// advertisements over a random 12-node topology. Prints node 0's converged
// routing table and the cost of security.
//
//   ./build/examples/secure_routing [nodes]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "apps/pathvector.h"

using namespace secureblox;

int main(int argc, char** argv) {
  size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;

  std::printf("running the path-vector protocol on a %zu-node random graph "
              "(avg degree 3)\n\n", nodes);

  struct Row {
    const char* name;
    policy::AuthScheme auth;
    policy::EncScheme enc;
  };
  const Row rows[] = {
      {"NoAuth", policy::AuthScheme::kNone, policy::EncScheme::kNone},
      {"RSA-AES", policy::AuthScheme::kRsa, policy::EncScheme::kAes},
  };

  apps::PathVectorResult last;
  for (const Row& row : rows) {
    apps::PathVectorConfig config;
    config.num_nodes = nodes;
    config.auth = row.auth;
    config.enc = row.enc;
    config.graph_seed = 7;
    auto result = apps::RunPathVector(config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", row.name,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8s fixpoint %.3fs | %.1f KB/node | mean txn %.2f ms | "
                "%llu messages\n",
                row.name, result->metrics.fixpoint_latency_s,
                result->metrics.MeanPerNodeKb(),
                result->metrics.MeanTxDurationMs(),
                static_cast<unsigned long long>(
                    result->metrics.total_messages));
    last = std::move(result).value();
  }

  std::printf("\nnode p0's routing table (with RSA-AES advertisements):\n");
  std::map<size_t, int64_t> routes(last.best_costs[0].begin(),
                                   last.best_costs[0].end());
  for (const auto& [dst, cost] : routes) {
    std::printf("  p0 -> p%-3zu : %lld hop(s)\n", dst,
                static_cast<long long>(cost));
  }

  auto edges = apps::RandomConnectedGraph(nodes, 3.0, 7);
  auto reference = apps::ReferenceHopCounts(nodes, edges);
  bool all_match = true;
  for (const auto& [dst, cost] : routes) {
    all_match &= (reference[0][dst] == cost);
  }
  std::printf("\nroutes match the BFS reference: %s\n",
              all_match ? "yes" : "NO (bug!)");
  return all_match ? 0 : 1;
}
