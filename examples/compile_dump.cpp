// compile_dump: run the BloxGenerics compiler on a program and print the
// meta-database and the expanded DatalogLB code — a window into the
// paper's Figure 3 pipeline.
//
//   ./build/examples/compile_dump [file.blox]
// Without an argument, a built-in sample (reachable + RSA says policy) is
// compiled.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "datalog/parser.h"
#include "generics/compiler.h"
#include "policy/says_policy.h"

using namespace secureblox;

int main(int argc, char** argv) {
  std::string source;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  } else {
    policy::SaysPolicyOptions opts;
    opts.auth = policy::AuthScheme::kRsa;
    opts.enc = policy::EncScheme::kAes;
    opts.accept = policy::AcceptMode::kTrustworthy;
    source = policy::PreludeSource() + R"(
link(X, Y) -> principal(X), principal(Y).
reachable(X, Y) -> principal(X), principal(Y).
reachable(X, Y) <- link(X, Y).
reachable(X, Y) <- link(X, Z), says[`reachable](Z, S, Z, Y), self[] = S.
exportable(`reachable).
)" + policy::SaysPolicySource(opts);
  }

  auto program = datalog::Parse(source, argc > 1 ? argv[1] : "<sample>");
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  generics::BloxGenericsCompiler compiler;
  auto expanded = compiler.Compile(program.value());
  if (!expanded.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 expanded.status().ToString().c_str());
    return 1;
  }

  std::printf("=== meta database ===\n");
  for (const auto& name : expanded->meta.RelationNames()) {
    const auto& tuples = expanded->meta.Tuples(name);
    if (tuples.empty()) continue;
    for (const auto& t : tuples) {
      std::printf("%s(", name.c_str());
      for (size_t i = 0; i < t.size(); ++i) {
        std::printf("%s%s", i ? ", " : "", t[i].c_str());
      }
      std::printf(")\n");
    }
  }

  std::printf("\n=== generated predicates ===\n");
  for (const auto& name : expanded->generated_predicates) {
    std::printf("%s\n", name.c_str());
  }

  std::printf("\n=== expanded program ===\n%s",
              expanded->program.ToString().c_str());
  return 0;
}
