// Authenticated + encrypted parallel hash join (paper §7.2): tables
// partitioned across nodes are rehashed on the join attribute via `says`,
// joined at the hash owners, and shipped to the initiator.
//
//   ./build/examples/secure_hashjoin [nodes]
#include <cstdio>
#include <cstdlib>

#include "apps/hashjoin.h"

using namespace secureblox;

int main(int argc, char** argv) {
  size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;

  std::printf("secure parallel hash join on %zu nodes "
              "(|R|=900, |S|=800, 72 join values)\n\n", nodes);

  struct Row {
    const char* name;
    policy::AuthScheme auth;
    policy::EncScheme enc;
  };
  const Row rows[] = {
      {"NoAuth", policy::AuthScheme::kNone, policy::EncScheme::kNone},
      {"HMAC", policy::AuthScheme::kHmac, policy::EncScheme::kNone},
      {"RSA-AES", policy::AuthScheme::kRsa, policy::EncScheme::kAes},
  };

  for (const Row& row : rows) {
    apps::HashJoinConfig config;
    config.num_nodes = nodes;
    config.auth = row.auth;
    config.enc = row.enc;
    config.seed = 11;
    auto result = apps::RunHashJoin(config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", row.name,
                   result.status().ToString().c_str());
      return 1;
    }
    bool correct = result->results_at_initiator == result->expected_results;
    std::printf("%-8s %zu/%zu join rows at initiator %s | %.3fs to "
                "completion | %.1f KB/node\n",
                row.name, result->results_at_initiator,
                result->expected_results, correct ? "(correct)" : "(WRONG)",
                result->metrics.fixpoint_latency_s,
                result->metrics.MeanPerNodeKb());
    if (!correct) return 1;
  }

  std::printf(
      "\nRehashed tuples crossed the wire inside authenticated (and, for "
      "RSA-AES,\nencrypted) says batches; switching schemes touched only "
      "the policy text.\n");
  return 0;
}
