// Quickstart: the paper's §3.1 motivating example — a secure distributed
// transitive closure ("reachable") over three nodes, with HMAC-
// authenticated `says` exchange.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "dist/cluster.h"
#include "policy/says_policy.h"

using namespace secureblox;
using datalog::Value;

int main() {
  // 1. The application: plain Datalog. Security is NOT mentioned here.
  const char* app = R"(
    link(X, Y) -> principal(X), principal(Y).
    reachable(X, Y) -> principal(X), principal(Y).
    reachable(X, Y) <- link(X, Y).
    reachable(X, Y) <- reachable(X, Z), reachable(Z, Y).
    says[`reachable](S, U, X, Y) <- reachable(X, Y), link(S, U), self[] = S.
    exportable(`reachable).
  )";

  // 2. The security policy: generated says construct with HMAC
  //    authentication; facts accepted only from trustworthy principals.
  policy::SaysPolicyOptions popts;
  popts.auth = policy::AuthScheme::kHmac;
  popts.accept = policy::AcceptMode::kBenign;

  // 3. A three-node simulated cluster: p0 -> p1 -> p2.
  dist::SimCluster::Config cfg;
  cfg.num_nodes = 3;
  cfg.sources = {policy::PreludeSource(), app,
                 policy::SaysPolicySource(popts)};
  cfg.batch_security.auth = policy::AuthScheme::kHmac;
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "quickstart";

  auto cluster = dist::SimCluster::Create(std::move(cfg));
  if (!cluster.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 cluster.status().ToString().c_str());
    return 1;
  }
  (*cluster)->ScheduleInsert(
      0, {{"link", {Value::Str("p0"), Value::Str("p1")}}});
  (*cluster)->ScheduleInsert(
      1, {{"link", {Value::Str("p1"), Value::Str("p2")}}});

  auto metrics = (*cluster)->Run();
  if (!metrics.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 metrics.status().ToString().c_str());
    return 1;
  }

  std::printf("converged in %.3f ms simulated time, %llu messages\n",
              metrics->fixpoint_latency_s * 1000.0,
              static_cast<unsigned long long>(metrics->total_messages));
  for (net::NodeIndex i = 0; i < 3; ++i) {
    auto& ws = (*cluster)->node(i).workspace();
    auto rows = ws.Query("reachable").value();
    std::printf("node %u (%s) knows %zu reachable fact(s):\n", i,
                (*cluster)->node(i).principal().c_str(), rows.size());
    for (const auto& t : rows) {
      std::printf("  reachable(%s, %s)\n",
                  ws.catalog().ValueToString(t[0]).c_str(),
                  ws.catalog().ValueToString(t[1]).c_str());
    }
  }
  std::printf(
      "\nEvery exchanged fact travelled as an HMAC-authenticated says "
      "message;\nswap one line of policy to get RSA signatures or AES "
      "encryption.\n");
  return 0;
}
