// Policy playground: write your own security constructs (the paper's core
// thesis — says is NOT hard-wired). This example:
//   1. builds a custom says policy with write-access authorization and
//      per-predicate trust delegation (paper §3.2 and §6.1),
//   2. shows the BloxGenerics compiler REJECTING a policy that violates a
//      generic constraint (paper §4.1.4),
//   3. runs the accepted policy and shows authorization working.
//
//   ./build/examples/policy_playground
#include <cstdio>

#include "datalog/parser.h"
#include "engine/workspace.h"
#include "generics/compiler.h"
#include "policy/says_policy.h"

using namespace secureblox;
using datalog::Value;

int main() {
  // --- 1. A custom policy, written from scratch in BloxGenerics ----------
  const char* custom_policy = R"(
    // My own says: authorization + per-predicate delegation, no crypto.
    says[T] = ST, predicate(ST),
    writeAccess[T] = WT, predicate(WT),
    trustworthyPerPred[T] = DT, predicate(DT),
    `{
      ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*).
      WT(P) -> principal(P).
      DT(P) -> principal(P).
      ST(P1, P2, V*) -> WT(P1).                  // authorization
      T(V*) <- ST(P, R, V*), self[] = R, DT(P).  // delegated acceptance
    }
    <-- predicate(T), exportable(T).
    says(T, ST) --> exportable(T).
  )";

  const char* app = R"(
    creditscore(Who, Score) -> principal(Who), int(Score).
    exportable(`creditscore).
    // Only the credit agency is trusted for creditscore (paper §6.1):
    trustworthyPerPred[`creditscore]("ca").
  )";

  // --- 2. Broken variants are rejected at compile time -------------------
  {
    // Paper §4.1.4: a says rule not guarded by exportable violates the
    // generic constraint `says(T,ST) --> exportable(T)` — rejected before
    // any code generation.
    const char* overbroad = R"(
      app_pred(`creditscore).
      app_pred(`principal_node).
      says[T] = ST, predicate(ST) <-- predicate(T), app_pred(T).
      says(T, ST) --> exportable(T).
    )";
    auto program =
        datalog::Parse(policy::PreludeSource() + app + overbroad).value();
    generics::BloxGenericsCompiler compiler;
    auto rejected = compiler.Compile(program);
    std::printf("overbroad policy compile result:\n  %s\n\n",
                rejected.status().ToString().c_str());

    // Paper §4.1.1: a truly unguarded rule (says of says of ...) hits the
    // compiler's termination cap.
    const char* runaway = R"(
      says[T] = ST, predicate(ST) <-- predicate(T).
    )";
    auto runaway_program =
        datalog::Parse(policy::PreludeSource() + app + runaway).value();
    auto diverged = compiler.Compile(runaway_program);
    std::printf("runaway policy compile result:\n  %s\n\n",
                diverged.status().ToString().c_str());
  }

  // --- 3. The guarded policy compiles and enforces ------------------------
  engine::Workspace ws;
  auto expanded = policy::CompileWithPolicies(
      &ws, {policy::PreludeSource(), app, custom_policy});
  if (!expanded.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 expanded.status().ToString().c_str());
    return 1;
  }
  std::printf("generated predicates:");
  for (const auto& name : expanded->generated_predicates) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  if (auto st = ws.Install(expanded->program); !st.ok()) {
    std::fprintf(stderr, "install failed: %s\n", st.ToString().c_str());
    return 1;
  }
  (void)ws.Insert("self", {Value::Str("me")});
  (void)ws.Insert("writeAccess$creditscore", {Value::Str("ca")});

  // The credit agency says a score: authorized and delegated -> accepted.
  auto ok = ws.Apply({{"says$creditscore",
                       {Value::Str("ca"), Value::Str("me"),
                        Value::Str("alice"), Value::Int(740)}}});
  std::printf("ca says creditscore(alice, 740):   %s\n",
              ok.ok() ? "accepted" : ok.status().ToString().c_str());
  std::printf("  local creditscore rows: %zu\n",
              ws.Query("creditscore").value().size());

  // Mallory lacks write access: the constraint rejects the whole batch.
  auto denied = ws.Apply({{"says$creditscore",
                           {Value::Str("mallory"), Value::Str("me"),
                            Value::Str("alice"), Value::Int(9000)}}});
  std::printf("mallory says creditscore(...):     %s\n",
              denied.ok() ? "ACCEPTED (bug!)"
                          : "rejected (writeAccess constraint)");
  std::printf("  local creditscore rows: %zu (unchanged)\n",
              ws.Query("creditscore").value().size());
  return 0;
}
