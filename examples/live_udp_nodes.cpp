// Live deployment over real UDP sockets (the paper's transport): two
// SecureBlox nodes exchange RSA-signed says batches on localhost — no
// simulator involved.
//
//   ./build/examples/live_udp_nodes
#include <cstdio>

#include "dist/runtime.h"
#include "net/udp_transport.h"
#include "policy/keystore.h"
#include "policy/says_policy.h"

using namespace secureblox;
using datalog::Value;

int main() {
  const char* app = R"(
    link(X, Y) -> principal(X), principal(Y).
    reachable(X, Y) -> principal(X), principal(Y).
    reachable(X, Y) <- link(X, Y).
    reachable(X, Y) <- reachable(X, Z), reachable(Z, Y).
    says[`reachable](S, U, X, Y) <- reachable(X, Y), link(S, U), self[] = S.
    exportable(`reachable).
  )";
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;
  std::vector<std::string> sources = {policy::PreludeSource(), app,
                                      policy::SaysPolicySource(popts)};

  std::vector<std::string> principals = {"alice", "bob"};
  policy::CredentialAuthority::Options copts;
  copts.rsa_bits = 512;
  copts.seed = "live-udp";
  policy::CredentialAuthority authority(principals, copts);

  // Two runtimes with RSA-authenticated batches, two UDP sockets.
  std::vector<std::unique_ptr<dist::NodeRuntime>> nodes;
  std::vector<net::UdpTransport> sockets;
  std::vector<net::UdpEndpoint> endpoints = {{"127.0.0.1", 0},
                                             {"127.0.0.1", 0}};
  for (size_t i = 0; i < 2; ++i) {
    dist::NodeRuntime::Config cfg;
    cfg.index = static_cast<net::NodeIndex>(i);
    cfg.principals = principals;
    cfg.creds = authority.IssueFor(principals[i]).value();
    cfg.batch_security.auth = policy::AuthScheme::kRsa;
    auto node = dist::NodeRuntime::Create(std::move(cfg), sources);
    if (!node.ok()) {
      std::fprintf(stderr, "node %zu: %s\n", i,
                   node.status().ToString().c_str());
      return 1;
    }
    nodes.push_back(std::move(node).value());
    auto sock = net::UdpTransport::Bind(static_cast<net::NodeIndex>(i),
                                        endpoints);
    if (!sock.ok()) {
      std::fprintf(stderr, "bind %zu: %s\n", i,
                   sock.status().ToString().c_str());
      return 1;
    }
    sockets.push_back(std::move(sock).value());
  }
  sockets[0].SetEndpoint(1, {"127.0.0.1", sockets[1].local_port()});
  sockets[1].SetEndpoint(0, {"127.0.0.1", sockets[0].local_port()});
  std::printf("alice on udp:%u, bob on udp:%u\n", sockets[0].local_port(),
              sockets[1].local_port());

  // alice learns a link to bob; the advertisement goes out over UDP.
  auto result = nodes[0]->InsertLocal(
      {{"link", {Value::Str("alice"), Value::Str("bob")}}});
  if (!result.ok()) return 1;
  for (const auto& out : result->outgoing) {
    (void)sockets[0].Send(out.dst, out.payload);
    std::printf("alice -> bob: %zu-byte RSA-signed batch\n",
                out.payload.size());
  }

  // bob's receive loop (single poll is enough here).
  auto received = sockets[1].PollFor(2000);
  if (!received.ok() || !received->has_value()) {
    std::fprintf(stderr, "bob received nothing\n");
    return 1;
  }
  auto delivery = nodes[1]->DeliverMessage(**received, 0);
  if (!delivery.ok()) return 1;
  std::printf("bob: batch %s\n",
              delivery->accepted ? "verified and accepted" : "rejected");

  auto rows = nodes[1]->workspace().Query("reachable").value();
  std::printf("bob now knows %zu reachable fact(s)\n", rows.size());
  return rows.size() == 1 && delivery->accepted ? 0 : 1;
}
