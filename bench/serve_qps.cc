// Query-serving ablation: magic-sets point queries (engine/query) vs the
// whole-database fixpoint.
//
// Workload: two independent recursive closure families (left-recursive
// reachability over `link`, tag propagation over `attr`) on a shared node
// domain — a fig06-scale program where materialization derives both
// closures in full. The serving side installs the same program with
// deferred rules and answers one point goal, reachable(x, ?), through the
// magic-sets front end: only the goal's dependency slice is installed,
// and the bound first argument restricts derivation to the rows demanded
// by the seed pattern (the left-recursive body keeps demand on a single
// subgoal instead of cascading down the chain).
//
// Measured:
//   fixpoint  — wall seconds, derived tuples, rule firings for the full
//               materialization;
//   cold      — the same counters for the first point query (slice
//               install + seed + local fixpoint);
//   seed/warm — queries/second over distinct sources (each seeds a new
//               magic pattern) and over repeated goals (epoch-validated
//               snapshot reads).
//
// Acceptance gates: the cold point query must touch < 25% of the full
// fixpoint's derived tuples AND < 25% of its rule firings, and its
// answers must match the materialized reference. SB_QUICK=1 shrinks the
// graph for CI. Set SB_BENCH_OUT=<path> to record BENCH_serve.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "datalog/parser.h"
#include "engine/query.h"
#include "engine/workspace.h"

using namespace secureblox;
using namespace secureblox::bench;
using datalog::Value;
using engine::FactUpdate;
using engine::QueryEngine;
using engine::QueryGoal;
using engine::Workspace;

namespace {

/// Five independent closure families (reachable over link, plus four
/// tag-propagation families over their own edge relations) — a point
/// goal's dependency slice is one family, 2 of the program's 10 rules.
constexpr size_t kFamilies = 4;  // tag families, besides reachable

std::string Program() {
  std::string src = R"(
node(X) -> .
link(X, Y) -> node(X), node(Y).
reachable(X, Y) -> node(X), node(Y).
reachable(X, Y) <- link(X, Y).
reachable(X, Y) <- reachable(X, Z), link(Z, Y).
)";
  for (size_t f = 0; f < kFamilies; ++f) {
    const std::string e = "attr" + std::to_string(f);
    const std::string t = "tag" + std::to_string(f);
    src += e + "(X, Y) -> node(X), node(Y).\n";
    src += t + "(X, Y) -> node(X), node(Y).\n";
    src += t + "(X, Y) <- " + e + "(X, Y).\n";
    src += t + "(X, Y) <- " + t + "(X, Z), " + e + "(Z, Y).\n";
  }
  return src;
}

bool Install(Workspace* ws, const std::string& src) {
  auto program = datalog::Parse(src);
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return false;
  }
  Status st = ws->Install(program.value());
  if (!st.ok()) {
    std::fprintf(stderr, "install: %s\n", st.ToString().c_str());
    return false;
  }
  return true;
}

Value Label(size_t i) { return Value::Str("v" + std::to_string(i)); }

/// Chain backbone plus sparse skip edges, for every family.
std::vector<FactUpdate> Edges(size_t nodes) {
  std::vector<FactUpdate> out;
  std::vector<std::string> edge_preds = {"link"};
  for (size_t f = 0; f < kFamilies; ++f) {
    edge_preds.push_back("attr" + std::to_string(f));
  }
  for (size_t p = 0; p < edge_preds.size(); ++p) {
    for (size_t i = 0; i + 1 < nodes; ++i) {
      out.push_back({edge_preds[p], {Label(i), Label(i + 1)}});
    }
    for (size_t i = 0; i < nodes / 4; ++i) {
      out.push_back({edge_preds[p],
                     {Label((i * 7 + p) % nodes),
                      Label((i * 13 + 5 + 3 * p) % nodes)}});
    }
  }
  return out;
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const size_t nodes = QuickMode() ? 80 : 240;
  const size_t sources = QuickMode() ? 20 : 50;
  const size_t warm_reps = QuickMode() ? 200 : 1000;
  const std::vector<FactUpdate> edges = Edges(nodes);

  PrintTitle("Query serving: magic-sets point queries vs full fixpoint");
  PrintHeader({"side", "seconds", "derived", "firings"});

  // Full materialization reference.
  const std::string program = Program();
  Workspace mat;
  if (!Install(&mat, program)) return 1;
  auto t0 = std::chrono::steady_clock::now();
  if (auto r = mat.Apply(edges); !r.ok()) {
    std::fprintf(stderr, "apply: %s\n", r.status().ToString().c_str());
    return 1;
  }
  const double fix_seconds = Seconds(t0);
  const uint64_t fix_derived = mat.stats().derived_tuples;
  const uint64_t fix_firings = mat.stats().rule_firings;
  std::printf("fixpoint\t%.4f\t%llu\t%llu\n", fix_seconds,
              static_cast<unsigned long long>(fix_derived),
              static_cast<unsigned long long>(fix_firings));

  // Serving side: deferred rules, demand-driven slices.
  Workspace qws;
  qws.set_defer_rules(true);
  if (!Install(&qws, program)) return 1;
  if (auto r = qws.Apply(edges); !r.ok()) {
    std::fprintf(stderr, "apply: %s\n", r.status().ToString().c_str());
    return 1;
  }
  QueryEngine qe(&qws);

  const QueryGoal cold_goal{"reachable", {Label(nodes / 8), std::nullopt}};
  const uint64_t before_derived = qws.stats().derived_tuples;
  const uint64_t before_firings = qws.stats().rule_firings;
  t0 = std::chrono::steady_clock::now();
  auto cold = qe.Query(cold_goal);
  const double cold_seconds = Seconds(t0);
  if (!cold.ok()) {
    std::fprintf(stderr, "query: %s\n", cold.status().ToString().c_str());
    return 1;
  }
  const uint64_t cold_derived = qws.stats().derived_tuples - before_derived;
  const uint64_t cold_firings = qws.stats().rule_firings - before_firings;
  std::printf("cold_query\t%.4f\t%llu\t%llu\n", cold_seconds,
              static_cast<unsigned long long>(cold_derived),
              static_cast<unsigned long long>(cold_firings));

  // Cross-check the answers against the materialized reference.
  auto ref = mat.Query("reachable");
  if (!ref.ok()) return 1;
  size_t expect = 0;
  {
    auto e = mat.catalog().FindEntity(
        mat.catalog().Lookup("node").value(), "v" + std::to_string(nodes / 8));
    if (!e.ok()) return 1;
    for (const auto& t : ref.value()) {
      if (t[0] == e.value()) ++expect;
    }
  }
  if (cold->size() != expect) {
    std::fprintf(stderr, "ANSWER MISMATCH: query %zu rows, reference %zu\n",
                 cold->size(), expect);
    return 1;
  }

  // Seed-phase QPS: distinct sources, each demanding a new bound pattern
  // through the already-installed slice.
  t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < sources; ++i) {
    QueryGoal g{"reachable", {Label((i * 3) % nodes), std::nullopt}};
    if (!qe.Query(g).ok()) return 1;
  }
  const double seed_seconds = Seconds(t0);
  const double seed_qps = sources / std::max(seed_seconds, 1e-9);

  // Warm-phase QPS: repeats of memoized goals, through the same
  // TryWarm-then-Query ladder NodeRuntime::Query serves from — every
  // repeat is an epoch-validated pure snapshot read.
  t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < warm_reps; ++i) {
    QueryGoal g{"reachable", {Label(((i % sources) * 3) % nodes), std::nullopt}};
    if (qe.TryWarm(g).has_value()) continue;
    if (!qe.Query(g).ok()) return 1;
  }
  const double warm_seconds = Seconds(t0);
  const double warm_qps = warm_reps / std::max(warm_seconds, 1e-9);
  std::printf("# seed qps: %.0f, warm qps: %.0f, warm hits: %llu\n", seed_qps,
              warm_qps,
              static_cast<unsigned long long>(qe.stats().warm_hits));

  const double derived_ratio =
      static_cast<double>(cold_derived) / std::max<uint64_t>(fix_derived, 1);
  const double firings_ratio =
      static_cast<double>(cold_firings) / std::max<uint64_t>(fix_firings, 1);
  std::printf("# cold ratios vs fixpoint: derived %.4f, firings %.4f\n",
              derived_ratio, firings_ratio);

  bool gate_ok = true;
  if (derived_ratio >= 0.25) {
    std::fprintf(stderr, "GATE FAILED: cold query derived %.1f%% >= 25%%\n",
                 derived_ratio * 100);
    gate_ok = false;
  }
  if (firings_ratio >= 0.25) {
    std::fprintf(stderr, "GATE FAILED: cold query firings %.1f%% >= 25%%\n",
                 firings_ratio * 100);
    gate_ok = false;
  }

  if (const char* out_path = std::getenv("SB_BENCH_OUT")) {
    FILE* json = std::fopen(out_path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    std::fprintf(
        json,
        "{\n  \"benchmark\": \"serve_qps\",\n  \"nodes\": %zu,\n"
        "  \"fixpoint\": {\"seconds\": %.6f, \"derived\": %llu, "
        "\"firings\": %llu},\n"
        "  \"cold_query\": {\"seconds\": %.6f, \"derived\": %llu, "
        "\"firings\": %llu},\n"
        "  \"qps\": {\"seed\": %.1f, \"warm\": %.1f},\n"
        "  \"ratios\": {\"derived\": %.6f, \"firings\": %.6f},\n"
        "  \"gates\": {\"max_ratio\": 0.25, \"ok\": %s}\n}\n",
        nodes, fix_seconds, static_cast<unsigned long long>(fix_derived),
        static_cast<unsigned long long>(fix_firings), cold_seconds,
        static_cast<unsigned long long>(cold_derived),
        static_cast<unsigned long long>(cold_firings), seed_qps, warm_qps,
        derived_ratio, firings_ratio, gate_ok ? "true" : "false");
    std::fclose(json);
  }
  return gate_ok ? 0 : 1;
}
