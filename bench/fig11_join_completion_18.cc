// Figure 11: cumulative fraction of transaction completion time at the
// join initiator, 18-node secure hash join. Series: NoAuth, RSA-AES.
//
// Paper observation: with higher parallelism the rehash batches shrink, so
// each node performs more cryptographic operations per result tuple — the
// RSA-AES curve separates visibly from NoAuth (compare Figure 10).
#include "apps/hashjoin.h"
#include "bench_util.h"

using namespace secureblox;
using namespace secureblox::bench;

int main() {
  PrintTitle(
      "Figure 11: CDF of transaction completion time at the initiator — "
      "18-node secure hash join");
  PrintHeader({"series", "time_s", "fraction"});

  struct Scheme {
    policy::AuthScheme auth;
    policy::EncScheme enc;
    const char* name;
  };
  const std::vector<Scheme> schemes = {
      {policy::AuthScheme::kNone, policy::EncScheme::kNone, "NoAuth"},
      {policy::AuthScheme::kRsa, policy::EncScheme::kAes, "RSA-AES"},
  };

  for (const Scheme& s : schemes) {
    std::vector<double> all_times;
    for (size_t trial = 0; trial < Trials(); ++trial) {
      apps::HashJoinConfig config;
      config.max_batch_tuples = BatchTuples();
      config.max_batch_delay_s = BatchDelayS();
      config.num_nodes = 18;
      config.auth = s.auth;
      config.enc = s.enc;
      config.seed = 4000 + trial;
      auto result = apps::RunHashJoin(config);
      if (!result.ok()) {
        std::fprintf(stderr, "FAILED %s: %s\n", s.name,
                     result.status().ToString().c_str());
        return 1;
      }
      if (result->results_at_initiator != result->expected_results) {
        std::fprintf(stderr, "JOIN MISMATCH %s: got %zu want %zu\n", s.name,
                     result->results_at_initiator, result->expected_results);
        return 1;
      }
      for (double t : result->initiator_completion_times_s) {
        all_times.push_back(t);
      }
    }
    PrintCdf(s.name, all_times);
  }
  return 0;
}
