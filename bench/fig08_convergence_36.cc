// Figure 8: cumulative fraction of converged nodes over time for one
// representative 36-node random graph. Series: NoAuth, HMAC, RSA-AES.
//
// Paper observations: heavier authentication right-shifts the curve and
// flattens its slope; all curves are step-like, with bursts of nodes
// converging per shortest-path iteration.
#include "apps/pathvector.h"
#include "bench_util.h"

using namespace secureblox;
using namespace secureblox::bench;

int main() {
  size_t n = EnvSize("SB_FIG8_NODES", QuickMode() ? 12 : 36);
  PrintTitle("Figure 8: Cumulative fraction of converged nodes, one " +
             std::to_string(n) + "-node random graph");
  PrintHeader({"series", "time_s", "fraction"});

  struct Scheme {
    policy::AuthScheme auth;
    policy::EncScheme enc;
    const char* name;
  };
  const std::vector<Scheme> schemes = {
      {policy::AuthScheme::kNone, policy::EncScheme::kNone, "NoAuth"},
      {policy::AuthScheme::kHmac, policy::EncScheme::kNone, "HMAC"},
      {policy::AuthScheme::kRsa, policy::EncScheme::kAes, "RSA-AES"},
  };

  for (const Scheme& s : schemes) {
    apps::PathVectorConfig config;
    config.max_batch_tuples = BatchTuples();
    config.max_batch_delay_s = BatchDelayS();
    config.num_nodes = n;
    config.auth = s.auth;
    config.enc = s.enc;
    config.graph_seed = 2026;  // one representative graph for all series
    auto result = apps::RunPathVector(config);
    if (!result.ok()) {
      std::fprintf(stderr, "FAILED %s: %s\n", s.name,
                   result.status().ToString().c_str());
      return 1;
    }
    PrintCdf(s.name, result->metrics.node_convergence_s);
  }
  return 0;
}
