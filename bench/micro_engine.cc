// Microbenchmarks for the DatalogLB evaluation engine (google-benchmark):
// fixpoint computation, incremental maintenance, constraint checking, and
// the BloxGenerics compiler itself.
#include <benchmark/benchmark.h>

#include "datalog/parser.h"
#include "engine/workspace.h"
#include "generics/compiler.h"
#include "policy/says_policy.h"

namespace secureblox::engine {
namespace {

using datalog::Parse;
using datalog::Value;

const char* kTcProgram = R"(
node(X) -> .
link(X, Y) -> node(X), node(Y).
reachable(X, Y) -> node(X), node(Y).
reachable(X, Y) <- link(X, Y).
reachable(X, Y) <- link(X, Z), reachable(Z, Y).
)";

void BM_TransitiveClosureChain(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    Workspace ws;
    (void)ws.Install(Parse(kTcProgram).value());
    std::vector<FactUpdate> links;
    for (int64_t i = 0; i + 1 < n; ++i) {
      links.push_back({"link",
                       {Value::Str("v" + std::to_string(i)),
                        Value::Str("v" + std::to_string(i + 1))}});
    }
    auto commit = ws.Apply(links);
    benchmark::DoNotOptimize(commit);
  }
  state.SetItemsProcessed(state.iterations() * n * (n - 1) / 2);
}
BENCHMARK(BM_TransitiveClosureChain)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalInsert(benchmark::State& state) {
  Workspace ws;
  (void)ws.Install(Parse(kTcProgram).value());
  // Prime a chain; each iteration extends it by one edge (semi-naïve
  // incremental maintenance).
  int64_t next = 0;
  for (int64_t i = 0; i < 64; ++i) {
    (void)ws.Insert("link", {Value::Str("w" + std::to_string(i)),
                             Value::Str("w" + std::to_string(i + 1))});
    next = i + 1;
  }
  for (auto _ : state) {
    auto commit = ws.Apply({{"link",
                             {Value::Str("w" + std::to_string(next)),
                              Value::Str("w" + std::to_string(next + 1))}}});
    benchmark::DoNotOptimize(commit);
    ++next;
  }
}
BENCHMARK(BM_IncrementalInsert)->Unit(benchmark::kMillisecond);

void BM_ConstraintCheckedInsert(benchmark::State& state) {
  Workspace ws;
  (void)ws.Install(Parse(R"(
    node(X) -> .
    allowed(X) -> node(X).
    link(X, Y) -> node(X), node(Y).
    link(X, Y) -> allowed(X).
  )").value());
  int64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string src = "a" + std::to_string(i++);
    (void)ws.Insert("allowed", {Value::Str(src)});
    state.ResumeTiming();
    auto commit = ws.Apply({{"link", {Value::Str(src), Value::Str("dst")}}});
    benchmark::DoNotOptimize(commit);
  }
}
BENCHMARK(BM_ConstraintCheckedInsert)->Unit(benchmark::kMicrosecond);

void BM_AggregateMaintenance(benchmark::State& state) {
  Workspace ws;
  (void)ws.Install(Parse(R"(
    sale(X, V) -> string(X), int(V).
    total[X] = V -> string(X), int(V).
    total[X] = V <- agg<< V = sum(S) >> sale(X, S).
  )").value());
  int64_t i = 0;
  for (auto _ : state) {
    auto commit = ws.Apply({{"sale",
                             {Value::Str("k" + std::to_string(i % 10)),
                              Value::Int(i)}}});
    benchmark::DoNotOptimize(commit);
    ++i;
  }
}
BENCHMARK(BM_AggregateMaintenance)->Unit(benchmark::kMicrosecond);

void BM_FixpointDependencyIndex(benchmark::State& state) {
  // Transitive closure next to `idle` unrelated rule groups. The rule
  // graph's worklist only fires rules whose body predicates changed, so
  // latency stays flat as idle rules pile up; the counters report how many
  // re-firings the dependency index skipped.
  const int64_t idle = state.range(0);
  std::string src(kTcProgram);
  for (int64_t i = 0; i < idle; ++i) {
    std::string p = "aux" + std::to_string(i);
    src += p + "(X) -> int(X).\n";
    src += p + "_d(X) -> int(X).\n";
    src += p + "_d(X) <- " + p + "(X).\n";
  }
  Workspace ws;
  (void)ws.Install(Parse(src).value());
  int64_t next = 0;
  for (int64_t i = 0; i < 32; ++i) {
    (void)ws.Insert("link", {Value::Str("w" + std::to_string(i)),
                             Value::Str("w" + std::to_string(i + 1))});
    next = i + 1;
  }
  for (auto _ : state) {
    auto commit = ws.Apply({{"link",
                             {Value::Str("w" + std::to_string(next)),
                              Value::Str("w" + std::to_string(next + 1))}}});
    benchmark::DoNotOptimize(commit);
    ++next;
  }
  state.counters["rounds"] =
      benchmark::Counter(static_cast<double>(ws.stats().fixpoint_rounds));
  state.counters["firings"] =
      benchmark::Counter(static_cast<double>(ws.stats().rule_firings));
  state.counters["skipped"] =
      benchmark::Counter(static_cast<double>(ws.stats().firings_skipped));
}
BENCHMARK(BM_FixpointDependencyIndex)->Arg(0)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_GenericsExpansion(benchmark::State& state) {
  // Full BloxGenerics compile of the says policy over `n` exportable
  // predicates — the static meta-programming cost (compile-time only).
  const int64_t n = state.range(0);
  std::string src = policy::PreludeSource();
  for (int64_t i = 0; i < n; ++i) {
    std::string p = "pred" + std::to_string(i);
    src += p + "(X, Y) -> int(X), int(Y).\n";
    src += "exportable(`" + p + ").\n";
  }
  policy::SaysPolicyOptions opts;
  opts.auth = policy::AuthScheme::kRsa;
  src += policy::SaysPolicySource(opts);
  auto program = Parse(src).value();
  for (auto _ : state) {
    generics::BloxGenericsCompiler compiler;
    benchmark::DoNotOptimize(compiler.Compile(program));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GenericsExpansion)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_ParseProgram(benchmark::State& state) {
  std::string src = policy::PreludeSource();
  policy::SaysPolicyOptions opts;
  src += policy::SaysPolicySource(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Parse(src));
  }
}
BENCHMARK(BM_ParseProgram)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace secureblox::engine

BENCHMARK_MAIN();
