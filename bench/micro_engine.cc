// Microbenchmarks for the DatalogLB evaluation engine (google-benchmark):
// fixpoint computation, incremental maintenance, constraint checking, and
// the BloxGenerics compiler itself.
#include <benchmark/benchmark.h>

#include "datalog/parser.h"
#include "engine/workspace.h"
#include "generics/compiler.h"
#include "policy/says_policy.h"

namespace secureblox::engine {
namespace {

using datalog::Parse;
using datalog::Value;

const char* kTcProgram = R"(
node(X) -> .
link(X, Y) -> node(X), node(Y).
reachable(X, Y) -> node(X), node(Y).
reachable(X, Y) <- link(X, Y).
reachable(X, Y) <- link(X, Z), reachable(Z, Y).
)";

void BM_TransitiveClosureChain(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    Workspace ws;
    (void)ws.Install(Parse(kTcProgram).value());
    std::vector<FactUpdate> links;
    for (int64_t i = 0; i + 1 < n; ++i) {
      links.push_back({"link",
                       {Value::Str("v" + std::to_string(i)),
                        Value::Str("v" + std::to_string(i + 1))}});
    }
    auto commit = ws.Apply(links);
    benchmark::DoNotOptimize(commit);
  }
  state.SetItemsProcessed(state.iterations() * n * (n - 1) / 2);
}
BENCHMARK(BM_TransitiveClosureChain)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalInsert(benchmark::State& state) {
  Workspace ws;
  (void)ws.Install(Parse(kTcProgram).value());
  // Prime a chain; each iteration extends it by one edge (semi-naïve
  // incremental maintenance).
  int64_t next = 0;
  for (int64_t i = 0; i < 64; ++i) {
    (void)ws.Insert("link", {Value::Str("w" + std::to_string(i)),
                             Value::Str("w" + std::to_string(i + 1))});
    next = i + 1;
  }
  for (auto _ : state) {
    auto commit = ws.Apply({{"link",
                             {Value::Str("w" + std::to_string(next)),
                              Value::Str("w" + std::to_string(next + 1))}}});
    benchmark::DoNotOptimize(commit);
    ++next;
  }
}
BENCHMARK(BM_IncrementalInsert)->Unit(benchmark::kMillisecond);

void BM_ConstraintCheckedInsert(benchmark::State& state) {
  Workspace ws;
  (void)ws.Install(Parse(R"(
    node(X) -> .
    allowed(X) -> node(X).
    link(X, Y) -> node(X), node(Y).
    link(X, Y) -> allowed(X).
  )").value());
  int64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string src = "a" + std::to_string(i++);
    (void)ws.Insert("allowed", {Value::Str(src)});
    state.ResumeTiming();
    auto commit = ws.Apply({{"link", {Value::Str(src), Value::Str("dst")}}});
    benchmark::DoNotOptimize(commit);
  }
}
BENCHMARK(BM_ConstraintCheckedInsert)->Unit(benchmark::kMicrosecond);

void BM_AggregateMaintenance(benchmark::State& state) {
  Workspace ws;
  (void)ws.Install(Parse(R"(
    sale(X, V) -> string(X), int(V).
    total[X] = V -> string(X), int(V).
    total[X] = V <- agg<< V = sum(S) >> sale(X, S).
  )").value());
  int64_t i = 0;
  for (auto _ : state) {
    auto commit = ws.Apply({{"sale",
                             {Value::Str("k" + std::to_string(i % 10)),
                              Value::Int(i)}}});
    benchmark::DoNotOptimize(commit);
    ++i;
  }
}
BENCHMARK(BM_AggregateMaintenance)->Unit(benchmark::kMicrosecond);

void BM_FixpointDependencyIndex(benchmark::State& state) {
  // Transitive closure next to `idle` unrelated rule groups. The rule
  // graph's worklist only fires rules whose body predicates changed, so
  // latency stays flat as idle rules pile up; the counters report how many
  // re-firings the dependency index skipped.
  const int64_t idle = state.range(0);
  std::string src(kTcProgram);
  for (int64_t i = 0; i < idle; ++i) {
    std::string p = "aux" + std::to_string(i);
    src += p + "(X) -> int(X).\n";
    src += p + "_d(X) -> int(X).\n";
    src += p + "_d(X) <- " + p + "(X).\n";
  }
  Workspace ws;
  (void)ws.Install(Parse(src).value());
  int64_t next = 0;
  for (int64_t i = 0; i < 32; ++i) {
    (void)ws.Insert("link", {Value::Str("w" + std::to_string(i)),
                             Value::Str("w" + std::to_string(i + 1))});
    next = i + 1;
  }
  for (auto _ : state) {
    auto commit = ws.Apply({{"link",
                             {Value::Str("w" + std::to_string(next)),
                              Value::Str("w" + std::to_string(next + 1))}}});
    benchmark::DoNotOptimize(commit);
    ++next;
  }
  state.counters["rounds"] =
      benchmark::Counter(static_cast<double>(ws.stats().fixpoint_rounds));
  state.counters["firings"] =
      benchmark::Counter(static_cast<double>(ws.stats().rule_firings));
  state.counters["skipped"] =
      benchmark::Counter(static_cast<double>(ws.stats().firings_skipped));
}
BENCHMARK(BM_FixpointDependencyIndex)->Arg(0)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// -- parallel fixpoint scaling (recorded as BENCH_fixpoint.json) -------------
//
// Two workloads in the shape of the paper's evaluation, swept over
// 1/2/4/8 fixpoint workers:
//  - *convergence* (fig08 flavour): authenticated transitive closure —
//    every hop derivation pays a digest check, the way the paper's
//    path-vector convergence pays per-tuple HMAC/RSA work;
//  - *join* (fig10 flavour): a selective three-way hash join with a
//    digest prefilter, the secure-hash-join shape where candidates vastly
//    outnumber results.
// Both put the weight in body enumeration, which is the phase the wave
// scheduler spreads across workers; the merge phase stays sequential.

const char* kAuthTcProgram = R"(
  warm(X) -> int(X).
  warmd(X) -> int(X).
  warmd(X) <- warm(X).
  n(X) -> int(X).
  link(X, Y) -> int(X), int(Y).
  reachable(X, Y) -> int(X), int(Y).
  reachable(X, Y) <- link(X, Y).
  reachable(X, Y) <- link(X, Z), reachable(Z, Y),
                     sha1_bucket(Z, 1000003, H), H >= 0.
)";

// Fresh workspace with the pool already spun up (the `warm` transaction
// stages a task, forcing worker-thread spawn), so the timed region
// measures fixpoint work, not thread creation. Returns null if setup
// fails — callers flag the benchmark as errored, because
// BENCH_fixpoint.json must never record timings of failing transactions.
std::unique_ptr<Workspace> WarmWorkspace(const char* program, int threads,
                                         size_t shards = 1) {
  auto ws = std::make_unique<Workspace>();
  ws->fixpoint_options().threads = threads;
  ws->fixpoint_options().shards = shards;
  auto parsed = Parse(program);
  Status st = parsed.ok() ? ws->Install(parsed.value()) : parsed.status();
  if (st.ok()) st = ws->Insert("warm", {Value::Int(0)});
  if (!st.ok()) return nullptr;
  return ws;
}

void BM_ParallelFixpointConvergence(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const size_t shards = static_cast<size_t>(state.range(1));
  const int nodes = 96;
  std::vector<FactUpdate> links;
  for (int i = 0; i < nodes; ++i) {
    links.push_back({"link", {Value::Int(i), Value::Int((i + 1) % nodes)}});
    links.push_back({"link", {Value::Int(i), Value::Int((i * 7 + 3) % nodes)}});
  }
  uint64_t derived = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto ws = WarmWorkspace(kAuthTcProgram, threads, shards);
    state.ResumeTiming();
    if (ws == nullptr) {
      state.SkipWithError("workspace setup failed");
      break;
    }
    auto commit = ws->Apply(links);
    benchmark::DoNotOptimize(commit);
    if (!commit.ok()) {
      state.SkipWithError(commit.status().ToString().c_str());
      break;
    }
    derived = commit->num_derived;
    state.PauseTiming();
    ws.reset();  // teardown (pool join) stays untimed
    state.ResumeTiming();
  }
  state.counters["derived"] = benchmark::Counter(static_cast<double>(derived));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(derived));
}
// Thread scaling at the unsharded layout, plus the shard-scaling curve
// (SB_SHARDS 1/4/8) at one and four workers — shard-aligned chunks must
// not regress the 1-shard latency while giving placement-ready partitions.
BENCHMARK(BM_ParallelFixpointConvergence)
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1})
    ->Args({1, 4})->Args({1, 8})->Args({4, 4})->Args({4, 8})
    ->ArgNames({"threads", "shards"})->Unit(benchmark::kMillisecond);

const char* kSecureJoinProgram = R"(
  warm(X) -> int(X).
  warmd(X) -> int(X).
  warmd(X) <- warm(X).
  r(X, Y) -> int(X), int(Y).
  s(Y, Z) -> int(Y), int(Z).
  q(Z, W) -> int(Z), int(W).
  out(X, W) -> int(X), int(W).
  out(X, W) <- r(X, Y), s(Y, Z), sha1_bucket(Z, 4, H), H = 0, q(Z, W).
)";

void BM_ParallelFixpointJoin(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const size_t shards = static_cast<size_t>(state.range(1));
  const int rows = 3072;
  const int buckets = 48;
  std::vector<FactUpdate> facts;
  for (int i = 0; i < rows; ++i) {
    facts.push_back({"r", {Value::Int(i), Value::Int(i % buckets)}});
    facts.push_back({"s", {Value::Int(i % buckets), Value::Int(i)}});
  }
  for (int i = 0; i < rows; i += 16) {
    facts.push_back({"q", {Value::Int(i), Value::Int(i)}});
  }
  uint64_t derived = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto ws = WarmWorkspace(kSecureJoinProgram, threads, shards);
    state.ResumeTiming();
    if (ws == nullptr) {
      state.SkipWithError("workspace setup failed");
      break;
    }
    auto commit = ws->Apply(facts);
    benchmark::DoNotOptimize(commit);
    if (!commit.ok()) {
      state.SkipWithError(commit.status().ToString().c_str());
      break;
    }
    derived = commit->num_derived;
    state.PauseTiming();
    ws.reset();
    state.ResumeTiming();
  }
  state.counters["derived"] = benchmark::Counter(static_cast<double>(derived));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(derived));
}
BENCHMARK(BM_ParallelFixpointJoin)
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1})
    ->Args({1, 4})->Args({1, 8})->Args({4, 4})->Args({4, 8})
    ->ArgNames({"threads", "shards"})->Unit(benchmark::kMillisecond);

void BM_GenericsExpansion(benchmark::State& state) {
  // Full BloxGenerics compile of the says policy over `n` exportable
  // predicates — the static meta-programming cost (compile-time only).
  const int64_t n = state.range(0);
  std::string src = policy::PreludeSource();
  for (int64_t i = 0; i < n; ++i) {
    std::string p = "pred" + std::to_string(i);
    src += p + "(X, Y) -> int(X), int(Y).\n";
    src += "exportable(`" + p + ").\n";
  }
  policy::SaysPolicyOptions opts;
  opts.auth = policy::AuthScheme::kRsa;
  src += policy::SaysPolicySource(opts);
  auto program = Parse(src).value();
  for (auto _ : state) {
    generics::BloxGenericsCompiler compiler;
    benchmark::DoNotOptimize(compiler.Compile(program));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GenericsExpansion)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_ParseProgram(benchmark::State& state) {
  std::string src = policy::PreludeSource();
  policy::SaysPolicyOptions opts;
  src += policy::SaysPolicySource(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Parse(src));
  }
}
BENCHMARK(BM_ParseProgram)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace secureblox::engine

BENCHMARK_MAIN();
