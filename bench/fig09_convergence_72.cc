// Figure 9: cumulative fraction of converged nodes over time for one
// 72-node random graph. Series: NoAuth, HMAC, RSA-AES.
//
// Paper observation: with twice the nodes there are more distinct longest
// shortest-path lengths, so the curve shows more (smaller) steps than the
// 36-node run in Figure 8.
#include "apps/pathvector.h"
#include "bench_util.h"

using namespace secureblox;
using namespace secureblox::bench;

int main() {
  size_t n = EnvSize("SB_FIG9_NODES", QuickMode() ? 18 : 72);
  PrintTitle("Figure 9: Cumulative fraction of converged nodes, one " +
             std::to_string(n) + "-node random graph");
  PrintHeader({"series", "time_s", "fraction"});

  struct Scheme {
    policy::AuthScheme auth;
    policy::EncScheme enc;
    const char* name;
  };
  const std::vector<Scheme> schemes = {
      {policy::AuthScheme::kNone, policy::EncScheme::kNone, "NoAuth"},
      {policy::AuthScheme::kHmac, policy::EncScheme::kNone, "HMAC"},
      {policy::AuthScheme::kRsa, policy::EncScheme::kAes, "RSA-AES"},
  };

  for (const Scheme& s : schemes) {
    apps::PathVectorConfig config;
    config.max_batch_tuples = BatchTuples();
    config.max_batch_delay_s = BatchDelayS();
    config.num_nodes = n;
    config.auth = s.auth;
    config.enc = s.enc;
    config.graph_seed = 2027;
    auto result = apps::RunPathVector(config);
    if (!result.ok()) {
      std::fprintf(stderr, "FAILED %s: %s\n", s.name,
                   result.status().ToString().c_str());
      return 1;
    }
    PrintCdf(s.name, result->metrics.node_convergence_s);
  }
  return 0;
}
