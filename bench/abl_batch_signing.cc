// Ablation A (paper §3.2 footnote 2): per-tuple signatures expressed in
// the says policy itself vs. one signature per message batch applied by
// the runtime. The paper chose per-batch signing because "a transaction
// may result in the transit of multiple tuples to a single node".
//
// Expected shape: per-tuple signing costs substantially more in both bytes
// (one signature per fact) and latency (one sign/verify per fact), while
// per-batch signing amortizes the cryptography.
#include "apps/pathvector.h"
#include "bench_util.h"

using namespace secureblox;
using namespace secureblox::bench;

int main() {
  PrintTitle(
      "Ablation: per-tuple (policy-level) vs per-batch (runtime-level) RSA "
      "signing — path-vector protocol");
  PrintHeader({"nodes", "batch_latency_s", "tuple_latency_s", "batch_kb",
               "tuple_kb", "batch_tx_ms", "tuple_tx_ms"});

  std::vector<size_t> sizes = QuickMode()
                                  ? std::vector<size_t>{6}
                                  : std::vector<size_t>{6, 12, 18};
  for (size_t n : sizes) {
    std::vector<double> row = {static_cast<double>(n)};
    double latency[2], kb[2], tx[2];
    for (int per_fact = 0; per_fact < 2; ++per_fact) {
      apps::PathVectorConfig config;
      config.max_batch_tuples = BatchTuples();
      config.max_batch_delay_s = BatchDelayS();
      config.num_nodes = n;
      config.auth = policy::AuthScheme::kRsa;
      config.per_fact_policy = (per_fact == 1);
      config.graph_seed = 6000;
      auto result = apps::RunPathVector(config);
      if (!result.ok()) {
        std::fprintf(stderr, "FAILED n=%zu per_fact=%d: %s\n", n, per_fact,
                     result.status().ToString().c_str());
        return 1;
      }
      latency[per_fact] = result->metrics.fixpoint_latency_s;
      kb[per_fact] = result->metrics.MeanPerNodeKb();
      tx[per_fact] = result->metrics.MeanTxDurationMs();
    }
    row.insert(row.end(), {latency[0], latency[1], kb[0], kb[1], tx[0], tx[1]});
    PrintRow(row);
  }
  return 0;
}
