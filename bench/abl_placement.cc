// Ablation: partitioned shard placement (the PR 10 tentpole). The same
// co-shardable closure workload runs on 1, 6, and 18 nodes; under
// placement every node owns only its hash-assigned shards of the placed
// relations, so per-node storage must *drop* as the cluster grows — the
// scale-out shape the replicated dist layer (whole relation on every
// node) could not deliver.
//
// Recorded per cluster size: the per-node storage-footprint gauges
// (relation_dict_bytes + relation_column_bytes + relation_index_bytes,
// max and mean over nodes) and the distributed-fixpoint convergence time.
// Acceptance gates (exit nonzero on failure):
//   - the max per-node footprint at 6 nodes is < 60% of the 1-node
//     (fully local, i.e. replicated-equivalent) figure;
//   - the 18-node run converges: drains with zero rejected payloads and
//     the cluster-wide placed row count matches the 1-node fixpoint.
//
// Set SB_BENCH_OUT=<path> to record the curve (merged into
// BENCH_dist.json by scripts/check.sh).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "datalog/value.h"
#include "dist/cluster.h"
#include "engine/workspace.h"
#include "policy/says_policy.h"

using namespace secureblox;
using namespace secureblox::bench;
using datalog::Value;

namespace {

// Co-shardable closure app (see engine/placement.h): `link` is the
// replicated dimension chain, `seed` the placed base relation, `grow`
// closes recursively shard-locally, `inv` re-keys across shards.
const char* kApp = R"(
link(X, Y) -> string(X), string(Y).
seed(X, Y) -> string(X), string(Y).
grow(X, Y) -> string(X), string(Y).
inv(X, Y) -> string(X), string(Y).
grow(X, Y) <- seed(X, Y).
grow(X, Y) <- grow(X, Z), link(Z, Y).
inv(Y, X) <- seed(X, Y).
)";

struct Workload {
  size_t keys;
  size_t hops;
};

Workload TheWorkload() {
  // Every key's grow-closure walks the whole chain: placed rows ≈
  // keys * (hops + 2). Quick mode keeps CI under a few seconds.
  if (QuickMode()) return {160, 12};
  return {360, 16};
}

std::string Chain(size_t i) { return "c" + std::to_string(i); }

std::string Key(size_t i) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "key-%04zu-%016llx", i,
                static_cast<unsigned long long>(i * 0x9e3779b97f4a7c15ull));
  return buf;
}

struct Outcome {
  double fixpoint_s = 0;
  double max_node_bytes = 0;
  double mean_node_bytes = 0;
  double placed_rows = 0;
  double messages = 0;
  double bytes = 0;
  double rejected = 0;
};

Result<Outcome> Run(size_t nodes, int shards) {
  const Workload w = TheWorkload();
  policy::SaysPolicyOptions popts;
  dist::SimCluster::Config cfg;
  cfg.num_nodes = nodes;
  cfg.sources = {policy::PreludeSource(), kApp,
                 policy::SaysPolicySource(popts)};
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "abl-placement";
  cfg.placement = true;
  cfg.placed_preds = {"seed", "grow", "inv"};
  cfg.storage_shards = shards;
  SB_ASSIGN_OR_RETURN(std::unique_ptr<dist::SimCluster> cluster,
                      dist::SimCluster::Create(std::move(cfg)));

  // Replicated dimension chain at every node; placed seeds spread
  // round-robin over the members, all pointing into the chain head.
  std::vector<engine::FactUpdate> links;
  for (size_t h = 0; h < w.hops; ++h) {
    links.push_back({"link", {Value::Str(Chain(h)), Value::Str(Chain(h + 1))}});
  }
  for (size_t n = 0; n < nodes; ++n) {
    cluster->ScheduleInsert(static_cast<net::NodeIndex>(n), links);
  }
  std::vector<std::vector<engine::FactUpdate>> seeds(nodes);
  for (size_t i = 0; i < w.keys; ++i) {
    seeds[i % nodes].push_back(
        {"seed", {Value::Str(Key(i)), Value::Str(Chain(0))}});
  }
  for (size_t n = 0; n < nodes; ++n) {
    cluster->ScheduleInsert(static_cast<net::NodeIndex>(n),
                            std::move(seeds[n]));
  }

  SB_ASSIGN_OR_RETURN(dist::SimCluster::Metrics m, cluster->Run());

  Outcome out;
  out.fixpoint_s = m.fixpoint_latency_s;
  out.messages = static_cast<double>(m.total_messages);
  out.bytes = static_cast<double>(m.total_bytes);
  out.rejected = static_cast<double>(m.rejected_batches);
  double total_bytes = 0;
  for (size_t n = 0; n < nodes; ++n) {
    const engine::Workspace& ws =
        cluster->node(static_cast<net::NodeIndex>(n)).workspace();
    const auto& s = ws.stats();
    const double node_bytes =
        static_cast<double>(s.relation_dict_bytes + s.relation_column_bytes +
                            s.relation_index_bytes);
    out.max_node_bytes = std::max(out.max_node_bytes, node_bytes);
    total_bytes += node_bytes;
    for (const char* name : {"seed", "grow", "inv"}) {
      auto id = ws.catalog().Lookup(name);
      if (!id.ok()) continue;
      const engine::Relation* rel = ws.GetRelationIfExists(id.value());
      if (rel != nullptr) out.placed_rows += static_cast<double>(rel->size());
    }
  }
  out.mean_node_bytes = total_bytes / static_cast<double>(nodes);
  return out;
}

}  // namespace

int main() {
  const Workload w = TheWorkload();
  PrintTitle("Ablation: shard placement scale-out — per-node storage and "
             "convergence, " + std::to_string(w.keys) + " placed keys x " +
             std::to_string(w.hops) + "-hop closure, NoAuth");
  PrintHeader({"nodes", "shards", "fixpoint_s", "max_node_bytes",
               "mean_node_bytes", "placed_rows", "msgs", "bytes"});

  // Finer than the CI suite's SB_SHARDS=7: with only 7 placement units
  // over 6 nodes one node necessarily owns 2-3 of them (>= 28% of the
  // placed data before hash skew), which drowns the scale-out curve in
  // quantization. 61 keeps the prime convention at ring granularity.
  constexpr int kShards = 61;
  const std::vector<size_t> sizes = {1, 6, 18};

  const char* out_path = std::getenv("SB_BENCH_OUT");
  FILE* json = nullptr;
  if (out_path != nullptr) {
    json = std::fopen(out_path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    std::fprintf(json,
                 "{\n  \"benchmark\": \"abl_placement\",\n"
                 "  \"workload\": \"placed-closure-%zux%zu\",\n"
                 "  \"rows\": [\n",
                 w.keys, w.hops);
  }

  bool first_row = true;
  bool gate_ok = true;
  double bytes_at_1 = 0, rows_at_1 = 0;
  for (size_t n : sizes) {
    auto out = Run(n, kShards);
    if (!out.ok()) {
      std::fprintf(stderr, "FAILED nodes=%zu: %s\n", n,
                   out.status().ToString().c_str());
      if (json) std::fclose(json);
      return 1;
    }
    PrintRow({static_cast<double>(n), static_cast<double>(kShards),
              out->fixpoint_s, out->max_node_bytes, out->mean_node_bytes,
              out->placed_rows, out->messages, out->bytes});
    if (json) {
      std::fprintf(json,
                   "%s    {\"nodes\": %zu, \"shards\": %d, "
                   "\"fixpoint_s\": %.6f, \"max_node_relation_bytes\": %.0f, "
                   "\"mean_node_relation_bytes\": %.0f, "
                   "\"placed_rows\": %.0f, \"total_messages\": %.0f, "
                   "\"total_bytes\": %.0f}",
                   first_row ? "" : ",\n", n, kShards, out->fixpoint_s,
                   out->max_node_bytes, out->mean_node_bytes,
                   out->placed_rows, out->messages, out->bytes);
      first_row = false;
    }
    if (out->rejected != 0) {
      std::fprintf(stderr, "GATE FAILED nodes=%zu: %.0f rejected payloads\n",
                   n, out->rejected);
      gate_ok = false;
    }
    if (n == 1) {
      bytes_at_1 = out->max_node_bytes;
      rows_at_1 = out->placed_rows;
    } else {
      // Placement is partitioned, not replicated: the cluster-wide
      // placed fixpoint must match the 1-node run row-for-row.
      if (out->placed_rows != rows_at_1) {
        std::fprintf(stderr,
                     "GATE FAILED nodes=%zu: %.0f placed rows != 1-node "
                     "fixpoint (%.0f)\n",
                     n, out->placed_rows, rows_at_1);
        gate_ok = false;
      }
    }
    if (n == 6 && !(out->max_node_bytes < 0.6 * bytes_at_1)) {
      std::fprintf(stderr,
                   "GATE FAILED: max per-node bytes at 6 nodes (%.0f) not "
                   "below 60%% of the 1-node figure (%.0f)\n",
                   out->max_node_bytes, bytes_at_1);
      gate_ok = false;
    }
    if (n == 18 && !(out->fixpoint_s > 0)) {
      std::fprintf(stderr, "GATE FAILED: 18-node run did not converge\n");
      gate_ok = false;
    }
  }
  if (json) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
  }
  return gate_ok ? 0 : 1;
}
