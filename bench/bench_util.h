// Shared helpers for the figure-reproduction harnesses.
//
// Each fig* binary regenerates one figure from the paper's evaluation
// (§8), printing the series as tab-separated rows. Environment knobs:
//   SB_QUICK=1     small sweep (CI-friendly)
//   SB_MAX_NODES=N cap the cluster-size sweep
//   SB_TRIALS=K    trials per data point (paper used 10; default 1)
#ifndef SECUREBLOX_BENCH_BENCH_UTIL_H_
#define SECUREBLOX_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace secureblox::bench {

inline size_t EnvSize(const char* name, size_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def;
  return static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

inline bool QuickMode() { return EnvSize("SB_QUICK", 0) != 0; }

/// §5.2 batching knobs for the fig harnesses (see SimCluster::Config):
///   SB_BATCH_TUPLES    max tuples per coalesced delivery transaction
///                      (0 = unbounded, 1 = one message per transaction)
///   SB_BATCH_DELAY_US  extra simulated microseconds a batch is held open
/// The figures default to granularity 1 — the paper's measured
/// one-transaction-per-message configuration — so the per-message deltas
/// they report stay meaningful; abl_txn_granularity sweeps the spectrum.
inline size_t BatchTuples() { return EnvSize("SB_BATCH_TUPLES", 1); }
inline double BatchDelayS() {
  return static_cast<double>(EnvSize("SB_BATCH_DELAY_US", 0)) * 1e-6;
}

inline size_t Trials() { return std::max<size_t>(1, EnvSize("SB_TRIALS", 1)); }

/// Cluster sizes for the path-vector sweep (paper: 6..72 step 6).
inline std::vector<size_t> PathVectorSizes() {
  std::vector<size_t> sizes;
  if (QuickMode()) {
    sizes = {6, 12, 18};
  } else {
    sizes = {6, 12, 18, 24, 30, 36, 48, 60, 72};
  }
  size_t cap = EnvSize("SB_MAX_NODES", 72);
  std::vector<size_t> out;
  for (size_t s : sizes) {
    if (s <= cap) out.push_back(s);
  }
  return out;
}

/// Cluster sizes for the hash-join overhead sweep (paper: 6..48).
inline std::vector<size_t> HashJoinSizes() {
  std::vector<size_t> sizes;
  if (QuickMode()) {
    sizes = {6, 12};
  } else {
    sizes = {6, 12, 18, 24, 30, 36, 42, 48};
  }
  size_t cap = EnvSize("SB_MAX_NODES", 48);
  std::vector<size_t> out;
  for (size_t s : sizes) {
    if (s <= cap) out.push_back(s);
  }
  return out;
}

inline void PrintTitle(const std::string& title) {
  std::printf("# %s\n", title.c_str());
}

inline void PrintHeader(const std::vector<std::string>& cols) {
  for (size_t i = 0; i < cols.size(); ++i) {
    std::printf("%s%s", i ? "\t" : "", cols[i].c_str());
  }
  std::printf("\n");
}

inline void PrintRow(const std::vector<double>& row) {
  for (size_t i = 0; i < row.size(); ++i) {
    std::printf("%s%.4f", i ? "\t" : "", row[i]);
  }
  std::printf("\n");
}

/// Print a CDF as (x, fraction) steps from a sample vector.
inline void PrintCdf(const std::string& series, std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  for (size_t i = 0; i < samples.size(); ++i) {
    std::printf("%s\t%.4f\t%.4f\n", series.c_str(), samples[i],
                static_cast<double>(i + 1) / samples.size());
  }
}

}  // namespace secureblox::bench

#endif  // SECUREBLOX_BENCH_BENCH_UTIL_H_
