// Ablation: SIMD filter kernels (SB_SIMD) A/B under the columnar layout.
//
// Two workloads, each run with the kernels pinned to scalar (SB_SIMD=0)
// and resolved to the best host level (auto):
//
//   wide_filter_scan — a wide selective filter scan that the planner
//     sends down the kScanAll batch path:
//       hit(K) <- tick(T), span(K, T, "pad..").
//     span has two distinct (T, pad) filter pairs, so the tracked
//     two-column statistic estimates half the relation matches and the
//     cost-based probe choice picks the linear scan; the actually-bound
//     tag is rare, so the fused two-filter kernel does nearly all the
//     work and emission is cheap. Seeding happens before the clock
//     starts — the measured phase is tick churn, i.e. repeated fused
//     full-shard scans. Gate (AVX2 hosts only, auto-skipped with a note
//     elsewhere): auto must beat scalar by >= 1.25x.
//
//   narrow_recursion — the fig08-flavoured recursion + aggregate over a
//     narrow entity relation: all selective probes, batch sizes of a
//     handful of slots. SIMD cannot win here; the gate checks the
//     dispatch overhead does not lose: auto must stay within 1.10x of
//     scalar (min-of-trials on both sides).
//
// Timings are min-of-SB_TRIALS (default 3). SB_QUICK=1 shrinks sizes for
// CI. Set SB_BENCH_OUT=<path> to record results as BENCH_simd.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "datalog/parser.h"
#include "engine/kernels.h"
#include "engine/workspace.h"

using namespace secureblox;
using namespace secureblox::bench;
using engine::FactUpdate;
using engine::Workspace;
using datalog::Value;

namespace {

bool Install(Workspace* ws, const std::string& src) {
  auto program = datalog::Parse(src);
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return false;
  }
  Status st = ws->Install(program.value());
  if (!st.ok()) {
    std::fprintf(stderr, "install: %s\n", st.ToString().c_str());
    return false;
  }
  return true;
}

bool Apply(Workspace* ws, const std::vector<FactUpdate>& ins,
           const std::vector<FactUpdate>& del = {}) {
  auto r = ws->Apply(ins, del);
  if (!r.ok()) {
    std::fprintf(stderr, "apply: %s\n", r.status().ToString().c_str());
    return false;
  }
  return true;
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

constexpr const char* kPad = "pad-filter-column-constant-payload";

/// Selective wide scan on the batch path: every tick insert/retract
/// replays a fused two-filter kernel over the whole span relation.
double RunWideFilterScan(int simd) {
  // The span's two filter columns (~1 MB of codes) stay cache-resident;
  // four identical rules re-scan them per delta tick, so nearly all the
  // measured work is fused-kernel passes over warm columns rather than
  // per-transaction fixed costs.
  const int64_t span_rows = QuickMode() ? 120000 : 250000;
  const int64_t cold_stride = 2999;  // rare tags: ~0.03% of rows match
  const int64_t cold_tags = 3;       // hot + 3 cold = 4 distinct filter pairs
  const int hit_rules = 4;
  const int iters = QuickMode() ? 12 : 24;

  Workspace ws;
  ws.fixpoint_options().columnar = true;
  ws.fixpoint_options().simd = simd;
  std::string program = R"(
        tick(T) -> string(T).
        span(K, T, P) -> int(K), string(T), string(P).
  )";
  for (int r = 0; r < hit_rules; ++r) {
    const std::string head = "hit" + std::to_string(r);
    program += head + "(K) -> int(K).\n" + head +
               "(K) <- tick(T), span(K, T, \"" + kPad + "\").\n";
  }
  if (!Install(&ws, program)) return -1;

  // Seed outside the measured phase: ingest cost is identical at every
  // SIMD level; the A/B isolates the scan kernels.
  std::vector<FactUpdate> seed;
  seed.reserve(static_cast<size_t>(span_rows));
  for (int64_t i = 0; i < span_rows; ++i) {
    const std::string tag =
        i % cold_stride == 0
            ? "tag-cold-" + std::to_string((i / cold_stride) % cold_tags)
            : "tag-hot";
    seed.push_back(
        {"span", {Value::Int(i), Value::Str(tag), Value::Str(kPad)}});
  }
  if (!Apply(&ws, seed)) return -1;

  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    // Each cold tick joins ~0.03% of span through a full-shard fused
    // kernel pass (one per delta row, on insert and again on retract);
    // the miss tick is answered by the dictionary (equal cost at every
    // level — it never reaches the kernels).
    std::vector<FactUpdate> ticks;
    for (int64_t c = 0; c < cold_tags; ++c) {
      ticks.push_back({"tick", {Value::Str("tag-cold-" + std::to_string(c))}});
    }
    ticks.push_back({"tick", {Value::Str("tag-miss-" + std::to_string(i))}});
    if (!Apply(&ws, ticks)) return -1;
    if (!Apply(&ws, {}, ticks)) return -1;
  }
  return Seconds(t0);
}

/// Narrow recursion: tiny selective probes, no wide scans — pins the
/// kernel dispatch overhead on the row-at-a-time-sized batches.
double RunNarrowRecursion(int simd) {
  const int nodes = QuickMode() ? 32 : 48;

  Workspace ws;
  ws.fixpoint_options().columnar = true;
  ws.fixpoint_options().simd = simd;
  if (!Install(&ws, R"(
        node(X) -> .
        link(X, Y) -> node(X), node(Y).
        reachable(X, Y) -> node(X), node(Y).
        reachable(X, Y) <- link(X, Y).
        reachable(X, Y) <- link(X, Z), reachable(Z, Y).
        dist[X] = D -> node(X), int(D).
        dist[X] = D <- agg<< D = count() >> reachable(X, _anon).
      )")) {
    return -1;
  }
  auto label = [](int i) { return Value::Str("v" + std::to_string(i)); };
  uint64_t lcg = 0x5eedULL;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg >> 33;
  };
  std::vector<FactUpdate> links;
  for (int i = 0; i < nodes; ++i) {
    links.push_back({"link", {label(i), label((i + 1) % nodes)}});
    links.push_back(
        {"link", {label(i), label(static_cast<int>(next() % nodes))}});
  }

  auto t0 = std::chrono::steady_clock::now();
  if (!Apply(&ws, links)) return -1;
  for (int i = 0; i < nodes; i += 5) {
    FactUpdate f{"link", {label(i), label((i + 1) % nodes)}};
    if (!Apply(&ws, {}, {f})) return -1;
    if (!Apply(&ws, {f})) return -1;
  }
  return Seconds(t0);
}

/// Interleaved A/B min-of-trials: alternate scalar and auto within each
/// trial so clock/load drift on a shared runner hits both sides alike.
/// Returns {scalar_min, auto_min}, either negative on failure.
std::pair<double, double> InterleavedMinOfTrials(double (*fn)(int),
                                                 size_t trials) {
  double scalar = -1, autod = -1;
  for (size_t t = 0; t < trials; ++t) {
    double s = fn(0);
    if (s < 0) return {s, s};  // propagate failure
    if (scalar < 0 || s < scalar) scalar = s;
    double a = fn(2);
    if (a < 0) return {a, a};
    if (autod < 0 || a < autod) autod = a;
  }
  return {scalar, autod};
}

}  // namespace

int main() {
  const engine::SimdMode host = engine::DetectSimdMode();
  PrintTitle(std::string("Ablation: SIMD filter kernels (SB_SIMD) A/B — "
                         "wide selective batch scan and a narrow "
                         "recursion; host=") +
             engine::SimdModeName(host));
  PrintHeader({"workload", "simd", "seconds"});

  struct Workload {
    const char* name;
    double (*fn)(int);
    size_t trials;  // the short noise-bound workload takes extra trials
  };
  const Workload workloads[] = {
      {"wide_filter_scan", RunWideFilterScan, Trials()},
      {"narrow_recursion", RunNarrowRecursion, Trials() * 3},
  };

  const char* out_path = std::getenv("SB_BENCH_OUT");
  FILE* json = nullptr;
  if (out_path != nullptr) {
    json = std::fopen(out_path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    std::fprintf(json,
                 "{\n  \"benchmark\": \"abl_simd_ab\",\n"
                 "  \"host\": \"%s\",\n  \"trials\": %zu,\n  \"rows\": [\n",
                 engine::SimdModeName(host), Trials());
  }

  bool gate_ok = true;
  bool first_row = true;
  std::vector<std::pair<std::string, double>> speedups;
  for (const Workload& w : workloads) {
    // simd knob: 0 pins scalar, 2 = auto resolves to the host's best.
    const auto [scalar, autod] = InterleavedMinOfTrials(w.fn, w.trials);
    if (scalar < 0 || autod < 0) {
      if (json) std::fclose(json);
      return 1;
    }
    for (const auto& [simd, secs] :
         {std::pair<int, double>{0, scalar}, {1, autod}}) {
      std::printf("%s\t%d\t%.4f\n", w.name, simd, secs);
      if (json) {
        std::fprintf(json,
                     "%s    {\"workload\": \"%s\", \"simd\": %d, "
                     "\"seconds\": %.6f}",
                     first_row ? "" : ",\n", w.name, simd, secs);
        first_row = false;
      }
    }
    const double speedup = scalar / autod;
    speedups.emplace_back(w.name, speedup);
    std::printf("# %s speedup (scalar/auto): %.2fx\n", w.name, speedup);
  }

  // Gates. The wide-scan win is only promised where AVX2 exists; on
  // weaker hosts the gate is skipped with a note so CI stays green on
  // any x86 (or non-x86) runner. The narrow no-regression bound holds
  // everywhere: auto must not lose to scalar by more than dispatch
  // noise.
  const double wide = speedups[0].second;
  const double narrow = speedups[1].second;
  const bool avx2 = host == engine::SimdMode::kAvx2;
  if (!avx2) {
    std::printf("# note: host lacks AVX2 (%s) — wide_filter_scan gate "
                "skipped\n",
                engine::SimdModeName(host));
  } else if (wide < 1.25) {
    std::fprintf(stderr,
                 "GATE FAILED: wide_filter_scan speedup %.2fx < 1.25x\n",
                 wide);
    gate_ok = false;
  }
  if (narrow < 1.0 / 1.10) {
    std::fprintf(stderr,
                 "GATE FAILED: narrow_recursion %.2fx slower with SIMD on "
                 "(bound 1.10x)\n",
                 1.0 / narrow);
    gate_ok = false;
  }

  if (json) {
    std::fprintf(json,
                 "\n  ],\n  \"speedup\": {\"wide_filter_scan\": %.4f, "
                 "\"narrow_recursion\": %.4f},\n"
                 "  \"gates\": {\"wide_min\": 1.25, \"wide_gated\": %s, "
                 "\"narrow_regression_max\": 1.10, \"ok\": %s}\n}\n",
                 wide, narrow, avx2 ? "true" : "false",
                 gate_ok ? "true" : "false");
    std::fclose(json);
  }
  return gate_ok ? 0 : 1;
}
