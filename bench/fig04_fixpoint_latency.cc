// Figure 4: path-vector fixpoint latency (s) vs. cluster size, without
// encryption. Series: NoAuth, HMAC, RSA.
//
// Paper observation to reproduce: NoAuth < HMAC < RSA at every size, with
// the gap widening as clusters grow (their 36-node anchor: ~15s / ~19s /
// ~25s on 2010 hardware; we report simulated seconds on modeled GbE +
// measured compute — shapes comparable, absolute values differ).
#include "apps/pathvector.h"
#include "bench_util.h"

using namespace secureblox;
using namespace secureblox::bench;

int main() {
  PrintTitle(
      "Figure 4: Fixpoint latency (s) with no encryption — path-vector "
      "protocol, random graphs (avg degree 3)");
  PrintHeader({"nodes", "NoAuth", "HMAC", "RSA"});

  const std::vector<std::pair<policy::AuthScheme, const char*>> schemes = {
      {policy::AuthScheme::kNone, "NoAuth"},
      {policy::AuthScheme::kHmac, "HMAC"},
      {policy::AuthScheme::kRsa, "RSA"},
  };

  for (size_t n : PathVectorSizes()) {
    std::vector<double> row = {static_cast<double>(n)};
    for (const auto& [auth, name] : schemes) {
      double total = 0;
      for (size_t trial = 0; trial < Trials(); ++trial) {
        apps::PathVectorConfig config;
        config.max_batch_tuples = BatchTuples();
        config.max_batch_delay_s = BatchDelayS();
        config.num_nodes = n;
        config.auth = auth;
        config.graph_seed = 1000 + trial;
        auto result = apps::RunPathVector(config);
        if (!result.ok()) {
          std::fprintf(stderr, "FAILED n=%zu %s: %s\n", n, name,
                       result.status().ToString().c_str());
          return 1;
        }
        total += result->metrics.fixpoint_latency_s;
      }
      row.push_back(total / Trials());
    }
    PrintRow(row);
  }
  return 0;
}
