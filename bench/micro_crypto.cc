// Microbenchmarks for the cryptographic substrate (google-benchmark):
// the primitive costs that drive every curve in Figures 4-12.
#include <benchmark/benchmark.h>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/hmac_drbg.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace secureblox::crypto {
namespace {

Bytes MakePayload(size_t size) {
  Bytes out(size);
  for (size_t i = 0; i < size; ++i) out[i] = static_cast<uint8_t>(i * 131);
  return out;
}

void BM_Sha1(benchmark::State& state) {
  Bytes payload = MakePayload(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1Digest(payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  Bytes payload = MakePayload(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256Digest(payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024);

void BM_HmacSha1(benchmark::State& state) {
  Bytes key = MakePayload(16);
  Bytes payload = MakePayload(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha1(key, payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha1)->Arg(64)->Arg(1024);

void BM_AesCtrEncrypt(benchmark::State& state) {
  Bytes key = MakePayload(16);
  Bytes nonce = MakePayload(16);
  Bytes payload = MakePayload(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(AesCtrEncrypt(key, nonce, payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtrEncrypt)->Arg(64)->Arg(1024)->Arg(65536);

const RsaKeyPair& KeyOf(size_t bits) {
  static auto* keys = new std::map<size_t, RsaKeyPair>();
  auto it = keys->find(bits);
  if (it == keys->end()) {
    HmacDrbg drbg(BytesFromString("bench-" + std::to_string(bits)));
    it = keys->emplace(bits, RsaGenerateKeyPair(bits, [&] {
                                return drbg.NextU32();
                              }).value())
             .first;
  }
  return it->second;
}

void BM_RsaSign(benchmark::State& state) {
  const RsaKeyPair& key = KeyOf(state.range(0));
  Bytes payload = MakePayload(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaSign(key, payload));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024);

void BM_RsaVerify(benchmark::State& state) {
  const RsaKeyPair& key = KeyOf(state.range(0));
  Bytes payload = MakePayload(256);
  Bytes sig = RsaSign(key, payload).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaVerify(key.pub, payload, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024);

void BM_RsaKeyGen512(benchmark::State& state) {
  uint64_t salt = 0;
  for (auto _ : state) {
    HmacDrbg drbg(BytesFromString("keygen" + std::to_string(salt++)));
    benchmark::DoNotOptimize(
        RsaGenerateKeyPair(512, [&] { return drbg.NextU32(); }));
  }
}
BENCHMARK(BM_RsaKeyGen512)->Unit(benchmark::kMillisecond);

void BM_HmacDrbg(benchmark::State& state) {
  HmacDrbg drbg(MakePayload(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(drbg.Generate(64));
  }
}
BENCHMARK(BM_HmacDrbg);

}  // namespace
}  // namespace secureblox::crypto

BENCHMARK_MAIN();
