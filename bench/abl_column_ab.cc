// Ablation: columnar relation storage (SB_COLUMNAR) A/B.
//
// Two workloads, each run with the row-major layout (columnar off) and
// the dictionary-encoded column-segment layout (columnar on):
//
//   wide_scan — a wide 7-column relation (5 long low-cardinality string
//     columns) joined through a selective multi-column filter
//       hit(K) <- query(Q), wide(K, Q, "tagA..", .., "tagE..").
//     The measured phase seeds the wide relation and then churns both
//     sides: wide-row delete/reinsert batches (storage + secondary-index
//     maintenance on string-heavy rows) and query probes with a hit/miss
//     mix (misses answer from the dictionary without touching buckets).
//     Row-major pays string heap traffic on every stored row, every
//     index-bucket key, and every probe key; columnar stores u32 codes
//     and interns each distinct string once. Gate: columnar-on wins.
//
//   narrow_row_path — the fig08-flavoured recursion + aggregate over a
//     narrow 2-column entity relation. Dictionary indirection cannot win
//     here; the gate checks it does not lose: columnar-on must stay
//     within 1.35x of row-major (min-of-trials on both sides).
//
// Timings are min-of-SB_TRIALS (default 3). SB_QUICK=1 shrinks sizes for
// CI. Set SB_BENCH_OUT=<path> to record results as BENCH_column.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "datalog/parser.h"
#include "engine/workspace.h"

using namespace secureblox;
using namespace secureblox::bench;
using engine::FactUpdate;
using engine::Workspace;
using datalog::Value;

namespace {

bool Install(Workspace* ws, const std::string& src) {
  auto program = datalog::Parse(src);
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return false;
  }
  Status st = ws->Install(program.value());
  if (!st.ok()) {
    std::fprintf(stderr, "install: %s\n", st.ToString().c_str());
    return false;
  }
  return true;
}

bool Apply(Workspace* ws, const std::vector<FactUpdate>& ins,
           const std::vector<FactUpdate>& del = {}) {
  auto r = ws->Apply(ins, del);
  if (!r.ok()) {
    std::fprintf(stderr, "apply: %s\n", r.status().ToString().c_str());
    return false;
  }
  return true;
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RunStats {
  double seconds = -1;      // measured phase
  double dict_bytes = 0;    // EngineStats gauges after the run
  double column_bytes = 0;
  double index_bytes = 0;
};

// 40+ char payload so every row-major copy is a real heap string.
std::string Tag(char col, int64_t v) {
  return std::string(1, col) + "-column-payload-padding-padding-padding-" +
         std::to_string(v);
}

/// Wide string-heavy relation under a selective filter join plus
/// delete/reinsert churn. Seeding is part of the measured phase: bulk
/// ingest cost is exactly what the storage layout changes.
RunStats RunWideScan(bool columnar) {
  const int64_t wide_rows = QuickMode() ? 1500 : 6000;
  const int64_t qkeys = 64;  // distinct Q values in wide
  const int64_t tags = 16;   // distinct values per string column
  const int iters = QuickMode() ? 15 : 40;

  Workspace ws;
  ws.fixpoint_options().columnar = columnar;
  const std::string rule =
      "hit(K) <- query(Q), wide(K, Q, \"" + Tag('a', 3) + "\", \"" +
      Tag('b', 3) + "\", \"" + Tag('c', 3) + "\", \"" + Tag('d', 3) +
      "\", \"" + Tag('e', 3) + "\").";
  if (!Install(&ws, R"(
        query(Q) -> int(Q).
        wide(K, Q, A, B, C, D, E) -> int(K), int(Q), string(A), string(B),
                                     string(C), string(D), string(E).
        hit(K) -> int(K).
      )" + rule)) {
    return {};
  }

  auto wide_row = [&](int64_t i) {
    const int64_t tag = i % tags;
    return FactUpdate{"wide",
                      {Value::Int(i), Value::Int(i % qkeys),
                       Value::Str(Tag('a', tag)), Value::Str(Tag('b', tag)),
                       Value::Str(Tag('c', tag)), Value::Str(Tag('d', tag)),
                       Value::Str(Tag('e', tag))}};
  };

  auto t0 = std::chrono::steady_clock::now();
  std::vector<FactUpdate> seed;
  seed.reserve(static_cast<size_t>(wide_rows));
  for (int64_t i = 0; i < wide_rows; ++i) seed.push_back(wide_row(i));
  if (!Apply(&ws, seed)) return {};

  for (int i = 0; i < iters; ++i) {
    // Hit probe: Q present, filter tags match 1/16 of its rows.
    FactUpdate hit{"query", {Value::Int((i * 7) % qkeys)}};
    // Miss probe: Q absent from wide — the dictionary answers directly.
    FactUpdate miss{"query", {Value::Int(qkeys + 1000 + i)}};
    if (!Apply(&ws, {hit, miss})) return {};
    if (!Apply(&ws, {}, {hit, miss})) return {};
    // Storage churn: delete and reinsert a stripe of wide rows
    // (swap-remove + index patching on string-heavy rows).
    std::vector<FactUpdate> stripe;
    for (int64_t k = 0; k < 40; ++k) {
      stripe.push_back(wide_row((i * 40 + k) % wide_rows));
    }
    if (!Apply(&ws, {}, stripe)) return {};
    if (!Apply(&ws, stripe)) return {};
  }
  RunStats out;
  out.seconds = Seconds(t0);
  out.dict_bytes = static_cast<double>(ws.stats().relation_dict_bytes);
  out.column_bytes = static_cast<double>(ws.stats().relation_column_bytes);
  out.index_bytes = static_cast<double>(ws.stats().relation_index_bytes);
  return out;
}

/// Narrow int/entity recursion: the columnar indirection must not
/// regress the row-at-a-time probe paths.
RunStats RunNarrowRowPath(bool columnar) {
  const int nodes = QuickMode() ? 24 : 48;

  Workspace ws;
  ws.fixpoint_options().columnar = columnar;
  if (!Install(&ws, R"(
        node(X) -> .
        link(X, Y) -> node(X), node(Y).
        reachable(X, Y) -> node(X), node(Y).
        reachable(X, Y) <- link(X, Y).
        reachable(X, Y) <- link(X, Z), reachable(Z, Y).
        dist[X] = D -> node(X), int(D).
        dist[X] = D <- agg<< D = count() >> reachable(X, _anon).
      )")) {
    return {};
  }
  auto label = [](int i) { return Value::Str("v" + std::to_string(i)); };
  uint64_t lcg = 0x5eedULL;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg >> 33;
  };
  std::vector<FactUpdate> links;
  for (int i = 0; i < nodes; ++i) {
    links.push_back({"link", {label(i), label((i + 1) % nodes)}});
    links.push_back(
        {"link", {label(i), label(static_cast<int>(next() % nodes))}});
  }

  auto t0 = std::chrono::steady_clock::now();
  if (!Apply(&ws, links)) return {};
  for (int i = 0; i < nodes; i += 5) {
    FactUpdate f{"link", {label(i), label((i + 1) % nodes)}};
    if (!Apply(&ws, {}, {f})) return {};
    if (!Apply(&ws, {f})) return {};
  }
  RunStats out;
  out.seconds = Seconds(t0);
  out.dict_bytes = static_cast<double>(ws.stats().relation_dict_bytes);
  out.column_bytes = static_cast<double>(ws.stats().relation_column_bytes);
  out.index_bytes = static_cast<double>(ws.stats().relation_index_bytes);
  return out;
}

RunStats MinOfTrials(RunStats (*fn)(bool), bool columnar) {
  RunStats best;
  for (size_t t = 0; t < Trials(); ++t) {
    RunStats r = fn(columnar);
    if (r.seconds < 0) return r;  // propagate failure
    if (best.seconds < 0 || r.seconds < best.seconds) best = r;
  }
  return best;
}

}  // namespace

int main() {
  PrintTitle(
      "Ablation: columnar relation storage (SB_COLUMNAR) A/B — wide "
      "string-heavy filter join and a narrow row-at-a-time recursion");
  PrintHeader({"workload", "columnar", "seconds", "dict_bytes",
               "column_bytes", "index_bytes"});

  struct Workload {
    const char* name;
    RunStats (*fn)(bool);
  };
  const Workload workloads[] = {
      {"wide_scan", RunWideScan},
      {"narrow_row_path", RunNarrowRowPath},
  };

  const char* out_path = std::getenv("SB_BENCH_OUT");
  FILE* json = nullptr;
  if (out_path != nullptr) {
    json = std::fopen(out_path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    std::fprintf(json,
                 "{\n  \"benchmark\": \"abl_column_ab\",\n"
                 "  \"trials\": %zu,\n  \"rows\": [\n",
                 Trials());
  }

  bool gate_ok = true;
  bool first_row = true;
  std::vector<std::pair<std::string, double>> speedups;
  for (const Workload& w : workloads) {
    RunStats off = MinOfTrials(w.fn, false);
    RunStats on = MinOfTrials(w.fn, true);
    if (off.seconds < 0 || on.seconds < 0) {
      if (json) std::fclose(json);
      return 1;
    }
    for (const auto& [columnar, r] :
         {std::pair<int, const RunStats&>{0, off}, {1, on}}) {
      std::printf("%s\t%d\t%.4f\t%.0f\t%.0f\t%.0f\n", w.name, columnar,
                  r.seconds, r.dict_bytes, r.column_bytes, r.index_bytes);
      if (json) {
        std::fprintf(json,
                     "%s    {\"workload\": \"%s\", \"columnar\": %d, "
                     "\"seconds\": %.6f, \"dict_bytes\": %.0f, "
                     "\"column_bytes\": %.0f, \"index_bytes\": %.0f}",
                     first_row ? "" : ",\n", w.name, columnar, r.seconds,
                     r.dict_bytes, r.column_bytes, r.index_bytes);
        first_row = false;
      }
    }
    const double speedup = off.seconds / on.seconds;
    speedups.emplace_back(w.name, speedup);
    std::printf("# %s speedup (row/columnar): %.2fx\n", w.name, speedup);
  }

  // Gates: the wide string-heavy workload must win; the narrow
  // row-at-a-time workload must not regress (generous bound — both
  // sides are min-of-trials).
  const double wide = speedups[0].second;
  const double narrow = speedups[1].second;
  if (wide < 1.10) {
    std::fprintf(stderr, "GATE FAILED: wide_scan speedup %.2fx < 1.10x\n",
                 wide);
    gate_ok = false;
  }
  if (narrow < 1.0 / 1.35) {
    std::fprintf(stderr,
                 "GATE FAILED: narrow_row_path regression %.2fx slower "
                 "with columnar on (bound 1.35x)\n",
                 1.0 / narrow);
    gate_ok = false;
  }

  if (json) {
    std::fprintf(json,
                 "\n  ],\n  \"speedup\": {\"wide_scan\": %.4f, "
                 "\"narrow_row_path\": %.4f},\n"
                 "  \"gates\": {\"wide_min\": 1.10, "
                 "\"narrow_regression_max\": 1.35, \"ok\": %s}\n}\n",
                 wide, narrow, gate_ok ? "true" : "false");
    std::fclose(json);
  }
  return gate_ok ? 0 : 1;
}
