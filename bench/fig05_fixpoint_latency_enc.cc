// Figure 5: path-vector fixpoint latency (s) with encryption. Series:
// NoAuth, NoAuth-AES, HMAC-AES, RSA-AES.
//
// Paper observation: AES adds a modest increment on top of each
// authentication scheme (RSA-AES ~26s vs RSA ~25s at 36 nodes).
#include "apps/pathvector.h"
#include "bench_util.h"

using namespace secureblox;
using namespace secureblox::bench;

int main() {
  PrintTitle(
      "Figure 5: Fixpoint latency (s) with encryption — path-vector "
      "protocol");
  PrintHeader({"nodes", "NoAuth", "NoAuth-AES", "HMAC-AES", "RSA-AES"});

  struct Scheme {
    policy::AuthScheme auth;
    policy::EncScheme enc;
  };
  const std::vector<Scheme> schemes = {
      {policy::AuthScheme::kNone, policy::EncScheme::kNone},
      {policy::AuthScheme::kNone, policy::EncScheme::kAes},
      {policy::AuthScheme::kHmac, policy::EncScheme::kAes},
      {policy::AuthScheme::kRsa, policy::EncScheme::kAes},
  };

  for (size_t n : PathVectorSizes()) {
    std::vector<double> row = {static_cast<double>(n)};
    for (const Scheme& s : schemes) {
      double total = 0;
      for (size_t trial = 0; trial < Trials(); ++trial) {
        apps::PathVectorConfig config;
        config.max_batch_tuples = BatchTuples();
        config.max_batch_delay_s = BatchDelayS();
        config.num_nodes = n;
        config.auth = s.auth;
        config.enc = s.enc;
        config.graph_seed = 1000 + trial;
        auto result = apps::RunPathVector(config);
        if (!result.ok()) {
          std::fprintf(stderr, "FAILED n=%zu: %s\n", n,
                       result.status().ToString().c_str());
          return 1;
        }
        total += result->metrics.fixpoint_latency_s;
      }
      row.push_back(total / Trials());
    }
    PrintRow(row);
  }
  return 0;
}
