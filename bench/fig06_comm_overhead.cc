// Figure 6: per-node communication overhead (KB) vs. cluster size, no
// encryption. Series: NoAuth, HMAC, RSA.
//
// Paper observation (36 nodes): NoAuth ~197 KB < HMAC ~223 KB (SHA-1 adds
// 20 bytes per message) < RSA ~258 KB (signature per message). Our wire
// format batches differently so absolute KB differ, but the ordering and
// the per-message deltas (20 B MAC, 128 B RSA-1024 signature) hold.
#include "apps/pathvector.h"
#include "bench_util.h"

using namespace secureblox;
using namespace secureblox::bench;

int main() {
  PrintTitle(
      "Figure 6: Per-node communication overhead (KB) with no encryption — "
      "path-vector protocol");
  PrintHeader({"nodes", "NoAuth", "HMAC", "RSA"});

  const std::vector<std::pair<policy::AuthScheme, const char*>> schemes = {
      {policy::AuthScheme::kNone, "NoAuth"},
      {policy::AuthScheme::kHmac, "HMAC"},
      {policy::AuthScheme::kRsa, "RSA"},
  };

  for (size_t n : PathVectorSizes()) {
    std::vector<double> row = {static_cast<double>(n)};
    for (const auto& [auth, name] : schemes) {
      double total = 0;
      for (size_t trial = 0; trial < Trials(); ++trial) {
        apps::PathVectorConfig config;
        config.num_nodes = n;
        config.auth = auth;
        config.graph_seed = 1000 + trial;
        config.max_batch_tuples = BatchTuples();
        config.max_batch_delay_s = BatchDelayS();
        auto result = apps::RunPathVector(config);
        if (!result.ok()) {
          std::fprintf(stderr, "FAILED n=%zu %s: %s\n", n, name,
                       result.status().ToString().c_str());
          return 1;
        }
        total += result->metrics.MeanPerNodeKb();
      }
      row.push_back(total / Trials());
    }
    PrintRow(row);
  }
  return 0;
}
