// Ablation: cost-based rule execution planning (SB_PLAN) A/B.
//
// Two workloads, each run with the planner off (baseline written-order
// bodies) and on (cardinality-driven reordering + static probe paths):
//
//   adversarial_join — a deliberately worst-ordered body
//       out(X, Y) <- big(X, Y), filt(X).
//     over a large seeded `big` (default 20k rows) with tiny `filt`
//     churn transactions. The written order enumerates all of `big` per
//     delta and probes `filt`; the planner leads with the delta/selective
//     atom and turns `big` into an indexed probe on its bound join
//     column. Acceptance gate: planner-on >= 1.5x faster.
//
//   small_recursion — a fig08-flavoured transitive-closure + aggregate
//     workload whose bodies are already well ordered. The planner cannot
//     win here; the gate checks it does not lose: planner-on must stay
//     within 1.35x of planner-off (min-of-trials on both sides to shed
//     scheduler noise).
//
// Timings are min-of-SB_TRIALS (default 3). SB_QUICK=1 shrinks sizes for
// CI. Set SB_BENCH_OUT=<path> to record results as BENCH_plan.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "datalog/parser.h"
#include "engine/workspace.h"

using namespace secureblox;
using namespace secureblox::bench;
using engine::FactUpdate;
using engine::Workspace;
using datalog::Value;

namespace {

bool Install(Workspace* ws, const std::string& src) {
  auto program = datalog::Parse(src);
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return false;
  }
  Status st = ws->Install(program.value());
  if (!st.ok()) {
    std::fprintf(stderr, "install: %s\n", st.ToString().c_str());
    return false;
  }
  return true;
}

bool Apply(Workspace* ws, const std::vector<FactUpdate>& ins,
           const std::vector<FactUpdate>& del = {}) {
  auto r = ws->Apply(ins, del);
  if (!r.ok()) {
    std::fprintf(stderr, "apply: %s\n", r.status().ToString().c_str());
    return false;
  }
  return true;
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RunStats {
  double seconds = -1;       // measured churn phase, seed excluded
  double plan_builds = 0;
  double frame_allocs = 0;   // process-global delta across the run
};

/// Worst-ordered join: big seeded once, tiny filt churn measured.
RunStats RunAdversarialJoin(bool plan) {
  const size_t big_rows = QuickMode() ? 4000 : 20000;
  const size_t keys = big_rows / 4;  // ~4 rows per join key
  const int iters = QuickMode() ? 20 : 60;

  Workspace ws;
  ws.fixpoint_options().plan = plan;
  if (!Install(&ws, R"(
        big(X, Y) -> int(X), int(Y).
        filt(X) -> int(X).
        out(X, Y) -> int(X), int(Y).
        out(X, Y) <- big(X, Y), filt(X).
      )")) {
    return {};
  }
  std::vector<FactUpdate> seed;
  seed.reserve(big_rows);
  for (size_t i = 0; i < big_rows; ++i) {
    seed.push_back({"big", {Value::Int(static_cast<int64_t>(i % keys)),
                            Value::Int(static_cast<int64_t>(i))}});
  }
  if (!Apply(&ws, seed)) return {};

  const uint64_t frames_before = engine::EvalFrameAllocs();
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    FactUpdate f{"filt", {Value::Int(static_cast<int64_t>((i * 37) % keys))}};
    if (!Apply(&ws, {f})) return {};
    if (!Apply(&ws, {}, {f})) return {};
  }
  RunStats out;
  out.seconds = Seconds(t0);
  out.plan_builds = static_cast<double>(ws.stats().plan_builds);
  out.frame_allocs =
      static_cast<double>(engine::EvalFrameAllocs() - frames_before);
  return out;
}

/// Already-well-ordered recursion: the planner must not regress it.
RunStats RunSmallRecursion(bool plan) {
  const int nodes = QuickMode() ? 24 : 48;

  Workspace ws;
  ws.fixpoint_options().plan = plan;
  if (!Install(&ws, R"(
        node(X) -> .
        link(X, Y) -> node(X), node(Y).
        reachable(X, Y) -> node(X), node(Y).
        reachable(X, Y) <- link(X, Y).
        reachable(X, Y) <- link(X, Z), reachable(Z, Y).
        dist[X] = D -> node(X), int(D).
        dist[X] = D <- agg<< D = count() >> reachable(X, _anon).
      )")) {
    return {};
  }
  auto label = [](int i) { return Value::Str("v" + std::to_string(i)); };
  uint64_t lcg = 0x5eedULL;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg >> 33;
  };
  std::vector<FactUpdate> links;
  for (int i = 0; i < nodes; ++i) {
    links.push_back({"link", {label(i), label((i + 1) % nodes)}});
    links.push_back(
        {"link", {label(i), label(static_cast<int>(next() % nodes))}});
  }

  const uint64_t frames_before = engine::EvalFrameAllocs();
  auto t0 = std::chrono::steady_clock::now();
  if (!Apply(&ws, links)) return {};
  for (int i = 0; i < nodes; i += 5) {
    FactUpdate f{"link", {label(i), label((i + 1) % nodes)}};
    if (!Apply(&ws, {}, {f})) return {};
    if (!Apply(&ws, {f})) return {};
  }
  RunStats out;
  out.seconds = Seconds(t0);
  out.plan_builds = static_cast<double>(ws.stats().plan_builds);
  out.frame_allocs =
      static_cast<double>(engine::EvalFrameAllocs() - frames_before);
  return out;
}

RunStats MinOfTrials(RunStats (*fn)(bool), bool plan) {
  RunStats best;
  for (size_t t = 0; t < Trials(); ++t) {
    RunStats r = fn(plan);
    if (r.seconds < 0) return r;  // propagate failure
    if (best.seconds < 0 || r.seconds < best.seconds) best = r;
  }
  return best;
}

}  // namespace

int main() {
  PrintTitle(
      "Ablation: cost-based rule planning (SB_PLAN) A/B — adversarial "
      "worst-ordered join and an already-well-ordered recursion");
  PrintHeader({"workload", "plan", "seconds", "plan_builds", "frame_allocs"});

  struct Workload {
    const char* name;
    RunStats (*fn)(bool);
  };
  const Workload workloads[] = {
      {"adversarial_join", RunAdversarialJoin},
      {"small_recursion", RunSmallRecursion},
  };

  const char* out_path = std::getenv("SB_BENCH_OUT");
  FILE* json = nullptr;
  if (out_path != nullptr) {
    json = std::fopen(out_path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    std::fprintf(json,
                 "{\n  \"benchmark\": \"abl_plan_ab\",\n"
                 "  \"trials\": %zu,\n  \"rows\": [\n",
                 Trials());
  }

  bool gate_ok = true;
  bool first_row = true;
  std::vector<std::pair<std::string, double>> speedups;
  for (const Workload& w : workloads) {
    RunStats off = MinOfTrials(w.fn, false);
    RunStats on = MinOfTrials(w.fn, true);
    if (off.seconds < 0 || on.seconds < 0) {
      if (json) std::fclose(json);
      return 1;
    }
    for (const auto& [plan, r] :
         {std::pair<int, const RunStats&>{0, off}, {1, on}}) {
      std::printf("%s\t%d\t%.4f\t%.0f\t%.0f\n", w.name, plan, r.seconds,
                  r.plan_builds, r.frame_allocs);
      if (json) {
        std::fprintf(json,
                     "%s    {\"workload\": \"%s\", \"plan\": %d, "
                     "\"seconds\": %.6f, \"plan_builds\": %.0f, "
                     "\"frame_allocs\": %.0f}",
                     first_row ? "" : ",\n", w.name, plan, r.seconds,
                     r.plan_builds, r.frame_allocs);
        first_row = false;
      }
    }
    const double speedup = off.seconds / on.seconds;
    speedups.emplace_back(w.name, speedup);
    std::printf("# %s speedup (off/on): %.2fx\n", w.name, speedup);
  }

  // Gates: the adversarial join must win big; the well-ordered workload
  // must not regress (generous bound — both sides are min-of-trials).
  const double adversarial = speedups[0].second;
  const double small = speedups[1].second;
  if (adversarial < 1.5) {
    std::fprintf(stderr,
                 "GATE FAILED: adversarial_join speedup %.2fx < 1.5x\n",
                 adversarial);
    gate_ok = false;
  }
  if (small < 1.0 / 1.35) {
    std::fprintf(stderr,
                 "GATE FAILED: small_recursion regression %.2fx slower "
                 "with planner on (bound 1.35x)\n",
                 1.0 / small);
    gate_ok = false;
  }

  if (json) {
    std::fprintf(json,
                 "\n  ],\n  \"speedup\": {\"adversarial_join\": %.4f, "
                 "\"small_recursion\": %.4f},\n"
                 "  \"gates\": {\"adversarial_min\": 1.5, "
                 "\"small_regression_max\": 1.35, \"ok\": %s}\n}\n",
                 adversarial, small, gate_ok ? "true" : "false");
    std::fclose(json);
  }
  return gate_ok ? 0 : 1;
}
