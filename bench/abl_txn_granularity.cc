// Ablation B (paper §5.2): transaction granularity. SecureBlox processes a
// batch of incoming facts per ACID transaction and sends nothing until the
// transaction commits; pipelined semi-naïve (PSN) evaluation processes
// tuple-at-a-time. We approximate the PSN end of the spectrum by feeding
// the initial links one-per-transaction instead of one batch per node.
//
// Expected shape: fine-grained transactions lower the time to the *first*
// node's convergence (lower latency to first output) but cost more
// messages and more total work — the trade-off §5.2 discusses.
#include <algorithm>

#include "apps/pathvector.h"
#include "bench_util.h"
#include "dist/cluster.h"

using namespace secureblox;
using namespace secureblox::bench;
using datalog::Value;
using engine::FactUpdate;

namespace {

struct Outcome {
  double first_converged_s = 0;
  double fixpoint_s = 0;
  double messages = 0;
};

Result<Outcome> Run(size_t n, bool per_tuple) {
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;
  dist::SimCluster::Config cfg;
  cfg.num_nodes = n;
  cfg.sources = {policy::PreludeSource(), apps::PathVectorSource(),
                 policy::SaysPolicySource(popts)};
  cfg.credentials.rsa_bits = 1024;
  cfg.credentials.seed = "abl-granularity";
  SB_ASSIGN_OR_RETURN(std::unique_ptr<dist::SimCluster> cluster,
                      dist::SimCluster::Create(std::move(cfg)));

  auto edges = apps::RandomConnectedGraph(n, 3.0, 6100);
  auto principal = [](size_t i) { return "p" + std::to_string(i); };
  std::vector<std::vector<FactUpdate>> initial(n);
  for (const auto& e : edges) {
    initial[e.a].push_back(
        {"link", {Value::Str(principal(e.a)), Value::Str(principal(e.b))}});
    initial[e.b].push_back(
        {"link", {Value::Str(principal(e.b)), Value::Str(principal(e.a))}});
  }
  for (size_t i = 0; i < n; ++i) {
    if (per_tuple) {
      for (auto& fact : initial[i]) {
        cluster->ScheduleInsert(static_cast<net::NodeIndex>(i), {fact});
      }
    } else if (!initial[i].empty()) {
      cluster->ScheduleInsert(static_cast<net::NodeIndex>(i),
                              std::move(initial[i]));
    }
  }
  SB_ASSIGN_OR_RETURN(auto metrics, cluster->Run());
  Outcome out;
  out.fixpoint_s = metrics.fixpoint_latency_s;
  out.first_converged_s =
      *std::min_element(metrics.node_convergence_s.begin(),
                        metrics.node_convergence_s.end());
  out.messages = static_cast<double>(metrics.total_messages);
  return out;
}

}  // namespace

int main() {
  PrintTitle(
      "Ablation: batch transactions vs tuple-at-a-time transactions "
      "(PSN-style pipelining limit) — path-vector protocol, NoAuth");
  PrintHeader({"nodes", "batch_first_s", "tuple_first_s", "batch_fixpoint_s",
               "tuple_fixpoint_s", "batch_msgs", "tuple_msgs"});

  std::vector<size_t> sizes = QuickMode()
                                  ? std::vector<size_t>{6}
                                  : std::vector<size_t>{6, 12, 18, 24};
  for (size_t n : sizes) {
    auto batch = Run(n, false);
    auto tuple = Run(n, true);
    if (!batch.ok() || !tuple.ok()) {
      std::fprintf(stderr, "FAILED n=%zu\n", n);
      return 1;
    }
    PrintRow({static_cast<double>(n), batch->first_converged_s,
              tuple->first_converged_s, batch->fixpoint_s, tuple->fixpoint_s,
              batch->messages, tuple->messages});
  }
  return 0;
}
