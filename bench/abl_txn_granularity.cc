// Ablation B (paper §5.2): transaction granularity. SecureBlox processes a
// batch of incoming facts per ACID transaction and sends nothing until the
// transaction commits; pipelined semi-naïve (PSN) evaluation processes
// tuple-at-a-time. The dist layer's coalescing knob (`max_batch_tuples`)
// makes the whole spectrum measurable: granularity 1 applies one message
// per transaction (the PSN-flavoured fine end), larger caps coalesce
// queued deliveries across sources, and 0 (∞) coalesces everything queued
// while the node was busy.
//
// Expected shape: fine granularity lowers the latency to the *first*
// node's convergence but costs more messages, more bytes, and more total
// transactions — coarse granularity amortizes per-message crypto and
// commit overhead, collapsing intermediate advertisements. The message
// count must shrink monotonically toward the coarse end (the acceptance
// gate enforced below: msgs at ∞ < msgs at 1).
//
// Set SB_BENCH_OUT=<path> to record the sweep as BENCH_dist.json.
#include <algorithm>
#include <cstdio>

#include "apps/pathvector.h"
#include "bench_util.h"

using namespace secureblox;
using namespace secureblox::bench;

namespace {

struct Outcome {
  double first_converged_s = 0;
  double fixpoint_s = 0;
  double messages = 0;
  double bytes = 0;
  double mean_tx_ms = 0;
  double delivery_txns = 0;
  double coalesced_msgs = 0;
};

Result<Outcome> Run(size_t n, size_t batch_tuples) {
  // The fig06 workload: path-vector on a random connected graph, NoAuth.
  apps::PathVectorConfig config;
  config.num_nodes = n;
  config.graph_seed = 6100;
  config.max_batch_tuples = batch_tuples;
  // Hold batches open for two base-latency windows so coalescing comes
  // from the network model, not from how slowly this host happens to run
  // the fixpoint (compute busy-windows are measured wall-clock). A full
  // batch fires at the cap-filling arrival, so granularity 1 is
  // unaffected and stays the one-transaction-per-message baseline.
  config.max_batch_delay_s = 200e-6;
  SB_ASSIGN_OR_RETURN(apps::PathVectorResult result,
                      apps::RunPathVector(config));
  const dist::SimCluster::Metrics& m = result.metrics;
  Outcome out;
  out.fixpoint_s = m.fixpoint_latency_s;
  out.first_converged_s = *std::min_element(m.node_convergence_s.begin(),
                                            m.node_convergence_s.end());
  out.messages = static_cast<double>(m.total_messages);
  out.bytes = static_cast<double>(m.total_bytes);
  out.mean_tx_ms = m.MeanTxDurationMs();
  out.delivery_txns = static_cast<double>(m.delivery_transactions);
  out.coalesced_msgs = static_cast<double>(m.coalesced_messages);
  return out;
}

}  // namespace

int main() {
  PrintTitle(
      "Ablation: transaction granularity (§5.2) — coalesced deliveries on "
      "the fig06 path-vector workload, NoAuth. batch_tuples 0 = unbounded");
  PrintHeader({"nodes", "batch_tuples", "first_s", "fixpoint_s", "msgs",
               "bytes", "mean_tx_ms", "delivery_txns", "coalesced_msgs"});

  const std::vector<size_t> sizes =
      QuickMode() ? std::vector<size_t>{6} : std::vector<size_t>{6, 12, 18};
  const std::vector<size_t> granularities = {1, 4, 64, 0};

  const char* out_path = std::getenv("SB_BENCH_OUT");
  FILE* json = nullptr;
  if (out_path != nullptr) {
    json = std::fopen(out_path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    std::fprintf(json,
                 "{\n  \"benchmark\": \"abl_txn_granularity\",\n"
                 "  \"workload\": \"pathvector-fig06\",\n  \"rows\": [\n");
  }

  bool first_row = true;
  bool gate_ok = true;
  for (size_t n : sizes) {
    double msgs_at_1 = 0, msgs_at_inf = 0;
    for (size_t g : granularities) {
      auto out = Run(n, g);
      if (!out.ok()) {
        std::fprintf(stderr, "FAILED n=%zu batch=%zu: %s\n", n, g,
                     out.status().ToString().c_str());
        if (json) std::fclose(json);
        return 1;
      }
      if (g == 1) msgs_at_1 = out->messages;
      if (g == 0) msgs_at_inf = out->messages;
      PrintRow({static_cast<double>(n), static_cast<double>(g),
                out->first_converged_s, out->fixpoint_s, out->messages,
                out->bytes, out->mean_tx_ms, out->delivery_txns,
                out->coalesced_msgs});
      if (json) {
        std::fprintf(json,
                     "%s    {\"nodes\": %zu, \"batch_tuples\": %zu, "
                     "\"first_converged_s\": %.6f, \"fixpoint_s\": %.6f, "
                     "\"total_messages\": %.0f, \"total_bytes\": %.0f, "
                     "\"mean_tx_ms\": %.4f, \"delivery_txns\": %.0f, "
                     "\"coalesced_msgs\": %.0f}",
                     first_row ? "" : ",\n", n, g, out->first_converged_s,
                     out->fixpoint_s, out->messages, out->bytes,
                     out->mean_tx_ms, out->delivery_txns, out->coalesced_msgs);
        first_row = false;
      }
    }
    // Acceptance gate: coalescing must shrink traffic on this workload.
    if (!(msgs_at_inf < msgs_at_1)) {
      std::fprintf(stderr,
                   "GATE FAILED n=%zu: msgs at batch=inf (%.0f) not below "
                   "batch=1 (%.0f)\n",
                   n, msgs_at_inf, msgs_at_1);
      gate_ok = false;
    }
  }
  if (json) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
  }
  return gate_ok ? 0 : 1;
}
