// Microbenchmarks for counting-based incremental deletion: deleting one
// base fact from a large derived database must cost work proportional to
// the affected tuples, not the database size. The reported counters come
// from FixpointStats — `seeded` staying flat (and near zero) as N grows is
// the difference from the old over-delete-and-rederive engine, which
// replayed every derived tuple on every delete.
#include <benchmark/benchmark.h>

#include "datalog/parser.h"
#include "engine/workspace.h"

namespace secureblox::engine {
namespace {

using datalog::Parse;
using datalog::Value;

// Non-recursive projection: counting path, no rederivation at all.
void BM_CountingDeleteFlat(benchmark::State& state) {
  const int64_t n = state.range(0);
  Workspace ws;
  (void)ws.Install(Parse(R"(
    pair(X, Y) -> string(X), string(Y).
    left(X) -> string(X).
    right(Y) -> string(Y).
    left(X) <- pair(X, Y).
    right(Y) <- pair(X, Y).
  )").value());
  std::vector<FactUpdate> inserts;
  for (int64_t i = 0; i < n; ++i) {
    inserts.push_back({"pair",
                       {Value::Str("k" + std::to_string(i)),
                        Value::Str("v" + std::to_string(i))}});
  }
  (void)ws.Apply(inserts);

  uint64_t retract_firings = 0, seeded = 0, deleted = 0;
  int64_t victim = 0;
  for (auto _ : state) {
    std::vector<Value> fact = {Value::Str("k" + std::to_string(victim)),
                               Value::Str("v" + std::to_string(victim))};
    auto del = ws.Apply({}, {{"pair", fact}});
    benchmark::DoNotOptimize(del);
    retract_firings += del->fixpoint.retract_firings;
    seeded += del->fixpoint.rederive_seeded;
    deleted += del->fixpoint.deleted;
    (void)ws.Apply({{"pair", fact}});
    victim = (victim + 1) % n;
  }
  state.counters["retract_firings/iter"] =
      static_cast<double>(retract_firings) /
      static_cast<double>(state.iterations());
  state.counters["seeded/iter"] =
      static_cast<double>(seeded) / static_cast<double>(state.iterations());
  state.counters["deleted/iter"] =
      static_cast<double>(deleted) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_CountingDeleteFlat)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

// A recursive group forces group-local DRed, but the rederivation stays
// inside the (small, fixed-size) transitive-closure group while the
// unrelated predicate family grows with N.
void BM_GroupLocalDRedScoped(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t chain = 12;
  Workspace ws;
  (void)ws.Install(Parse(R"(
    node(X) -> .
    link(X, Y) -> node(X), node(Y).
    reachable(X, Y) -> node(X), node(Y).
    reachable(X, Y) <- link(X, Y).
    reachable(X, Y) <- link(X, Z), reachable(Z, Y).
    pair(X, Y) -> string(X), string(Y).
    left(X) -> string(X).
    left(X) <- pair(X, Y).
  )").value());
  std::vector<FactUpdate> inserts;
  for (int64_t i = 0; i < n; ++i) {
    inserts.push_back({"pair",
                       {Value::Str("k" + std::to_string(i)),
                        Value::Str("v" + std::to_string(i))}});
  }
  for (int64_t i = 0; i + 1 < chain; ++i) {
    inserts.push_back({"link",
                       {Value::Str("c" + std::to_string(i)),
                        Value::Str("c" + std::to_string(i + 1))}});
  }
  (void)ws.Apply(inserts);

  uint64_t seeded = 0, rederives = 0;
  for (auto _ : state) {
    std::vector<Value> edge = {Value::Str("c5"), Value::Str("c6")};
    auto del = ws.Apply({}, {{"link", edge}});
    benchmark::DoNotOptimize(del);
    seeded += del->fixpoint.rederive_seeded;
    rederives += del->fixpoint.group_rederives;
    (void)ws.Apply({{"link", edge}});
  }
  state.counters["seeded/iter"] =
      static_cast<double>(seeded) / static_cast<double>(state.iterations());
  state.counters["rederives/iter"] =
      static_cast<double>(rederives) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_GroupLocalDRedScoped)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

// Sanity: a delete whose cascade really is large costs proportionally to
// the cascade, not more.
void BM_CountingDeleteCascade(benchmark::State& state) {
  const int64_t fan = state.range(0);
  Workspace ws;
  (void)ws.Install(Parse(R"(
    hub(X) -> string(X).
    spoke(X, Y) -> string(X), string(Y).
    live(Y) -> string(Y).
    live(Y) <- hub(X), spoke(X, Y).
  )").value());
  std::vector<FactUpdate> inserts = {{"hub", {Value::Str("h")}}};
  for (int64_t i = 0; i < fan; ++i) {
    inserts.push_back(
        {"spoke", {Value::Str("h"), Value::Str("s" + std::to_string(i))}});
  }
  (void)ws.Apply(inserts);

  for (auto _ : state) {
    auto del = ws.Apply({}, {{"hub", {Value::Str("h")}}});
    benchmark::DoNotOptimize(del);
    (void)ws.Apply({{"hub", {Value::Str("h")}}});
  }
  state.SetItemsProcessed(state.iterations() * fan);
}
BENCHMARK(BM_CountingDeleteCascade)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace secureblox::engine

BENCHMARK_MAIN();
