// Figure 7: average transaction duration (ms) vs. cluster size. Series:
// NoAuth, HMAC, RSA-AES.
//
// Paper observation: RSA-AES transactions cost several times NoAuth/HMAC
// (computation-heavy signing dominates), and durations drift up with
// cluster size as each transaction joins links against more paths.
#include "apps/pathvector.h"
#include "bench_util.h"

using namespace secureblox;
using namespace secureblox::bench;

int main() {
  PrintTitle("Figure 7: Average transaction duration (ms) — path-vector");
  PrintHeader({"nodes", "NoAuth", "HMAC", "RSA-AES"});

  struct Scheme {
    policy::AuthScheme auth;
    policy::EncScheme enc;
  };
  const std::vector<Scheme> schemes = {
      {policy::AuthScheme::kNone, policy::EncScheme::kNone},
      {policy::AuthScheme::kHmac, policy::EncScheme::kNone},
      {policy::AuthScheme::kRsa, policy::EncScheme::kAes},
  };

  for (size_t n : PathVectorSizes()) {
    std::vector<double> row = {static_cast<double>(n)};
    for (const Scheme& s : schemes) {
      double total = 0;
      for (size_t trial = 0; trial < Trials(); ++trial) {
        apps::PathVectorConfig config;
        config.num_nodes = n;
        config.auth = s.auth;
        config.enc = s.enc;
        config.graph_seed = 1000 + trial;
        config.max_batch_tuples = BatchTuples();
        config.max_batch_delay_s = BatchDelayS();
        auto result = apps::RunPathVector(config);
        if (!result.ok()) {
          std::fprintf(stderr, "FAILED n=%zu: %s\n", n,
                       result.status().ToString().c_str());
          return 1;
        }
        total += result->metrics.MeanTxDurationMs();
      }
      row.push_back(total / Trials());
    }
    PrintRow(row);
  }
  return 0;
}
