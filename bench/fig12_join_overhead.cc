// Figure 12: per-node communication overhead (KB) of the secure hash join
// vs. cluster size. Series: NoAuth, RSA-AES.
//
// Paper observations: greater parallelism spreads the fixed workload, so
// per-node overhead falls with cluster size — but with diminishing returns
// as messages shrink (framing and per-message security overhead amortize
// worse over small batches).
#include "apps/hashjoin.h"
#include "bench_util.h"

using namespace secureblox;
using namespace secureblox::bench;

int main() {
  PrintTitle(
      "Figure 12: Per-node communication overhead (KB) — secure hash join");
  PrintHeader({"nodes", "NoAuth", "RSA-AES"});

  struct Scheme {
    policy::AuthScheme auth;
    policy::EncScheme enc;
  };
  const std::vector<Scheme> schemes = {
      {policy::AuthScheme::kNone, policy::EncScheme::kNone},
      {policy::AuthScheme::kRsa, policy::EncScheme::kAes},
  };

  for (size_t n : HashJoinSizes()) {
    std::vector<double> row = {static_cast<double>(n)};
    for (const Scheme& s : schemes) {
      double total = 0;
      for (size_t trial = 0; trial < Trials(); ++trial) {
        apps::HashJoinConfig config;
        config.max_batch_tuples = BatchTuples();
        config.max_batch_delay_s = BatchDelayS();
        config.num_nodes = n;
        config.auth = s.auth;
        config.enc = s.enc;
        config.seed = 5000 + trial;
        auto result = apps::RunHashJoin(config);
        if (!result.ok()) {
          std::fprintf(stderr, "FAILED n=%zu: %s\n", n,
                       result.status().ToString().c_str());
          return 1;
        }
        total += result->metrics.MeanPerNodeKb();
      }
      row.push_back(total / Trials());
    }
    PrintRow(row);
  }
  return 0;
}
