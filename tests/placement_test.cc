// Partitioned shard placement: ShardMap ring properties, co-shardability
// validation, and the tentpole invariant — the distributed fixpoint over
// placed relations (tuples, support counts, anonymous labels) is
// byte-identical to the single-node baseline for any placement at any
// node count, through insert/delete churn and membership changes.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "dist/cluster.h"
#include "dist/placement.h"
#include "engine/placement.h"
#include "engine/workspace.h"
#include "policy/says_policy.h"

namespace secureblox::dist {
namespace {

using datalog::Value;
using engine::FactUpdate;

// -- ShardMap ---------------------------------------------------------------

TEST(ShardMapTest, InitialMapCoversAllMembers) {
  ShardMap map = ShardMap::Initial(4);
  EXPECT_EQ(map.epoch(), 1u);
  ASSERT_EQ(map.members().size(), 4u);
  std::set<uint32_t> owners;
  for (size_t s = 0; s < 256; ++s) {
    uint32_t o = map.OwnerOf(s);
    EXPECT_LT(o, 4u);
    owners.insert(o);
  }
  // 32 virtual points per node over 256 shards: every node owns some.
  EXPECT_EQ(owners.size(), 4u);
}

TEST(ShardMapTest, OwnershipIsDeterministic) {
  ShardMap a = ShardMap::Initial(5);
  ShardMap b = ShardMap::Initial(5);
  for (size_t s = 0; s < 64; ++s) EXPECT_EQ(a.OwnerOf(s), b.OwnerOf(s));
}

TEST(ShardMapTest, JoinMovesOnlyAMinorityOfShards) {
  ShardMap before = ShardMap::Initial(4);
  ShardMap after = before;
  after.Join(4);
  EXPECT_EQ(after.epoch(), 2u);
  EXPECT_TRUE(after.HasMember(4));
  constexpr size_t kShards = 1024;
  size_t moved = 0;
  for (size_t s = 0; s < kShards; ++s) {
    if (before.OwnerOf(s) != after.OwnerOf(s)) {
      ++moved;
      // Consistent hashing: shards only move *to* the joiner.
      EXPECT_EQ(after.OwnerOf(s), 4u);
    }
  }
  EXPECT_GT(moved, 0u);
  // Expected 1/5 of the space; allow generous slack for hash variance.
  EXPECT_LT(moved, kShards / 2);
}

TEST(ShardMapTest, LeaveReassignsOnlyTheLeaverShards) {
  ShardMap before = ShardMap::Initial(5);
  ShardMap after = before;
  after.Leave(2);
  EXPECT_EQ(after.epoch(), 2u);
  EXPECT_FALSE(after.HasMember(2));
  for (size_t s = 0; s < 1024; ++s) {
    EXPECT_NE(after.OwnerOf(s), 2u);
    if (before.OwnerOf(s) != 2) {
      // Shards the leaver did not own stay put.
      EXPECT_EQ(after.OwnerOf(s), before.OwnerOf(s));
    }
  }
}

TEST(ShardMapTest, NoOpChangesDoNotBumpEpoch) {
  ShardMap map = ShardMap::Initial(2);
  uint64_t e = map.epoch();
  map.Join(1);  // already a member
  EXPECT_EQ(map.epoch(), e);
  map.Leave(9);  // not a member
  EXPECT_EQ(map.epoch(), e);
  map.Leave(1);
  map.Leave(0);  // last member: refused
  EXPECT_TRUE(map.HasMember(0));
}

// -- co-shardability validation --------------------------------------------

void InstallProgram(engine::Workspace* ws, const std::string& src) {
  auto program = datalog::Parse(src);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Status st = ws->Install(program.value());
  ASSERT_TRUE(st.ok()) << st.ToString();
}

std::unordered_set<datalog::PredId> Placed(
    const engine::Workspace& ws, const std::vector<std::string>& names) {
  std::unordered_set<datalog::PredId> out;
  for (const auto& n : names) out.insert(ws.catalog().Lookup(n).value());
  return out;
}

TEST(ValidatePlacementTest, RejectsEntityShardKey) {
  engine::Workspace ws;
  InstallProgram(&ws, R"(
    node(X) -> .
    hop(X, Y) -> node(X), node(Y).
  )");
  Status st = engine::ValidatePlacement(ws, Placed(ws, {"hop"}));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("entity"), std::string::npos);
}

TEST(ValidatePlacementTest, RejectsAnchorDisagreement) {
  engine::Workspace ws;
  InstallProgram(&ws, R"(
    a(X, Y) -> string(X), string(Y).
    b(X, Y) -> string(X), string(Y).
    c(X, Y) -> string(X), string(Y).
    c(X, Y) <- a(X, Z), b(Z, Y).
  )");
  Status st = engine::ValidatePlacement(ws, Placed(ws, {"a", "b", "c"}));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("anchor"), std::string::npos);
}

TEST(ValidatePlacementTest, RejectsRecursiveReKeying) {
  engine::Workspace ws;
  InstallProgram(&ws, R"(
    p(X, Y) -> string(X), string(Y).
    p(Y, X) <- p(X, Y).
  )");
  Status st = engine::ValidatePlacement(ws, Placed(ws, {"p"}));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("recursi"), std::string::npos);
}

TEST(ValidatePlacementTest, AcceptsCoShardableProgram) {
  engine::Workspace ws;
  InstallProgram(&ws, R"(
    link(X, Y) -> string(X), string(Y).
    seed(X, Y) -> string(X), string(Y).
    grow(X, Y) -> string(X), string(Y).
    inv(X, Y) -> string(X), string(Y).
    grow(X, Y) <- seed(X, Y).
    grow(X, Y) <- grow(X, Z), link(Z, Y).
    inv(Y, X) <- seed(X, Y).
  )");
  Status st =
      engine::ValidatePlacement(ws, Placed(ws, {"seed", "grow", "inv"}));
  EXPECT_TRUE(st.ok()) << st.ToString();
}

// -- placement invariance ----------------------------------------------------

// Co-shardable app: `link` is a replicated dimension relation; `seed` is
// the placed base relation; `grow` closes recursively shard-locally;
// `inv` re-keys across shards (routed support-adds); `tagged` re-keys
// and mints anonymous `tag` entities, whose content-addressed labels
// must come out identical wherever the rule fires.
const char* kPlacementApp = R"(
link(X, Y) -> string(X), string(Y).
seed(X, Y) -> string(X), string(Y).
grow(X, Y) -> string(X), string(Y).
inv(X, Y) -> string(X), string(Y).
tag(P) -> .
tagged(X, P) -> string(X), tag(P).
grow(X, Y) <- seed(X, Y).
grow(X, Y) <- grow(X, Z), link(Z, Y).
inv(Y, X) <- seed(X, Y).
tagged(Y, P) <- seed(X, Y).
)";

const std::vector<std::string>& PlacedPreds() {
  static const std::vector<std::string> kPreds = {"seed", "grow", "inv",
                                                  "tagged"};
  return kPreds;
}

SimCluster::Config PlacementConfig(size_t nodes, int shards,
                                   size_t initial_members = 0) {
  policy::SaysPolicyOptions popts;
  SimCluster::Config cfg;
  cfg.num_nodes = nodes;
  cfg.sources = {policy::PreludeSource(), kPlacementApp,
                 policy::SaysPolicySource(popts)};
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "placement-test";
  cfg.placement = true;
  cfg.placed_preds = PlacedPreds();
  cfg.storage_shards = shards;
  cfg.initial_members = initial_members;
  return cfg;
}

// The same logical workload for every topology: replicated links at every
// node, placed seeds spread over the member nodes, then two rounds of
// mixed insert/delete churn. Final net seeds:
//   {(k_i, a|b|c) by i%3, i != 1} + (k0, b) + (k1, c)  minus (k0, a).
void ScheduleWorkload(SimCluster* cluster, size_t members) {
  constexpr size_t kKeys = 24;
  std::vector<FactUpdate> links = {
      {"link", {Value::Str("a"), Value::Str("b")}},
      {"link", {Value::Str("b"), Value::Str("c")}},
      {"link", {Value::Str("c"), Value::Str("d")}},
  };
  for (size_t n = 0; n < cluster->num_nodes(); ++n) {
    cluster->ScheduleInsert(static_cast<net::NodeIndex>(n), links);
  }
  const char* cols[] = {"a", "b", "c"};
  for (size_t i = 0; i < kKeys; ++i) {
    std::string key = "k" + std::to_string(i);
    cluster->ScheduleInsert(
        static_cast<net::NodeIndex>(i % members),
        {{"seed", {Value::Str(key), Value::Str(cols[i % 3])}}});
  }
  // k0 gains a second derivation path for grow(k0, b): seed(k0,a)+link
  // and seed(k0,b) — support 2 until the churn below deletes seed(k0,a).
  cluster->ScheduleInsert(0, {{"seed", {Value::Str("k0"), Value::Str("b")}}});
  // Churn from nodes that do not own the affected shards (routed deletes).
  cluster->ScheduleUpdate(
      static_cast<net::NodeIndex>(1 % members),
      {{"seed", {Value::Str("k1"), Value::Str("c")}}},
      {{"seed", {Value::Str("k1"), Value::Str("b")}}}, 0.5);
  cluster->ScheduleUpdate(
      static_cast<net::NodeIndex>(2 % members), {},
      {{"seed", {Value::Str("k0"), Value::Str("a")}}}, 0.7);
}

// Dump of all placed tuples across the cluster: rendered tuple + exact
// support count -> number of nodes holding it. Placement must keep every
// placed tuple on exactly one node.
std::map<std::string, int> DumpPlaced(SimCluster& cluster) {
  std::map<std::string, int> out;
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    const engine::Workspace& ws =
        cluster.node(static_cast<net::NodeIndex>(n)).workspace();
    const datalog::Catalog& catalog = ws.catalog();
    for (const std::string& name : PlacedPreds()) {
      auto id = catalog.Lookup(name);
      if (!id.ok()) continue;
      const engine::Relation* rel = ws.GetRelationIfExists(id.value());
      if (rel == nullptr || rel->empty()) continue;
      for (const auto& t : rel->AllTuples()) {
        std::string line = name + "(";
        for (size_t i = 0; i < t.size(); ++i) {
          if (i) line += ",";
          line += catalog.ValueToString(t[i]);
        }
        line += ")x" + std::to_string(rel->SupportCount(t));
        ++out[line];
      }
    }
  }
  return out;
}

std::string Render(const std::map<std::string, int>& dump) {
  std::string out;
  for (const auto& [line, n] : dump) {
    out += line + (n != 1 ? " @" + std::to_string(n) + "nodes" : "") + "\n";
  }
  return out;
}

struct RunOutcome {
  std::map<std::string, int> dump;
  SimCluster::Metrics metrics;
};

RunOutcome RunPlacement(size_t nodes, int shards) {
  auto cluster = SimCluster::Create(PlacementConfig(nodes, shards));
  EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
  ScheduleWorkload(cluster->get(), nodes);
  auto metrics = (*cluster)->Run();
  EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->rejected_batches, 0u);
  return {DumpPlaced(**cluster), std::move(metrics).value()};
}

TEST(PlacementInvarianceTest, FixpointIdenticalAcrossNodeAndShardCounts) {
  RunOutcome baseline = RunPlacement(1, 1);
  ASSERT_FALSE(baseline.dump.empty());
  // The baseline itself is sane: the closure, the re-keyed inverse, the
  // double-support row, and an anonymous label minted under the shared
  // cluster tag.
  std::string rendered = Render(baseline.dump);
  EXPECT_NE(rendered.find("grow(\"k0\",\"d\")x1"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("inv(\"c\",\"k1\")x1"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("@cluster#"), std::string::npos) << rendered;
  // seed(k1, b) was churned away: nothing derived from it survives.
  EXPECT_EQ(rendered.find("grow(\"k1\",\"b\")x"), std::string::npos)
      << rendered;

  for (size_t nodes : {size_t{2}, size_t{5}}) {
    for (int shards : {1, 7}) {
      RunOutcome run = RunPlacement(nodes, shards);
      EXPECT_EQ(Render(run.dump), rendered)
          << nodes << " nodes, " << shards << " shards";
      // Partitioned, not replicated: every placed tuple on exactly one
      // node.
      for (const auto& [line, count] : run.dump) {
        EXPECT_EQ(count, 1) << line << " at " << nodes << "x" << shards;
      }
    }
  }
}

TEST(PlacementInvarianceTest, JoinAndLeaveMidRunPreserveTheFixpoint) {
  const std::string baseline = Render(RunPlacement(1, 1).dump);

  constexpr size_t kNodes = 5;
  constexpr int kShards = 7;
  // Node 4 starts outside the map and joins mid-churn; the post-join
  // owner of shard 0 (deterministic consistent hashing) then leaves, so
  // at least shard 0 is guaranteed to hand off.
  ShardMap expected = ShardMap::Initial(4);
  expected.Join(4);
  const uint32_t leaver = expected.OwnerOf(0);
  ASSERT_NE(leaver, 4u);  // the fresh joiner stays

  auto cluster =
      SimCluster::Create(PlacementConfig(kNodes, kShards,
                                         /*initial_members=*/4));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ScheduleWorkload(cluster->get(), /*members=*/4);
  (*cluster)->ScheduleJoin(4, 0.6);
  (*cluster)->ScheduleLeave(leaver, 0.9);
  auto metrics = (*cluster)->Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  EXPECT_EQ(metrics->rejected_batches, 0u);
  EXPECT_EQ(metrics->membership_changes, 2u);
  EXPECT_GT(metrics->handoff_rows, 0u);
  EXPECT_GT(metrics->handoff_transfers, 0u);

  auto dump = DumpPlaced(**cluster);
  EXPECT_EQ(Render(dump), baseline);
  for (const auto& [line, count] : dump) EXPECT_EQ(count, 1) << line;

  // The departed node holds no placed data.
  const engine::Workspace& left_ws = (*cluster)->node(leaver).workspace();
  for (const std::string& name : PlacedPreds()) {
    auto id = left_ws.catalog().Lookup(name);
    ASSERT_TRUE(id.ok());
    const engine::Relation* rel = left_ws.GetRelationIfExists(id.value());
    EXPECT_TRUE(rel == nullptr || rel->empty()) << name;
  }

  // Satellite: handoff consumes simulated time. Every handoff transaction
  // has a real duration, and per-node transactions never overlap — the
  // handoff pushed the node's clock forward like any other work.
  size_t handoffs = 0;
  std::vector<double> last_end(kNodes, 0.0);
  for (const SimCluster::TxRecord& tx : metrics->transactions) {
    EXPECT_GE(tx.start_s, last_end[tx.node] - 1e-12);
    EXPECT_GT(tx.end_s, tx.start_s);
    last_end[tx.node] = tx.end_s;
    if (tx.is_handoff) ++handoffs;
  }
  EXPECT_GT(handoffs, 0u);
}

}  // namespace
}  // namespace secureblox::dist
