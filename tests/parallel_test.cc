// Parallel fixpoint: the wave scheduler and partitioned delta evaluation
// must produce the byte-identical fixpoint — same tuples, same
// derivation-support counts, same anonymous-entity labels — at every
// thread count, for insert convergence, the counting/DRed deletion paths,
// and interleaved insert/delete churn. With sharded relation storage the
// same guarantee holds at every SB_SHARDS x SB_THREADS combination: the
// chunk decomposition follows shard boundaries (so task counts differ),
// but the database the fixpoint converges to does not.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "datalog/parser.h"
#include "engine/workspace.h"

namespace secureblox::engine {
namespace {

using datalog::Parse;
using datalog::Value;

void Install(Workspace* ws, const std::string& src) {
  auto program = Parse(src);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Status st = ws->Install(program.value());
  ASSERT_TRUE(st.ok()) << st.ToString();
}

/// Full database image: every predicate's tuples (rendered with entity
/// labels) with their support counts, order-insensitive.
using Snapshot = std::map<std::string, std::set<std::pair<std::string,
                                                          uint32_t>>>;

Snapshot Snap(const Workspace& ws) {
  Snapshot out;
  const datalog::Catalog& catalog = ws.catalog();
  for (size_t id = 0; id < catalog.num_predicates(); ++id) {
    const datalog::PredicateDecl& decl =
        catalog.decl(static_cast<datalog::PredId>(id));
    const Relation* rel =
        ws.GetRelationIfExists(static_cast<datalog::PredId>(id));
    if (rel == nullptr || rel->empty()) continue;
    auto& rows = out[decl.name];
    for (const Tuple& t : rel->AllTuples()) {
      rows.emplace(TupleToString(t, catalog), rel->SupportCount(t));
    }
  }
  return out;
}

std::string Label(int i) { return "v" + std::to_string(i); }

// fig08-flavoured convergence: transitive closure over a pseudo-random
// graph, a lattice shortest-path aggregate, and a stratified count on top.
const char* kConvergenceProgram = R"(
  node(X) -> .
  link(X, Y) -> node(X), node(Y).
  reachable(X, Y) -> node(X), node(Y).
  reachable(X, Y) <- link(X, Y).
  reachable(X, Y) <- link(X, Z), reachable(Z, Y).
  cost(X, Y) -> node(X), node(Y).
  cost(X, Y) <- link(X, Y).
  dist[X] = D -> node(X), int(D).
  dist[X] = D <- agg<< D = count() >> reachable(X, _anon).
)";

std::vector<FactUpdate> ConvergenceLinks(int nodes, int degree) {
  // Deterministic LCG so every thread count sees the same graph.
  uint64_t seed = 0x5eedULL;
  auto next = [&seed] {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return seed >> 33;
  };
  std::vector<FactUpdate> links;
  for (int i = 0; i < nodes; ++i) {
    links.push_back({"link", {Value::Str(Label(i)),
                              Value::Str(Label(static_cast<int>(
                                  (i + 1) % nodes)))}});
    for (int d = 0; d < degree; ++d) {
      links.push_back({"link", {Value::Str(Label(i)),
                                Value::Str(Label(static_cast<int>(
                                    next() % nodes)))}});
    }
  }
  return links;
}

Snapshot RunConvergence(int threads, FixpointStats* fixpoint,
                        EngineStats* engine, size_t shards = 1) {
  Workspace ws;
  ws.fixpoint_options().threads = threads;
  ws.fixpoint_options().shards = shards;
  Install(&ws, kConvergenceProgram);
  auto commit = ws.Apply(ConvergenceLinks(48, 2));
  EXPECT_TRUE(commit.ok()) << commit.status().ToString();
  if (commit.ok()) *fixpoint = commit->fixpoint;
  *engine = ws.stats();
  return Snap(ws);
}

/// The shard-count-invariant face of FixpointStats: everything except
/// parallel_tasks, which by design counts shard-aligned chunks and so
/// scales with the shard count (it stays thread-count-invariant).
std::vector<uint64_t> SemanticCounters(const FixpointStats& fp) {
  return {fp.rounds,        fp.rule_firings, fp.firings_skipped,
          fp.agg_recomputes, fp.agg_skipped,  fp.derivations,
          fp.waves,          fp.retract_firings, fp.retractions,
          fp.deleted,        fp.rescued,      fp.group_rederives,
          fp.rederive_seeded};
}

TEST(ParallelFixpointTest, ConvergenceIdenticalAcrossThreadCounts) {
  FixpointStats base_fp;
  EngineStats base_stats;
  Snapshot base = RunConvergence(1, &base_fp, &base_stats);
  ASSERT_FALSE(base.empty());
  for (int threads : {2, 8}) {
    FixpointStats fp;
    EngineStats stats;
    Snapshot snap = RunConvergence(threads, &fp, &stats);
    EXPECT_EQ(base, snap) << "fixpoint diverged at threads=" << threads;
    // The work decomposition is thread-count independent, so the counters
    // must agree exactly — not just the final database.
    EXPECT_EQ(base_fp.rounds, fp.rounds);
    EXPECT_EQ(base_fp.rule_firings, fp.rule_firings);
    EXPECT_EQ(base_fp.derivations, fp.derivations);
    EXPECT_EQ(base_fp.waves, fp.waves);
    EXPECT_EQ(base_fp.parallel_tasks, fp.parallel_tasks);
    EXPECT_EQ(base_stats.derived_tuples, stats.derived_tuples);
  }
  // The convergence delta is wide enough that firings actually chunked.
  EXPECT_GT(base_fp.parallel_tasks, 0u);
  EXPECT_GT(base_fp.waves, 0u);
}

// The delete_test scenarios, re-run at every thread count with a snapshot
// comparison after each transaction: alternative derivations surviving,
// diamond support counting, recursive DRed, aggregate retraction, and
// negation flips.
TEST(ParallelFixpointTest, DeleteScenariosIdenticalAcrossThreadCounts) {
  const std::string program = R"(
    a(X) -> string(X).
    b(X) -> string(X).
    p(X) -> string(X).
    p(X) <- a(X).
    p(X) <- b(X).
    q(X) -> string(X).
    q(X) <- p(X), a(X).
    e(X, Y) -> string(X), string(Y).
    tc(X, Y) -> string(X), string(Y).
    tc(X, Y) <- e(X, Y).
    tc(X, Y) <- e(X, Z), tc(Z, Y).
    total[] = V -> int(V).
    total[] = V <- agg<< V = count() >> tc(_anon1, _anon2).
    quiet(X) -> string(X).
    quiet(X) <- a(X), !b(X).
  )";
  // (pred, value, is_delete) script exercising both deletion paths.
  const std::vector<std::tuple<std::string, std::string, bool>> script = {
      {"a", "x", false}, {"b", "x", false}, {"a", "y", false},
      {"a", "x", true},   // counting path: p(x) survives via b(x)
      {"b", "x", true},   // now p(x) dies, q(x) already gone
      {"a", "y", true},
  };
  auto run = [&](int threads) {
    std::vector<Snapshot> trace;
    Workspace ws;
    ws.fixpoint_options().threads = threads;
    Install(&ws, program);
    // Chain + shortcut edges, then delete a bridge (recursive DRed).
    std::vector<FactUpdate> edges;
    for (int i = 0; i < 12; ++i) {
      edges.push_back({"e", {Value::Str(Label(i)), Value::Str(Label(i + 1))}});
    }
    edges.push_back({"e", {Value::Str(Label(0)), Value::Str(Label(6))}});
    auto seeded = ws.Apply(edges);
    EXPECT_TRUE(seeded.ok()) << seeded.status().ToString();
    trace.push_back(Snap(ws));
    for (const auto& [pred, value, is_delete] : script) {
      std::vector<FactUpdate> ins, del;
      (is_delete ? del : ins).push_back({pred, {Value::Str(value)}});
      auto commit = ws.Apply(ins, del);
      EXPECT_TRUE(commit.ok()) << commit.status().ToString();
      trace.push_back(Snap(ws));
    }
    // Bridge delete: recursive group falls back to group-local DRed.
    auto bridge = ws.Apply(
        {}, {{"e", {Value::Str(Label(5)), Value::Str(Label(6))}}});
    EXPECT_TRUE(bridge.ok()) << bridge.status().ToString();
    trace.push_back(Snap(ws));
    return trace;
  };
  auto base = run(1);
  for (int threads : {2, 8}) {
    auto trace = run(threads);
    ASSERT_EQ(base.size(), trace.size());
    for (size_t step = 0; step < base.size(); ++step) {
      EXPECT_EQ(base[step], trace[step])
          << "divergence at step " << step << ", threads=" << threads;
    }
  }
}

// Head existentials create anonymous entities in the sequential merge
// phase, so even their generated labels must not depend on the thread
// count.
TEST(ParallelFixpointTest, ExistentialLabelsIdenticalAcrossThreadCounts) {
  const std::string program = R"(
    node(X) -> .
    pathvar(P) -> .
    link(X, Y) -> node(X), node(Y).
    hop(P, X, Y) -> pathvar(P), node(X), node(Y).
    hop(P, X, Y) <- link(X, Y).
  )";
  auto run = [&](int threads) {
    Workspace ws;
    ws.fixpoint_options().threads = threads;
    Install(&ws, program);
    auto commit = ws.Apply(ConvergenceLinks(32, 2));
    EXPECT_TRUE(commit.ok()) << commit.status().ToString();
    return Snap(ws);
  };
  Snapshot base = run(1);
  ASSERT_TRUE(base.count("hop"));
  EXPECT_EQ(base, run(2));
  EXPECT_EQ(base, run(8));
}

// Interleaved insert/delete churn under the pool: a pseudo-random but
// deterministic schedule of base-fact inserts and deletes over recursive
// and aggregate rules, compared transaction-by-transaction against the
// sequential engine.
TEST(ParallelFixpointTest, StressInterleavedInsertDeleteUnderPool) {
  const std::string program = R"(
    e(X, Y) -> string(X), string(Y).
    tc(X, Y) -> string(X), string(Y).
    tc(X, Y) <- e(X, Y).
    tc(X, Y) <- e(X, Z), tc(Z, Y).
    fanout[X] = D -> string(X), int(D).
    fanout[X] = D <- agg<< D = count() >> tc(X, _anon).
  )";
  constexpr int kNodes = 16;
  constexpr int kSteps = 60;
  auto run = [&](int threads) {
    std::vector<Snapshot> trace;
    Workspace ws;
    ws.fixpoint_options().threads = threads;
    Install(&ws, program);
    std::set<std::pair<int, int>> present;
    uint64_t seed = 0xfeedULL;
    auto next = [&seed] {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      return seed >> 33;
    };
    for (int step = 0; step < kSteps; ++step) {
      int from = static_cast<int>(next() % kNodes);
      int to = static_cast<int>(next() % kNodes);
      FactUpdate edge{"e", {Value::Str(Label(from)), Value::Str(Label(to))}};
      bool do_delete = present.count({from, to}) && next() % 2 == 0;
      auto commit = do_delete ? ws.Apply({}, {edge}) : ws.Apply({edge});
      EXPECT_TRUE(commit.ok()) << commit.status().ToString();
      if (do_delete) {
        present.erase({from, to});
      } else {
        present.insert({from, to});
      }
      trace.push_back(Snap(ws));
    }
    return trace;
  };
  auto base = run(1);
  auto parallel = run(8);
  ASSERT_EQ(base.size(), parallel.size());
  for (size_t step = 0; step < base.size(); ++step) {
    EXPECT_EQ(base[step], parallel[step]) << "divergence at step " << step;
  }
}

// Erases no longer invalidate secondary indexes: the bucket maps are
// patched in place, so the engine-wide (re)build counter stays at the
// initial build count however much deletion churn the probes see.
TEST(ParallelFixpointTest, EraseDoesNotRebuildSecondaryIndexes) {
  Workspace ws;
  Install(&ws, R"(
    e(X, Y) -> string(X), string(Y).
    join(X, Z) -> string(X), string(Z).
    join(X, Z) <- e(X, Y), e(Y, Z).
  )");
  std::vector<FactUpdate> edges;
  for (int i = 0; i < 64; ++i) {
    edges.push_back({"e", {Value::Str(Label(i)), Value::Str(Label(i + 1))}});
  }
  ASSERT_TRUE(ws.Apply(edges).ok());
  uint64_t builds_after_seed = ws.stats().index_rebuilds;
  EXPECT_GT(builds_after_seed, 0u);
  // Deletion churn with live probes after every transaction.
  for (int i = 10; i < 40; i += 3) {
    auto commit = ws.Apply(
        {}, {{"e", {Value::Str(Label(i)), Value::Str(Label(i + 1))}}});
    ASSERT_TRUE(commit.ok()) << commit.status().ToString();
    auto reinsert = ws.Apply(
        {{"e", {Value::Str(Label(i)), Value::Str(Label(i + 1))}}});
    ASSERT_TRUE(reinsert.ok()) << reinsert.status().ToString();
  }
  EXPECT_EQ(builds_after_seed, ws.stats().index_rebuilds)
      << "erase churn forced secondary-index rebuilds";
}

// ---------------------------------------------------------------------------
// Sharded storage: SB_SHARDS x SB_THREADS determinism.
// ---------------------------------------------------------------------------

// fig08-flavoured convergence at shard counts {1, 4, 7} crossed with
// thread counts {1, 4}: identical database, support counts, and semantic
// fixpoint counters everywhere (see SemanticCounters for the one
// intentionally shard-dependent field).
TEST(ShardedFixpointTest, ConvergenceIdenticalAcrossShardAndThreadCounts) {
  FixpointStats base_fp;
  EngineStats base_stats;
  Snapshot base = RunConvergence(1, &base_fp, &base_stats, /*shards=*/1);
  ASSERT_FALSE(base.empty());
  for (size_t shards : {size_t{4}, size_t{7}}) {
    for (int threads : {1, 4}) {
      FixpointStats fp;
      EngineStats stats;
      Snapshot snap = RunConvergence(threads, &fp, &stats, shards);
      EXPECT_EQ(base, snap) << "fixpoint diverged at shards=" << shards
                            << " threads=" << threads;
      EXPECT_EQ(SemanticCounters(base_fp), SemanticCounters(fp))
          << "counters diverged at shards=" << shards
          << " threads=" << threads;
      EXPECT_EQ(base_stats.derived_tuples, stats.derived_tuples);
    }
  }
  // At a fixed shard count the full stats — chunk decomposition included —
  // must still be thread-count invariant.
  FixpointStats fp_t1, fp_t4;
  EngineStats unused;
  Snapshot s1 = RunConvergence(1, &fp_t1, &unused, /*shards=*/4);
  Snapshot s4 = RunConvergence(4, &fp_t4, &unused, /*shards=*/4);
  EXPECT_EQ(s1, s4);
  EXPECT_EQ(fp_t1.parallel_tasks, fp_t4.parallel_tasks);
}

// Erase-heavy and FD-replacement workload: recursive closure with
// counting deletes, bridge deletes (group-local DRed over-delete +
// reseed, i.e. swap-remove churn patched per shard), and a recursive
// min-lattice whose functional head is replaced as costs improve and
// re-route. Transaction-by-transaction snapshots must match at every
// shard x thread combination.
TEST(ShardedFixpointTest, DeleteAndLatticeIdenticalAcrossShardCounts) {
  const std::string program = R"(
    node(X) -> .
    e(X, Y) -> string(X), string(Y).
    tc(X, Y) -> string(X), string(Y).
    tc(X, Y) <- e(X, Y).
    tc(X, Y) <- e(X, Z), tc(Z, Y).
    link(X, Y, C) -> node(X), node(Y), int(C).
    cost(X, Y, C) -> node(X), node(Y), int(C).
    bestcost[X, Y] = C -> node(X), node(Y), int(C).
    cost(X, Y, C) <- link(X, Y, C).
    cost(X, Y, C1 + C2) <- bestcost[X, Z] = C1, link(Z, Y, C2).
    bestcost[X, Y] = C <- agg<< C = min(Cx) >> cost(X, Y, Cx).
  )";
  auto run = [&](size_t shards, int threads) {
    std::vector<Snapshot> trace;
    Workspace ws;
    ws.fixpoint_options().threads = threads;
    ws.fixpoint_options().shards = shards;
    Install(&ws, program);
    // Seed: a closure-heavy edge set plus a weighted triangle fan.
    std::vector<FactUpdate> seed;
    for (int i = 0; i < 14; ++i) {
      seed.push_back({"e", {Value::Str(Label(i)), Value::Str(Label(i + 1))}});
    }
    seed.push_back({"e", {Value::Str(Label(0)), Value::Str(Label(7))}});
    for (int i = 0; i < 6; ++i) {
      seed.push_back({"link",
                      {Value::Str("n" + std::to_string(i)),
                       Value::Str("n" + std::to_string(i + 1)),
                       Value::Int(1)}});
      seed.push_back({"link",
                      {Value::Str("n0"),
                       Value::Str("n" + std::to_string(i + 1)),
                       Value::Int(10)}});
    }
    auto seeded = ws.Apply(seed);
    EXPECT_TRUE(seeded.ok()) << seeded.status().ToString();
    trace.push_back(Snap(ws));
    // Erase-heavy churn: delete every third closure edge (counting path +
    // DRed for the recursive group), then the cheap lattice legs so every
    // bestcost row is displaced by a worse value (FD replacement).
    for (int i = 0; i < 14; i += 3) {
      auto del = ws.Apply(
          {}, {{"e", {Value::Str(Label(i)), Value::Str(Label(i + 1))}}});
      EXPECT_TRUE(del.ok()) << del.status().ToString();
      trace.push_back(Snap(ws));
    }
    for (int i = 0; i < 6; i += 2) {
      auto del = ws.Apply({}, {{"link",
                                {Value::Str("n" + std::to_string(i)),
                                 Value::Str("n" + std::to_string(i + 1)),
                                 Value::Int(1)}}});
      EXPECT_TRUE(del.ok()) << del.status().ToString();
      trace.push_back(Snap(ws));
    }
    return trace;
  };
  auto base = run(1, 1);
  for (size_t shards : {size_t{4}, size_t{7}}) {
    for (int threads : {1, 4}) {
      auto trace = run(shards, threads);
      ASSERT_EQ(base.size(), trace.size());
      for (size_t step = 0; step < base.size(); ++step) {
        EXPECT_EQ(base[step], trace[step])
            << "divergence at step " << step << ", shards=" << shards
            << ", threads=" << threads;
      }
    }
  }
}

// Existential labels are content-addressed (rule id + head-relevant
// binding), so even entity creation survives shard-count changes intact.
TEST(ShardedFixpointTest, ExistentialLabelsIdenticalAcrossShardCounts) {
  const std::string program = R"(
    node(X) -> .
    pathvar(P) -> .
    link(X, Y) -> node(X), node(Y).
    hop(P, X, Y) -> pathvar(P), node(X), node(Y).
    hop(P, X, Y) <- link(X, Y).
  )";
  auto run = [&](size_t shards, int threads) {
    Workspace ws;
    ws.fixpoint_options().threads = threads;
    ws.fixpoint_options().shards = shards;
    Install(&ws, program);
    auto commit = ws.Apply(ConvergenceLinks(32, 2));
    EXPECT_TRUE(commit.ok()) << commit.status().ToString();
    return Snap(ws);
  };
  Snapshot base = run(1, 1);
  ASSERT_TRUE(base.count("hop"));
  for (size_t shards : {size_t{4}, size_t{7}}) {
    EXPECT_EQ(base, run(shards, 1)) << "shards=" << shards;
    EXPECT_EQ(base, run(shards, 4)) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace secureblox::engine
