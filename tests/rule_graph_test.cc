// Rule dependency graph and fixpoint driver: SCC condensation, topological
// group order, stratification with negation through cycles (the
// declarative-networking path), multi-head rules feeding earlier strata,
// the pred -> consuming-rules index and its skipped-firing accounting, and
// the derivation budget.
#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "engine/rule_graph.h"
#include "engine/workspace.h"

namespace secureblox::engine {
namespace {

using datalog::Parse;
using datalog::Value;

void Install(Workspace* ws, const std::string& src) {
  auto program = Parse(src);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Status st = ws->Install(program.value());
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(RuleGraphTest, SccCondensationOnMutualRecursion) {
  Workspace ws;
  Install(&ws, R"(
    base(X) -> int(X).
    p(X) -> int(X).
    q(X) -> int(X).
    r(X) -> int(X).
    p(X) <- base(X).
    p(X) <- q(X).
    q(X) <- p(X).
    r(X) <- q(X).
  )");
  const RuleGraph& g = ws.rule_graph();
  ASSERT_EQ(g.num_rules(), 4u);

  // p <- q and q <- p are mutually recursive: one group, marked recursive.
  EXPECT_EQ(g.group_of_rule(1), g.group_of_rule(2));
  EXPECT_TRUE(g.group(g.group_of_rule(1)).recursive);

  // The feeder and the consumer are their own (non-recursive) groups.
  int g_base = g.group_of_rule(0);
  int g_scc = g.group_of_rule(1);
  int g_r = g.group_of_rule(3);
  EXPECT_NE(g_base, g_scc);
  EXPECT_NE(g_scc, g_r);
  EXPECT_FALSE(g.group(g_base).recursive);
  EXPECT_FALSE(g.group(g_r).recursive);

  // Topological order: producers get smaller group ids than consumers.
  EXPECT_LT(g_base, g_scc);
  EXPECT_LT(g_scc, g_r);

  // The condensation records the group edges.
  const auto& succ = g.group(g_scc).successors;
  EXPECT_NE(std::find(succ.begin(), succ.end(), g_r), succ.end());

  // consumers_of: q feeds rules 1 (p <- q) and 3 (r <- q).
  auto q = ws.catalog().Lookup("q").value();
  EXPECT_EQ(g.consumers_of(q), (std::vector<size_t>{1, 3}));
}

TEST(RuleGraphTest, NegationThroughCycleNeedsDeclarativeMode) {
  const char* src = R"(
    p(X) -> int(X).
    q(X) -> int(X).
    p(X) <- q(X).
    q(X) <- p(X), !q(X).
  )";
  {
    Workspace strict;
    auto program = Parse(src);
    ASSERT_TRUE(program.ok());
    Status st = strict.Install(program.value());
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kCompileError);
  }
  Workspace ws;
  ws.set_allow_unstratified_negation(true);
  Install(&ws, src);
  // Derivation-time semantics: p(1) derives q(1) (q(1) absent when the
  // negation is checked), and the fixpoint still terminates.
  ASSERT_TRUE(ws.Insert("p", {Value::Int(1)}).ok());
  EXPECT_TRUE(ws.ContainsFact("q", {Value::Int(1)}).value());
  // The cyclic rules share a group in stratum 0.
  const RuleGraph& g = ws.rule_graph();
  EXPECT_EQ(g.group_of_rule(0), g.group_of_rule(1));
  EXPECT_EQ(g.stratum_of(0), 0);
}

TEST(RuleGraphTest, MultiHeadRuleFeedsEarlierStratum) {
  // The multi-head rule sits in stratum 1 (head `a` is in a negation-raised
  // SCC) but its second head `b` lives in stratum 0, feeding `bd <- b`
  // backwards — the cross-stratum feedback loop the driver must re-enter
  // earlier strata for.
  Workspace ws;
  Install(&ws, R"(
    seed(X) -> int(X).
    ng(X) -> int(X).
    a(X) -> int(X).
    b(X) -> int(X).
    bd(X) -> int(X).
    c(X) -> int(X).
    c(X) <- a(X), X < 10, !ng(X).
    a(X), b(X) <- seed(X).
    a(X) <- c(X).
    bd(X) <- b(X).
  )");
  const RuleGraph& g = ws.rule_graph();
  // Rule 1 (the multi-head) is above rule 3 (bd <- b).
  EXPECT_GT(g.stratum_of(1), g.stratum_of(3));
  EXPECT_EQ(g.max_stratum(), 1);

  // The feedback actually flows: bd derives even though its input is
  // produced by a later stratum.
  ASSERT_TRUE(ws.Insert("seed", {Value::Int(5)}).ok());
  EXPECT_TRUE(ws.ContainsFact("bd", {Value::Int(5)}).value());
  EXPECT_TRUE(ws.ContainsFact("c", {Value::Int(5)}).value());
}

TEST(RuleGraphTest, RulesWithUnchangedBodyPredicatesAreSkipped) {
  // Mutually recursive workload: the two rules share one group, but each
  // round only one of their body predicates has a delta — the dependency
  // index skips the other rule instead of re-firing it.
  Workspace ws;
  Install(&ws, R"(
    even(X) -> int(X).
    odd(X) -> int(X).
    odd(X + 1) <- even(X), X < 20.
    even(X + 1) <- odd(X), X < 20.
  )");
  auto commit = ws.Apply({{"even", {Value::Int(0)}}});
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(commit->num_derived, 20u);  // 1..20, alternating even/odd
  EXPECT_GT(commit->fixpoint.rounds, 10u);
  EXPECT_GT(commit->fixpoint.rule_firings, 0u);
  // Roughly every round fires one rule and skips the sibling.
  EXPECT_GT(commit->fixpoint.firings_skipped, 10u);
  // Cumulative counters mirror the per-transaction ones.
  EXPECT_GE(ws.stats().firings_skipped, commit->fixpoint.firings_skipped);
  EXPECT_GE(ws.stats().fixpoint_rounds, commit->fixpoint.rounds);
}

TEST(RuleGraphTest, UntriggeredGroupsNeverRun) {
  // Recursive closure next to an unrelated rule: the unrelated group gets
  // no deltas, so across all rounds the total firings stay well below
  // rounds x rules — the group worklist never visits it.
  Workspace ws;
  Install(&ws, R"(
    node(X) -> .
    link(X, Y) -> node(X), node(Y).
    reachable(X, Y) -> node(X), node(Y).
    reachable(X, Y) <- link(X, Y).
    reachable(X, Y) <- link(X, Z), reachable(Z, Y).
    other(X) -> int(X).
    other2(X) -> int(X).
    other2(X) <- other(X).
  )");
  std::vector<FactUpdate> links;
  for (int i = 0; i + 1 < 8; ++i) {
    links.push_back({"link",
                     {Value::Str("v" + std::to_string(i)),
                      Value::Str("v" + std::to_string(i + 1))}});
  }
  auto commit = ws.Apply(links);
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(commit->num_derived, 7u * 8u / 2u);
  // Naive per-stratum evaluation would fire all 3 rules every round.
  EXPECT_LT(commit->fixpoint.rule_firings + commit->fixpoint.firings_skipped,
            commit->fixpoint.rounds * 3);
  EXPECT_EQ(ws.Query("other2").value().size(), 0u);
}

TEST(RuleGraphTest, UntouchedAggregatesAreNotRecomputed) {
  Workspace ws;
  Install(&ws, R"(
    sale(X, V) -> string(X), int(V).
    other(X) -> int(X).
    total[X] = V -> string(X), int(V).
    total[X] = V <- agg<< V = sum(S) >> sale(X, S).
  )");
  ASSERT_TRUE(ws.Insert("sale", {Value::Str("a"), Value::Int(3)}).ok());
  // A transaction not touching `sale` must skip the aggregate entirely.
  auto commit = ws.Apply({{"other", {Value::Int(1)}}});
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->fixpoint.agg_recomputes, 0u);
  EXPECT_GT(commit->fixpoint.agg_skipped, 0u);
}

TEST(RuleGraphTest, DerivationBudgetNamesStratumAndRules) {
  Workspace ws;
  ws.fixpoint_options().max_derivations = 16;
  Install(&ws, R"(
    p(X) -> int(X).
    p(X + 1) <- p(X), X < 1000000.
  )");
  auto commit = ws.Apply({{"p", {Value::Int(0)}}});
  ASSERT_FALSE(commit.ok());
  const std::string& msg = commit.status().message();
  EXPECT_NE(msg.find("derivation budget"), std::string::npos) << msg;
  EXPECT_NE(msg.find("stratum 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("p(X)"), std::string::npos) << msg;
  // The failed transaction rolled back entirely.
  EXPECT_EQ(ws.Query("p").value().size(), 0u);
  EXPECT_EQ(ws.stats().aborts, 1u);
}

TEST(RuleGraphTest, BudgetExemptsDeleteAndRederive) {
  // The budget bounds new work, not rederivation: deleting from a database
  // larger than max_derivations must still succeed (DRed re-inserts every
  // surviving derived tuple, which does not count against the cap).
  Workspace ws;
  Install(&ws, R"(
    node(X) -> .
    link(X, Y) -> node(X), node(Y).
    reachable(X, Y) -> node(X), node(Y).
    reachable(X, Y) <- link(X, Y).
    reachable(X, Y) <- link(X, Z), reachable(Z, Y).
  )");
  std::vector<FactUpdate> links;
  for (int i = 0; i + 1 < 10; ++i) {
    links.push_back({"link",
                     {Value::Str("v" + std::to_string(i)),
                      Value::Str("v" + std::to_string(i + 1))}});
  }
  ASSERT_TRUE(ws.Apply(links).ok());
  ASSERT_EQ(ws.Query("reachable").value().size(), 45u);

  ws.fixpoint_options().max_derivations = 4;  // far below the 44 rederived
  auto commit = ws.Apply({}, {{"link", {Value::Str("v0"), Value::Str("v1")}}});
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(ws.Query("reachable").value().size(), 36u);
}

}  // namespace
}  // namespace secureblox::engine
