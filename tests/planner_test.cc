// Cost-based rule execution planning: online relation statistics stay
// symmetric under insert/erase churn, worst-ordered rule bodies are
// reordered selective-first, planner on/off computes the byte-identical
// fixpoint at every SB_SIMD x SB_COLUMNAR x SB_THREADS x SB_SHARDS
// combination, the Executor's probe and batch paths allocate nothing in
// steady state, and the SB_EXPLAIN dump describes the chosen plan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "datalog/parser.h"
#include "engine/kernels.h"
#include "engine/planner.h"
#include "engine/workspace.h"

namespace secureblox::engine {
namespace {

using datalog::Parse;
using datalog::PredicateDecl;
using datalog::Value;

void Install(Workspace* ws, const std::string& src) {
  auto program = Parse(src);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Status st = ws->Install(program.value());
  ASSERT_TRUE(st.ok()) << st.ToString();
}

PredicateDecl MakeDecl(size_t arity, bool functional) {
  PredicateDecl d;
  d.name = "t";
  d.arg_types.assign(arity, 0);
  d.functional = functional;
  return d;
}

Tuple T(std::initializer_list<int64_t> vals) {
  Tuple t;
  for (int64_t v : vals) t.push_back(Value::Int(v));
  return t;
}

std::string Label(int i) { return "v" + std::to_string(i); }

/// Full database image: every predicate's tuples (rendered with entity
/// labels) with their support counts, order-insensitive.
using Snapshot = std::map<std::string, std::set<std::pair<std::string,
                                                          uint32_t>>>;

Snapshot Snap(const Workspace& ws) {
  Snapshot out;
  const datalog::Catalog& catalog = ws.catalog();
  for (size_t id = 0; id < catalog.num_predicates(); ++id) {
    const datalog::PredicateDecl& decl =
        catalog.decl(static_cast<datalog::PredId>(id));
    const Relation* rel =
        ws.GetRelationIfExists(static_cast<datalog::PredId>(id));
    if (rel == nullptr || rel->empty()) continue;
    auto& rows = out[decl.name];
    for (const Tuple& t : rel->AllTuples()) {
      rows.emplace(TupleToString(t, catalog), rel->SupportCount(t));
    }
  }
  return out;
}

/// The plan- and shard-count-invariant face of FixpointStats (everything
/// except parallel_tasks, which counts shard-aligned chunks, and
/// plans_built, which is zero with the planner off).
std::vector<uint64_t> SemanticCounters(const FixpointStats& fp) {
  return {fp.rounds,         fp.rule_firings,    fp.firings_skipped,
          fp.agg_recomputes, fp.agg_skipped,     fp.derivations,
          fp.waves,          fp.retract_firings, fp.retractions,
          fp.deleted,        fp.rescued,         fp.group_rederives,
          fp.rederive_seeded};
}

// ---------------------------------------------------------------------------
// Online statistics: symmetric maintenance across Insert and Erase.
// ---------------------------------------------------------------------------

TEST(RelationStatsTest, DistinctKeysSymmetricUnderEraseChurn) {
  PredicateDecl decl = MakeDecl(2, false);
  Relation r(&decl, /*shards=*/3);
  EXPECT_FALSE(r.DistinctKeys(0x1).has_value());  // untracked
  r.EnsureKeyStat(0x1);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 4; ++j) r.Insert(T({i, j}));
  }
  ASSERT_TRUE(r.DistinctKeys(0x1).has_value());
  EXPECT_EQ(*r.DistinctKeys(0x1), 8u);
  EXPECT_DOUBLE_EQ(r.EstimateMatches(0x1), 4.0);

  // Heavy retraction: erase every odd key completely (swap-remove churn in
  // every shard). Stats must shrink with the data, never inflate.
  for (int i = 1; i < 8; i += 2) {
    for (int j = 0; j < 4; ++j) EXPECT_TRUE(r.Erase(T({i, j})));
  }
  EXPECT_EQ(*r.DistinctKeys(0x1), 4u);
  EXPECT_DOUBLE_EQ(r.EstimateMatches(0x1), 4.0);

  // Partial erase of a surviving key: distinct count holds, estimate drops.
  for (int j = 0; j < 3; ++j) EXPECT_TRUE(r.Erase(T({0, j})));
  EXPECT_EQ(*r.DistinctKeys(0x1), 4u);
  EXPECT_DOUBLE_EQ(r.EstimateMatches(0x1), 13.0 / 4.0);

  // Erase the last row of that key: the key disappears from the stats.
  EXPECT_TRUE(r.Erase(T({0, 3})));
  EXPECT_EQ(*r.DistinctKeys(0x1), 3u);

  // Reinsert-after-erase must recount from the live data, not resurrect
  // stale counts.
  r.Insert(T({0, 0}));
  EXPECT_EQ(*r.DistinctKeys(0x1), 4u);
  EXPECT_DOUBLE_EQ(r.EstimateMatches(0x1), 13.0 / 4.0);

  // A stat seeded *after* the same churn agrees with the incrementally
  // maintained one (seed-vs-maintain equivalence).
  Relation fresh(&decl, /*shards=*/3);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 4; ++j) fresh.Insert(T({i, j}));
  }
  for (int i = 1; i < 8; i += 2) {
    for (int j = 0; j < 4; ++j) fresh.Erase(T({i, j}));
  }
  for (int j = 0; j < 3; ++j) fresh.Erase(T({0, j}));
  fresh.Erase(T({0, 3}));
  fresh.Insert(T({0, 0}));
  fresh.EnsureKeyStat(0x1);
  EXPECT_EQ(*fresh.DistinctKeys(0x1), *r.DistinctKeys(0x1));
  EXPECT_DOUBLE_EQ(fresh.EstimateMatches(0x1), r.EstimateMatches(0x1));
}

TEST(RelationStatsTest, EmptyAndUntrackedMasksFallBackToSize) {
  PredicateDecl decl = MakeDecl(2, false);
  Relation r(&decl);
  EXPECT_DOUBLE_EQ(r.EstimateMatches(0x1), 0.0);  // empty relation
  r.Insert(T({1, 2}));
  r.Insert(T({1, 3}));
  EXPECT_DOUBLE_EQ(r.EstimateMatches(0), 2.0);    // mask 0 = full scan
  EXPECT_DOUBLE_EQ(r.EstimateMatches(0x2), 2.0);  // untracked mask
  r.EnsureKeyStat(0x2);
  EXPECT_DOUBLE_EQ(r.EstimateMatches(0x2), 1.0);  // 2 rows / 2 values
}

TEST(RelationStatsTest, EstimateMatchesFiniteOnJustEmptiedRelation) {
  // Pins the division guards in Relation::EstimateMatches (audit: the
  // total_size_ == 0 early return and the distinct == 0 fallback keep
  // every path off 0/0): a relation emptied AFTER its stats were seeded
  // must estimate 0 matches — finite, never NaN/inf — for tracked masks,
  // untracked masks, and the columnar dictionary path, and the planner's
  // wide-match ratio (EstimateMatches * 4 >= size) must stay well-defined.
  PredicateDecl decl = MakeDecl(2, false);
  for (bool columnar : {false, true}) {
    Relation r(&decl, /*shards=*/3, columnar);
    r.EnsureKeyStat(0x1);
    for (int i = 0; i < 6; ++i) r.Insert(T({i, i * 10}));
    ASSERT_GT(r.EstimateMatches(0x1), 0.0);
    for (int i = 0; i < 6; ++i) ASSERT_TRUE(r.Erase(T({i, i * 10})));
    ASSERT_EQ(r.size(), 0u);
    for (uint32_t mask : {0x0u, 0x1u, 0x2u, 0x3u}) {
      const double est = r.EstimateMatches(mask);
      EXPECT_TRUE(std::isfinite(est))
          << "columnar=" << columnar << " mask=" << mask;
      EXPECT_DOUBLE_EQ(est, 0.0);
    }
    // The just-emptied dictionary reports zero live keys (columnar) or an
    // empty count map (row stats); neither may reach the division.
    if (auto d = r.DistinctKeys(0x1)) EXPECT_EQ(*d, 0u);
    // Refill after the empty phase: estimates recover from live data.
    r.Insert(T({1, 2}));
    r.Insert(T({1, 3}));
    EXPECT_DOUBLE_EQ(r.EstimateMatches(0x1), 2.0);
  }
}

TEST(RelationStatsTest, ProbeBucketsStaySortedAcrossEraseChurn) {
  PredicateDecl decl = MakeDecl(2, false);
  Relation r(&decl, /*shards=*/1);
  for (int j = 0; j < 20; ++j) {
    r.Insert(T({1, j}));
    r.Insert(T({2, j}));
  }
  Tuple key = T({1});
  ASSERT_EQ(r.ProbeShard(0, 0x1, key).size(), 20u);
  // Swap-remove churn: erases repoint moved rows, and the patched buckets
  // must stay ascending so scans walk each shard as a sorted run.
  for (int j = 0; j < 20; j += 2) ASSERT_TRUE(r.Erase(T({2, j})));
  for (int j = 1; j < 20; j += 3) ASSERT_TRUE(r.Erase(T({1, j})));
  for (uint32_t who = 1; who <= 2; ++who) {
    Tuple k = T({static_cast<int64_t>(who)});
    const std::vector<size_t>& rows = r.ProbeShard(0, 0x1, k);
    EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()))
        << "bucket for key " << who << " lost its sort order";
    for (size_t slot : rows) {
      EXPECT_EQ(r.shard_tuples(0)[slot][0], Value::Int(who));
    }
  }
}

// ---------------------------------------------------------------------------
// Plan shape: worst-ordered bodies get reordered selective-first.
// ---------------------------------------------------------------------------

const char* kWorstOrderedProgram = R"(
  big(X, Y) -> int(X), int(Y).
  filt(X) -> int(X).
  hit(Y) -> int(Y).
  hit(Y) <- big(X, Y), filt(X).
)";

TEST(PlannerTest, WorstOrderedBodyReorderedSelectiveFirst) {
  Workspace ws;
  Install(&ws, kWorstOrderedProgram);
  // big: 300 rows over 100 keys; filt: 2 rows. Written order enumerates
  // all of big and probes filt 300 times; selective-first scans filt and
  // probes big's index twice.
  std::vector<FactUpdate> facts;
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 3; ++j) {
      facts.push_back({"big", {Value::Int(i), Value::Int(1000 + 3 * i + j)}});
    }
  }
  facts.push_back({"filt", {Value::Int(7)}});
  facts.push_back({"filt", {Value::Int(42)}});
  ASSERT_TRUE(ws.Apply(facts).ok());

  const datalog::PredId big_id = ws.catalog().Lookup("big").value();
  const datalog::PredId filt_id = ws.catalog().Lookup("filt").value();
  const CompiledRule* rule = nullptr;
  for (const CompiledRule& r : ws.compiled_rules()) {
    if (r.num_scan_occurrences == 2) rule = &r;
  }
  ASSERT_NE(rule, nullptr);
  // Baseline (written order): big before filt — the worst order.
  ASSERT_EQ(rule->steps[0].pred, big_id);

  ExecPlanner planner(&ws.catalog(), &ws, &ws.fixpoint_options());
  const VariantPlan* full = planner.PlanFor(*rule, ExecPlanner::kFullBody);
  ASSERT_NE(full, nullptr);
  ASSERT_EQ(full->steps.size(), rule->steps.size());
  // Selective-first: the 2-row filt scan leads, and big becomes an
  // indexed probe on its now-bound join column.
  EXPECT_EQ(full->steps[0].pred, filt_id);
  EXPECT_EQ(full->steps[0].kind, Step::Kind::kScan);
  const Step* big_step = nullptr;
  for (const Step& s : full->steps) {
    if (s.pred == big_id) big_step = &s;
  }
  ASSERT_NE(big_step, nullptr);
  EXPECT_EQ(big_step->probe_mask, 0x1u) << "big should probe on bound X";
  EXPECT_NE(big_step->probe, Step::Probe::kScanAll);

  // Semi-naïve variants put their delta atom first regardless of cost.
  const VariantPlan* d0 = planner.PlanFor(*rule, 0);
  ASSERT_NE(d0, nullptr);
  EXPECT_EQ(d0->steps[0].pred, big_id);
  EXPECT_EQ(d0->steps[0].occurrence, 0);
  const VariantPlan* d1 = planner.PlanFor(*rule, 1);
  ASSERT_NE(d1, nullptr);
  EXPECT_EQ(d1->steps[0].pred, filt_id);
  EXPECT_EQ(d1->steps[0].occurrence, 1);
  // With filt's delta bound first, big is again an indexed probe.
  const Step& after = d1->steps[1];
  EXPECT_EQ(after.pred, big_id);
  EXPECT_EQ(after.probe_mask, 0x1u);

  // The workspace's own driver may have populated the shared cache's
  // occurrence slots during Apply; the full-body slot is ours.
  EXPECT_GE(planner.plans_built(), 1u);
}

TEST(PlannerTest, PlansReplanWhenStatsDrift) {
  Workspace ws;
  Install(&ws, kWorstOrderedProgram);
  ASSERT_TRUE(ws.Apply({{"big", {Value::Int(1), Value::Int(2)}},
                        {"filt", {Value::Int(1)}}})
                  .ok());
  ExecPlanner planner(&ws.catalog(), &ws, &ws.fixpoint_options());
  const CompiledRule* rule = nullptr;
  for (const CompiledRule& r : ws.compiled_rules()) {
    if (r.num_scan_occurrences == 2) rule = &r;
  }
  ASSERT_NE(rule, nullptr);
  ASSERT_NE(planner.PlanFor(*rule, ExecPlanner::kFullBody), nullptr);
  const uint64_t built = planner.plans_built();
  // Same sizes: cached plan, no rebuild.
  ASSERT_NE(planner.PlanFor(*rule, ExecPlanner::kFullBody), nullptr);
  EXPECT_EQ(planner.plans_built(), built);
  // Grow big far past the drift threshold: the next request replans.
  std::vector<FactUpdate> more;
  for (int i = 0; i < 200; ++i) {
    more.push_back({"big", {Value::Int(i + 10), Value::Int(i)}});
  }
  ASSERT_TRUE(ws.Apply(more).ok());
  const VariantPlan* rebuilt = planner.PlanFor(*rule, ExecPlanner::kFullBody);
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_GT(planner.plans_built(), built);
  EXPECT_GE(rebuilt->builds, 2u);
}

// ---------------------------------------------------------------------------
// Equivalence: SB_PLAN={0,1} x SB_THREADS={1,4} x SB_SHARDS={1,7}.
// ---------------------------------------------------------------------------

// fig08-flavoured convergence plus deletion churn — recursion, a lattice
// aggregate recomputing, counting deletes and group-local DRed all run
// under both the baseline written-order bodies and the planner's
// reordered ones.
const char* kConvergenceProgram = R"(
  node(X) -> .
  link(X, Y) -> node(X), node(Y).
  reachable(X, Y) -> node(X), node(Y).
  reachable(X, Y) <- link(X, Y).
  reachable(X, Y) <- link(X, Z), reachable(Z, Y).
  cost(X, Y) -> node(X), node(Y).
  cost(X, Y) <- link(X, Y).
  dist[X] = D -> node(X), int(D).
  dist[X] = D <- agg<< D = count() >> reachable(X, _anon).
)";

std::vector<FactUpdate> ConvergenceLinks(int nodes, int degree) {
  uint64_t seed = 0x5eedULL;
  auto next = [&seed] {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return seed >> 33;
  };
  std::vector<FactUpdate> links;
  for (int i = 0; i < nodes; ++i) {
    links.push_back({"link", {Value::Str(Label(i)),
                              Value::Str(Label(static_cast<int>(
                                  (i + 1) % nodes)))}});
    for (int d = 0; d < degree; ++d) {
      links.push_back({"link", {Value::Str(Label(i)),
                                Value::Str(Label(static_cast<int>(
                                    next() % nodes)))}});
    }
  }
  return links;
}

TEST(PlannerTest, PlanOnOffFixpointEquivalence) {
  struct Run {
    std::vector<Snapshot> trace;
    std::vector<std::vector<uint64_t>> counters;
  };
  auto run = [&](bool plan, int threads, size_t shards, bool columnar,
                 int simd) {
    Run out;
    Workspace ws;
    ws.fixpoint_options().plan = plan;
    ws.fixpoint_options().threads = threads;
    ws.fixpoint_options().shards = shards;
    ws.fixpoint_options().columnar = columnar;
    ws.fixpoint_options().simd = simd;
    Install(&ws, kConvergenceProgram);
    auto seeded = ws.Apply(ConvergenceLinks(40, 2));
    EXPECT_TRUE(seeded.ok()) << seeded.status().ToString();
    out.trace.push_back(Snap(ws));
    out.counters.push_back(SemanticCounters(seeded->fixpoint));
    // Deletion churn: counting path + group-local DRed for the recursive
    // group, aggregate recompute on top.
    for (int i = 0; i < 40; i += 7) {
      auto del = ws.Apply({}, {{"link", {Value::Str(Label(i)),
                                         Value::Str(Label((i + 1) % 40))}}});
      EXPECT_TRUE(del.ok()) << del.status().ToString();
      out.trace.push_back(Snap(ws));
      out.counters.push_back(SemanticCounters(del->fixpoint));
    }
    return out;
  };
  Run base = run(false, 1, 1, /*columnar=*/false, /*simd=*/0);
  ASSERT_FALSE(base.trace.empty());
  ASSERT_FALSE(base.trace[0].empty());
  for (int simd : {0, 1}) {
    for (bool columnar : {false, true}) {
      for (bool plan : {false, true}) {
        for (int threads : {1, 4}) {
          for (size_t shards : {size_t{1}, size_t{7}}) {
            if (simd == 0 && !columnar && !plan && threads == 1 &&
                shards == 1) {
              continue;
            }
            Run other = run(plan, threads, shards, columnar, simd);
            ASSERT_EQ(base.trace.size(), other.trace.size());
            for (size_t step = 0; step < base.trace.size(); ++step) {
              EXPECT_EQ(base.trace[step], other.trace[step])
                  << "fixpoint diverged at step " << step << " plan=" << plan
                  << " threads=" << threads << " shards=" << shards
                  << " columnar=" << columnar << " simd=" << simd;
              EXPECT_EQ(base.counters[step], other.counters[step])
                  << "semantic counters diverged at step " << step
                  << " plan=" << plan << " threads=" << threads
                  << " shards=" << shards << " columnar=" << columnar
                  << " simd=" << simd;
            }
          }
        }
      }
    }
  }
}

// Plan building itself is deterministic: identical transaction streams
// build the same number of plans at every thread x shard combination.
TEST(PlannerTest, PlanBuildCountsThreadAndShardInvariant) {
  auto run = [&](int threads, size_t shards) {
    Workspace ws;
    ws.fixpoint_options().plan = true;
    ws.fixpoint_options().threads = threads;
    ws.fixpoint_options().shards = shards;
    Install(&ws, kConvergenceProgram);
    auto commit = ws.Apply(ConvergenceLinks(40, 2));
    EXPECT_TRUE(commit.ok()) << commit.status().ToString();
    return ws.stats().plan_builds;
  };
  const uint64_t base = run(1, 1);
  EXPECT_GT(base, 0u);
  EXPECT_EQ(base, run(4, 1));
  EXPECT_EQ(base, run(1, 7));
  EXPECT_EQ(base, run(4, 7));
}

// ---------------------------------------------------------------------------
// Cache-friendliness: no per-call allocation in steady state.
// ---------------------------------------------------------------------------

TEST(PlannerTest, SteadyStateEvaluationAllocatesNoFrames) {
  // Both layouts: the row-major probe path and the columnar batch path
  // (selection-vector kernels) must reuse pooled frames in steady state.
  for (bool columnar : {false, true}) {
    Workspace ws;
    ws.fixpoint_options().threads = 1;
    ws.fixpoint_options().columnar = columnar;
    Install(&ws, R"(
      e(X, Y) -> string(X), string(Y).
      tc(X, Y) -> string(X), string(Y).
      tc(X, Y) <- e(X, Y).
      tc(X, Y) <- e(X, Z), tc(Z, Y).
    )");
    std::vector<FactUpdate> edges;
    for (int i = 0; i < 10; ++i) {
      edges.push_back({"e", {Value::Str(Label(i)), Value::Str(Label(i + 1))}});
    }
    ASSERT_TRUE(ws.Apply(edges).ok());
    FactUpdate churn{"e", {Value::Str(Label(3)), Value::Str(Label(8))}};
    // Warm-up: the first insert/delete pair reaches this workload's maximum
    // body depth and fills the thread-local frame pool.
    ASSERT_TRUE(ws.Apply({churn}).ok());
    ASSERT_TRUE(ws.Apply({}, {churn}).ok());
    const uint64_t warm = EvalFrameAllocs();
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(ws.Apply({churn}).ok());
      ASSERT_TRUE(ws.Apply({}, {churn}).ok());
    }
    EXPECT_EQ(EvalFrameAllocs(), warm)
        << (columnar ? "batch" : "probe")
        << " paths allocated evaluation frames in steady state";
    EXPECT_EQ(ws.stats().eval_frame_allocs, EvalFrameAllocs());
  }
}

// ---------------------------------------------------------------------------
// SB_EXPLAIN dump and environment knobs.
// ---------------------------------------------------------------------------

TEST(PlannerTest, ExplainDescribesChosenPlan) {
  Workspace ws;
  // Pin the layout: the provenance assertions below distinguish
  // dictionary-sourced estimates from hashed-mask statistics.
  ws.fixpoint_options().columnar = true;
  Install(&ws, kWorstOrderedProgram);
  std::vector<FactUpdate> facts;
  for (int i = 0; i < 50; ++i) {
    facts.push_back({"big", {Value::Int(i), Value::Int(i + 100)}});
  }
  facts.push_back({"filt", {Value::Int(7)}});
  ASSERT_TRUE(ws.Apply(facts).ok());
  const CompiledRule* rule = nullptr;
  for (const CompiledRule& r : ws.compiled_rules()) {
    if (r.num_scan_occurrences == 2) rule = &r;
  }
  ASSERT_NE(rule, nullptr);
  ExecPlanner planner(&ws.catalog(), &ws, &ws.fixpoint_options());
  const VariantPlan* vp = planner.PlanFor(*rule, ExecPlanner::kFullBody);
  ASSERT_NE(vp, nullptr);
  const std::string dump =
      planner.Explain(*rule, ExecPlanner::kFullBody, *vp);
  EXPECT_NE(dump.find("[plan] rule#"), std::string::npos);
  EXPECT_NE(dump.find("variant=full"), std::string::npos);
  EXPECT_NE(dump.find("scan filt"), std::string::npos);
  EXPECT_NE(dump.find("scan big"), std::string::npos);
  EXPECT_NE(dump.find("probe="), std::string::npos);
  EXPECT_NE(dump.find("est="), std::string::npos);
  // The header names the resolved kernel level for this process.
  EXPECT_NE(dump.find(std::string("simd=") +
                      SimdModeName(ResolveSimdMode(
                          ws.fixpoint_options().simd))),
            std::string::npos)
      << dump;
  // Estimate provenance: big's single-column probe estimate comes straight
  // from the dictionary's live distinct count under the columnar layout;
  // the unkeyed filt scan falls back to relation size.
  EXPECT_NE(dump.find("via=dict"), std::string::npos) << dump;
  EXPECT_NE(dump.find("via=size"), std::string::npos) << dump;
  EXPECT_NE(dump.find("distinct=50"), std::string::npos) << dump;
  const std::string delta_dump = planner.Explain(
      *rule, 0, *planner.PlanFor(*rule, 0));
  EXPECT_NE(delta_dump.find("variant=d0"), std::string::npos);
  EXPECT_NE(delta_dump.find("est=delta"), std::string::npos);

  // The row-major layout sources the same estimate from the hashed-mask
  // statistic instead of the dictionary.
  Workspace row_ws;
  row_ws.fixpoint_options().columnar = false;
  Install(&row_ws, kWorstOrderedProgram);
  ASSERT_TRUE(row_ws.Apply(facts).ok());
  const CompiledRule* row_rule = nullptr;
  for (const CompiledRule& r : row_ws.compiled_rules()) {
    if (r.num_scan_occurrences == 2) row_rule = &r;
  }
  ASSERT_NE(row_rule, nullptr);
  ExecPlanner row_planner(&row_ws.catalog(), &row_ws,
                          &row_ws.fixpoint_options());
  const VariantPlan* rvp =
      row_planner.PlanFor(*row_rule, ExecPlanner::kFullBody);
  ASSERT_NE(rvp, nullptr);
  const std::string row_dump =
      row_planner.Explain(*row_rule, ExecPlanner::kFullBody, *rvp);
  EXPECT_NE(row_dump.find("via=stat"), std::string::npos) << row_dump;
  EXPECT_NE(row_dump.find("distinct=50"), std::string::npos) << row_dump;
}

TEST(PlannerTest, EnvironmentKnobsParsed) {
  ASSERT_EQ(setenv("SB_PLAN", "0", 1), 0);
  ASSERT_EQ(setenv("SB_EXPLAIN", "1", 1), 0);
  ASSERT_EQ(setenv("SB_COLUMNAR", "0", 1), 0);
  ASSERT_EQ(setenv("SB_SIMD", "0", 1), 0);
  {
    Workspace ws;
    EXPECT_FALSE(ws.fixpoint_options().plan);
    EXPECT_TRUE(ws.fixpoint_options().explain);
    EXPECT_FALSE(ws.fixpoint_options().columnar);
    EXPECT_EQ(ws.fixpoint_options().simd, 0);
  }
  ASSERT_EQ(setenv("SB_SIMD", "1", 1), 0);
  {
    Workspace ws;
    EXPECT_EQ(ws.fixpoint_options().simd, 1);
  }
  ASSERT_EQ(setenv("SB_SIMD", "auto", 1), 0);
  {
    Workspace ws;
    EXPECT_EQ(ws.fixpoint_options().simd, 2);
  }
  ASSERT_EQ(setenv("SB_PLAN", "garbage", 1), 0);
  ASSERT_EQ(setenv("SB_COLUMNAR", "2", 1), 0);
  ASSERT_EQ(setenv("SB_SIMD", "7", 1), 0);
  ASSERT_EQ(unsetenv("SB_EXPLAIN"), 0);
  {
    Workspace ws;
    EXPECT_TRUE(ws.fixpoint_options().plan) << "garbage keeps the default";
    EXPECT_FALSE(ws.fixpoint_options().explain);
    EXPECT_TRUE(ws.fixpoint_options().columnar)
        << "out-of-range keeps the default";
    EXPECT_EQ(ws.fixpoint_options().simd, 2)
        << "out-of-range keeps the auto default";
  }
  ASSERT_EQ(unsetenv("SB_PLAN"), 0);
  ASSERT_EQ(unsetenv("SB_COLUMNAR"), 0);
  ASSERT_EQ(unsetenv("SB_SIMD"), 0);
}

}  // namespace
}  // namespace secureblox::engine
