// Static analysis: schema extraction shapes and the accept/reject matrix
// of the type checker.
#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "datalog/typecheck.h"

namespace secureblox::datalog {
namespace {

Status Analyze(const std::string& src,
               const BuiltinSignatureMap& builtins = {}) {
  auto program = Parse(src);
  if (!program.ok()) return program.status();
  Catalog catalog;
  auto analyzed = AnalyzeProgram(program.value(), &catalog, builtins);
  return analyzed.ok() ? Status::OK() : analyzed.status();
}

TEST(SchemaTest, EntityTypeAndPredicateDecls) {
  auto program = Parse(R"(
    person(X) -> .
    knows(X, Y) -> person(X), person(Y).
    age[X] = A -> person(X), int(A).
  )").value();
  Catalog catalog;
  auto runtime = BuildSchema(program, &catalog);
  ASSERT_TRUE(runtime.ok());
  EXPECT_TRUE(runtime->empty());  // all constraints were declarations
  auto person = catalog.Lookup("person").value();
  EXPECT_TRUE(catalog.decl(person).is_entity_type);
  auto knows = catalog.Lookup("knows").value();
  EXPECT_EQ(catalog.decl(knows).arity(), 2u);
  EXPECT_FALSE(catalog.decl(knows).functional);
  auto age = catalog.Lookup("age").value();
  EXPECT_TRUE(catalog.decl(age).functional);
  EXPECT_EQ(catalog.decl(age).num_keys(), 1u);
}

TEST(SchemaTest, NonDeclShapesBecomeRuntimeConstraints) {
  auto program = Parse(R"(
    person(X) -> .
    knows(X, Y) -> person(X), person(Y).
    vip(X) -> person(X).
    knows(X, X) -> vip(X).
    knows(X, Y) -> knows(Y, X).
  )").value();
  Catalog catalog;
  auto runtime = BuildSchema(program, &catalog);
  ASSERT_TRUE(runtime.ok());
  // knows(X,X) (repeated var) and knows->knows (non-unary rhs) are checks.
  EXPECT_EQ(runtime->size(), 2u);
}

TEST(SchemaTest, SubtypeEdgeFromEntityToEntity) {
  auto program = Parse(R"(
    animal(X) -> .
    dog(X) -> .
    dog(X) -> animal(X).
  )").value();
  Catalog catalog;
  ASSERT_TRUE(BuildSchema(program, &catalog).ok());
  auto dog = catalog.Lookup("dog").value();
  auto animal = catalog.Lookup("animal").value();
  EXPECT_TRUE(catalog.IsSubtype(dog, animal));
  EXPECT_FALSE(catalog.IsSubtype(animal, dog));
}

TEST(SchemaTest, ConflictingRedeclarationRejected) {
  EXPECT_FALSE(Analyze(R"(
    p(X) -> int(X).
    p(X, Y) -> int(X), int(Y).
  )").ok());
}

TEST(TypeCheckTest, ArityMismatchRejected) {
  Status st = Analyze(R"(
    p(X) -> int(X).
    q(X) -> int(X).
    q(X) <- p(X, X).
  )");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("arity"), std::string::npos);
}

TEST(TypeCheckTest, FunctionalShapeMismatchRejected) {
  Status st = Analyze(R"(
    p[X] = Y -> int(X), int(Y).
    q(X) -> int(X).
    q(X) <- p(X, Y).
  )");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("functional"), std::string::npos);
}

TEST(TypeCheckTest, IncompatibleVariableTypesRejected) {
  Status st = Analyze(R"(
    p(X) -> int(X).
    q(X) -> string(X).
    r(X) -> int(X).
    r(X) <- p(X), q(X).
  )");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("incompatible"), std::string::npos);
}

TEST(TypeCheckTest, FactConstantKindsChecked) {
  EXPECT_TRUE(Analyze("p(X) -> int(X).\np(3).").ok());
  EXPECT_FALSE(Analyze("p(X) -> int(X).\np(\"three\").").ok());
  EXPECT_FALSE(Analyze("p(X) -> bool(X).\np(3).").ok());
  // Strings name entities by label.
  EXPECT_TRUE(Analyze("e(X) -> .\np(X) -> e(X).\np(\"alice\").").ok());
}

TEST(TypeCheckTest, UnboundHeadVariableOnlyForEntityTypes) {
  // Unbound head var in an entity position: head existential, OK.
  EXPECT_TRUE(Analyze(R"(
    t(X) -> .
    src(X) -> int(X).
    made(T, X) -> t(T), int(X).
    made(T, X) <- src(X).
  )").ok());
  // Unbound head var in a primitive position: unsafe.
  Status st = Analyze(R"(
    src(X) -> int(X).
    out(X, Y) -> int(X), int(Y).
    out(X, Y) <- src(X).
  )");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unsafe"), std::string::npos);
}

TEST(TypeCheckTest, NegationRequiresBoundVariables) {
  Status st = Analyze(R"(
    p(X) -> int(X).
    q(X) -> int(X).
    r(X) -> int(X).
    r(X) <- p(X), !q(Y).
  )");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unbound"), std::string::npos);
}

TEST(TypeCheckTest, ComparisonRequiresBoundVariables) {
  Status st = Analyze(R"(
    p(X) -> int(X).
    q(X) -> int(X).
    q(X) <- p(X), Y < X.
  )");
  EXPECT_FALSE(st.ok());
}

TEST(TypeCheckTest, AssignmentChainsBind) {
  EXPECT_TRUE(Analyze(R"(
    p(X) -> int(X).
    q(X) -> int(X).
    q(Z) <- p(X), Y = X + 1, Z = Y * 2.
  )").ok());
}

TEST(TypeCheckTest, ArithmeticForcesIntTypes) {
  Status st = Analyze(R"(
    p(X) -> string(X).
    q(X) -> string(X).
    q(X) <- p(X), Y = X + 1.
  )");
  EXPECT_FALSE(st.ok());
}

TEST(TypeCheckTest, BuiltinSignaturesEnforced) {
  BuiltinSignatureMap builtins;
  builtins["hashit"] = BuiltinSignature{{"string", "int"}, 1};
  // Correct use.
  EXPECT_TRUE(Analyze(R"(
    p(X) -> string(X).
    q(H) -> int(H).
    q(H) <- p(X), hashit(X, H).
  )", builtins).ok());
  // Wrong arity.
  EXPECT_FALSE(Analyze(R"(
    p(X) -> string(X).
    q(H) -> int(H).
    q(H) <- p(X), hashit(X, H, H).
  )", builtins).ok());
  // Output type flows into the head check.
  EXPECT_FALSE(Analyze(R"(
    p(X) -> string(X).
    q(H) -> string(H).
    q(H) <- p(X), hashit(X, H).
  )", builtins).ok());
  // Unbound input.
  EXPECT_FALSE(Analyze(R"(
    p(X) -> string(X).
    q(H) -> int(H).
    q(H) <- p(X), hashit(Y, H).
  )", builtins).ok());
}

TEST(TypeCheckTest, SubtypeFlowsIntoSupertypePositions) {
  EXPECT_TRUE(Analyze(R"(
    animal(X) -> .
    dog(X) -> .
    dog(X) -> animal(X).
    eats(A) -> animal(A).
    good(D) -> dog(D).
    eats(D) <- good(D).
  )").ok());
  // The reverse direction is not type-safe.
  EXPECT_FALSE(Analyze(R"(
    animal(X) -> .
    dog(X) -> .
    dog(X) -> animal(X).
    eats(A) -> animal(A).
    barks(D) -> dog(D).
    barks(A) <- eats(A).
  )").ok());
}

TEST(TypeCheckTest, AggregateTyping) {
  EXPECT_TRUE(Analyze(R"(
    sale(X, V) -> string(X), int(V).
    total[X] = V -> string(X), int(V).
    total[X] = V <- agg<< V = sum(S) >> sale(X, S).
  )").ok());
  // Aggregate input must be bound.
  EXPECT_FALSE(Analyze(R"(
    sale(X, V) -> string(X), int(V).
    total[X] = V -> string(X), int(V).
    total[X] = V <- agg<< V = sum(Z) >> sale(X, S).
  )").ok());
  // Aggregating a non-integer.
  EXPECT_FALSE(Analyze(R"(
    sale(X, V) -> string(X), string(V).
    total[X] = V -> string(X), int(V).
    total[X] = V <- agg<< V = sum(V2) >> sale(X, V2).
  )").ok());
}

TEST(TypeCheckTest, GenericClausesMustBeExpandedFirst) {
  Status st = Analyze("p(X) -> int(X).\nsays[T] = ST <-- predicate(T).");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCompileError);
}

TEST(TypeCheckTest, ConstraintExistentialRhsTypes) {
  // rhs may bind new (existential) variables via lookups.
  EXPECT_TRUE(Analyze(R"(
    owner[X] = Y -> string(X), string(Y).
    item(X) -> string(X).
    item(X) -> owner[X] = Y.
  )").ok());
}

TEST(TypeCheckTest, UndeclaredPredicateInConstraint) {
  EXPECT_FALSE(Analyze("p(X) -> int(X).\np(X) -> ghost(X).").ok());
}

}  // namespace
}  // namespace secureblox::datalog
