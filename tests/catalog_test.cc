// Catalog: declarations, subtype lattice, entity interning, labels,
// anonymous entities, and value/type checks.
#include <gtest/gtest.h>

#include "datalog/catalog.h"

namespace secureblox::datalog {
namespace {

TEST(CatalogTest, BootstrapsPrimitiveTypes) {
  Catalog c;
  for (const char* name : {"int", "string", "bool", "blob"}) {
    auto id = c.Lookup(name);
    ASSERT_TRUE(id.ok()) << name;
    EXPECT_TRUE(c.decl(id.value()).is_primitive);
    EXPECT_TRUE(c.decl(id.value()).is_type);
  }
  EXPECT_EQ(c.decl(c.int_type()).primitive_kind, ValueKind::kInt);
  EXPECT_EQ(c.decl(c.blob_type()).primitive_kind, ValueKind::kBlob);
}

TEST(CatalogTest, DeclareAndLookup) {
  Catalog c;
  auto p = c.DeclarePredicate("edge", {c.int_type(), c.int_type()}, false);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(c.Lookup("edge").value(), p.value());
  EXPECT_TRUE(c.IsDeclared("edge"));
  EXPECT_FALSE(c.IsDeclared("vertex"));
  EXPECT_FALSE(c.Lookup("vertex").ok());
}

TEST(CatalogTest, IdenticalRedeclarationIsIdempotent) {
  Catalog c;
  auto a = c.DeclarePredicate("p", {c.int_type()}, false);
  auto b = c.DeclarePredicate("p", {c.int_type()}, false);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  // Different shape rejected.
  EXPECT_FALSE(c.DeclarePredicate("p", {c.string_type()}, false).ok());
  EXPECT_FALSE(c.DeclarePredicate("p", {c.int_type()}, true).ok());
}

TEST(CatalogTest, EntityInterningIsStable) {
  Catalog c;
  auto t = c.DeclareEntityType("principal").value();
  Value alice1 = c.InternEntity(t, "alice").value();
  Value alice2 = c.InternEntity(t, "alice").value();
  Value bob = c.InternEntity(t, "bob").value();
  EXPECT_EQ(alice1, alice2);
  EXPECT_NE(alice1, bob);
  EXPECT_EQ(c.EntityLabel(alice1).value(), "alice");
  EXPECT_EQ(c.FindEntity(t, "bob").value(), bob);
  EXPECT_FALSE(c.FindEntity(t, "carol").ok());
  EXPECT_EQ(c.EntityLabels(t).size(), 2u);
}

TEST(CatalogTest, EntityTypesAreDistinctNamespaces) {
  Catalog c;
  auto p = c.DeclareEntityType("principal").value();
  auto n = c.DeclareEntityType("node").value();
  Value as_principal = c.InternEntity(p, "x").value();
  Value as_node = c.InternEntity(n, "x").value();
  EXPECT_NE(as_principal, as_node);
}

TEST(CatalogTest, AnonymousEntitiesUseNodeTag) {
  Catalog c;
  c.SetNodeTag("n7");
  auto t = c.DeclareEntityType("pathvar").value();
  Value a = c.CreateAnonymousEntity(t, "pathvar").value();
  Value b = c.CreateAnonymousEntity(t, "pathvar").value();
  EXPECT_NE(a, b);
  std::string label = c.EntityLabel(a).value();
  EXPECT_NE(label.find("@n7#"), std::string::npos) << label;
  // Labels from different node tags can never collide.
  Catalog c2;
  c2.SetNodeTag("n8");
  auto t2 = c2.DeclareEntityType("pathvar").value();
  Value other = c2.CreateAnonymousEntity(t2, "pathvar").value();
  EXPECT_NE(c2.EntityLabel(other).value(), label);
}

TEST(CatalogTest, SubtypeLatticeIsTransitiveAndReflexive) {
  Catalog c;
  auto a = c.DeclareEntityType("a").value();
  auto b = c.DeclareEntityType("b").value();
  auto d = c.DeclareEntityType("d").value();
  ASSERT_TRUE(c.AddSubtype(d, b).ok());
  ASSERT_TRUE(c.AddSubtype(b, a).ok());
  EXPECT_TRUE(c.IsSubtype(d, a));  // transitive
  EXPECT_TRUE(c.IsSubtype(a, a));  // reflexive
  EXPECT_FALSE(c.IsSubtype(a, d));
  auto supers = c.SupertypesOf(d);
  EXPECT_EQ(supers.size(), 2u);
}

TEST(CatalogTest, SubtypeBetweenNonTypesRejected) {
  Catalog c;
  auto p = c.DeclarePredicate("p", {c.int_type()}, false).value();
  auto t = c.DeclareEntityType("t").value();
  EXPECT_FALSE(c.AddSubtype(p, t).ok());
}

TEST(CatalogTest, ValueMatchesType) {
  Catalog c;
  auto animal = c.DeclareEntityType("animal").value();
  auto dog = c.DeclareEntityType("dog").value();
  ASSERT_TRUE(c.AddSubtype(dog, animal).ok());
  Value rex = c.InternEntity(dog, "rex").value();
  EXPECT_TRUE(c.ValueMatchesType(rex, dog));
  EXPECT_TRUE(c.ValueMatchesType(rex, animal));  // subtype member
  EXPECT_FALSE(c.ValueMatchesType(rex, c.int_type()));
  EXPECT_TRUE(c.ValueMatchesType(Value::Int(3), c.int_type()));
  EXPECT_FALSE(c.ValueMatchesType(Value::Str("3"), c.int_type()));
  EXPECT_TRUE(c.ValueMatchesType(Value::MakeBlob({1}), c.blob_type()));
}

TEST(CatalogTest, ValueToStringUsesLabels) {
  Catalog c;
  auto t = c.DeclareEntityType("principal").value();
  Value alice = c.InternEntity(t, "alice").value();
  EXPECT_EQ(c.ValueToString(alice), "principal:alice");
  EXPECT_EQ(c.ValueToString(Value::Int(5)), "5");
  EXPECT_EQ(c.ValueToString(Value::Str("hi")), "\"hi\"");
}

TEST(CatalogTest, EntityOperationsOnNonEntityTypesFail) {
  Catalog c;
  auto p = c.DeclarePredicate("p", {c.int_type()}, false).value();
  EXPECT_FALSE(c.InternEntity(p, "x").ok());
  EXPECT_FALSE(c.FindEntity(p, "x").ok());
  EXPECT_FALSE(c.EntityLabel(Value::Int(1)).ok());
}

TEST(CatalogTest, EntityTypeVsPredicateNameClash) {
  Catalog c;
  ASSERT_TRUE(c.DeclarePredicate("p", {c.int_type()}, false).ok());
  EXPECT_FALSE(c.DeclareEntityType("p").ok());
  ASSERT_TRUE(c.DeclareEntityType("e").ok());
  EXPECT_TRUE(c.DeclareEntityType("e").ok());  // idempotent
}

}  // namespace
}  // namespace secureblox::datalog
