// Onion-circuit policy internals: relay correctness, key isolation, and
// failure behaviour with broken circuits.
#include <gtest/gtest.h>

#include "apps/anonjoin.h"
#include "dist/cluster.h"
#include "policy/says_policy.h"

namespace secureblox::policy {
namespace {

using datalog::Value;

const char* kPingApp = R"(
ping(X) -> int(X).
pong(X) -> int(X).
dest[] = U -> principal(U).
result(X) -> int(X).
anon_says[`ping](S, U, X) <- ping(X), dest[] = U, self[] = S.
anon_out[`pong](C, X + 100) <- anon_in[`ping](C, X).
result(X) <- anon_reply[`pong](C, X).
anon_exportable(`ping).
anon_exportable(`pong).
)";

Result<std::unique_ptr<dist::SimCluster>> MakeAnonCluster(size_t n) {
  dist::SimCluster::Config cfg;
  cfg.num_nodes = n;
  cfg.sources = {PreludeSource(), AnonPreludeSource(), kPingApp,
                 AnonSaysPolicySource()};
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "anon-policy-test";
  return dist::SimCluster::Create(std::move(cfg));
}

TEST(AnonPolicyTest, RoundTripThroughRelays) {
  auto cluster = MakeAnonCluster(4);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ASSERT_TRUE(apps::BuildCircuit(cluster->get(), {0, 1, 2, 3}, "p3", 42).ok());

  (*cluster)->ScheduleInsert(0, {{"dest", {Value::Str("p3")}},
                                 {"ping", {Value::Int(7)}}});
  auto metrics = (*cluster)->Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  // The endpoint decoded the request; the initiator got the reply.
  auto& owner_ws = (*cluster)->node(3).workspace();
  EXPECT_EQ(owner_ws.Query("anon_in$ping").value().size(), 1u);
  auto results = (*cluster)->node(0).workspace().Query("result").value();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0][0].AsInt(), 107);

  // Relays never see cleartext: no anon_in/anon_reply rows at nodes 1, 2.
  for (net::NodeIndex relay : {1u, 2u}) {
    auto& ws = (*cluster)->node(relay).workspace();
    EXPECT_EQ(ws.Query("anon_in$ping").value().size(), 0u) << relay;
    EXPECT_EQ(ws.Query("result").value().size(), 0u) << relay;
  }
}

TEST(AnonPolicyTest, MinimalTwoHopCircuit) {
  auto cluster = MakeAnonCluster(3);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE(apps::BuildCircuit(cluster->get(), {0, 1, 2}, "p2", 1).ok());
  (*cluster)->ScheduleInsert(0, {{"dest", {Value::Str("p2")}},
                                 {"ping", {Value::Int(1)}}});
  ASSERT_TRUE((*cluster)->Run().ok());
  EXPECT_EQ((*cluster)->node(0).workspace().Query("result").value().size(),
            1u);
}

TEST(AnonPolicyTest, CorruptedCircuitKeyDropsTraffic) {
  auto cluster = MakeAnonCluster(3);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE(apps::BuildCircuit(cluster->get(), {0, 1, 2}, "p2", 5).ok());
  // Sabotage the endpoint's layer key: the final decrypt produces garbage,
  // deserialization fails, nothing derives — but nothing crashes either.
  auto& endpoint_keys =
      (*cluster)->node(2).security_state().circuits.layer_keys_by_label;
  ASSERT_FALSE(endpoint_keys.empty());
  endpoint_keys.begin()->second[0][0] ^= 0xFF;

  (*cluster)->ScheduleInsert(0, {{"dest", {Value::Str("p2")}},
                                 {"ping", {Value::Int(9)}}});
  auto metrics = (*cluster)->Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ((*cluster)->node(2).workspace().Query("anon_in$ping")
                .value().size(), 0u);
  EXPECT_EQ((*cluster)->node(0).workspace().Query("result").value().size(),
            0u);
}

TEST(AnonPolicyTest, MultipleRequestsShareOneCircuit) {
  auto cluster = MakeAnonCluster(3);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE(apps::BuildCircuit(cluster->get(), {0, 1, 2}, "p2", 8).ok());
  (*cluster)->ScheduleInsert(0, {{"dest", {Value::Str("p2")}},
                                 {"ping", {Value::Int(1)}},
                                 {"ping", {Value::Int(2)}},
                                 {"ping", {Value::Int(3)}}});
  ASSERT_TRUE((*cluster)->Run().ok());
  auto results = (*cluster)->node(0).workspace().Query("result").value();
  EXPECT_EQ(results.size(), 3u);
}

TEST(AnonPolicyTest, CircuitBuilderValidatesPath) {
  auto cluster = MakeAnonCluster(3);
  ASSERT_TRUE(cluster.ok());
  EXPECT_FALSE(apps::BuildCircuit(cluster->get(), {0}, "p0", 1).ok());
}

}  // namespace
}  // namespace secureblox::policy
