// Security policies at the Datalog level (per-fact says): signing rules,
// verification constraints rejecting forgeries, AES payload encryption,
// delegation and authorization — all in a single workspace with manually
// injected facts (the adversary's viewpoint).
#include <gtest/gtest.h>

#include "crypto/rsa.h"
#include "policy/builtins.h"
#include "policy/keystore.h"
#include "policy/says_policy.h"

namespace secureblox::policy {
namespace {

using datalog::Value;
using engine::FactUpdate;
using engine::Workspace;

const char* kApp = R"(
score(Who, V) -> principal(Who), int(V).
exportable(`score).
)";

struct Node {
  std::unique_ptr<Workspace> ws;
  std::unique_ptr<NodeSecurityState> state;
};

// A workspace configured as principal `self` with the given policy.
Node MakeNode(const std::string& self, const SaysPolicyOptions& opts,
              const CredentialAuthority& authority) {
  Node node;
  node.ws = std::make_unique<Workspace>();
  node.state = std::make_unique<NodeSecurityState>();
  node.state->creds = authority.IssueFor(self).value();
  node.ws->set_user_context(node.state.get());
  auto expanded = CompileWithPolicies(
      node.ws.get(),
      {PreludeSource(), kApp, SaysPolicySource(opts)});
  EXPECT_TRUE(expanded.ok()) << expanded.status().ToString();
  EXPECT_TRUE(node.ws->Install(expanded->program).ok());

  std::vector<FactUpdate> facts;
  facts.push_back({"self", {Value::Str(self)}});
  facts.push_back(
      {"private_key", {Value::MakeBlob(PrivateKeyHandle(self))}});
  for (const auto& [peer, pub] : node.state->creds.peer_public_keys) {
    facts.push_back({"public_key", {Value::Str(peer), Value::MakeBlob(pub)}});
  }
  for (const auto& [peer, secret] : node.state->creds.shared_secrets) {
    facts.push_back({"secret", {Value::Str(peer), Value::MakeBlob(secret)}});
  }
  EXPECT_TRUE(node.ws->Apply(facts).ok());
  return node;
}

CredentialAuthority MakeAuthority() {
  CredentialAuthority::Options opts;
  opts.rsa_bits = 512;
  opts.seed = "policy-test";
  opts.distinct_keypairs = 0;  // all distinct
  return CredentialAuthority({"alice", "bob", "mallory"}, opts);
}

SaysPolicyOptions RsaOptions() {
  SaysPolicyOptions opts;
  opts.auth = AuthScheme::kRsa;
  opts.accept = AcceptMode::kBenign;
  opts.distribute = false;  // single-workspace: no export/import needed
  return opts;
}

TEST(SaysPolicyTest, SenderDerivesSignature) {
  auto authority = MakeAuthority();
  Node alice = MakeNode("alice", RsaOptions(), authority);
  // alice says a score to bob: the sign rule must derive a sig fact.
  ASSERT_TRUE(alice.ws
                  ->Apply({{"says$score",
                            {Value::Str("alice"), Value::Str("bob"),
                             Value::Str("alice"), Value::Int(7)}}})
                  .ok());
  auto sigs = alice.ws->Query("sig$score").value();
  ASSERT_EQ(sigs.size(), 1u);
  EXPECT_EQ(sigs[0].back().kind(), datalog::ValueKind::kBlob);
  EXPECT_EQ(sigs[0].back().AsBlob().size(), 64u);  // RSA-512 signature
}

TEST(SaysPolicyTest, ReceiverRejectsUnsignedSays) {
  auto authority = MakeAuthority();
  Node bob = MakeNode("bob", RsaOptions(), authority);
  // A says fact claiming to be from alice, with no signature: the
  // verification constraint must abort the transaction.
  auto result = bob.ws->Apply({{"says$score",
                                {Value::Str("alice"), Value::Str("bob"),
                                 Value::Str("alice"), Value::Int(7)}}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(bob.ws->Query("says$score").value().size(), 0u);
  EXPECT_EQ(bob.ws->Query("score").value().size(), 0u);
}

TEST(SaysPolicyTest, ReceiverAcceptsProperlySignedSays) {
  auto authority = MakeAuthority();
  Node alice = MakeNode("alice", RsaOptions(), authority);
  Node bob = MakeNode("bob", RsaOptions(), authority);

  // alice signs; we carry says + sig facts over to bob by hand (the
  // distribution layer normally does this via export/import).
  ASSERT_TRUE(alice.ws
                  ->Apply({{"says$score",
                            {Value::Str("alice"), Value::Str("bob"),
                             Value::Str("alice"), Value::Int(7)}}})
                  .ok());
  auto sig = alice.ws->Query("sig$score").value()[0].back();

  auto result = bob.ws->Apply(
      {{"sig$score",
        {Value::Str("alice"), Value::Str("bob"), Value::Str("alice"),
         Value::Int(7), sig}},
       {"says$score",
        {Value::Str("alice"), Value::Str("bob"), Value::Str("alice"),
         Value::Int(7)}}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Benign acceptance derived the local fact.
  EXPECT_EQ(bob.ws->Query("score").value().size(), 1u);
}

TEST(SaysPolicyTest, CredentialRevocationRetractsAcceptedFacts) {
  // Paper §6.1 trust delegation with retraction: bob only accepts facts
  // said by trustworthy principals, and revoking the credential must
  // retract everything it admitted — incrementally, through the engine's
  // counting delete path, not a database rebuild.
  auto authority = MakeAuthority();
  SaysPolicyOptions opts = RsaOptions();
  opts.accept = AcceptMode::kTrustworthy;
  Node alice = MakeNode("alice", opts, authority);
  Node bob = MakeNode("bob", opts, authority);

  ASSERT_TRUE(bob.ws->Insert("trustworthy", {Value::Str("alice")}).ok());
  ASSERT_TRUE(alice.ws
                  ->Apply({{"says$score",
                            {Value::Str("alice"), Value::Str("bob"),
                             Value::Str("alice"), Value::Int(7)}}})
                  .ok());
  auto sig = alice.ws->Query("sig$score").value()[0].back();
  ASSERT_TRUE(bob.ws
                  ->Apply({{"sig$score",
                            {Value::Str("alice"), Value::Str("bob"),
                             Value::Str("alice"), Value::Int(7), sig}},
                           {"says$score",
                            {Value::Str("alice"), Value::Str("bob"),
                             Value::Str("alice"), Value::Int(7)}}})
                  .ok());
  ASSERT_EQ(bob.ws->Query("score").value().size(), 1u);

  // Revoke: the accepted fact disappears; the says/sig evidence remains.
  auto revoke = bob.ws->Apply({}, {{"trustworthy", {Value::Str("alice")}}});
  ASSERT_TRUE(revoke.ok()) << revoke.status().ToString();
  EXPECT_EQ(bob.ws->Query("score").value().size(), 0u);
  EXPECT_EQ(bob.ws->Query("says$score").value().size(), 1u);
  EXPECT_GE(revoke->fixpoint.deleted, 1u);

  // Re-granting trust re-derives the fact from the retained evidence.
  ASSERT_TRUE(bob.ws->Insert("trustworthy", {Value::Str("alice")}).ok());
  EXPECT_EQ(bob.ws->Query("score").value().size(), 1u);
}

TEST(SaysPolicyTest, ForgedSignatureRejected) {
  auto authority = MakeAuthority();
  Node alice = MakeNode("alice", RsaOptions(), authority);
  Node bob = MakeNode("bob", RsaOptions(), authority);

  ASSERT_TRUE(alice.ws
                  ->Apply({{"says$score",
                            {Value::Str("alice"), Value::Str("bob"),
                             Value::Str("alice"), Value::Int(7)}}})
                  .ok());
  Bytes sig_bytes = alice.ws->Query("sig$score").value()[0].back().AsBlob();
  sig_bytes[10] ^= 0x01;  // tamper

  auto result = bob.ws->Apply(
      {{"sig$score",
        {Value::Str("alice"), Value::Str("bob"), Value::Str("alice"),
         Value::Int(7), Value::MakeBlob(sig_bytes)}},
       {"says$score",
        {Value::Str("alice"), Value::Str("bob"), Value::Str("alice"),
         Value::Int(7)}}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(bob.ws->Query("score").value().size(), 0u);
}

TEST(SaysPolicyTest, SignatureFromWrongPrincipalRejected) {
  auto authority = MakeAuthority();
  Node mallory = MakeNode("mallory", RsaOptions(), authority);
  Node bob = MakeNode("bob", RsaOptions(), authority);

  // mallory signs a payload *claiming* alice said it; bob verifies against
  // alice's public key, which must fail.
  ASSERT_TRUE(mallory.ws
                  ->Apply({{"says$score",
                            {Value::Str("mallory"), Value::Str("bob"),
                             Value::Str("alice"), Value::Int(999)}}})
                  .ok());
  auto sig = mallory.ws->Query("sig$score").value()[0].back();

  auto result = bob.ws->Apply(
      {{"sig$score",
        {Value::Str("alice"), Value::Str("bob"), Value::Str("alice"),
         Value::Int(999), sig}},
       {"says$score",
        {Value::Str("alice"), Value::Str("bob"), Value::Str("alice"),
         Value::Int(999)}}});
  EXPECT_FALSE(result.ok());
}

TEST(SaysPolicyTest, HmacSchemeSignsAndVerifies) {
  auto authority = MakeAuthority();
  SaysPolicyOptions opts = RsaOptions();
  opts.auth = AuthScheme::kHmac;
  Node alice = MakeNode("alice", opts, authority);
  Node bob = MakeNode("bob", opts, authority);

  ASSERT_TRUE(alice.ws
                  ->Apply({{"says$score",
                            {Value::Str("alice"), Value::Str("bob"),
                             Value::Str("alice"), Value::Int(3)}}})
                  .ok());
  auto mac = alice.ws->Query("sig$score").value()[0].back();
  EXPECT_EQ(mac.AsBlob().size(), 20u);  // HMAC-SHA1

  auto ok = bob.ws->Apply(
      {{"sig$score",
        {Value::Str("alice"), Value::Str("bob"), Value::Str("alice"),
         Value::Int(3), mac}},
       {"says$score",
        {Value::Str("alice"), Value::Str("bob"), Value::Str("alice"),
         Value::Int(3)}}});
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();

  // A MAC computed under the wrong pairwise secret fails.
  Bytes bad = mac.AsBlob();
  bad[0] ^= 1;
  auto rejected = bob.ws->Apply(
      {{"sig$score",
        {Value::Str("alice"), Value::Str("bob"), Value::Str("alice"),
         Value::Int(4), Value::MakeBlob(bad)}},
       {"says$score",
        {Value::Str("alice"), Value::Str("bob"), Value::Str("alice"),
         Value::Int(4)}}});
  EXPECT_FALSE(rejected.ok());
}

TEST(SaysPolicyTest, PolicyTextVariesWithOptions) {
  SaysPolicyOptions rsa;
  rsa.auth = AuthScheme::kRsa;
  SaysPolicyOptions hmac;
  hmac.auth = AuthScheme::kHmac;
  SaysPolicyOptions aes = rsa;
  aes.enc = EncScheme::kAes;
  std::string rsa_src = SaysPolicySource(rsa);
  std::string hmac_src = SaysPolicySource(hmac);
  std::string aes_src = SaysPolicySource(aes);
  EXPECT_NE(rsa_src.find("rsa_sign"), std::string::npos);
  EXPECT_EQ(rsa_src.find("hmac_sign"), std::string::npos);
  EXPECT_NE(hmac_src.find("hmac_sign"), std::string::npos);
  EXPECT_NE(aes_src.find("aesencrypt"), std::string::npos);
  EXPECT_EQ(rsa_src.find("aesencrypt"), std::string::npos);
}

TEST(KeystoreTest, DeterministicCredentials) {
  auto a1 = MakeAuthority();
  auto a2 = MakeAuthority();
  auto c1 = a1.IssueFor("alice").value();
  auto c2 = a2.IssueFor("alice").value();
  EXPECT_EQ(c1.keypair.pub.n, c2.keypair.pub.n);
  EXPECT_EQ(c1.shared_secrets.at("bob"), c2.shared_secrets.at("bob"));
}

TEST(KeystoreTest, SharedSecretsAreSymmetricAndDistinct) {
  auto authority = MakeAuthority();
  auto alice = authority.IssueFor("alice").value();
  auto bob = authority.IssueFor("bob").value();
  EXPECT_EQ(alice.shared_secrets.at("bob"), bob.shared_secrets.at("alice"));
  EXPECT_NE(alice.shared_secrets.at("bob"),
            alice.shared_secrets.at("mallory"));
  EXPECT_EQ(alice.shared_secrets.at("bob").size(), 16u);  // 128-bit
  EXPECT_EQ(authority.SecretBetween("alice", "bob"),
            authority.SecretBetween("bob", "alice"));
}

TEST(KeystoreTest, DistinctKeypairOption) {
  CredentialAuthority::Options opts;
  opts.rsa_bits = 512;
  opts.seed = "distinct";
  opts.distinct_keypairs = 0;  // fully distinct
  CredentialAuthority authority({"a", "b"}, opts);
  auto ka = authority.KeyPairOf("a").value();
  auto kb = authority.KeyPairOf("b").value();
  EXPECT_NE(ka->pub.n, kb->pub.n);
  EXPECT_FALSE(authority.KeyPairOf("nobody").ok());
}

TEST(KeystoreTest, PeerPublicKeysDeserialize) {
  auto authority = MakeAuthority();
  auto alice = authority.IssueFor("alice").value();
  for (const auto& [peer, pub] : alice.peer_public_keys) {
    auto key = crypto::RsaPublicKey::Deserialize(pub);
    ASSERT_TRUE(key.ok()) << peer;
    EXPECT_EQ(key->n.BitLength(), 512u);
  }
}

}  // namespace
}  // namespace secureblox::policy
