// Status/Result, byte reader/writer, hex, strings, and PRNG determinism.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"

namespace secureblox {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::TypeError("bad arg type");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_EQ(s.ToString(), "TypeError: bad arg type");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::CompileError("x").code(), StatusCode::kCompileError);
  EXPECT_EQ(Status::ConstraintViolation("x").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Status::TransactionAborted("x").code(),
            StatusCode::kTransactionAborted);
  EXPECT_EQ(Status::CryptoError("x").code(), StatusCode::kCryptoError);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, ValueAndError) {
  auto good = ParsePositive(3);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 3);
  auto bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Status UseMacros(int v, int* out) {
  SB_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  *out = parsed * 2;
  SB_RETURN_IF_ERROR(Status::OK());
  return Status::OK();
}

TEST(ResultTest, Macros) {
  int out = 0;
  EXPECT_TRUE(UseMacros(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(UseMacros(-5, &out).ok());
}

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xAB, 0xFF};
  EXPECT_EQ(ToHex(b), "0001abff");
  EXPECT_EQ(FromHex("0001abff").value(), b);
  EXPECT_EQ(FromHex("0001ABFF").value(), b);
}

TEST(BytesTest, FromHexRejectsBadInput) {
  EXPECT_FALSE(FromHex("abc").ok());   // odd length
  EXPECT_FALSE(FromHex("zz").ok());    // bad chars
  EXPECT_TRUE(FromHex("").value().empty());
}

TEST(ByteWriterReaderTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0x12);
  w.PutU16(0x3456);
  w.PutU32(0x789ABCDE);
  w.PutU64(0x1122334455667788ULL);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetU8().value(), 0x12);
  EXPECT_EQ(r.GetU16().value(), 0x3456);
  EXPECT_EQ(r.GetU32().value(), 0x789ABCDEu);
  EXPECT_EQ(r.GetU64().value(), 0x1122334455667788ULL);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteWriterReaderTest, BigEndianLayout) {
  ByteWriter w;
  w.PutU32(0x01020304);
  EXPECT_EQ(ToHex(w.bytes()), "01020304");
}

TEST(ByteWriterReaderTest, VarintRoundTrip) {
  for (uint64_t v : std::initializer_list<uint64_t>{
           0, 1, 127, 128, 300, 16384, 0xFFFFFFFF, UINT64_MAX}) {
    ByteWriter w;
    w.PutVarint(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.GetVarint().value(), v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(ByteWriterReaderTest, LengthPrefixedRoundTrip) {
  ByteWriter w;
  w.PutLengthPrefixed({0xAA, 0xBB});
  w.PutLengthPrefixedString("hello");
  w.PutLengthPrefixed({});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetLengthPrefixed().value(), Bytes({0xAA, 0xBB}));
  EXPECT_EQ(r.GetLengthPrefixedString().value(), "hello");
  EXPECT_TRUE(r.GetLengthPrefixed().value().empty());
}

TEST(ByteWriterReaderTest, UnderflowDetected) {
  Bytes one = {0x01};
  ByteReader r(one);
  EXPECT_TRUE(r.GetU8().ok());
  EXPECT_FALSE(r.GetU8().ok());
  Bytes claims_five = {0x05, 0x01};  // claims 5 bytes, has 1
  ByteReader r2(claims_five);
  EXPECT_FALSE(r2.GetLengthPrefixed().ok());
}

TEST(ByteWriterReaderTest, TruncatedVarintDetected) {
  Bytes truncated = {0x80};  // continuation bit set, nothing follows
  ByteReader r(truncated);
  EXPECT_FALSE(r.GetVarint().ok());
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("says$path", "says$"));
  EXPECT_FALSE(StartsWith("say", "says"));
  EXPECT_TRUE(EndsWith("foo.blox", ".blox"));
  EXPECT_FALSE(EndsWith("blox", "foo.blox"));
}

TEST(RandomTest, DeterministicForSeed) {
  Xoshiro256 a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Xoshiro256 a2(123);
  for (int i = 0; i < 100; ++i) differs |= (a2.Next() != c.Next());
  EXPECT_TRUE(differs);
}

TEST(RandomTest, UniformBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    int64_t w = rng.UniformInt(-5, 5);
    EXPECT_GE(w, -5);
    EXPECT_LE(w, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Xoshiro256 rng(9);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) seen[rng.Uniform(6)]++;
  for (int c : seen) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(ConstantTimeEqualsTest, SizesAndContent) {
  EXPECT_TRUE(ConstantTimeEquals({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(ConstantTimeEquals({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(ConstantTimeEquals({1, 2, 3}, {1, 2}));
}

}  // namespace
}  // namespace secureblox
