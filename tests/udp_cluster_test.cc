// Live UDP cluster: the secure transitive closure converges over real
// sockets, with authenticated batches.
#include <gtest/gtest.h>

#include "dist/udp_cluster.h"
#include "policy/says_policy.h"

namespace secureblox::dist {
namespace {

using datalog::Value;

const char* kApp = R"(
link(X, Y) -> principal(X), principal(Y).
reachable(X, Y) -> principal(X), principal(Y).
reachable(X, Y) <- link(X, Y).
reachable(X, Y) <- reachable(X, Z), reachable(Z, Y).
says[`reachable](S, U, X, Y) <- reachable(X, Y), link(S, U), self[] = S.
exportable(`reachable).
)";

TEST(UdpClusterTest, ThreeNodeClosureOverRealSockets) {
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;

  UdpCluster::Config cfg;
  cfg.num_nodes = 3;
  cfg.sources = {policy::PreludeSource(), kApp,
                 policy::SaysPolicySource(popts)};
  cfg.batch_security.auth = policy::AuthScheme::kHmac;
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "udp-cluster-test";

  auto cluster = UdpCluster::Create(std::move(cfg));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  ASSERT_TRUE((*cluster)
                  ->Insert(0, {{"link", {Value::Str("p0"), Value::Str("p1")}}})
                  .ok());
  ASSERT_TRUE((*cluster)
                  ->Insert(1, {{"link", {Value::Str("p1"), Value::Str("p2")}}})
                  .ok());

  auto stats = (*cluster)->Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->messages_delivered, 0u);
  EXPECT_EQ(stats->rejected, 0u);

  // The last node in the chain learns the full prefix closure.
  auto rows = (*cluster)->node(2).workspace().Query("reachable").value();
  EXPECT_EQ(rows.size(), 3u);  // p0->p1, p1->p2, p0->p2
}

TEST(UdpClusterTest, HostileDatagramsAreRejectedNotFatal) {
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;

  UdpCluster::Config cfg;
  cfg.num_nodes = 2;
  cfg.sources = {policy::PreludeSource(), kApp,
                 policy::SaysPolicySource(popts)};
  cfg.batch_security.auth = policy::AuthScheme::kHmac;
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "udp-hostile";

  auto cluster = UdpCluster::Create(std::move(cfg));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  // An attacker socket aimed at node 0's port.
  std::vector<net::UdpEndpoint> eps = {
      {"127.0.0.1", 0}, {"127.0.0.1", (*cluster)->port_of(0)}};
  auto attacker = net::UdpTransport::Bind(0, eps);
  ASSERT_TRUE(attacker.ok()) << attacker.status().ToString();

  // Truncated datagram (no sender header), a bogus sender index, and a
  // well-formed header with garbage payload.
  ASSERT_TRUE(attacker->Send(1, Bytes{0x01}).ok());
  ASSERT_TRUE(attacker->Send(1, Bytes{0xff, 0xff, 0xff, 0xff, 0x00}).ok());
  {
    ByteWriter w;
    w.PutU32(1);  // claims to be node 1
    for (int i = 0; i < 64; ++i) w.PutU8(static_cast<uint8_t>(i * 37));
    ASSERT_TRUE(attacker->Send(1, w.Take()).ok());
  }

  // Legitimate traffic queued alongside the garbage.
  ASSERT_TRUE((*cluster)
                  ->Insert(1, {{"link", {Value::Str("p1"), Value::Str("p0")}}})
                  .ok());

  auto stats = (*cluster)->Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->rejected, 3u);

  // The node survived and keeps serving: another round of real traffic.
  ASSERT_TRUE((*cluster)
                  ->Insert(0, {{"link", {Value::Str("p0"), Value::Str("p1")}}})
                  .ok());
  auto stats2 = (*cluster)->Run();
  ASSERT_TRUE(stats2.ok()) << stats2.status().ToString();
  EXPECT_GT((*cluster)->node(1).workspace().Query("link").value().size(), 0u);
}

TEST(UdpClusterTest, LyingTupleCountHintsAreClampedAndCounted) {
  // The envelope's tuple-count hint rides outside the seal, so an on-path
  // attacker can forge it around an otherwise authentic payload. The
  // receiver must clamp batching accounting to the decoded payload's
  // actual tuple count — an oversized hint must not burst the batch cap's
  // accounting and a zero hint must not starve it — and count the lie.
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;

  UdpCluster::Config cfg;
  cfg.num_nodes = 2;
  cfg.sources = {policy::PreludeSource(), kApp,
                 policy::SaysPolicySource(popts)};
  cfg.batch_security.auth = policy::AuthScheme::kHmac;
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "udp-hints";
  cfg.max_batch_tuples = 1;  // every lying weight would distort this cap

  auto cluster = UdpCluster::Create(std::move(cfg));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  // A genuine sealed export from node 1, captured instead of sent.
  auto outcome = (*cluster)->node(1).InsertLocal(
      {{"link", {Value::Str("p1"), Value::Str("p0")}}});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome->accepted);
  ASSERT_FALSE(outcome->outgoing.empty());
  const NodeRuntime::Outgoing& out = outcome->outgoing[0];
  ASSERT_EQ(out.dst, 0u);
  ASSERT_GT(out.num_tuples, 0u);

  // Replay it three times from an attacker socket aimed at node 0: an
  // oversized hint, a zero hint, and the honest count.
  std::vector<net::UdpEndpoint> eps = {
      {"127.0.0.1", 0}, {"127.0.0.1", (*cluster)->port_of(0)}};
  auto attacker = net::UdpTransport::Bind(0, eps);
  ASSERT_TRUE(attacker.ok()) << attacker.status().ToString();
  for (uint32_t hint : {0xFFFFFFu, 0u,
                        static_cast<uint32_t>(out.num_tuples)}) {
    ByteWriter w;
    w.PutU32(1);  // truthful source: the seal verifies
    w.PutU32(hint);
    w.PutU32(out.shard);
    w.PutU32(static_cast<uint32_t>(out.map_epoch));
    w.PutRaw(out.payload);
    ASSERT_TRUE(attacker->Send(1, w.Take()).ok());
  }

  auto stats = (*cluster)->Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // All three payloads authenticate and apply (duplicates are set-
  // semantics no-ops); with actual-count accounting and cap 1 each gets
  // its own transaction — a lying weight can neither merge nor split
  // them.
  EXPECT_EQ(stats->messages_delivered, 3u);
  EXPECT_EQ(stats->apply_transactions, 3u);
  EXPECT_EQ(stats->hint_mismatches, 2u);
  EXPECT_EQ(stats->rejected, 2u);  // the two lies, nothing else

  // The content still landed exactly once.
  auto rows = (*cluster)->node(0).workspace().Query("reachable").value();
  EXPECT_EQ(rows.size(), 1u);
}

TEST(UdpClusterTest, ShutdownDrainsSocketBufferedDatagrams) {
  // Regression: datagrams still sitting in a receiver's socket buffer at
  // shutdown must be delivered, not dropped with the sockets. A tight
  // idle budget (one zero-timeout sweep) lets the apply loop decide
  // "quiet network" before the receive thread has handed anything over;
  // the shutdown path must then (a) have the receive thread run one final
  // full sweep after observing stop, (b) absorb the queue residue into
  // the held batches, and (c) flush every destination unconditionally.
  // Pre-fix, the messages sent below were racily lost; post-fix their
  // delivery is deterministic (loopback sendto buffers synchronously).
  // The apply loop's cv wait uses a predicate, so spurious wakeups only
  // cost an empty sweep — they cannot fake traffic or skip the drain.
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;

  UdpCluster::Config cfg;
  cfg.num_nodes = 2;
  cfg.sources = {policy::PreludeSource(), kApp,
                 policy::SaysPolicySource(popts)};
  cfg.batch_security.auth = policy::AuthScheme::kHmac;
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "udp-shutdown-drain";
  cfg.poll_timeout_ms = 0;
  cfg.idle_sweeps = 1;

  auto cluster = UdpCluster::Create(std::move(cfg));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  // Sealed exports buffered on node 1's socket before the loops start.
  ASSERT_TRUE((*cluster)
                  ->Insert(0, {{"link", {Value::Str("p0"), Value::Str("p1")}}})
                  .ok());
  ASSERT_TRUE((*cluster)
                  ->Insert(0, {{"link", {Value::Str("p1"), Value::Str("p0")}}})
                  .ok());

  auto stats = (*cluster)->Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->messages_delivered, 2u);
  EXPECT_EQ(stats->rejected, 0u);

  // The exported closure committed on the receiver despite the immediate
  // shutdown: reachable(p0,p1) from the first insert, then the three new
  // closure tuples (p1,p0), (p0,p0), (p1,p1) from the second.
  auto rows = (*cluster)->node(1).workspace().Query("reachable").value();
  EXPECT_EQ(rows.size(), 4u);
}

// Co-shardable app for the placement fuzz tests (tests/placement_test.cc
// exercises the full invariance matrix on the simulator; here we attack
// the transport envelope around placement batches).
const char* kPlacedApp = R"(
seed(X, Y) -> string(X), string(Y).
grow(X, Y) -> string(X), string(Y).
inv(X, Y) -> string(X), string(Y).
grow(X, Y) <- seed(X, Y).
inv(Y, X) <- seed(X, Y).
)";

UdpCluster::Config PlacedConfig(const char* seed_str) {
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;
  UdpCluster::Config cfg;
  cfg.num_nodes = 2;
  cfg.sources = {policy::PreludeSource(), kPlacedApp,
                 policy::SaysPolicySource(popts)};
  cfg.batch_security.auth = policy::AuthScheme::kHmac;
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = seed_str;
  cfg.placement = true;
  cfg.placed_preds = {"seed", "grow", "inv"};
  cfg.storage_shards = 7;
  return cfg;
}

// Capture a placement batch staged at `node` by inserting seeds until one
// routes to the peer. The commit stays local; only the sealed outgoing is
// returned for the attacker to replay.
NodeRuntime::Outgoing CapturePlacementBatch(UdpCluster& cluster,
                                            net::NodeIndex node) {
  for (int i = 0; i < 64; ++i) {
    auto outcome = cluster.node(node).InsertLocal(
        {{"seed",
          {Value::Str("cap" + std::to_string(i)), Value::Str("v")}}});
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (!outcome->outgoing.empty()) return outcome->outgoing[0];
  }
  ADD_FAILURE() << "no seed key routed to the peer in 64 tries";
  return {};
}

TEST(UdpClusterTest, LyingShardAndEpochEnvelopesAreCountedNotTrusted) {
  // The envelope's shard/epoch words ride outside the seal. Routing always
  // comes from the sealed batch header, so a forged envelope cannot
  // misroute a payload — but every lie is counted for operators.
  auto cluster = UdpCluster::Create(PlacedConfig("udp-routing-fuzz"));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  NodeRuntime::Outgoing out = CapturePlacementBatch(**cluster, 0);
  ASSERT_EQ(out.dst, 1u);
  ASSERT_NE(out.shard, net::kNoShard);

  std::vector<net::UdpEndpoint> eps = {
      {"127.0.0.1", 0}, {"127.0.0.1", (*cluster)->port_of(1)}};
  auto attacker = net::UdpTransport::Bind(0, eps);
  ASSERT_TRUE(attacker.ok()) << attacker.status().ToString();

  struct Forgery {
    uint32_t shard;
    uint32_t epoch;
  };
  const Forgery sends[] = {
      {out.shard ^ 0x55AAu, static_cast<uint32_t>(out.map_epoch)},  // lie
      {out.shard, static_cast<uint32_t>(out.map_epoch) + 7},        // lie
      {out.shard, static_cast<uint32_t>(out.map_epoch)},            // honest
  };
  for (const Forgery& f : sends) {
    ByteWriter w;
    w.PutU32(0);  // truthful source: the seal verifies
    w.PutU32(static_cast<uint32_t>(out.num_tuples));
    w.PutU32(f.shard);
    w.PutU32(f.epoch);
    w.PutRaw(out.payload);
    ASSERT_TRUE(attacker->Send(1, w.Take()).ok());
  }

  auto stats = (*cluster)->Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // The three attacker datagrams, plus any legitimate re-keyed `inv`
  // deltas node 1's fixpoint routes back.
  EXPECT_GE(stats->messages_delivered, 3u);
  EXPECT_EQ(stats->routing_mismatches, 2u);
  EXPECT_EQ(stats->hint_mismatches, 0u);

  // All three copies applied (set semantics): the routed seed landed at
  // its owner exactly once, with its shard-local derivation.
  auto rows = (*cluster)->node(1).workspace().Query("seed").value();
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_EQ((*cluster)->node(1).stats().batches_rejected_routing, 0u);
}

TEST(UdpClusterTest, HandoffReplayIsIdempotent) {
  // A node leaves; its sealed handoff snapshots are delivered twice (an
  // attacker replay, or a retransmit). The second application must be a
  // no-op: same tuples, same exact support counts.
  auto cluster = UdpCluster::Create(PlacedConfig("udp-handoff-replay"));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*cluster)
                    ->Insert(0, {{"seed",
                                  {Value::Str("h" + std::to_string(i)),
                                   Value::Str("w" + std::to_string(i))}}})
                    .ok());
  }
  auto stats1 = (*cluster)->Run();
  ASSERT_TRUE(stats1.ok()) << stats1.status().ToString();

  // Node 1 departs: static membership on this transport, so the test
  // drives the runtimes directly — extract at the old owner, then both
  // nodes adopt the new map.
  ShardMap new_map = (*cluster)->node(1).shard_map();
  new_map.Leave(1);
  auto handoff = (*cluster)->node(1).ExtractHandoff(new_map);
  ASSERT_TRUE(handoff.ok()) << handoff.status().ToString();
  ASSERT_FALSE(handoff->empty());
  (*cluster)->node(0).SetShardMap(new_map);
  (*cluster)->node(1).SetShardMap(new_map);

  std::vector<net::UdpEndpoint> eps = {
      {"127.0.0.1", 0}, {"127.0.0.1", (*cluster)->port_of(0)}};
  auto attacker = net::UdpTransport::Bind(0, eps);
  ASSERT_TRUE(attacker.ok()) << attacker.status().ToString();
  size_t handoff_rows = 0;
  for (int replay = 0; replay < 2; ++replay) {
    for (const NodeRuntime::Outgoing& out : *handoff) {
      ASSERT_EQ(out.dst, 0u);
      ByteWriter w;
      w.PutU32(1);
      w.PutU32(static_cast<uint32_t>(out.num_tuples));
      w.PutU32(out.shard);
      w.PutU32(static_cast<uint32_t>(out.map_epoch));
      w.PutRaw(out.payload);
      ASSERT_TRUE(attacker->Send(1, w.Take()).ok());
      if (replay == 0) handoff_rows += out.num_tuples;
    }
  }

  auto stats2 = (*cluster)->Run();
  ASSERT_TRUE(stats2.ok()) << stats2.status().ToString();
  EXPECT_EQ(stats2->routing_mismatches, 0u);

  // Node 0 now owns everything, exactly once, with exact supports: every
  // seed has its grow twin (support 1 each, one derivation per seed).
  auto& ws = (*cluster)->node(0).workspace();
  auto seeds = ws.Query("seed").value();
  auto grows = ws.Query("grow").value();
  EXPECT_EQ(seeds.size(), 8u);
  EXPECT_EQ(grows.size(), 8u);
  const engine::Relation* grow_rel =
      ws.GetRelationIfExists(ws.catalog().Lookup("grow").value());
  ASSERT_NE(grow_rel, nullptr);
  for (const auto& t : grow_rel->AllTuples()) {
    EXPECT_EQ(grow_rel->SupportCount(t), 1u) << "replay inflated support";
  }
  // Both copies arrived and were counted as handoff traffic.
  EXPECT_EQ((*cluster)->node(0).stats().handoff_rows_in, 2 * handoff_rows);
}

TEST(UdpClusterTest, PortsAreDistinct) {
  UdpCluster::Config cfg;
  cfg.num_nodes = 2;
  policy::SaysPolicyOptions popts;
  cfg.sources = {policy::PreludeSource(), kApp,
                 policy::SaysPolicySource(popts)};
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "udp-ports";
  auto cluster = UdpCluster::Create(std::move(cfg));
  ASSERT_TRUE(cluster.ok());
  EXPECT_NE((*cluster)->port_of(0), (*cluster)->port_of(1));
  EXPECT_GT((*cluster)->port_of(0), 0u);
}

}  // namespace
}  // namespace secureblox::dist
