// Live UDP cluster: the secure transitive closure converges over real
// sockets, with authenticated batches.
#include <gtest/gtest.h>

#include "dist/udp_cluster.h"
#include "policy/says_policy.h"

namespace secureblox::dist {
namespace {

using datalog::Value;

const char* kApp = R"(
link(X, Y) -> principal(X), principal(Y).
reachable(X, Y) -> principal(X), principal(Y).
reachable(X, Y) <- link(X, Y).
reachable(X, Y) <- reachable(X, Z), reachable(Z, Y).
says[`reachable](S, U, X, Y) <- reachable(X, Y), link(S, U), self[] = S.
exportable(`reachable).
)";

TEST(UdpClusterTest, ThreeNodeClosureOverRealSockets) {
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;

  UdpCluster::Config cfg;
  cfg.num_nodes = 3;
  cfg.sources = {policy::PreludeSource(), kApp,
                 policy::SaysPolicySource(popts)};
  cfg.batch_security.auth = policy::AuthScheme::kHmac;
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "udp-cluster-test";

  auto cluster = UdpCluster::Create(std::move(cfg));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  ASSERT_TRUE((*cluster)
                  ->Insert(0, {{"link", {Value::Str("p0"), Value::Str("p1")}}})
                  .ok());
  ASSERT_TRUE((*cluster)
                  ->Insert(1, {{"link", {Value::Str("p1"), Value::Str("p2")}}})
                  .ok());

  auto stats = (*cluster)->Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->messages_delivered, 0u);
  EXPECT_EQ(stats->rejected, 0u);

  // The last node in the chain learns the full prefix closure.
  auto rows = (*cluster)->node(2).workspace().Query("reachable").value();
  EXPECT_EQ(rows.size(), 3u);  // p0->p1, p1->p2, p0->p2
}

TEST(UdpClusterTest, HostileDatagramsAreRejectedNotFatal) {
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;

  UdpCluster::Config cfg;
  cfg.num_nodes = 2;
  cfg.sources = {policy::PreludeSource(), kApp,
                 policy::SaysPolicySource(popts)};
  cfg.batch_security.auth = policy::AuthScheme::kHmac;
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "udp-hostile";

  auto cluster = UdpCluster::Create(std::move(cfg));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  // An attacker socket aimed at node 0's port.
  std::vector<net::UdpEndpoint> eps = {
      {"127.0.0.1", 0}, {"127.0.0.1", (*cluster)->port_of(0)}};
  auto attacker = net::UdpTransport::Bind(0, eps);
  ASSERT_TRUE(attacker.ok()) << attacker.status().ToString();

  // Truncated datagram (no sender header), a bogus sender index, and a
  // well-formed header with garbage payload.
  ASSERT_TRUE(attacker->Send(1, Bytes{0x01}).ok());
  ASSERT_TRUE(attacker->Send(1, Bytes{0xff, 0xff, 0xff, 0xff, 0x00}).ok());
  {
    ByteWriter w;
    w.PutU32(1);  // claims to be node 1
    for (int i = 0; i < 64; ++i) w.PutU8(static_cast<uint8_t>(i * 37));
    ASSERT_TRUE(attacker->Send(1, w.Take()).ok());
  }

  // Legitimate traffic queued alongside the garbage.
  ASSERT_TRUE((*cluster)
                  ->Insert(1, {{"link", {Value::Str("p1"), Value::Str("p0")}}})
                  .ok());

  auto stats = (*cluster)->Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->rejected, 3u);

  // The node survived and keeps serving: another round of real traffic.
  ASSERT_TRUE((*cluster)
                  ->Insert(0, {{"link", {Value::Str("p0"), Value::Str("p1")}}})
                  .ok());
  auto stats2 = (*cluster)->Run();
  ASSERT_TRUE(stats2.ok()) << stats2.status().ToString();
  EXPECT_GT((*cluster)->node(1).workspace().Query("link").value().size(), 0u);
}

TEST(UdpClusterTest, LyingTupleCountHintsAreClampedAndCounted) {
  // The envelope's tuple-count hint rides outside the seal, so an on-path
  // attacker can forge it around an otherwise authentic payload. The
  // receiver must clamp batching accounting to the decoded payload's
  // actual tuple count — an oversized hint must not burst the batch cap's
  // accounting and a zero hint must not starve it — and count the lie.
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;

  UdpCluster::Config cfg;
  cfg.num_nodes = 2;
  cfg.sources = {policy::PreludeSource(), kApp,
                 policy::SaysPolicySource(popts)};
  cfg.batch_security.auth = policy::AuthScheme::kHmac;
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "udp-hints";
  cfg.max_batch_tuples = 1;  // every lying weight would distort this cap

  auto cluster = UdpCluster::Create(std::move(cfg));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  // A genuine sealed export from node 1, captured instead of sent.
  auto outcome = (*cluster)->node(1).InsertLocal(
      {{"link", {Value::Str("p1"), Value::Str("p0")}}});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome->accepted);
  ASSERT_FALSE(outcome->outgoing.empty());
  const NodeRuntime::Outgoing& out = outcome->outgoing[0];
  ASSERT_EQ(out.dst, 0u);
  ASSERT_GT(out.num_tuples, 0u);

  // Replay it three times from an attacker socket aimed at node 0: an
  // oversized hint, a zero hint, and the honest count.
  std::vector<net::UdpEndpoint> eps = {
      {"127.0.0.1", 0}, {"127.0.0.1", (*cluster)->port_of(0)}};
  auto attacker = net::UdpTransport::Bind(0, eps);
  ASSERT_TRUE(attacker.ok()) << attacker.status().ToString();
  for (uint32_t hint : {0xFFFFFFu, 0u,
                        static_cast<uint32_t>(out.num_tuples)}) {
    ByteWriter w;
    w.PutU32(1);  // truthful source: the seal verifies
    w.PutU32(hint);
    w.PutRaw(out.payload);
    ASSERT_TRUE(attacker->Send(1, w.Take()).ok());
  }

  auto stats = (*cluster)->Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // All three payloads authenticate and apply (duplicates are set-
  // semantics no-ops); with actual-count accounting and cap 1 each gets
  // its own transaction — a lying weight can neither merge nor split
  // them.
  EXPECT_EQ(stats->messages_delivered, 3u);
  EXPECT_EQ(stats->apply_transactions, 3u);
  EXPECT_EQ(stats->hint_mismatches, 2u);
  EXPECT_EQ(stats->rejected, 2u);  // the two lies, nothing else

  // The content still landed exactly once.
  auto rows = (*cluster)->node(0).workspace().Query("reachable").value();
  EXPECT_EQ(rows.size(), 1u);
}

TEST(UdpClusterTest, ShutdownDrainsSocketBufferedDatagrams) {
  // Regression: datagrams still sitting in a receiver's socket buffer at
  // shutdown must be delivered, not dropped with the sockets. A tight
  // idle budget (one zero-timeout sweep) lets the apply loop decide
  // "quiet network" before the receive thread has handed anything over;
  // the shutdown path must then (a) have the receive thread run one final
  // full sweep after observing stop, (b) absorb the queue residue into
  // the held batches, and (c) flush every destination unconditionally.
  // Pre-fix, the messages sent below were racily lost; post-fix their
  // delivery is deterministic (loopback sendto buffers synchronously).
  // The apply loop's cv wait uses a predicate, so spurious wakeups only
  // cost an empty sweep — they cannot fake traffic or skip the drain.
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;

  UdpCluster::Config cfg;
  cfg.num_nodes = 2;
  cfg.sources = {policy::PreludeSource(), kApp,
                 policy::SaysPolicySource(popts)};
  cfg.batch_security.auth = policy::AuthScheme::kHmac;
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "udp-shutdown-drain";
  cfg.poll_timeout_ms = 0;
  cfg.idle_sweeps = 1;

  auto cluster = UdpCluster::Create(std::move(cfg));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  // Sealed exports buffered on node 1's socket before the loops start.
  ASSERT_TRUE((*cluster)
                  ->Insert(0, {{"link", {Value::Str("p0"), Value::Str("p1")}}})
                  .ok());
  ASSERT_TRUE((*cluster)
                  ->Insert(0, {{"link", {Value::Str("p1"), Value::Str("p0")}}})
                  .ok());

  auto stats = (*cluster)->Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->messages_delivered, 2u);
  EXPECT_EQ(stats->rejected, 0u);

  // The exported closure committed on the receiver despite the immediate
  // shutdown: reachable(p0,p1) from the first insert, then the three new
  // closure tuples (p1,p0), (p0,p0), (p1,p1) from the second.
  auto rows = (*cluster)->node(1).workspace().Query("reachable").value();
  EXPECT_EQ(rows.size(), 4u);
}

TEST(UdpClusterTest, PortsAreDistinct) {
  UdpCluster::Config cfg;
  cfg.num_nodes = 2;
  policy::SaysPolicyOptions popts;
  cfg.sources = {policy::PreludeSource(), kApp,
                 policy::SaysPolicySource(popts)};
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "udp-ports";
  auto cluster = UdpCluster::Create(std::move(cfg));
  ASSERT_TRUE(cluster.ok());
  EXPECT_NE((*cluster)->port_of(0), (*cluster)->port_of(1));
  EXPECT_GT((*cluster)->port_of(0), 0u);
}

}  // namespace
}  // namespace secureblox::dist
