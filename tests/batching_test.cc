// Batched, pipelined distribution (paper §5.2): coalesced deliveries must
// preserve semantics exactly.
//
// Equivalence suite: for the hashjoin / pathvector / anonjoin programs the
// drained cluster fixpoint — every relation plus derivation-support counts
// on every node — is identical at batch granularity 1, 4, 64 and ∞, with
// and without HMAC / RSA-AES batch security. Anonymous entity labels embed
// a creation-order counter, so dumps are compared after canonicalizing
// anon labels by structural signature (WL-style color refinement); the
// canonical dumps are compared byte for byte.
//
// Fault injection: one source's corrupted seal inside a coalesced batch
// rejects only that source's facts; a constraint-violating fact isolates
// its source via the bisect path; Stats counters are pinned. Every
// SimCluster TxRecord — rejected deliveries included — carries a real
// simulated duration.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "apps/anonjoin.h"
#include "apps/hashjoin.h"
#include "apps/pathvector.h"
#include "dist/cluster.h"
#include "dist/runtime.h"
#include "dist/udp_cluster.h"
#include "policy/says_policy.h"

namespace secureblox::dist {
namespace {

using datalog::Value;
using engine::FactUpdate;
using policy::AuthScheme;
using policy::EncScheme;

// ---------------------------------------------------------------------------
// Canonical workspace dumps (anon labels renamed by structural signature).
// ---------------------------------------------------------------------------

// Anonymous entities are labeled `<hint>@<node_tag>#<counter>`.
bool IsAnonLabel(const std::string& label) {
  size_t at = label.find('@');
  return at != std::string::npos && label.find('#', at) != std::string::npos;
}

struct RawAtom {
  std::string pred;
  /// Rendered values; anonymous entity positions hold only the type prefix
  /// ("pathvar:") with the raw label kept in anon_label.
  std::vector<std::string> vals;
  std::vector<std::string> anon_label;  // "" when vals[i] is literal
  uint32_t support = 0;
};

std::string RenderAtom(const RawAtom& a,
                       const std::map<std::string, std::string>& names,
                       const std::string& self_label) {
  std::string out = a.pred + "(";
  for (size_t i = 0; i < a.vals.size(); ++i) {
    if (i) out += ",";
    out += a.vals[i];
    const std::string& label = a.anon_label[i];
    if (!label.empty()) {
      if (label == self_label) {
        out += "\xC2\xA7";  // self marker
      } else {
        auto it = names.find(label);
        out += it != names.end() ? it->second : std::string("?");
      }
    }
  }
  out += ")x" + std::to_string(a.support);
  return out;
}

std::string CanonicalDump(const engine::Workspace& ws) {
  const datalog::Catalog& catalog = ws.catalog();
  std::vector<RawAtom> atoms;
  std::map<std::string, std::vector<size_t>> occurrences;  // label -> atoms
  for (size_t p = 0; p < catalog.num_predicates(); ++p) {
    datalog::PredId id = static_cast<datalog::PredId>(p);
    const engine::Relation* rel = ws.GetRelationIfExists(id);
    if (rel == nullptr || rel->empty()) continue;
    const std::string& pred_name = catalog.decl(id).name;
    for (const auto& t : rel->AllTuples()) {
      RawAtom a;
      a.pred = pred_name;
      a.support = rel->SupportCount(t);
      for (const auto& v : t) {
        if (v.is_entity()) {
          std::string label = catalog.EntityLabel(v).value();
          std::string prefix = catalog.decl(v.entity_type()).name + ":";
          if (IsAnonLabel(label)) {
            a.vals.push_back(prefix);
            a.anon_label.push_back(label);
          } else {
            a.vals.push_back(prefix + label);
            a.anon_label.push_back("");
          }
        } else {
          a.vals.push_back(catalog.ValueToString(v));
          a.anon_label.push_back("");
        }
      }
      size_t idx = atoms.size();
      atoms.push_back(std::move(a));
      for (const std::string& label : atoms[idx].anon_label) {
        if (!label.empty()) occurrences[label].push_back(idx);
      }
    }
  }

  // Color refinement: an anon entity's color is the sorted multiset of its
  // atoms rendered with itself marked and other anon entities shown by
  // their previous-round colors. Converges in O(longest anon-to-anon
  // reference chain) rounds.
  std::map<std::string, std::string> color;
  for (int round = 0; round < 32; ++round) {
    std::map<std::string, std::string> sig;
    for (const auto& [label, atom_ids] : occurrences) {
      std::vector<std::string> parts;
      for (size_t id : atom_ids) parts.push_back(RenderAtom(atoms[id], color, label));
      std::sort(parts.begin(), parts.end());
      std::string joined;
      for (const auto& part : parts) joined += part + ";";
      sig[label] = joined;
    }
    std::set<std::string> uniq;
    for (const auto& [label, s] : sig) uniq.insert(s);
    std::map<std::string, std::string> next;
    for (const auto& [label, s] : sig) {
      size_t rank = static_cast<size_t>(
          std::distance(uniq.begin(), uniq.find(s)));
      next[label] = "a" + std::to_string(rank);
    }
    if (next == color) break;
    color = std::move(next);
  }

  std::vector<std::string> lines;
  for (const RawAtom& a : atoms) lines.push_back(RenderAtom(a, color, ""));
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) out += line + "\n";
  return out;
}

std::string ClusterDump(SimCluster& cluster) {
  std::string out;
  for (size_t i = 0; i < cluster.num_nodes(); ++i) {
    out += "== node " + std::to_string(i) + " ==\n";
    out += CanonicalDump(
        cluster.node(static_cast<net::NodeIndex>(i)).workspace());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Equivalence: pathvector (line topology: unique paths, so the distributed
// fixpoint is granularity-invariant including all path entities).
// ---------------------------------------------------------------------------

Result<std::string> RunPathVectorLineDump(size_t batch_tuples,
                                          AuthScheme auth, EncScheme enc,
                                          double batch_delay_s = 0) {
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;
  SimCluster::Config cfg;
  cfg.num_nodes = 4;
  cfg.sources = {policy::PreludeSource(), apps::PathVectorSource(),
                 policy::SaysPolicySource(popts)};
  cfg.batch_security = {auth, enc};
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "batching-pv";
  cfg.max_batch_tuples = batch_tuples;
  cfg.max_batch_delay_s = batch_delay_s;
  SB_ASSIGN_OR_RETURN(std::unique_ptr<SimCluster> cluster,
                      SimCluster::Create(std::move(cfg)));
  auto principal = [](size_t i) { return "p" + std::to_string(i); };
  for (size_t i = 0; i + 1 < 4; ++i) {
    cluster->ScheduleInsert(
        static_cast<net::NodeIndex>(i),
        {{"link", {Value::Str(principal(i)), Value::Str(principal(i + 1))}}});
    cluster->ScheduleInsert(
        static_cast<net::NodeIndex>(i + 1),
        {{"link", {Value::Str(principal(i + 1)), Value::Str(principal(i))}}});
  }
  SB_ASSIGN_OR_RETURN(SimCluster::Metrics metrics, cluster->Run());
  if (metrics.rejected_batches != 0) {
    return Status::Internal("unexpected rejected deliveries");
  }
  return ClusterDump(*cluster);
}

TEST(BatchingEquivalence, PathVectorAllGranularitiesAllSchemes) {
  const std::vector<std::pair<AuthScheme, EncScheme>> schemes = {
      {AuthScheme::kNone, EncScheme::kNone},
      {AuthScheme::kHmac, EncScheme::kNone},
      {AuthScheme::kRsa, EncScheme::kAes},
  };
  std::vector<std::string> per_scheme;
  for (const auto& [auth, enc] : schemes) {
    auto baseline = RunPathVectorLineDump(1, auth, enc);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    EXPECT_NE(baseline->find("bestcost("), std::string::npos);
    for (size_t g : {size_t{4}, size_t{64}, size_t{0}}) {
      auto dump = RunPathVectorLineDump(g, auth, enc);
      ASSERT_TRUE(dump.ok()) << dump.status().ToString();
      EXPECT_EQ(*dump, *baseline)
          << "granularity " << g << " scheme "
          << BatchSecurity{auth, enc}.Name();
    }
    per_scheme.push_back(std::move(baseline).value());
  }
  // The seal never leaks into the dataflow: dumps match across schemes too.
  EXPECT_EQ(per_scheme[0], per_scheme[1]);
  EXPECT_EQ(per_scheme[0], per_scheme[2]);

  // Holding batches open (max_batch_delay) changes scheduling only.
  auto delayed = RunPathVectorLineDump(0, AuthScheme::kNone,
                                       EncScheme::kNone, /*delay=*/0.005);
  ASSERT_TRUE(delayed.ok()) << delayed.status().ToString();
  EXPECT_EQ(*delayed, per_scheme[0]);
}

// ---------------------------------------------------------------------------
// Equivalence: hashjoin (monotone rehash-join-reply pipeline).
// ---------------------------------------------------------------------------

Result<std::string> RunHashJoinDump(size_t batch_tuples, AuthScheme auth,
                                    EncScheme enc) {
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;
  SimCluster::Config cfg;
  cfg.num_nodes = 3;
  cfg.sources = {policy::PreludeSource(), apps::HashJoinSource(),
                 policy::SaysPolicySource(popts)};
  cfg.batch_security = {auth, enc};
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "batching-hj";
  cfg.max_batch_tuples = batch_tuples;
  SB_ASSIGN_OR_RETURN(std::unique_ptr<SimCluster> cluster,
                      SimCluster::Create(std::move(cfg)));

  // Deterministic small workload over 6 join values.
  const int64_t kHashSpace = 1000000;
  std::vector<std::vector<FactUpdate>> initial(3);
  for (int64_t i = 0; i < 24; ++i) {
    initial[static_cast<size_t>(i) % 3].push_back(
        {"tbl_r", {Value::Int(i), Value::Int(100 + (i * 7) % 6)}});
  }
  for (int64_t i = 0; i < 18; ++i) {
    initial[static_cast<size_t>(i) % 3].push_back(
        {"tbl_s", {Value::Int(1000 + i), Value::Int(100 + (i * 5) % 6)}});
  }
  for (size_t n = 0; n < 3; ++n) {
    initial[n].push_back({"initiator", {Value::Str("p0")}});
    for (size_t u = 0; u < 3; ++u) {
      std::string principal = "p" + std::to_string(u);
      int64_t lo = static_cast<int64_t>(u) * kHashSpace / 3;
      int64_t hi = static_cast<int64_t>(u + 1) * kHashSpace / 3;
      initial[n].push_back(
          {"prin_minhash", {Value::Str(principal), Value::Int(lo)}});
      initial[n].push_back(
          {"prin_maxhash", {Value::Str(principal), Value::Int(hi)}});
    }
    cluster->ScheduleInsert(static_cast<net::NodeIndex>(n),
                            std::move(initial[n]));
  }
  SB_ASSIGN_OR_RETURN(SimCluster::Metrics metrics, cluster->Run());
  if (metrics.rejected_batches != 0) {
    return Status::Internal("unexpected rejected deliveries");
  }
  return ClusterDump(*cluster);
}

TEST(BatchingEquivalence, HashJoinAllGranularitiesWithAndWithoutSecurity) {
  for (const auto& [auth, enc] :
       std::vector<std::pair<AuthScheme, EncScheme>>{
           {AuthScheme::kNone, EncScheme::kNone},
           {AuthScheme::kHmac, EncScheme::kNone},
           {AuthScheme::kRsa, EncScheme::kAes}}) {
    auto baseline = RunHashJoinDump(1, auth, enc);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    EXPECT_NE(baseline->find("joinresult("), std::string::npos);
    for (size_t g : {size_t{4}, size_t{64}, size_t{0}}) {
      auto dump = RunHashJoinDump(g, auth, enc);
      ASSERT_TRUE(dump.ok()) << dump.status().ToString();
      EXPECT_EQ(*dump, *baseline)
          << "granularity " << g << " scheme "
          << BatchSecurity{auth, enc}.Name();
    }
  }
}

// ---------------------------------------------------------------------------
// Equivalence: anonjoin (onion circuit; requests and replies relayed).
// ---------------------------------------------------------------------------

Result<std::string> RunAnonJoinDump(size_t batch_tuples) {
  SimCluster::Config cfg;
  cfg.num_nodes = 4;
  cfg.sources = {policy::PreludeSource(), policy::AnonPreludeSource(),
                 apps::AnonJoinSource(), policy::AnonSaysPolicySource()};
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "batching-aj";
  cfg.max_batch_tuples = batch_tuples;
  SB_ASSIGN_OR_RETURN(std::unique_ptr<SimCluster> cluster,
                      SimCluster::Create(std::move(cfg)));
  SB_RETURN_IF_ERROR(apps::BuildCircuit(cluster.get(), {0, 1, 2, 3}, "p3", 7));

  std::vector<FactUpdate> init0 = {{"table_owner", {Value::Str("p3")}}};
  for (int64_t k : {1, 2, 3}) init0.push_back({"interests", {Value::Int(k)}});
  std::vector<FactUpdate> init_owner;
  for (int64_t i = 0; i < 12; ++i) {
    init_owner.push_back(
        {"publicdata", {Value::Int(i % 6), Value::Int(i)}});
  }
  cluster->ScheduleInsert(0, std::move(init0));
  cluster->ScheduleInsert(3, std::move(init_owner));
  SB_ASSIGN_OR_RETURN(SimCluster::Metrics metrics, cluster->Run());
  if (metrics.rejected_batches != 0) {
    return Status::Internal("unexpected rejected deliveries");
  }
  return ClusterDump(*cluster);
}

TEST(BatchingEquivalence, AnonJoinAllGranularities) {
  auto baseline = RunAnonJoinDump(1);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_NE(baseline->find("result("), std::string::npos);
  for (size_t g : {size_t{4}, size_t{64}, size_t{0}}) {
    auto dump = RunAnonJoinDump(g);
    ASSERT_TRUE(dump.ok()) << dump.status().ToString();
    EXPECT_EQ(*dump, *baseline) << "granularity " << g;
  }
}

// ---------------------------------------------------------------------------
// Equivalence over real sockets: the pipelined UdpCluster converges to the
// same closure at every granularity.
// ---------------------------------------------------------------------------

const char* kReachableApp = R"(
link(X, Y) -> principal(X), principal(Y).
reachable(X, Y) -> principal(X), principal(Y).
reachable(X, Y) <- link(X, Y).
reachable(X, Y) <- reachable(X, Z), reachable(Z, Y).
says[`reachable](S, U, X, Y) <- reachable(X, Y), link(S, U), self[] = S.
exportable(`reachable).
)";

Result<std::string> RunUdpClosureDump(size_t batch_tuples) {
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;
  UdpCluster::Config cfg;
  cfg.num_nodes = 3;
  cfg.sources = {policy::PreludeSource(), kReachableApp,
                 policy::SaysPolicySource(popts)};
  cfg.batch_security.auth = AuthScheme::kHmac;
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "batching-udp";
  cfg.max_batch_tuples = batch_tuples;
  SB_ASSIGN_OR_RETURN(std::unique_ptr<UdpCluster> cluster,
                      UdpCluster::Create(std::move(cfg)));
  SB_RETURN_IF_ERROR(cluster->Insert(
      0, {{"link", {Value::Str("p0"), Value::Str("p1")}}}));
  SB_RETURN_IF_ERROR(cluster->Insert(
      1, {{"link", {Value::Str("p1"), Value::Str("p2")}}}));
  SB_ASSIGN_OR_RETURN(UdpCluster::Stats stats, cluster->Run());
  if (stats.rejected != 0) return Status::Internal("unexpected rejections");
  std::string out;
  for (net::NodeIndex i = 0; i < 3; ++i) {
    out += "== node " + std::to_string(i) + " ==\n";
    out += CanonicalDump(cluster->node(i).workspace());
  }
  return out;
}

TEST(BatchingEquivalence, UdpClusterGranularityInvariant) {
  auto fine = RunUdpClosureDump(1);
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();
  auto coarse = RunUdpClosureDump(0);
  ASSERT_TRUE(coarse.ok()) << coarse.status().ToString();
  EXPECT_EQ(*fine, *coarse);
  EXPECT_NE(fine->find("reachable("), std::string::npos);
}

// max_batch_delay_s over real sockets: the apply loop must hold a
// non-full batch open for the configured window (it used to close
// immediately, so the knob only worked in SimCluster), coalescing the
// second source's datagram into the first's transaction — and the held
// batch changes scheduling only, never the fixpoint.
TEST(BatchingEquivalence, UdpClusterHonorsBatchDelay) {
  auto run = [](double delay_s)
      -> Result<std::pair<UdpCluster::Stats, std::string>> {
    policy::SaysPolicyOptions popts;
    popts.accept = policy::AcceptMode::kBenign;
    UdpCluster::Config cfg;
    cfg.num_nodes = 3;
    cfg.sources = {policy::PreludeSource(), kReachableApp,
                   policy::SaysPolicySource(popts)};
    cfg.batch_security.auth = AuthScheme::kHmac;
    cfg.credentials.rsa_bits = 512;
    cfg.credentials.seed = "batching-udp-delay";
    cfg.max_batch_tuples = 0;
    cfg.max_batch_delay_s = delay_s;
    SB_ASSIGN_OR_RETURN(std::unique_ptr<UdpCluster> cluster,
                        UdpCluster::Create(std::move(cfg)));
    // Two sources, one destination: both exports address node 2.
    SB_RETURN_IF_ERROR(cluster->Insert(
        0, {{"link", {Value::Str("p0"), Value::Str("p2")}}}));
    SB_RETURN_IF_ERROR(cluster->Insert(
        1, {{"link", {Value::Str("p1"), Value::Str("p2")}}}));
    SB_ASSIGN_OR_RETURN(UdpCluster::Stats stats, cluster->Run());
    std::string out;
    for (net::NodeIndex i = 0; i < 3; ++i) {
      out += CanonicalDump(cluster->node(i).workspace());
    }
    return std::make_pair(stats, std::move(out));
  };

  auto immediate = run(0);
  ASSERT_TRUE(immediate.ok()) << immediate.status().ToString();

  const double kDelay = 0.25;
  auto t0 = std::chrono::steady_clock::now();
  auto delayed = run(kDelay);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(delayed.ok()) << delayed.status().ToString();

  // The batch was genuinely held open...
  EXPECT_GE(elapsed, kDelay);
  // ...both deliveries shared its transaction...
  EXPECT_EQ(delayed->first.messages_delivered, 2u);
  EXPECT_EQ(delayed->first.apply_transactions, 1u);
  EXPECT_EQ(delayed->first.coalesced_messages, 2u);
  EXPECT_EQ(delayed->first.rejected, 0u);
  // ...and the distributed fixpoint is unchanged.
  EXPECT_EQ(delayed->second, immediate->second);
}

// The same knob in simulated time, pinned on a star workload: three
// sources advertise to one hub at t=0, so without a delay the hub fires
// on the first arrival, while a held batch must absorb all three into a
// single delivery transaction whose start reflects the hold. (A line
// topology cannot pin this: its traffic is strictly causal, one in-flight
// message per node, so there is never anything to coalesce — and the
// path-vector app's split horizon never advertises a hub route back to
// the hub, so the reachable closure is the right star workload.)
TEST(BatchingEquivalence, SimClusterBatchDelayCoalesces) {
  auto run = [](double delay_s) -> Result<SimCluster::Metrics> {
    policy::SaysPolicyOptions popts;
    popts.accept = policy::AcceptMode::kBenign;
    SimCluster::Config cfg;
    cfg.num_nodes = 4;
    cfg.sources = {policy::PreludeSource(), kReachableApp,
                   policy::SaysPolicySource(popts)};
    cfg.batch_security = {AuthScheme::kNone, EncScheme::kNone};
    cfg.credentials.rsa_bits = 512;
    cfg.credentials.seed = "batching-pv-delay";
    cfg.max_batch_tuples = 0;
    cfg.max_batch_delay_s = delay_s;
    SB_ASSIGN_OR_RETURN(std::unique_ptr<SimCluster> cluster,
                        SimCluster::Create(std::move(cfg)));
    for (size_t i = 1; i < 4; ++i) {
      cluster->ScheduleInsert(
          static_cast<net::NodeIndex>(i),
          {{"link",
            {Value::Str("p" + std::to_string(i)), Value::Str("p0")}}});
    }
    return cluster->Run();
  };
  const double kDelay = 0.5;
  auto immediate = run(0);
  ASSERT_TRUE(immediate.ok()) << immediate.status().ToString();
  auto delayed = run(kDelay);
  ASSERT_TRUE(delayed.ok()) << delayed.status().ToString();
  EXPECT_EQ(delayed->rejected_batches, 0u);
  // Held open: all three advertisements share one delivery transaction...
  size_t hub_deliveries = 0;
  for (const SimCluster::TxRecord& tx : delayed->transactions) {
    if (tx.node != 0 || !tx.is_delivery) continue;
    ++hub_deliveries;
    EXPECT_EQ(tx.num_payloads, 3u);
    // ...which could not start before the hold expired.
    EXPECT_GE(tx.start_s, kDelay);
  }
  EXPECT_EQ(hub_deliveries, 1u);
  EXPECT_EQ(delayed->coalesced_messages, 3u);
  // Without the delay the hub fires on first arrival — well before any
  // hold — and needs at least as many delivery transactions.
  EXPECT_LT(immediate->fixpoint_latency_s, kDelay);
  EXPECT_GE(immediate->delivery_transactions,
            delayed->delivery_transactions);
}

// ---------------------------------------------------------------------------
// Fault injection: per-source seal verification and bisect isolation.
// ---------------------------------------------------------------------------

std::vector<std::string> FourPrincipals() {
  return {"p0", "p1", "p2", "p3"};
}

Result<std::vector<std::unique_ptr<NodeRuntime>>> MakeRuntimes(
    const std::vector<std::string>& sources, AuthScheme auth,
    const std::string& cred_seed) {
  std::vector<std::string> principals = FourPrincipals();
  policy::CredentialAuthority::Options copts;
  copts.rsa_bits = 512;
  copts.seed = cred_seed;
  policy::CredentialAuthority authority(principals, copts);
  std::vector<std::unique_ptr<NodeRuntime>> nodes;
  for (size_t i = 0; i < principals.size(); ++i) {
    NodeRuntime::Config cfg;
    cfg.index = static_cast<net::NodeIndex>(i);
    cfg.principals = principals;
    SB_ASSIGN_OR_RETURN(cfg.creds, authority.IssueFor(principals[i]));
    cfg.batch_security = {auth, EncScheme::kNone};
    SB_ASSIGN_OR_RETURN(std::unique_ptr<NodeRuntime> node,
                        NodeRuntime::Create(std::move(cfg), sources));
    nodes.push_back(std::move(node));
  }
  return nodes;
}

std::vector<std::string> ReachableSources() {
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;
  return {policy::PreludeSource(), kReachableApp,
          policy::SaysPolicySource(popts)};
}

std::set<std::string> ReachableSrcs(engine::Workspace& ws) {
  std::set<std::string> out;
  auto rows = ws.Query("reachable").value();
  for (const auto& t : rows) {
    out.insert(ws.catalog().ValueToString(t[0]));
  }
  return out;
}

TEST(BatchingFaults, CorruptedSealRejectsOnlyItsSource) {
  auto nodes =
      MakeRuntimes(ReachableSources(), AuthScheme::kHmac, "fault-seal");
  ASSERT_TRUE(nodes.ok()) << nodes.status().ToString();

  // Sources p0..p2 each advertise a link to p3.
  std::vector<NodeRuntime::SealedDelivery> batch;
  for (size_t i = 0; i < 3; ++i) {
    auto result = (*nodes)[i]->InsertLocal(
        {{"link",
          {Value::Str("p" + std::to_string(i)), Value::Str("p3")}}});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->outgoing.size(), 1u);
    ASSERT_EQ(result->outgoing[0].dst, 3u);
    batch.push_back({static_cast<net::NodeIndex>(i),
                     std::move(result->outgoing[0].payload)});
  }
  // Corrupt p1's seal.
  batch[1].payload[batch[1].payload.size() / 2] ^= 0x01;

  NodeRuntime& dst = *(*nodes)[3];
  auto outcome = dst.DeliverBatch(batch);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->results.size(), 3u);
  EXPECT_TRUE(outcome->results[0].accepted);
  EXPECT_FALSE(outcome->results[1].accepted);
  EXPECT_TRUE(outcome->results[2].accepted);
  EXPECT_EQ(outcome->accepted_payloads, 2u);
  // The surviving payloads share ONE commit.
  EXPECT_EQ(outcome->transactions, 1u);

  const NodeRuntime::Stats& stats = dst.stats();
  EXPECT_EQ(stats.batches_accepted, 2u);
  EXPECT_EQ(stats.batches_rejected_auth, 1u);
  EXPECT_EQ(stats.batches_rejected_parse, 0u);
  EXPECT_EQ(stats.batches_rejected_constraint, 0u);
  EXPECT_EQ(stats.delivery_txns, 1u);
  EXPECT_EQ(stats.coalesced_payloads, 2u);
  EXPECT_EQ(stats.bisect_splits, 0u);

  auto srcs = ReachableSrcs(dst.workspace());
  EXPECT_TRUE(srcs.count("principal:p0"));
  EXPECT_FALSE(srcs.count("principal:p1"));
  EXPECT_TRUE(srcs.count("principal:p2"));
}

const char* kGuardedApp = R"(
link(X, Y) -> principal(X), principal(Y).
reachable(X, Y) -> principal(X), principal(Y).
reachable(X, Y) <- link(X, Y).
reachable(X, Y) <- reachable(X, Z), reachable(Z, Y).
ok_src(X) -> principal(X).
reachable(X, Y) -> ok_src(X).
says[`reachable](S, U, X, Y) <- reachable(X, Y), link(S, U), self[] = S.
exportable(`reachable).
)";

TEST(BatchingFaults, ConstraintViolationIsolatedByBisect) {
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;
  std::vector<std::string> sources = {policy::PreludeSource(), kGuardedApp,
                                      policy::SaysPolicySource(popts)};
  auto nodes = MakeRuntimes(sources, AuthScheme::kHmac, "fault-bisect");
  ASSERT_TRUE(nodes.ok()) << nodes.status().ToString();

  // Each source whitelists itself locally; the destination trusts p0 and
  // p2 but NOT p1, so p1's (correctly sealed!) facts violate a constraint.
  std::vector<NodeRuntime::SealedDelivery> batch;
  for (size_t i = 0; i < 3; ++i) {
    std::string self = "p" + std::to_string(i);
    ASSERT_TRUE((*nodes)[i]
                    ->InsertLocal({{"ok_src", {Value::Str(self)}}})
                    .ok());
    auto result = (*nodes)[i]->InsertLocal(
        {{"link", {Value::Str(self), Value::Str("p3")}}});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->outgoing.size(), 1u);
    batch.push_back({static_cast<net::NodeIndex>(i),
                     std::move(result->outgoing[0].payload)});
  }
  NodeRuntime& dst = *(*nodes)[3];
  ASSERT_TRUE(dst.InsertLocal({{"ok_src", {Value::Str("p0")}},
                               {"ok_src", {Value::Str("p2")}}})
                  .ok());

  auto outcome = dst.DeliverBatch(batch);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->results[0].accepted);
  EXPECT_FALSE(outcome->results[1].accepted);
  EXPECT_TRUE(outcome->results[2].accepted);
  EXPECT_EQ(outcome->accepted_payloads, 2u);
  // Bisect path: [p0,p1,p2] fails -> [p0] commits, [p1,p2] fails ->
  // [p1] rejected, [p2] commits.
  EXPECT_EQ(outcome->transactions, 2u);

  const NodeRuntime::Stats& stats = dst.stats();
  EXPECT_EQ(stats.batches_accepted, 2u);
  EXPECT_EQ(stats.batches_rejected_auth, 0u);
  EXPECT_EQ(stats.batches_rejected_constraint, 1u);
  EXPECT_EQ(stats.delivery_txns, 2u);
  EXPECT_EQ(stats.bisect_splits, 2u);
  EXPECT_EQ(stats.coalesced_payloads, 0u);

  auto srcs = ReachableSrcs(dst.workspace());
  EXPECT_TRUE(srcs.count("principal:p0"));
  EXPECT_FALSE(srcs.count("principal:p1"));
  EXPECT_TRUE(srcs.count("principal:p2"));
}

// ---------------------------------------------------------------------------
// Every TxRecord carries a real simulated duration — rejected deliveries
// included (verification work costs cycles and advances the node's clock).
// ---------------------------------------------------------------------------

TEST(BatchingFaults, RejectedDeliveriesCarryRealSimulatedDuration) {
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;
  SimCluster::Config cfg;
  cfg.num_nodes = 2;
  cfg.sources = {policy::PreludeSource(), kGuardedApp,
                 policy::SaysPolicySource(popts)};
  cfg.batch_security.auth = AuthScheme::kHmac;
  cfg.credentials.rsa_bits = 512;
  cfg.credentials.seed = "txrecord-duration";
  auto cluster = SimCluster::Create(std::move(cfg));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  // Node 0 may derive reachable(p0, p1); node 1 trusts nobody, so the
  // delivery is rejected there.
  (*cluster)->ScheduleInsert(
      0, {{"ok_src", {Value::Str("p0")}},
          {"link", {Value::Str("p0"), Value::Str("p1")}}});
  auto metrics = (*cluster)->Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->rejected_batches, 1u);

  bool saw_rejected_delivery = false;
  for (const SimCluster::TxRecord& tx : metrics->transactions) {
    EXPECT_GT(tx.end_s, tx.start_s);
    if (tx.is_delivery && !tx.accepted) {
      saw_rejected_delivery = true;
      EXPECT_EQ(tx.node, 1u);
      EXPECT_GE(tx.num_payloads, 1u);
    }
  }
  EXPECT_TRUE(saw_rejected_delivery);
}

}  // namespace
}  // namespace secureblox::dist
