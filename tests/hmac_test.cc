// HMAC-SHA1 against RFC 2202 vectors and HMAC-SHA256 against RFC 4231.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/hmac.h"

namespace secureblox::crypto {
namespace {

Bytes B(const std::string& s) { return BytesFromString(s); }
Bytes H(const std::string& hex) { return FromHex(hex).value(); }

TEST(HmacSha1Test, Rfc2202Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(ToHex(HmacSha1(key, B("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1Test, Rfc2202Case2) {
  EXPECT_EQ(ToHex(HmacSha1(B("Jefe"), B("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1Test, Rfc2202Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(ToHex(HmacSha1(key, data)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1Test, Rfc2202Case6LongKey) {
  Bytes key(80, 0xaa);
  EXPECT_EQ(ToHex(HmacSha1(key, B("Test Using Larger Than Block-Size Key - "
                                  "Hash Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacSha1Test, VerifyAcceptsCorrectTag) {
  Bytes key = B("secret");
  Bytes msg = B("message");
  Bytes mac = HmacSha1(key, msg);
  EXPECT_TRUE(HmacSha1Verify(key, msg, mac));
}

TEST(HmacSha1Test, VerifyRejectsTamperedMessage) {
  Bytes key = B("secret");
  Bytes mac = HmacSha1(key, B("message"));
  EXPECT_FALSE(HmacSha1Verify(key, B("Message"), mac));
}

TEST(HmacSha1Test, VerifyRejectsTamperedTag) {
  Bytes key = B("secret");
  Bytes msg = B("message");
  Bytes mac = HmacSha1(key, msg);
  mac[0] ^= 0x01;
  EXPECT_FALSE(HmacSha1Verify(key, msg, mac));
}

TEST(HmacSha1Test, VerifyRejectsWrongKey) {
  Bytes mac = HmacSha1(B("secret"), B("message"));
  EXPECT_FALSE(HmacSha1Verify(B("Secret"), B("message"), mac));
}

TEST(HmacSha1Test, VerifyRejectsTruncatedTag) {
  Bytes key = B("secret");
  Bytes msg = B("message");
  Bytes mac = HmacSha1(key, msg);
  mac.pop_back();
  EXPECT_FALSE(HmacSha1Verify(key, msg, mac));
}

TEST(HmacSha256Test, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(ToHex(HmacSha256(key, B("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  EXPECT_EQ(ToHex(HmacSha256(B("Jefe"), B("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(ToHex(HmacSha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, EmptyMessageStillAuthenticates) {
  Bytes key = B("k");
  Bytes mac = HmacSha1(key, {});
  EXPECT_EQ(mac.size(), 20u);
  EXPECT_TRUE(HmacSha1Verify(key, {}, mac));
}

TEST(ConstantTimeEqualsTest, Basics) {
  EXPECT_TRUE(ConstantTimeEquals(H("deadbeef"), H("deadbeef")));
  EXPECT_FALSE(ConstantTimeEquals(H("deadbeef"), H("deadbeee")));
  EXPECT_FALSE(ConstantTimeEquals(H("dead"), H("deadbeef")));
  EXPECT_TRUE(ConstantTimeEquals({}, {}));
}

}  // namespace
}  // namespace secureblox::crypto
