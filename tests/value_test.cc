// Value semantics: equality, ordering, hashing across kinds.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "datalog/value.h"

namespace secureblox::datalog {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_EQ(Value::Bool(true).kind(), ValueKind::kBool);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_FALSE(Value::Bool(false).AsBool());
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_EQ(Value::Str("x").AsString(), "x");
  EXPECT_EQ(Value::MakeBlob({1, 2}).AsBlob(), Bytes({1, 2}));
  Value e = Value::Entity(3, 42);
  EXPECT_TRUE(e.is_entity());
  EXPECT_EQ(e.entity_type(), 3);
  EXPECT_EQ(e.entity_id(), 42);
}

TEST(ValueTest, EqualityRespectsKind) {
  // Same payload, different kind: never equal.
  EXPECT_NE(Value::Int(1), Value::Bool(true));
  EXPECT_NE(Value::Str("ab"), Value::MakeBlob({'a', 'b'}));
  EXPECT_NE(Value::Entity(0, 1), Value::Int(1));
  EXPECT_EQ(Value::Int(5), Value::Int(5));
  EXPECT_NE(Value::Entity(0, 1), Value::Entity(1, 1));
  EXPECT_NE(Value::Entity(0, 1), Value::Entity(0, 2));
}

TEST(ValueTest, TotalOrder) {
  std::set<Value> values = {Value::Int(2), Value::Int(1), Value::Str("b"),
                            Value::Str("a"), Value::Bool(false),
                            Value::Entity(0, 5), Value::Entity(0, 3)};
  EXPECT_EQ(values.size(), 7u);
  // Within a kind, payload order.
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
  EXPECT_LT(Value::Entity(0, 3), Value::Entity(0, 5));
  EXPECT_LT(Value::Entity(0, 9), Value::Entity(1, 0));
  // Irreflexive.
  EXPECT_FALSE(Value::Int(1) < Value::Int(1));
}

TEST(ValueTest, HashingDistinguishesKinds) {
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value::Int(1));
  set.insert(Value::Bool(true));
  set.insert(Value::Str("1"));
  set.insert(Value::Entity(0, 1));
  EXPECT_EQ(set.size(), 4u);
  set.insert(Value::Int(1));  // duplicate
  EXPECT_EQ(set.size(), 4u);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Str("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::MakeBlob({0xDE, 0xAD}).ToString(), "0xdead");
  EXPECT_EQ(Value::Entity(2, 9).ToString(), "e2#9");
}

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_EQ(v.kind(), ValueKind::kInt);
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, BlobRefAvoidsCopy) {
  Value b = Value::MakeBlob({1, 2, 3});
  EXPECT_EQ(b.BlobRef().size(), 3u);
  EXPECT_EQ(ValueKindName(b.kind()), std::string("blob"));
}

}  // namespace
}  // namespace secureblox::datalog
