// Tokenizer: arrow family disambiguation, quoting, varargs, comments,
// error positions.
#include <gtest/gtest.h>

#include "datalog/lexer.h"

namespace secureblox::datalog {
namespace {

std::vector<TokenKind> Kinds(const std::string& src) {
  auto toks = Tokenize(src).value();
  std::vector<TokenKind> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, SimpleRule) {
  auto kinds = Kinds("reachable(X,Y) <- link(X,Y).");
  std::vector<TokenKind> expect = {
      TokenKind::kIdent,  TokenKind::kLParen, TokenKind::kVariable,
      TokenKind::kComma,  TokenKind::kVariable, TokenKind::kRParen,
      TokenKind::kArrowRule, TokenKind::kIdent, TokenKind::kLParen,
      TokenKind::kVariable, TokenKind::kComma, TokenKind::kVariable,
      TokenKind::kRParen, TokenKind::kDot, TokenKind::kEof};
  EXPECT_EQ(kinds, expect);
}

TEST(LexerTest, ArrowFamilyLongestMatch) {
  EXPECT_EQ(Kinds("<--")[0], TokenKind::kArrowGenericRule);
  EXPECT_EQ(Kinds("<-")[0], TokenKind::kArrowRule);
  EXPECT_EQ(Kinds("-->")[0], TokenKind::kArrowGenericConstraint);
  EXPECT_EQ(Kinds("->")[0], TokenKind::kArrowConstraint);
  EXPECT_EQ(Kinds("<<")[0], TokenKind::kAggOpen);
  EXPECT_EQ(Kinds(">>")[0], TokenKind::kAggClose);
  EXPECT_EQ(Kinds("<=")[0], TokenKind::kLe);
  EXPECT_EQ(Kinds(">=")[0], TokenKind::kGe);
  EXPECT_EQ(Kinds("<")[0], TokenKind::kLt);
  EXPECT_EQ(Kinds(">")[0], TokenKind::kGt);
  EXPECT_EQ(Kinds("-")[0], TokenKind::kMinus);
  EXPECT_EQ(Kinds("!=")[0], TokenKind::kNe);
  EXPECT_EQ(Kinds("!")[0], TokenKind::kBang);
}

TEST(LexerTest, QuotedPredicateAndTemplate) {
  auto toks = Tokenize("says[`reachable] `{ T(V*) }").value();
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[1].kind, TokenKind::kLBracket);
  EXPECT_EQ(toks[2].kind, TokenKind::kQuotedIdent);
  EXPECT_EQ(toks[2].text, "reachable");
  EXPECT_EQ(toks[3].kind, TokenKind::kRBracket);
  EXPECT_EQ(toks[4].kind, TokenKind::kTemplateOpen);
  EXPECT_EQ(toks[5].kind, TokenKind::kVariable);  // T
  EXPECT_EQ(toks[6].kind, TokenKind::kLParen);
  EXPECT_EQ(toks[7].kind, TokenKind::kVararg);
  EXPECT_EQ(toks[7].text, "V");
  EXPECT_EQ(toks[8].kind, TokenKind::kRParen);
  EXPECT_EQ(toks[9].kind, TokenKind::kRBrace);
}

TEST(LexerTest, VarargRequiresAdjacentStar) {
  // `V *` with a space is variable then star (multiplication).
  auto toks = Tokenize("V * 2").value();
  EXPECT_EQ(toks[0].kind, TokenKind::kVariable);
  EXPECT_EQ(toks[1].kind, TokenKind::kStar);
  EXPECT_EQ(toks[2].kind, TokenKind::kInt);
}

TEST(LexerTest, VariablesVsIdentifiers) {
  auto toks = Tokenize("link Photo _x X1 p2p").value();
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[1].kind, TokenKind::kVariable);
  EXPECT_EQ(toks[2].kind, TokenKind::kVariable);  // _x
  EXPECT_EQ(toks[3].kind, TokenKind::kVariable);  // X1
  EXPECT_EQ(toks[4].kind, TokenKind::kIdent);
}

TEST(LexerTest, StringsWithEscapes) {
  auto toks = Tokenize(R"("hello \"world\"\n")").value();
  EXPECT_EQ(toks[0].kind, TokenKind::kString);
  EXPECT_EQ(toks[0].text, "hello \"world\"\n");
}

TEST(LexerTest, Comments) {
  auto toks = Tokenize(
      "a // line comment <- with arrow\n"
      "/* block\n comment */ b").value();
  EXPECT_EQ(toks.size(), 3u);  // a, b, EOF
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(LexerTest, IntegerLiterals) {
  auto toks = Tokenize("0 42 123456789").value();
  EXPECT_EQ(toks[0].int_value, 0);
  EXPECT_EQ(toks[1].int_value, 42);
  EXPECT_EQ(toks[2].int_value, 123456789);
}

TEST(LexerTest, LocationTracking) {
  auto toks = Tokenize("a\n  b").value();
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[0].loc.col, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[1].loc.col, 3);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("/* unterminated").ok());
  EXPECT_FALSE(Tokenize("@").ok());
  EXPECT_FALSE(Tokenize("` ").ok());
  EXPECT_FALSE(Tokenize("99999999999999999999999").ok());
}

TEST(LexerTest, DollarInGeneratedNames) {
  // Generated predicates use $ in names (says$reachable).
  auto toks = Tokenize("says$reachable(X)").value();
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[0].text, "says$reachable");
}

}  // namespace
}  // namespace secureblox::datalog
