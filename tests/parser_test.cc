// Parser: rule/constraint/fact shapes, functional atoms, parameterized
// atoms, generics syntax, desugaring, and error reporting.
#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace secureblox::datalog {
namespace {

Program P(const std::string& src) {
  auto r = Parse(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : Program{};
}

TEST(ParserTest, TransitiveClosure) {
  Program p = P(
      "reachable(X,Y) <- link(X,Y).\n"
      "reachable(X,Y) <- link(X,Z), reachable(Z,Y).\n");
  ASSERT_EQ(p.rules.size(), 2u);
  EXPECT_EQ(p.rules[0].heads[0].pred.name, "reachable");
  EXPECT_EQ(p.rules[1].body.size(), 2u);
  EXPECT_EQ(p.rules[1].body[1].atom.pred.name, "reachable");
}

TEST(ParserTest, TypeDeclConstraint) {
  Program p = P("link(X,Y) -> node(X), node(Y).");
  ASSERT_EQ(p.constraints.size(), 1u);
  EXPECT_EQ(p.constraints[0].lhs.size(), 1u);
  EXPECT_EQ(p.constraints[0].rhs.size(), 2u);
}

TEST(ParserTest, EntityTypeDecl) {
  Program p = P("pathvar(P) -> .");
  ASSERT_EQ(p.constraints.size(), 1u);
  EXPECT_TRUE(p.constraints[0].rhs.empty());
}

TEST(ParserTest, FunctionalAtomForms) {
  Program p = P(
      "path[P,Src,Dst] = C -> pathvar(P), node(Src), node(Dst), int(C).\n"
      "bestcost[Me,N] = C <- agg<< C = min(Cx) >> path[Q,Me,N] = Cx.\n"
      "self[] = P -> principal(P).\n");
  ASSERT_EQ(p.constraints.size(), 2u);
  const Atom& decl = p.constraints[0].lhs[0].atom;
  EXPECT_TRUE(decl.functional);
  EXPECT_EQ(decl.arity(), 4u);
  ASSERT_EQ(p.rules.size(), 1u);
  ASSERT_TRUE(p.rules[0].agg.has_value());
  EXPECT_EQ(p.rules[0].agg->func, AggFunc::kMin);
  EXPECT_EQ(p.rules[0].agg->result_var, "C");
  EXPECT_EQ(p.rules[0].agg->input_var, "Cx");
  const Atom& singleton = p.constraints[1].lhs[0].atom;
  EXPECT_TRUE(singleton.functional);
  EXPECT_EQ(singleton.arity(), 1u);
}

TEST(ParserTest, Facts) {
  Program p = P(
      "link(\"a\", \"b\").\n"
      "cost(3).\n"
      "flag(true).\n");
  ASSERT_EQ(p.rules.size(), 3u);
  for (const auto& r : p.rules) EXPECT_TRUE(r.IsFact());
  EXPECT_EQ(p.rules[0].heads[0].args[0]->constant.AsString(), "a");
  EXPECT_EQ(p.rules[1].heads[0].args[0]->constant.AsInt(), 3);
  EXPECT_TRUE(p.rules[2].heads[0].args[0]->constant.AsBool());
}

TEST(ParserTest, MetaFactVsObjectFact) {
  Program p = P(
      "exportable(`path).\n"
      "trusted(\"CA\").\n");
  ASSERT_EQ(p.meta_facts.size(), 1u);
  EXPECT_EQ(p.meta_facts[0].pred.name, "exportable");
  EXPECT_EQ(p.meta_facts[0].args[0]->kind, TermKind::kQuotedPred);
  EXPECT_EQ(p.meta_facts[0].args[0]->name, "path");
  ASSERT_EQ(p.rules.size(), 1u);
}

TEST(ParserTest, ParameterizedAtomQuoted) {
  Program p = P("reachable(X,Y) <- says[`reachable](Z, S, Z, Y), link(X,Z).");
  const Atom& a = p.rules[0].body[0].atom;
  EXPECT_EQ(a.pred.name, "says");
  ASSERT_TRUE(a.pred.parameterized());
  EXPECT_EQ(a.pred.param->kind, TermKind::kQuotedPred);
  EXPECT_EQ(a.pred.param->name, "reachable");
  EXPECT_EQ(a.arity(), 4u);
}

TEST(ParserTest, SingletonSugarInArgs) {
  Program p = P("r(X) <- says[`r](Z, self[], X).");
  // Sugar adds `self[] = _sgl0` to the body.
  ASSERT_EQ(p.rules[0].body.size(), 2u);
  const Atom& says = p.rules[0].body[0].atom;
  EXPECT_EQ(says.args[1]->kind, TermKind::kVar);
  const Atom& lookup = p.rules[0].body[1].atom;
  EXPECT_EQ(lookup.pred.name, "self");
  EXPECT_TRUE(lookup.functional);
  EXPECT_EQ(lookup.args[0]->name, says.args[1]->name);
}

TEST(ParserTest, ArithmeticDesugarInHead) {
  Program p = P("cost(C + 1) <- base(C).");
  // Head arg replaced by fresh var; body gains `_arithN = C + 1`.
  const Rule& r = p.rules[0];
  EXPECT_EQ(r.heads[0].args[0]->kind, TermKind::kVar);
  ASSERT_EQ(r.body.size(), 2u);
  EXPECT_EQ(r.body[1].kind, Literal::Kind::kCompare);
  EXPECT_EQ(r.body[1].cmp.rhs->kind, TermKind::kArith);
}

TEST(ParserTest, ComparisonsAndNegation) {
  Program p = P("q(X) <- p(X, Y), X != Y, !r(X), Y >= 3.");
  const Rule& r = p.rules[0];
  ASSERT_EQ(r.body.size(), 4u);
  EXPECT_EQ(r.body[1].cmp.op, CmpOp::kNe);
  EXPECT_TRUE(r.body[2].atom.negated);
  EXPECT_EQ(r.body[3].cmp.op, CmpOp::kGe);
}

TEST(ParserTest, NegatedFunctionalWildcard) {
  Program p = P("q(X) <- p(X), !pathlink[P, X] = _.");
  const Atom& neg = p.rules[0].body[1].atom;
  EXPECT_TRUE(neg.negated);
  EXPECT_TRUE(neg.functional);
  // `_` renamed to a fresh anonymous variable.
  EXPECT_NE(neg.args[2]->name, "_");
  EXPECT_EQ(neg.args[2]->name.rfind("_anon", 0), 0u);
}

TEST(ParserTest, MultiHeadRule) {
  Program p = P(
      "pathvar(P), path[P, S, U] = 1, pathlink[P, Me] = N <- link(Me, N), "
      "principal_node[S] = Me, principal_node[U] = N.");
  const Rule& r = p.rules[0];
  ASSERT_EQ(r.heads.size(), 3u);
  EXPECT_EQ(r.heads[0].pred.name, "pathvar");
  EXPECT_TRUE(r.heads[1].functional);
  EXPECT_EQ(r.heads[1].arity(), 4u);
}

TEST(ParserTest, GenericRuleWithTemplate) {
  Program p = P(
      "says[T] = ST, predicate(ST),\n"
      "`{\n"
      "  ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*).\n"
      "}\n"
      "<-- predicate(T), exportable(T).\n");
  ASSERT_EQ(p.generic_rules.size(), 1u);
  const GenericRule& gr = p.generic_rules[0];
  ASSERT_EQ(gr.head_atoms.size(), 2u);
  EXPECT_EQ(gr.head_atoms[0].pred.name, "says");
  EXPECT_TRUE(gr.head_atoms[0].functional);
  ASSERT_EQ(gr.templates.size(), 1u);
  ASSERT_EQ(gr.templates[0].constraints.size(), 1u);
  const ConstraintDecl& tc = gr.templates[0].constraints[0];
  const Atom& st = tc.lhs[0].atom;
  EXPECT_TRUE(st.pred.name_is_metavar);
  EXPECT_EQ(st.pred.name, "ST");
  EXPECT_TRUE(st.HasVararg());
  const Atom& types = tc.rhs[2].atom;
  EXPECT_EQ(types.pred.name, "types");
  ASSERT_TRUE(types.pred.parameterized());
  EXPECT_EQ(types.pred.param->kind, TermKind::kVar);
  ASSERT_EQ(gr.body.size(), 2u);
}

TEST(ParserTest, GenericRuleWithTemplateRule) {
  Program p = P(
      "`{ T(V*) <- says[T](P, self[], V*), trustworthy(P). }\n"
      "<-- predicate(T).\n");
  ASSERT_EQ(p.generic_rules.size(), 1u);
  const GenericRule& gr = p.generic_rules[0];
  EXPECT_TRUE(gr.head_atoms.empty());
  ASSERT_EQ(gr.templates.size(), 1u);
  ASSERT_EQ(gr.templates[0].rules.size(), 1u);
  const Rule& tr = gr.templates[0].rules[0];
  EXPECT_TRUE(tr.heads[0].pred.name_is_metavar);
  // says[T] parameterized by metavariable.
  const Atom& says = tr.body[0].atom;
  EXPECT_EQ(says.pred.name, "says");
  ASSERT_TRUE(says.pred.parameterized());
  EXPECT_EQ(says.pred.param->kind, TermKind::kVar);
  EXPECT_EQ(says.pred.param->name, "T");
  // self[] sugar expanded inside the template rule body.
  EXPECT_EQ(tr.body.size(), 3u);
}

TEST(ParserTest, GenericConstraint) {
  Program p = P("says(T, ST) --> exportable(T).");
  ASSERT_EQ(p.generic_constraints.size(), 1u);
  EXPECT_EQ(p.generic_constraints[0].lhs[0].atom.pred.name, "says");
  EXPECT_EQ(p.generic_constraints[0].rhs[0].atom.pred.name, "exportable");
}

TEST(ParserTest, ConstraintWithBuiltinRhs) {
  Program p = P(
      "says_r(P, S, X, Sig) -> sig_r(P, S, X, Sig), public_key(P, K), "
      "rsa_verify(K, X, Sig).");
  ASSERT_EQ(p.constraints.size(), 1u);
  EXPECT_EQ(p.constraints[0].rhs.size(), 3u);
}

TEST(ParserTest, RoundTripToString) {
  const std::string src = "reachable(X,Y) <- link(X,Z), reachable(Z,Y).";
  Program p1 = P(src);
  // Reparse the printed form; structure must survive.
  Program p2 = P(p1.ToString());
  ASSERT_EQ(p2.rules.size(), 1u);
  EXPECT_EQ(p2.rules[0].body.size(), 2u);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("p(X) <- ").ok());                 // missing body
  EXPECT_FALSE(Parse("p(X)").ok());                     // missing dot
  EXPECT_FALSE(Parse("p(X) <- q(X)").ok());             // missing dot
  EXPECT_FALSE(Parse("<- q(X).").ok());                 // missing head
  EXPECT_FALSE(Parse("p(X) <- q(X,).").ok());           // trailing comma
  EXPECT_FALSE(Parse("!p(X) <- q(X).").ok());           // negated head
  EXPECT_FALSE(Parse("p(X) <- q(lower).").ok());        // ident as term
  EXPECT_FALSE(Parse("`{ p(X). } <- q(X).").ok());      // template on <-
  EXPECT_FALSE(Parse("p(self[]).").ok());               // sugar in fact
  EXPECT_FALSE(Parse("agg(X) <- p(X), q(Y) < r(Z).").ok());
}

TEST(ParserTest, ErrorMessagesCarryLocation) {
  auto r = Parse("p(X) <-\nq(lower).", "myunit");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("myunit:2"), std::string::npos)
      << r.status().message();
}

TEST(ParserTest, TemplateCannotNest) {
  EXPECT_FALSE(Parse("`{ `{ p(X). } } <-- predicate(T).").ok());
}

TEST(ParserTest, ProgramMerge) {
  Program a = P("p(1).");
  Program b = P("q(2).");
  a.Merge(std::move(b));
  EXPECT_EQ(a.rules.size(), 2u);
}

}  // namespace
}  // namespace secureblox::datalog
