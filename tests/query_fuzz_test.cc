// Differential fuzz for the query front end (engine/query): seeded
// randomized Datalog programs — random positive (possibly recursive) rule
// bodies over a shared entity domain — evaluated two ways, magic-sets
// query slices vs the materialized fixpoint, for every derivable goal
// shape, before and after randomized insert/delete churn. Any divergence
// is a soundness or completeness bug in the rewrite, the demand seeding,
// or the inherited delete-delta invalidation.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "engine/query.h"
#include "engine/workspace.h"

namespace secureblox::engine {
namespace {

using datalog::Value;

void Install(Workspace* ws, const std::string& src) {
  auto program = datalog::Parse(src);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Status st = ws->Install(program.value());
  ASSERT_TRUE(st.ok()) << st.ToString();
}

std::set<std::string> Render(const std::vector<Tuple>& tuples,
                             const Workspace& ws) {
  std::set<std::string> out;
  for (const Tuple& t : tuples) out.insert(TupleToString(t, ws.catalog()));
  return out;
}

// Reference answers from the fully materialized workspace: scan, filter on
// bound positions with labels resolved exactly like QueryEngine::Resolve.
std::set<std::string> ExpectedSet(
    Workspace& ws, const std::string& pred,
    const std::vector<std::optional<Value>>& args) {
  auto pid = ws.catalog().Lookup(pred);
  EXPECT_TRUE(pid.ok());
  const datalog::PredicateDecl& decl = ws.catalog().decl(pid.value());
  std::vector<std::optional<Value>> bound(args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    if (!args[i].has_value()) continue;
    const datalog::PredicateDecl& t = ws.catalog().decl(decl.arg_types[i]);
    if (t.is_entity_type && args[i]->kind() == datalog::ValueKind::kString) {
      auto e = ws.catalog().FindEntity(decl.arg_types[i], args[i]->AsString());
      if (!e.ok()) return {};  // unknown label: no answers
      bound[i] = e.value();
    } else {
      bound[i] = *args[i];
    }
  }
  auto rows = ws.Query(pred);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  std::set<std::string> out;
  for (const Tuple& t : rows.value()) {
    bool match = true;
    for (size_t i = 0; i < t.size() && match; ++i) {
      if (bound[i].has_value() && !(t[i] == *bound[i])) match = false;
    }
    if (match) out.insert(TupleToString(t, ws.catalog()));
  }
  return out;
}

constexpr int kNumEdb = 3;
constexpr int kNumIdb = 4;
constexpr int kNumLabels = 8;
constexpr int kNumVars = 4;

std::string Edb(int k) { return "e" + std::to_string(k); }
std::string Idb(int k) { return "i" + std::to_string(k); }
std::string LabelOf(int k) { return "n" + std::to_string(k); }
std::string VarOf(int k) { return "V" + std::to_string(k); }

// One random program: fixed schema (all binary over one entity domain),
// randomized rule set. Bodies are positive atoms over EDBs and IDBs up to
// and including the head's own index (so recursion happens, but the
// program stays stratified); all atom arguments are variables, and head
// variables are drawn from the body so every rule is range-restricted and
// typechecks by construction.
std::string RandomProgram(std::mt19937* rng) {
  std::string src = "node(X) -> .\n";
  for (int k = 0; k < kNumEdb; ++k) {
    src += Edb(k) + "(X, Y) -> node(X), node(Y).\n";
  }
  for (int k = 0; k < kNumIdb; ++k) {
    src += Idb(k) + "(X, Y) -> node(X), node(Y).\n";
  }
  auto pick = [&](int n) { return static_cast<int>((*rng)() % n); };
  for (int k = 0; k < kNumIdb; ++k) {
    const int num_rules = 1 + pick(2);
    for (int r = 0; r < num_rules; ++r) {
      const int body_len = 1 + pick(3);
      std::string body;
      std::set<int> body_vars;
      for (int b = 0; b < body_len; ++b) {
        // Producers: any EDB, or an IDB at most this head's index.
        std::string pred;
        const int choice = pick(kNumEdb + k + 1);
        pred = choice < kNumEdb ? Edb(choice) : Idb(choice - kNumEdb);
        const int v0 = pick(kNumVars);
        const int v1 = pick(kNumVars);
        body_vars.insert(v0);
        body_vars.insert(v1);
        if (!body.empty()) body += ", ";
        body += pred + "(" + VarOf(v0) + ", " + VarOf(v1) + ")";
      }
      std::vector<int> vars(body_vars.begin(), body_vars.end());
      const int h0 = vars[pick(static_cast<int>(vars.size()))];
      const int h1 = vars[pick(static_cast<int>(vars.size()))];
      src += Idb(k) + "(" + VarOf(h0) + ", " + VarOf(h1) + ") <- " + body +
             ".\n";
    }
  }
  return src;
}

std::vector<FactUpdate> RandomFacts(std::mt19937* rng, int count) {
  std::vector<FactUpdate> out;
  auto pick = [&](int n) { return static_cast<int>((*rng)() % n); };
  for (int i = 0; i < count; ++i) {
    out.push_back({Edb(pick(kNumEdb)),
                   {Value::Str(LabelOf(pick(kNumLabels))),
                    Value::Str(LabelOf(pick(kNumLabels)))}});
  }
  return out;
}

// Compare the query path against the materialized reference on every goal
// shape for every predicate: all-free, first-bound, second-bound, and
// fully bound, with both present and absent labels.
void CheckAllGoals(std::mt19937* rng, Workspace& mat, QueryEngine* qe,
                   Workspace& qws, const std::string& where) {
  auto pick = [&](int n) { return static_cast<int>((*rng)() % n); };
  std::vector<std::string> preds;
  for (int k = 0; k < kNumEdb; ++k) preds.push_back(Edb(k));
  for (int k = 0; k < kNumIdb; ++k) preds.push_back(Idb(k));
  for (const std::string& pred : preds) {
    std::vector<std::vector<std::optional<Value>>> shapes;
    shapes.push_back({std::nullopt, std::nullopt});
    // Random labels, occasionally outside the inserted domain.
    const Value a = Value::Str(LabelOf(pick(kNumLabels + 2)));
    const Value b = Value::Str(LabelOf(pick(kNumLabels + 2)));
    shapes.push_back({a, std::nullopt});
    shapes.push_back({std::nullopt, b});
    shapes.push_back({a, b});
    for (const auto& args : shapes) {
      auto rows = qe->Query({pred, args});
      ASSERT_TRUE(rows.ok()) << where << " " << pred << ": "
                             << rows.status().ToString();
      EXPECT_EQ(Render(rows.value(), qws), ExpectedSet(mat, pred, args))
          << where << " " << pred;
    }
  }
}

// Base facts tracked as "pred a b" keys so deletes are always unique and
// always live (both workspaces see identical update sequences, so their
// interned entity IDs need never be compared across catalogs).
std::string KeyOf(const FactUpdate& f) {
  return f.pred + " " + f.values[0].AsString() + " " + f.values[1].AsString();
}

std::vector<FactUpdate> FromKeys(const std::set<std::string>& keys) {
  std::vector<FactUpdate> out;
  for (const std::string& k : keys) {
    const size_t s1 = k.find(' ');
    const size_t s2 = k.find(' ', s1 + 1);
    out.push_back({k.substr(0, s1),
                   {Value::Str(k.substr(s1 + 1, s2 - s1 - 1)),
                    Value::Str(k.substr(s2 + 1))}});
  }
  return out;
}

TEST(QueryFuzzTest, RandomProgramsAgreeWithFixpointUnderChurn) {
  // 80 seeds keep the sweep under a second in release builds while still
  // covering a wide mix of rule shapes; seed 9 is the one that exposed
  // the within-atom repeated-variable miscompilation (i0(V0, V0) bodies).
  for (uint32_t seed = 1; seed <= 80; ++seed) {
    std::mt19937 rng(seed * 2654435761u);
    const std::string program = RandomProgram(&rng);
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + program);

    Workspace mat;
    Install(&mat, program);
    Workspace qws;
    qws.set_defer_rules(true);
    Install(&qws, program);
    QueryEngine qe(&qws);

    std::set<std::string> live;
    const std::vector<FactUpdate> base = RandomFacts(&rng, 10 + (rng() % 6));
    for (const FactUpdate& f : base) live.insert(KeyOf(f));
    ASSERT_TRUE(mat.Apply(base).ok());
    ASSERT_TRUE(qws.Apply(base).ok());

    CheckAllGoals(&rng, mat, &qe, qws, "pre-churn");

    // Churn: delete a random subset of the live base facts and add new
    // ones — identically on both sides. The query side's installed
    // slices must be maintained by the inherited delete-delta machinery.
    std::set<std::string> doomed;
    for (const std::string& k : live) {
      if (rng() % 3 == 0) doomed.insert(k);
    }
    const std::vector<FactUpdate> adds = RandomFacts(&rng, 4);
    for (const std::string& k : doomed) live.erase(k);
    std::vector<FactUpdate> kept_adds;
    for (const FactUpdate& f : adds) {
      // An add resurrecting a fact doomed in the same batch would make
      // the final state order-dependent; keep churn unambiguous.
      if (doomed.count(KeyOf(f))) continue;
      live.insert(KeyOf(f));
      kept_adds.push_back(f);
    }
    ASSERT_TRUE(mat.Apply(kept_adds, FromKeys(doomed)).ok());
    ASSERT_TRUE(qws.Apply(kept_adds, FromKeys(doomed)).ok());

    CheckAllGoals(&rng, mat, &qe, qws, "post-churn");

    // Second churn round: everything out, a fresh small base in — the
    // emptied-relation edge of the estimate and memo paths.
    const std::vector<FactUpdate> all_out = FromKeys(live);
    std::vector<FactUpdate> fresh;
    for (const FactUpdate& f : RandomFacts(&rng, 5)) {
      if (live.count(KeyOf(f))) continue;
      fresh.push_back(f);
    }
    ASSERT_TRUE(mat.Apply(fresh, all_out).ok());
    ASSERT_TRUE(qws.Apply(fresh, all_out).ok());

    CheckAllGoals(&rng, mat, &qe, qws, "post-empty-refill");
  }
}

}  // namespace
}  // namespace secureblox::engine
