// Distributed integration: multi-node secure transitive closure on the
// simulated cluster under every security scheme, message tamper rejection,
// and runtime plumbing (node labels, sealing).
#include <gtest/gtest.h>

#include <set>

#include "dist/cluster.h"
#include "dist/runtime.h"
#include "policy/says_policy.h"

namespace secureblox::dist {
namespace {

using datalog::Value;
using engine::FactUpdate;
using policy::AuthScheme;
using policy::EncScheme;

// Flood-style distributed transitive closure: every node advertises its
// reachable facts to its neighbours via says (paper §3.1 example).
const char* kReachableApp = R"(
link(X, Y) -> principal(X), principal(Y).
reachable(X, Y) -> principal(X), principal(Y).
reachable(X, Y) <- link(X, Y).
reachable(X, Y) <- reachable(X, Z), reachable(Z, Y).
says[`reachable](S, U, X, Y) <- reachable(X, Y), link(S, U), self[] = S.
exportable(`reachable).
)";

std::vector<std::string> Sources(AuthScheme auth, EncScheme enc) {
  policy::SaysPolicyOptions opts;
  opts.auth = auth;
  opts.enc = enc;
  opts.accept = policy::AcceptMode::kBenign;
  return {policy::PreludeSource(), kReachableApp,
          policy::SaysPolicySource(opts)};
}

SimCluster::Config LineClusterConfig(size_t n, AuthScheme auth,
                                     EncScheme enc) {
  SimCluster::Config cfg;
  cfg.num_nodes = n;
  cfg.sources = Sources(auth, enc);
  cfg.batch_security.auth = auth;
  cfg.batch_security.enc = enc;
  cfg.credentials.rsa_bits = 512;  // fast for tests; benches use 1024
  cfg.credentials.seed = "dist-test";
  return cfg;
}

// Insert a directed line graph p0 -> p1 -> ... -> p(n-1).
void ScheduleLineLinks(SimCluster* cluster, size_t n) {
  for (size_t i = 0; i + 1 < n; ++i) {
    cluster->ScheduleInsert(
        static_cast<net::NodeIndex>(i),
        {{"link",
          {Value::Str("p" + std::to_string(i)),
           Value::Str("p" + std::to_string(i + 1))}}});
  }
}

std::set<std::string> ReachableAt(SimCluster& cluster, net::NodeIndex n) {
  std::set<std::string> out;
  auto rows = cluster.node(n).workspace().Query("reachable").value();
  const auto& catalog = cluster.node(n).workspace().catalog();
  for (const auto& t : rows) {
    out.insert(catalog.ValueToString(t[0]) + "->" +
               catalog.ValueToString(t[1]));
  }
  return out;
}

class DistSchemeTest
    : public ::testing::TestWithParam<std::pair<AuthScheme, EncScheme>> {};

TEST_P(DistSchemeTest, LineGraphClosureConverges) {
  auto [auth, enc] = GetParam();
  constexpr size_t kN = 4;
  auto cluster = SimCluster::Create(LineClusterConfig(kN, auth, enc));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ScheduleLineLinks(cluster->get(), kN);
  auto metrics = (*cluster)->Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->rejected_batches, 0u);
  EXPECT_GT(metrics->fixpoint_latency_s, 0.0);

  // Advertisements flow along directed links, so node i accumulates the
  // closure over the prefix p0..p(i+1): sizes 1, 3, 6 and the last node
  // mirrors its predecessor (it has no outgoing links of its own).
  auto at_last = ReachableAt(**cluster, kN - 1);
  EXPECT_TRUE(at_last.count("principal:p0->principal:p3"))
      << "missing p0->p3";
  EXPECT_EQ(ReachableAt(**cluster, 0).size(), 1u);
  EXPECT_EQ(ReachableAt(**cluster, 1).size(), 3u);
  EXPECT_EQ(ReachableAt(**cluster, 2).size(), kN * (kN - 1) / 2);
  EXPECT_EQ(at_last.size(), kN * (kN - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, DistSchemeTest,
    ::testing::Values(
        std::make_pair(AuthScheme::kNone, EncScheme::kNone),
        std::make_pair(AuthScheme::kHmac, EncScheme::kNone),
        std::make_pair(AuthScheme::kRsa, EncScheme::kNone),
        std::make_pair(AuthScheme::kNone, EncScheme::kAes),
        std::make_pair(AuthScheme::kHmac, EncScheme::kAes),
        std::make_pair(AuthScheme::kRsa, EncScheme::kAes)),
    [](const auto& info) {
      BatchSecurity s;
      s.auth = info.param.first;
      s.enc = info.param.second;
      std::string name = s.Name();
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(DistTest, SecuritySchemesChangeMessageSizes) {
  // NoAuth < HMAC (+20B MAC) < RSA (+64B sig at 512 bits) per message.
  std::map<std::string, double> kb;
  for (auto auth :
       {AuthScheme::kNone, AuthScheme::kHmac, AuthScheme::kRsa}) {
    auto cluster =
        SimCluster::Create(LineClusterConfig(3, auth, EncScheme::kNone));
    ASSERT_TRUE(cluster.ok());
    ScheduleLineLinks(cluster->get(), 3);
    auto metrics = (*cluster)->Run();
    ASSERT_TRUE(metrics.ok());
    kb[policy::AuthSchemeName(auth)] = metrics->MeanPerNodeKb();
  }
  EXPECT_LT(kb["NoAuth"], kb["HMAC"]);
  EXPECT_LT(kb["HMAC"], kb["RSA"]);
}

TEST(DistTest, TamperedMessageIsRejected) {
  // Two hand-driven runtimes with HMAC batch security.
  std::vector<std::string> principals = {"alice", "bob"};
  policy::CredentialAuthority::Options copts;
  copts.rsa_bits = 512;
  copts.seed = "tamper-test";
  policy::CredentialAuthority authority(principals, copts);

  auto sources = Sources(AuthScheme::kHmac, EncScheme::kNone);
  std::vector<std::unique_ptr<NodeRuntime>> nodes;
  for (size_t i = 0; i < 2; ++i) {
    NodeRuntime::Config cfg;
    cfg.index = static_cast<net::NodeIndex>(i);
    cfg.principals = principals;
    cfg.creds = authority.IssueFor(principals[i]).value();
    cfg.batch_security = {AuthScheme::kHmac, EncScheme::kNone};
    auto node = NodeRuntime::Create(std::move(cfg), sources);
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    nodes.push_back(std::move(node).value());
  }

  // alice inserts a link to bob; the advertisement goes out.
  auto result = nodes[0]->InsertLocal(
      {{"link", {Value::Str("alice"), Value::Str("bob")}}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->accepted);
  ASSERT_FALSE(result->outgoing.empty());
  Bytes payload = result->outgoing[0].payload;

  // Pristine copy is accepted by bob.
  auto ok = nodes[1]->DeliverMessage(payload, 0);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->accepted);
  EXPECT_EQ(nodes[1]->workspace().Query("reachable").value().size(), 1u);

  // Every single-byte corruption of a fresh message must be rejected.
  auto result2 = nodes[0]->InsertLocal(
      {{"link", {Value::Str("alice"), Value::Str("alice")}}});
  ASSERT_TRUE(result2.ok());
  // self-link says to itself may not produce outgoing; reuse first payload
  // with flipped bytes instead.
  size_t rejected = 0;
  for (size_t i = 1; i < payload.size(); i += 13) {
    Bytes bad = payload;
    bad[i] ^= 0x01;
    auto r = nodes[1]->DeliverMessage(bad, 0);
    ASSERT_TRUE(r.ok());
    if (!r->accepted) ++rejected;
  }
  EXPECT_EQ(rejected, (payload.size() - 1 + 12) / 13);
  EXPECT_GT(nodes[1]->stats().batches_rejected_auth, 0u);
  // Workspace state unchanged by the tampered deliveries.
  EXPECT_EQ(nodes[1]->workspace().Query("reachable").value().size(), 1u);
}

TEST(DistTest, MessageFromImpersonatorRejected) {
  // A message sealed by node 0 claiming to be from node 1 fails RSA auth.
  std::vector<std::string> principals = {"alice", "bob", "carol"};
  policy::CredentialAuthority::Options copts;
  copts.rsa_bits = 512;
  copts.seed = "impersonation-test";
  copts.distinct_keypairs = 3;  // everyone distinct
  policy::CredentialAuthority authority(principals, copts);

  auto sources = Sources(AuthScheme::kRsa, EncScheme::kNone);
  std::vector<std::unique_ptr<NodeRuntime>> nodes;
  for (size_t i = 0; i < 3; ++i) {
    NodeRuntime::Config cfg;
    cfg.index = static_cast<net::NodeIndex>(i);
    cfg.principals = principals;
    cfg.creds = authority.IssueFor(principals[i]).value();
    cfg.batch_security = {AuthScheme::kRsa, EncScheme::kNone};
    nodes.push_back(NodeRuntime::Create(std::move(cfg), sources).value());
  }

  auto result = nodes[0]->InsertLocal(
      {{"link", {Value::Str("alice"), Value::Str("carol")}}});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->outgoing.empty());
  // carol verifies against bob's key if src is mislabeled -> rejected.
  auto r = nodes[2]->DeliverMessage(result->outgoing[0].payload, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->accepted);
  // Correct source accepted.
  auto r2 = nodes[2]->DeliverMessage(result->outgoing[0].payload, 0);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->accepted);
}

TEST(DistTest, NodeLabels) {
  EXPECT_EQ(NodeLabel(0), "n0");
  EXPECT_EQ(NodeLabel(17), "n17");
  EXPECT_EQ(ParseNodeLabel("n17").value(), 17u);
  EXPECT_FALSE(ParseNodeLabel("x2").ok());
  EXPECT_FALSE(ParseNodeLabel("n").ok());
  EXPECT_FALSE(ParseNodeLabel("n1x").ok());
}

TEST(DistTest, SealOpenRoundTripAllSchemes) {
  std::vector<std::string> principals = {"a", "b"};
  policy::CredentialAuthority::Options copts;
  copts.rsa_bits = 512;
  copts.seed = "seal-test";
  policy::CredentialAuthority authority(principals, copts);

  for (auto auth : {AuthScheme::kNone, AuthScheme::kHmac, AuthScheme::kRsa}) {
    for (auto enc : {EncScheme::kNone, EncScheme::kAes}) {
      auto sources = Sources(auth, enc);
      NodeRuntime::Config ca;
      ca.index = 0;
      ca.principals = principals;
      ca.creds = authority.IssueFor("a").value();
      ca.batch_security = {auth, enc};
      auto node_a = NodeRuntime::Create(std::move(ca), sources).value();
      NodeRuntime::Config cb;
      cb.index = 1;
      cb.principals = principals;
      cb.creds = authority.IssueFor("b").value();
      cb.batch_security = {auth, enc};
      auto node_b = NodeRuntime::Create(std::move(cb), sources).value();

      Bytes raw = BytesFromString("payload-for-roundtrip");
      Bytes sealed = node_a->SealForPeer(raw, 1).value();
      Bytes opened = node_b->OpenFromPeer(sealed, 0).value();
      EXPECT_EQ(opened, raw) << BatchSecurity{auth, enc}.Name();
      if (enc == EncScheme::kAes) {
        // Ciphertext must not contain the plaintext.
        std::string sealed_str(sealed.begin(), sealed.end());
        EXPECT_EQ(sealed_str.find("payload-for-roundtrip"),
                  std::string::npos);
      }
    }
  }
}

// Mixed insert+delete churn interleaving with batched deliveries: node 2
// churns local facts (marks driving a derived join over imported reachable
// facts, plus a purely-local link feeding the recursive closure) while
// deliveries stream in. The drained state must equal a churn-free run fed
// only the net facts — counting deletion and group-local DRed must not
// disturb derivations rooted in imported facts, at any batch granularity.
const char* kChurnApp = R"(
link(X, Y) -> principal(X), principal(Y).
reachable(X, Y) -> principal(X), principal(Y).
reachable(X, Y) <- link(X, Y).
reachable(X, Y) <- reachable(X, Z), reachable(Z, Y).
mark(X) -> principal(X).
flagged(X, Y) -> principal(X), principal(Y).
flagged(X, Y) <- reachable(X, Y), mark(X).
says[`reachable](S, U, X, Y) <- reachable(X, Y), link(S, U), self[] = S.
exportable(`reachable).
)";

std::string SortedDump(const engine::Workspace& ws) {
  const datalog::Catalog& catalog = ws.catalog();
  std::vector<std::string> lines;
  for (size_t p = 0; p < catalog.num_predicates(); ++p) {
    datalog::PredId id = static_cast<datalog::PredId>(p);
    const engine::Relation* rel = ws.GetRelationIfExists(id);
    if (rel == nullptr || rel->empty()) continue;
    for (const auto& t : rel->AllTuples()) {
      std::string line = catalog.decl(id).name + "(";
      for (size_t i = 0; i < t.size(); ++i) {
        if (i) line += ",";
        line += catalog.ValueToString(t[i]);
      }
      line += ")x" + std::to_string(rel->SupportCount(t));
      lines.push_back(std::move(line));
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) out += line + "\n";
  return out;
}

TEST(DistTest, BatchedDeliveriesInterleaveWithIncrementalDeletion) {
  policy::SaysPolicyOptions popts;
  popts.accept = policy::AcceptMode::kBenign;
  auto run = [&](bool churn, size_t granularity) -> std::string {
    SimCluster::Config cfg;
    cfg.num_nodes = 3;
    cfg.sources = {policy::PreludeSource(), kChurnApp,
                   policy::SaysPolicySource(popts)};
    cfg.credentials.rsa_bits = 512;
    cfg.credentials.seed = "churn-test";
    cfg.max_batch_tuples = granularity;
    auto cluster = SimCluster::Create(std::move(cfg));
    EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
    (*cluster)->ScheduleInsert(
        0, {{"link", {Value::Str("p0"), Value::Str("p1")}}});
    (*cluster)->ScheduleInsert(
        1, {{"link", {Value::Str("p1"), Value::Str("p2")}}});
    auto mark = [](const char* p) -> FactUpdate {
      return {"mark", {Value::Str(p)}};
    };
    FactUpdate back_link = {"link",
                            {Value::Str("p1"), Value::Str("p0")}};
    if (churn) {
      // Node 2 exports nothing (no outgoing links of its own), so this
      // churn stays local while deliveries land in between.
      (*cluster)->ScheduleUpdate(2, {mark("p0")}, {}, 0.0);
      (*cluster)->ScheduleUpdate(2, {back_link}, {}, 0.0002);
      (*cluster)->ScheduleUpdate(2, {mark("p1")}, {mark("p0")}, 0.0004);
      (*cluster)->ScheduleUpdate(2, {}, {back_link}, 0.0008);
      (*cluster)->ScheduleUpdate(2, {mark("p0")}, {}, 0.0012);
    } else {
      (*cluster)->ScheduleUpdate(2, {mark("p0"), mark("p1")}, {}, 0.0);
    }
    auto metrics = (*cluster)->Run();
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    EXPECT_EQ(metrics->rejected_batches, 0u);
    return SortedDump((*cluster)->node(2).workspace());
  };

  for (size_t granularity : {size_t{1}, size_t{0}}) {
    std::string churned = run(true, granularity);
    std::string reference = run(false, granularity);
    EXPECT_EQ(churned, reference) << "granularity " << granularity;
    // The churn genuinely ran: the final state still holds the net marks
    // and the full prefix closure with exact support counts.
    EXPECT_NE(churned.find("flagged(principal:p0,principal:p2)"),
              std::string::npos);
    EXPECT_EQ(churned.find("reachable(principal:p1,principal:p0)"),
              std::string::npos);
  }
}

TEST(DistTest, ConvergenceTimesAreMonotoneWithDistance) {
  // On a line, nodes closer to the origin converge no later than the far
  // end: the CDF "step" behaviour in Figures 8/9.
  auto cluster = SimCluster::Create(
      LineClusterConfig(5, AuthScheme::kNone, EncScheme::kNone));
  ASSERT_TRUE(cluster.ok());
  ScheduleLineLinks(cluster->get(), 5);
  auto metrics = (*cluster)->Run();
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->node_convergence_s.size(), 5u);
  for (double t : metrics->node_convergence_s) EXPECT_GT(t, 0.0);
}

}  // namespace
}  // namespace secureblox::dist
