// Path-vector protocol: converged routes must equal BFS hop counts on
// random graphs, under multiple security schemes (property sweep).
#include <gtest/gtest.h>

#include <map>

#include "apps/pathvector.h"

namespace secureblox::apps {
namespace {

using policy::AuthScheme;
using policy::EncScheme;

void ExpectRoutesMatchBfs(const PathVectorConfig& config) {
  auto result = RunPathVector(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->metrics.rejected_batches, 0u);

  auto edges = RandomConnectedGraph(config.num_nodes, config.avg_degree,
                                    config.graph_seed);
  auto reference = ReferenceHopCounts(config.num_nodes, edges);

  for (size_t i = 0; i < config.num_nodes; ++i) {
    std::map<size_t, int64_t> got(result->best_costs[i].begin(),
                                  result->best_costs[i].end());
    for (size_t j = 0; j < config.num_nodes; ++j) {
      if (i == j) continue;
      ASSERT_TRUE(got.count(j))
          << "node " << i << " has no route to " << j;
      EXPECT_EQ(got[j], reference[i][j])
          << "route " << i << "->" << j << " cost mismatch";
    }
  }
}

TEST(PathVectorTest, GraphGeneratorProperties) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    auto edges = RandomConnectedGraph(12, 3.0, seed);
    // Average degree ~3 => ~18 edges.
    EXPECT_GE(edges.size(), 11u);  // at least a spanning tree
    EXPECT_LE(edges.size(), 18u);
    auto dist = ReferenceHopCounts(12, edges);
    for (size_t i = 0; i < 12; ++i) {
      for (size_t j = 0; j < 12; ++j) {
        EXPECT_GE(dist[i][j], 0) << "graph not connected";
      }
    }
  }
}

TEST(PathVectorTest, ReferenceBfsSanity) {
  // Triangle plus a tail: 0-1, 1-2, 0-2, 2-3.
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}};
  auto dist = ReferenceHopCounts(4, edges);
  EXPECT_EQ(dist[0][3], 2);
  EXPECT_EQ(dist[3][0], 2);
  EXPECT_EQ(dist[0][1], 1);
  EXPECT_EQ(dist[1][3], 2);
}

TEST(PathVectorTest, SmallGraphNoAuth) {
  PathVectorConfig config;
  config.num_nodes = 6;
  config.graph_seed = 42;
  config.rsa_bits = 512;
  ExpectRoutesMatchBfs(config);
}

TEST(PathVectorTest, SmallGraphHmac) {
  PathVectorConfig config;
  config.num_nodes = 6;
  config.auth = AuthScheme::kHmac;
  config.graph_seed = 7;
  config.rsa_bits = 512;
  ExpectRoutesMatchBfs(config);
}

TEST(PathVectorTest, SmallGraphRsaAes) {
  PathVectorConfig config;
  config.num_nodes = 6;
  config.auth = AuthScheme::kRsa;
  config.enc = EncScheme::kAes;
  config.graph_seed = 9;
  config.rsa_bits = 512;
  ExpectRoutesMatchBfs(config);
}

class PathVectorSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PathVectorSeedSweep, RoutesEqualBfsOnRandomGraphs) {
  PathVectorConfig config;
  config.num_nodes = 8;
  config.graph_seed = GetParam();
  config.rsa_bits = 512;
  ExpectRoutesMatchBfs(config);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathVectorSeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(PathVectorTest, MetricsArePopulated) {
  PathVectorConfig config;
  config.num_nodes = 6;
  config.graph_seed = 4;
  config.rsa_bits = 512;
  auto result = RunPathVector(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& m = result->metrics;
  EXPECT_GT(m.fixpoint_latency_s, 0.0);
  EXPECT_GT(m.total_messages, 0u);
  EXPECT_EQ(m.node_bytes_sent.size(), 6u);
  EXPECT_GT(m.MeanPerNodeKb(), 0.0);
  EXPECT_GT(m.transactions.size(), 6u);
  for (double t : m.node_convergence_s) EXPECT_GT(t, 0.0);
}

}  // namespace
}  // namespace secureblox::apps
