// MetaDb: the relational program representation backing BloxGenerics.
#include <gtest/gtest.h>

#include "generics/meta_db.h"

namespace secureblox::generics {
namespace {

TEST(MetaDbTest, DeclareAndInsert) {
  MetaDb db;
  ASSERT_TRUE(db.Declare("predicate", 1, false).ok());
  EXPECT_TRUE(db.IsDeclared("predicate"));
  EXPECT_FALSE(db.IsDeclared("rule"));
  EXPECT_EQ(db.Arity("predicate"), 1u);

  EXPECT_TRUE(db.Insert("predicate", {"link"}).value());
  EXPECT_FALSE(db.Insert("predicate", {"link"}).value());  // dup
  EXPECT_TRUE(db.Insert("predicate", {"path"}).value());
  EXPECT_EQ(db.Tuples("predicate").size(), 2u);
}

TEST(MetaDbTest, UndeclaredInsertFails) {
  MetaDb db;
  EXPECT_FALSE(db.Insert("ghost", {"x"}).ok());
}

TEST(MetaDbTest, ArityMismatchFails) {
  MetaDb db;
  ASSERT_TRUE(db.Declare("says", 2, true).ok());
  EXPECT_FALSE(db.Insert("says", {"only-one"}).ok());
  EXPECT_FALSE(db.Declare("says", 3, true).ok());  // inconsistent redeclare
}

TEST(MetaDbTest, FunctionalLookupAndConflict) {
  MetaDb db;
  ASSERT_TRUE(db.Declare("says", 2, true).ok());
  ASSERT_TRUE(db.Insert("says", {"path", "says$path"}).ok());
  EXPECT_EQ(db.LookupValue("says", {"path"}).value(), "says$path");
  EXPECT_FALSE(db.LookupValue("says", {"other"}).ok());
  // Same keys, same value: duplicate, fine.
  EXPECT_FALSE(db.Insert("says", {"path", "says$path"}).value());
  // Same keys, different value: FD conflict at compile time.
  auto conflict = db.Insert("says", {"path", "says$path2"});
  EXPECT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), StatusCode::kCompileError);
}

TEST(MetaDbTest, ParenFormUpgradesToFunctional) {
  MetaDb db;
  // First seen in paren form (non-functional), then declared functional —
  // the paper uses says(T,ST) and says[T]=ST interchangeably.
  ASSERT_TRUE(db.Declare("says", 2, false).ok());
  ASSERT_TRUE(db.Insert("says", {"a", "sa"}).ok());
  ASSERT_TRUE(db.Declare("says", 2, true).ok());
  EXPECT_TRUE(db.IsFunctional("says"));
  // The FD map was backfilled from existing tuples.
  EXPECT_EQ(db.LookupValue("says", {"a"}).value(), "sa");
  EXPECT_FALSE(db.Insert("says", {"a", "other"}).ok());
}

TEST(MetaDbTest, RelationNamesEnumerates) {
  MetaDb db;
  ASSERT_TRUE(db.Declare("a", 1, false).ok());
  ASSERT_TRUE(db.Declare("b", 2, true).ok());
  auto names = db.RelationNames();
  EXPECT_EQ(names.size(), 2u);
}

}  // namespace
}  // namespace secureblox::generics
