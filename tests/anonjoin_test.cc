// Anonymous join over onion circuits: correctness of the join, of the
// layered encryption relay, and of the anonymity property (owner never
// sees the initiator's identity).
#include <gtest/gtest.h>

#include "apps/anonjoin.h"

namespace secureblox::apps {
namespace {

TEST(AnonJoinTest, JoinMatchesReferenceThroughOneRelay) {
  AnonJoinConfig config;
  config.num_nodes = 3;  // initiator, relay, owner
  auto result = RunAnonJoin(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->expected_results, 0u);
  EXPECT_EQ(result->results_at_initiator, result->expected_results);
  EXPECT_TRUE(result->initiator_hidden_from_owner);
  EXPECT_EQ(result->metrics.rejected_batches, 0u);
}

TEST(AnonJoinTest, WorksThroughLongerCircuits) {
  for (size_t nodes : {4u, 5u}) {
    AnonJoinConfig config;
    config.num_nodes = nodes;
    config.interests = 5;
    config.publicdata = 60;
    config.value_domain = 20;
    auto result = RunAnonJoin(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->results_at_initiator, result->expected_results)
        << nodes << " nodes";
    EXPECT_TRUE(result->initiator_hidden_from_owner);
  }
}

TEST(AnonJoinTest, DifferentSeedsDifferentWorkloads) {
  AnonJoinConfig a;
  a.seed = 1;
  AnonJoinConfig b;
  b.seed = 2;
  auto ra = RunAnonJoin(a);
  auto rb = RunAnonJoin(b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->results_at_initiator, ra->expected_results);
  EXPECT_EQ(rb->results_at_initiator, rb->expected_results);
}

}  // namespace
}  // namespace secureblox::apps
