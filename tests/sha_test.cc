// SHA-1 / SHA-256 against FIPS 180 test vectors, plus incremental-update
// and reset behaviour.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace secureblox::crypto {
namespace {

Bytes B(const std::string& s) { return BytesFromString(s); }

TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(ToHex(Sha1Digest(B(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(ToHex(Sha1Digest(B("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(ToHex(Sha1Digest(B(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(ToHex(h.Finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha1 h;
  for (char c : msg) h.Update(reinterpret_cast<const uint8_t*>(&c), 1);
  EXPECT_EQ(ToHex(h.Finish()), ToHex(Sha1Digest(B(msg))));
}

TEST(Sha1Test, KnownQuickBrownFox) {
  EXPECT_EQ(
      ToHex(Sha1Digest(B("The quick brown fox jumps over the lazy dog"))),
      "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1Test, ResetAllowsReuse) {
  Sha1 h;
  h.Update(B("garbage"));
  (void)h.Finish();
  h.Reset();
  h.Update(B("abc"));
  EXPECT_EQ(ToHex(h.Finish()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, ExactBlockBoundary) {
  // 64 bytes == exactly one block before padding.
  Bytes data(64, 'x');
  Bytes d1 = Sha1Digest(data);
  Sha1 h;
  h.Update(data.data(), 32);
  h.Update(data.data() + 32, 32);
  EXPECT_EQ(ToHex(h.Finish()), ToHex(d1));
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(ToHex(Sha256Digest(B(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(ToHex(Sha256Digest(B("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(ToHex(Sha256Digest(B(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg(300, 'z');
  Sha256 h;
  h.Update(B(msg.substr(0, 100)));
  h.Update(B(msg.substr(100)));
  EXPECT_EQ(ToHex(h.Finish()), ToHex(Sha256Digest(B(msg))));
}

TEST(Sha256Test, DifferentInputsDiffer) {
  EXPECT_NE(ToHex(Sha256Digest(B("a"))), ToHex(Sha256Digest(B("b"))));
}

}  // namespace
}  // namespace secureblox::crypto
