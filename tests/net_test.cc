// Wire format round trips, SimNet delivery ordering/accounting, and UDP
// loopback.
#include <gtest/gtest.h>

#include "datalog/catalog.h"
#include "net/sim_net.h"
#include "net/udp_transport.h"
#include "net/wire.h"

namespace secureblox::net {
namespace {

using datalog::Catalog;
using datalog::Value;
using engine::Tuple;

TEST(WireTest, ValueRoundTripPrimitives) {
  Catalog catalog;
  for (const Value& v :
       {Value::Int(-42), Value::Int(0), Value::Bool(true), Value::Bool(false),
        Value::Str("hello"), Value::Str(""),
        Value::MakeBlob({0x00, 0xFF, 0x10})}) {
    ByteWriter w;
    ASSERT_TRUE(SerializeValue(&w, v, catalog).ok());
    Bytes data = w.Take();
    ByteReader r(data);
    auto back = DeserializeValue(&r, &catalog);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value(), v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(WireTest, EntityRoundTripAcrossCatalogs) {
  // Sender and receiver intern in different orders; labels reconcile.
  Catalog sender, receiver;
  auto type_s = sender.DeclareEntityType("principal").value();
  auto type_r = receiver.DeclareEntityType("principal").value();
  // Receiver has interned other entities first: local ids differ.
  ASSERT_TRUE(receiver.InternEntity(type_r, "zzz").ok());
  Value alice_s = sender.InternEntity(type_s, "alice").value();

  ByteWriter w;
  ASSERT_TRUE(SerializeValue(&w, alice_s, sender).ok());
  Bytes data = w.Take();
  ByteReader r(data);
  Value alice_r = DeserializeValue(&r, &receiver).value();
  EXPECT_EQ(receiver.EntityLabel(alice_r).value(), "alice");
  EXPECT_NE(alice_r.entity_id(), alice_s.entity_id());  // ids are local
}

TEST(WireTest, BatchRoundTrip) {
  Catalog catalog;
  auto principal = catalog.DeclareEntityType("principal").value();
  Value p = catalog.InternEntity(principal, "alice").value();

  WireBatch batch;
  batch.src = 3;
  batch.dst = 7;
  batch.entries.push_back(
      {"says$reachable",
       WireEntryKind::kFacts,
       {{p, p, Value::Int(1)}, {p, p, Value::Int(2)}}});
  batch.entries.push_back(
      {"export", WireEntryKind::kFacts, {{p, Value::MakeBlob({1, 2, 3})}}});

  Bytes data = EncodeBatch(batch, catalog).value();
  WireBatch back = DecodeBatch(data, &catalog).value();
  EXPECT_EQ(back.src, 3u);
  EXPECT_EQ(back.dst, 7u);
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].pred, "says$reachable");
  EXPECT_EQ(back.entries[0].tuples.size(), 2u);
  EXPECT_EQ(back.TotalTuples(), 3u);
}

TEST(WireTest, DecodeRejectsCorruption) {
  Catalog catalog;
  WireBatch batch;
  batch.entries.push_back({"p", WireEntryKind::kFacts, {{Value::Int(7)}}});
  Bytes data = EncodeBatch(batch, catalog).value();

  Bytes bad_magic = data;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeBatch(bad_magic, &catalog).ok());

  Bytes truncated(data.begin(), data.end() - 2);
  EXPECT_FALSE(DecodeBatch(truncated, &catalog).ok());

  Bytes trailing = data;
  trailing.push_back(0x00);
  EXPECT_FALSE(DecodeBatch(trailing, &catalog).ok());

  Bytes bad_version = data;
  bad_version[3] = 99;
  EXPECT_FALSE(DecodeBatch(bad_version, &catalog).ok());
}

TEST(SimNetTest, DeliversInTimeOrder) {
  SimNet::Config cfg;
  cfg.jitter_frac = 0;  // deterministic latency
  SimNet net(cfg);
  net.Send(0, 1, Bytes(100, 0xAA), 0.0);
  net.Send(0, 2, Bytes(100, 0xBB), 0.001);
  net.Send(1, 0, Bytes(100, 0xCC), 0.0005);

  auto d1 = net.PopNext().value();
  auto d2 = net.PopNext().value();
  auto d3 = net.PopNext().value();
  EXPECT_TRUE(net.empty());
  EXPECT_LE(d1.time_s, d2.time_s);
  EXPECT_LE(d2.time_s, d3.time_s);
  EXPECT_EQ(d1.dst, 1u);
  EXPECT_EQ(d2.dst, 0u);
  EXPECT_EQ(d3.dst, 2u);
}

TEST(SimNetTest, LatencyModelScalesWithSize) {
  SimNet::Config cfg;
  cfg.jitter_frac = 0;
  cfg.base_latency_s = 0.0001;
  cfg.bandwidth_bytes_per_s = 1000;  // absurdly slow to expose size term
  SimNet net(cfg);
  net.Send(0, 1, Bytes(10, 0), 0.0);
  net.Send(0, 1, Bytes(1000, 0), 0.0);
  auto small = net.PopNext().value();
  auto large = net.PopNext().value();
  EXPECT_NEAR(small.time_s, 0.0001 + 10 / 1000.0, 1e-9);
  EXPECT_NEAR(large.time_s, 0.0001 + 1000 / 1000.0, 1e-9);
}

TEST(SimNetTest, ByteAccounting) {
  SimNet net{SimNet::Config{}};
  net.Send(0, 1, Bytes(100, 0), 0.0);
  net.Send(0, 2, Bytes(50, 0), 0.0);
  net.Send(1, 0, Bytes(25, 0), 0.0);
  EXPECT_EQ(net.bytes_sent(0), 150u);
  EXPECT_EQ(net.bytes_sent(1), 25u);
  EXPECT_EQ(net.bytes_received(1), 100u);
  EXPECT_EQ(net.bytes_received(0), 25u);
  EXPECT_EQ(net.messages_sent(0), 2u);
  EXPECT_EQ(net.total_bytes(), 175u);
  EXPECT_EQ(net.total_messages(), 3u);
}

TEST(SimNetTest, FifoTieBreakAtEqualTimes) {
  SimNet::Config cfg;
  cfg.jitter_frac = 0;
  SimNet net(cfg);
  Bytes payload(10, 0);
  for (int i = 0; i < 5; ++i) net.Send(0, 1, payload, 0.0);
  uint64_t last_seq = 0;
  for (int i = 0; i < 5; ++i) {
    auto d = net.PopNext().value();
    if (i > 0) EXPECT_GT(d.seq, last_seq);
    last_seq = d.seq;
  }
}

TEST(UdpTransportTest, LoopbackRoundTrip) {
  std::vector<UdpEndpoint> eps = {{"127.0.0.1", 0}, {"127.0.0.1", 0}};
  auto a = UdpTransport::Bind(0, eps);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = UdpTransport::Bind(1, eps);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  // Exchange the ephemeral ports.
  a->SetEndpoint(1, {"127.0.0.1", b->local_port()});
  b->SetEndpoint(0, {"127.0.0.1", a->local_port()});

  Bytes msg = BytesFromString("hello over udp");
  ASSERT_TRUE(a->Send(1, msg).ok());
  auto got = b->PollFor(2000);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, msg);
  EXPECT_EQ(a->bytes_sent(), msg.size());
  EXPECT_EQ(b->bytes_received(), msg.size());
}

TEST(UdpTransportTest, PollWithoutDataReturnsEmpty) {
  std::vector<UdpEndpoint> eps = {{"127.0.0.1", 0}};
  auto t = UdpTransport::Bind(0, eps);
  ASSERT_TRUE(t.ok());
  auto got = t->Poll();
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->has_value());
}

TEST(UdpTransportTest, SendToUnknownPeerFails) {
  std::vector<UdpEndpoint> eps = {{"127.0.0.1", 0}};
  auto t = UdpTransport::Bind(0, eps);
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(t->Send(5, Bytes{1}).ok());
}

}  // namespace
}  // namespace secureblox::net
