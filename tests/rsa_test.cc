// RSA keygen / sign / verify, tamper rejection, and DRBG determinism.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/hmac_drbg.h"
#include "crypto/rsa.h"

namespace secureblox::crypto {
namespace {

Bytes B(const std::string& s) { return BytesFromString(s); }

// Shared small (fast) keypair for most tests; generated once.
const RsaKeyPair& TestKey512() {
  static const RsaKeyPair* key = [] {
    HmacDrbg drbg(B("rsa-test-seed-512"));
    auto kp = RsaGenerateKeyPair(512, [&] { return drbg.NextU32(); });
    return new RsaKeyPair(std::move(kp).value());
  }();
  return *key;
}

TEST(RsaTest, KeyGenerationProperties) {
  const RsaKeyPair& k = TestKey512();
  EXPECT_EQ(k.pub.n.BitLength(), 512u);
  EXPECT_EQ(k.pub.e.ToU64(), 65537u);
  EXPECT_EQ(BigNum::Mul(k.p, k.q), k.pub.n);
  EXPECT_NE(k.p, k.q);
  // e*d == 1 mod (p-1)(q-1)
  BigNum phi = BigNum::Mul(BigNum::Sub(k.p, BigNum::FromU64(1)),
                           BigNum::Sub(k.q, BigNum::FromU64(1)));
  EXPECT_EQ(BigNum::Mod(BigNum::Mul(k.pub.e, k.d), phi), BigNum::FromU64(1));
}

TEST(RsaTest, SignVerifyRoundTrip) {
  const RsaKeyPair& k = TestKey512();
  Bytes msg = B("hello secure world");
  Bytes sig = RsaSign(k, msg).value();
  EXPECT_EQ(sig.size(), k.pub.ModulusBytes());
  EXPECT_TRUE(RsaVerify(k.pub, msg, sig));
}

TEST(RsaTest, CrtSignatureMatchesPlainExponentiation) {
  const RsaKeyPair& k = TestKey512();
  Bytes msg = B("crt check");
  Bytes sig = RsaSign(k, msg).value();
  // Recompute without CRT: sig == em^d mod n.
  BigNum s = BigNum::FromBytes(sig);
  BigNum m = BigNum::ModExp(s, k.pub.e, k.pub.n);
  // Verifying the recovered EM against a fresh encode is what RsaVerify does;
  // this asserts CRT produced a valid RSA signature at all.
  EXPECT_TRUE(RsaVerify(k.pub, msg, sig));
  EXPECT_EQ(BigNum::ModExp(m, k.d, k.pub.n), s);
}

TEST(RsaTest, VerifyRejectsTamperedMessage) {
  const RsaKeyPair& k = TestKey512();
  Bytes sig = RsaSign(k, B("original")).value();
  EXPECT_FALSE(RsaVerify(k.pub, B("Original"), sig));
}

TEST(RsaTest, VerifyRejectsEverySingleByteFlipInSignature) {
  const RsaKeyPair& k = TestKey512();
  Bytes msg = B("flip test");
  Bytes sig = RsaSign(k, msg).value();
  for (size_t i = 0; i < sig.size(); i += 7) {  // sample positions
    Bytes bad = sig;
    bad[i] ^= 0x40;
    EXPECT_FALSE(RsaVerify(k.pub, msg, bad)) << "byte " << i;
  }
}

TEST(RsaTest, VerifyRejectsWrongKey) {
  const RsaKeyPair& k1 = TestKey512();
  HmacDrbg drbg(B("other-key-seed"));
  RsaKeyPair k2 = RsaGenerateKeyPair(512, [&] { return drbg.NextU32(); }).value();
  Bytes msg = B("who signed this?");
  Bytes sig = RsaSign(k1, msg).value();
  EXPECT_FALSE(RsaVerify(k2.pub, msg, sig));
}

TEST(RsaTest, VerifyRejectsWrongSizeSignature) {
  const RsaKeyPair& k = TestKey512();
  Bytes msg = B("size");
  Bytes sig = RsaSign(k, msg).value();
  Bytes shorter(sig.begin(), sig.end() - 1);
  EXPECT_FALSE(RsaVerify(k.pub, msg, shorter));
  Bytes longer = sig;
  longer.push_back(0);
  EXPECT_FALSE(RsaVerify(k.pub, msg, longer));
}

TEST(RsaTest, PublicKeySerializationRoundTrip) {
  const RsaKeyPair& k = TestKey512();
  Bytes wire = k.pub.Serialize();
  RsaPublicKey back = RsaPublicKey::Deserialize(wire).value();
  EXPECT_EQ(back.n, k.pub.n);
  EXPECT_EQ(back.e, k.pub.e);
  EXPECT_FALSE(RsaPublicKey::Deserialize(Bytes{0x01}).ok());
}

TEST(RsaTest, EmptyAndLargeMessages) {
  const RsaKeyPair& k = TestKey512();
  Bytes empty_sig = RsaSign(k, {}).value();
  EXPECT_TRUE(RsaVerify(k.pub, {}, empty_sig));
  Bytes large(100000, 0x5a);
  Bytes large_sig = RsaSign(k, large).value();
  EXPECT_TRUE(RsaVerify(k.pub, large, large_sig));
  EXPECT_FALSE(RsaVerify(k.pub, large, empty_sig));
}

TEST(RsaTest, PaperKeySize1024) {
  // The paper's configuration: 1024-bit modulus.
  HmacDrbg drbg(B("rsa-1024-seed"));
  RsaKeyPair k = RsaGenerateKeyPair(1024, [&] { return drbg.NextU32(); }).value();
  EXPECT_EQ(k.pub.n.BitLength(), 1024u);
  EXPECT_EQ(k.pub.ModulusBytes(), 128u);  // "256 byte signatures" in the
                                          // paper count sig+key overhead;
                                          // the raw signature is 128 bytes.
  Bytes msg = B("path advertisement");
  Bytes sig = RsaSign(k, msg).value();
  EXPECT_EQ(sig.size(), 128u);
  EXPECT_TRUE(RsaVerify(k.pub, msg, sig));
  sig[64] ^= 1;
  EXPECT_FALSE(RsaVerify(k.pub, msg, sig));
}

TEST(RsaTest, RejectsBadKeySizeRequests) {
  HmacDrbg drbg(B("seed"));
  EXPECT_FALSE(RsaGenerateKeyPair(64, [&] { return drbg.NextU32(); }).ok());
  EXPECT_FALSE(RsaGenerateKeyPair(129, [&] { return drbg.NextU32(); }).ok());
}

TEST(HmacDrbgTest, DeterministicForSameSeed) {
  HmacDrbg a(B("seed-1"));
  HmacDrbg b(B("seed-1"));
  EXPECT_EQ(ToHex(a.Generate(64)), ToHex(b.Generate(64)));
}

TEST(HmacDrbgTest, DifferentSeedsDiffer) {
  HmacDrbg a(B("seed-1"));
  HmacDrbg b(B("seed-2"));
  EXPECT_NE(ToHex(a.Generate(64)), ToHex(b.Generate(64)));
}

TEST(HmacDrbgTest, ReseedChangesStream) {
  HmacDrbg a(B("seed"));
  HmacDrbg b(B("seed"));
  (void)a.Generate(16);
  (void)b.Generate(16);
  b.Reseed(B("extra"));
  EXPECT_NE(ToHex(a.Generate(32)), ToHex(b.Generate(32)));
}

TEST(HmacDrbgTest, GenerateSpansRekeyBoundary) {
  HmacDrbg a(B("seed"));
  Bytes big = a.Generate(100);  // > one SHA-256 output
  EXPECT_EQ(big.size(), 100u);
}

}  // namespace
}  // namespace secureblox::crypto
