// Workspace / evaluator semantics: fixpoints, negation, aggregation,
// functional dependencies, head existentials, constraints with rollback,
// and deletion with rederivation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datalog/parser.h"
#include "engine/workspace.h"

namespace secureblox::engine {
namespace {

using datalog::Parse;
using datalog::Value;

// Parse + install, asserting success.
void Install(Workspace* ws, const std::string& src) {
  auto program = Parse(src);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Status st = ws->Install(program.value());
  ASSERT_TRUE(st.ok()) << st.ToString();
}

Status TryInstall(Workspace* ws, const std::string& src) {
  auto program = Parse(src);
  if (!program.ok()) return program.status();
  return ws->Install(program.value());
}

// Render query results as a sorted set of strings for easy comparison.
std::set<std::string> QuerySet(Workspace& ws, const std::string& pred) {
  auto rows = ws.Query(pred);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  std::set<std::string> out;
  if (!rows.ok()) return out;
  for (const auto& t : rows.value()) {
    out.insert(TupleToString(t, ws.catalog()));
  }
  return out;
}

const char* kGraphSchema = R"(
node(X) -> .
link(X, Y) -> node(X), node(Y).
reachable(X, Y) -> node(X), node(Y).
reachable(X, Y) <- link(X, Y).
reachable(X, Y) <- link(X, Z), reachable(Z, Y).
)";

TEST(WorkspaceTest, TransitiveClosure) {
  Workspace ws;
  Install(&ws, kGraphSchema);
  ASSERT_TRUE(ws.Insert("link", {Value::Str("a"), Value::Str("b")}).ok());
  ASSERT_TRUE(ws.Insert("link", {Value::Str("b"), Value::Str("c")}).ok());
  ASSERT_TRUE(ws.Insert("link", {Value::Str("c"), Value::Str("d")}).ok());
  EXPECT_EQ(QuerySet(ws, "reachable").size(), 6u);  // ab ac ad bc bd cd
  EXPECT_TRUE(ws.ContainsFact("reachable",
                              {Value::Str("a"), Value::Str("d")}).value());
  EXPECT_FALSE(ws.ContainsFact("reachable",
                               {Value::Str("d"), Value::Str("a")}).value());
}

TEST(WorkspaceTest, TransitiveClosureWithCycle) {
  Workspace ws;
  Install(&ws, kGraphSchema);
  // a -> b -> c -> a: everything reaches everything.
  auto commit = ws.Apply({{"link", {Value::Str("a"), Value::Str("b")}},
                          {"link", {Value::Str("b"), Value::Str("c")}},
                          {"link", {Value::Str("c"), Value::Str("a")}}});
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(QuerySet(ws, "reachable").size(), 9u);
}

TEST(WorkspaceTest, IncrementalMaintenance) {
  Workspace ws;
  Install(&ws, kGraphSchema);
  ASSERT_TRUE(ws.Insert("link", {Value::Str("a"), Value::Str("b")}).ok());
  EXPECT_EQ(QuerySet(ws, "reachable").size(), 1u);
  // Adding one edge extends closure incrementally (semi-naïve deltas).
  auto commit = ws.Apply({{"link", {Value::Str("b"), Value::Str("c")}}});
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(QuerySet(ws, "reachable").size(), 3u);
  EXPECT_GT(commit->num_derived, 0u);
}

TEST(WorkspaceTest, CommitReportsInsertedTuples) {
  Workspace ws;
  Install(&ws, kGraphSchema);
  auto commit = ws.Apply({{"link", {Value::Str("a"), Value::Str("b")}}});
  ASSERT_TRUE(commit.ok());
  auto reachable_id = ws.catalog().Lookup("reachable").value();
  ASSERT_TRUE(commit->inserted.count(reachable_id));
  EXPECT_EQ(commit->inserted.at(reachable_id).size(), 1u);
}

TEST(WorkspaceTest, JoinWithComparisonAndArithmetic) {
  Workspace ws;
  Install(&ws, R"(
    cost(X, C) -> string(X), int(C).
    bumped(X, C) -> string(X), int(C).
    bumped(X, C + 10) <- cost(X, C), C < 100.
  )");
  ASSERT_TRUE(ws.Insert("cost", {Value::Str("small"), Value::Int(5)}).ok());
  ASSERT_TRUE(ws.Insert("cost", {Value::Str("big"), Value::Int(500)}).ok());
  auto rows = ws.Query("bumped").value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].AsInt(), 15);
}

TEST(WorkspaceTest, NegationStratified) {
  Workspace ws;
  Install(&ws, R"(
    node(X) -> .
    link(X, Y) -> node(X), node(Y).
    unlinked(X, Y) -> node(X), node(Y).
    unlinked(X, Y) <- node(X), node(Y), !link(X, Y), X != Y.
  )");
  auto commit = ws.Apply({{"link", {Value::Str("a"), Value::Str("b")}},
                          {"link", {Value::Str("b"), Value::Str("c")}}});
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  // pairs: (a,c),(b,a),(c,a),(c,b) — all ordered pairs minus links & self.
  EXPECT_EQ(QuerySet(ws, "unlinked").size(), 4u);
}

TEST(WorkspaceTest, UnstratifiedNegationRejected) {
  Workspace ws;
  Status st = TryInstall(&ws, R"(
    p(X) -> string(X).
    q(X) -> string(X).
    p(X) <- q(X).
    q(X) <- p(X), !q(X).
  )");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCompileError);
  EXPECT_NE(st.message().find("unstratified"), std::string::npos);
}

TEST(WorkspaceTest, NegatedFunctionalWildcard) {
  Workspace ws;
  Install(&ws, R"(
    owner[X] = Y -> string(X), string(Y).
    item(X) -> string(X).
    orphan(X) -> string(X).
    orphan(X) <- item(X), !owner[X] = _.
  )");
  ASSERT_TRUE(ws.Insert("item", {Value::Str("book")}).ok());
  ASSERT_TRUE(ws.Insert("item", {Value::Str("pen")}).ok());
  ASSERT_TRUE(
      ws.Insert("owner", {Value::Str("book"), Value::Str("ann")}).ok());
  EXPECT_EQ(QuerySet(ws, "orphan"), std::set<std::string>{"(\"pen\")"});
}

TEST(WorkspaceTest, FunctionalDependencyConflictAborts) {
  Workspace ws;
  Install(&ws, "owner[X] = Y -> string(X), string(Y).");
  ASSERT_TRUE(
      ws.Insert("owner", {Value::Str("book"), Value::Str("ann")}).ok());
  auto commit =
      ws.Apply({{"owner", {Value::Str("book"), Value::Str("bob")}}});
  EXPECT_FALSE(commit.ok());
  EXPECT_EQ(commit.status().code(), StatusCode::kConstraintViolation);
  // Original value untouched.
  EXPECT_TRUE(
      ws.ContainsFact("owner", {Value::Str("book"), Value::Str("ann")})
          .value());
  EXPECT_FALSE(
      ws.ContainsFact("owner", {Value::Str("book"), Value::Str("bob")})
          .value());
}

TEST(WorkspaceTest, DuplicateInsertIsIdempotent) {
  Workspace ws;
  Install(&ws, kGraphSchema);
  ASSERT_TRUE(ws.Insert("link", {Value::Str("a"), Value::Str("b")}).ok());
  ASSERT_TRUE(ws.Insert("link", {Value::Str("a"), Value::Str("b")}).ok());
  EXPECT_EQ(QuerySet(ws, "link").size(), 1u);
}

TEST(WorkspaceTest, SingletonPredicate) {
  Workspace ws;
  Install(&ws, R"(
    principal(X) -> .
    self[] = P -> principal(P).
    greeting(P) -> principal(P).
    greeting(P) <- self[] = P.
  )");
  ASSERT_TRUE(ws.Insert("self", {Value::Str("alice")}).ok());
  EXPECT_EQ(ws.catalog().ValueToString(ws.SingletonValue("self").value()),
            "principal:alice");
  EXPECT_EQ(QuerySet(ws, "greeting").size(), 1u);
  // A second value violates the singleton's FD.
  auto commit = ws.Apply({{"self", {Value::Str("bob")}}});
  EXPECT_FALSE(commit.ok());
}

TEST(WorkspaceTest, RuntimeConstraintViolationRollsBackWholeBatch) {
  Workspace ws;
  Install(&ws, R"(
    node(X) -> .
    link(X, Y) -> node(X), node(Y).
    allowed(X) -> node(X).
    link(X, Y) -> allowed(X).
  )");
  ASSERT_TRUE(ws.Insert("allowed", {Value::Str("a")}).ok());
  // Batch: one OK link and one violating link — everything rolls back.
  auto commit = ws.Apply({{"link", {Value::Str("a"), Value::Str("b")}},
                          {"link", {Value::Str("evil"), Value::Str("b")}}});
  EXPECT_FALSE(commit.ok());
  EXPECT_EQ(commit.status().code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(QuerySet(ws, "link").size(), 0u);
  EXPECT_EQ(ws.stats().aborts, 1u);
  // The OK tuple alone commits.
  ASSERT_TRUE(ws.Insert("link", {Value::Str("a"), Value::Str("b")}).ok());
  EXPECT_EQ(QuerySet(ws, "link").size(), 1u);
}

TEST(WorkspaceTest, RepeatedVariableInBodyAtomMatchesDiagonal) {
  // Regression: a variable repeated within ONE body atom — link(X, X) —
  // used to compile its second occurrence as kBound, which read the
  // environment slot at match time, before the scan's accept step had
  // bound it: a dereference of an unengaged optional. Row mode silently
  // rejected every candidate (derived nothing); columnar mode handed the
  // garbage value to the dictionary probe and could crash on stale heap
  // contents. The repeated column now compiles to ArgPat::Kind::kSame, a
  // row-vs-row equality against the atom's earlier column, in both the
  // compiler and the planner's reorder path.
  for (bool columnar : {false, true}) {
    SCOPED_TRACE(columnar ? "columnar" : "row");
    Workspace ws;
    ws.fixpoint_options().columnar = columnar;
    Install(&ws, R"(
      node(X) -> .
      link(X, Y) -> node(X), node(Y).
      self(X) -> node(X).
      pair(X, Y) -> node(X), node(Y).
      self(X) <- link(X, X).
      pair(X, Y) <- link(X, Y), link(Y, Y).
    )");
    auto commit = ws.Apply({{"link", {Value::Str("a"), Value::Str("b")}},
                            {"link", {Value::Str("b"), Value::Str("b")}},
                            {"link", {Value::Str("c"), Value::Str("c")}}});
    ASSERT_TRUE(commit.ok()) << commit.status().ToString();
    EXPECT_EQ(QuerySet(ws, "self").size(), 2u);  // b, c
    EXPECT_TRUE(ws.ContainsFact("self", {Value::Str("b")}).value());
    EXPECT_TRUE(ws.ContainsFact("self", {Value::Str("c")}).value());
    EXPECT_FALSE(ws.ContainsFact("self", {Value::Str("a")}).value());
    // The diagonal filter also composes with a join: pair(X, Y) needs
    // link(X, Y) where Y is a self-loop.
    EXPECT_EQ(QuerySet(ws, "pair").size(), 3u);  // (a,b), (b,b), (c,c)
    EXPECT_TRUE(
        ws.ContainsFact("pair", {Value::Str("a"), Value::Str("b")}).value());
    EXPECT_TRUE(
        ws.ContainsFact("pair", {Value::Str("b"), Value::Str("b")}).value());
    EXPECT_TRUE(
        ws.ContainsFact("pair", {Value::Str("c"), Value::Str("c")}).value());
    // Deletion walks the same patterns through the retraction variants.
    auto del = ws.Apply({}, {{"link", {Value::Str("b"), Value::Str("b")}}});
    ASSERT_TRUE(del.ok()) << del.status().ToString();
    EXPECT_EQ(QuerySet(ws, "self").size(), 1u);  // c
    EXPECT_TRUE(ws.ContainsFact("self", {Value::Str("c")}).value());
    EXPECT_EQ(QuerySet(ws, "pair").size(), 1u);  // (c,c)
    EXPECT_TRUE(
        ws.ContainsFact("pair", {Value::Str("c"), Value::Str("c")}).value());
  }
}

TEST(WorkspaceTest, RolledBackTxnLeavesColumnarDictionariesClean) {
  // Audit pin for dictionary refcount hygiene across transaction
  // rollback: the undo log erases every tuple the aborted transaction
  // inserted, and Relation::Erase symmetrically releases the codes each
  // row held — so live counts, CodeOf visibility, and estimates must all
  // read as if the transaction never ran.
  Workspace ws;
  ws.fixpoint_options().columnar = true;
  Install(&ws, R"(
    node(X) -> .
    allowed(X) -> node(X).
    link(X, Y) -> node(X), node(Y).
    link(X, Y) -> allowed(X).
  )");
  ASSERT_TRUE(ws.Insert("allowed", {Value::Str("a")}).ok());
  ASSERT_TRUE(ws.Insert("link", {Value::Str("a"), Value::Str("b")}).ok());
  const Relation* link = ws.GetRelationIfExists(
      ws.catalog().Lookup("link").value());
  ASSERT_NE(link, nullptr);
  ASSERT_TRUE(link->columnar());
  const auto live0 = link->ColumnDistinct(0);
  const auto live1 = link->ColumnDistinct(1);
  // The violating batch interns novel entities into the dictionaries
  // while applying, then rolls back; its codes must be fully retired.
  auto commit = ws.Apply({{"link", {Value::Str("a"), Value::Str("fresh1")}},
                          {"link", {Value::Str("evil"), Value::Str("fresh2")}}});
  ASSERT_FALSE(commit.ok());
  EXPECT_EQ(link->ColumnDistinct(0), live0);
  EXPECT_EQ(link->ColumnDistinct(1), live1);
  EXPECT_EQ(link->size(), 1u);
  EXPECT_EQ(QuerySet(ws, "link").size(), 1u);
  // The surviving good row still commits afterwards, reviving any
  // retired code rather than minting a duplicate.
  ASSERT_TRUE(ws.Insert("link", {Value::Str("a"), Value::Str("fresh1")}).ok());
  EXPECT_EQ(link->ColumnDistinct(1), *live1 + 1);
  EXPECT_EQ(QuerySet(ws, "link").size(), 2u);
}

TEST(WorkspaceTest, ConstraintOnDerivedFacts) {
  Workspace ws;
  Install(&ws, R"(
    node(X) -> .
    link(X, Y) -> node(X), node(Y).
    reachable(X, Y) -> node(X), node(Y).
    reachable(X, Y) <- link(X, Y).
    reachable(X, Y) <- link(X, Z), reachable(Z, Y).
    forbidden(X) -> node(X).
    reachable(X, Y) -> node(X), node(Y), !forbidden(Y).
  )");
  ASSERT_TRUE(ws.Insert("forbidden", {Value::Str("x")}).ok());
  ASSERT_TRUE(ws.Insert("link", {Value::Str("a"), Value::Str("b")}).ok());
  // Deriving reachable(a,x) transitively violates the constraint.
  auto commit = ws.Apply({{"link", {Value::Str("b"), Value::Str("x")}}});
  EXPECT_FALSE(commit.ok());
  EXPECT_EQ(QuerySet(ws, "reachable").size(), 1u);  // only (a,b)
}

TEST(WorkspaceTest, StratifiedAggregates) {
  Workspace ws;
  Install(&ws, R"(
    sale(X, V) -> string(X), int(V).
    total[X] = V -> string(X), int(V).
    cheapest[X] = V -> string(X), int(V).
    biggest[X] = V -> string(X), int(V).
    howmany[X] = V -> string(X), int(V).
    total[X] = V <- agg<< V = sum(S) >> sale(X, S).
    cheapest[X] = V <- agg<< V = min(S) >> sale(X, S).
    biggest[X] = V <- agg<< V = max(S) >> sale(X, S).
    howmany[X] = V <- agg<< V = count() >> sale(X, S).
  )");
  auto commit = ws.Apply({{"sale", {Value::Str("a"), Value::Int(10)}},
                          {"sale", {Value::Str("a"), Value::Int(3)}},
                          {"sale", {Value::Str("a"), Value::Int(7)}},
                          {"sale", {Value::Str("b"), Value::Int(5)}}});
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_TRUE(ws.ContainsFact("total", {Value::Str("a"), Value::Int(20)})
                  .value());
  EXPECT_TRUE(ws.ContainsFact("cheapest", {Value::Str("a"), Value::Int(3)})
                  .value());
  EXPECT_TRUE(ws.ContainsFact("biggest", {Value::Str("a"), Value::Int(10)})
                  .value());
  EXPECT_TRUE(ws.ContainsFact("howmany", {Value::Str("a"), Value::Int(3)})
                  .value());
  EXPECT_TRUE(ws.ContainsFact("total", {Value::Str("b"), Value::Int(5)})
                  .value());
  // Aggregates update when more data arrives.
  ASSERT_TRUE(ws.Insert("sale", {Value::Str("b"), Value::Int(2)}).ok());
  EXPECT_TRUE(ws.ContainsFact("total", {Value::Str("b"), Value::Int(7)})
                  .value());
  EXPECT_TRUE(ws.ContainsFact("cheapest", {Value::Str("b"), Value::Int(2)})
                  .value());
}

TEST(WorkspaceTest, RecursiveLatticeMinShortestPath) {
  // Recursive aggregation (bestcost over cost, cost over bestcost) — the
  // declarative-networking pattern the path-vector protocol relies on.
  Workspace ws;
  Install(&ws, R"(
    node(X) -> .
    link(X, Y, C) -> node(X), node(Y), int(C).
    cost(X, Y, C) -> node(X), node(Y), int(C).
    bestcost[X, Y] = C -> node(X), node(Y), int(C).
    cost(X, Y, C) <- link(X, Y, C).
    cost(X, Y, C1 + C2) <- bestcost[X, Z] = C1, link(Z, Y, C2).
    bestcost[X, Y] = C <- agg<< C = min(Cx) >> cost(X, Y, Cx).
  )");
  auto commit = ws.Apply({
      {"link", {Value::Str("a"), Value::Str("b"), Value::Int(1)}},
      {"link", {Value::Str("b"), Value::Str("c"), Value::Int(1)}},
      {"link", {Value::Str("a"), Value::Str("c"), Value::Int(5)}},
      {"link", {Value::Str("c"), Value::Str("d"), Value::Int(1)}},
  });
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  // a->c best is 2 via b, not the direct 5.
  EXPECT_TRUE(
      ws.ContainsFact("bestcost",
                      {Value::Str("a"), Value::Str("c"), Value::Int(2)})
          .value());
  EXPECT_TRUE(
      ws.ContainsFact("bestcost",
                      {Value::Str("a"), Value::Str("d"), Value::Int(3)})
          .value());
}

TEST(WorkspaceTest, RecursiveSumRejected) {
  Workspace ws;
  Status st = TryInstall(&ws, R"(
    p(X, V) -> string(X), int(V).
    q[X] = V -> string(X), int(V).
    p(X, V) <- q[X] = V.
    q[X] = V <- agg<< V = sum(S) >> p(X, S).
  )");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("lattice"), std::string::npos);
}

TEST(WorkspaceTest, HeadExistentialCreatesEntities) {
  Workspace ws;
  Install(&ws, R"(
    person(X) -> .
    team(X) -> .
    member(T, P) -> team(T), person(P).
    pair(A, B) -> person(A), person(B).
    team(T), member(T, A), member(T, B) <- pair(A, B).
  )");
  ASSERT_TRUE(
      ws.Insert("pair", {Value::Str("ann"), Value::Str("bob")}).ok());
  EXPECT_EQ(QuerySet(ws, "team").size(), 1u);
  EXPECT_EQ(QuerySet(ws, "member").size(), 2u);
  // Re-inserting the same pair must reuse the memoized entity.
  ASSERT_TRUE(
      ws.Insert("pair", {Value::Str("ann"), Value::Str("bob")}).ok());
  EXPECT_EQ(QuerySet(ws, "team").size(), 1u);
  // A different pair creates a fresh team.
  ASSERT_TRUE(
      ws.Insert("pair", {Value::Str("cid"), Value::Str("dee")}).ok());
  EXPECT_EQ(QuerySet(ws, "team").size(), 2u);
}

TEST(WorkspaceTest, DeleteAndRederive) {
  Workspace ws;
  Install(&ws, kGraphSchema);
  auto commit = ws.Apply({{"link", {Value::Str("a"), Value::Str("b")}},
                          {"link", {Value::Str("b"), Value::Str("c")}},
                          {"link", {Value::Str("a"), Value::Str("c")}}});
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(QuerySet(ws, "reachable").size(), 3u);
  // Remove a->b: a->c still holds via the direct link; b->c remains.
  auto del = ws.Apply({}, {{"link", {Value::Str("a"), Value::Str("b")}}});
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  auto set = QuerySet(ws, "reachable");
  EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(ws.ContainsFact("reachable",
                               {Value::Str("a"), Value::Str("b")}).value());
  EXPECT_TRUE(ws.ContainsFact("reachable",
                              {Value::Str("a"), Value::Str("c")}).value());
}

TEST(WorkspaceTest, DeleteCascades) {
  Workspace ws;
  Install(&ws, kGraphSchema);
  auto commit = ws.Apply({{"link", {Value::Str("a"), Value::Str("b")}},
                          {"link", {Value::Str("b"), Value::Str("c")}},
                          {"link", {Value::Str("c"), Value::Str("d")}}});
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(QuerySet(ws, "reachable").size(), 6u);
  auto del = ws.Apply({}, {{"link", {Value::Str("b"), Value::Str("c")}}});
  ASSERT_TRUE(del.ok());
  // Only a->b and c->d survive.
  EXPECT_EQ(QuerySet(ws, "reachable").size(), 2u);
}

TEST(WorkspaceTest, DeleteDerivedFactRejected) {
  Workspace ws;
  Install(&ws, kGraphSchema);
  ASSERT_TRUE(ws.Insert("link", {Value::Str("a"), Value::Str("b")}).ok());
  auto del =
      ws.Apply({}, {{"reachable", {Value::Str("a"), Value::Str("b")}}});
  EXPECT_FALSE(del.ok());
  EXPECT_EQ(QuerySet(ws, "reachable").size(), 1u);
}

TEST(WorkspaceTest, BuiltinInRuleBody) {
  Workspace ws;
  Install(&ws, R"(
    item(X) -> string(X).
    bucket(X, B) -> string(X), int(B).
    bucket(X, B) <- item(X), sha1_bucket(X, 4, B).
  )");
  for (const char* name : {"a", "b", "c", "d", "e", "f"}) {
    ASSERT_TRUE(ws.Insert("item", {Value::Str(name)}).ok());
  }
  auto rows = ws.Query("bucket").value();
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& r : rows) {
    EXPECT_GE(r[1].AsInt(), 0);
    EXPECT_LT(r[1].AsInt(), 4);
  }
}

TEST(WorkspaceTest, FactsInProgramSource) {
  Workspace ws;
  Install(&ws, R"(
    node(X) -> .
    link(X, Y) -> node(X), node(Y).
    reachable(X, Y) -> node(X), node(Y).
    reachable(X, Y) <- link(X, Y).
    reachable(X, Y) <- link(X, Z), reachable(Z, Y).
    link("a", "b").
    link("b", "c").
  )");
  EXPECT_EQ(QuerySet(ws, "reachable").size(), 3u);
}

TEST(WorkspaceTest, MultipleInstallsAccumulate) {
  Workspace ws;
  Install(&ws, kGraphSchema);
  ASSERT_TRUE(ws.Insert("link", {Value::Str("a"), Value::Str("b")}).ok());
  Install(&ws, R"(
    twohop(X, Y) -> node(X), node(Y).
    twohop(X, Y) <- link(X, Z), link(Z, Y).
  )");
  ASSERT_TRUE(ws.Insert("link", {Value::Str("b"), Value::Str("c")}).ok());
  EXPECT_EQ(QuerySet(ws, "twohop").size(), 1u);
}

TEST(WorkspaceTest, EntityStringComparisonCoercion) {
  Workspace ws;
  Install(&ws, R"(
    principal(X) -> .
    trusted(P) -> principal(P).
    trusted(P) -> P = "ca".
  )");
  ASSERT_TRUE(ws.Insert("trusted", {Value::Str("ca")}).ok());
  auto bad = ws.Apply({{"trusted", {Value::Str("mallory")}}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kConstraintViolation);
}

TEST(WorkspaceTest, SubtypePropagation) {
  Workspace ws;
  Install(&ws, R"(
    animal(X) -> .
    dog(X) -> .
    dog(X) -> animal(X).
    sound(A, S) -> animal(A), string(S).
    barks(D) -> dog(D).
    sound(D, "woof") <- barks(D).
  )");
  ASSERT_TRUE(ws.Insert("barks", {Value::Str("rex")}).ok());
  EXPECT_EQ(QuerySet(ws, "sound").size(), 1u);
  // rex is a member of both dog and animal.
  EXPECT_EQ(QuerySet(ws, "animal").size(), 1u);
}

TEST(WorkspaceTest, TypeErrorsSurfaceAtInstall) {
  Workspace ws;
  // Head var typed string flowing into int position.
  Status st = TryInstall(&ws, R"(
    p(X) -> string(X).
    q(X) -> int(X).
    q(X) <- p(X).
  )");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
}

TEST(WorkspaceTest, PaperTypeSafetyExample) {
  // Paper §2: p(...) <- s(xn) rejected unless s's elements are contained in
  // p's argument type; fixed by declaring the containment s(X) -> qn(X).
  Workspace ws;
  Status bad = TryInstall(&ws, R"(
    qn(X) -> .
    other(X) -> .
    p(X) -> qn(X).
    s(X) -> other(X).
    p(X) <- s(X).
  )");
  EXPECT_FALSE(bad.ok());

  Workspace ws2;
  Status good = TryInstall(&ws2, R"(
    qn(X) -> .
    s(X) -> .
    s(X) -> qn(X).
    p(X) -> qn(X).
    p(X) <- s(X).
  )");
  EXPECT_TRUE(good.ok()) << good.ToString();
}

TEST(WorkspaceTest, StatsTracking) {
  Workspace ws;
  Install(&ws, kGraphSchema);
  ASSERT_TRUE(ws.Insert("link", {Value::Str("a"), Value::Str("b")}).ok());
  ASSERT_TRUE(ws.Insert("link", {Value::Str("b"), Value::Str("c")}).ok());
  EXPECT_GE(ws.stats().transactions, 2u);
  EXPECT_GT(ws.stats().derived_tuples, 0u);
  EXPECT_EQ(ws.tx_durations_us().size(), ws.stats().transactions);
}

TEST(WorkspaceTest, UndeclaredPredicateErrors) {
  Workspace ws;
  Install(&ws, kGraphSchema);
  EXPECT_FALSE(ws.Insert("nosuch", {Value::Int(1)}).ok());
  EXPECT_FALSE(ws.Query("nosuch").ok());
  Status st = TryInstall(&ws, "foo(X) <- bar(X).");
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace secureblox::engine
