// SIMD filter kernels: every variant (scalar, SSE2, AVX2 — as far as the
// host CPU reaches) produces the byte-identical selection vector as a
// reference scalar loop, across tail remainders, unaligned range starts,
// empty/all/none-match inputs, fused multi-column filters, and the
// slot-list (probe) shape. Also pins the SB_SIMD knob resolution.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "engine/kernels.h"

namespace secureblox::engine {
namespace {

/// Every mode the host can actually execute, weakest first.
std::vector<SimdMode> HostModes() {
  std::vector<SimdMode> modes = {SimdMode::kScalar};
  const SimdMode best = DetectSimdMode();
  if (best >= SimdMode::kSse2) modes.push_back(SimdMode::kSse2);
  if (best >= SimdMode::kAvx2) modes.push_back(SimdMode::kAvx2);
  return modes;
}

/// Reference implementation: the loop the kernels must be equivalent to.
std::vector<uint32_t> RefRange(const std::vector<CodeFilter>& filters,
                               uint32_t begin, uint32_t end) {
  std::vector<uint32_t> out;
  for (uint32_t i = begin; i < end; ++i) {
    bool ok = true;
    for (const CodeFilter& f : filters) ok = ok && f.codes[i] == f.code;
    if (ok) out.push_back(i);
  }
  return out;
}

std::vector<uint32_t> RefSelect(const std::vector<CodeFilter>& filters,
                                const std::vector<size_t>& sel) {
  std::vector<uint32_t> out;
  for (size_t s : sel) {
    bool ok = true;
    for (const CodeFilter& f : filters) ok = ok && f.codes[s] == f.code;
    if (ok) out.push_back(static_cast<uint32_t>(s));
  }
  return out;
}

/// Deterministic pseudo-random column contents (no RNG state shared
/// between tests).
std::vector<uint32_t> Column(size_t n, uint32_t cardinality, uint64_t seed) {
  std::vector<uint32_t> col(n);
  for (size_t i = 0; i < n; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    col[i] = static_cast<uint32_t>((seed >> 33) % cardinality);
  }
  return col;
}

TEST(KernelsTest, ModeNamesAndKnobResolution) {
  EXPECT_STREQ(SimdModeName(SimdMode::kScalar), "scalar");
  EXPECT_STREQ(SimdModeName(SimdMode::kSse2), "sse2");
  EXPECT_STREQ(SimdModeName(SimdMode::kAvx2), "avx2");
  EXPECT_EQ(ResolveSimdMode(0), SimdMode::kScalar);
  // 1 (explicit "best") and 2 (auto, the default) resolve identically.
  EXPECT_EQ(ResolveSimdMode(1), DetectSimdMode());
  EXPECT_EQ(ResolveSimdMode(2), DetectSimdMode());
  // Detection is cached and stable.
  EXPECT_EQ(DetectSimdMode(), DetectSimdMode());
}

TEST(KernelsTest, RangeMatchesScalarReferenceAcrossTailsAndOffsets) {
  const std::vector<uint32_t> col = Column(131, /*cardinality=*/4, 0x5eed);
  const std::vector<CodeFilter> filters = {{col.data(), 2}};
  // Lengths straddle both lane widths (4 and 8) plus remainders, and
  // begins are deliberately unaligned relative to the vector width.
  for (uint32_t begin : {0u, 1u, 3u, 5u, 7u, 9u}) {
    for (uint32_t len : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u,
                         31u, 64u, 100u}) {
      const uint32_t end = begin + len;
      ASSERT_LE(end, col.size());
      const std::vector<uint32_t> want = RefRange(filters, begin, end);
      for (SimdMode mode : HostModes()) {
        std::vector<uint32_t> got;
        FilterFusedRange(mode, filters.data(), filters.size(), begin, end,
                         &got);
        EXPECT_EQ(got, want) << "mode=" << SimdModeName(mode)
                             << " begin=" << begin << " len=" << len;
      }
    }
  }
}

TEST(KernelsTest, RangeEmptyAllAndNoneMatch) {
  std::vector<uint32_t> all(37, 9), none(37, 9);
  const std::vector<CodeFilter> match_all = {{all.data(), 9}};
  const std::vector<CodeFilter> match_none = {{none.data(), 7}};
  for (SimdMode mode : HostModes()) {
    std::vector<uint32_t> got;
    FilterFusedRange(mode, match_all.data(), 1, 0, 37, &got);
    EXPECT_EQ(got, RefRange(match_all, 0, 37));
    EXPECT_EQ(got.size(), 37u);
    got.clear();
    FilterFusedRange(mode, match_none.data(), 1, 0, 37, &got);
    EXPECT_TRUE(got.empty());
    // Empty range: nothing emitted, nothing read.
    FilterFusedRange(mode, match_all.data(), 1, 5, 5, &got);
    EXPECT_TRUE(got.empty());
    // nf == 0: the whole range survives.
    FilterFusedRange(mode, nullptr, 0, 3, 7, &got);
    EXPECT_EQ(got, (std::vector<uint32_t>{3, 4, 5, 6}));
    got.clear();
  }
}

TEST(KernelsTest, FusedMultiFilterAndsAllColumns) {
  const size_t n = 97;
  const std::vector<uint32_t> a = Column(n, 3, 1);
  const std::vector<uint32_t> b = Column(n, 3, 2);
  const std::vector<uint32_t> c = Column(n, 3, 3);
  const std::vector<CodeFilter> filters = {
      {a.data(), 1}, {b.data(), 2}, {c.data(), 0}};
  const std::vector<uint32_t> want = RefRange(filters, 0, n);
  ASSERT_FALSE(want.empty());
  ASSERT_LT(want.size(), n);
  for (SimdMode mode : HostModes()) {
    std::vector<uint32_t> got;
    FilterFusedRange(mode, filters.data(), filters.size(), 0, n, &got);
    EXPECT_EQ(got, want) << "mode=" << SimdModeName(mode);
  }
}

TEST(KernelsTest, SelectMatchesScalarReferenceAndPreservesOrder) {
  const std::vector<uint32_t> col = Column(211, 5, 0xfeed);
  const std::vector<CodeFilter> filters = {{col.data(), 3}};
  // Ascending (the probe-bucket shape) and deliberately shuffled lists:
  // output must follow list order either way.
  std::vector<size_t> asc;
  for (size_t i = 0; i < col.size(); i += 3) asc.push_back(i);
  std::vector<size_t> mixed = {200, 7, 7, 42, 0, 199, 13, 210, 1, 64, 33};
  for (const std::vector<size_t>& sel : {asc, mixed, std::vector<size_t>{}}) {
    const std::vector<uint32_t> want = RefSelect(filters, sel);
    for (SimdMode mode : HostModes()) {
      std::vector<uint32_t> got;
      FilterFusedSelect(mode, filters.data(), filters.size(), sel.data(),
                        sel.size(), &got);
      EXPECT_EQ(got, want) << "mode=" << SimdModeName(mode)
                           << " n=" << sel.size();
    }
  }
  // nf == 0 keeps the whole list, remainder tails included.
  for (SimdMode mode : HostModes()) {
    std::vector<uint32_t> got;
    FilterFusedSelect(mode, nullptr, 0, mixed.data(), mixed.size(), &got);
    ASSERT_EQ(got.size(), mixed.size());
    for (size_t i = 0; i < mixed.size(); ++i) {
      EXPECT_EQ(got[i], static_cast<uint32_t>(mixed[i]));
    }
  }
}

TEST(KernelsTest, WideFilterSetsFallBackToScalarPath) {
  // More filters than the SIMD kernels fuse (32): every mode must still
  // agree with the reference loop.
  const size_t n = 50;
  std::vector<std::vector<uint32_t>> cols;
  std::vector<CodeFilter> filters;
  for (int f = 0; f < 40; ++f) {
    cols.push_back(std::vector<uint32_t>(n, 1));
  }
  cols[17][31] = 0;  // knock one slot out through one column
  for (const auto& c : cols) filters.push_back({c.data(), 1});
  const std::vector<uint32_t> want = RefRange(filters, 0, n);
  ASSERT_EQ(want.size(), n - 1);
  for (SimdMode mode : HostModes()) {
    std::vector<uint32_t> got;
    FilterFusedRange(mode, filters.data(), filters.size(), 0, n, &got);
    EXPECT_EQ(got, want) << "mode=" << SimdModeName(mode);
  }
}

TEST(KernelsTest, AppendsWithoutClobberingExistingOutput) {
  std::vector<uint32_t> col(16, 4);
  const std::vector<CodeFilter> filters = {{col.data(), 4}};
  for (SimdMode mode : HostModes()) {
    std::vector<uint32_t> out = {777};
    FilterFusedRange(mode, filters.data(), 1, 0, 4, &out);
    EXPECT_EQ(out, (std::vector<uint32_t>{777, 0, 1, 2, 3}));
    std::vector<size_t> sel = {9, 10};
    FilterFusedSelect(mode, filters.data(), 1, sel.data(), sel.size(), &out);
    EXPECT_EQ(out, (std::vector<uint32_t>{777, 0, 1, 2, 3, 9, 10}));
  }
}

}  // namespace
}  // namespace secureblox::engine
