// Query-driven evaluation (engine/query): magic-sets answers pinned
// byte-identical against the materialized fixpoint across the planner /
// columnar / SIMD / threads / shards knob matrix, including after
// delete-delta churn; memo warm hits; install-after-query reconciliation;
// fallback slices for aggregates and negation; and the NodeRuntime
// query-serving front end under concurrent readers.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datalog/parser.h"
#include "dist/runtime.h"
#include "engine/query.h"
#include "engine/workspace.h"
#include "policy/says_policy.h"

namespace secureblox::engine {
namespace {

using datalog::Value;

void Install(Workspace* ws, const std::string& src) {
  auto program = datalog::Parse(src);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Status st = ws->Install(program.value());
  ASSERT_TRUE(st.ok()) << st.ToString();
}

std::set<std::string> Render(const std::vector<Tuple>& tuples,
                             const Workspace& ws) {
  std::set<std::string> out;
  for (const Tuple& t : tuples) out.insert(TupleToString(t, ws.catalog()));
  return out;
}

// Answers the query engine should produce, computed the slow way from a
// fully materialized workspace: scan the relation, filter on the bound
// positions (entity labels resolved through the catalog, exactly like
// QueryEngine::Resolve).
std::set<std::string> ExpectedSet(
    Workspace& ws, const std::string& pred,
    const std::vector<std::optional<Value>>& args) {
  auto pid = ws.catalog().Lookup(pred);
  EXPECT_TRUE(pid.ok());
  const datalog::PredicateDecl& decl = ws.catalog().decl(pid.value());
  std::vector<std::optional<Value>> bound(args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    if (!args[i].has_value()) continue;
    const datalog::PredicateDecl& t = ws.catalog().decl(decl.arg_types[i]);
    if (t.is_entity_type && args[i]->kind() == datalog::ValueKind::kString) {
      auto e = ws.catalog().FindEntity(decl.arg_types[i], args[i]->AsString());
      if (!e.ok()) return {};  // unknown label: no answers
      bound[i] = e.value();
    } else {
      bound[i] = *args[i];
    }
  }
  auto rows = ws.Query(pred);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  std::set<std::string> out;
  for (const Tuple& t : rows.value()) {
    bool match = true;
    for (size_t i = 0; i < t.size() && match; ++i) {
      if (bound[i].has_value() && !(t[i] == *bound[i])) match = false;
    }
    if (match) out.insert(TupleToString(t, ws.catalog()));
  }
  return out;
}

std::set<std::string> QueryAnswers(QueryEngine* qe, Workspace& ws,
                                   const QueryGoal& goal) {
  auto rows = qe->Query(goal);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  if (!rows.ok()) return {};
  return Render(rows.value(), ws);
}

const char* kGraphSchema = R"(
node(X) -> .
link(X, Y) -> node(X), node(Y).
reachable(X, Y) -> node(X), node(Y).
reachable(X, Y) <- link(X, Y).
reachable(X, Y) <- link(X, Z), reachable(Z, Y).
)";

std::vector<FactUpdate> LineLinks(int n) {
  std::vector<FactUpdate> out;
  for (int i = 0; i + 1 < n; ++i) {
    out.push_back({"link",
                   {Value::Str("v" + std::to_string(i)),
                    Value::Str("v" + std::to_string(i + 1))}});
  }
  return out;
}

// An unrelated second subsystem: querying `reachable` must not touch it.
const char* kSecondSubsystem = R"(
wire(X, Y) -> node(X), node(Y).
connected(X, Y) -> node(X), node(Y).
connected(X, Y) <- wire(X, Y).
connected(X, Y) <- wire(X, Z), connected(Z, Y).
)";

TEST(QueryTest, PointQueryMatchesFixpoint) {
  Workspace mat;
  Install(&mat, kGraphSchema);
  Install(&mat, kSecondSubsystem);
  ASSERT_TRUE(mat.Apply(LineLinks(6)).ok());
  ASSERT_TRUE(
      mat.Apply({{"wire", {Value::Str("w0"), Value::Str("w1")}},
                 {"wire", {Value::Str("w1"), Value::Str("w2")}}}).ok());

  Workspace qws;
  qws.set_defer_rules(true);
  Install(&qws, kGraphSchema);
  Install(&qws, kSecondSubsystem);
  ASSERT_TRUE(qws.Apply(LineLinks(6)).ok());
  ASSERT_TRUE(
      qws.Apply({{"wire", {Value::Str("w0"), Value::Str("w1")}},
                 {"wire", {Value::Str("w1"), Value::Str("w2")}}}).ok());
  QueryEngine qe(&qws);

  std::vector<std::vector<std::optional<Value>>> goals = {
      {Value::Str("v0"), std::nullopt},              // bf
      {std::nullopt, Value::Str("v5")},              // fb
      {Value::Str("v1"), Value::Str("v4")},          // bb
      {Value::Str("v4"), Value::Str("v1")},          // bb, empty
      {Value::Str("nosuch"), std::nullopt},          // unknown label
  };
  for (const auto& args : goals) {
    EXPECT_EQ(QueryAnswers(&qe, qws, {"reachable", args}),
              ExpectedSet(mat, "reachable", args));
  }
  // The queries only demanded the reachable slice: the second subsystem's
  // closure stays unmaterialized in the query-serving workspace.
  EXPECT_EQ(ExpectedSet(mat, "connected", {std::nullopt, std::nullopt}).size(),
            3u);
  auto connected = qws.catalog().Lookup("connected");
  ASSERT_TRUE(connected.ok());
  const Relation* rel = qws.GetRelationIfExists(connected.value());
  EXPECT_TRUE(rel == nullptr || rel->AllTuples().empty());
}

TEST(QueryTest, AllFreeGoalFallsBackToFullSlice) {
  Workspace mat;
  Install(&mat, kGraphSchema);
  ASSERT_TRUE(mat.Apply(LineLinks(5)).ok());

  Workspace qws;
  qws.set_defer_rules(true);
  Install(&qws, kGraphSchema);
  ASSERT_TRUE(qws.Apply(LineLinks(5)).ok());
  QueryEngine qe(&qws);

  std::vector<std::optional<Value>> free2 = {std::nullopt, std::nullopt};
  EXPECT_EQ(QueryAnswers(&qe, qws, {"reachable", free2}),
            ExpectedSet(mat, "reachable", free2));
  EXPECT_GE(qe.stats().full_slices, 1u);
  // The full slice marks the predicate complete; a later bound goal is a
  // probe, not a new install.
  uint64_t installs = qe.stats().slices_installed;
  std::vector<std::optional<Value>> bf = {Value::Str("v0"), std::nullopt};
  EXPECT_EQ(QueryAnswers(&qe, qws, {"reachable", bf}),
            ExpectedSet(mat, "reachable", bf));
  EXPECT_EQ(qe.stats().slices_installed, installs);
}

// The acceptance gate: answers are byte-identical (same rendered strings,
// same sorted order) across planner x columnar x SIMD x threads x shards,
// including after delete-delta churn.
TEST(QueryTest, KnobMatrixDifferential) {
  Workspace mat;
  Install(&mat, kGraphSchema);
  ASSERT_TRUE(mat.Apply(LineLinks(6)).ok());
  // Churn on the reference too: drop one edge, add a shortcut.
  auto churn_del = FactUpdate{"link", {Value::Str("v2"), Value::Str("v3")}};
  auto churn_add = FactUpdate{"link", {Value::Str("v1"), Value::Str("v4")}};
  std::vector<std::optional<Value>> bf = {Value::Str("v0"), std::nullopt};
  std::vector<std::optional<Value>> fb = {std::nullopt, Value::Str("v5")};
  auto before_del = ExpectedSet(mat, "reachable", bf);
  ASSERT_TRUE(mat.Apply({churn_add}, {churn_del}).ok());
  auto after_bf = ExpectedSet(mat, "reachable", bf);
  auto after_fb = ExpectedSet(mat, "reachable", fb);
  ASSERT_NE(before_del, after_bf);  // the churn must actually change answers

  std::vector<std::string> first_bf, first_fb;
  bool have_first = false;
  for (int threads : {1, 4}) {
    for (size_t shards : {size_t{1}, size_t{7}}) {
      for (int mask = 0; mask < 8; ++mask) {
        Workspace qws;
        qws.set_defer_rules(true);
        qws.fixpoint_options().threads = threads;
        qws.fixpoint_options().shards = shards;
        qws.fixpoint_options().plan = (mask & 1) != 0;
        qws.fixpoint_options().columnar = (mask & 2) != 0;
        qws.fixpoint_options().simd = (mask & 4) ? 1 : 0;
        Install(&qws, kGraphSchema);
        ASSERT_TRUE(qws.Apply(LineLinks(6)).ok());
        QueryEngine qe(&qws);
        EXPECT_EQ(QueryAnswers(&qe, qws, {"reachable", bf}), before_del);
        ASSERT_TRUE(qws.Apply({churn_add}, {churn_del}).ok());
        auto rows_bf = qe.Query({"reachable", bf});
        auto rows_fb = qe.Query({"reachable", fb});
        ASSERT_TRUE(rows_bf.ok() && rows_fb.ok());
        EXPECT_EQ(Render(rows_bf.value(), qws), after_bf);
        EXPECT_EQ(Render(rows_fb.value(), qws), after_fb);
        // Byte-identical including order, across every knob combination.
        std::vector<std::string> r_bf, r_fb;
        for (const Tuple& t : rows_bf.value()) {
          r_bf.push_back(TupleToString(t, qws.catalog()));
        }
        for (const Tuple& t : rows_fb.value()) {
          r_fb.push_back(TupleToString(t, qws.catalog()));
        }
        if (!have_first) {
          first_bf = r_bf;
          first_fb = r_fb;
          have_first = true;
        } else {
          EXPECT_EQ(r_bf, first_bf) << "threads=" << threads
                                    << " shards=" << shards
                                    << " mask=" << mask;
          EXPECT_EQ(r_fb, first_fb);
        }
      }
    }
  }
}

TEST(QueryTest, DeleteChurnInvalidatesMemo) {
  Workspace qws;
  qws.set_defer_rules(true);
  Install(&qws, kGraphSchema);
  ASSERT_TRUE(qws.Apply(LineLinks(5)).ok());
  QueryEngine qe(&qws);

  std::vector<std::optional<Value>> bf = {Value::Str("v0"), std::nullopt};
  EXPECT_EQ(QueryAnswers(&qe, qws, {"reachable", bf}).size(), 4u);
  // Warm repeat: answered from the snapshot.
  auto warm = qe.TryWarm({"reachable", bf});
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->size(), 4u);

  // Cut the line at v2 -> v3: the slice's delete deltas retract the
  // dependent closure, and the version-stamp epoch stales the snapshot.
  ASSERT_TRUE(
      qws.Apply({}, {{"link", {Value::Str("v2"), Value::Str("v3")}}}).ok());
  EXPECT_FALSE(qe.TryWarm({"reachable", bf}).has_value());
  EXPECT_EQ(QueryAnswers(&qe, qws, {"reachable", bf}).size(), 2u);

  // Restore the edge: answers come back, again through the delta path.
  ASSERT_TRUE(
      qws.Apply({{"link", {Value::Str("v2"), Value::Str("v3")}}}).ok());
  EXPECT_EQ(QueryAnswers(&qe, qws, {"reachable", bf}).size(), 4u);
  EXPECT_GE(qe.stats().warm_hits, 1u);
}

TEST(QueryTest, AnswerCapEvictsSnapshotsNeverAnswers) {
  Workspace qws;
  qws.set_defer_rules(true);
  Install(&qws, kGraphSchema);
  ASSERT_TRUE(qws.Apply(LineLinks(6)).ok());
  QueryEngine qe(&qws);
  qe.set_answer_cap(2);
  EXPECT_EQ(qe.answer_cap(), 2u);

  // Five distinct bound patterns against a cap of two.
  auto goal = [](int i) -> QueryGoal {
    return {"reachable", {Value::Str("v" + std::to_string(i)), std::nullopt}};
  };
  std::vector<std::set<std::string>> first;
  for (int i = 0; i < 5; ++i) {
    first.push_back(QueryAnswers(&qe, qws, goal(i)));
    EXPECT_EQ(first.back(), ExpectedSet(qws, "reachable", goal(i).args))
        << "v" << i;
  }
  EXPECT_EQ(qe.stats().answer_evictions, 3u);

  // The two most recently stored snapshots survive as warm pure reads;
  // evicted goals miss TryWarm — but the exclusive path still answers
  // them identically. Eviction moves cold/warm accounting, nothing else.
  EXPECT_TRUE(qe.TryWarm(goal(4)).has_value());
  EXPECT_TRUE(qe.TryWarm(goal(3)).has_value());
  EXPECT_FALSE(qe.TryWarm(goal(0)).has_value());
  uint64_t warm_before = qe.stats().warm_hits;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(QueryAnswers(&qe, qws, goal(i)), first[i]) << "v" << i;
  }
  EXPECT_GE(qe.stats().answer_evictions, 6u);  // churned through the cap
  EXPECT_EQ(qe.stats().warm_hits, warm_before);  // all five went cold

  // Re-storing an already-cached goal refreshes its recency instead of
  // duplicating it: cap 2, repeat v4 then add v0 -> v3 evicted, v4 kept.
  QueryAnswers(&qe, qws, goal(4));
  QueryAnswers(&qe, qws, goal(3));
  QueryAnswers(&qe, qws, goal(4));
  QueryAnswers(&qe, qws, goal(0));
  EXPECT_TRUE(qe.TryWarm(goal(4)).has_value());
  EXPECT_TRUE(qe.TryWarm(goal(0)).has_value());
  EXPECT_FALSE(qe.TryWarm(goal(3)).has_value());

  // Lifting the cap restores unbounded memoization.
  qe.set_answer_cap(0);
  for (int i = 0; i < 5; ++i) QueryAnswers(&qe, qws, goal(i));
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(qe.TryWarm(goal(i)).has_value()) << "v" << i;
  }
}

TEST(QueryTest, InstallAfterQueriesReconciles) {
  const char* schema = R"(
node(X) -> .
link(X, Y) -> node(X), node(Y).
shortcut(X, Y) -> node(X), node(Y).
reachable(X, Y) -> node(X), node(Y).
reachable(X, Y) <- link(X, Y).
reachable(X, Y) <- link(X, Z), reachable(Z, Y).
)";
  const char* late = "link(X, Y) <- shortcut(X, Y).\n";
  auto shortcut = FactUpdate{"shortcut",
                             {Value::Str("v3"), Value::Str("v0")}};
  Workspace qws;
  qws.set_defer_rules(true);
  Install(&qws, schema);
  ASSERT_TRUE(qws.Apply(LineLinks(4)).ok());
  ASSERT_TRUE(qws.Apply({shortcut}).ok());
  QueryEngine qe(&qws);

  std::vector<std::optional<Value>> bf = {Value::Str("v0"), std::nullopt};
  EXPECT_EQ(QueryAnswers(&qe, qws, {"reachable", bf}).size(), 3u);

  // A later Install appends a rule that closes the cycle through the
  // pre-existing shortcut fact. `link` was EDB when the slice was
  // installed and becomes IDB here — the reconcile must pick up the new
  // producer over pre-existing data. (Unlike the bottom-up engine, where
  // a late Install only applies to future deltas, the query front end is
  // declarative: answers reflect the full rule set over the current base
  // facts — the reference installs every rule before the data.)
  Install(&qws, late);

  Workspace mat;
  Install(&mat, schema);
  Install(&mat, late);
  ASSERT_TRUE(mat.Apply(LineLinks(4)).ok());
  ASSERT_TRUE(mat.Apply({shortcut}).ok());
  auto expected = ExpectedSet(mat, "reachable", bf);
  EXPECT_GT(expected.size(), 3u);  // the new rule must widen the answers
  EXPECT_EQ(QueryAnswers(&qe, qws, {"reachable", bf}), expected);
}

TEST(QueryTest, AggregateSliceFallsBackUnguarded) {
  const char* src = R"(
node(X) -> .
link(X, Y) -> node(X), node(Y).
outdeg[X] = C -> node(X), int(C).
outdeg[X] = C <- agg<< C = count() >> link(X, _).
)";
  Workspace mat;
  Install(&mat, src);
  ASSERT_TRUE(mat.Apply(LineLinks(5)).ok());
  ASSERT_TRUE(
      mat.Apply({{"link", {Value::Str("v0"), Value::Str("v2")}}}).ok());

  Workspace qws;
  qws.set_defer_rules(true);
  Install(&qws, src);
  ASSERT_TRUE(qws.Apply(LineLinks(5)).ok());
  ASSERT_TRUE(
      qws.Apply({{"link", {Value::Str("v0"), Value::Str("v2")}}}).ok());
  QueryEngine qe(&qws);

  std::vector<std::optional<Value>> bf = {Value::Str("v0"), std::nullopt};
  EXPECT_EQ(QueryAnswers(&qe, qws, {"outdeg", bf}),
            ExpectedSet(mat, "outdeg", bf));
  EXPECT_GE(qe.stats().full_slices, 1u);
}

TEST(QueryTest, NegatedIdbSliceFallsBackUnguarded) {
  const char* src = R"(
node(X) -> .
link(X, Y) -> node(X), node(Y).
reachable(X, Y) -> node(X), node(Y).
reachable(X, Y) <- link(X, Y).
reachable(X, Y) <- link(X, Z), reachable(Z, Y).
unreachable(X, Y) -> node(X), node(Y).
unreachable(X, Y) <- node(X), node(Y), !reachable(X, Y).
)";
  Workspace mat;
  Install(&mat, src);
  ASSERT_TRUE(mat.Apply(LineLinks(4)).ok());

  Workspace qws;
  qws.set_defer_rules(true);
  Install(&qws, src);
  ASSERT_TRUE(qws.Apply(LineLinks(4)).ok());
  QueryEngine qe(&qws);

  std::vector<std::optional<Value>> bf = {Value::Str("v2"), std::nullopt};
  EXPECT_EQ(QueryAnswers(&qe, qws, {"unreachable", bf}),
            ExpectedSet(mat, "unreachable", bf));
  EXPECT_GE(qe.stats().full_slices, 1u);
  // Positive slices stay guarded even in the same workspace.
  std::vector<std::optional<Value>> r = {Value::Str("v0"), std::nullopt};
  EXPECT_EQ(QueryAnswers(&qe, qws, {"reachable", r}),
            ExpectedSet(mat, "reachable", r));
}

TEST(QueryTest, EdbGoalAndMaterializedWorkspaceProbe) {
  Workspace ws;  // materialized: queries degrade to filtered scans
  Install(&ws, kGraphSchema);
  ASSERT_TRUE(ws.Apply(LineLinks(4)).ok());
  QueryEngine qe(&ws);
  std::vector<std::optional<Value>> bf = {Value::Str("v1"), std::nullopt};
  EXPECT_EQ(QueryAnswers(&qe, ws, {"reachable", bf}),
            ExpectedSet(ws, "reachable", bf));
  EXPECT_EQ(QueryAnswers(&qe, ws, {"link", bf}),
            ExpectedSet(ws, "link", bf));
  // EDB goals on a deferred workspace are plain probes too.
  Workspace qws;
  qws.set_defer_rules(true);
  Install(&qws, kGraphSchema);
  ASSERT_TRUE(qws.Apply(LineLinks(4)).ok());
  QueryEngine dqe(&qws);
  EXPECT_EQ(QueryAnswers(&dqe, qws, {"link", bf}),
            ExpectedSet(ws, "link", bf));
}

TEST(QueryTest, GoalErrorsAreReported) {
  Workspace qws;
  qws.set_defer_rules(true);
  Install(&qws, kGraphSchema);
  QueryEngine qe(&qws);
  EXPECT_FALSE(qe.Query({"nosuchpred", {}}).ok());
  EXPECT_FALSE(qe.Query({"reachable", {Value::Str("v0")}}).ok());  // arity
  EXPECT_FALSE(
      qe.Query({"reachable", {Value::Int(3), std::nullopt}}).ok());  // type
}

}  // namespace
}  // namespace secureblox::engine

namespace secureblox::dist {
namespace {

using datalog::Value;
using engine::FactUpdate;

// NodeRuntime in query-serving mode: concurrent warm queries between
// transactions, and exclusion against Apply.
TEST(QueryTest, NodeRuntimeServesConcurrentQueries) {
  policy::SaysPolicyOptions opts;
  opts.auth = policy::AuthScheme::kNone;
  opts.enc = policy::EncScheme::kNone;
  opts.accept = policy::AcceptMode::kBenign;
  const char* app = R"(
link(X, Y) -> principal(X), principal(Y).
reachable(X, Y) -> principal(X), principal(Y).
reachable(X, Y) <- link(X, Y).
reachable(X, Y) <- link(X, Z), reachable(Z, Y).
)";
  std::vector<std::string> principals = {"alice", "bob"};
  policy::CredentialAuthority::Options copts;
  copts.rsa_bits = 512;
  copts.seed = "query-test";
  policy::CredentialAuthority authority(principals, copts);

  NodeRuntime::Config cfg;
  cfg.index = 0;
  cfg.principals = principals;
  cfg.creds = authority.IssueFor("alice").value();
  cfg.query_mode = true;
  auto rt = NodeRuntime::Create(
      std::move(cfg),
      {policy::PreludeSource(), app, policy::SaysPolicySource(opts)});
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  NodeRuntime& node = **rt;

  std::vector<FactUpdate> links;
  for (int i = 0; i + 1 < 6; ++i) {
    links.push_back({"link",
                     {Value::Str("p" + std::to_string(i)),
                      Value::Str("p" + std::to_string(i + 1))}});
  }
  ASSERT_TRUE(node.InsertLocal(links).ok());

  engine::QueryGoal goal{"reachable", {Value::Str("p0"), std::nullopt}};
  auto first = node.Query(goal);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->size(), 5u);

  // Concurrent readers racing a mutating transaction; every read must see
  // a consistent pre- or post-churn answer set (5 or 3 tuples).
  std::atomic<bool> bad{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&node, &goal, &bad] {
      for (int i = 0; i < 50; ++i) {
        auto rows = node.Query(goal);
        if (!rows.ok() || (rows->size() != 5 && rows->size() != 3)) {
          bad = true;
          return;
        }
      }
    });
  }
  auto churn = node.ApplyLocal(
      {}, {{"link", {Value::Str("p3"), Value::Str("p4")}}});
  ASSERT_TRUE(churn.ok()) << churn.status().ToString();
  for (auto& th : readers) th.join();
  EXPECT_FALSE(bad.load());

  auto after = node.Query(goal);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 3u);
  EXPECT_GE(node.query_stats().warm_hits, 1u);
}

}  // namespace
}  // namespace secureblox::dist
