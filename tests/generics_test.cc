// BloxGenerics compiler: says generation, V* expansion, types[T],
// generic constraints (the paper's exportable example), non-termination
// caps, meta relations, and end-to-end execution of generated code.
#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "engine/workspace.h"
#include "generics/compiler.h"

namespace secureblox::generics {
namespace {

using datalog::Parse;
using datalog::Program;
using datalog::Value;

Result<ExpansionResult> Expand(const std::string& src) {
  auto program = Parse(src);
  if (!program.ok()) return program.status();
  BloxGenericsCompiler compiler;
  return compiler.Compile(program.value());
}

ExpansionResult ExpandOrDie(const std::string& src) {
  auto r = Expand(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : ExpansionResult{};
}

// The paper's §3.2 says declaration, guarded by exportable (§4.1.4).
const char* kSaysPolicy = R"(
says[T] = ST, predicate(ST),
`{
  ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*).
}
<-- predicate(T), exportable(T).
)";

const char* kGraphSchema = R"(
node(X) -> .
principal(X) -> .
link(X, Y) -> node(X), node(Y).
reachable(X, Y) -> node(X), node(Y).
reachable(X, Y) <- link(X, Y).
)";

TEST(GenericsTest, SaysGeneratesSaidPredicate) {
  ExpansionResult r = ExpandOrDie(std::string(kGraphSchema) + kSaysPolicy +
                                  "exportable(`reachable).\n");
  ASSERT_EQ(r.generated_predicates.size(), 1u);
  EXPECT_EQ(r.generated_predicates[0], "says$reachable");
  // The declaring constraint for says$reachable was generated with V*
  // expanded to reachable's arity (2) and its types (node, node).
  std::string text = r.program.ToString();
  EXPECT_NE(text.find("says$reachable(P1, P2, V$0, V$1) -> principal(P1), "
                      "principal(P2), node(V$0), node(V$1)"),
            std::string::npos)
      << text;
  // Meta database records says[reachable] = says$reachable.
  EXPECT_EQ(r.meta.LookupValue("says", {"reachable"}).value(),
            "says$reachable");
}

TEST(GenericsTest, VarargArityTracksSubjectPredicate) {
  ExpansionResult r = ExpandOrDie(R"(
    principal(X) -> .
    triple(X, Y, Z) -> int(X), int(Y), int(Z).
    exportable(`triple).
  )" + std::string(kSaysPolicy));
  std::string text = r.program.ToString();
  EXPECT_NE(text.find("says$triple(P1, P2, V$0, V$1, V$2)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("int(V$0), int(V$1), int(V$2)"), std::string::npos);
}

TEST(GenericsTest, OneTemplatePerExportablePredicate) {
  ExpansionResult r = ExpandOrDie(R"(
    principal(X) -> .
    a(X) -> int(X).
    b(X, Y) -> int(X), int(Y).
    c(X) -> int(X).
    exportable(`a).
    exportable(`b).
  )" + std::string(kSaysPolicy));
  // Only the exportable predicates get said versions.
  EXPECT_EQ(r.generated_predicates.size(), 2u);
  auto says_a = r.meta.LookupValue("says", {"a"});
  auto says_b = r.meta.LookupValue("says", {"b"});
  auto says_c = r.meta.LookupValue("says", {"c"});
  EXPECT_TRUE(says_a.ok());
  EXPECT_TRUE(says_b.ok());
  EXPECT_FALSE(says_c.ok());
}

TEST(GenericsTest, PaperExportableConstraintRejectsUnguardedSays) {
  // Paper §4.1.4: with the generic constraint `says(T,ST) --> exportable(T)`
  // and an unguarded says rule, the compiler must reject the program.
  auto r = Expand(std::string(kGraphSchema) + R"(
    says[T] = ST, predicate(ST) <-- predicate(T), user_pred(T).
    user_pred(`reachable).
    user_pred(`link).
    exportable(`reachable).
    says(T, ST) --> exportable(T).
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCompileError);
  EXPECT_NE(r.status().message().find("generic constraint violated"),
            std::string::npos)
      << r.status().message();
}

TEST(GenericsTest, PaperExportableConstraintAcceptsGuardedSays) {
  // The fix from the paper: guard the rule body with exportable(T).
  auto r = Expand(std::string(kGraphSchema) + R"(
    says[T] = ST, predicate(ST) <-- predicate(T), exportable(T).
    exportable(`reachable).
    says(T, ST) --> exportable(T).
  )");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(GenericsTest, NonTerminatingMetaProgramHitsCompileTimeCap) {
  // says of says of says ... — predicate(ST) feeds the rule's own body.
  auto r = Expand(R"(
    p(X) -> int(X).
    says[T] = ST, predicate(ST) <-- predicate(T).
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCompileError);
}

TEST(GenericsTest, ParameterizedAtomResolution) {
  ExpansionResult r = ExpandOrDie(std::string(kGraphSchema) + kSaysPolicy + R"(
    exportable(`reachable).
    reachable(X, Y) <- says[`reachable](Z, S, X, Y), link(Z, S).
  )");
  std::string text = r.program.ToString();
  EXPECT_NE(text.find("says$reachable(Z, S, X, Y)"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("says["), std::string::npos);  // nothing unresolved
}

TEST(GenericsTest, UnresolvableParameterizedAtomFails) {
  auto r = Expand(std::string(kGraphSchema) + kSaysPolicy + R"(
    reachable(X, Y) <- says[`reachable](Z, S, X, Y), link(Z, S).
  )");  // note: no exportable(`reachable) fact
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("exportable"), std::string::npos);
}

TEST(GenericsTest, BuiltinFamilyMangling) {
  // Parameterized atoms over non-generic names mangle to $-joined names
  // (per-predicate builtin families like serialize).
  ExpansionResult r = ExpandOrDie(R"(
    p(X) -> int(X).
    out(X) -> blob(X).
    out(B) <- p(X), serialize[`p](X, B).
  )");
  std::string text = r.program.ToString();
  EXPECT_NE(text.find("serialize$p(X, B)"), std::string::npos) << text;
}

TEST(GenericsTest, TemplateRulesGenerateAcceptance) {
  // Paper §6.1 trust delegation: accept facts from trustworthy principals.
  ExpansionResult r = ExpandOrDie(std::string(kGraphSchema) + R"(
    trustworthy(P) -> principal(P).
    says[T] = ST, predicate(ST),
    `{
      ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*).
      T(V*) <- ST(P, S, V*), trustworthy(P).
    }
    <-- predicate(T), exportable(T).
    exportable(`reachable).
  )");
  std::string text = r.program.ToString();
  EXPECT_NE(
      text.find(
          "reachable(V$0, V$1) <- says$reachable(P, S, V$0, V$1), "
          "trustworthy(P)."),
      std::string::npos)
      << text;
}

TEST(GenericsTest, EndToEndGeneratedCodeRuns) {
  ExpansionResult r = ExpandOrDie(std::string(kGraphSchema) + R"(
    trustworthy(P) -> principal(P).
    says[T] = ST, predicate(ST),
    `{
      ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*).
      T(V*) <- ST(P, S, V*), trustworthy(P).
    }
    <-- predicate(T), exportable(T).
    exportable(`reachable).
  )");
  engine::Workspace ws;
  Status st = ws.Install(r.program);
  ASSERT_TRUE(st.ok()) << st.ToString();

  // A fact said by an untrusted principal is stored but not accepted.
  ASSERT_TRUE(ws.Insert("says$reachable",
                        {Value::Str("mallory"), Value::Str("me"),
                         Value::Str("n1"), Value::Str("n2")})
                  .ok());
  EXPECT_EQ(ws.Query("reachable").value().size(), 0u);

  // Once the principal is trusted, the same said fact is accepted.
  ASSERT_TRUE(ws.Insert("trustworthy", {Value::Str("mallory")}).ok());
  EXPECT_EQ(ws.Query("reachable").value().size(), 1u);
}

TEST(GenericsTest, GeneratedConstraintEnforcedAtRuntime) {
  // writeAccess authorization (paper §3.2): a said fact from a principal
  // without write access aborts the transaction.
  ExpansionResult r = ExpandOrDie(std::string(kGraphSchema) + R"(
    says[T] = ST, predicate(ST), writeAccess[T] = WT, predicate(WT),
    `{
      ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*).
      WT(P) -> principal(P).
      ST(P1, P2, V*) -> WT(P1).
    }
    <-- predicate(T), exportable(T).
    exportable(`reachable).
  )");
  engine::Workspace ws;
  Status st = ws.Install(r.program);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(
      ws.Insert("writeAccess$reachable", {Value::Str("alice")}).ok());

  EXPECT_TRUE(ws.Insert("says$reachable",
                        {Value::Str("alice"), Value::Str("me"),
                         Value::Str("n1"), Value::Str("n2")})
                  .ok());
  auto denied = ws.Apply({{"says$reachable",
                           {Value::Str("mallory"), Value::Str("me"),
                            Value::Str("n1"), Value::Str("n3")}}});
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(ws.Query("says$reachable").value().size(), 1u);
}

TEST(GenericsTest, RuleMetaRelationsPopulated) {
  ExpansionResult r = ExpandOrDie(std::string(kGraphSchema));
  EXPECT_EQ(r.meta.Tuples("rule").size(), 1u);  // the reachable rule
  ASSERT_EQ(r.meta.Tuples("ruleHead").size(), 1u);
  EXPECT_EQ(r.meta.Tuples("ruleHead")[0][1], "reachable");
  ASSERT_EQ(r.meta.Tuples("ruleBody").size(), 1u);
  EXPECT_EQ(r.meta.Tuples("ruleBody")[0][1], "link");
}

TEST(GenericsTest, MetaRelationsOverRules) {
  // Generic rules can compute over the rule structure: flag predicates
  // that are derived by some rule.
  ExpansionResult r = ExpandOrDie(std::string(kGraphSchema) + R"(
    derived(P) <-- rule(R), ruleHead(R, P).
  )");
  ASSERT_EQ(r.meta.Tuples("derived").size(), 1u);
  EXPECT_EQ(r.meta.Tuples("derived")[0][0], "reachable");
}

TEST(GenericsTest, InconsistentGenericPredicateShapeRejected) {
  auto r = Expand(R"(
    p(X) -> int(X).
    exportable(`p).
    exportable(`p, `p).
  )");
  EXPECT_FALSE(r.ok());
}

TEST(GenericsTest, ExpansionIsDeterministicAndDeduplicated) {
  std::string src = std::string(kGraphSchema) + kSaysPolicy +
                    "exportable(`reachable).\n";
  ExpansionResult a = ExpandOrDie(src);
  ExpansionResult b = ExpandOrDie(src);
  EXPECT_EQ(a.program.ToString(), b.program.ToString());
  // Same constraint generated once despite fixpoint revisits.
  std::string text = a.program.ToString();
  size_t first = text.find("says$reachable(P1, P2");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("says$reachable(P1, P2", first + 1), std::string::npos);
}

TEST(GenericsTest, ProgramWithoutGenericsPassesThrough) {
  ExpansionResult r = ExpandOrDie(std::string(kGraphSchema));
  EXPECT_TRUE(r.generated_predicates.empty());
  auto parsed = Parse(kGraphSchema).value();
  EXPECT_EQ(r.program.rules.size(), parsed.rules.size());
  EXPECT_EQ(r.program.constraints.size(), parsed.constraints.size());
}

}  // namespace
}  // namespace secureblox::generics
