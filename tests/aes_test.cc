// AES-128 block cipher against FIPS-197 / SP 800-38A vectors, and CTR-mode
// round trips.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/random.h"
#include "crypto/aes.h"

namespace secureblox::crypto {
namespace {

Bytes H(const std::string& hex) { return FromHex(hex).value(); }

TEST(Aes128Test, Fips197AppendixC) {
  Bytes key = H("000102030405060708090a0b0c0d0e0f");
  Bytes block = H("00112233445566778899aabbccddeeff");
  Aes128 aes = Aes128::Create(key).value();
  aes.EncryptBlock(block.data());
  EXPECT_EQ(ToHex(block), "69c4e0d86a7b0430d8cdb78070b4c55a");
  aes.DecryptBlock(block.data());
  EXPECT_EQ(ToHex(block), "00112233445566778899aabbccddeeff");
}

TEST(Aes128Test, Sp80038aEcbVector) {
  // SP 800-38A F.1.1 ECB-AES128.Encrypt, block #1.
  Bytes key = H("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes block = H("6bc1bee22e409f96e93d7e117393172a");
  Aes128 aes = Aes128::Create(key).value();
  aes.EncryptBlock(block.data());
  EXPECT_EQ(ToHex(block), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128Test, Sp80038aCtrVector) {
  // SP 800-38A F.5.1 CTR-AES128.Encrypt, blocks #1-#2. Our format prefixes
  // the nonce, so strip the first 16 bytes before comparing.
  Bytes key = H("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes ctr = H("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Bytes pt = H(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  Bytes ct = AesCtrEncrypt(key, ctr, pt).value();
  EXPECT_EQ(ToHex(Bytes(ct.begin() + 16, ct.end())),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff");
}

TEST(Aes128Test, RejectsBadKeySize) {
  EXPECT_FALSE(Aes128::Create(Bytes(15, 0)).ok());
  EXPECT_FALSE(Aes128::Create(Bytes(17, 0)).ok());
  EXPECT_FALSE(Aes128::Create({}).ok());
}

TEST(AesCtrTest, RoundTripVariousLengths) {
  Bytes key = H("000102030405060708090a0b0c0d0e0f");
  Bytes nonce(16, 0x42);
  Xoshiro256 rng(7);
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 100u, 4096u}) {
    Bytes pt(len);
    for (auto& b : pt) b = static_cast<uint8_t>(rng.Next());
    Bytes ct = AesCtrEncrypt(key, nonce, pt).value();
    EXPECT_EQ(ct.size(), len + 16);
    Bytes back = AesCtrDecrypt(key, ct).value();
    EXPECT_EQ(back, pt) << "len=" << len;
  }
}

TEST(AesCtrTest, DifferentNoncesProduceDifferentCiphertexts) {
  Bytes key(16, 0x11);
  Bytes pt(64, 0xAB);
  Bytes ct1 = AesCtrEncrypt(key, Bytes(16, 0x01), pt).value();
  Bytes ct2 = AesCtrEncrypt(key, Bytes(16, 0x02), pt).value();
  EXPECT_NE(ToHex(ct1), ToHex(ct2));
}

TEST(AesCtrTest, WrongKeyDecryptsToGarbage) {
  Bytes pt = BytesFromString("attack at dawn!!");
  Bytes ct = AesCtrEncrypt(Bytes(16, 0x01), Bytes(16, 0x00), pt).value();
  Bytes back = AesCtrDecrypt(Bytes(16, 0x02), ct).value();
  EXPECT_NE(back, pt);
}

TEST(AesCtrTest, RejectsBadNonceAndShortCiphertext) {
  Bytes key(16, 0);
  EXPECT_FALSE(AesCtrEncrypt(key, Bytes(8, 0), {}).ok());
  EXPECT_FALSE(AesCtrDecrypt(key, Bytes(15, 0)).ok());
}

TEST(AesCtrTest, CiphertextIsNotPlaintext) {
  Bytes key(16, 0x55);
  Bytes pt(128, 0x00);
  Bytes ct = AesCtrEncrypt(key, Bytes(16, 0x77), pt).value();
  // Keystream of zero plaintext == raw keystream; must not be all zeros.
  bool any_nonzero = false;
  for (size_t i = 16; i < ct.size(); ++i) any_nonzero |= (ct[i] != 0);
  EXPECT_TRUE(any_nonzero);
}

}  // namespace
}  // namespace secureblox::crypto
