// Parallel hash join: distributed result must equal the reference
// nested-loop join, across schemes and cluster sizes (property sweep).
#include <gtest/gtest.h>

#include "apps/hashjoin.h"

namespace secureblox::apps {
namespace {

using policy::AuthScheme;
using policy::EncScheme;

HashJoinConfig SmallConfig() {
  HashJoinConfig config;
  config.num_nodes = 3;
  config.tuples_r = 60;
  config.tuples_s = 50;
  config.join_values = 12;
  config.rsa_bits = 512;
  return config;
}

TEST(HashJoinTest, MatchesReferenceJoinNoAuth) {
  auto result = RunHashJoin(SmallConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->expected_results, 0u);
  EXPECT_EQ(result->results_at_initiator, result->expected_results);
  EXPECT_EQ(result->metrics.rejected_batches, 0u);
}

TEST(HashJoinTest, MatchesReferenceJoinRsaAes) {
  HashJoinConfig config = SmallConfig();
  config.auth = AuthScheme::kRsa;
  config.enc = EncScheme::kAes;
  auto result = RunHashJoin(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->results_at_initiator, result->expected_results);
}

class HashJoinSweep
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(HashJoinSweep, CorrectAcrossSizesAndSeeds) {
  auto [nodes, seed] = GetParam();
  HashJoinConfig config = SmallConfig();
  config.num_nodes = nodes;
  config.seed = seed;
  auto result = RunHashJoin(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->results_at_initiator, result->expected_results)
      << "nodes=" << nodes << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HashJoinSweep,
    ::testing::Combine(::testing::Values(2, 3, 5),
                       ::testing::Values(1, 17, 99)));

TEST(HashJoinTest, InitiatorCompletionTimesRecorded) {
  auto result = RunHashJoin(SmallConfig());
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->initiator_completion_times_s.empty());
  // Times are monotone (they come from an ordered event log).
  for (size_t i = 1; i < result->initiator_completion_times_s.size(); ++i) {
    EXPECT_GE(result->initiator_completion_times_s[i],
              result->initiator_completion_times_s[i - 1]);
  }
}

TEST(HashJoinTest, MoreNodesLessPerNodeTraffic) {
  // Figure 12's shape: greater parallelism implies less per-node overhead.
  HashJoinConfig small = SmallConfig();
  small.num_nodes = 2;
  HashJoinConfig large = SmallConfig();
  large.num_nodes = 6;
  auto a = RunHashJoin(small);
  auto b = RunHashJoin(large);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->metrics.MeanPerNodeKb(), b->metrics.MeanPerNodeKb());
}

}  // namespace
}  // namespace secureblox::apps
