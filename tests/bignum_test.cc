// BigNum arithmetic: unit vectors plus randomized algebraic identities
// (the property sweep cross-checks DivMod/Mul/Add against 64-bit arithmetic
// and against each other on large operands).
#include <gtest/gtest.h>

#include "common/random.h"
#include "crypto/bignum.h"

namespace secureblox::crypto {
namespace {

BigNum FromHexOrDie(const std::string& h) { return BigNum::FromHex(h).value(); }

TEST(BigNumTest, ZeroBasics) {
  BigNum z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToHex(), "0");
  EXPECT_EQ(BigNum::Cmp(z, BigNum::FromU64(0)), 0);
}

TEST(BigNumTest, FromU64RoundTrip) {
  for (uint64_t v : std::initializer_list<uint64_t>{
           0, 1, 0xFFFFFFFF, 0x100000000ULL, 0xDEADBEEFCAFEBABEULL,
           UINT64_MAX}) {
    EXPECT_EQ(BigNum::FromU64(v).ToU64(), v);
  }
}

TEST(BigNumTest, HexRoundTrip) {
  std::string hex = "1f2e3d4c5b6a79880102030405060708090a0b0c0d0e0f10";
  EXPECT_EQ(FromHexOrDie(hex).ToHex(), hex);
}

TEST(BigNumTest, BytesRoundTripWithPadding) {
  BigNum n = BigNum::FromU64(0x0102);
  Bytes fixed = n.ToBytes(8);
  EXPECT_EQ(ToHex(fixed), "0000000000000102");
  EXPECT_EQ(BigNum::FromBytes(fixed), n);
}

TEST(BigNumTest, BitLength) {
  EXPECT_EQ(BigNum::FromU64(1).BitLength(), 1u);
  EXPECT_EQ(BigNum::FromU64(255).BitLength(), 8u);
  EXPECT_EQ(BigNum::FromU64(256).BitLength(), 9u);
  EXPECT_EQ(BigNum::FromU64(1).ShiftLeft(100).BitLength(), 101u);
}

TEST(BigNumTest, AddSubSmall) {
  BigNum a = BigNum::FromU64(1000);
  BigNum b = BigNum::FromU64(1);
  EXPECT_EQ(BigNum::Add(a, b).ToU64(), 1001u);
  EXPECT_EQ(BigNum::Sub(a, b).ToU64(), 999u);
}

TEST(BigNumTest, AddCarriesAcrossLimbs) {
  BigNum a = BigNum::FromU64(0xFFFFFFFFFFFFFFFFULL);
  BigNum one = BigNum::FromU64(1);
  BigNum sum = BigNum::Add(a, one);
  EXPECT_EQ(sum.ToHex(), "10000000000000000");
  EXPECT_EQ(BigNum::Sub(sum, one), a);
}

TEST(BigNumTest, MulKnown) {
  // 0xFFFFFFFF * 0xFFFFFFFF = 0xFFFFFFFE00000001
  BigNum a = BigNum::FromU64(0xFFFFFFFF);
  EXPECT_EQ(BigNum::Mul(a, a).ToHex(), "fffffffe00000001");
  EXPECT_TRUE(BigNum::Mul(a, BigNum()).IsZero());
}

TEST(BigNumTest, ShiftInverse) {
  BigNum a = FromHexOrDie("123456789abcdef0123456789abcdef");
  for (size_t s : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(a.ShiftLeft(s).ShiftRight(s), a) << "shift=" << s;
  }
}

TEST(BigNumTest, DivModSmall) {
  BigNum q, r;
  BigNum::DivMod(BigNum::FromU64(100), BigNum::FromU64(7), &q, &r);
  EXPECT_EQ(q.ToU64(), 14u);
  EXPECT_EQ(r.ToU64(), 2u);
}

TEST(BigNumTest, DivModDividendSmallerThanDivisor) {
  BigNum q, r;
  BigNum::DivMod(BigNum::FromU64(3), BigNum::FromU64(7), &q, &r);
  EXPECT_TRUE(q.IsZero());
  EXPECT_EQ(r.ToU64(), 3u);
}

TEST(BigNumTest, DivModExact) {
  BigNum a = FromHexOrDie("10000000000000000000000000");
  BigNum b = FromHexOrDie("1000000000000");
  BigNum q, r;
  BigNum::DivMod(a, b, &q, &r);
  EXPECT_TRUE(r.IsZero());
  EXPECT_EQ(BigNum::Mul(q, b), a);
}

TEST(BigNumTest, DivModRandomIdentity64) {
  // a = q*b + r with 0 <= r < b, cross-checked against uint64 arithmetic.
  Xoshiro256 rng(42);
  for (int i = 0; i < 500; ++i) {
    uint64_t a = rng.Next();
    uint64_t b = rng.Next() % 100000 + 1;
    BigNum q, r;
    BigNum::DivMod(BigNum::FromU64(a), BigNum::FromU64(b), &q, &r);
    EXPECT_EQ(q.ToU64(), a / b);
    EXPECT_EQ(r.ToU64(), a % b);
  }
}

TEST(BigNumTest, DivModRandomIdentityLarge) {
  Xoshiro256 rng(43);
  auto rand_bits = [&](size_t bits) {
    return BigNum::RandomBits(bits,
                              [&] { return static_cast<uint32_t>(rng.Next()); });
  };
  for (int i = 0; i < 50; ++i) {
    BigNum a = rand_bits(512 + i);
    BigNum b = rand_bits(128 + (i % 200));
    BigNum q, r;
    BigNum::DivMod(a, b, &q, &r);
    EXPECT_LT(BigNum::Cmp(r, b), 0);
    EXPECT_EQ(BigNum::Add(BigNum::Mul(q, b), r), a) << "iter " << i;
  }
}

TEST(BigNumTest, KnuthDAddBackCase) {
  // Crafted to exercise the rare "add back" correction in Algorithm D:
  // divisor with high limb 0x80000000 and dividend just below a multiple.
  BigNum b = FromHexOrDie("8000000000000000000000000001");
  BigNum q_expect = FromHexOrDie("fffffffffffffffffffffffffffe");
  BigNum a = BigNum::Add(BigNum::Mul(q_expect, b), FromHexOrDie("7"));
  BigNum q, r;
  BigNum::DivMod(a, b, &q, &r);
  EXPECT_EQ(q, q_expect);
  EXPECT_EQ(r, FromHexOrDie("7"));
}

TEST(BigNumTest, ModU32MatchesDivMod) {
  Xoshiro256 rng(44);
  for (int i = 0; i < 100; ++i) {
    BigNum a = BigNum::RandomBits(
        200, [&] { return static_cast<uint32_t>(rng.Next()); });
    uint32_t m = static_cast<uint32_t>(rng.Next() | 1);
    EXPECT_EQ(BigNum::ModU32(a, m),
              BigNum::Mod(a, BigNum::FromU64(m)).ToU64());
  }
}

TEST(BigNumTest, ModExpSmallKnown) {
  // 5^117 mod 19 = 1 (5 has order dividing 9; 5^9 = 1 mod 19 -> 117 = 9*13)
  EXPECT_EQ(BigNum::ModExp(BigNum::FromU64(5), BigNum::FromU64(117),
                           BigNum::FromU64(19))
                .ToU64(),
            1u);
  // 2^10 mod 1000 = 24
  EXPECT_EQ(BigNum::ModExp(BigNum::FromU64(2), BigNum::FromU64(10),
                           BigNum::FromU64(1000))
                .ToU64(),
            24u);
}

TEST(BigNumTest, ModExpFermat) {
  // a^(p-1) mod p == 1 for prime p and a not divisible by p.
  uint64_t p = 1000000007ULL;
  for (uint64_t a : {2ULL, 3ULL, 999999999ULL}) {
    EXPECT_EQ(BigNum::ModExp(BigNum::FromU64(a), BigNum::FromU64(p - 1),
                             BigNum::FromU64(p))
                  .ToU64(),
              1u);
  }
}

TEST(BigNumTest, ModExpMatchesNaive) {
  Xoshiro256 rng(45);
  for (int i = 0; i < 50; ++i) {
    uint64_t base = rng.Next() % 1000 + 2;
    uint64_t exp = rng.Next() % 30;
    uint64_t mod = rng.Next() % 100000 + 2;
    uint64_t expect = 1;
    for (uint64_t j = 0; j < exp; ++j) expect = (expect * base) % mod;
    EXPECT_EQ(BigNum::ModExp(BigNum::FromU64(base), BigNum::FromU64(exp),
                             BigNum::FromU64(mod))
                  .ToU64(),
              expect);
  }
}

TEST(BigNumTest, MontgomeryMatchesDivisionModExp) {
  // ModExp dispatches to Montgomery for odd multi-limb moduli; verify it
  // against the identity a^(e1+e2) = a^e1 * a^e2 and against known values
  // computed via the division fallback (even modulus forces the fallback).
  Xoshiro256 rng(51);
  auto word = [&] { return static_cast<uint32_t>(rng.Next()); };
  for (int iter = 0; iter < 10; ++iter) {
    BigNum m = BigNum::RandomBits(160, word);
    if (!m.IsOdd()) m = BigNum::Add(m, BigNum::FromU64(1));
    BigNum a = BigNum::Mod(BigNum::RandomBits(150, word), m);
    BigNum e1 = BigNum::RandomBits(40, word);
    BigNum e2 = BigNum::RandomBits(40, word);
    BigNum lhs = BigNum::ModExp(a, BigNum::Add(e1, e2), m);
    BigNum rhs = BigNum::Mod(
        BigNum::Mul(BigNum::ModExp(a, e1, m), BigNum::ModExp(a, e2, m)), m);
    EXPECT_EQ(lhs, rhs) << "iter " << iter;
  }
}

TEST(BigNumTest, MontgomeryEdgeValues) {
  Xoshiro256 rng(52);
  auto word = [&] { return static_cast<uint32_t>(rng.Next()); };
  BigNum m = BigNum::GeneratePrime(96, word);
  // base 0, 1, m-1; exponent 0, 1.
  EXPECT_TRUE(BigNum::ModExp(BigNum(), BigNum::FromU64(5), m).IsZero());
  EXPECT_EQ(BigNum::ModExp(BigNum::FromU64(1), BigNum::FromU64(99), m),
            BigNum::FromU64(1));
  EXPECT_EQ(BigNum::ModExp(BigNum::FromU64(7), BigNum(), m),
            BigNum::FromU64(1));
  EXPECT_EQ(BigNum::ModExp(BigNum::FromU64(7), BigNum::FromU64(1), m),
            BigNum::FromU64(7));
  BigNum m1 = BigNum::Sub(m, BigNum::FromU64(1));
  // (m-1)^2 = 1 mod m.
  EXPECT_EQ(BigNum::ModExp(m1, BigNum::FromU64(2), m), BigNum::FromU64(1));
}

TEST(BigNumTest, GcdKnown) {
  EXPECT_EQ(BigNum::Gcd(BigNum::FromU64(48), BigNum::FromU64(18)).ToU64(), 6u);
  EXPECT_EQ(BigNum::Gcd(BigNum::FromU64(17), BigNum::FromU64(13)).ToU64(), 1u);
  EXPECT_EQ(BigNum::Gcd(BigNum::FromU64(0), BigNum::FromU64(5)).ToU64(), 5u);
}

TEST(BigNumTest, ModInverseKnown) {
  // 3 * 7 = 21 = 1 mod 10
  EXPECT_EQ(BigNum::ModInverse(BigNum::FromU64(3), BigNum::FromU64(10))
                .value()
                .ToU64(),
            7u);
  EXPECT_FALSE(BigNum::ModInverse(BigNum::FromU64(4), BigNum::FromU64(10)).ok());
}

TEST(BigNumTest, ModInverseRandom) {
  Xoshiro256 rng(46);
  BigNum m = BigNum::FromU64(1000000007ULL);  // prime modulus
  for (int i = 0; i < 50; ++i) {
    BigNum a = BigNum::FromU64(rng.Next() % 1000000006ULL + 1);
    BigNum inv = BigNum::ModInverse(a, m).value();
    EXPECT_EQ(BigNum::Mod(BigNum::Mul(a, inv), m).ToU64(), 1u);
  }
}

TEST(BigNumTest, ModInverseLarge) {
  Xoshiro256 rng(47);
  auto word = [&] { return static_cast<uint32_t>(rng.Next()); };
  BigNum p = BigNum::GeneratePrime(128, word);
  for (int i = 0; i < 10; ++i) {
    BigNum a = BigNum::Mod(BigNum::RandomBits(120, word), p);
    if (a.IsZero()) continue;
    BigNum inv = BigNum::ModInverse(a, p).value();
    EXPECT_EQ(BigNum::Mod(BigNum::Mul(a, inv), p), BigNum::FromU64(1));
  }
}

TEST(BigNumTest, PrimalitySmallKnown) {
  Xoshiro256 rng(48);
  auto word = [&] { return static_cast<uint32_t>(rng.Next()); };
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 97ULL, 65537ULL, 1000000007ULL}) {
    EXPECT_TRUE(BigNum::IsProbablePrime(BigNum::FromU64(p), 20, word))
        << p;
  }
  for (uint64_t c : {1ULL, 4ULL, 100ULL, 65536ULL, 1000000008ULL,
                     561ULL /* Carmichael */, 341ULL /* 2-pseudoprime */}) {
    EXPECT_FALSE(BigNum::IsProbablePrime(BigNum::FromU64(c), 20, word))
        << c;
  }
}

TEST(BigNumTest, GeneratePrimeHasRequestedSize) {
  Xoshiro256 rng(49);
  auto word = [&] { return static_cast<uint32_t>(rng.Next()); };
  BigNum p = BigNum::GeneratePrime(96, word);
  EXPECT_EQ(p.BitLength(), 96u);
  EXPECT_TRUE(p.IsOdd());
  EXPECT_TRUE(BigNum::IsProbablePrime(p, 20, word));
}

TEST(BigNumTest, RandomBitsExactLength) {
  Xoshiro256 rng(50);
  auto word = [&] { return static_cast<uint32_t>(rng.Next()); };
  for (size_t bits : {1u, 31u, 32u, 33u, 100u, 512u}) {
    EXPECT_EQ(BigNum::RandomBits(bits, word).BitLength(), bits);
  }
}

TEST(BigNumTest, CmpOrdering) {
  BigNum a = FromHexOrDie("ffffffffffffffff");
  BigNum b = FromHexOrDie("10000000000000000");
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, a);
  EXPECT_GE(b, b);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace secureblox::crypto
