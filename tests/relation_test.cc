// Relation storage: set semantics, functional dependencies, erasure,
// replacement, secondary-index probing, and hash-partitioned shards
// (logical content and point lookups are shard-count invariant).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "engine/relation.h"

namespace secureblox::engine {
namespace {

using datalog::PredicateDecl;
using datalog::Value;

PredicateDecl MakeDecl(size_t arity, bool functional) {
  PredicateDecl d;
  d.name = "t";
  d.arg_types.assign(arity, 0);
  d.functional = functional;
  return d;
}

Tuple T(std::initializer_list<int64_t> vals) {
  Tuple t;
  for (int64_t v : vals) t.push_back(Value::Int(v));
  return t;
}

// LookupByKeys needs caller-provided materialization space under the
// columnar layout; row-mode tests just want the pointer.
const Tuple* Lookup(const Relation& r, const Tuple& keys) {
  static Tuple scratch;
  return r.LookupByKeys(keys, &scratch);
}

TEST(RelationTest, InsertAndDuplicate) {
  PredicateDecl decl = MakeDecl(2, false);
  Relation r(&decl);
  EXPECT_EQ(r.Insert(T({1, 2})), InsertOutcome::kInserted);
  EXPECT_EQ(r.Insert(T({1, 2})), InsertOutcome::kDuplicate);
  EXPECT_EQ(r.Insert(T({1, 3})), InsertOutcome::kInserted);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(T({1, 2})));
  EXPECT_FALSE(r.Contains(T({9, 9})));
}

TEST(RelationTest, FunctionalDependency) {
  PredicateDecl decl = MakeDecl(2, true);
  Relation r(&decl);
  EXPECT_EQ(r.Insert(T({1, 10})), InsertOutcome::kInserted);
  EXPECT_EQ(r.Insert(T({1, 10})), InsertOutcome::kDuplicate);
  EXPECT_EQ(r.Insert(T({1, 20})), InsertOutcome::kFdConflict);
  EXPECT_EQ(r.Insert(T({2, 20})), InsertOutcome::kInserted);
  const Tuple* found = Lookup(r, T({1}));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->back().AsInt(), 10);
  EXPECT_EQ(Lookup(r, T({3})), nullptr);
}

TEST(RelationTest, EraseMaintainsIndexes) {
  PredicateDecl decl = MakeDecl(2, true);
  Relation r(&decl);
  for (int64_t i = 0; i < 10; ++i) r.Insert(T({i, i * 10}));
  EXPECT_TRUE(r.Erase(T({4, 40})));
  EXPECT_FALSE(r.Erase(T({4, 40})));
  EXPECT_EQ(r.size(), 9u);
  EXPECT_FALSE(r.Contains(T({4, 40})));
  EXPECT_EQ(Lookup(r, T({4})), nullptr);
  // The swap-removed last element is still reachable.
  EXPECT_TRUE(r.Contains(T({9, 90})));
  ASSERT_NE(Lookup(r, T({9})), nullptr);
  // Reinsert after erase works (FD slot freed).
  EXPECT_EQ(r.Insert(T({4, 44})), InsertOutcome::kInserted);
}

TEST(RelationTest, ReplaceFunctional) {
  PredicateDecl decl = MakeDecl(2, true);
  Relation r(&decl);
  r.Insert(T({1, 10}));
  auto displaced = r.ReplaceFunctional(T({1, 5}));
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(displaced->back().AsInt(), 10);
  EXPECT_EQ(Lookup(r, T({1}))->back().AsInt(), 5);
  // Replacing with the same value is a no-op.
  EXPECT_FALSE(r.ReplaceFunctional(T({1, 5})).has_value());
  // Replacing a fresh key inserts.
  EXPECT_FALSE(r.ReplaceFunctional(T({2, 7})).has_value());
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationTest, SecondaryIndexProbe) {
  PredicateDecl decl = MakeDecl(3, false);
  Relation r(&decl);
  for (int64_t i = 0; i < 100; ++i) r.Insert(T({i % 5, i, i % 3}));
  // Probe on column 0.
  const auto& rows = r.Probe(0b001, T({2}));
  EXPECT_EQ(rows.size(), 20u);
  for (size_t row : rows) EXPECT_EQ(r.row(row)[0].AsInt(), 2);
  // Probe on columns 0 and 2.
  const auto& rows2 = r.Probe(0b101, T({2, 1}));
  for (size_t row : rows2) {
    EXPECT_EQ(r.row(row)[0].AsInt(), 2);
    EXPECT_EQ(r.row(row)[2].AsInt(), 1);
  }
  // Missing key: empty result.
  EXPECT_TRUE(r.Probe(0b001, T({77})).empty());
}

TEST(RelationTest, ProbeRebuildsAfterMutation) {
  PredicateDecl decl = MakeDecl(2, false);
  Relation r(&decl);
  r.Insert(T({1, 1}));
  EXPECT_EQ(r.Probe(0b01, T({1})).size(), 1u);
  uint64_t v1 = r.version();
  r.Insert(T({1, 2}));
  EXPECT_GT(r.version(), v1);
  EXPECT_EQ(r.Probe(0b01, T({1})).size(), 2u);
  r.Erase(T({1, 1}));
  EXPECT_EQ(r.Probe(0b01, T({1})).size(), 1u);
}

TEST(RelationTest, ProbeStaysCorrectAcrossGrowthAndErasure) {
  // Grow-only growth appends to the secondary index; erasure (swap-remove
  // shifts row ids) forces a rebuild. Interleave both and re-verify.
  PredicateDecl decl = MakeDecl(2, false);
  Relation r(&decl);
  for (int64_t i = 0; i < 10; ++i) r.Insert(T({i % 2, i}));
  EXPECT_EQ(r.Probe(0b01, T({0})).size(), 5u);
  // Grow after the index was built: the appended rows must be visible.
  for (int64_t i = 10; i < 20; ++i) r.Insert(T({i % 2, i}));
  EXPECT_EQ(r.Probe(0b01, T({0})).size(), 10u);
  // Erase invalidates row ids: results must still be exact.
  r.Erase(T({0, 0}));
  r.Erase(T({1, 19}));
  const auto& rows = r.Probe(0b01, T({0}));
  EXPECT_EQ(rows.size(), 9u);
  for (size_t row : rows) EXPECT_EQ(r.row(row)[0].AsInt(), 0);
  // And grow again after the rebuild.
  r.Insert(T({0, 100}));
  EXPECT_EQ(r.Probe(0b01, T({0})).size(), 10u);
}

TEST(RelationTest, SupportCountsTrackTuples) {
  PredicateDecl decl = MakeDecl(2, false);
  Relation r(&decl);
  EXPECT_EQ(r.SupportCount(T({1, 2})), 0u);  // absent
  r.Insert(T({1, 2}));
  EXPECT_EQ(r.SupportCount(T({1, 2})), 0u);  // present, uncounted
  EXPECT_EQ(r.AddSupport(T({1, 2})), 1u);
  EXPECT_EQ(r.AddSupport(T({1, 2})), 2u);
  EXPECT_EQ(r.AddSupport(T({9, 9})), 0u);  // absent: no-op
  r.SetSupport(T({1, 2}), 7u);
  EXPECT_EQ(r.SupportCount(T({1, 2})), 7u);
  r.Erase(T({1, 2}));
  EXPECT_EQ(r.SupportCount(T({1, 2})), 0u);
}

TEST(RelationTest, SupportCountsSurviveSwapRemove) {
  // Erasing a middle row swap-removes the last one into its slot; the
  // moved row's support must move with it.
  PredicateDecl decl = MakeDecl(2, false);
  Relation r(&decl);
  for (int64_t i = 0; i < 8; ++i) {
    r.Insert(T({i, i + 100}));
    for (int64_t j = 0; j <= i; ++j) r.AddSupport(T({i, i + 100}));
  }
  r.Erase(T({2, 102}));
  r.Erase(T({5, 105}));
  for (int64_t i = 0; i < 8; ++i) {
    if (i == 2 || i == 5) {
      EXPECT_EQ(r.SupportCount(T({i, i + 100})), 0u);
    } else {
      EXPECT_EQ(r.SupportCount(T({i, i + 100})),
                static_cast<uint32_t>(i + 1));
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded storage: logical content is shard-count invariant.
// ---------------------------------------------------------------------------

std::multiset<std::string> Contents(const Relation& r) {
  std::multiset<std::string> out;
  for (size_t sh = 0; sh < r.shard_count(); ++sh) {
    for (size_t slot = 0; slot < r.shard_size(sh); ++slot) {
      Tuple t = r.MaterializeTuple(sh, slot);
      std::string line;
      for (const Value& v : t) line += v.ToString() + ",";
      line += "#" + std::to_string(r.SupportCount(t));
      out.insert(std::move(line));
    }
  }
  return out;
}

TEST(ShardedRelationTest, ContentIdenticalAcrossShardCounts) {
  PredicateDecl decl = MakeDecl(3, false);
  auto fill = [&](Relation* r) {
    for (int64_t i = 0; i < 200; ++i) {
      r->Insert(T({i % 11, i, i % 3}));
      if (i % 4 == 0) r->AddSupport(T({i % 11, i, i % 3}));
    }
    for (int64_t i = 0; i < 200; i += 5) r->Erase(T({i % 11, i, i % 3}));
  };
  Relation base(&decl, 1);
  fill(&base);
  for (size_t shards : {size_t{4}, size_t{7}}) {
    Relation r(&decl, shards);
    EXPECT_EQ(r.shard_count(), shards);
    fill(&r);
    EXPECT_EQ(r.size(), base.size());
    EXPECT_EQ(Contents(r), Contents(base)) << "shards=" << shards;
    // Point lookups agree with the unsharded layout.
    for (int64_t i = 0; i < 200; ++i) {
      EXPECT_EQ(r.Contains(T({i % 11, i, i % 3})),
                base.Contains(T({i % 11, i, i % 3})));
    }
  }
}

TEST(ShardedRelationTest, BoundKeyProbeTouchesExactlyOneShard) {
  // Non-functional: the shard key is the first column, so a probe binding
  // column 0 resolves to one shard; probes missing it fan out.
  PredicateDecl decl = MakeDecl(3, false);
  Relation r(&decl, 4);
  for (int64_t i = 0; i < 100; ++i) r.Insert(T({i % 5, i, i % 3}));
  for (int64_t k = 0; k < 5; ++k) {
    int shard = r.ProbeShardOf(0b001, T({k}));
    ASSERT_GE(shard, 0);
    EXPECT_EQ(static_cast<size_t>(shard), r.ShardOf(T({k, 0, 0})));
    // All matches live in that one shard.
    const auto& rows = r.ProbeShard(static_cast<size_t>(shard), 0b001,
                                    T({k}));
    EXPECT_EQ(rows.size(), 20u);
    for (size_t slot : rows) {
      EXPECT_EQ(r.shard_tuples(static_cast<size_t>(shard))[slot][0].AsInt(),
                k);
    }
  }
  // Column 1 alone does not cover the shard key: fan-out.
  EXPECT_EQ(r.ProbeShardOf(0b010, T({42})), -1);
  // The flat convenience probe gathers across shards; encoded ids decode.
  const auto& rows = r.Probe(0b010, T({42}));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(r.row(rows[0])[1].AsInt(), 42);
}

TEST(ShardedRelationTest, FunctionalShardsByKeysAndReplaces) {
  PredicateDecl decl = MakeDecl(3, true);  // keys = columns 0..1
  Relation r(&decl, 7);
  for (int64_t i = 0; i < 60; ++i) r.Insert(T({i, i % 4, i * 10}));
  // LookupByKeys is a single-shard probe and agrees with Contains.
  for (int64_t i = 0; i < 60; ++i) {
    const Tuple* row = Lookup(r, T({i, i % 4}));
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->back().AsInt(), i * 10);
  }
  // FD conflicts are detected across the sharded layout.
  EXPECT_EQ(r.Insert(T({3, 3, 999})), InsertOutcome::kFdConflict);
  // Replacement lands in the displaced row's shard (same keys, same
  // shard) and keeps the FD index exact.
  auto displaced = r.ReplaceFunctional(T({3, 3, 31}));
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(displaced->back().AsInt(), 30);
  EXPECT_EQ(Lookup(r, T({3, 3}))->back().AsInt(), 31);
  EXPECT_EQ(r.size(), 60u);
}

TEST(ShardedRelationTest, EraseHeavyChurnPatchesPerShardIndexes) {
  // Swap-remove erasure must patch each shard's built buckets in place:
  // the build counter stays at the initial per-(shard, mask) builds no
  // matter how much churn the probes see.
  PredicateDecl decl = MakeDecl(2, false);
  Relation r(&decl, 4);
  for (int64_t i = 0; i < 120; ++i) r.Insert(T({i % 6, i}));
  // A bound-key probe builds only its own shard's index lazily; warm all
  // shards (what the fixpoint's pre-parallel phase does) so the counter
  // below reflects the full initial build.
  EXPECT_EQ(r.Probe(0b01, T({0})).size(), 20u);
  EXPECT_GE(r.index_builds(), 1u);
  r.EnsureIndex(0b01);
  uint64_t builds = r.index_builds();
  EXPECT_EQ(builds, r.shard_count());
  for (int64_t i = 0; i < 60; ++i) r.Erase(T({i % 6, i}));
  for (int64_t k = 0; k < 6; ++k) {
    const auto& rows = r.Probe(0b01, T({k}));
    EXPECT_EQ(rows.size(), 10u);
    for (size_t row : rows) EXPECT_EQ(r.row(row)[0].AsInt(), k);
  }
  // Reinsert into patched buckets (tail append, no rebuild).
  for (int64_t i = 0; i < 60; ++i) r.Insert(T({i % 6, i}));
  for (int64_t k = 0; k < 6; ++k) {
    EXPECT_EQ(r.Probe(0b01, T({k})).size(), 20u);
  }
  EXPECT_EQ(r.index_builds(), builds)
      << "erase churn forced a per-shard bucket rebuild";
}

TEST(ShardedRelationTest, ProbeShardReferenceSurvivesForeignIndexWork) {
  // The reference-stability contract (relation.h): a ProbeShard reference
  // stays valid across probes of other masks and other shards while the
  // version is unchanged. This mirrors how the executor nests probes
  // inside one enumeration.
  PredicateDecl decl = MakeDecl(2, false);
  Relation r(&decl, 4);
  for (int64_t i = 0; i < 64; ++i) r.Insert(T({i % 4, i}));
  int shard = r.ProbeShardOf(0b01, T({1}));
  ASSERT_GE(shard, 0);
  const auto& rows = r.ProbeShard(static_cast<size_t>(shard), 0b01, T({1}));
  const size_t before = rows.size();
  ASSERT_GT(before, 0u);
  const size_t first = rows[0];
  // Foreign index work: a different mask (new index built on every
  // shard) and different keys on other shards.
  r.EnsureIndex(0b10);
  for (size_t sh = 0; sh < r.shard_count(); ++sh) {
    (void)r.ProbeShard(sh, 0b10, T({7}));
    (void)r.ProbeShard(sh, 0b01, T({2}));
  }
  EXPECT_EQ(rows.size(), before);
  EXPECT_EQ(rows[0], first);
  EXPECT_EQ(r.shard_tuples(static_cast<size_t>(shard))[rows[0]][0].AsInt(),
            1);
}

// ---------------------------------------------------------------------------
// Columnar storage: dictionary-encoded column segments must agree with the
// row-major layout under churn, at every shard count.
// ---------------------------------------------------------------------------

Tuple Mixed(int64_t k, int64_t tag) {
  Tuple t;
  t.push_back(Value::Int(k));
  t.push_back(Value::Str("name-" + std::to_string(k % 9)));
  t.push_back(Value::Int(tag));
  return t;
}

TEST(ColumnarRelationTest, DictionaryRoundTripUnderChurn) {
  PredicateDecl decl = MakeDecl(3, false);
  for (size_t shards : {size_t{1}, size_t{4}, size_t{7}}) {
    Relation r(&decl, shards, /*columnar=*/true);
    ASSERT_TRUE(r.columnar());
    for (int64_t i = 0; i < 150; ++i) r.Insert(Mixed(i, i % 5));
    // Every stored code decodes back to the value the accessor reports,
    // and MaterializeTuple reassembles the logical row.
    for (size_t sh = 0; sh < r.shard_count(); ++sh) {
      for (size_t slot = 0; slot < r.shard_size(sh); ++slot) {
        Tuple t = r.MaterializeTuple(sh, slot);
        ASSERT_EQ(t.size(), 3u);
        for (size_t col = 0; col < t.size(); ++col) {
          uint32_t code = r.shard_codes(sh, col)[slot];
          EXPECT_EQ(r.Decode(col, code), t[col]);
          EXPECT_EQ(r.At(sh, slot, col), t[col]);
          auto back = r.CodeOf(col, t[col]);
          ASSERT_TRUE(back.has_value());
          EXPECT_EQ(*back, code);
        }
        EXPECT_TRUE(r.Contains(t));
      }
    }
    // Erase a stride (middle rows force swap-remove repointing), then
    // verify content and codes again, then reinsert.
    for (int64_t i = 0; i < 150; i += 3) EXPECT_TRUE(r.Erase(Mixed(i, i % 5)));
    EXPECT_EQ(r.size(), 100u);
    for (int64_t i = 0; i < 150; ++i) {
      EXPECT_EQ(r.Contains(Mixed(i, i % 5)), i % 3 != 0) << "i=" << i;
    }
    for (int64_t i = 0; i < 150; i += 3) {
      EXPECT_EQ(r.Insert(Mixed(i, i % 5)), InsertOutcome::kInserted);
    }
    EXPECT_EQ(r.size(), 150u);
    for (size_t sh = 0; sh < r.shard_count(); ++sh) {
      for (size_t slot = 0; slot < r.shard_size(sh); ++slot) {
        Tuple t = r.MaterializeTuple(sh, slot);
        for (size_t col = 0; col < t.size(); ++col) {
          EXPECT_EQ(r.Decode(col, r.shard_codes(sh, col)[slot]), t[col]);
        }
      }
    }
  }
}

TEST(ColumnarRelationTest, ColumnDistinctTracksLiveValuesExactly) {
  PredicateDecl decl = MakeDecl(3, false);
  Relation r(&decl, 4, /*columnar=*/true);
  auto expect_distinct = [&](int64_t upto) {
    std::set<std::string> c0, c1, c2;
    for (size_t sh = 0; sh < r.shard_count(); ++sh) {
      for (size_t slot = 0; slot < r.shard_size(sh); ++slot) {
        c0.insert(r.At(sh, slot, 0).ToString());
        c1.insert(r.At(sh, slot, 1).ToString());
        c2.insert(r.At(sh, slot, 2).ToString());
      }
    }
    EXPECT_EQ(r.ColumnDistinct(0), c0.size()) << "upto=" << upto;
    EXPECT_EQ(r.ColumnDistinct(1), c1.size()) << "upto=" << upto;
    EXPECT_EQ(r.ColumnDistinct(2), c2.size()) << "upto=" << upto;
  };
  for (int64_t i = 0; i < 120; ++i) r.Insert(Mixed(i, i % 7));
  expect_distinct(120);
  // Erase churn must decay live counts exactly: erasing the only row
  // using a value frees it; shared values stay live.
  for (int64_t i = 0; i < 120; i += 2) r.Erase(Mixed(i, i % 7));
  expect_distinct(60);
  // Reinserting erased values revives retired codes (refcount 0 -> 1).
  for (int64_t i = 0; i < 120; i += 2) r.Insert(Mixed(i, i % 7));
  expect_distinct(120);
}

TEST(ColumnarRelationTest, ContentMatchesRowLayoutAcrossShardCounts) {
  PredicateDecl decl = MakeDecl(3, false);
  auto fill = [&](Relation* r) {
    for (int64_t i = 0; i < 200; ++i) {
      r->Insert(Mixed(i % 31, i));
      if (i % 4 == 0) r->AddSupport(Mixed(i % 31, i));
    }
    for (int64_t i = 0; i < 200; i += 5) r->Erase(Mixed(i % 31, i));
  };
  Relation rows(&decl, 1, /*columnar=*/false);
  fill(&rows);
  for (size_t shards : {size_t{1}, size_t{4}, size_t{7}}) {
    Relation cols(&decl, shards, /*columnar=*/true);
    fill(&cols);
    EXPECT_EQ(cols.size(), rows.size());
    EXPECT_EQ(Contents(cols), Contents(rows)) << "shards=" << shards;
    for (int64_t i = 0; i < 200; ++i) {
      EXPECT_EQ(cols.Contains(Mixed(i % 31, i)), rows.Contains(Mixed(i % 31, i)));
    }
  }
}

TEST(ColumnarRelationTest, FunctionalReplaceAndSupportSurviveSwapRemove) {
  PredicateDecl decl = MakeDecl(3, true);  // keys = columns 0..1
  Relation r(&decl, 7, /*columnar=*/true);
  for (int64_t i = 0; i < 60; ++i) r.Insert(Mixed(i, i * 10));
  EXPECT_EQ(r.Insert(Mixed(3, 999)), InsertOutcome::kFdConflict);
  for (int64_t i = 0; i < 60; ++i) {
    const Tuple* row = Lookup(r, {Value::Int(i),
                                  Value::Str("name-" + std::to_string(i % 9))});
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->back().AsInt(), i * 10);
  }
  auto displaced = r.ReplaceFunctional(Mixed(3, 31));
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(displaced->back().AsInt(), 30);
  EXPECT_EQ(r.size(), 60u);
  // Support moves with swap-removed rows, same as the row layout.
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j <= i; ++j) r.AddSupport(Mixed(i, i * 10));
  }
  r.Erase(r.MaterializeTuple(r.ShardOf(Mixed(2, 20)), 0));  // arbitrary row
  for (int64_t i = 4; i < 8; ++i) {
    if (!r.Contains(Mixed(i, i * 10))) continue;
    EXPECT_EQ(r.SupportCount(Mixed(i, i * 10)), static_cast<uint32_t>(i + 1));
  }
}

TEST(ColumnarRelationTest, ProbeComparesCodesAndMissesFast) {
  PredicateDecl decl = MakeDecl(3, false);
  Relation r(&decl, 4, /*columnar=*/true);
  for (int64_t i = 0; i < 100; ++i) r.Insert(Mixed(i % 5, i));
  const auto& rows = r.Probe(0b001, T({2}));
  EXPECT_EQ(rows.size(), 20u);
  for (size_t row : rows) EXPECT_EQ(r.row(row)[0].AsInt(), 2);
  // A key absent from the dictionary answers without touching buckets.
  EXPECT_TRUE(r.Probe(0b001, T({77})).empty());
  EXPECT_FALSE(r.CodeOf(0, Value::Int(77)).has_value());
  // Bound-key single-shard probes agree with the row layout's routing.
  int shard = r.ProbeShardOf(0b001, T({2}));
  ASSERT_GE(shard, 0);
  EXPECT_EQ(static_cast<size_t>(shard), r.ShardOf(T({2, 0, 0})));
  // Erase churn patches columnar buckets in place, no rebuilds.
  r.EnsureIndex(0b001);
  uint64_t builds = r.index_builds();
  for (int64_t i = 0; i < 50; ++i) r.Erase(Mixed(i % 5, i));
  for (int64_t k = 0; k < 5; ++k) {
    const auto& got = r.Probe(0b001, T({k}));
    EXPECT_EQ(got.size(), 10u);
    for (size_t row : got) EXPECT_EQ(r.row(row)[0].AsInt(), k);
  }
  EXPECT_EQ(r.index_builds(), builds);
}

TEST(ColumnarRelationTest, MemoryFootprintReportsDictionaryAndColumns) {
  PredicateDecl decl = MakeDecl(3, false);
  Relation rows(&decl, 2, /*columnar=*/false);
  Relation cols(&decl, 2, /*columnar=*/true);
  for (int64_t i = 0; i < 64; ++i) {
    rows.Insert(Mixed(i % 4, i % 8));
    cols.Insert(Mixed(i % 4, i % 8));
  }
  Relation::MemoryFootprint rm = rows.Memory();
  Relation::MemoryFootprint cm = cols.Memory();
  EXPECT_EQ(rm.dict_bytes, 0u);
  EXPECT_GT(rm.column_bytes, 0u);  // row storage reported as column bytes
  EXPECT_GT(cm.dict_bytes, 0u);
  EXPECT_GT(cm.column_bytes, 0u);
}

TEST(ColumnarRelationTest, EncodeTupleRoundTripsAndReportsMisses) {
  PredicateDecl decl = MakeDecl(3, false);
  Relation r(&decl, 3, /*columnar=*/true);
  for (int64_t i = 0; i < 40; ++i) r.Insert(Mixed(i % 6, i));
  std::vector<uint32_t> codes = {123u};  // pre-existing content survives
  Tuple present = Mixed(4, 17);
  ASSERT_TRUE(r.EncodeTuple(present, &codes));
  ASSERT_EQ(codes.size(), 4u);
  for (size_t col = 0; col < 3; ++col) {
    auto want = r.CodeOf(col, present[col]);
    ASSERT_TRUE(want.has_value());
    EXPECT_EQ(codes[1 + col], *want);
  }
  // Any dictionary-absent value fails the whole tuple and leaves the
  // output exactly as it was (no partial append).
  Tuple absent = Mixed(4, 17);
  absent[2] = Value::Int(9999);
  EXPECT_FALSE(r.EncodeTuple(absent, &codes));
  EXPECT_EQ(codes.size(), 4u);
  EXPECT_EQ(codes[0], 123u);
}

TEST(ColumnarRelationTest, SortedRunBoundsWarmStaleAndCorrect) {
  PredicateDecl decl = MakeDecl(3, false);
  Relation r(&decl, 2, /*columnar=*/true);
  // Cold cache: nothing warm before the first EnsureSortedRuns.
  for (int64_t i = 0; i < 90; ++i) r.Insert(Mixed(i % 7, i));
  EXPECT_EQ(r.SortedRunBoundsIfWarm(0, 1), nullptr);
  r.EnsureSortedRuns(1);
  for (size_t sh = 0; sh < r.shard_count(); ++sh) {
    const std::vector<uint32_t>* bounds = r.SortedRunBoundsIfWarm(sh, 1);
    ASSERT_NE(bounds, nullptr) << "shard " << sh;
    const std::vector<uint32_t>& codes = r.shard_codes(sh, 1);
    // Boundaries delimit maximal non-decreasing runs of the code vector.
    ASSERT_GE(bounds->size(), 1u);
    EXPECT_EQ(bounds->front(), 0u);
    if (!codes.empty()) {
      ASSERT_GE(bounds->size(), 2u);
      EXPECT_EQ(bounds->back(), codes.size());
      for (size_t b = 1; b + 1 < bounds->size(); ++b) {
        uint32_t at = (*bounds)[b];
        EXPECT_LT(codes[at], codes[at - 1]) << "boundary not a descent";
      }
      for (size_t b = 0; b + 1 < bounds->size(); ++b) {
        for (uint32_t i = (*bounds)[b] + 1; i < (*bounds)[b + 1]; ++i) {
          EXPECT_GE(codes[i], codes[i - 1]) << "run not sorted";
        }
      }
    }
  }
  // Column out of range never reports warm.
  EXPECT_EQ(r.SortedRunBoundsIfWarm(0, 9), nullptr);
  // Any mutation stales the cache; rebuilding warms it again.
  r.Insert(Mixed(3, 1000));
  EXPECT_EQ(r.SortedRunBoundsIfWarm(0, 1), nullptr);
  EXPECT_EQ(r.SortedRunBoundsIfWarm(1, 1), nullptr);
  r.EnsureSortedRuns(1);
  EXPECT_NE(r.SortedRunBoundsIfWarm(0, 1), nullptr);
}

TEST(ColumnarRelationTest, SortedRunsStaleAfterEraseChurnAndRewarm) {
  // Regression pin for the sorted-run version stamp (audit: every mutation
  // bumps version_, and SortedRunBoundsIfWarm compares stamps, so the
  // cache can never serve bounds computed against pre-churn code
  // vectors). Erase churn swap-removes rows INSIDE the vectors — unlike
  // an append it shifts codes into earlier slots — so stale bounds would
  // silently mis-delimit runs rather than crash. After a re-warm the
  // bounds must describe the post-churn vectors exactly.
  PredicateDecl decl = MakeDecl(3, false);
  Relation r(&decl, 2, /*columnar=*/true);
  for (int64_t i = 0; i < 80; ++i) r.Insert(Mixed(i % 11, i));
  r.EnsureSortedRuns(2);
  ASSERT_NE(r.SortedRunBoundsIfWarm(0, 2), nullptr);
  // Swap-remove churn from the middle of every shard.
  for (int64_t i = 10; i < 70; i += 3) ASSERT_TRUE(r.Erase(Mixed(i % 11, i)));
  EXPECT_EQ(r.SortedRunBoundsIfWarm(0, 2), nullptr);
  EXPECT_EQ(r.SortedRunBoundsIfWarm(1, 2), nullptr);
  r.EnsureSortedRuns(2);
  for (size_t sh = 0; sh < r.shard_count(); ++sh) {
    const std::vector<uint32_t>* bounds = r.SortedRunBoundsIfWarm(sh, 2);
    ASSERT_NE(bounds, nullptr) << "shard " << sh;
    const std::vector<uint32_t>& codes = r.shard_codes(sh, 2);
    ASSERT_GE(bounds->size(), 2u);
    EXPECT_EQ(bounds->front(), 0u);
    EXPECT_EQ(bounds->back(), codes.size());
    for (size_t b = 0; b + 1 < bounds->size(); ++b) {
      for (uint32_t i = (*bounds)[b] + 1; i < (*bounds)[b + 1]; ++i) {
        EXPECT_GE(codes[i], codes[i - 1]) << "run not sorted post-churn";
      }
    }
  }
  // Erase-then-rewarm round two: the stamp keeps pace with every bump.
  for (int64_t i = 0; i < 80; i += 7) {
    if (r.Contains(Mixed(i % 11, i))) ASSERT_TRUE(r.Erase(Mixed(i % 11, i)));
  }
  EXPECT_EQ(r.SortedRunBoundsIfWarm(0, 2), nullptr);
  r.EnsureSortedRuns(2);
  EXPECT_NE(r.SortedRunBoundsIfWarm(0, 2), nullptr);
}

TEST(ColumnarRelationTest, RejectedInsertsLeaveDictionaryRefcountsClean) {
  // Audit pin for dictionary refcount hygiene: Insert interns nothing
  // until the row is known to commit (phase A is lookup-only), so a
  // duplicate or FD-conflict rejection must leave refcounts, live counts,
  // and dictionary sizes byte-identical — erasing the original rows
  // afterwards must still retire every code to zero live values.
  {
    PredicateDecl decl = MakeDecl(3, false);
    Relation r(&decl, 3, /*columnar=*/true);
    for (int64_t i = 0; i < 30; ++i) {
      ASSERT_EQ(r.Insert(Mixed(i % 6, i)), InsertOutcome::kInserted);
    }
    const auto live0 = r.ColumnDistinct(0);
    const auto live2 = r.ColumnDistinct(2);
    const Relation::MemoryFootprint before = r.Memory();
    for (int64_t i = 0; i < 30; ++i) {
      EXPECT_EQ(r.Insert(Mixed(i % 6, i)), InsertOutcome::kDuplicate);
    }
    EXPECT_EQ(r.ColumnDistinct(0), live0);
    EXPECT_EQ(r.ColumnDistinct(2), live2);
    EXPECT_EQ(r.Memory().dict_bytes, before.dict_bytes);
    EXPECT_EQ(r.size(), 30u);
    // A leaked reference from any rejected insert would keep the value
    // alive past the erase of its only real row.
    for (int64_t i = 0; i < 30; ++i) ASSERT_TRUE(r.Erase(Mixed(i % 6, i)));
    for (size_t col = 0; col < 3; ++col) EXPECT_EQ(r.ColumnDistinct(col), 0u);
  }
  {
    PredicateDecl decl = MakeDecl(3, true);  // keys = columns 0..1
    Relation r(&decl, 3, /*columnar=*/true);
    for (int64_t i = 0; i < 20; ++i) {
      ASSERT_EQ(r.Insert(Mixed(i, i)), InsertOutcome::kInserted);
    }
    const auto live2 = r.ColumnDistinct(2);
    // Conflicting value column: the key exists with a different payload.
    // The novel payload value must NOT be interned by the rejection.
    for (int64_t i = 0; i < 20; ++i) {
      EXPECT_EQ(r.Insert(Mixed(i, i + 5000)), InsertOutcome::kFdConflict);
      EXPECT_FALSE(r.CodeOf(2, Value::Int(i + 5000)).has_value());
    }
    EXPECT_EQ(r.ColumnDistinct(2), live2);
    for (int64_t i = 0; i < 20; ++i) ASSERT_TRUE(r.Erase(Mixed(i, i)));
    for (size_t col = 0; col < 3; ++col) EXPECT_EQ(r.ColumnDistinct(col), 0u);
  }
}

TEST(RelationTest, TupleHashingQuality) {
  TupleHash h;
  // Different orderings hash differently (order matters).
  EXPECT_NE(h(T({1, 2})), h(T({2, 1})));
  EXPECT_EQ(h(T({1, 2})), h(T({1, 2})));
  // Kind matters.
  Tuple str_tuple = {Value::Str("1"), Value::Str("2")};
  EXPECT_NE(h(T({1, 2})), h(str_tuple));
}

}  // namespace
}  // namespace secureblox::engine
