// Relation storage: set semantics, functional dependencies, erasure,
// replacement, and secondary-index probing.
#include <gtest/gtest.h>

#include "engine/relation.h"

namespace secureblox::engine {
namespace {

using datalog::PredicateDecl;
using datalog::Value;

PredicateDecl MakeDecl(size_t arity, bool functional) {
  PredicateDecl d;
  d.name = "t";
  d.arg_types.assign(arity, 0);
  d.functional = functional;
  return d;
}

Tuple T(std::initializer_list<int64_t> vals) {
  Tuple t;
  for (int64_t v : vals) t.push_back(Value::Int(v));
  return t;
}

TEST(RelationTest, InsertAndDuplicate) {
  PredicateDecl decl = MakeDecl(2, false);
  Relation r(&decl);
  EXPECT_EQ(r.Insert(T({1, 2})), InsertOutcome::kInserted);
  EXPECT_EQ(r.Insert(T({1, 2})), InsertOutcome::kDuplicate);
  EXPECT_EQ(r.Insert(T({1, 3})), InsertOutcome::kInserted);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(T({1, 2})));
  EXPECT_FALSE(r.Contains(T({9, 9})));
}

TEST(RelationTest, FunctionalDependency) {
  PredicateDecl decl = MakeDecl(2, true);
  Relation r(&decl);
  EXPECT_EQ(r.Insert(T({1, 10})), InsertOutcome::kInserted);
  EXPECT_EQ(r.Insert(T({1, 10})), InsertOutcome::kDuplicate);
  EXPECT_EQ(r.Insert(T({1, 20})), InsertOutcome::kFdConflict);
  EXPECT_EQ(r.Insert(T({2, 20})), InsertOutcome::kInserted);
  const Tuple* found = r.LookupByKeys(T({1}));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->back().AsInt(), 10);
  EXPECT_EQ(r.LookupByKeys(T({3})), nullptr);
}

TEST(RelationTest, EraseMaintainsIndexes) {
  PredicateDecl decl = MakeDecl(2, true);
  Relation r(&decl);
  for (int64_t i = 0; i < 10; ++i) r.Insert(T({i, i * 10}));
  EXPECT_TRUE(r.Erase(T({4, 40})));
  EXPECT_FALSE(r.Erase(T({4, 40})));
  EXPECT_EQ(r.size(), 9u);
  EXPECT_FALSE(r.Contains(T({4, 40})));
  EXPECT_EQ(r.LookupByKeys(T({4})), nullptr);
  // The swap-removed last element is still reachable.
  EXPECT_TRUE(r.Contains(T({9, 90})));
  ASSERT_NE(r.LookupByKeys(T({9})), nullptr);
  // Reinsert after erase works (FD slot freed).
  EXPECT_EQ(r.Insert(T({4, 44})), InsertOutcome::kInserted);
}

TEST(RelationTest, ReplaceFunctional) {
  PredicateDecl decl = MakeDecl(2, true);
  Relation r(&decl);
  r.Insert(T({1, 10}));
  auto displaced = r.ReplaceFunctional(T({1, 5}));
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(displaced->back().AsInt(), 10);
  EXPECT_EQ(r.LookupByKeys(T({1}))->back().AsInt(), 5);
  // Replacing with the same value is a no-op.
  EXPECT_FALSE(r.ReplaceFunctional(T({1, 5})).has_value());
  // Replacing a fresh key inserts.
  EXPECT_FALSE(r.ReplaceFunctional(T({2, 7})).has_value());
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationTest, SecondaryIndexProbe) {
  PredicateDecl decl = MakeDecl(3, false);
  Relation r(&decl);
  for (int64_t i = 0; i < 100; ++i) r.Insert(T({i % 5, i, i % 3}));
  // Probe on column 0.
  const auto& rows = r.Probe(0b001, T({2}));
  EXPECT_EQ(rows.size(), 20u);
  for (size_t row : rows) EXPECT_EQ(r.tuples()[row][0].AsInt(), 2);
  // Probe on columns 0 and 2.
  const auto& rows2 = r.Probe(0b101, T({2, 1}));
  for (size_t row : rows2) {
    EXPECT_EQ(r.tuples()[row][0].AsInt(), 2);
    EXPECT_EQ(r.tuples()[row][2].AsInt(), 1);
  }
  // Missing key: empty result.
  EXPECT_TRUE(r.Probe(0b001, T({77})).empty());
}

TEST(RelationTest, ProbeRebuildsAfterMutation) {
  PredicateDecl decl = MakeDecl(2, false);
  Relation r(&decl);
  r.Insert(T({1, 1}));
  EXPECT_EQ(r.Probe(0b01, T({1})).size(), 1u);
  uint64_t v1 = r.version();
  r.Insert(T({1, 2}));
  EXPECT_GT(r.version(), v1);
  EXPECT_EQ(r.Probe(0b01, T({1})).size(), 2u);
  r.Erase(T({1, 1}));
  EXPECT_EQ(r.Probe(0b01, T({1})).size(), 1u);
}

TEST(RelationTest, ProbeStaysCorrectAcrossGrowthAndErasure) {
  // Grow-only growth appends to the secondary index; erasure (swap-remove
  // shifts row ids) forces a rebuild. Interleave both and re-verify.
  PredicateDecl decl = MakeDecl(2, false);
  Relation r(&decl);
  for (int64_t i = 0; i < 10; ++i) r.Insert(T({i % 2, i}));
  EXPECT_EQ(r.Probe(0b01, T({0})).size(), 5u);
  // Grow after the index was built: the appended rows must be visible.
  for (int64_t i = 10; i < 20; ++i) r.Insert(T({i % 2, i}));
  EXPECT_EQ(r.Probe(0b01, T({0})).size(), 10u);
  // Erase invalidates row ids: results must still be exact.
  r.Erase(T({0, 0}));
  r.Erase(T({1, 19}));
  const auto& rows = r.Probe(0b01, T({0}));
  EXPECT_EQ(rows.size(), 9u);
  for (size_t row : rows) EXPECT_EQ(r.tuples()[row][0].AsInt(), 0);
  // And grow again after the rebuild.
  r.Insert(T({0, 100}));
  EXPECT_EQ(r.Probe(0b01, T({0})).size(), 10u);
}

TEST(RelationTest, SupportCountsTrackTuples) {
  PredicateDecl decl = MakeDecl(2, false);
  Relation r(&decl);
  EXPECT_EQ(r.SupportCount(T({1, 2})), 0u);  // absent
  r.Insert(T({1, 2}));
  EXPECT_EQ(r.SupportCount(T({1, 2})), 0u);  // present, uncounted
  EXPECT_EQ(r.AddSupport(T({1, 2})), 1u);
  EXPECT_EQ(r.AddSupport(T({1, 2})), 2u);
  EXPECT_EQ(r.AddSupport(T({9, 9})), 0u);  // absent: no-op
  r.SetSupport(T({1, 2}), 7u);
  EXPECT_EQ(r.SupportCount(T({1, 2})), 7u);
  r.Erase(T({1, 2}));
  EXPECT_EQ(r.SupportCount(T({1, 2})), 0u);
}

TEST(RelationTest, SupportCountsSurviveSwapRemove) {
  // Erasing a middle row swap-removes the last one into its slot; the
  // moved row's support must move with it.
  PredicateDecl decl = MakeDecl(2, false);
  Relation r(&decl);
  for (int64_t i = 0; i < 8; ++i) {
    r.Insert(T({i, i + 100}));
    for (int64_t j = 0; j <= i; ++j) r.AddSupport(T({i, i + 100}));
  }
  r.Erase(T({2, 102}));
  r.Erase(T({5, 105}));
  for (int64_t i = 0; i < 8; ++i) {
    if (i == 2 || i == 5) {
      EXPECT_EQ(r.SupportCount(T({i, i + 100})), 0u);
    } else {
      EXPECT_EQ(r.SupportCount(T({i, i + 100})),
                static_cast<uint32_t>(i + 1));
    }
  }
}

TEST(RelationTest, TupleHashingQuality) {
  TupleHash h;
  // Different orderings hash differently (order matters).
  EXPECT_NE(h(T({1, 2})), h(T({2, 1})));
  EXPECT_EQ(h(T({1, 2})), h(T({1, 2})));
  // Kind matters.
  Tuple str_tuple = {Value::Str("1"), Value::Str("2")};
  EXPECT_NE(h(T({1, 2})), h(str_tuple));
}

}  // namespace
}  // namespace secureblox::engine
