// Counting-based incremental deletion: support counts keep tuples with
// alternative derivations alive, recursive groups fall back to group-local
// DRed, aggregate outputs retract with their inputs, and failed deletes
// roll back exactly — including functional key slots.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "datalog/parser.h"
#include "engine/workspace.h"

namespace secureblox::engine {
namespace {

using datalog::Parse;
using datalog::Value;

void Install(Workspace* ws, const std::string& src) {
  auto program = Parse(src);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Status st = ws->Install(program.value());
  ASSERT_TRUE(st.ok()) << st.ToString();
}

std::set<std::string> QuerySet(Workspace& ws, const std::string& pred) {
  auto rows = ws.Query(pred);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  std::set<std::string> out;
  if (!rows.ok()) return out;
  for (const auto& t : rows.value()) {
    out.insert(TupleToString(t, ws.catalog()));
  }
  return out;
}

bool Contains(Workspace& ws, const std::string& pred,
              std::vector<Value> values) {
  auto r = ws.ContainsFact(pred, values);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() && r.value();
}

TEST(CountingDeleteTest, AlternativeDerivationSurvives) {
  Workspace ws;
  Install(&ws, R"(
    a(X) -> string(X).
    b(X) -> string(X).
    p(X) -> string(X).
    p(X) <- a(X).
    p(X) <- b(X).
  )");
  ASSERT_TRUE(ws.Insert("a", {Value::Str("x")}).ok());
  ASSERT_TRUE(ws.Insert("b", {Value::Str("x")}).ok());
  EXPECT_TRUE(Contains(ws, "p", {Value::Str("x")}));

  // Dropping one support must keep the tuple (count 2 -> 1), not erase it.
  auto del1 = ws.Apply({}, {{"a", {Value::Str("x")}}});
  ASSERT_TRUE(del1.ok()) << del1.status().ToString();
  EXPECT_TRUE(Contains(ws, "p", {Value::Str("x")}));
  EXPECT_GE(del1->fixpoint.rescued, 1u);
  EXPECT_EQ(del1->fixpoint.deleted, 0u);
  EXPECT_EQ(del1->fixpoint.group_rederives, 0u);  // pure counting path

  // The last support goes: now the tuple cascades out.
  auto del2 = ws.Apply({}, {{"b", {Value::Str("x")}}});
  ASSERT_TRUE(del2.ok()) << del2.status().ToString();
  EXPECT_FALSE(Contains(ws, "p", {Value::Str("x")}));
  EXPECT_GE(del2->fixpoint.deleted, 1u);
}

TEST(CountingDeleteTest, CascadesThroughStrata) {
  Workspace ws;
  Install(&ws, R"(
    a(X) -> string(X).
    p(X) -> string(X).
    q(X) -> string(X).
    p(X) <- a(X).
    q(X) <- p(X).
  )");
  ASSERT_TRUE(ws.Insert("a", {Value::Str("x")}).ok());
  EXPECT_TRUE(Contains(ws, "q", {Value::Str("x")}));
  auto del = ws.Apply({}, {{"a", {Value::Str("x")}}});
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_FALSE(Contains(ws, "p", {Value::Str("x")}));
  EXPECT_FALSE(Contains(ws, "q", {Value::Str("x")}));
  EXPECT_EQ(del->fixpoint.group_rederives, 0u);
}

TEST(CountingDeleteTest, MultiOccurrenceCountsAreExact) {
  // twohop joins link with itself: inserting both edges in one transaction
  // must count the (a,b),(b,c) instantiation exactly once — a double count
  // would leave twohop(a,c) alive after deleting link(a,b).
  Workspace ws;
  Install(&ws, R"(
    node(X) -> .
    link(X, Y) -> node(X), node(Y).
    twohop(X, Y) -> node(X), node(Y).
    twohop(X, Y) <- link(X, Z), link(Z, Y).
  )");
  auto commit = ws.Apply({{"link", {Value::Str("a"), Value::Str("b")}},
                          {"link", {Value::Str("b"), Value::Str("c")}}});
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_TRUE(Contains(ws, "twohop", {Value::Str("a"), Value::Str("c")}));

  auto del = ws.Apply({}, {{"link", {Value::Str("a"), Value::Str("b")}}});
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_FALSE(Contains(ws, "twohop", {Value::Str("a"), Value::Str("c")}));
}

TEST(CountingDeleteTest, DiamondSupportsCountBothPaths) {
  Workspace ws;
  Install(&ws, R"(
    node(X) -> .
    link(X, Y) -> node(X), node(Y).
    twohop(X, Y) -> node(X), node(Y).
    twohop(X, Y) <- link(X, Z), link(Z, Y).
  )");
  auto commit = ws.Apply({{"link", {Value::Str("a"), Value::Str("m1")}},
                          {"link", {Value::Str("m1"), Value::Str("c")}},
                          {"link", {Value::Str("a"), Value::Str("m2")}},
                          {"link", {Value::Str("m2"), Value::Str("c")}}});
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  // Two distinct instantiations derive twohop(a,c): losing one leg keeps it.
  auto del = ws.Apply({}, {{"link", {Value::Str("a"), Value::Str("m1")}}});
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_TRUE(Contains(ws, "twohop", {Value::Str("a"), Value::Str("c")}));
  auto del2 = ws.Apply({}, {{"link", {Value::Str("m2"), Value::Str("c")}}});
  ASSERT_TRUE(del2.ok()) << del2.status().ToString();
  EXPECT_FALSE(Contains(ws, "twohop", {Value::Str("a"), Value::Str("c")}));
}

TEST(CountingDeleteTest, RecursiveGroupUsesGroupLocalDRed) {
  Workspace ws;
  Install(&ws, R"(
    node(X) -> .
    link(X, Y) -> node(X), node(Y).
    reachable(X, Y) -> node(X), node(Y).
    reachable(X, Y) <- link(X, Y).
    reachable(X, Y) <- link(X, Z), reachable(Z, Y).
  )");
  auto commit = ws.Apply({{"link", {Value::Str("a"), Value::Str("b")}},
                          {"link", {Value::Str("b"), Value::Str("c")}},
                          {"link", {Value::Str("c"), Value::Str("d")}}});
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(QuerySet(ws, "reachable").size(), 6u);

  auto del = ws.Apply({}, {{"link", {Value::Str("b"), Value::Str("c")}}});
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(QuerySet(ws, "reachable").size(), 2u);  // a->b, c->d
  EXPECT_GE(del->fixpoint.group_rederives, 1u);
}

TEST(CountingDeleteTest, DeleteRetractsAggregateAndDownstream) {
  // A retraction must flow through an aggregate recompute point: the stale
  // total — and anything derived from it — cannot survive.
  Workspace ws;
  Install(&ws, R"(
    sale(X, V) -> string(X), int(V).
    total[X] = V -> string(X), int(V).
    big(X) -> string(X).
    total[X] = V <- agg<< V = sum(S) >> sale(X, S).
    big(X) <- total[X] = V, V > 10.
  )");
  auto commit = ws.Apply({{"sale", {Value::Str("a"), Value::Int(8)}},
                          {"sale", {Value::Str("a"), Value::Int(7)}}});
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_TRUE(Contains(ws, "total", {Value::Str("a"), Value::Int(15)}));
  EXPECT_TRUE(Contains(ws, "big", {Value::Str("a")}));

  auto del = ws.Apply({}, {{"sale", {Value::Str("a"), Value::Int(7)}}});
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_TRUE(Contains(ws, "total", {Value::Str("a"), Value::Int(8)}));
  EXPECT_FALSE(Contains(ws, "total", {Value::Str("a"), Value::Int(15)}));
  EXPECT_FALSE(Contains(ws, "big", {Value::Str("a")}));

  // Deleting the last input drops the group entirely.
  auto del2 = ws.Apply({}, {{"sale", {Value::Str("a"), Value::Int(8)}}});
  ASSERT_TRUE(del2.ok()) << del2.status().ToString();
  EXPECT_EQ(QuerySet(ws, "total").size(), 0u);
}

TEST(CountingDeleteTest, DeleteRecomputesLatticeShortestPath) {
  Workspace ws;
  Install(&ws, R"(
    node(X) -> .
    link(X, Y, C) -> node(X), node(Y), int(C).
    cost(X, Y, C) -> node(X), node(Y), int(C).
    bestcost[X, Y] = C -> node(X), node(Y), int(C).
    cost(X, Y, C) <- link(X, Y, C).
    cost(X, Y, C1 + C2) <- bestcost[X, Z] = C1, link(Z, Y, C2).
    bestcost[X, Y] = C <- agg<< C = min(Cx) >> cost(X, Y, Cx).
  )");
  auto commit = ws.Apply({
      {"link", {Value::Str("a"), Value::Str("b"), Value::Int(1)}},
      {"link", {Value::Str("b"), Value::Str("c"), Value::Int(1)}},
      {"link", {Value::Str("a"), Value::Str("c"), Value::Int(5)}},
  });
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_TRUE(Contains(ws, "bestcost",
                       {Value::Str("a"), Value::Str("c"), Value::Int(2)}));

  // Retracting the cheap leg must re-route a->c through the direct link —
  // a monotone lattice cannot do this incrementally, so the group
  // rederives locally.
  auto del = ws.Apply(
      {}, {{"link", {Value::Str("a"), Value::Str("b"), Value::Int(1)}}});
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_TRUE(Contains(ws, "bestcost",
                       {Value::Str("a"), Value::Str("c"), Value::Int(5)}));
  EXPECT_FALSE(Contains(ws, "bestcost",
                        {Value::Str("a"), Value::Str("b"), Value::Int(1)}));
  EXPECT_GE(del->fixpoint.group_rederives, 1u);
}

TEST(CountingDeleteTest, NegationFlipRecomputesAggregate) {
  // A negated atom inside an aggregate body is invisible to the
  // scan-predicate delta index; the flip queue alone must force the
  // recompute, in both directions.
  Workspace ws;
  Install(&ws, R"(
    sale(X, V) -> string(X), int(V).
    excluded(X) -> string(X).
    total[X] = V -> string(X), int(V).
    total[X] = V <- agg<< V = sum(S) >> sale(X, S), !excluded(X).
  )");
  auto commit = ws.Apply({{"sale", {Value::Str("a"), Value::Int(5)}},
                          {"sale", {Value::Str("b"), Value::Int(7)}}});
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(QuerySet(ws, "total").size(), 2u);

  ASSERT_TRUE(ws.Insert("excluded", {Value::Str("a")}).ok());
  EXPECT_EQ(QuerySet(ws, "total").size(), 1u);
  EXPECT_FALSE(Contains(ws, "total", {Value::Str("a"), Value::Int(5)}));

  auto del = ws.Apply({}, {{"excluded", {Value::Str("a")}}});
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_TRUE(Contains(ws, "total", {Value::Str("a"), Value::Int(5)}));
}

TEST(CountingDeleteTest, NegationFlipsOnDeleteAndInsert) {
  Workspace ws;
  Install(&ws, R"(
    node(X) -> .
    link(X, Y) -> node(X), node(Y).
    unlinked(X, Y) -> node(X), node(Y).
    unlinked(X, Y) <- node(X), node(Y), !link(X, Y), X != Y.
  )");
  auto commit = ws.Apply({{"link", {Value::Str("a"), Value::Str("b")}},
                          {"link", {Value::Str("b"), Value::Str("c")}}});
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(QuerySet(ws, "unlinked").size(), 4u);

  // Insert into the negated predicate: unlinked(a,c) must retract.
  ASSERT_TRUE(ws.Insert("link", {Value::Str("a"), Value::Str("c")}).ok());
  EXPECT_FALSE(Contains(ws, "unlinked", {Value::Str("a"), Value::Str("c")}));
  EXPECT_EQ(QuerySet(ws, "unlinked").size(), 3u);

  // Delete from the negated predicate: unlinked(a,b) must appear.
  auto del = ws.Apply({}, {{"link", {Value::Str("a"), Value::Str("b")}}});
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_TRUE(Contains(ws, "unlinked", {Value::Str("a"), Value::Str("b")}));
  EXPECT_EQ(QuerySet(ws, "unlinked").size(), 4u);
}

TEST(CountingDeleteTest, BaseFactWithDerivedSupportSurvivesBaseDelete) {
  Workspace ws;
  Install(&ws, R"(
    a(X) -> string(X).
    p(X) -> string(X).
    p(X) <- a(X).
  )");
  // p("x") asserted as base AND derived from a("x").
  ASSERT_TRUE(ws.Insert("a", {Value::Str("x")}).ok());
  ASSERT_TRUE(ws.Insert("p", {Value::Str("x")}).ok());
  // Deleting the base assertion keeps the derived support.
  auto del = ws.Apply({}, {{"p", {Value::Str("x")}}});
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_TRUE(Contains(ws, "p", {Value::Str("x")}));
  // Now the derivation goes too.
  auto del2 = ws.Apply({}, {{"a", {Value::Str("x")}}});
  ASSERT_TRUE(del2.ok()) << del2.status().ToString();
  EXPECT_FALSE(Contains(ws, "p", {Value::Str("x")}));
}

TEST(CountingDeleteTest, RollbackAfterFailedDelete) {
  Workspace ws;
  Install(&ws, R"(
    item(X) -> string(X).
    approved(X) -> string(X).
    item(X) -> approved(X).
  )");
  ASSERT_TRUE(ws.Insert("approved", {Value::Str("x")}).ok());
  ASSERT_TRUE(ws.Insert("item", {Value::Str("x")}).ok());

  // Deleting the approval while the item remains violates the constraint;
  // the whole transaction — including the delete — must roll back.
  auto del = ws.Apply({}, {{"approved", {Value::Str("x")}}});
  EXPECT_FALSE(del.ok());
  EXPECT_EQ(del.status().code(), StatusCode::kConstraintViolation);
  EXPECT_TRUE(Contains(ws, "approved", {Value::Str("x")}));
  EXPECT_TRUE(Contains(ws, "item", {Value::Str("x")}));
  EXPECT_GE(ws.stats().aborts, 1u);

  // The workspace stays fully usable: delete both in one transaction.
  auto ok = ws.Apply({}, {{"item", {Value::Str("x")}},
                          {"approved", {Value::Str("x")}}});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_FALSE(Contains(ws, "item", {Value::Str("x")}));
}

TEST(CountingDeleteTest, RollbackRestoresReoccupiedFunctionalSlot) {
  Workspace ws;
  Install(&ws, R"(
    owner[X] = Y -> string(X), string(Y).
    ok(Y) -> string(Y).
    owner[X] = Y -> ok(Y).
  )");
  ASSERT_TRUE(ws.Insert("ok", {Value::Str("ann")}).ok());
  ASSERT_TRUE(
      ws.Insert("owner", {Value::Str("book"), Value::Str("ann")}).ok());

  // One transaction frees the key slot and reoccupies it with a value that
  // violates the constraint: rollback must restore owner[book] = ann, not
  // silently drop it because the slot was taken.
  auto swap = ws.Apply({{"owner", {Value::Str("book"), Value::Str("bob")}}},
                       {{"owner", {Value::Str("book"), Value::Str("ann")}}});
  EXPECT_FALSE(swap.ok());
  EXPECT_EQ(swap.status().code(), StatusCode::kConstraintViolation);
  EXPECT_TRUE(Contains(ws, "owner", {Value::Str("book"), Value::Str("ann")}));
  EXPECT_FALSE(Contains(ws, "owner", {Value::Str("book"), Value::Str("bob")}));

  // Counts survived the rollback: deleting the restored fact still works.
  auto del = ws.Apply({}, {{"owner", {Value::Str("book"),
                                      Value::Str("ann")}}});
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(QuerySet(ws, "owner").size(), 0u);
}

TEST(CountingDeleteTest, DeleteWorkIsProportionalToAffectedTuples) {
  // Large non-recursive database: deleting one base fact must not replay
  // the whole database (the old engine over-deleted and rederived all of
  // it; firings would scale with N).
  Workspace ws;
  Install(&ws, R"(
    pair(X, Y) -> string(X), string(Y).
    left(X) -> string(X).
    left(X) <- pair(X, Y).
  )");
  std::vector<FactUpdate> inserts;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    inserts.push_back({"pair",
                       {Value::Str("k" + std::to_string(i)),
                        Value::Str("v" + std::to_string(i))}});
  }
  ASSERT_TRUE(ws.Apply(inserts).ok());
  ASSERT_EQ(QuerySet(ws, "left").size(), static_cast<size_t>(n));

  auto del = ws.Apply({}, {{"pair", {Value::Str("k7"), Value::Str("v7")}}});
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(QuerySet(ws, "left").size(), static_cast<size_t>(n - 1));
  // One retraction variant fired, one support dropped, one tuple deleted —
  // and nothing was reseeded.
  EXPECT_EQ(del->fixpoint.group_rederives, 0u);
  EXPECT_EQ(del->fixpoint.rederive_seeded, 0u);
  EXPECT_EQ(del->fixpoint.retractions, 1u);
  EXPECT_EQ(del->fixpoint.deleted, 1u);
  EXPECT_LE(del->fixpoint.rule_firings + del->fixpoint.retract_firings, 4u);
}

TEST(CountingDeleteTest, GroupLocalDRedDoesNotReseedUnrelatedPredicates) {
  // A recursive group forces DRed, but rederivation must stay inside the
  // group's own inputs — the big unrelated predicate family is untouched.
  Workspace ws;
  Install(&ws, R"(
    node(X) -> .
    link(X, Y) -> node(X), node(Y).
    reachable(X, Y) -> node(X), node(Y).
    reachable(X, Y) <- link(X, Y).
    reachable(X, Y) <- link(X, Z), reachable(Z, Y).
    pair(X, Y) -> string(X), string(Y).
    left(X) -> string(X).
    left(X) <- pair(X, Y).
  )");
  std::vector<FactUpdate> inserts;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    inserts.push_back({"pair",
                       {Value::Str("k" + std::to_string(i)),
                        Value::Str("v" + std::to_string(i))}});
  }
  inserts.push_back({"link", {Value::Str("a"), Value::Str("b")}});
  inserts.push_back({"link", {Value::Str("b"), Value::Str("c")}});
  ASSERT_TRUE(ws.Apply(inserts).ok());

  auto del = ws.Apply({}, {{"link", {Value::Str("a"), Value::Str("b")}}});
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(QuerySet(ws, "reachable").size(), 1u);  // b->c
  EXPECT_GE(del->fixpoint.group_rederives, 1u);
  // The reseed covers the reachable group's inputs (links + entity
  // membership), not the 400 unrelated pairs.
  EXPECT_LT(del->fixpoint.rederive_seeded, 50u);
}

}  // namespace
}  // namespace secureblox::engine
