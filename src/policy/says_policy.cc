#include "policy/says_policy.h"

#include "common/strings.h"
#include "datalog/parser.h"
#include "datalog/typecheck.h"
#include "policy/builtins.h"

namespace secureblox::policy {

const char* AuthSchemeName(AuthScheme scheme) {
  switch (scheme) {
    case AuthScheme::kNone:
      return "NoAuth";
    case AuthScheme::kHmac:
      return "HMAC";
    case AuthScheme::kRsa:
      return "RSA";
  }
  return "?";
}

const char* EncSchemeName(EncScheme scheme) {
  switch (scheme) {
    case EncScheme::kNone:
      return "";
    case EncScheme::kAes:
      return "AES";
  }
  return "?";
}

std::string PreludeSource() {
  return R"(
// --- SecureBlox prelude: built-in types and infrastructure (paper §5.1) ---
node(X) -> .
principal(X) -> .
principal_node[P] = N -> principal(P), node(N).
self[] = P -> principal(P).
local_node[] = N -> node(N).
export(N, L, T) -> node(N), node(L), blob(T).
public_key(P, K) -> principal(P), blob(K).
secret(P, K) -> principal(P), blob(K).
private_key[] = K -> blob(K).
trustworthy(P) -> principal(P).
)";
}

std::string SaysPolicySource(const SaysPolicyOptions& o) {
  std::vector<std::string> heads;   // generic rule head atoms
  std::vector<std::string> lines;   // template body

  heads.push_back("says[T] = ST");
  heads.push_back("predicate(ST)");
  lines.push_back(
      "ST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*).");

  const bool signed_scheme = o.auth != AuthScheme::kNone;
  if (signed_scheme) {
    heads.push_back("sig[T] = GT");
    heads.push_back("predicate(GT)");
    lines.push_back(
        "GT(P1, P2, V*, G) -> principal(P1), principal(P2), types[T](V*), "
        "blob(G).");
    // Signature generation at the sender (§3.2).
    if (o.auth == AuthScheme::kRsa) {
      lines.push_back(
          "GT(S, R, V*, G) <- ST(S, R, V*), self[] = S, "
          "sign_payload[T](S, R, V*, PL), private_key[] = K, "
          "rsa_sign(K, PL, G).");
      // Verification constraint at the receiver: any fact said to me by a
      // remote principal must carry a valid signature under P's public key.
      lines.push_back(
          "ST(P, R, V*), self[] = R, P != R -> GT(P, R, V*, G), "
          "public_key(P, K), sign_payload[T](P, R, V*, PL), "
          "rsa_verify(K, PL, G).");
    } else {
      lines.push_back(
          "GT(S, R, V*, G) <- ST(S, R, V*), self[] = S, "
          "sign_payload[T](S, R, V*, PL), secret(R, K), hmac_sign(K, PL, G).");
      lines.push_back(
          "ST(P, R, V*), self[] = R, P != R -> GT(P, R, V*, G), "
          "secret(P, K), sign_payload[T](P, R, V*, PL), "
          "hmac_verify(K, PL, G).");
    }
  }

  if (o.write_access) {
    heads.push_back("writeAccess[T] = WT");
    heads.push_back("predicate(WT)");
    lines.push_back("WT(P) -> principal(P).");
    lines.push_back("ST(P1, P2, V*) -> WT(P1).");
  }

  if (o.distribute) {
    // Export: serialize the said fact (plus signature when authenticated),
    // optionally AES-encrypt under the pairwise secret, and derive export
    // at the receiver's location (§5.1).
    std::string serialize_body =
        signed_scheme
            ? "GT(S, R, V*, G), serialize_signed[T](S, R, G, V*, PL0)"
            : "serialize[T](S, R, V*, PL0)";
    std::string wrap =
        o.enc == EncScheme::kAes
            ? ", secret(R, EK), aesencrypt(PL0, EK, PL)"
            : ", PL = PL0";
    lines.push_back("export(N, L, PL) <- ST(S, R, V*), self[] = S, " +
                    serialize_body + wrap +
                    ", principal_node[R] = N, principal_node[S] = L, "
                    "N != L.");

    // Import: decrypt (sender resolved from the source node), deserialize,
    // and re-derive the said fact (and its signature) locally.
    std::string unwrap =
        o.enc == EncScheme::kAes
            ? "principal_node[U0] = L, secret(U0, EK), "
              "aesdecrypt(PL, EK, PL0), "
            : "PL0 = PL, ";
    if (signed_scheme) {
      lines.push_back(
          "ST(U, RR, V*), GT(U, RR, V*, G) <- export(N, L, PL), "
          "local_node[] = N, " + unwrap +
          "deserialize_signed[T](PL0, U, RR, G, V*), self[] = RR.");
    } else {
      lines.push_back(
          "ST(U, RR, V*) <- export(N, L, PL), local_node[] = N, " + unwrap +
          "deserialize[T](PL0, U, RR, V*), self[] = RR.");
    }
  }

  switch (o.accept) {
    case AcceptMode::kNone:
      break;
    case AcceptMode::kBenign:
      lines.push_back("T(V*) <- ST(P, R, V*), self[] = R.");
      break;
    case AcceptMode::kTrustworthy:
      lines.push_back("T(V*) <- ST(P, R, V*), self[] = R, trustworthy(P).");
      break;
    case AcceptMode::kPerPredicate:
      heads.push_back("trustworthyPerPred[T] = DT");
      heads.push_back("predicate(DT)");
      lines.push_back("DT(P) -> principal(P).");
      lines.push_back("T(V*) <- ST(P, R, V*), self[] = R, DT(P).");
      break;
  }

  std::string out = "// --- says policy: " +
                    std::string(AuthSchemeName(o.auth)) +
                    (o.enc == EncScheme::kAes ? "-AES" : "") + " ---\n";
  out += Join(heads, ", ") + ",\n`{\n";
  for (const auto& line : lines) out += "  " + line + "\n";
  out += "}\n<-- predicate(T), exportable(T).\n";
  if (o.exportable_constraint) {
    out += "says(T, ST) --> exportable(T).\n";
  }
  return out;
}

std::string AnonPreludeSource() {
  return R"(
// --- anonymity prelude: onion circuits (paper §6.2) ---
circuit(C) -> .
anon_path[P] = C -> principal(P), circuit(C).
anon_path_forward_id[C] = I -> circuit(C), int(I).
anon_path_backward_id[C] = I -> circuit(C), int(I).
anon_path_nexthop[C] = N -> circuit(C), node(N).
anon_path_prevhop[C] = N -> circuit(C), node(N).
anon_path_endpoint(C) -> circuit(C).
anon_path_initiator(C) -> circuit(C).
anon_export(N, L, I, CT) -> node(N), node(L), int(I), blob(CT).
anon_export_back(N, L, I, CT) -> node(N), node(L), int(I), blob(CT).

// Forward relay: peel one layer and pass to the next hop.
anon_export(N2, N, I2, CT2) <-
    anon_export(N, L, I, CT), local_node[] = N,
    anon_path_backward_id[C] = I, !anon_path_endpoint(C),
    anon_path_forward_id[C] = I2, anon_path_nexthop[C] = N2,
    anon_decrypt(C, CT, CT2).

// Backward relay: add one layer and pass toward the initiator.
anon_export_back(N0, N, I0, CT2) <-
    anon_export_back(N, L, I, CT), local_node[] = N,
    anon_path_forward_id[C] = I, !anon_path_initiator(C),
    anon_path_backward_id[C] = I0, anon_path_prevhop[C] = N0,
    anon_encrypt(C, CT, CT2).
)";
}

std::string AnonSaysPolicySource() {
  return R"(
// --- anon_says policy (paper §6.2) ---
anon_says[T] = AST, predicate(AST),
anon_in[T] = AIT, predicate(AIT),
anon_out[T] = AOT, predicate(AOT),
anon_reply[T] = ART, predicate(ART),
`{
  AST(P1, P2, V*) -> principal(P1), principal(P2), types[T](V*).
  AIT(C, V*) -> circuit(C), types[T](V*).
  AOT(C, V*) -> circuit(C), types[T](V*).
  ART(C, V*) -> circuit(C), types[T](V*).

  // Initiator: serialize (no sender identity — footnote 3), wrap all layers,
  // send to the first hop.
  anon_export(N, LN, I, CT) <-
      AST(S, R, V*), self[] = S, anon_serialize[T](V*, PT),
      anon_path[R] = C, anon_path_forward_id[C] = I,
      anon_path_nexthop[C] = N, local_node[] = LN,
      anon_encrypt(C, PT, CT).

  // Endpoint: peel the final layer; the sender is known only as circuit C.
  AIT(C, V*) <-
      anon_export(N, L, I, CT), local_node[] = N,
      anon_path_backward_id[C] = I, anon_path_endpoint(C),
      anon_decrypt(C, CT, PT), anon_deserialize[T](PT, V*).

  // Endpoint reply: send back along the circuit.
  anon_export_back(NP, LN, IB, CT) <-
      AOT(C, V*), anon_path_endpoint(C), anon_serialize[T](V*, PT),
      anon_path_backward_id[C] = IB, anon_path_prevhop[C] = NP,
      local_node[] = LN, anon_encrypt(C, PT, CT).

  // Initiator receives the reply: peel all layers.
  ART(C, V*) <-
      anon_export_back(N, L, I, CT), local_node[] = N,
      anon_path_forward_id[C] = I, anon_path_initiator(C),
      anon_decrypt(C, CT, PT), anon_deserialize[T](PT, V*).
}
<-- predicate(T), anon_exportable(T).
)";
}

Result<generics::ExpansionResult> CompileWithPolicies(
    engine::Workspace* ws, const std::vector<std::string>& sources) {
  datalog::Program merged;
  for (size_t i = 0; i < sources.size(); ++i) {
    SB_ASSIGN_OR_RETURN(
        datalog::Program p,
        datalog::Parse(sources[i], "unit" + std::to_string(i)));
    merged.Merge(std::move(p));
  }

  generics::BloxGenericsCompiler compiler;
  SB_ASSIGN_OR_RETURN(generics::ExpansionResult expanded,
                      compiler.Compile(merged));

  // Register serde builtin families for every exportable predicate before
  // installation (the typechecker needs their signatures). Argument type
  // names come from the schema of the merged program.
  datalog::Catalog schema;
  {
    datalog::Program schema_only;
    schema_only.constraints = expanded.program.constraints;
    auto runtime = datalog::BuildSchema(schema_only, &schema);
    if (!runtime.ok()) return runtime.status();
  }
  auto register_for = [&](const std::string& pred_name) -> Status {
    SB_ASSIGN_OR_RETURN(datalog::PredId pred, schema.Lookup(pred_name));
    std::vector<std::string> type_names;
    for (datalog::PredId t : schema.decl(pred).arg_types) {
      type_names.push_back(schema.decl(t).name);
    }
    return RegisterSerdeBuiltins(ws, pred_name, type_names);
  };
  for (const char* marker : {"exportable", "anon_exportable"}) {
    for (const auto& tuple : expanded.meta.Tuples(marker)) {
      SB_RETURN_IF_ERROR(register_for(tuple[0]));
    }
  }
  SB_RETURN_IF_ERROR(RegisterCryptoBuiltins(ws));
  return expanded;
}

}  // namespace secureblox::policy
