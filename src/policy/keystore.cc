#include "policy/keystore.h"

#include <mutex>

#include "crypto/hmac.h"
#include "crypto/hmac_drbg.h"

namespace secureblox::policy {

namespace {

// Process-wide RSA keypair cache (keyed by seed/bits/slot). Generation of a
// 1024-bit key costs ~seconds with the from-scratch bignum; benchmarks
// re-use slots across cluster sizes.
const crypto::RsaKeyPair* CachedKeyPair(const std::string& seed, size_t bits,
                                        size_t slot) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<crypto::RsaKeyPair>>* cache =
      new std::map<std::string, std::unique_ptr<crypto::RsaKeyPair>>();
  std::string key =
      seed + "/" + std::to_string(bits) + "/" + std::to_string(slot);
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();
  crypto::HmacDrbg drbg(BytesFromString(key));
  auto kp = crypto::RsaGenerateKeyPair(bits, [&] { return drbg.NextU32(); });
  auto owned = std::make_unique<crypto::RsaKeyPair>(std::move(kp).value());
  const crypto::RsaKeyPair* ptr = owned.get();
  (*cache)[key] = std::move(owned);
  return ptr;
}

}  // namespace

CredentialAuthority::CredentialAuthority(std::vector<std::string> principals,
                                         Options options)
    : principals_(std::move(principals)), options_(options) {
  size_t slots = options_.distinct_keypairs == 0
                     ? principals_.size()
                     : std::min(options_.distinct_keypairs, principals_.size());
  for (size_t i = 0; i < principals_.size(); ++i) {
    keys_[principals_[i]] =
        CachedKeyPair(options_.seed, options_.rsa_bits, i % slots);
  }
}

Bytes CredentialAuthority::SecretBetween(const std::string& a,
                                         const std::string& b) const {
  const std::string& lo = a < b ? a : b;
  const std::string& hi = a < b ? b : a;
  Bytes material =
      BytesFromString(options_.seed + "|secret|" + lo + "|" + hi);
  // Derive the 128-bit secret via HMAC-SHA256 of the pair identity.
  Bytes mac = crypto::HmacSha256(BytesFromString(options_.seed), material);
  return Bytes(mac.begin(), mac.begin() + 16);
}

Result<const crypto::RsaKeyPair*> CredentialAuthority::KeyPairOf(
    const std::string& principal) const {
  auto it = keys_.find(principal);
  if (it == keys_.end()) {
    return Status::NotFound("unknown principal '" + principal + "'");
  }
  return it->second;
}

Result<Credentials> CredentialAuthority::IssueFor(
    const std::string& principal) const {
  SB_ASSIGN_OR_RETURN(const crypto::RsaKeyPair* own, KeyPairOf(principal));
  Credentials creds;
  creds.principal = principal;
  creds.keypair = *own;
  for (const std::string& peer : principals_) {
    SB_ASSIGN_OR_RETURN(const crypto::RsaKeyPair* pk, KeyPairOf(peer));
    creds.peer_public_keys[peer] = pk->pub.Serialize();
    if (peer != principal) {
      creds.shared_secrets[peer] = SecretBetween(principal, peer);
    }
  }
  return creds;
}

}  // namespace secureblox::policy
