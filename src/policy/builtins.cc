#include "policy/builtins.h"

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "net/wire.h"

namespace secureblox::policy {

using datalog::BuiltinSignature;
using datalog::Value;
using datalog::ValueKind;
using engine::EvalContext;

namespace {

Result<NodeSecurityState*> StateOf(EvalContext& ctx) {
  if (ctx.user == nullptr) {
    return Status::Internal(
        "crypto builtin invoked without NodeSecurityState");
  }
  return static_cast<NodeSecurityState*>(ctx.user);
}

// Deterministic AES-CTR nonce (SIV-style): HMAC-SHA1(key, pt) truncated.
// Determinism keeps rule re-evaluation idempotent; uniqueness follows from
// distinct plaintexts under the same key.
Bytes SivNonce(const Bytes& key, const Bytes& pt) {
  Bytes mac = crypto::HmacSha1(key, pt);
  return Bytes(mac.begin(), mac.begin() + 16);
}

Result<Bytes> AesWrap(const Bytes& key, const Bytes& pt) {
  return crypto::AesCtrEncrypt(key, SivNonce(key, pt), pt);
}

}  // namespace

Bytes PrivateKeyHandle(const std::string& principal) {
  return BytesFromString("priv:" + principal);
}

Status RegisterCryptoBuiltins(engine::Workspace* ws) {
  engine::BuiltinRegistry& reg = ws->builtins();

  reg.RegisterOrReplace(
      "rsa_sign", BuiltinSignature{{"blob", "blob", "blob"}, 2},
      [](EvalContext& ctx, const std::vector<Value>& in,
         std::vector<Value>* out) -> Result<bool> {
        SB_ASSIGN_OR_RETURN(NodeSecurityState * state, StateOf(ctx));
        std::string handle = in[0].BlobRef();
        if (handle != "priv:" + state->creds.principal) {
          return Status::CryptoError(
              "rsa_sign: private key handle does not belong to this node");
        }
        SB_ASSIGN_OR_RETURN(
            Bytes sig, crypto::RsaSign(state->creds.keypair, in[1].AsBlob()));
        out->push_back(Value::MakeBlob(std::move(sig)));
        return true;
      });

  reg.RegisterOrReplace(
      "rsa_verify", BuiltinSignature{{"blob", "blob", "blob"}, 3},
      [](EvalContext&, const std::vector<Value>& in,
         std::vector<Value>*) -> Result<bool> {
        auto pub = crypto::RsaPublicKey::Deserialize(in[0].AsBlob());
        if (!pub.ok()) return false;
        return crypto::RsaVerify(pub.value(), in[1].AsBlob(), in[2].AsBlob());
      });

  reg.RegisterOrReplace(
      "hmac_sign", BuiltinSignature{{"blob", "blob", "blob"}, 2},
      [](EvalContext&, const std::vector<Value>& in,
         std::vector<Value>* out) -> Result<bool> {
        out->push_back(
            Value::MakeBlob(crypto::HmacSha1(in[0].AsBlob(), in[1].AsBlob())));
        return true;
      });

  reg.RegisterOrReplace(
      "hmac_verify", BuiltinSignature{{"blob", "blob", "blob"}, 3},
      [](EvalContext&, const std::vector<Value>& in,
         std::vector<Value>*) -> Result<bool> {
        return crypto::HmacSha1Verify(in[0].AsBlob(), in[1].AsBlob(),
                                      in[2].AsBlob());
      });

  reg.RegisterOrReplace(
      "aesencrypt", BuiltinSignature{{"blob", "blob", "blob"}, 2},
      [](EvalContext&, const std::vector<Value>& in,
         std::vector<Value>* out) -> Result<bool> {
        SB_ASSIGN_OR_RETURN(Bytes ct, AesWrap(in[1].AsBlob(), in[0].AsBlob()));
        out->push_back(Value::MakeBlob(std::move(ct)));
        return true;
      });

  reg.RegisterOrReplace(
      "aesdecrypt", BuiltinSignature{{"blob", "blob", "blob"}, 2},
      [](EvalContext&, const std::vector<Value>& in,
         std::vector<Value>* out) -> Result<bool> {
        auto pt = crypto::AesCtrDecrypt(in[1].AsBlob(), in[0].AsBlob());
        if (!pt.ok()) return false;
        out->push_back(Value::MakeBlob(std::move(pt).value()));
        return true;
      });

  // Layered (onion) encryption over a circuit's keys. The initiator holds
  // all hop keys and wraps them in reverse path order; relays hold exactly
  // one key and add/peel a single layer.
  reg.RegisterOrReplace(
      "anon_encrypt", BuiltinSignature{{"circuit", "blob", "blob"}, 2},
      [](EvalContext& ctx, const std::vector<Value>& in,
         std::vector<Value>* out) -> Result<bool> {
        SB_ASSIGN_OR_RETURN(NodeSecurityState * state, StateOf(ctx));
        SB_ASSIGN_OR_RETURN(std::string label,
                            ctx.catalog->EntityLabel(in[0]));
        auto it = state->circuits.layer_keys_by_label.find(label);
        if (it == state->circuits.layer_keys_by_label.end()) return false;
        Bytes ct = in[1].AsBlob();
        for (auto key = it->second.rbegin(); key != it->second.rend(); ++key) {
          SB_ASSIGN_OR_RETURN(ct, AesWrap(*key, ct));
        }
        out->push_back(Value::MakeBlob(std::move(ct)));
        return true;
      });

  reg.RegisterOrReplace(
      "anon_decrypt", BuiltinSignature{{"circuit", "blob", "blob"}, 2},
      [](EvalContext& ctx, const std::vector<Value>& in,
         std::vector<Value>* out) -> Result<bool> {
        SB_ASSIGN_OR_RETURN(NodeSecurityState * state, StateOf(ctx));
        SB_ASSIGN_OR_RETURN(std::string label,
                            ctx.catalog->EntityLabel(in[0]));
        auto it = state->circuits.layer_keys_by_label.find(label);
        if (it == state->circuits.layer_keys_by_label.end()) return false;
        Bytes pt = in[1].AsBlob();
        for (const Bytes& key : it->second) {
          auto peeled = crypto::AesCtrDecrypt(key, pt);
          if (!peeled.ok()) return false;
          pt = std::move(peeled).value();
        }
        out->push_back(Value::MakeBlob(std::move(pt)));
        return true;
      });

  return Status::OK();
}

namespace {

// Canonical payload encoding shared by serialize/sign families:
//   pred | sender label | receiver label | sig? | values...
Result<Bytes> EncodePayload(EvalContext& ctx, const std::string& pred,
                            const Value* sender, const Value* receiver,
                            const Bytes* sig,
                            const std::vector<Value>& values, size_t offset) {
  ByteWriter w;
  w.PutLengthPrefixedString(pred);
  auto put_principal = [&](const Value& v) -> Status {
    SB_ASSIGN_OR_RETURN(std::string label, ctx.catalog->EntityLabel(v));
    w.PutLengthPrefixedString(label);
    return Status::OK();
  };
  w.PutU8(sender != nullptr ? 1 : 0);
  if (sender != nullptr) {
    SB_RETURN_IF_ERROR(put_principal(*sender));
    SB_RETURN_IF_ERROR(put_principal(*receiver));
  }
  w.PutU8(sig != nullptr ? 1 : 0);
  if (sig != nullptr) w.PutLengthPrefixed(*sig);
  w.PutVarint(values.size() - offset);
  for (size_t i = offset; i < values.size(); ++i) {
    SB_RETURN_IF_ERROR(net::SerializeValue(&w, values[i], *ctx.catalog));
  }
  return w.Take();
}

struct DecodedPayload {
  std::optional<Value> sender, receiver;
  std::optional<Bytes> sig;
  std::vector<Value> values;
};

Result<DecodedPayload> DecodePayload(EvalContext& ctx,
                                     const std::string& expected_pred,
                                     const Bytes& payload) {
  ByteReader r(payload);
  DecodedPayload out;
  SB_ASSIGN_OR_RETURN(std::string pred, r.GetLengthPrefixedString());
  if (pred != expected_pred) {
    return Status::InvalidArgument("payload is for predicate '" + pred +
                                   "', expected '" + expected_pred + "'");
  }
  SB_ASSIGN_OR_RETURN(datalog::PredId principal_type,
                      ctx.catalog->Lookup("principal"));
  SB_ASSIGN_OR_RETURN(uint8_t has_principals, r.GetU8());
  if (has_principals) {
    SB_ASSIGN_OR_RETURN(std::string s, r.GetLengthPrefixedString());
    SB_ASSIGN_OR_RETURN(std::string rr, r.GetLengthPrefixedString());
    SB_ASSIGN_OR_RETURN(Value sv, ctx.catalog->InternEntity(principal_type, s));
    SB_ASSIGN_OR_RETURN(Value rv,
                        ctx.catalog->InternEntity(principal_type, rr));
    out.sender = sv;
    out.receiver = rv;
  }
  SB_ASSIGN_OR_RETURN(uint8_t has_sig, r.GetU8());
  if (has_sig) {
    SB_ASSIGN_OR_RETURN(Bytes sig, r.GetLengthPrefixed());
    out.sig = std::move(sig);
  }
  SB_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    SB_ASSIGN_OR_RETURN(Value v, net::DeserializeValue(&r, ctx.catalog));
    out.values.push_back(std::move(v));
  }
  return out;
}

}  // namespace

Status RegisterSerdeBuiltins(engine::Workspace* ws, const std::string& pred,
                             const std::vector<std::string>& arg_type_names) {
  engine::BuiltinRegistry& reg = ws->builtins();
  const size_t arity = arg_type_names.size();

  // serialize$P(S, R, V*) -> payload
  {
    BuiltinSignature sig;
    sig.arg_types = {"principal", "principal"};
    for (const auto& t : arg_type_names) sig.arg_types.push_back(t);
    sig.arg_types.push_back("blob");
    sig.num_inputs = static_cast<int>(2 + arity);
    reg.RegisterOrReplace(
        "serialize$" + pred, sig,
        [pred](EvalContext& ctx, const std::vector<Value>& in,
               std::vector<Value>* out) -> Result<bool> {
          SB_ASSIGN_OR_RETURN(
              Bytes payload,
              EncodePayload(ctx, pred, &in[0], &in[1], nullptr, in, 2));
          out->push_back(Value::MakeBlob(std::move(payload)));
          return true;
        });
  }
  // deserialize$P(payload) -> S, R, V*
  {
    BuiltinSignature sig;
    sig.arg_types = {"blob", "principal", "principal"};
    for (const auto& t : arg_type_names) sig.arg_types.push_back(t);
    sig.num_inputs = 1;
    reg.RegisterOrReplace(
        "deserialize$" + pred, sig,
        [pred, arity](EvalContext& ctx, const std::vector<Value>& in,
                      std::vector<Value>* out) -> Result<bool> {
          auto decoded = DecodePayload(ctx, pred, in[0].AsBlob());
          if (!decoded.ok()) return false;  // malformed: no binding
          if (!decoded->sender.has_value() || decoded->sig.has_value() ||
              decoded->values.size() != arity) {
            return false;
          }
          out->push_back(*decoded->sender);
          out->push_back(*decoded->receiver);
          for (auto& v : decoded->values) out->push_back(std::move(v));
          return true;
        },
        /*thread_safe=*/false);  // DecodePayload interns entities
  }
  // serialize_signed$P(S, R, G, V*) -> payload
  {
    BuiltinSignature sig;
    sig.arg_types = {"principal", "principal", "blob"};
    for (const auto& t : arg_type_names) sig.arg_types.push_back(t);
    sig.arg_types.push_back("blob");
    sig.num_inputs = static_cast<int>(3 + arity);
    reg.RegisterOrReplace(
        "serialize_signed$" + pred, sig,
        [pred](EvalContext& ctx, const std::vector<Value>& in,
               std::vector<Value>* out) -> Result<bool> {
          Bytes g = in[2].AsBlob();
          SB_ASSIGN_OR_RETURN(
              Bytes payload,
              EncodePayload(ctx, pred, &in[0], &in[1], &g, in, 3));
          out->push_back(Value::MakeBlob(std::move(payload)));
          return true;
        });
  }
  // deserialize_signed$P(payload) -> S, R, G, V*
  {
    BuiltinSignature sig;
    sig.arg_types = {"blob", "principal", "principal", "blob"};
    for (const auto& t : arg_type_names) sig.arg_types.push_back(t);
    sig.num_inputs = 1;
    reg.RegisterOrReplace(
        "deserialize_signed$" + pred, sig,
        [pred, arity](EvalContext& ctx, const std::vector<Value>& in,
                      std::vector<Value>* out) -> Result<bool> {
          auto decoded = DecodePayload(ctx, pred, in[0].AsBlob());
          if (!decoded.ok()) return false;
          if (!decoded->sender.has_value() || !decoded->sig.has_value() ||
              decoded->values.size() != arity) {
            return false;
          }
          out->push_back(*decoded->sender);
          out->push_back(*decoded->receiver);
          out->push_back(Value::MakeBlob(*decoded->sig));
          for (auto& v : decoded->values) out->push_back(std::move(v));
          return true;
        },
        /*thread_safe=*/false);  // DecodePayload interns entities
  }
  // sign_payload$P(S, R, V*) -> canonical bytes (what gets signed/MACed).
  {
    BuiltinSignature sig;
    sig.arg_types = {"principal", "principal"};
    for (const auto& t : arg_type_names) sig.arg_types.push_back(t);
    sig.arg_types.push_back("blob");
    sig.num_inputs = static_cast<int>(2 + arity);
    reg.RegisterOrReplace(
        "sign_payload$" + pred, sig,
        [pred](EvalContext& ctx, const std::vector<Value>& in,
               std::vector<Value>* out) -> Result<bool> {
          SB_ASSIGN_OR_RETURN(
              Bytes payload,
              EncodePayload(ctx, pred, &in[0], &in[1], nullptr, in, 2));
          out->push_back(Value::MakeBlob(std::move(payload)));
          return true;
        });
  }
  // anon_serialize$P(V*) -> payload (no sender identity — paper footnote 3).
  {
    BuiltinSignature sig;
    for (const auto& t : arg_type_names) sig.arg_types.push_back(t);
    sig.arg_types.push_back("blob");
    sig.num_inputs = static_cast<int>(arity);
    reg.RegisterOrReplace(
        "anon_serialize$" + pred, sig,
        [pred](EvalContext& ctx, const std::vector<Value>& in,
               std::vector<Value>* out) -> Result<bool> {
          SB_ASSIGN_OR_RETURN(
              Bytes payload,
              EncodePayload(ctx, pred, nullptr, nullptr, nullptr, in, 0));
          out->push_back(Value::MakeBlob(std::move(payload)));
          return true;
        });
  }
  // anon_deserialize$P(payload) -> V*
  {
    BuiltinSignature sig;
    sig.arg_types = {"blob"};
    for (const auto& t : arg_type_names) sig.arg_types.push_back(t);
    sig.num_inputs = 1;
    reg.RegisterOrReplace(
        "anon_deserialize$" + pred, sig,
        [pred, arity](EvalContext& ctx, const std::vector<Value>& in,
                      std::vector<Value>* out) -> Result<bool> {
          auto decoded = DecodePayload(ctx, pred, in[0].AsBlob());
          if (!decoded.ok()) return false;
          if (decoded->sender.has_value() || decoded->sig.has_value() ||
              decoded->values.size() != arity) {
            return false;
          }
          for (auto& v : decoded->values) out->push_back(std::move(v));
          return true;
        },
        /*thread_safe=*/false);  // DecodePayload interns entities
  }
  return Status::OK();
}

}  // namespace secureblox::policy
