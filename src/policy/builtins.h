// Cryptographic and serialization builtins hooked into query execution —
// the paper's "user-defined functions" (`rsa_sign`, `rsa_verify`,
// `hmac_sign`, `hmac_verify`, `aesencrypt`, `serialize`, `anon_encrypt`,
// ...). They read key material from the node's NodeSecurityState, which the
// workspace passes as the opaque EvalContext::user pointer.
#ifndef SECUREBLOX_POLICY_BUILTINS_H_
#define SECUREBLOX_POLICY_BUILTINS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/workspace.h"
#include "policy/keystore.h"

namespace secureblox::policy {

/// Per-node onion-circuit state (anonymity, paper §6.2). Each node stores,
/// per circuit entity label, the AES layer keys it may apply:
/// the initiator holds every hop key in path order; an intermediate or
/// endpoint holds exactly its own key.
struct CircuitTable {
  std::map<std::string, std::vector<Bytes>> layer_keys_by_label;
};

/// Everything security-related a node's builtins can reach.
struct NodeSecurityState {
  Credentials creds;
  CircuitTable circuits;
};

/// Handle stored in the private_key[] singleton: an opaque token naming the
/// local principal; the actual key never enters the database.
Bytes PrivateKeyHandle(const std::string& principal);

/// Register the scheme-independent crypto builtins on a workspace:
///   rsa_sign(handle, payload) -> sig        rsa_verify(pub, payload, sig)
///   hmac_sign(secret, payload) -> mac       hmac_verify(secret, payload, mac)
///   aesencrypt(pt, key) -> ct               aesdecrypt(ct, key) -> pt
///   anon_encrypt(circuit, pt) -> ct         anon_decrypt(circuit, ct) -> pt
/// AES-CTR nonces are derived SIV-style (HMAC of key and plaintext) so
/// evaluation is deterministic and re-derivation is idempotent.
Status RegisterCryptoBuiltins(engine::Workspace* ws);

/// Register the per-predicate serialization families for `pred`:
///   serialize$P(S, R, V*) -> payload        deserialize$P(payload) -> S,R,V*
///   serialize_signed$P(S, R, sig, V*) -> payload   (and its deserializer)
///   sign_payload$P(S, R, V*) -> payload      canonical bytes for signing
///   anon_serialize$P(V*) -> payload          anon_deserialize$P(payload)->V*
/// `arg_type_names` are P's argument type names (for typechecking).
Status RegisterSerdeBuiltins(engine::Workspace* ws, const std::string& pred,
                             const std::vector<std::string>& arg_type_names);

}  // namespace secureblox::policy

#endif  // SECUREBLOX_POLICY_BUILTINS_H_
