// Security policy library, expressed as BloxGenerics source text.
//
// This is the paper's central idea: `says` is NOT baked into the runtime.
// Each policy below is a meta-program over `predicate(T), exportable(T)`
// that generates the said predicate, signature predicate, sign rule,
// verification constraint, export/import rules, and acceptance rules for
// every exportable predicate. Swapping authentication (none/HMAC/RSA) or
// adding encryption changes only this generated text — applications are
// untouched (§3.2, §8.1).
#ifndef SECUREBLOX_POLICY_SAYS_POLICY_H_
#define SECUREBLOX_POLICY_SAYS_POLICY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/workspace.h"
#include "generics/compiler.h"

namespace secureblox::policy {

/// Per-fact authentication scheme for the `says` construct.
enum class AuthScheme {
  kNone,  // cleartext principal header only
  kHmac,  // HMAC-SHA1 with pairwise shared secrets
  kRsa,   // RSA-1024 signature over a SHA-1 digest
};
const char* AuthSchemeName(AuthScheme scheme);

/// Payload confidentiality for exported facts.
enum class EncScheme {
  kNone,
  kAes,  // AES-128 (CTR) under the pairwise shared secret
};
const char* EncSchemeName(EncScheme scheme);

/// How received `says` facts flow into the local predicate.
enum class AcceptMode {
  kNone,         // application handles says facts itself
  kBenign,       // accept everything (trusted environment, §3.2)
  kTrustworthy,  // accept only from trustworthy(P) principals (§6.1)
  kPerPredicate, // accept from trustworthyPerPred[T](P) (§6.1)
};

struct SaysPolicyOptions {
  AuthScheme auth = AuthScheme::kNone;
  EncScheme enc = EncScheme::kNone;
  AcceptMode accept = AcceptMode::kBenign;
  /// Generate the export/import distribution rules (§5.1). Disable for
  /// single-workspace (local) use of says.
  bool distribute = true;
  /// Add the writeAccess authorization constraint (§3.2).
  bool write_access = false;
  /// Add the paper's §4.1.4 generic constraint says(T,ST) --> exportable(T).
  bool exportable_constraint = true;
};

/// Built-in type/infrastructure declarations every SecureBlox program needs
/// (node, principal, self, principal_node, export, key predicates, ...).
std::string PreludeSource();

/// The says meta-program for the given options.
std::string SaysPolicySource(const SaysPolicyOptions& options);

/// Onion-routing prelude: circuit types, link-local forwarding state and
/// relay rules (§6.2).
std::string AnonPreludeSource();

/// The anon_says meta-program: anonymous send, endpoint receive
/// (anon_in[T]), endpoint reply (anon_out[T]), initiator reply receipt
/// (anon_reply[T]). Applies to predicates marked `anon_exportable`.
std::string AnonSaysPolicySource();

/// Expand app+policy sources through BloxGenerics and register the serde
/// builtin families for every exportable/anon_exportable predicate.
/// The returned program is ready for ws->Install().
Result<generics::ExpansionResult> CompileWithPolicies(
    engine::Workspace* ws, const std::vector<std::string>& sources);

}  // namespace secureblox::policy

#endif  // SECUREBLOX_POLICY_SAYS_POLICY_H_
