// Credential management: per-principal RSA keypairs and pairwise shared
// secrets (HMAC/AES keys), distributed by a deterministic credential
// authority so simulations and benchmarks are reproducible.
//
// Paper configuration: 1024-bit RSA, 128-bit random shared secrets (§8.1).
#ifndef SECUREBLOX_POLICY_KEYSTORE_H_
#define SECUREBLOX_POLICY_KEYSTORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/rsa.h"

namespace secureblox::policy {

/// One principal's secrets and peer knowledge.
struct Credentials {
  std::string principal;
  crypto::RsaKeyPair keypair;
  /// Serialized public key of every peer (distributed as public_key facts).
  std::map<std::string, Bytes> peer_public_keys;
  /// 128-bit pairwise shared secrets (HMAC + AES), per peer.
  std::map<std::string, Bytes> shared_secrets;
};

/// Deterministic credential issuer for a set of principals.
///
/// RSA keypairs are drawn from a process-wide cache keyed by
/// (seed, bits, slot) and assigned round-robin over `distinct_keypairs`
/// slots: generating 72 fresh 1024-bit keys per benchmark run would
/// dominate setup time, and key *identity* does not affect the measured
/// sign/verify costs. Set distinct_keypairs == #principals for fully
/// distinct keys.
class CredentialAuthority {
 public:
  struct Options {
    size_t rsa_bits = 1024;
    size_t distinct_keypairs = 4;
    std::string seed = "secureblox-ca";
  };

  CredentialAuthority(std::vector<std::string> principals, Options options);

  Result<Credentials> IssueFor(const std::string& principal) const;

  const std::vector<std::string>& principals() const { return principals_; }
  /// 16-byte secret shared by a and b (symmetric in its arguments).
  Bytes SecretBetween(const std::string& a, const std::string& b) const;
  Result<const crypto::RsaKeyPair*> KeyPairOf(
      const std::string& principal) const;

 private:
  std::vector<std::string> principals_;
  Options options_;
  std::map<std::string, const crypto::RsaKeyPair*> keys_;  // cached, unowned
};

}  // namespace secureblox::policy

#endif  // SECUREBLOX_POLICY_KEYSTORE_H_
