#include "datalog/parser.h"

#include <utility>

#include "datalog/lexer.h"

namespace secureblox::datalog {

namespace {

// A head element is either a literal or a code template.
struct HeadElement {
  bool is_template = false;
  Literal literal;
  TemplateBlock tmpl;
};

class ParserImpl {
 public:
  ParserImpl(std::vector<Token> tokens, std::string unit)
      : tokens_(std::move(tokens)), unit_(std::move(unit)) {}

  Result<Program> Run() {
    Program program;
    while (!Check(TokenKind::kEof)) {
      SB_RETURN_IF_ERROR(ParseClause(&program, /*in_template=*/nullptr));
    }
    return program;
  }

 private:
  // --- token helpers -------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenKind k) const { return Peek().kind == k; }
  bool Match(TokenKind k) {
    if (!Check(k)) return false;
    Advance();
    return true;
  }

  Status Error(const std::string& msg) const {
    const Token& t = Peek();
    return Status::ParseError(unit_ + ":" + t.loc.ToString() + ": " + msg +
                              " (found " + TokenKindName(t.kind) +
                              (t.text.empty() ? "" : " '" + t.text + "'") +
                              ")");
  }

  Status Expect(TokenKind k, const std::string& what) {
    if (!Match(k)) return Error("expected " + what);
    return Status::OK();
  }

  std::string FreshVar(const char* prefix) {
    return std::string("_") + prefix + std::to_string(fresh_counter_++);
  }

  // --- terms ---------------------------------------------------------------

  // term := factor (('+'|'-') factor)*
  // factor := primary (('*'|'/') primary)*
  Result<TermPtr> ParseTerm(std::vector<Literal>* desugar) {
    SB_ASSIGN_OR_RETURN(TermPtr lhs, ParseFactor(desugar));
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      char op = Check(TokenKind::kPlus) ? '+' : '-';
      Advance();
      SB_ASSIGN_OR_RETURN(TermPtr rhs, ParseFactor(desugar));
      lhs = Term::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<TermPtr> ParseFactor(std::vector<Literal>* desugar) {
    SB_ASSIGN_OR_RETURN(TermPtr lhs, ParsePrimary(desugar));
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash)) {
      char op = Check(TokenKind::kStar) ? '*' : '/';
      Advance();
      SB_ASSIGN_OR_RETURN(TermPtr rhs, ParsePrimary(desugar));
      lhs = Term::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<TermPtr> ParsePrimary(std::vector<Literal>* desugar) {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt:
        Advance();
        return Term::Const(Value::Int(t.int_value));
      case TokenKind::kString:
        Advance();
        return Term::Const(Value::Str(t.text));
      case TokenKind::kVariable: {
        Advance();
        std::string name = t.text;
        if (name == "_") name = FreshVar("anon");
        return Term::Var(std::move(name));
      }
      case TokenKind::kVararg:
        Advance();
        return Term::Vararg(t.text);
      case TokenKind::kQuotedIdent:
        Advance();
        return Term::QuotedPred(t.text);
      case TokenKind::kIdent: {
        if (t.text == "true" || t.text == "false") {
          Advance();
          return Term::Const(Value::Bool(t.text == "true"));
        }
        // Singleton lookup sugar: name[] becomes a fresh variable plus the
        // body literal `name[] = _Sn`.
        if (Peek(1).kind == TokenKind::kLBracket &&
            Peek(2).kind == TokenKind::kRBracket &&
            Peek(3).kind != TokenKind::kEq) {
          if (desugar == nullptr) {
            return Error("singleton lookup not allowed in this position");
          }
          Advance();  // name
          Advance();  // [
          Advance();  // ]
          std::string fresh = FreshVar("sgl");
          Atom lookup;
          lookup.pred.name = t.text;
          lookup.functional = true;
          lookup.args.push_back(Term::Var(fresh));
          lookup.loc = t.loc;
          desugar->push_back(Literal::MakeAtom(std::move(lookup)));
          return Term::Var(fresh);
        }
        return Error("unexpected identifier in term position (predicates "
                     "are not values; quote with ` to reference one)");
      }
      case TokenKind::kLParen: {
        Advance();
        SB_ASSIGN_OR_RETURN(TermPtr inner, ParseTerm(desugar));
        SB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
        return inner;
      }
      default:
        return Error("expected term");
    }
  }

  // Argument term inside an atom: a full term, but arithmetic results are
  // replaced by fresh variables bound via a desugar comparison.
  Result<TermPtr> ParseAtomArg(std::vector<Literal>* desugar) {
    SB_ASSIGN_OR_RETURN(TermPtr term, ParseTerm(desugar));
    if (term->kind == TermKind::kArith) {
      if (desugar == nullptr) {
        return Error("arithmetic not allowed in this position");
      }
      std::string fresh = FreshVar("arith");
      Comparison c;
      c.lhs = Term::Var(fresh);
      c.op = CmpOp::kEq;
      c.rhs = term;
      desugar->push_back(Literal::MakeCompare(std::move(c)));
      return Term::Var(fresh);
    }
    return term;
  }

  // --- atoms ---------------------------------------------------------------

  // atom := name params? '(' args ')'            plain
  //       | name '[' keys ']' '=' term           functional
  //       | name '[' param ']' '(' args ')'      parameterized
  //       | name '[' param ']' '=' term          parameterized singleton? no:
  //                                              bracket-with-one-var + '='
  //                                              parses as functional.
  // `name` is an identifier, or a metavariable inside templates.
  Result<Atom> ParseAtom(std::vector<Literal>* desugar) {
    Atom atom;
    atom.loc = Peek().loc;
    if (Check(TokenKind::kBang)) {
      Advance();
      atom.negated = true;
    }

    if (Check(TokenKind::kVariable)) {
      // Template atom with metavariable predicate: T(V*).
      atom.pred.name = Advance().text;
      atom.pred.name_is_metavar = true;
    } else if (Check(TokenKind::kIdent)) {
      atom.pred.name = Advance().text;
    } else {
      return Error("expected predicate name");
    }

    if (Match(TokenKind::kLBracket)) {
      // Either functional keys or a predicate parameter.
      if (Check(TokenKind::kRBracket)) {
        // Zero-key functional: p[] = v
        Advance();
        SB_RETURN_IF_ERROR(Expect(TokenKind::kEq, "= after []"));
        SB_ASSIGN_OR_RETURN(TermPtr v, ParseAtomArg(desugar));
        atom.functional = true;
        atom.args.push_back(std::move(v));
        return atom;
      }
      if (Check(TokenKind::kQuotedIdent)) {
        // Parameterized: says[`reachable](...) — quoted predicate param.
        atom.pred.param = Term::QuotedPred(Advance().text);
        SB_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "]"));
        return ParseAtomArgsParen(std::move(atom), desugar);
      }
      // Could be functional keys or a metavariable parameter; decide by
      // what follows the closing bracket.
      std::vector<TermPtr> keys;
      SB_ASSIGN_OR_RETURN(TermPtr first, ParseAtomArg(desugar));
      keys.push_back(std::move(first));
      while (Match(TokenKind::kComma)) {
        SB_ASSIGN_OR_RETURN(TermPtr k, ParseAtomArg(desugar));
        keys.push_back(std::move(k));
      }
      SB_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "]"));
      if (Check(TokenKind::kLParen)) {
        // Parameterized with metavariable: says[T](...), types[T](V*).
        if (keys.size() != 1 || keys[0]->kind != TermKind::kVar) {
          return Error("predicate parameter must be a single metavariable "
                       "or quoted predicate");
        }
        atom.pred.param = keys[0];
        return ParseAtomArgsParen(std::move(atom), desugar);
      }
      SB_RETURN_IF_ERROR(Expect(TokenKind::kEq, "= after functional keys"));
      SB_ASSIGN_OR_RETURN(TermPtr v, ParseAtomArg(desugar));
      atom.functional = true;
      atom.args = std::move(keys);
      atom.args.push_back(std::move(v));
      return atom;
    }

    return ParseAtomArgsParen(std::move(atom), desugar);
  }

  Result<Atom> ParseAtomArgsParen(Atom atom, std::vector<Literal>* desugar) {
    SB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    if (!Check(TokenKind::kRParen)) {
      do {
        SB_ASSIGN_OR_RETURN(TermPtr a, ParseAtomArg(desugar));
        atom.args.push_back(std::move(a));
      } while (Match(TokenKind::kComma));
    }
    SB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    return atom;
  }

  // --- literals ------------------------------------------------------------

  // literal := atom | '!' atom | term cmp term
  Result<Literal> ParseLiteral(std::vector<Literal>* desugar) {
    // Negation and ident-headed constructs are atoms; so are metavariable-
    // headed atoms `T(...)`. Everything else must be a comparison.
    if (Check(TokenKind::kBang) && Peek(1).kind != TokenKind::kEq) {
      SB_ASSIGN_OR_RETURN(Atom a, ParseAtom(desugar));
      return Literal::MakeAtom(std::move(a));
    }
    bool ident_atom =
        Check(TokenKind::kIdent) && Peek().text != "true" &&
        Peek().text != "false" &&
        (Peek(1).kind == TokenKind::kLParen ||
         Peek(1).kind == TokenKind::kLBracket);
    // `self[] = X` must parse as a functional atom, not as sugar.
    bool var_atom = Check(TokenKind::kVariable) &&
                    Peek(1).kind == TokenKind::kLParen;
    if (ident_atom) {
      // Disambiguate `p[] = v` (atom) from `p[]`-sugar inside a comparison:
      // `p[...]` followed by `=`/`(` after the bracket closes is an atom.
      // The simple cases below cover the dialect: an identifier followed by
      // `(` or `[` begins an atom.
      SB_ASSIGN_OR_RETURN(Atom a, ParseAtom(desugar));
      return Literal::MakeAtom(std::move(a));
    }
    if (var_atom) {
      SB_ASSIGN_OR_RETURN(Atom a, ParseAtom(desugar));
      return Literal::MakeAtom(std::move(a));
    }

    Comparison c;
    c.loc = Peek().loc;
    SB_ASSIGN_OR_RETURN(c.lhs, ParseTerm(desugar));
    switch (Peek().kind) {
      case TokenKind::kEq: c.op = CmpOp::kEq; break;
      case TokenKind::kNe: c.op = CmpOp::kNe; break;
      case TokenKind::kLt: c.op = CmpOp::kLt; break;
      case TokenKind::kLe: c.op = CmpOp::kLe; break;
      case TokenKind::kGt: c.op = CmpOp::kGt; break;
      case TokenKind::kGe: c.op = CmpOp::kGe; break;
      default:
        return Error("expected comparison operator");
    }
    Advance();
    SB_ASSIGN_OR_RETURN(c.rhs, ParseTerm(desugar));
    return Literal::MakeCompare(std::move(c));
  }

  Result<std::vector<Literal>> ParseLiteralList(
      std::vector<Literal>* desugar) {
    std::vector<Literal> out;
    do {
      SB_ASSIGN_OR_RETURN(Literal l, ParseLiteral(desugar));
      out.push_back(std::move(l));
    } while (Match(TokenKind::kComma));
    return out;
  }

  // --- aggregation ---------------------------------------------------------

  Result<std::optional<AggSpec>> TryParseAgg() {
    if (!(Check(TokenKind::kIdent) && Peek().text == "agg" &&
          Peek(1).kind == TokenKind::kAggOpen)) {
      return std::optional<AggSpec>();
    }
    Advance();  // agg
    Advance();  // <<
    AggSpec spec;
    if (!Check(TokenKind::kVariable)) return Error("expected aggregate result variable");
    spec.result_var = Advance().text;
    SB_RETURN_IF_ERROR(Expect(TokenKind::kEq, "="));
    if (!Check(TokenKind::kIdent)) return Error("expected aggregate function");
    std::string func = Advance().text;
    if (func == "min") spec.func = AggFunc::kMin;
    else if (func == "max") spec.func = AggFunc::kMax;
    else if (func == "count") spec.func = AggFunc::kCount;
    else if (func == "sum") spec.func = AggFunc::kSum;
    else return Error("unknown aggregate function '" + func + "'");
    SB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    if (spec.func == AggFunc::kCount && Check(TokenKind::kRParen)) {
      // count() takes no input variable
    } else {
      if (!Check(TokenKind::kVariable)) return Error("expected aggregate input variable");
      spec.input_var = Advance().text;
    }
    SB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    SB_RETURN_IF_ERROR(Expect(TokenKind::kAggClose, ">>"));
    return std::optional<AggSpec>(std::move(spec));
  }

  // --- clauses -------------------------------------------------------------

  Result<TemplateBlock> ParseTemplate() {
    TemplateBlock block;
    block.loc = Peek().loc;
    SB_RETURN_IF_ERROR(Expect(TokenKind::kTemplateOpen, "`{"));
    Program scratch;
    while (!Check(TokenKind::kRBrace)) {
      if (Check(TokenKind::kEof)) return Error("unterminated template");
      SB_RETURN_IF_ERROR(ParseClause(&scratch, &block));
    }
    Advance();  // }
    if (!scratch.generic_rules.empty() || !scratch.meta_facts.empty()) {
      return Error("generic clauses are not allowed inside templates");
    }
    return block;
  }

  // Parse one clause into `program`, or into `tmpl` when inside a template.
  Status ParseClause(Program* program, TemplateBlock* tmpl) {
    std::vector<HeadElement> heads;
    std::vector<Literal> head_desugar;
    SourceLoc loc = Peek().loc;

    do {
      if (Check(TokenKind::kTemplateOpen)) {
        if (tmpl != nullptr) return Error("templates cannot nest");
        SB_ASSIGN_OR_RETURN(TemplateBlock block, ParseTemplate());
        HeadElement he;
        he.is_template = true;
        he.tmpl = std::move(block);
        heads.push_back(std::move(he));
      } else {
        SB_ASSIGN_OR_RETURN(Literal lit, ParseLiteral(&head_desugar));
        HeadElement he;
        he.literal = std::move(lit);
        heads.push_back(std::move(he));
      }
    } while (Match(TokenKind::kComma));

    auto head_atoms = [&]() -> Result<std::vector<Atom>> {
      std::vector<Atom> atoms;
      for (auto& he : heads) {
        if (he.is_template) continue;
        if (he.literal.kind != Literal::Kind::kAtom || he.literal.atom.negated) {
          return Error("rule/fact heads must be positive atoms");
        }
        atoms.push_back(std::move(he.literal.atom));
      }
      return atoms;
    };
    auto head_literals = [&]() -> Result<std::vector<Literal>> {
      std::vector<Literal> lits;
      for (auto& he : heads) {
        if (he.is_template) return Error("templates not allowed here");
        lits.push_back(std::move(he.literal));
      }
      // Desugared lookups join the constraint's lhs conjunction.
      for (auto& d : head_desugar) lits.push_back(std::move(d));
      return lits;
    };
    bool has_template = false;
    for (const auto& he : heads) has_template |= he.is_template;

    switch (Peek().kind) {
      case TokenKind::kDot: {
        Advance();
        if (has_template) return Error("template requires a generic rule (<--)");
        if (!head_desugar.empty()) {
          return Error("singleton/arithmetic sugar not allowed in facts");
        }
        SB_ASSIGN_OR_RETURN(std::vector<Atom> atoms, head_atoms());
        for (auto& a : atoms) {
          bool is_meta = false;
          for (const auto& arg : a.args) {
            is_meta |= (arg->kind == TermKind::kQuotedPred);
          }
          if (is_meta) {
            program->meta_facts.push_back(std::move(a));
          } else {
            Rule fact;
            fact.heads.push_back(std::move(a));
            fact.loc = loc;
            program->rules.push_back(std::move(fact));
          }
        }
        return Status::OK();
      }

      case TokenKind::kArrowRule: {
        Advance();
        if (has_template) return Error("template requires a generic rule (<--)");
        Rule rule;
        rule.loc = loc;
        SB_ASSIGN_OR_RETURN(std::vector<Atom> atoms, head_atoms());
        rule.heads = std::move(atoms);
        SB_ASSIGN_OR_RETURN(rule.agg, TryParseAgg());
        std::vector<Literal> body_desugar;
        SB_ASSIGN_OR_RETURN(rule.body, ParseLiteralList(&body_desugar));
        for (auto& d : head_desugar) rule.body.push_back(std::move(d));
        for (auto& d : body_desugar) rule.body.push_back(std::move(d));
        SB_RETURN_IF_ERROR(Expect(TokenKind::kDot, "."));
        if (tmpl != nullptr) {
          tmpl->rules.push_back(std::move(rule));
        } else {
          program->rules.push_back(std::move(rule));
        }
        return Status::OK();
      }

      case TokenKind::kArrowConstraint: {
        Advance();
        if (has_template) return Error("template requires a generic rule (<--)");
        ConstraintDecl c;
        c.loc = loc;
        SB_ASSIGN_OR_RETURN(c.lhs, head_literals());
        if (!Check(TokenKind::kDot)) {
          std::vector<Literal> rhs_desugar;
          SB_ASSIGN_OR_RETURN(c.rhs, ParseLiteralList(&rhs_desugar));
          for (auto& d : rhs_desugar) c.rhs.push_back(std::move(d));
        }
        SB_RETURN_IF_ERROR(Expect(TokenKind::kDot, "."));
        if (tmpl != nullptr) {
          tmpl->constraints.push_back(std::move(c));
        } else {
          program->constraints.push_back(std::move(c));
        }
        return Status::OK();
      }

      case TokenKind::kArrowGenericRule: {
        Advance();
        if (tmpl != nullptr) return Error("generic rules cannot appear in templates");
        GenericRule gr;
        gr.loc = loc;
        for (auto& he : heads) {
          if (he.is_template) {
            gr.templates.push_back(std::move(he.tmpl));
          } else {
            if (he.literal.kind != Literal::Kind::kAtom) {
              return Error("generic rule heads must be atoms or templates");
            }
            gr.head_atoms.push_back(std::move(he.literal.atom));
          }
        }
        if (!head_desugar.empty()) {
          return Error("sugar not allowed in generic rule heads");
        }
        std::vector<Literal> body_desugar;
        SB_ASSIGN_OR_RETURN(gr.body, ParseLiteralList(&body_desugar));
        if (!body_desugar.empty()) {
          return Error("sugar not allowed in generic rule bodies");
        }
        SB_RETURN_IF_ERROR(Expect(TokenKind::kDot, "."));
        program->generic_rules.push_back(std::move(gr));
        return Status::OK();
      }

      case TokenKind::kArrowGenericConstraint: {
        Advance();
        if (tmpl != nullptr) {
          return Error("generic constraints cannot appear in templates");
        }
        if (has_template) return Error("templates not allowed in generic constraints");
        GenericConstraint gc;
        gc.loc = loc;
        SB_ASSIGN_OR_RETURN(gc.lhs, head_literals());
        std::vector<Literal> rhs_desugar;
        SB_ASSIGN_OR_RETURN(gc.rhs, ParseLiteralList(&rhs_desugar));
        if (!rhs_desugar.empty()) {
          return Error("sugar not allowed in generic constraints");
        }
        SB_RETURN_IF_ERROR(Expect(TokenKind::kDot, "."));
        program->generic_constraints.push_back(std::move(gc));
        return Status::OK();
      }

      default:
        return Error("expected '.', '<-', '->', '<--', or '-->'");
    }
  }

  std::vector<Token> tokens_;
  std::string unit_;
  size_t pos_ = 0;
  int fresh_counter_ = 0;
};

}  // namespace

Result<Program> Parse(const std::string& source, const std::string& unit_name) {
  SB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return ParserImpl(std::move(tokens), unit_name).Run();
}

}  // namespace secureblox::datalog
