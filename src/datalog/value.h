// Runtime values for DatalogLB tuples.
//
// Value kinds mirror the paper's data model: primitives (bool, int, string,
// blob) plus *entities* — members of declared entity types such as
// `principal`, `node`, `pathvar`. An entity is (type predicate id, local
// intern id); the Catalog maps intern ids to globally-unique string labels
// so entities can be shipped between nodes.
#ifndef SECUREBLOX_DATALOG_VALUE_H_
#define SECUREBLOX_DATALOG_VALUE_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace secureblox::datalog {

/// Identifier of a predicate in a Catalog. Negative = invalid.
using PredId = int32_t;
constexpr PredId kInvalidPred = -1;

enum class ValueKind : uint8_t {
  kBool = 0,
  kInt = 1,
  kString = 2,
  kBlob = 3,
  kEntity = 4,
};

const char* ValueKindName(ValueKind kind);

/// Immutable tagged value. Cheap to copy for primitives; strings/blobs copy
/// their payload (tuples are small in this workload).
class Value {
 public:
  Value() : kind_(ValueKind::kInt), num_(0) {}

  static Value Bool(bool v) {
    Value x;
    x.kind_ = ValueKind::kBool;
    x.num_ = v ? 1 : 0;
    return x;
  }
  static Value Int(int64_t v) {
    Value x;
    x.kind_ = ValueKind::kInt;
    x.num_ = v;
    return x;
  }
  static Value Str(std::string v) {
    Value x;
    x.kind_ = ValueKind::kString;
    x.str_ = std::move(v);
    return x;
  }
  static Value MakeBlob(Bytes v) {
    Value x;
    x.kind_ = ValueKind::kBlob;
    x.str_.assign(v.begin(), v.end());
    return x;
  }
  static Value Entity(PredId type, int64_t id) {
    Value x;
    x.kind_ = ValueKind::kEntity;
    x.etype_ = type;
    x.num_ = id;
    return x;
  }

  ValueKind kind() const { return kind_; }
  bool is_entity() const { return kind_ == ValueKind::kEntity; }

  bool AsBool() const { return num_ != 0; }
  int64_t AsInt() const { return num_; }
  const std::string& AsString() const { return str_; }
  Bytes AsBlob() const { return Bytes(str_.begin(), str_.end()); }
  const std::string& BlobRef() const { return str_; }
  PredId entity_type() const { return etype_; }
  int64_t entity_id() const { return num_; }

  bool operator==(const Value& o) const {
    if (kind_ != o.kind_) return false;
    switch (kind_) {
      case ValueKind::kBool:
      case ValueKind::kInt:
        return num_ == o.num_;
      case ValueKind::kString:
      case ValueKind::kBlob:
        return str_ == o.str_;
      case ValueKind::kEntity:
        return etype_ == o.etype_ && num_ == o.num_;
    }
    return false;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// Total order across kinds (kind first, then payload) so values can key
  /// ordered containers and aggregates can compare.
  bool operator<(const Value& o) const;

  size_t Hash() const;

  /// Debug rendering; entities print as `type#id` (label-aware printing
  /// lives in Catalog::ValueToString).
  std::string ToString() const;

 private:
  ValueKind kind_;
  PredId etype_ = kInvalidPred;
  int64_t num_ = 0;
  std::string str_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace secureblox::datalog

#endif  // SECUREBLOX_DATALOG_VALUE_H_
