// Predicate catalog: schema declarations, type predicates, the subtype
// lattice, and entity interning.
//
// LogicBlox-style typing: unary predicates act as types. Primitives (int,
// string, bool, blob) are built in; entity types (`principal(x) -> .`) hold
// interned entities identified by globally-unique string labels (LogicBlox
// "refmode"), so entity values can be shipped between nodes and re-interned.
#ifndef SECUREBLOX_DATALOG_CATALOG_H_
#define SECUREBLOX_DATALOG_CATALOG_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "datalog/value.h"

namespace secureblox::datalog {

/// Declaration of one predicate: name, argument types, functional-dependency
/// shape, and whether it is itself a type.
struct PredicateDecl {
  PredId id = kInvalidPred;
  std::string name;
  std::vector<PredId> arg_types;  // ids of type predicates
  bool functional = false;        // p[k1..kn] = v: last arg is the FD value
  bool is_type = false;           // unary predicate used as a type
  bool is_primitive = false;      // built-in int/string/bool/blob
  bool is_entity_type = false;    // declared via `t(x) -> .`
  ValueKind primitive_kind = ValueKind::kInt;  // valid when is_primitive

  size_t arity() const { return arg_types.size(); }
  size_t num_keys() const { return functional ? arity() - 1 : arity(); }
  bool is_singleton() const { return functional && arity() == 1; }
};

/// The schema registry shared by parser output analysis, the generics
/// compiler, and the evaluation engine.
class Catalog {
 public:
  Catalog();

  // -- declarations ---------------------------------------------------------

  /// Declare a regular predicate. Fails on duplicate names (unless the
  /// existing declaration is identical, which is treated as a no-op).
  Result<PredId> DeclarePredicate(const std::string& name,
                                  std::vector<PredId> arg_types,
                                  bool functional);

  /// Declare an entity type (`t(x) -> .`). Idempotent.
  Result<PredId> DeclareEntityType(const std::string& name);

  Result<PredId> Lookup(const std::string& name) const;
  bool IsDeclared(const std::string& name) const;
  /// Stable reference: declarations are never moved once registered.
  const PredicateDecl& decl(PredId id) const { return decls_[id]; }
  size_t num_predicates() const { return decls_.size(); }

  /// Transitive supertypes of an entity type (not including itself).
  std::vector<PredId> SupertypesOf(PredId type) const;

  PredId int_type() const { return int_type_; }
  PredId string_type() const { return string_type_; }
  PredId bool_type() const { return bool_type_; }
  PredId blob_type() const { return blob_type_; }

  // -- subtyping ------------------------------------------------------------

  /// Record `sub(x) -> super(x)` (both must be types).
  Status AddSubtype(PredId sub, PredId super);
  /// Reflexive-transitive subtype check.
  bool IsSubtype(PredId sub, PredId super) const;

  // -- entities -------------------------------------------------------------

  /// Intern (or find) the entity of `type` with the given label.
  Result<Value> InternEntity(PredId type, const std::string& label);
  /// Find an existing entity by label without creating it.
  Result<Value> FindEntity(PredId type, const std::string& label) const;
  /// Create a fresh entity with a generated globally-unique label
  /// `<hint>@<node_tag>#<counter>` (head-existential derivation).
  Result<Value> CreateAnonymousEntity(PredId type, const std::string& hint);
  /// Label of an interned entity.
  Result<std::string> EntityLabel(const Value& v) const;
  /// All labels interned for a type (iteration order = intern order).
  const std::vector<std::string>& EntityLabels(PredId type) const;

  /// Uniquifier embedded in anonymous entity labels; set to the node name
  /// in distributed deployments so labels never collide across nodes.
  void SetNodeTag(std::string tag) { node_tag_ = std::move(tag); }
  const std::string& node_tag() const { return node_tag_; }

  // -- checks / debug -------------------------------------------------------

  /// Does a runtime value inhabit the given type (entity subtyping aware)?
  bool ValueMatchesType(const Value& v, PredId type) const;

  /// Human-readable value rendering with entity labels.
  std::string ValueToString(const Value& v) const;

 private:
  struct EntityTable {
    std::vector<std::string> labels;
    std::unordered_map<std::string, int64_t> by_label;
  };

  std::deque<PredicateDecl> decls_;  // deque: stable element addresses
  std::unordered_map<std::string, PredId> by_name_;
  std::unordered_map<PredId, std::vector<PredId>> supertypes_;
  std::unordered_map<PredId, EntityTable> entities_;
  PredId int_type_, string_type_, bool_type_, blob_type_;
  std::string node_tag_ = "local";
  uint64_t anon_counter_ = 0;
};

}  // namespace secureblox::datalog

#endif  // SECUREBLOX_DATALOG_CATALOG_H_
