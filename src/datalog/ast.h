// Abstract syntax for the DatalogLB dialect plus BloxGenerics extensions.
//
// One uniform atom/term representation serves object-level code, meta-level
// (generic) code, and code templates:
//   - object rules:        reachable(X,Y) <- link(X,Z), reachable(Z,Y).
//   - functional atoms:    path[P,Src,Dst]=C, singletons self[]=P
//   - parameterized atoms: says[`reachable](Z,S,Z,Y)   (quoted-pred param)
//   - generic rules:       says[T]=ST, predicate(ST), `{ ... } <-- predicate(T).
//   - templates:           atoms whose predicate name is a metavariable (ST)
//                          and variable-length argument sequences (V*)
//   - generic constraints: says(T,ST) --> exportable(T).
#ifndef SECUREBLOX_DATALOG_AST_H_
#define SECUREBLOX_DATALOG_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "datalog/value.h"

namespace secureblox::datalog {

struct SourceLoc {
  int line = 0;
  int col = 0;
  std::string ToString() const {
    return std::to_string(line) + ":" + std::to_string(col);
  }
};

enum class TermKind {
  kVar,         // X, Me, _  (parser renames each `_` to a fresh variable)
  kConst,       // 42, "CA", true
  kQuotedPred,  // `reachable
  kVararg,      // V*  (templates only)
  kArith,       // C + 1
};

struct Term;
using TermPtr = std::shared_ptr<Term>;

struct Term {
  TermKind kind;
  std::string name;  // variable / quoted predicate / vararg base name
  Value constant;    // kConst payload
  char op = 0;       // kArith: one of + - * /
  TermPtr lhs, rhs;  // kArith operands

  static TermPtr Var(std::string n);
  static TermPtr Const(Value v);
  static TermPtr QuotedPred(std::string n);
  static TermPtr Vararg(std::string n);
  static TermPtr Arith(char op, TermPtr l, TermPtr r);

  std::string ToString() const;
};

/// Predicate reference: plain name, optionally with a parameter —
/// `says[`reachable]` (quoted) or `says[T]` / `types[T]` (metavariable,
/// inside templates).
struct PredRef {
  std::string name;
  TermPtr param;  // null | kQuotedPred | kVar
  // Inside templates the predicate name itself may be a metavariable bound
  // by the enclosing generic rule, e.g. `ST(P1,P2,V*)` or `T(V*)`.
  bool name_is_metavar = false;

  bool parameterized() const { return param != nullptr; }
  std::string ToString() const;
};

struct Atom {
  PredRef pred;
  // For functional atoms (p[k1..kn]=v) args = {k1..kn, v}; `functional`
  // marks that the last arg is the value position.
  std::vector<TermPtr> args;
  bool functional = false;
  bool negated = false;
  SourceLoc loc;

  size_t arity() const { return args.size(); }
  /// True if any argument is a vararg (template atoms).
  bool HasVararg() const;
  std::string ToString() const;
};

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
const char* CmpOpName(CmpOp op);

struct Comparison {
  TermPtr lhs;
  CmpOp op;
  TermPtr rhs;
  SourceLoc loc;
  std::string ToString() const;
};

/// A body element: positive/negated atom or comparison.
struct Literal {
  enum class Kind { kAtom, kCompare };
  Kind kind;
  Atom atom;       // valid when kind == kAtom
  Comparison cmp;  // valid when kind == kCompare

  static Literal MakeAtom(Atom a);
  static Literal MakeCompare(Comparison c);
  std::string ToString() const;
};

enum class AggFunc { kMin, kMax, kCount, kSum };
const char* AggFuncName(AggFunc f);

/// `agg<< C = min(Cx) >>` annotation on a rule.
struct AggSpec {
  std::string result_var;
  AggFunc func;
  std::string input_var;  // unused for count
};

struct Rule {
  std::vector<Atom> heads;
  std::vector<Literal> body;
  std::optional<AggSpec> agg;
  SourceLoc loc;

  bool IsFact() const { return body.empty() && !agg.has_value(); }
  std::string ToString() const;
};

/// Integrity constraint `lhs -> rhs`. Type declarations are constraints of
/// a recognized shape (see typecheck.h); the rest are checked at runtime.
struct ConstraintDecl {
  std::vector<Literal> lhs;
  std::vector<Literal> rhs;  // empty = entity-type declaration `t(x) -> .`
  SourceLoc loc;

  std::string ToString() const;
};

/// A `{ ... } code template inside a generic rule head.
struct TemplateBlock {
  std::vector<Rule> rules;
  std::vector<ConstraintDecl> constraints;
  SourceLoc loc;
};

/// Generic (meta) rule: head atoms over generic predicates plus templates,
/// derived when the meta-level body holds. `says[T]=ST, predicate(ST),
/// `{...} <-- predicate(T).`
struct GenericRule {
  std::vector<Atom> head_atoms;
  std::vector<TemplateBlock> templates;
  std::vector<Literal> body;
  SourceLoc loc;
};

/// Generic constraint over the meta-database: `says(T,ST) --> exportable(T).`
struct GenericConstraint {
  std::vector<Literal> lhs;
  std::vector<Literal> rhs;
  SourceLoc loc;
};

/// A parsed compilation unit.
struct Program {
  std::vector<Rule> rules;  // object rules and facts
  std::vector<ConstraintDecl> constraints;
  std::vector<GenericRule> generic_rules;
  std::vector<GenericConstraint> generic_constraints;
  std::vector<Atom> meta_facts;  // e.g. exportable(`path).

  /// Append all clauses of `other`.
  void Merge(Program other);
  std::string ToString() const;
};

}  // namespace secureblox::datalog

#endif  // SECUREBLOX_DATALOG_AST_H_
