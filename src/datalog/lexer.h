// Tokenizer for the DatalogLB + BloxGenerics surface syntax.
//
// The paper's typographic left-quote (‘) is written as ASCII backquote:
//   `reachable     quoted predicate
//   `{ ... }       code template
// Longest-match disambiguates the arrow family: `<--` (generic rule),
// `<-` (rule), `<<`/`>>` (aggregation), `-->` (generic constraint),
// `->` (constraint), and the comparison operators.
#ifndef SECUREBLOX_DATALOG_LEXER_H_
#define SECUREBLOX_DATALOG_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"

namespace secureblox::datalog {

enum class TokenKind {
  kIdent,        // lowercase-initial identifier: predicate / keyword
  kVariable,     // uppercase-initial identifier or _
  kVararg,       // V*  (variable immediately followed by *)
  kQuotedIdent,  // `reachable
  kTemplateOpen, // `{
  kInt,          // 123
  kString,       // "abc"
  kLParen, kRParen, kLBracket, kRBracket, kRBrace,
  kComma, kDot, kBang,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kPlus, kMinus, kStar, kSlash,
  kArrowRule,          // <-
  kArrowConstraint,    // ->
  kArrowGenericRule,   // <--
  kArrowGenericConstraint,  // -->
  kAggOpen,            // <<
  kAggClose,           // >>
  kEof,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind;
  std::string text;   // identifier text / string payload
  int64_t int_value = 0;
  SourceLoc loc;
};

/// Tokenize `source`; returns all tokens ending with kEof, or a ParseError
/// naming the offending line:column.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace secureblox::datalog

#endif  // SECUREBLOX_DATALOG_LEXER_H_
