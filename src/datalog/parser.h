// Recursive-descent parser producing a Program from DatalogLB+BloxGenerics
// source text.
//
// Desugaring performed here (so later stages see a small core language):
//   - `_` anonymous variables get fresh unique names,
//   - singleton lookups in argument position (`p(self[], X)`) become a fresh
//     variable plus a body literal `self[] = _S0`,
//   - arithmetic in atom arguments (`p(C + 1)`) becomes a fresh variable
//     plus a body comparison `_A0 = C + 1`.
#ifndef SECUREBLOX_DATALOG_PARSER_H_
#define SECUREBLOX_DATALOG_PARSER_H_

#include <string>

#include "common/status.h"
#include "datalog/ast.h"

namespace secureblox::datalog {

/// Parse a full compilation unit. `unit_name` labels error messages.
Result<Program> Parse(const std::string& source,
                      const std::string& unit_name = "<input>");

}  // namespace secureblox::datalog

#endif  // SECUREBLOX_DATALOG_PARSER_H_
