#include "datalog/value.h"

#include <functional>

namespace secureblox::datalog {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kString:
      return "string";
    case ValueKind::kBlob:
      return "blob";
    case ValueKind::kEntity:
      return "entity";
  }
  return "?";
}

bool Value::operator<(const Value& o) const {
  if (kind_ != o.kind_) return kind_ < o.kind_;
  switch (kind_) {
    case ValueKind::kBool:
    case ValueKind::kInt:
      return num_ < o.num_;
    case ValueKind::kString:
    case ValueKind::kBlob:
      return str_ < o.str_;
    case ValueKind::kEntity:
      if (etype_ != o.etype_) return etype_ < o.etype_;
      return num_ < o.num_;
  }
  return false;
}

size_t Value::Hash() const {
  size_t h = static_cast<size_t>(kind_) * 0x9E3779B97F4A7C15ULL;
  switch (kind_) {
    case ValueKind::kBool:
    case ValueKind::kInt:
      h ^= std::hash<int64_t>{}(num_) + 0x9E3779B9 + (h << 6) + (h >> 2);
      break;
    case ValueKind::kString:
    case ValueKind::kBlob:
      h ^= std::hash<std::string>{}(str_) + 0x9E3779B9 + (h << 6) + (h >> 2);
      break;
    case ValueKind::kEntity:
      h ^= std::hash<int64_t>{}((static_cast<int64_t>(etype_) << 40) ^ num_) +
           0x9E3779B9 + (h << 6) + (h >> 2);
      break;
  }
  return h;
}

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kBool:
      return num_ ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(num_);
    case ValueKind::kString:
      return "\"" + str_ + "\"";
    case ValueKind::kBlob:
      return "0x" + ToHex(reinterpret_cast<const uint8_t*>(str_.data()),
                          str_.size());
    case ValueKind::kEntity:
      return "e" + std::to_string(etype_) + "#" + std::to_string(num_);
  }
  return "?";
}

}  // namespace secureblox::datalog
