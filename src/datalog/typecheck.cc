#include "datalog/typecheck.h"

#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace secureblox::datalog {

namespace {

// --- schema extraction -------------------------------------------------

// Is this constraint `t(x) -> .` — an entity type declaration?
bool IsEntityTypeDecl(const ConstraintDecl& c) {
  return c.rhs.empty() && c.lhs.size() == 1 &&
         c.lhs[0].kind == Literal::Kind::kAtom && !c.lhs[0].atom.negated &&
         !c.lhs[0].atom.functional && c.lhs[0].atom.arity() == 1 &&
         c.lhs[0].atom.args[0]->kind == TermKind::kVar &&
         !c.lhs[0].atom.pred.parameterized() &&
         !c.lhs[0].atom.pred.name_is_metavar;
}

// Does the constraint lhs consist of a single positive atom whose args are
// all distinct variables? Returns the atom if so.
const Atom* SingleDistinctVarAtom(const ConstraintDecl& c) {
  if (c.lhs.size() != 1 || c.lhs[0].kind != Literal::Kind::kAtom) {
    return nullptr;
  }
  const Atom& a = c.lhs[0].atom;
  if (a.negated || a.pred.parameterized() || a.pred.name_is_metavar) {
    return nullptr;
  }
  std::set<std::string> seen;
  for (const auto& arg : a.args) {
    if (arg->kind != TermKind::kVar) return nullptr;
    if (!seen.insert(arg->name).second) return nullptr;
  }
  return &a;
}

// If the rhs is a conjunction of unary type atoms t(x) with every lhs
// variable typed exactly once, produce name->type map.
std::optional<std::unordered_map<std::string, std::string>> RhsAsTypeMap(
    const ConstraintDecl& c) {
  std::unordered_map<std::string, std::string> types;
  for (const auto& lit : c.rhs) {
    if (lit.kind != Literal::Kind::kAtom) return std::nullopt;
    const Atom& a = lit.atom;
    if (a.negated || a.functional || a.arity() != 1 ||
        a.pred.parameterized() || a.pred.name_is_metavar ||
        a.args[0]->kind != TermKind::kVar) {
      return std::nullopt;
    }
    if (!types.emplace(a.args[0]->name, a.pred.name).second) {
      return std::nullopt;  // variable typed twice: treat as runtime check
    }
  }
  return types;
}

// --- type checking -------------------------------------------------------

class Checker {
 public:
  Checker(Catalog* catalog, const BuiltinSignatureMap& builtins)
      : catalog_(*catalog), builtins_(builtins) {}

  Status CheckRule(const Rule& rule) {
    var_types_.clear();
    bound_.clear();
    where_ = "rule at " + rule.loc.ToString();

    // Bind and type variables from positive body atoms / builtins.
    SB_RETURN_IF_ERROR(BindFromBody(rule.body));

    // Aggregation: input variable must be bound and integer-typed; the
    // result variable becomes a bound int.
    if (rule.agg.has_value()) {
      const AggSpec& agg = *rule.agg;
      if (agg.func != AggFunc::kCount) {
        if (!bound_.count(agg.input_var)) {
          return Err("aggregate input '" + agg.input_var + "' is not bound");
        }
        SB_RETURN_IF_ERROR(Unify(agg.input_var, catalog_.int_type()));
      }
      bound_.insert(agg.result_var);
      SB_RETURN_IF_ERROR(Unify(agg.result_var, catalog_.int_type()));
    }

    // Comparisons and negation over bound variables only; `=` with exactly
    // one unbound side acts as an assignment (iterate to a fixpoint since
    // assignments may chain).
    SB_RETURN_IF_ERROR(CheckGuards(rule.body));

    // Heads.
    if (rule.heads.empty()) return Err("rule has no head");
    for (const Atom& head : rule.heads) {
      SB_RETURN_IF_ERROR(CheckHeadAtom(head, rule));
    }
    return Status::OK();
  }

  Status CheckFact(const Rule& fact) {
    where_ = "fact at " + fact.loc.ToString();
    for (const Atom& a : fact.heads) {
      SB_ASSIGN_OR_RETURN(const PredicateDecl* decl, ResolveAtom(a));
      for (size_t i = 0; i < a.args.size(); ++i) {
        if (a.args[i]->kind != TermKind::kConst) {
          return Err("fact arguments must be constants in " + a.ToString());
        }
        SB_RETURN_IF_ERROR(
            CheckConstAgainstType(a.args[i]->constant, decl->arg_types[i]));
      }
    }
    return Status::OK();
  }

  Status CheckConstraint(const ConstraintDecl& c) {
    var_types_.clear();
    bound_.clear();
    where_ = "constraint at " + c.loc.ToString();
    // lhs binds; rhs may bind additional (existential) variables.
    SB_RETURN_IF_ERROR(BindFromBody(c.lhs));
    SB_RETURN_IF_ERROR(CheckGuards(c.lhs));
    SB_RETURN_IF_ERROR(BindFromBody(c.rhs));
    SB_RETURN_IF_ERROR(CheckGuards(c.rhs));
    return Status::OK();
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::TypeError(where_ + ": " + msg);
  }

  Result<const PredicateDecl*> ResolveAtom(const Atom& a) {
    if (a.pred.parameterized() || a.pred.name_is_metavar) {
      return Err("unresolved parameterized atom " + a.ToString() +
                 " (generics must be expanded first)");
    }
    auto id = catalog_.Lookup(a.pred.name);
    if (!id.ok()) return Err("undeclared predicate '" + a.pred.name + "'");
    const PredicateDecl& decl = catalog_.decl(id.value());
    if (a.arity() != decl.arity()) {
      return Err("arity mismatch for '" + a.pred.name + "': got " +
                 std::to_string(a.arity()) + ", declared " +
                 std::to_string(decl.arity()));
    }
    if (a.functional != decl.functional) {
      return Err("functional shape mismatch for '" + a.pred.name + "'");
    }
    return &decl;
  }

  Status Unify(const std::string& var, PredId type) {
    auto it = var_types_.find(var);
    if (it == var_types_.end()) {
      var_types_[var] = type;
      return Status::OK();
    }
    PredId existing = it->second;
    if (existing == type) return Status::OK();
    // Allow refinement along the subtype lattice; keep the more specific.
    if (catalog_.IsSubtype(existing, type)) return Status::OK();
    if (catalog_.IsSubtype(type, existing)) {
      it->second = type;
      return Status::OK();
    }
    return Err("variable '" + var + "' used with incompatible types '" +
               catalog_.decl(existing).name + "' and '" +
               catalog_.decl(type).name + "'");
  }

  Status CheckConstAgainstType(const Value& v, PredId type) {
    const PredicateDecl& t = catalog_.decl(type);
    if (t.is_primitive) {
      if (v.kind() != t.primitive_kind) {
        return Err("constant " + v.ToString() + " does not have type " +
                   t.name);
      }
      return Status::OK();
    }
    if (t.is_entity_type) {
      // String constants name entities by label (refmode); interning
      // happens at load time.
      if (v.kind() == ValueKind::kString || v.is_entity()) return Status::OK();
      return Err("constant " + v.ToString() +
                 " cannot name an entity of type " + t.name);
    }
    return Err("'" + t.name + "' is not a type");
  }

  // One pass binding variables from positive atoms (relations enumerate) and
  // builtin outputs. Builtin *inputs* are checked for boundness later in
  // CheckGuards, once assignments have been resolved.
  Status BindFromBody(const std::vector<Literal>& body) {
    for (const Literal& lit : body) {
      if (lit.kind != Literal::Kind::kAtom) continue;
      const Atom& a = lit.atom;
      auto bsig = builtins_.find(a.pred.name);
      if (bsig != builtins_.end()) {
        SB_RETURN_IF_ERROR(CheckBuiltinAtom(a, bsig->second));
        continue;
      }
      SB_ASSIGN_OR_RETURN(const PredicateDecl* decl, ResolveAtom(a));
      for (size_t i = 0; i < a.args.size(); ++i) {
        const TermPtr& arg = a.args[i];
        if (arg->kind == TermKind::kVar) {
          if (!a.negated) bound_.insert(arg->name);
          SB_RETURN_IF_ERROR(Unify(arg->name, decl->arg_types[i]));
        } else if (arg->kind == TermKind::kConst) {
          SB_RETURN_IF_ERROR(
              CheckConstAgainstType(arg->constant, decl->arg_types[i]));
        } else {
          return Err("unexpected term " + arg->ToString() + " in atom " +
                     a.ToString());
        }
      }
    }
    return Status::OK();
  }

  Status CheckBuiltinAtom(const Atom& a, const BuiltinSignature& sig) {
    if (a.negated) return Err("builtins cannot be negated: " + a.ToString());
    if (a.arity() != sig.arg_types.size()) {
      return Err("builtin '" + a.pred.name + "' expects " +
                 std::to_string(sig.arg_types.size()) + " args, got " +
                 std::to_string(a.arity()));
    }
    for (size_t i = 0; i < a.args.size(); ++i) {
      const TermPtr& arg = a.args[i];
      const std::string& tname = sig.arg_types[i];
      PredId type = kInvalidPred;
      if (tname != "any") {
        auto id = catalog_.Lookup(tname);
        if (!id.ok()) {
          return Err("builtin '" + a.pred.name + "' references unknown type '" +
                     tname + "'");
        }
        type = id.value();
      }
      if (arg->kind == TermKind::kVar) {
        if (static_cast<int>(i) >= sig.num_inputs) bound_.insert(arg->name);
        if (type != kInvalidPred) SB_RETURN_IF_ERROR(Unify(arg->name, type));
      } else if (arg->kind == TermKind::kConst) {
        if (type != kInvalidPred) {
          SB_RETURN_IF_ERROR(CheckConstAgainstType(arg->constant, type));
        }
      } else {
        return Err("unexpected term in builtin atom " + a.ToString());
      }
    }
    return Status::OK();
  }

  // All variables reachable in a term.
  static void TermVars(const TermPtr& t, std::vector<std::string>* out) {
    if (t->kind == TermKind::kVar) out->push_back(t->name);
    if (t->kind == TermKind::kArith) {
      TermVars(t->lhs, out);
      TermVars(t->rhs, out);
    }
  }

  bool AllBound(const TermPtr& t) const {
    std::vector<std::string> vars;
    TermVars(t, &vars);
    for (const auto& v : vars) {
      if (!bound_.count(v)) return false;
    }
    return true;
  }

  Status TypeArith(const TermPtr& t) {
    if (t->kind == TermKind::kArith) {
      std::vector<std::string> vars;
      TermVars(t, &vars);
      for (const auto& v : vars) {
        SB_RETURN_IF_ERROR(Unify(v, catalog_.int_type()));
      }
    }
    return Status::OK();
  }

  Status CheckGuards(const std::vector<Literal>& body) {
    // Assignments (`X = <expr>` with X unbound) may chain; iterate.
    bool changed = true;
    std::unordered_set<const Literal*> satisfied;
    while (changed) {
      changed = false;
      for (const Literal& lit : body) {
        if (lit.kind != Literal::Kind::kCompare) continue;
        if (satisfied.count(&lit)) continue;
        const Comparison& c = lit.cmp;
        SB_RETURN_IF_ERROR(TypeArith(c.lhs));
        SB_RETURN_IF_ERROR(TypeArith(c.rhs));
        if (c.op == CmpOp::kEq) {
          bool lb = AllBound(c.lhs);
          bool rb = AllBound(c.rhs);
          if (lb && rb) {
            satisfied.insert(&lit);
            changed = true;
          } else if (lb && c.rhs->kind == TermKind::kVar) {
            bound_.insert(c.rhs->name);
            SB_RETURN_IF_ERROR(PropagateEqType(c.rhs, c.lhs));
            satisfied.insert(&lit);
            changed = true;
          } else if (rb && c.lhs->kind == TermKind::kVar) {
            bound_.insert(c.lhs->name);
            SB_RETURN_IF_ERROR(PropagateEqType(c.lhs, c.rhs));
            satisfied.insert(&lit);
            changed = true;
          }
        } else {
          if (AllBound(c.lhs) && AllBound(c.rhs)) {
            satisfied.insert(&lit);
            changed = true;
          }
        }
      }
    }
    for (const Literal& lit : body) {
      if (lit.kind == Literal::Kind::kCompare && !satisfied.count(&lit)) {
        return Err("comparison " + lit.cmp.ToString() +
                   " uses unbound variables");
      }
      if (lit.kind == Literal::Kind::kAtom && lit.atom.negated) {
        for (const auto& arg : lit.atom.args) {
          if (arg->kind == TermKind::kVar && !bound_.count(arg->name) &&
              !IsAnonymous(arg->name)) {
            return Err("negated atom " + lit.atom.ToString() +
                       " uses unbound variable '" + arg->name + "'");
          }
        }
      }
      // Builtin inputs must be bound by now.
      if (lit.kind == Literal::Kind::kAtom) {
        auto bsig = builtins_.find(lit.atom.pred.name);
        if (bsig != builtins_.end()) {
          for (int i = 0; i < bsig->second.num_inputs &&
                          i < static_cast<int>(lit.atom.args.size());
               ++i) {
            const TermPtr& arg = lit.atom.args[i];
            if (arg->kind == TermKind::kVar && !bound_.count(arg->name)) {
              return Err("builtin '" + lit.atom.pred.name +
                         "' input variable '" + arg->name + "' is unbound");
            }
          }
        }
      }
    }
    return Status::OK();
  }

  static bool IsAnonymous(const std::string& name) {
    return name.rfind("_anon", 0) == 0;
  }

  // var (just bound) gets the type of the expression it was assigned from.
  Status PropagateEqType(const TermPtr& var, const TermPtr& expr) {
    if (expr->kind == TermKind::kVar) {
      auto it = var_types_.find(expr->name);
      if (it != var_types_.end()) return Unify(var->name, it->second);
      return Status::OK();
    }
    if (expr->kind == TermKind::kConst) {
      switch (expr->constant.kind()) {
        case ValueKind::kInt:
          return Unify(var->name, catalog_.int_type());
        case ValueKind::kString:
          // May also name an entity by refmode; leave untyped unless later
          // unified. Strings are the default reading.
          return Status::OK();
        case ValueKind::kBool:
          return Unify(var->name, catalog_.bool_type());
        case ValueKind::kBlob:
          return Unify(var->name, catalog_.blob_type());
        case ValueKind::kEntity:
          return Status::OK();
      }
    }
    if (expr->kind == TermKind::kArith) {
      return Unify(var->name, catalog_.int_type());
    }
    return Status::OK();
  }

  Status CheckHeadAtom(const Atom& head, const Rule& rule) {
    if (head.negated) return Err("head atoms cannot be negated");
    SB_ASSIGN_OR_RETURN(const PredicateDecl* decl, ResolveAtom(head));
    for (size_t i = 0; i < head.args.size(); ++i) {
      const TermPtr& arg = head.args[i];
      PredId want = decl->arg_types[i];
      if (arg->kind == TermKind::kConst) {
        SB_RETURN_IF_ERROR(CheckConstAgainstType(arg->constant, want));
        continue;
      }
      if (arg->kind != TermKind::kVar) {
        return Err("unexpected head term " + arg->ToString());
      }
      if (!bound_.count(arg->name)) {
        // Head existential: only entity-typed positions may create values.
        const PredicateDecl& t = catalog_.decl(want);
        if (!t.is_entity_type) {
          return Err("head variable '" + arg->name +
                     "' is unbound and position type '" + t.name +
                     "' is not an entity type (rule is unsafe)");
        }
        SB_RETURN_IF_ERROR(Unify(arg->name, want));
        continue;
      }
      auto it = var_types_.find(arg->name);
      if (it != var_types_.end()) {
        if (!catalog_.IsSubtype(it->second, want)) {
          return Err("head argument '" + arg->name + "' has type '" +
                     catalog_.decl(it->second).name +
                     "' which is not contained in '" +
                     catalog_.decl(want).name + "' (not type-safe)");
        }
      } else {
        SB_RETURN_IF_ERROR(Unify(arg->name, want));
      }
    }
    (void)rule;
    return Status::OK();
  }

  Catalog& catalog_;
  const BuiltinSignatureMap& builtins_;
  std::unordered_map<std::string, PredId> var_types_;
  std::unordered_set<std::string> bound_;
  std::string where_;
};

}  // namespace

Result<std::vector<ConstraintDecl>> BuildSchema(const Program& program,
                                                Catalog* catalog) {
  std::vector<ConstraintDecl> runtime;

  // Pass 1: entity type declarations.
  for (const ConstraintDecl& c : program.constraints) {
    if (IsEntityTypeDecl(c)) {
      auto declared = catalog->DeclareEntityType(c.lhs[0].atom.pred.name);
      if (!declared.ok()) return declared.status();
    }
  }

  // Pass 2: predicate declarations and subtype edges.
  for (const ConstraintDecl& c : program.constraints) {
    if (IsEntityTypeDecl(c)) continue;
    const Atom* atom = SingleDistinctVarAtom(c);
    auto type_map = atom ? RhsAsTypeMap(c) : std::nullopt;
    bool declared = false;
    if (atom && type_map.has_value() &&
        type_map->size() == atom->args.size()) {
      // All rhs type names must resolve to type predicates and cover all
      // lhs variables.
      std::vector<PredId> arg_types;
      bool ok = true;
      for (const auto& arg : atom->args) {
        auto it = type_map->find(arg->name);
        if (it == type_map->end()) {
          ok = false;
          break;
        }
        auto type_id = catalog->Lookup(it->second);
        if (!type_id.ok() || !catalog->decl(type_id.value()).is_type) {
          ok = false;
          break;
        }
        arg_types.push_back(type_id.value());
      }
      if (ok) {
        // Subtype edge when the lhs predicate is itself an entity type.
        auto existing = catalog->Lookup(atom->pred.name);
        if (existing.ok() && catalog->decl(existing.value()).is_entity_type &&
            atom->args.size() == 1) {
          SB_RETURN_IF_ERROR(
              catalog->AddSubtype(existing.value(), arg_types[0]));
          declared = true;
        } else {
          auto id = catalog->DeclarePredicate(atom->pred.name, arg_types,
                                              atom->functional);
          if (id.ok()) {
            declared = true;
          } else if (id.status().code() == StatusCode::kAlreadyExists) {
            return id.status();
          }
        }
      }
    }
    if (!declared) runtime.push_back(c);
  }
  return runtime;
}

Result<AnalyzedProgram> AnalyzeProgram(const Program& program,
                                       Catalog* catalog,
                                       const BuiltinSignatureMap& builtins) {
  if (!program.generic_rules.empty() || !program.generic_constraints.empty() ||
      !program.meta_facts.empty()) {
    return Status::CompileError(
        "program contains generic clauses; run the BloxGenerics compiler "
        "before analysis");
  }

  AnalyzedProgram out;
  SB_ASSIGN_OR_RETURN(out.runtime_constraints, BuildSchema(program, catalog));

  Checker checker(catalog, builtins);
  for (const Rule& r : program.rules) {
    if (r.IsFact()) {
      SB_RETURN_IF_ERROR(checker.CheckFact(r));
      out.facts.push_back(r);
    } else {
      SB_RETURN_IF_ERROR(checker.CheckRule(r));
      out.rules.push_back(r);
    }
  }
  for (const ConstraintDecl& c : out.runtime_constraints) {
    SB_RETURN_IF_ERROR(checker.CheckConstraint(c));
  }
  return out;
}

}  // namespace secureblox::datalog
