// Static analysis of object-level DatalogLB programs (post-generics):
//
//  1. Schema extraction — constraints of recognized shapes become
//     declarations rather than runtime checks:
//       t(x) -> .                       entity type
//       p(x,y) -> t1(x), t2(y).        predicate declaration (type-based
//                                       constraint, verified statically)
//       s(x) -> t(x).                  subtype edge when s is an entity type
//  2. Type checking — every rule must be type-safe for all possible schema
//     instantiations (the paper's compile-time guarantee): argument types
//     of body bindings must be subtypes of head positions, negation and
//     comparisons must be over bound variables, and unbound head variables
//     are only admitted as entity-creating head existentials.
#ifndef SECUREBLOX_DATALOG_TYPECHECK_H_
#define SECUREBLOX_DATALOG_TYPECHECK_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/catalog.h"

namespace secureblox::datalog {

/// Signature of a builtin function usable as a body atom: the first
/// `num_inputs` arguments are inputs (must be bound), the rest are outputs
/// (bound by the builtin). Types are by name ("int", "blob", "principal",
/// ...); "any" skips checking for that position.
struct BuiltinSignature {
  std::vector<std::string> arg_types;
  int num_inputs = 0;
};

using BuiltinSignatureMap = std::map<std::string, BuiltinSignature>;

/// Output of analysis: the program split into installable pieces.
struct AnalyzedProgram {
  std::vector<Rule> rules;  // non-fact rules, typechecked
  std::vector<Rule> facts;  // ground facts
  std::vector<ConstraintDecl> runtime_constraints;
};

/// Extract declarations from `program`'s constraints into `catalog` and
/// return the remaining constraints that must be checked at runtime.
/// (Exposed separately because the generics compiler needs schema info
/// before expansion.)
Result<std::vector<ConstraintDecl>> BuildSchema(const Program& program,
                                                Catalog* catalog);

/// Full analysis: BuildSchema + typecheck of rules, facts, and runtime
/// constraints. The program must contain no generic clauses and no
/// unresolved parameterized atoms.
Result<AnalyzedProgram> AnalyzeProgram(const Program& program,
                                       Catalog* catalog,
                                       const BuiltinSignatureMap& builtins);

}  // namespace secureblox::datalog

#endif  // SECUREBLOX_DATALOG_TYPECHECK_H_
