#include "datalog/ast.h"

#include "common/strings.h"

namespace secureblox::datalog {

TermPtr Term::Var(std::string n) {
  auto t = std::make_shared<Term>();
  t->kind = TermKind::kVar;
  t->name = std::move(n);
  return t;
}

TermPtr Term::Const(Value v) {
  auto t = std::make_shared<Term>();
  t->kind = TermKind::kConst;
  t->constant = std::move(v);
  return t;
}

TermPtr Term::QuotedPred(std::string n) {
  auto t = std::make_shared<Term>();
  t->kind = TermKind::kQuotedPred;
  t->name = std::move(n);
  return t;
}

TermPtr Term::Vararg(std::string n) {
  auto t = std::make_shared<Term>();
  t->kind = TermKind::kVararg;
  t->name = std::move(n);
  return t;
}

TermPtr Term::Arith(char op, TermPtr l, TermPtr r) {
  auto t = std::make_shared<Term>();
  t->kind = TermKind::kArith;
  t->op = op;
  t->lhs = std::move(l);
  t->rhs = std::move(r);
  return t;
}

std::string Term::ToString() const {
  switch (kind) {
    case TermKind::kVar:
      return name;
    case TermKind::kConst:
      return constant.ToString();
    case TermKind::kQuotedPred:
      return "`" + name;
    case TermKind::kVararg:
      return name + "*";
    case TermKind::kArith:
      return "(" + lhs->ToString() + " " + op + " " + rhs->ToString() + ")";
  }
  return "?";
}

std::string PredRef::ToString() const {
  if (!parameterized()) return name;
  return name + "[" + param->ToString() + "]";
}

bool Atom::HasVararg() const {
  for (const auto& a : args) {
    if (a->kind == TermKind::kVararg) return true;
  }
  return false;
}

std::string Atom::ToString() const {
  std::string out = negated ? "!" : "";
  out += pred.ToString();
  std::vector<std::string> parts;
  for (const auto& a : args) parts.push_back(a->ToString());
  if (functional) {
    std::string value = parts.back();
    parts.pop_back();
    out += "[" + Join(parts, ", ") + "] = " + value;
  } else {
    out += "(" + Join(parts, ", ") + ")";
  }
  return out;
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

std::string Comparison::ToString() const {
  return lhs->ToString() + " " + CmpOpName(op) + " " + rhs->ToString();
}

Literal Literal::MakeAtom(Atom a) {
  Literal l;
  l.kind = Kind::kAtom;
  l.atom = std::move(a);
  return l;
}

Literal Literal::MakeCompare(Comparison c) {
  Literal l;
  l.kind = Kind::kCompare;
  l.cmp = std::move(c);
  return l;
}

std::string Literal::ToString() const {
  return kind == Kind::kAtom ? atom.ToString() : cmp.ToString();
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
  }
  return "?";
}

namespace {
std::string LiteralsToString(const std::vector<Literal>& lits) {
  std::vector<std::string> parts;
  for (const auto& l : lits) parts.push_back(l.ToString());
  return Join(parts, ", ");
}
}  // namespace

std::string Rule::ToString() const {
  std::vector<std::string> head_parts;
  for (const auto& h : heads) head_parts.push_back(h.ToString());
  std::string out = Join(head_parts, ", ");
  if (IsFact()) return out + ".";
  out += " <- ";
  if (agg.has_value()) {
    out += "agg<< " + std::string(agg->result_var) + " = " +
           AggFuncName(agg->func) + "(" + agg->input_var + ") >> ";
  }
  out += LiteralsToString(body) + ".";
  return out;
}

std::string ConstraintDecl::ToString() const {
  return LiteralsToString(lhs) + " -> " + LiteralsToString(rhs) + ".";
}

void Program::Merge(Program other) {
  auto append = [](auto& dst, auto& src) {
    dst.insert(dst.end(), std::make_move_iterator(src.begin()),
               std::make_move_iterator(src.end()));
  };
  append(rules, other.rules);
  append(constraints, other.constraints);
  append(generic_rules, other.generic_rules);
  append(generic_constraints, other.generic_constraints);
  append(meta_facts, other.meta_facts);
}

std::string Program::ToString() const {
  std::string out;
  for (const auto& c : constraints) out += c.ToString() + "\n";
  for (const auto& r : rules) out += r.ToString() + "\n";
  for (const auto& m : meta_facts) out += m.ToString() + ".\n";
  for (const auto& gr : generic_rules) {
    std::vector<std::string> head_parts;
    for (const auto& h : gr.head_atoms) head_parts.push_back(h.ToString());
    out += Join(head_parts, ", ");
    for (const auto& t : gr.templates) {
      out += head_parts.empty() ? "`{\n" : ", `{\n";
      for (const auto& c : t.constraints) out += "  " + c.ToString() + "\n";
      for (const auto& r : t.rules) out += "  " + r.ToString() + "\n";
      out += "}";
    }
    out += " <-- ";
    std::vector<std::string> body_parts;
    for (const auto& b : gr.body) body_parts.push_back(b.ToString());
    out += Join(body_parts, ", ") + ".\n";
  }
  for (const auto& gc : generic_constraints) {
    out += LiteralsToString(gc.lhs) + " --> " + LiteralsToString(gc.rhs) +
           ".\n";
  }
  return out;
}

}  // namespace secureblox::datalog
