#include "datalog/catalog.h"

namespace secureblox::datalog {

Catalog::Catalog() {
  auto add_primitive = [this](const std::string& name, ValueKind kind) {
    PredicateDecl d;
    d.id = static_cast<PredId>(decls_.size());
    d.name = name;
    d.is_type = true;
    d.is_primitive = true;
    d.primitive_kind = kind;
    d.arg_types = {d.id};  // self-typed unary
    by_name_[name] = d.id;
    decls_.push_back(std::move(d));
    return static_cast<PredId>(decls_.size() - 1);
  };
  int_type_ = add_primitive("int", ValueKind::kInt);
  string_type_ = add_primitive("string", ValueKind::kString);
  bool_type_ = add_primitive("bool", ValueKind::kBool);
  blob_type_ = add_primitive("blob", ValueKind::kBlob);
}

Result<PredId> Catalog::DeclarePredicate(const std::string& name,
                                         std::vector<PredId> arg_types,
                                         bool functional) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    const PredicateDecl& existing = decls_[it->second];
    if (existing.arg_types == arg_types && existing.functional == functional &&
        !existing.is_type) {
      return existing.id;  // identical redeclaration is harmless
    }
    return Status::AlreadyExists("predicate '" + name +
                                 "' already declared with a different shape");
  }
  PredicateDecl d;
  d.id = static_cast<PredId>(decls_.size());
  d.name = name;
  d.arg_types = std::move(arg_types);
  d.functional = functional;
  by_name_[name] = d.id;
  decls_.push_back(std::move(d));
  return static_cast<PredId>(decls_.size() - 1);
}

Result<PredId> Catalog::DeclareEntityType(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    const PredicateDecl& existing = decls_[it->second];
    if (existing.is_entity_type) return existing.id;
    return Status::AlreadyExists("'" + name +
                                 "' already declared as a non-entity predicate");
  }
  PredicateDecl d;
  d.id = static_cast<PredId>(decls_.size());
  d.name = name;
  d.is_type = true;
  d.is_entity_type = true;
  d.arg_types = {d.id};
  by_name_[name] = d.id;
  decls_.push_back(std::move(d));
  entities_[d.id] = EntityTable{};
  return static_cast<PredId>(decls_.size() - 1);
}

Result<PredId> Catalog::Lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("undeclared predicate '" + name + "'");
  }
  return it->second;
}

bool Catalog::IsDeclared(const std::string& name) const {
  return by_name_.count(name) > 0;
}

Status Catalog::AddSubtype(PredId sub, PredId super) {
  if (!decls_[sub].is_type || !decls_[super].is_type) {
    return Status::TypeError("subtype constraint between non-type predicates");
  }
  supertypes_[sub].push_back(super);
  return Status::OK();
}

bool Catalog::IsSubtype(PredId sub, PredId super) const {
  if (sub == super) return true;
  auto it = supertypes_.find(sub);
  if (it == supertypes_.end()) return false;
  for (PredId up : it->second) {
    if (IsSubtype(up, super)) return true;
  }
  return false;
}

std::vector<PredId> Catalog::SupertypesOf(PredId type) const {
  std::vector<PredId> out;
  auto it = supertypes_.find(type);
  if (it == supertypes_.end()) return out;
  for (PredId up : it->second) {
    out.push_back(up);
    for (PredId more : SupertypesOf(up)) out.push_back(more);
  }
  return out;
}

Result<Value> Catalog::InternEntity(PredId type, const std::string& label) {
  auto it = entities_.find(type);
  if (it == entities_.end()) {
    return Status::InvalidArgument("'" + decl(type).name +
                                   "' is not an entity type");
  }
  EntityTable& table = it->second;
  auto found = table.by_label.find(label);
  if (found != table.by_label.end()) {
    return Value::Entity(type, found->second);
  }
  int64_t id = static_cast<int64_t>(table.labels.size());
  table.labels.push_back(label);
  table.by_label[label] = id;
  return Value::Entity(type, id);
}

Result<Value> Catalog::FindEntity(PredId type, const std::string& label) const {
  auto it = entities_.find(type);
  if (it == entities_.end()) {
    return Status::InvalidArgument("'" + decl(type).name +
                                   "' is not an entity type");
  }
  auto found = it->second.by_label.find(label);
  if (found == it->second.by_label.end()) {
    return Status::NotFound("no entity '" + label + "' of type " +
                            decl(type).name);
  }
  return Value::Entity(type, found->second);
}

Result<Value> Catalog::CreateAnonymousEntity(PredId type,
                                             const std::string& hint) {
  std::string label =
      hint + "@" + node_tag_ + "#" + std::to_string(anon_counter_++);
  return InternEntity(type, label);
}

Result<std::string> Catalog::EntityLabel(const Value& v) const {
  if (!v.is_entity()) return Status::InvalidArgument("value is not an entity");
  auto it = entities_.find(v.entity_type());
  if (it == entities_.end() ||
      v.entity_id() >= static_cast<int64_t>(it->second.labels.size())) {
    return Status::NotFound("unknown entity");
  }
  return it->second.labels[static_cast<size_t>(v.entity_id())];
}

const std::vector<std::string>& Catalog::EntityLabels(PredId type) const {
  static const std::vector<std::string> kEmpty;
  auto it = entities_.find(type);
  return it == entities_.end() ? kEmpty : it->second.labels;
}

bool Catalog::ValueMatchesType(const Value& v, PredId type) const {
  const PredicateDecl& t = decls_[type];
  if (t.is_primitive) return v.kind() == t.primitive_kind;
  if (t.is_entity_type) {
    return v.is_entity() && IsSubtype(v.entity_type(), type);
  }
  return false;
}

std::string Catalog::ValueToString(const Value& v) const {
  if (!v.is_entity()) return v.ToString();
  auto label = EntityLabel(v);
  if (!label.ok()) return v.ToString();
  return decls_[v.entity_type()].name + ":" + label.value();
}

}  // namespace secureblox::datalog
