#include "datalog/lexer.h"

#include <cctype>

namespace secureblox::datalog {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kVararg: return "vararg";
    case TokenKind::kQuotedIdent: return "quoted identifier";
    case TokenKind::kTemplateOpen: return "`{";
    case TokenKind::kInt: return "integer";
    case TokenKind::kString: return "string";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBracket: return "[";
    case TokenKind::kRBracket: return "]";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kComma: return ",";
    case TokenKind::kDot: return ".";
    case TokenKind::kBang: return "!";
    case TokenKind::kEq: return "=";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kArrowRule: return "<-";
    case TokenKind::kArrowConstraint: return "->";
    case TokenKind::kArrowGenericRule: return "<--";
    case TokenKind::kArrowGenericConstraint: return "-->";
    case TokenKind::kAggOpen: return "<<";
    case TokenKind::kAggClose: return ">>";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

namespace {

class LexerImpl {
 public:
  explicit LexerImpl(const std::string& src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SB_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      SourceLoc loc{line_, col_};
      if (AtEnd()) {
        out.push_back({TokenKind::kEof, "", 0, loc});
        return out;
      }
      auto tok = Next(loc);
      if (!tok.ok()) return tok.status();
      out.push_back(std::move(tok).value());
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at " + std::to_string(line_) + ":" +
                              std::to_string(col_));
  }

  Status SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
        if (AtEnd()) return Error("unterminated block comment");
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::OK();
  }

  static bool IsIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$';
  }

  Result<Token> Next(SourceLoc loc) {
    char c = Peek();

    if (IsIdentStart(c)) {
      std::string text;
      while (!AtEnd() && IsIdentChar(Peek())) text.push_back(Advance());
      bool is_var = std::isupper(static_cast<unsigned char>(text[0])) ||
                    text[0] == '_';
      if (is_var && Peek() == '*') {
        Advance();
        return Token{TokenKind::kVararg, text, 0, loc};
      }
      return Token{is_var ? TokenKind::kVariable : TokenKind::kIdent, text, 0,
                   loc};
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits.push_back(Advance());
      }
      Token t{TokenKind::kInt, digits, 0, loc};
      try {
        t.int_value = std::stoll(digits);
      } catch (...) {
        return Error("integer literal out of range: " + digits);
      }
      return t;
    }

    switch (c) {
      case '"': {
        Advance();
        std::string text;
        while (!AtEnd() && Peek() != '"') {
          char ch = Advance();
          if (ch == '\\' && !AtEnd()) {
            char esc = Advance();
            switch (esc) {
              case 'n': text.push_back('\n'); break;
              case 't': text.push_back('\t'); break;
              case '\\': text.push_back('\\'); break;
              case '"': text.push_back('"'); break;
              default: return Error(std::string("bad escape \\") + esc);
            }
          } else {
            text.push_back(ch);
          }
        }
        if (AtEnd()) return Error("unterminated string literal");
        Advance();  // closing quote
        return Token{TokenKind::kString, text, 0, loc};
      }
      case '`': {
        Advance();
        if (Peek() == '{') {
          Advance();
          return Token{TokenKind::kTemplateOpen, "`{", 0, loc};
        }
        if (!IsIdentStart(Peek())) {
          return Error("expected identifier or { after `");
        }
        std::string text;
        while (!AtEnd() && IsIdentChar(Peek())) text.push_back(Advance());
        return Token{TokenKind::kQuotedIdent, text, 0, loc};
      }
      case '(': Advance(); return Token{TokenKind::kLParen, "(", 0, loc};
      case ')': Advance(); return Token{TokenKind::kRParen, ")", 0, loc};
      case '[': Advance(); return Token{TokenKind::kLBracket, "[", 0, loc};
      case ']': Advance(); return Token{TokenKind::kRBracket, "]", 0, loc};
      case '}': Advance(); return Token{TokenKind::kRBrace, "}", 0, loc};
      case ',': Advance(); return Token{TokenKind::kComma, ",", 0, loc};
      case '.': Advance(); return Token{TokenKind::kDot, ".", 0, loc};
      case '+': Advance(); return Token{TokenKind::kPlus, "+", 0, loc};
      case '*': Advance(); return Token{TokenKind::kStar, "*", 0, loc};
      case '/': Advance(); return Token{TokenKind::kSlash, "/", 0, loc};
      case '=': Advance(); return Token{TokenKind::kEq, "=", 0, loc};
      case '!':
        Advance();
        if (Peek() == '=') {
          Advance();
          return Token{TokenKind::kNe, "!=", 0, loc};
        }
        return Token{TokenKind::kBang, "!", 0, loc};
      case '<':
        Advance();
        if (Peek() == '-' && Peek(1) == '-') {
          Advance(); Advance();
          return Token{TokenKind::kArrowGenericRule, "<--", 0, loc};
        }
        if (Peek() == '-') {
          Advance();
          return Token{TokenKind::kArrowRule, "<-", 0, loc};
        }
        if (Peek() == '<') {
          Advance();
          return Token{TokenKind::kAggOpen, "<<", 0, loc};
        }
        if (Peek() == '=') {
          Advance();
          return Token{TokenKind::kLe, "<=", 0, loc};
        }
        return Token{TokenKind::kLt, "<", 0, loc};
      case '>':
        Advance();
        if (Peek() == '>') {
          Advance();
          return Token{TokenKind::kAggClose, ">>", 0, loc};
        }
        if (Peek() == '=') {
          Advance();
          return Token{TokenKind::kGe, ">=", 0, loc};
        }
        return Token{TokenKind::kGt, ">", 0, loc};
      case '-':
        Advance();
        if (Peek() == '-' && Peek(1) == '>') {
          Advance(); Advance();
          return Token{TokenKind::kArrowGenericConstraint, "-->", 0, loc};
        }
        if (Peek() == '>') {
          Advance();
          return Token{TokenKind::kArrowConstraint, "->", 0, loc};
        }
        return Token{TokenKind::kMinus, "-", 0, loc};
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& source) {
  return LexerImpl(source).Run();
}

}  // namespace secureblox::datalog
