// SIMD equality-filter kernels over contiguous u32 dictionary-code vectors
// (the columnar layout's per-shard column segments, see relation.h).
//
// A kernel takes one or more column filters — a column base pointer plus
// the code every surviving slot must hold there — and emits the matching
// slots into a caller-owned selection vector. Two input shapes cover the
// executor's scan paths:
//
//  * a dense slot range [begin, end): the full-shard scan, and
//  * an explicit slot list (a secondary-index probe result): the indexed
//    probe path.
//
// Both shapes AND every filter in one pass ("fused"), so a multi-column
// pattern touches each slot once. Output slots always appear in input
// order (ascending for ranges, list order for slot lists), which is what
// keeps the fixpoint byte-identical across SIMD levels: the selection
// vector is exactly the sequence the scalar loop would have produced.
//
// Dispatch: SSE2 and AVX2 variants are compiled with per-function target
// attributes (no global -mavx2) and selected at runtime; SimdMode::kScalar
// is always available and is the only mode on non-x86 builds. Kernels are
// pure functions over const data — they share the relation probe paths'
// read-only concurrency contract.
#ifndef SECUREBLOX_ENGINE_KERNELS_H_
#define SECUREBLOX_ENGINE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace secureblox::engine {

/// Instruction set the filter kernels execute with.
enum class SimdMode : uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Lowercase name for SB_EXPLAIN and logs: "scalar" | "sse2" | "avx2".
const char* SimdModeName(SimdMode mode);

/// Best SIMD level this CPU supports (probed once, then cached).
SimdMode DetectSimdMode();

/// Resolve the SB_SIMD knob (FixpointOptions::simd) to a concrete mode:
/// 0 = scalar, 1 or 2 (auto, the default) = the best level DetectSimdMode
/// reports. The fixpoint result is identical at every level.
SimdMode ResolveSimdMode(int knob);

/// One column's equality filter: the shard's contiguous code vector and
/// the code a surviving slot must hold in it.
struct CodeFilter {
  const uint32_t* codes = nullptr;
  uint32_t code = 0;
};

/// Append to `out` every slot in [begin, end) where all `nf` filters
/// match, in ascending slot order. nf == 0 appends the whole range.
void FilterFusedRange(SimdMode mode, const CodeFilter* filters, size_t nf,
                      uint32_t begin, uint32_t end,
                      std::vector<uint32_t>* out);

/// Append to `out` every slot of `sel[0, n)` where all `nf` filters
/// match, preserving list order. nf == 0 appends the whole list.
void FilterFusedSelect(SimdMode mode, const CodeFilter* filters, size_t nf,
                       const size_t* sel, size_t n,
                       std::vector<uint32_t>* out);

}  // namespace secureblox::engine

#endif  // SECUREBLOX_ENGINE_KERNELS_H_
