#include "engine/builtins.h"

#include "common/bytes.h"
#include "crypto/sha1.h"

namespace secureblox::engine {

using datalog::BuiltinSignature;
using datalog::Value;
using datalog::ValueKind;

Status BuiltinRegistry::Register(const std::string& name,
                                 datalog::BuiltinSignature sig, BuiltinFn fn,
                                 bool thread_safe) {
  if (impls_.count(name)) {
    return Status::AlreadyExists("builtin '" + name + "' already registered");
  }
  impls_[name] = BuiltinImpl{std::move(sig), std::move(fn), thread_safe};
  return Status::OK();
}

void BuiltinRegistry::RegisterOrReplace(const std::string& name,
                                        datalog::BuiltinSignature sig,
                                        BuiltinFn fn, bool thread_safe) {
  impls_[name] = BuiltinImpl{std::move(sig), std::move(fn), thread_safe};
}

const BuiltinImpl* BuiltinRegistry::Find(const std::string& name) const {
  auto it = impls_.find(name);
  return it == impls_.end() ? nullptr : &it->second;
}

bool BuiltinRegistry::Contains(const std::string& name) const {
  return impls_.count(name) > 0;
}

datalog::BuiltinSignatureMap BuiltinRegistry::Signatures() const {
  datalog::BuiltinSignatureMap out;
  for (const auto& [name, impl] : impls_) out[name] = impl.sig;
  return out;
}

namespace {

// Canonical byte encoding of a value for hashing: kind tag + payload.
// Entities encode as type name + label so the encoding is identical on
// every node regardless of local intern order.
Result<Bytes> CanonicalBytes(EvalContext& ctx, const Value& v) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kBool:
      w.PutU8(v.AsBool() ? 1 : 0);
      break;
    case ValueKind::kInt:
      w.PutU64(static_cast<uint64_t>(v.AsInt()));
      break;
    case ValueKind::kString:
    case ValueKind::kBlob:
      w.PutLengthPrefixedString(v.BlobRef());
      break;
    case ValueKind::kEntity: {
      if (ctx.catalog == nullptr) {
        return Status::Internal("entity hashing requires a catalog");
      }
      SB_ASSIGN_OR_RETURN(std::string label, ctx.catalog->EntityLabel(v));
      w.PutLengthPrefixedString(ctx.catalog->decl(v.entity_type()).name);
      w.PutLengthPrefixedString(label);
      break;
    }
  }
  return w.Take();
}

}  // namespace

void RegisterCoreBuiltins(BuiltinRegistry* registry) {
  registry->RegisterOrReplace(
      "sha1", BuiltinSignature{{"any", "blob"}, 1},
      [](EvalContext& ctx, const std::vector<Value>& in,
         std::vector<Value>* out) -> Result<bool> {
        SB_ASSIGN_OR_RETURN(Bytes bytes, CanonicalBytes(ctx, in[0]));
        out->push_back(Value::MakeBlob(crypto::Sha1Digest(bytes)));
        return true;
      });

  registry->RegisterOrReplace(
      "sha1_bucket", BuiltinSignature{{"any", "int", "int"}, 2},
      [](EvalContext& ctx, const std::vector<Value>& in,
         std::vector<Value>* out) -> Result<bool> {
        if (in[1].AsInt() <= 0) {
          return Status::InvalidArgument("sha1_bucket modulus must be > 0");
        }
        SB_ASSIGN_OR_RETURN(Bytes bytes, CanonicalBytes(ctx, in[0]));
        Bytes digest = crypto::Sha1Digest(bytes);
        uint64_t h = 0;
        for (int i = 0; i < 8; ++i) h = (h << 8) | digest[i];
        out->push_back(
            Value::Int(static_cast<int64_t>(h % static_cast<uint64_t>(
                                                    in[1].AsInt()))));
        return true;
      });

  registry->RegisterOrReplace(
      "concat", BuiltinSignature{{"string", "string", "string"}, 2},
      [](EvalContext&, const std::vector<Value>& in,
         std::vector<Value>* out) -> Result<bool> {
        out->push_back(Value::Str(in[0].AsString() + in[1].AsString()));
        return true;
      });

  registry->RegisterOrReplace(
      "tostring", BuiltinSignature{{"any", "string"}, 1},
      [](EvalContext& ctx, const std::vector<Value>& in,
         std::vector<Value>* out) -> Result<bool> {
        if (ctx.catalog != nullptr) {
          out->push_back(Value::Str(ctx.catalog->ValueToString(in[0])));
        } else {
          out->push_back(Value::Str(in[0].ToString()));
        }
        return true;
      });
}

}  // namespace secureblox::engine
