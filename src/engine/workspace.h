// Workspace: the LogicBlox-style database instance.
//
// A workspace holds a catalog (predicate definitions), relations, installed
// rules, and integrity constraints. Data is modified through ACID
// transactions that encapsulate a fixpoint computation (paper §2, §5.2):
// the batch of updates is applied, installed rules run to fixpoint,
// runtime constraints are checked against the transaction's delta, and on
// any violation the whole transaction — including the input tuples — rolls
// back.
//
// The fixpoint itself lives in engine/fixpoint (FixpointDriver) and runs
// over the rule-dependency structure in engine/rule_graph; the workspace
// owns storage, undo logging, entity interning, and constraint checking,
// and exposes them to the driver through the FixpointHost interface.
//
// Deletions propagate incrementally (counting + group-local DRed): each
// derived tuple carries a derivation-support count maintained by the
// fixpoint driver, a base-fact delete seeds a delete delta, and only
// tuples whose support reaches zero cascade. Recursive rule groups and
// flipped negation probes rederive group-locally instead of reseeding the
// whole database (see engine/fixpoint.h).
#ifndef SECUREBLOX_ENGINE_WORKSPACE_H_
#define SECUREBLOX_ENGINE_WORKSPACE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/catalog.h"
#include "engine/builtins.h"
#include "engine/eval.h"
#include "engine/fixpoint.h"
#include "engine/placement.h"
#include "engine/relation.h"
#include "engine/rule_graph.h"

namespace secureblox::engine {

/// One fact insertion/deletion request. Values in entity-typed positions may
/// be strings; they are interned as entity labels (refmode).
struct FactUpdate {
  std::string pred;
  std::vector<datalog::Value> values;
};

/// Committed transaction summary.
struct TxCommit {
  /// New tuples per predicate (base + derived) that survived the commit.
  std::map<datalog::PredId, std::vector<Tuple>> inserted;
  /// Mutations staged for remote shard owners (placement mode; see
  /// engine/placement.h). The distribution layer ships these per owner
  /// and shard; empty without a placement map.
  std::vector<RemoteDelta> remote;
  int64_t duration_us = 0;
  size_t num_derived = 0;
  /// Fixpoint counters for this transaction (rounds, firings, skips).
  FixpointStats fixpoint;
};

/// Cumulative engine counters (per-transaction values in TxCommit).
struct EngineStats {
  uint64_t transactions = 0;
  uint64_t aborts = 0;
  uint64_t derived_tuples = 0;
  uint64_t constraint_checks = 0;
  uint64_t fixpoint_rounds = 0;
  uint64_t rule_firings = 0;
  uint64_t firings_skipped = 0;
  uint64_t agg_recomputes = 0;
  uint64_t agg_skipped = 0;
  // Parallel fixpoint (see FixpointStats).
  uint64_t waves = 0;
  uint64_t parallel_tasks = 0;
  // Deletion path (see FixpointStats).
  uint64_t retractions = 0;
  uint64_t deleted_tuples = 0;
  uint64_t rescued_tuples = 0;
  uint64_t group_rederives = 0;
  /// Secondary-index bucket (re)constructions across all relations. With
  /// in-place erase maintenance this stays at one initial build per
  /// (relation, probe mask); benches watch it to catch regressions to
  /// rebuild-on-erase behaviour.
  uint64_t index_rebuilds = 0;
  /// Execution plans built or rebuilt by the cost-based planner (SB_PLAN).
  uint64_t plan_builds = 0;
  /// Process-wide evaluation frames ever allocated (EvalFrameAllocs):
  /// flat in steady state — benches and tests pin the no-allocation
  /// property of the Executor's probe paths on this staying constant
  /// across repeated identical transactions.
  uint64_t eval_frame_allocs = 0;
  /// Storage-footprint gauges (not counters): approximate heap bytes
  /// across all relations by component, recomputed at each commit from
  /// Relation::Memory(). Dictionary bytes are zero under the row-major
  /// layout; columnar savings on wide relations show up as column_bytes
  /// (+ dictionary) undercutting the row layout's tuple storage.
  uint64_t relation_dict_bytes = 0;
  uint64_t relation_column_bytes = 0;
  uint64_t relation_index_bytes = 0;
};

class Workspace : public RelationStore, private FixpointHost {
 public:
  Workspace();
  ~Workspace() override = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  datalog::Catalog& catalog() { return *catalog_; }
  const datalog::Catalog& catalog() const { return *catalog_; }
  BuiltinRegistry& builtins() { return builtins_; }
  /// Opaque pointer handed to builtin functions (e.g. the node's KeyStore).
  void set_user_context(void* user) { ctx_.user = user; }

  /// Declarative-networking mode: permit negation through recursive
  /// predicates with derivation-time semantics (see Stratify). Must be set
  /// before Install.
  void set_allow_unstratified_negation(bool allow) {
    allow_unstratified_negation_ = allow;
  }

  /// Fixpoint knobs (derivation budget). May be adjusted at any time.
  FixpointOptions& fixpoint_options() { return fixpoint_options_; }

  /// Query-serving mode (engine/query): Install records rules for the
  /// query front end instead of compiling them for bottom-up evaluation,
  /// and drops runtime constraints — a serving replica trusts upstream
  /// validation and materializes only query slices. Declarations and
  /// ground facts behave as usual. Set before the first Install.
  void set_defer_rules(bool defer) { defer_rules_ = defer; }
  bool defer_rules() const { return defer_rules_; }

  /// Rules recorded by Install while defer_rules is set (analyzed,
  /// typechecked, uncompiled) — the query front end's rewrite source.
  const std::vector<datalog::Rule>& deferred_rules() const {
    return deferred_rules_;
  }

  /// Analyze (schema + typecheck), compile, and install a program. Ground
  /// facts in the program are applied through a transaction. May be called
  /// multiple times; rules accumulate.
  Status Install(const datalog::Program& program);

  /// Install a rewritten rule slice from the query front end: compiles and
  /// activates the rules regardless of defer_rules. The program must
  /// contain rules only (no facts, no unrecognized constraints); newly
  /// referenced predicates must already be declared.
  Status InstallSlice(const datalog::Program& program);

  /// Run one ACID transaction: apply updates, fixpoint, constraint check.
  /// On violation returns ConstraintViolation and the workspace is
  /// unchanged. `remote_ops` are placement mutations decoded from peer
  /// deliveries (engine/placement.h); they apply before the local updates
  /// in kind order (handoff, base insert, support add, base delete,
  /// support drop) so a single delivery transaction can carry a shard
  /// snapshot plus live traffic.
  Result<TxCommit> Apply(const std::vector<FactUpdate>& inserts,
                         const std::vector<FactUpdate>& deletes = {},
                         const std::vector<RemoteOp>& remote_ops = {});

  /// Extract and remove one shard of a placed relation for handoff to a
  /// new owner: every stored row (base or derived) with its support count.
  /// Raw storage surgery — runs outside any transaction, fires no rules,
  /// and must only be called between transactions on shards this node owns
  /// under the outgoing map. Co-shardability makes the result closed: the
  /// new owner installs rows + supports verbatim and the global fixpoint
  /// is unchanged.
  Result<std::vector<RemoteDelta>> DetachShard(datalog::PredId pred,
                                               size_t shard);

  /// Placement deliveries whose delete/drop arrived before the matching
  /// insert/add (network reordering): parked and retried each transaction.
  size_t deferred_remote_count() const { return deferred_remote_.size(); }

  /// Convenience single-fact insert.
  Status Insert(const std::string& pred, std::vector<datalog::Value> values);

  // -- queries ---------------------------------------------------------------

  Result<std::vector<Tuple>> Query(const std::string& pred) const;
  Result<bool> ContainsFact(const std::string& pred,
                            const std::vector<datalog::Value>& values) const;
  /// Value of a singleton predicate `p[] = v`.
  Result<datalog::Value> SingletonValue(const std::string& pred) const;
  /// Normalize raw values against a predicate's declared types (interning
  /// entity labels). Public for the distribution layer.
  Result<Tuple> NormalizeTuple(datalog::PredId pred,
                               const std::vector<datalog::Value>& values);

  Relation* GetRelation(datalog::PredId pred) override;
  const Relation* GetRelationIfExists(datalog::PredId pred) const;

  /// Dependency structure of the installed rules (rebuilt per Install).
  const RuleGraph& rule_graph() const { return rule_graph_; }

  /// Installed compiled rules (planner tests inspect baseline step order
  /// and plan caches).
  const std::vector<CompiledRule>& compiled_rules() const {
    return compiled_rules_;
  }

  /// Installed source rules, index-aligned with rule_graph() (placement
  /// validation walks them).
  const std::vector<datalog::Rule>& installed_rules() const {
    return installed_rules_;
  }

  // -- stats -----------------------------------------------------------------

  const EngineStats& stats() const { return stats_; }
  const std::vector<int64_t>& tx_durations_us() const {
    return tx_durations_us_;
  }

 private:
  struct UndoOp {
    enum class Kind {
      kInserted,
      kErased,
      kBaseAdded,
      kBaseRemoved,
      kSupportAdded,    // undo: drop one derivation support
      kSupportDropped,  // undo: add one derivation support
      kSupportCleared,  // undo: restore `count` (over-delete of base facts)
    };
    Kind kind;
    datalog::PredId pred;
    Tuple tuple;
    /// kErased / kSupportCleared: the support count to restore.
    uint32_t count = 0;
  };

  struct TxState {
    std::vector<UndoOp> undo;
    std::map<datalog::PredId, std::vector<Tuple>> inserted;
    /// Mutations staged for remote shard owners (placement mode).
    std::vector<RemoteDelta> remote;
    size_t num_derived = 0;
    /// Tuples physically erased (any cause: base delete, retraction,
    /// over-delete, stale aggregate) — erasures invalidate the
    /// insert-delta constraint-check shortcut.
    size_t num_erased = 0;
    bool full_constraint_check = false;
  };

  Status Recompile();

  // Insert a normalized tuple; logs undo, routes deltas to the fixpoint
  // driver, auto-inserts entity type membership. `counted` adds one
  // derivation support (rule heads). Returns true if newly inserted.
  Result<bool> InsertTuple(datalog::PredId pred, const Tuple& tuple,
                           bool is_base, bool counted, TxState* tx);
  Status EraseTupleTx(datalog::PredId pred, const Tuple& tuple, TxState* tx);
  Status EnsureEntityMembership(const datalog::Value& v, TxState* tx);
  // Handoff variant: installs membership rows without seeding deltas (the
  // snapshot's supports already include every shard-local derivation).
  Status EnsureEntityMembershipRaw(const datalog::Value& v, TxState* tx);

  // FixpointHost (the driver's mutation interface; current_tx_ is the
  // transaction being applied).
  Result<bool> InsertHeadTuple(datalog::PredId pred,
                               const Tuple& tuple) override;
  Result<bool> InsertDerivedTuple(datalog::PredId pred,
                                  const Tuple& tuple) override;
  Status EraseTuple(datalog::PredId pred, const Tuple& tuple) override;
  Result<bool> RetractSupport(datalog::PredId pred,
                              const Tuple& tuple) override;
  Result<uint64_t> OverDeleteDerived(datalog::PredId pred) override;
  Status BindExistentials(const CompiledRule& rule, Env* env,
                          std::vector<int>* bound_here) override;

  Status CheckConstraints(TxState* tx);
  void Rollback(TxState* tx);

  // Placement helpers. RemoteShardOf: shard index of a normalized tuple
  // when the active placement assigns it to another node, nullopt when it
  // applies locally (no placement, unplaced pred, or locally owned shard).
  std::optional<size_t> RemoteShardOf(datalog::PredId pred,
                                      const Tuple& tuple);
  // Apply decoded peer mutations inside the open transaction. `deferred`
  // accumulates delete/drop ops whose target is not (yet) present — the
  // commit path swaps it into deferred_remote_; rollback discards it.
  Status ApplyRemoteOps(const std::vector<RemoteOp>& ops,
                        std::vector<RemoteOp>* deferred, TxState* tx);
  Status ApplyOneRemoteOp(const RemoteOp& op, std::vector<RemoteOp>* deferred,
                          TxState* tx);

  std::unique_ptr<datalog::Catalog> catalog_;
  BuiltinRegistry builtins_;
  EvalContext ctx_;

  std::vector<std::unique_ptr<Relation>> relations_;  // by PredId
  std::unordered_map<datalog::PredId,
                     std::unordered_set<Tuple, TupleHash>>
      base_tuples_;

  // Installed program (sources kept for recompilation on later installs).
  std::vector<datalog::Rule> installed_rules_;
  std::vector<datalog::ConstraintDecl> installed_constraints_;

  // Query-serving mode: rules withheld from bottom-up compilation (see
  // set_defer_rules); engine/query installs rewritten slices on demand.
  bool defer_rules_ = false;
  std::vector<datalog::Rule> deferred_rules_;

  std::vector<CompiledRule> compiled_rules_;
  std::vector<CompiledConstraint> compiled_constraints_;
  RuleGraph rule_graph_;
  FixpointOptions fixpoint_options_;
  std::unique_ptr<FixpointDriver> driver_;
  bool allow_unstratified_negation_ = false;

  // Transaction currently being applied (the driver mutates through it).
  TxState* current_tx_ = nullptr;

  // Head-existential memoization: (rule id, key binding) -> entity values.
  std::map<std::pair<int, Tuple>, std::vector<datalog::Value>> existential_memo_;

  // Out-of-order placement deliveries parked for retry (see
  // deferred_remote_count). Mutated only at commit; transactions operate
  // on a copy so rollback leaves it untouched.
  std::vector<RemoteOp> deferred_remote_;

  EngineStats stats_;
  std::vector<int64_t> tx_durations_us_;
};

}  // namespace secureblox::engine

#endif  // SECUREBLOX_ENGINE_WORKSPACE_H_
