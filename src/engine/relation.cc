#include "engine/relation.h"

#include <algorithm>

namespace secureblox::engine {

namespace {

/// "Value absent from this column's dictionary" sentinel in lookup-only
/// encodings (EncodeLookup). Never a real code: dictionaries would need
/// 2^32 distinct values in one column first.
constexpr uint32_t kNoCode = 0xFFFFFFFFu;

/// Extra mixing over the tuple-content hash so shard choice is not
/// correlated with the bucket placement inside the per-shard hash maps
/// (both start from Value::Hash).
size_t MixShardHash(size_t h) {
  uint64_t x = static_cast<uint64_t>(h);
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return static_cast<size_t>(x);
}

size_t HashValues(const Tuple& t, uint32_t mask) {
  size_t h = 0x811C9DC5;
  for (size_t i = 0; i < t.size() && i < 32; ++i) {
    if (mask & (1u << i)) {
      h ^= t[i].Hash() + 0x9E3779B9 + (h << 6) + (h >> 2);
    }
  }
  return h;
}

bool SingleColumnMask(uint32_t mask) {
  return mask != 0 && (mask & (mask - 1)) == 0;
}

size_t MaskColumn(uint32_t mask) {
  size_t col = 0;
  while (!(mask & (1u << col))) ++col;
  return col;
}

/// Approximate heap bytes of one unordered_map: the bucket array plus a
/// node per entry (payload + two pointers of allocator/link overhead).
size_t MapBytes(size_t bucket_count, size_t entries, size_t entry_payload) {
  return bucket_count * sizeof(void*) +
         entries * (entry_payload + 2 * sizeof(void*));
}

}  // namespace

Relation::Relation(const datalog::PredicateDecl* decl, size_t shards,
                   bool columnar)
    : decl_(decl), columnar_(columnar) {
  shards_.resize(std::max<size_t>(1, shards));
  const size_t arity = decl_->arity();
  if (decl_->functional && arity >= 2) {
    // FD key columns: everything but the value column.
    shard_key_mask_ = (arity - 1 < 32)
                          ? ((1u << (arity - 1)) - 1)
                          : ~0u;
  } else if (!decl_->functional && arity >= 1) {
    // Join-key convention: route on the first column.
    shard_key_mask_ = 1u;
  }
  // Zero-key cases (arity 0, functional arity 1) hash an empty projection:
  // every tuple lands in one shard and probes never fan out.
  if (columnar_) {
    dicts_.resize(arity);
    for (Shard& s : shards_) s.cols.resize(arity);
  }
}

size_t Relation::ShardKeyHash(const Tuple& t) const {
  return MixShardHash(HashValues(t, shard_key_mask_));
}

size_t Relation::ShardOf(const Tuple& t) const {
  // Hash of the shard-key *values* in both layouts, so row placement is
  // identical under SB_COLUMNAR=0 and 1 (the determinism contract).
  return shards_.size() == 1 ? 0 : ShardKeyHash(t) % shards_.size();
}

size_t Relation::ShardOfProbeKey(uint32_t mask, const Tuple& key) const {
  // `key` holds the bound values in column order; pick out the shard-key
  // columns and hash them exactly as ShardKeyHash does on a full tuple.
  size_t h = 0x811C9DC5;
  size_t ki = 0;
  for (size_t i = 0; i < 32; ++i) {
    if (!(mask & (1u << i))) continue;
    if (ki >= key.size()) break;
    if (shard_key_mask_ & (1u << i)) {
      h ^= key[ki].Hash() + 0x9E3779B9 + (h << 6) + (h >> 2);
    }
    ++ki;
  }
  return MixShardHash(h) % shards_.size();
}

int Relation::ProbeShardOf(uint32_t mask, const Tuple& key) const {
  if (shards_.size() == 1) return 0;
  if ((mask & shard_key_mask_) != shard_key_mask_) return -1;
  return static_cast<int>(ShardOfProbeKey(mask, key));
}

void Relation::EncodeLookup(const Tuple& t, CodeKey* out) const {
  out->clear();
  out->reserve(t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    const ColumnDict& d = dicts_[i];
    auto it = d.codes.find(t[i]);
    out->push_back(it == d.codes.end() ? kNoCode : it->second);
  }
}

InsertOutcome Relation::Insert(const Tuple& t) {
  Shard& s = shards_[ShardOf(t)];
  if (columnar_) {
    // Phase A — lookup-only encode. Duplicate and FD checks run on codes;
    // a kNoCode anywhere means the full tuple cannot already be present,
    // and a kNoCode in a key column means no FD conflict is possible. No
    // dictionary state changes until the row is known to commit, so a
    // rejected insert leaves refcounts and live counts untouched.
    thread_local CodeKey ck;  // mutations are single-threaded; reused buffer
    EncodeLookup(t, &ck);
    const bool all_known =
        std::find(ck.begin(), ck.end(), kNoCode) == ck.end();
    if (all_known && s.cindex_.count(ck)) return InsertOutcome::kDuplicate;
    if (decl_->functional) {
      const bool keys_known =
          std::find(ck.begin(), ck.end() - 1, kNoCode) == ck.end() - 1;
      if (keys_known &&
          s.cfd_index_.count(CodeKey(ck.begin(), ck.end() - 1))) {
        return InsertOutcome::kFdConflict;
      }
    }
    // Phase B — commit: allocate codes for novel values, take a live
    // reference on every column, append the row to the column segments.
    const size_t slot = s.counts.size();
    for (size_t i = 0; i < t.size(); ++i) {
      ColumnDict& d = dicts_[i];
      uint32_t code = ck[i];
      if (code == kNoCode) {
        code = static_cast<uint32_t>(d.values.size());
        d.values.push_back(t[i]);
        d.codes.emplace(t[i], code);
        d.refs.push_back(1);
        ++d.live;
      } else if (d.refs[code]++ == 0) {
        ++d.live;  // erased-out value revived by this row
      }
      s.cols[i].push_back(code);
      ck[i] = code;
    }
    s.counts.push_back(0);
    s.cindex_[ck] = slot;
    if (decl_->functional) {
      s.cfd_index_[CodeKey(ck.begin(), ck.end() - 1)] = slot;
    }
    if (!key_stats_.empty()) StatsInsert(t);
    ++total_size_;
    ++version_;
    return InsertOutcome::kInserted;
  }
  if (s.index_.count(t)) return InsertOutcome::kDuplicate;
  if (decl_->functional) {
    Tuple keys(t.begin(), t.end() - 1);
    auto it = s.fd_index_.find(keys);
    if (it != s.fd_index_.end()) return InsertOutcome::kFdConflict;
    s.fd_index_[std::move(keys)] = s.tuples.size();
  }
  s.index_[t] = s.tuples.size();
  s.tuples.push_back(t);
  s.counts.push_back(0);
  if (!key_stats_.empty()) StatsInsert(t);
  ++total_size_;
  ++version_;
  return InsertOutcome::kInserted;
}

void Relation::Reserve(size_t n) {
  if (n <= total_size_) return;
  // Assume an even spread (hash-partitioned), with one extra row of slack
  // per shard so small batches over many shards still avoid a rehash.
  size_t per_shard = n / shards_.size() + 1;
  for (Shard& s : shards_) {
    if (columnar_) {
      for (auto& col : s.cols) col.reserve(per_shard);
      s.counts.reserve(per_shard);
      s.cindex_.reserve(per_shard);
      if (decl_->functional) s.cfd_index_.reserve(per_shard);
      continue;
    }
    s.tuples.reserve(per_shard);
    s.counts.reserve(per_shard);
    s.index_.reserve(per_shard);
    if (decl_->functional) s.fd_index_.reserve(per_shard);
  }
}

void Relation::EraseColumnarSlot(Shard& s, size_t slot, const CodeKey& ck) {
  const size_t last = s.counts.size() - 1;
  // Drop the erased row from built secondary buckets before the swap
  // clobbers row `slot`, preserving bucket order so enumeration order does
  // not depend on erase history beyond the erase itself.
  for (auto& [mask, idx] : s.secondary_) {
    if (slot >= idx.rows_indexed) continue;
    auto bit = idx.cbuckets.find(ProjectCodes(s, slot, mask));
    if (bit == idx.cbuckets.end()) continue;
    auto& rows = bit->second;
    rows.erase(std::remove(rows.begin(), rows.end(), slot), rows.end());
    if (rows.empty()) idx.cbuckets.erase(bit);
  }
  s.cindex_.erase(ck);
  if (decl_->functional) {
    s.cfd_index_.erase(CodeKey(ck.begin(), ck.end() - 1));
  }
  // Release this row's dictionary references. Codes are never reclaimed —
  // only the live counts (the planner's distinct statistics) move.
  for (size_t i = 0; i < ck.size(); ++i) {
    ColumnDict& d = dicts_[i];
    if (--d.refs[ck[i]] == 0) --d.live;
  }
  // Swap-remove within the shard's column segments; fix the moved row's
  // slots. The moved row belongs to the same shard by construction.
  if (slot != last) {
    for (auto& col : s.cols) col[slot] = col[last];
    s.counts[slot] = s.counts[last];
    CodeKey moved;
    moved.reserve(s.cols.size());
    for (const auto& col : s.cols) moved.push_back(col[slot]);
    s.cindex_[moved] = slot;
    if (decl_->functional) {
      s.cfd_index_[CodeKey(moved.begin(), moved.end() - 1)] = slot;
    }
  }
  for (auto& col : s.cols) col.pop_back();
  s.counts.pop_back();
  // Re-point the moved row (old index `last`, now at `slot`) in each built
  // secondary index; an unindexed tail row moving into the indexed prefix
  // is indexed now so the prefix invariant holds.
  for (auto& [mask, idx] : s.secondary_) {
    if (slot != last) {
      const CodeKey moved_key = ProjectCodes(s, slot, mask);
      if (last < idx.rows_indexed) {
        auto bit = idx.cbuckets.find(moved_key);
        if (bit != idx.cbuckets.end()) {
          // Re-insert the moved row at its sort position instead of
          // patching in place: buckets stay sorted ascending (the
          // sorted-run probe contract). `last` is the shard's final row,
          // so its entry — when indexed — is the bucket's back element.
          auto& rows = bit->second;
          auto lit = std::find(rows.begin(), rows.end(), last);
          if (lit != rows.end()) {
            rows.erase(lit);
            rows.insert(std::lower_bound(rows.begin(), rows.end(), slot),
                        slot);
          }
        }
      } else if (slot < idx.rows_indexed) {
        auto& rows = idx.cbuckets[moved_key];
        rows.insert(std::lower_bound(rows.begin(), rows.end(), slot), slot);
      }
    }
    idx.rows_indexed = std::min(idx.rows_indexed, s.counts.size());
  }
}

bool Relation::Erase(const Tuple& t) {
  Shard& s = shards_[ShardOf(t)];
  if (columnar_) {
    thread_local CodeKey ck;
    EncodeLookup(t, &ck);
    if (std::find(ck.begin(), ck.end(), kNoCode) != ck.end()) return false;
    auto it = s.cindex_.find(ck);
    if (it == s.cindex_.end()) return false;
    const size_t slot = it->second;
    // `t` never aliases columnar storage (accessors hand out materialized
    // copies), so the stats decrement can use it directly.
    if (!key_stats_.empty()) StatsErase(t);
    EraseColumnarSlot(s, slot, ck);
    --total_size_;
    ++version_;
    return true;
  }
  auto it = s.index_.find(t);
  if (it == s.index_.end()) return false;
  size_t slot = it->second;
  size_t last = s.tuples.size() - 1;
  // Decrement key statistics before the swap clobbers row `slot` (`t` may
  // alias the relation's own storage) — the symmetric counterpart of the
  // StatsInsert in Insert().
  if (!key_stats_.empty()) StatsErase(s.tuples[slot]);
  // Drop the erased row from built secondary buckets before the swap
  // clobbers row `slot` (`t` may alias the relation's own storage),
  // preserving bucket order so enumeration order does not depend on erase
  // history beyond the erase itself.
  for (auto& [mask, idx] : s.secondary_) {
    if (slot >= idx.rows_indexed) continue;
    auto bit = idx.buckets.find(Project(t, mask));
    if (bit == idx.buckets.end()) continue;
    auto& rows = bit->second;
    rows.erase(std::remove(rows.begin(), rows.end(), slot), rows.end());
    if (rows.empty()) idx.buckets.erase(bit);
  }
  s.index_.erase(it);
  if (decl_->functional) {
    s.fd_index_.erase(Tuple(t.begin(), t.end() - 1));
  }
  // Swap-remove within the shard; fix the moved tuple's slots. The moved
  // row belongs to the same shard by construction, so no cross-shard
  // bookkeeping is needed.
  if (slot != last) {
    s.tuples[slot] = std::move(s.tuples[last]);
    s.counts[slot] = s.counts[last];
    s.index_[s.tuples[slot]] = slot;
    if (decl_->functional) {
      s.fd_index_[Tuple(s.tuples[slot].begin(), s.tuples[slot].end() - 1)] =
          slot;
    }
  }
  s.tuples.pop_back();
  s.counts.pop_back();
  // Re-point the moved row (old index `last`, now at `slot`) in each built
  // secondary index; an unindexed tail row moving into the indexed prefix
  // is indexed now so the prefix invariant holds.
  for (auto& [mask, idx] : s.secondary_) {
    if (slot != last) {
      const Tuple moved_key = Project(s.tuples[slot], mask);
      if (last < idx.rows_indexed) {
        auto bit = idx.buckets.find(moved_key);
        if (bit != idx.buckets.end()) {
          // Re-insert the moved row at its sort position instead of
          // patching in place: buckets stay sorted ascending (the
          // sorted-run probe contract). `last` is the shard's final row,
          // so its entry — when indexed — is the bucket's back element.
          auto& rows = bit->second;
          auto lit = std::find(rows.begin(), rows.end(), last);
          if (lit != rows.end()) {
            rows.erase(lit);
            rows.insert(std::lower_bound(rows.begin(), rows.end(), slot),
                        slot);
          }
        }
      } else if (slot < idx.rows_indexed) {
        auto& rows = idx.buckets[moved_key];
        rows.insert(std::lower_bound(rows.begin(), rows.end(), slot), slot);
      }
    }
    idx.rows_indexed = std::min(idx.rows_indexed, s.tuples.size());
  }
  --total_size_;
  ++version_;
  return true;
}

uint32_t Relation::SupportCount(const Tuple& t) const {
  const Shard& s = shards_[ShardOf(t)];
  if (columnar_) {
    thread_local CodeKey ck;
    EncodeLookup(t, &ck);
    if (std::find(ck.begin(), ck.end(), kNoCode) != ck.end()) return 0;
    auto it = s.cindex_.find(ck);
    return it == s.cindex_.end() ? 0 : s.counts[it->second];
  }
  auto it = s.index_.find(t);
  return it == s.index_.end() ? 0 : s.counts[it->second];
}

uint32_t Relation::AddSupport(const Tuple& t) {
  Shard& s = shards_[ShardOf(t)];
  if (columnar_) {
    thread_local CodeKey ck;
    EncodeLookup(t, &ck);
    if (std::find(ck.begin(), ck.end(), kNoCode) != ck.end()) return 0;
    auto it = s.cindex_.find(ck);
    if (it == s.cindex_.end()) return 0;
    return ++s.counts[it->second];
  }
  auto it = s.index_.find(t);
  if (it == s.index_.end()) return 0;
  return ++s.counts[it->second];
}

void Relation::SetSupport(const Tuple& t, uint32_t count) {
  Shard& s = shards_[ShardOf(t)];
  if (columnar_) {
    thread_local CodeKey ck;
    EncodeLookup(t, &ck);
    if (std::find(ck.begin(), ck.end(), kNoCode) != ck.end()) return;
    auto it = s.cindex_.find(ck);
    if (it != s.cindex_.end()) s.counts[it->second] = count;
    return;
  }
  auto it = s.index_.find(t);
  if (it != s.index_.end()) s.counts[it->second] = count;
}

std::optional<Tuple> Relation::ReplaceFunctional(const Tuple& t) {
  Tuple keys(t.begin(), t.end() - 1);
  // The FD keys are the shard key, so the displaced tuple (same keys)
  // lives in the same shard the replacement inserts into.
  Tuple scratch;
  const Tuple* existing = LookupByKeys(keys, &scratch);
  std::optional<Tuple> displaced;
  if (existing) {
    displaced = *existing;  // materialized before Erase invalidates it
    if (*displaced == t) return std::nullopt;  // no change
    Erase(*displaced);
  }
  Insert(t);
  return displaced;
}

bool Relation::Contains(const Tuple& t) const {
  const Shard& s = shards_[ShardOf(t)];
  if (columnar_) {
    thread_local CodeKey ck;
    EncodeLookup(t, &ck);
    if (std::find(ck.begin(), ck.end(), kNoCode) != ck.end()) return false;
    return s.cindex_.count(ck) > 0;
  }
  return s.index_.count(t) > 0;
}

const Tuple* Relation::LookupByKeys(const Tuple& keys, Tuple* scratch) const {
  // `keys` is exactly the shard-key projection of the row it names.
  const Shard& s =
      shards_.size() == 1
          ? shards_[0]
          : shards_[MixShardHash(HashValues(keys, ~0u)) % shards_.size()];
  if (columnar_) {
    thread_local CodeKey ck;
    EncodeLookup(keys, &ck);
    if (std::find(ck.begin(), ck.end(), kNoCode) != ck.end()) return nullptr;
    auto it = s.cfd_index_.find(ck);
    if (it == s.cfd_index_.end()) return nullptr;
    const size_t slot = it->second;
    scratch->clear();
    scratch->reserve(s.cols.size());
    for (size_t c = 0; c < s.cols.size(); ++c) {
      scratch->push_back(dicts_[c].values[s.cols[c][slot]]);
    }
    return scratch;
  }
  auto it = s.fd_index_.find(keys);
  if (it == s.fd_index_.end()) return nullptr;
  return &s.tuples[it->second];
}

Tuple Relation::MaterializeTuple(size_t shard, size_t slot) const {
  const Shard& s = shards_[shard];
  if (!columnar_) return s.tuples[slot];
  Tuple out;
  out.reserve(s.cols.size());
  for (size_t c = 0; c < s.cols.size(); ++c) {
    out.push_back(dicts_[c].values[s.cols[c][slot]]);
  }
  return out;
}

std::vector<Tuple> Relation::AllTuples() const {
  std::vector<Tuple> out;
  out.reserve(total_size_);
  if (columnar_) {
    for (size_t sh = 0; sh < shards_.size(); ++sh) {
      const size_t rows = shards_[sh].counts.size();
      for (size_t r = 0; r < rows; ++r) out.push_back(MaterializeTuple(sh, r));
    }
    return out;
  }
  for (const Shard& s : shards_) {
    out.insert(out.end(), s.tuples.begin(), s.tuples.end());
  }
  return out;
}

std::optional<uint32_t> Relation::CodeOf(size_t col,
                                         const datalog::Value& v) const {
  const ColumnDict& d = dicts_[col];
  auto it = d.codes.find(v);
  if (it == d.codes.end()) return std::nullopt;
  return it->second;
}

std::optional<size_t> Relation::ColumnDistinct(size_t col) const {
  if (!columnar_) return std::nullopt;
  return dicts_[col].live;
}

bool Relation::EncodeTuple(const Tuple& t, std::vector<uint32_t>* out) const {
  const size_t base = out->size();
  for (size_t i = 0; i < t.size(); ++i) {
    const ColumnDict& d = dicts_[i];
    auto it = d.codes.find(t[i]);
    if (it == d.codes.end()) {
      out->resize(base);
      return false;
    }
    out->push_back(it->second);
  }
  return true;
}

void Relation::EnsureSortedRuns(size_t col) {
  if (!columnar_) return;
  for (Shard& s : shards_) {
    if (s.runs_.size() < s.cols.size()) s.runs_.resize(s.cols.size());
    RunCache& rc = s.runs_[col];
    if (rc.built_at_version == version_) continue;
    const std::vector<uint32_t>& codes = s.cols[col];
    rc.bounds.clear();
    rc.bounds.push_back(0);
    for (size_t i = 1; i < codes.size(); ++i) {
      if (codes[i] < codes[i - 1]) {
        rc.bounds.push_back(static_cast<uint32_t>(i));
      }
    }
    if (!codes.empty()) {
      rc.bounds.push_back(static_cast<uint32_t>(codes.size()));
    }
    rc.built_at_version = version_;
  }
}

const std::vector<uint32_t>* Relation::SortedRunBoundsIfWarm(
    size_t shard, size_t col) const {
  const Shard& s = shards_[shard];
  if (col >= s.runs_.size()) return nullptr;
  const RunCache& rc = s.runs_[col];
  if (rc.built_at_version != version_) return nullptr;
  return &rc.bounds;
}

Tuple Relation::Project(const Tuple& t, uint32_t mask) {
  Tuple out;
  for (size_t i = 0; i < t.size(); ++i) {
    if (mask & (1u << i)) out.push_back(t[i]);
  }
  return out;
}

Relation::CodeKey Relation::ProjectCodes(const Shard& s, size_t slot,
                                         uint32_t mask) {
  CodeKey out;
  for (size_t i = 0; i < s.cols.size() && i < 32; ++i) {
    if (mask & (1u << i)) out.push_back(s.cols[i][slot]);
  }
  return out;
}

void Relation::EnsureShardIndex(Shard& shard, uint32_t mask) {
  SecondaryIndex& idx = shard.secondary_[mask];
  if (idx.built_at_version == version_) return;
  const size_t rows = columnar_ ? shard.counts.size() : shard.tuples.size();
  // Erases are patched in place, so only the appended tail is missing.
  if (idx.rows_indexed == 0 && rows != 0) {
    ++index_builds_;
    if (columnar_) {
      idx.cbuckets.reserve(rows);
    } else {
      idx.buckets.reserve(rows);
    }
  }
  for (size_t i = idx.rows_indexed; i < rows; ++i) {
    if (columnar_) {
      idx.cbuckets[ProjectCodes(shard, i, mask)].push_back(i);
    } else {
      idx.buckets[Project(shard.tuples[i], mask)].push_back(i);
    }
  }
  idx.rows_indexed = rows;
  idx.built_at_version = version_;
}

void Relation::EnsureIndex(uint32_t mask) {
  for (Shard& s : shards_) EnsureShardIndex(s, mask);
}

const std::vector<size_t>& Relation::ProbeShard(size_t shard, uint32_t mask,
                                                const Tuple& key) {
  static const std::vector<size_t> kEmpty;
  Shard& s = shards_[shard];
  thread_local CodeKey ck;  // per-thread: workers probe concurrently
  if (columnar_) {
    // Encode the probe key through the column dictionaries. A value absent
    // from its column's dictionary proves no row matches — answered here,
    // before any index is consulted or built (the selective-filter fast
    // negative). Pure dictionary reads, safe under concurrent probing.
    ck.clear();
    size_t ki = 0;
    for (size_t i = 0; i < 32 && ki < key.size(); ++i) {
      if (!(mask & (1u << i))) continue;
      auto code = CodeOf(i, key[ki++]);
      if (!code) return kEmpty;
      ck.push_back(*code);
    }
  }
  auto sit = s.secondary_.find(mask);
  if (sit == s.secondary_.end() ||
      sit->second.built_at_version != version_) {
    EnsureShardIndex(s, mask);  // single-threaded phases only
    sit = s.secondary_.find(mask);
  }
  const SecondaryIndex& idx = sit->second;
  if (columnar_) {
    auto it = idx.cbuckets.find(ck);
    return it == idx.cbuckets.end() ? kEmpty : it->second;
  }
  auto it = idx.buckets.find(key);
  return it == idx.buckets.end() ? kEmpty : it->second;
}

void Relation::StatsInsert(const Tuple& t) {
  for (auto& [mask, stat] : key_stats_) {
    ++stat.counts[HashValues(t, mask)];
  }
}

void Relation::StatsErase(const Tuple& t) {
  for (auto& [mask, stat] : key_stats_) {
    auto it = stat.counts.find(HashValues(t, mask));
    if (it == stat.counts.end()) continue;  // collision-safety: never go negative
    if (--it->second == 0) stat.counts.erase(it);
  }
}

void Relation::EnsureKeyStat(uint32_t mask) {
  // A single bound column in columnar mode is covered exactly by that
  // column's dictionary live count — no hashed statistic to maintain.
  if (columnar_ && SingleColumnMask(mask) &&
      MaskColumn(mask) < dicts_.size()) {
    return;
  }
  if (key_stats_.count(mask)) return;
  KeyStat& stat = key_stats_[mask];
  stat.counts.reserve(total_size_);
  if (columnar_) {
    // Seed by hashing the decoded column values with the same mixing
    // StatsInsert/StatsErase apply to value tuples.
    for (size_t sh = 0; sh < shards_.size(); ++sh) {
      const Shard& s = shards_[sh];
      const size_t rows = s.counts.size();
      for (size_t r = 0; r < rows; ++r) {
        size_t h = 0x811C9DC5;
        for (size_t i = 0; i < s.cols.size() && i < 32; ++i) {
          if (mask & (1u << i)) {
            h ^= At(sh, r, i).Hash() + 0x9E3779B9 + (h << 6) + (h >> 2);
          }
        }
        ++stat.counts[h];
      }
    }
    return;
  }
  for (const Shard& s : shards_) {
    for (const Tuple& t : s.tuples) {
      ++stat.counts[HashValues(t, mask)];
    }
  }
}

std::optional<size_t> Relation::DistinctKeys(uint32_t mask) const {
  if (columnar_ && SingleColumnMask(mask)) {
    const size_t col = MaskColumn(mask);
    if (col < dicts_.size()) return dicts_[col].live;
  }
  auto it = key_stats_.find(mask);
  if (it == key_stats_.end()) return std::nullopt;
  return it->second.counts.size();
}

double Relation::EstimateMatches(uint32_t mask) const {
  if (mask == 0 || total_size_ == 0) {
    return static_cast<double>(total_size_);
  }
  auto distinct = DistinctKeys(mask);
  if (!distinct || *distinct == 0) {
    return static_cast<double>(total_size_);
  }
  return static_cast<double>(total_size_) / static_cast<double>(*distinct);
}

EstimateSource Relation::EstimateSourceFor(uint32_t mask) const {
  if (mask == 0 || total_size_ == 0) return EstimateSource::kSize;
  if (columnar_ && SingleColumnMask(mask) &&
      MaskColumn(mask) < dicts_.size()) {
    return EstimateSource::kDict;
  }
  auto it = key_stats_.find(mask);
  if (it == key_stats_.end() || it->second.counts.empty()) {
    return EstimateSource::kSize;
  }
  return EstimateSource::kStat;
}

Relation::MemoryFootprint Relation::Memory() const {
  // Capacity-based approximation, O(containers) not O(rows): per-row value
  // payloads are counted at sizeof(Value) (string heap excluded) and
  // bucket vectors at one size_t per indexed row. Good enough for the
  // relative layout comparisons the EngineStats gauges exist for.
  MemoryFootprint m;
  const size_t arity = decl_->arity();
  for (const ColumnDict& d : dicts_) {
    m.dict_bytes += d.values.capacity() * sizeof(datalog::Value);
    m.dict_bytes += d.refs.capacity() * sizeof(uint32_t);
    m.dict_bytes += MapBytes(d.codes.bucket_count(), d.codes.size(),
                             sizeof(datalog::Value) + sizeof(uint32_t));
  }
  for (const Shard& s : shards_) {
    for (const auto& col : s.cols) {
      m.column_bytes += col.capacity() * sizeof(uint32_t);
    }
    m.column_bytes += s.tuples.capacity() * sizeof(Tuple) +
                      s.tuples.size() * arity * sizeof(datalog::Value);
    m.column_bytes += s.counts.capacity() * sizeof(uint32_t);
    m.index_bytes +=
        MapBytes(s.index_.bucket_count(), s.index_.size(),
                 sizeof(Tuple) + arity * sizeof(datalog::Value) +
                     sizeof(size_t));
    m.index_bytes +=
        MapBytes(s.fd_index_.bucket_count(), s.fd_index_.size(),
                 sizeof(Tuple) +
                     (arity == 0 ? 0 : arity - 1) * sizeof(datalog::Value) +
                     sizeof(size_t));
    m.index_bytes += MapBytes(s.cindex_.bucket_count(), s.cindex_.size(),
                              sizeof(CodeKey) + arity * sizeof(uint32_t));
    m.index_bytes +=
        MapBytes(s.cfd_index_.bucket_count(), s.cfd_index_.size(),
                 sizeof(CodeKey) +
                     (arity == 0 ? 0 : arity - 1) * sizeof(uint32_t));
    for (const auto& [mask, idx] : s.secondary_) {
      const size_t nbuckets =
          columnar_ ? idx.cbuckets.size() : idx.buckets.size();
      const size_t key_cols =
          static_cast<size_t>(__builtin_popcount(mask));
      m.index_bytes += MapBytes(
          columnar_ ? idx.cbuckets.bucket_count() : idx.buckets.bucket_count(),
          nbuckets,
          sizeof(std::vector<size_t>) +
              key_cols * (columnar_ ? sizeof(uint32_t)
                                    : sizeof(datalog::Value)));
      m.index_bytes += idx.rows_indexed * sizeof(size_t);
    }
    for (const RunCache& rc : s.runs_) {
      m.index_bytes += rc.bounds.capacity() * sizeof(uint32_t);
    }
  }
  return m;
}

const std::vector<size_t>& Relation::Probe(uint32_t mask, const Tuple& key) {
  int only = ProbeShardOf(mask, key);
  probe_scratch_.clear();
  const size_t n = shards_.size();
  size_t begin = only >= 0 ? static_cast<size_t>(only) : 0;
  size_t end = only >= 0 ? static_cast<size_t>(only) + 1 : n;
  for (size_t sh = begin; sh < end; ++sh) {
    for (size_t slot : ProbeShard(sh, mask, key)) {
      probe_scratch_.push_back(slot * n + sh);
    }
  }
  return probe_scratch_;
}

}  // namespace secureblox::engine
