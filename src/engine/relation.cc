#include "engine/relation.h"

#include <algorithm>

namespace secureblox::engine {

namespace {

/// Extra mixing over the tuple-content hash so shard choice is not
/// correlated with the bucket placement inside the per-shard hash maps
/// (both start from Value::Hash).
size_t MixShardHash(size_t h) {
  uint64_t x = static_cast<uint64_t>(h);
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return static_cast<size_t>(x);
}

size_t HashValues(const Tuple& t, uint32_t mask) {
  size_t h = 0x811C9DC5;
  for (size_t i = 0; i < t.size() && i < 32; ++i) {
    if (mask & (1u << i)) {
      h ^= t[i].Hash() + 0x9E3779B9 + (h << 6) + (h >> 2);
    }
  }
  return h;
}

}  // namespace

Relation::Relation(const datalog::PredicateDecl* decl, size_t shards)
    : decl_(decl) {
  shards_.resize(std::max<size_t>(1, shards));
  const size_t arity = decl_->arity();
  if (decl_->functional && arity >= 2) {
    // FD key columns: everything but the value column.
    shard_key_mask_ = (arity - 1 < 32)
                          ? ((1u << (arity - 1)) - 1)
                          : ~0u;
  } else if (!decl_->functional && arity >= 1) {
    // Join-key convention: route on the first column.
    shard_key_mask_ = 1u;
  }
  // Zero-key cases (arity 0, functional arity 1) hash an empty projection:
  // every tuple lands in one shard and probes never fan out.
}

size_t Relation::ShardKeyHash(const Tuple& t) const {
  return MixShardHash(HashValues(t, shard_key_mask_));
}

size_t Relation::ShardOf(const Tuple& t) const {
  return shards_.size() == 1 ? 0 : ShardKeyHash(t) % shards_.size();
}

size_t Relation::ShardOfProbeKey(uint32_t mask, const Tuple& key) const {
  // `key` holds the bound values in column order; pick out the shard-key
  // columns and hash them exactly as ShardKeyHash does on a full tuple.
  size_t h = 0x811C9DC5;
  size_t ki = 0;
  for (size_t i = 0; i < 32; ++i) {
    if (!(mask & (1u << i))) continue;
    if (ki >= key.size()) break;
    if (shard_key_mask_ & (1u << i)) {
      h ^= key[ki].Hash() + 0x9E3779B9 + (h << 6) + (h >> 2);
    }
    ++ki;
  }
  return MixShardHash(h) % shards_.size();
}

int Relation::ProbeShardOf(uint32_t mask, const Tuple& key) const {
  if (shards_.size() == 1) return 0;
  if ((mask & shard_key_mask_) != shard_key_mask_) return -1;
  return static_cast<int>(ShardOfProbeKey(mask, key));
}

InsertOutcome Relation::Insert(const Tuple& t) {
  Shard& s = shards_[ShardOf(t)];
  if (s.index_.count(t)) return InsertOutcome::kDuplicate;
  if (decl_->functional) {
    Tuple keys(t.begin(), t.end() - 1);
    auto it = s.fd_index_.find(keys);
    if (it != s.fd_index_.end()) return InsertOutcome::kFdConflict;
    s.fd_index_[std::move(keys)] = s.tuples.size();
  }
  s.index_[t] = s.tuples.size();
  s.tuples.push_back(t);
  s.counts.push_back(0);
  if (!key_stats_.empty()) StatsInsert(t);
  ++total_size_;
  ++version_;
  return InsertOutcome::kInserted;
}

void Relation::Reserve(size_t n) {
  if (n <= total_size_) return;
  // Assume an even spread (hash-partitioned), with one extra row of slack
  // per shard so small batches over many shards still avoid a rehash.
  size_t per_shard = n / shards_.size() + 1;
  for (Shard& s : shards_) {
    s.tuples.reserve(per_shard);
    s.counts.reserve(per_shard);
    s.index_.reserve(per_shard);
    if (decl_->functional) s.fd_index_.reserve(per_shard);
  }
}

bool Relation::Erase(const Tuple& t) {
  Shard& s = shards_[ShardOf(t)];
  auto it = s.index_.find(t);
  if (it == s.index_.end()) return false;
  size_t slot = it->second;
  size_t last = s.tuples.size() - 1;
  // Decrement key statistics before the swap clobbers row `slot` (`t` may
  // alias the relation's own storage) — the symmetric counterpart of the
  // StatsInsert in Insert().
  if (!key_stats_.empty()) StatsErase(s.tuples[slot]);
  // Drop the erased row from built secondary buckets before the swap
  // clobbers row `slot` (`t` may alias the relation's own storage),
  // preserving bucket order so enumeration order does not depend on erase
  // history beyond the erase itself.
  for (auto& [mask, idx] : s.secondary_) {
    if (slot >= idx.rows_indexed) continue;
    auto bit = idx.buckets.find(Project(t, mask));
    if (bit == idx.buckets.end()) continue;
    auto& rows = bit->second;
    rows.erase(std::remove(rows.begin(), rows.end(), slot), rows.end());
    if (rows.empty()) idx.buckets.erase(bit);
  }
  s.index_.erase(it);
  if (decl_->functional) {
    s.fd_index_.erase(Tuple(t.begin(), t.end() - 1));
  }
  // Swap-remove within the shard; fix the moved tuple's slots. The moved
  // row belongs to the same shard by construction, so no cross-shard
  // bookkeeping is needed.
  if (slot != last) {
    s.tuples[slot] = std::move(s.tuples[last]);
    s.counts[slot] = s.counts[last];
    s.index_[s.tuples[slot]] = slot;
    if (decl_->functional) {
      s.fd_index_[Tuple(s.tuples[slot].begin(), s.tuples[slot].end() - 1)] =
          slot;
    }
  }
  s.tuples.pop_back();
  s.counts.pop_back();
  // Re-point the moved row (old index `last`, now at `slot`) in each built
  // secondary index; an unindexed tail row moving into the indexed prefix
  // is indexed now so the prefix invariant holds.
  for (auto& [mask, idx] : s.secondary_) {
    if (slot != last) {
      const Tuple moved_key = Project(s.tuples[slot], mask);
      if (last < idx.rows_indexed) {
        auto bit = idx.buckets.find(moved_key);
        if (bit != idx.buckets.end()) {
          // Re-insert the moved row at its sort position instead of
          // patching in place: buckets stay sorted ascending (the
          // sorted-run probe contract). `last` is the shard's final row,
          // so its entry — when indexed — is the bucket's back element.
          auto& rows = bit->second;
          auto lit = std::find(rows.begin(), rows.end(), last);
          if (lit != rows.end()) {
            rows.erase(lit);
            rows.insert(std::lower_bound(rows.begin(), rows.end(), slot),
                        slot);
          }
        }
      } else if (slot < idx.rows_indexed) {
        auto& rows = idx.buckets[moved_key];
        rows.insert(std::lower_bound(rows.begin(), rows.end(), slot), slot);
      }
    }
    idx.rows_indexed = std::min(idx.rows_indexed, s.tuples.size());
  }
  --total_size_;
  ++version_;
  return true;
}

uint32_t Relation::SupportCount(const Tuple& t) const {
  const Shard& s = shards_[ShardOf(t)];
  auto it = s.index_.find(t);
  return it == s.index_.end() ? 0 : s.counts[it->second];
}

uint32_t Relation::AddSupport(const Tuple& t) {
  Shard& s = shards_[ShardOf(t)];
  auto it = s.index_.find(t);
  if (it == s.index_.end()) return 0;
  return ++s.counts[it->second];
}

void Relation::SetSupport(const Tuple& t, uint32_t count) {
  Shard& s = shards_[ShardOf(t)];
  auto it = s.index_.find(t);
  if (it != s.index_.end()) s.counts[it->second] = count;
}

std::optional<Tuple> Relation::ReplaceFunctional(const Tuple& t) {
  Tuple keys(t.begin(), t.end() - 1);
  // The FD keys are the shard key, so the displaced tuple (same keys)
  // lives in the same shard the replacement inserts into.
  const Shard& s = shards_[ShardOf(t)];
  auto it = s.fd_index_.find(keys);
  std::optional<Tuple> displaced;
  if (it != s.fd_index_.end()) {
    displaced = s.tuples[it->second];
    if (*displaced == t) return std::nullopt;  // no change
    Erase(*displaced);
  }
  Insert(t);
  return displaced;
}

bool Relation::Contains(const Tuple& t) const {
  return shards_[ShardOf(t)].index_.count(t) > 0;
}

const Tuple* Relation::LookupByKeys(const Tuple& keys) const {
  // `keys` is exactly the shard-key projection of the row it names.
  const Shard& s =
      shards_.size() == 1
          ? shards_[0]
          : shards_[MixShardHash(HashValues(keys, ~0u)) % shards_.size()];
  auto it = s.fd_index_.find(keys);
  if (it == s.fd_index_.end()) return nullptr;
  return &s.tuples[it->second];
}

std::vector<Tuple> Relation::AllTuples() const {
  std::vector<Tuple> out;
  out.reserve(total_size_);
  for (const Shard& s : shards_) {
    out.insert(out.end(), s.tuples.begin(), s.tuples.end());
  }
  return out;
}

Tuple Relation::Project(const Tuple& t, uint32_t mask) {
  Tuple out;
  for (size_t i = 0; i < t.size(); ++i) {
    if (mask & (1u << i)) out.push_back(t[i]);
  }
  return out;
}

void Relation::EnsureShardIndex(Shard& shard, uint32_t mask) {
  SecondaryIndex& idx = shard.secondary_[mask];
  if (idx.built_at_version == version_) return;
  // Erases are patched in place, so only the appended tail is missing.
  if (idx.rows_indexed == 0 && !shard.tuples.empty()) {
    ++index_builds_;
    idx.buckets.reserve(shard.tuples.size());
  }
  for (size_t i = idx.rows_indexed; i < shard.tuples.size(); ++i) {
    idx.buckets[Project(shard.tuples[i], mask)].push_back(i);
  }
  idx.rows_indexed = shard.tuples.size();
  idx.built_at_version = version_;
}

void Relation::EnsureIndex(uint32_t mask) {
  for (Shard& s : shards_) EnsureShardIndex(s, mask);
}

const std::vector<size_t>& Relation::ProbeShard(size_t shard, uint32_t mask,
                                                const Tuple& key) {
  static const std::vector<size_t> kEmpty;
  Shard& s = shards_[shard];
  auto sit = s.secondary_.find(mask);
  if (sit == s.secondary_.end() ||
      sit->second.built_at_version != version_) {
    EnsureShardIndex(s, mask);  // single-threaded phases only
    sit = s.secondary_.find(mask);
  }
  const SecondaryIndex& idx = sit->second;
  auto it = idx.buckets.find(key);
  return it == idx.buckets.end() ? kEmpty : it->second;
}

void Relation::StatsInsert(const Tuple& t) {
  for (auto& [mask, stat] : key_stats_) {
    ++stat.counts[HashValues(t, mask)];
  }
}

void Relation::StatsErase(const Tuple& t) {
  for (auto& [mask, stat] : key_stats_) {
    auto it = stat.counts.find(HashValues(t, mask));
    if (it == stat.counts.end()) continue;  // collision-safety: never go negative
    if (--it->second == 0) stat.counts.erase(it);
  }
}

void Relation::EnsureKeyStat(uint32_t mask) {
  if (key_stats_.count(mask)) return;
  KeyStat& stat = key_stats_[mask];
  stat.counts.reserve(total_size_);
  for (const Shard& s : shards_) {
    for (const Tuple& t : s.tuples) {
      ++stat.counts[HashValues(t, mask)];
    }
  }
}

std::optional<size_t> Relation::DistinctKeys(uint32_t mask) const {
  auto it = key_stats_.find(mask);
  if (it == key_stats_.end()) return std::nullopt;
  return it->second.counts.size();
}

double Relation::EstimateMatches(uint32_t mask) const {
  if (mask == 0 || total_size_ == 0) {
    return static_cast<double>(total_size_);
  }
  auto it = key_stats_.find(mask);
  if (it == key_stats_.end() || it->second.counts.empty()) {
    return static_cast<double>(total_size_);
  }
  return static_cast<double>(total_size_) /
         static_cast<double>(it->second.counts.size());
}

const std::vector<size_t>& Relation::Probe(uint32_t mask, const Tuple& key) {
  int only = ProbeShardOf(mask, key);
  probe_scratch_.clear();
  const size_t n = shards_.size();
  size_t begin = only >= 0 ? static_cast<size_t>(only) : 0;
  size_t end = only >= 0 ? static_cast<size_t>(only) + 1 : n;
  for (size_t sh = begin; sh < end; ++sh) {
    for (size_t slot : ProbeShard(sh, mask, key)) {
      probe_scratch_.push_back(slot * n + sh);
    }
  }
  return probe_scratch_;
}

}  // namespace secureblox::engine
