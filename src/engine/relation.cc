#include "engine/relation.h"

#include <algorithm>

namespace secureblox::engine {

InsertOutcome Relation::Insert(const Tuple& t) {
  if (index_.count(t)) return InsertOutcome::kDuplicate;
  if (decl_->functional) {
    Tuple keys(t.begin(), t.end() - 1);
    auto it = fd_index_.find(keys);
    if (it != fd_index_.end()) return InsertOutcome::kFdConflict;
    fd_index_[std::move(keys)] = tuples_.size();
  }
  index_[t] = tuples_.size();
  tuples_.push_back(t);
  counts_.push_back(0);
  ++version_;
  return InsertOutcome::kInserted;
}

void Relation::Reserve(size_t n) {
  if (n <= tuples_.size()) return;
  tuples_.reserve(n);
  counts_.reserve(n);
  index_.reserve(n);
  if (decl_->functional) fd_index_.reserve(n);
}

bool Relation::Erase(const Tuple& t) {
  auto it = index_.find(t);
  if (it == index_.end()) return false;
  size_t slot = it->second;
  size_t last = tuples_.size() - 1;
  // Drop the erased row from built secondary buckets before the swap
  // clobbers row `slot` (`t` may alias the relation's own storage),
  // preserving bucket order so enumeration order does not depend on erase
  // history beyond the erase itself.
  for (auto& [mask, idx] : secondary_) {
    if (slot >= idx.rows_indexed) continue;
    auto bit = idx.buckets.find(Project(t, mask));
    if (bit == idx.buckets.end()) continue;
    auto& rows = bit->second;
    rows.erase(std::remove(rows.begin(), rows.end(), slot), rows.end());
    if (rows.empty()) idx.buckets.erase(bit);
  }
  index_.erase(it);
  if (decl_->functional) {
    fd_index_.erase(Tuple(t.begin(), t.end() - 1));
  }
  // Swap-remove; fix the moved tuple's slots.
  if (slot != last) {
    tuples_[slot] = std::move(tuples_[last]);
    counts_[slot] = counts_[last];
    index_[tuples_[slot]] = slot;
    if (decl_->functional) {
      fd_index_[Tuple(tuples_[slot].begin(), tuples_[slot].end() - 1)] = slot;
    }
  }
  tuples_.pop_back();
  counts_.pop_back();
  // Re-point the moved row (old index `last`, now at `slot`) in each built
  // secondary index; an unindexed tail row moving into the indexed prefix
  // is indexed now so the prefix invariant holds.
  for (auto& [mask, idx] : secondary_) {
    if (slot != last) {
      const Tuple moved_key = Project(tuples_[slot], mask);
      if (last < idx.rows_indexed) {
        auto bit = idx.buckets.find(moved_key);
        if (bit != idx.buckets.end()) {
          std::replace(bit->second.begin(), bit->second.end(), last, slot);
        }
      } else if (slot < idx.rows_indexed) {
        idx.buckets[moved_key].push_back(slot);
      }
    }
    idx.rows_indexed = std::min(idx.rows_indexed, tuples_.size());
  }
  ++version_;
  return true;
}

uint32_t Relation::SupportCount(const Tuple& t) const {
  auto it = index_.find(t);
  return it == index_.end() ? 0 : counts_[it->second];
}

uint32_t Relation::AddSupport(const Tuple& t) {
  auto it = index_.find(t);
  if (it == index_.end()) return 0;
  return ++counts_[it->second];
}

void Relation::SetSupport(const Tuple& t, uint32_t count) {
  auto it = index_.find(t);
  if (it != index_.end()) counts_[it->second] = count;
}

std::optional<Tuple> Relation::ReplaceFunctional(const Tuple& t) {
  Tuple keys(t.begin(), t.end() - 1);
  auto it = fd_index_.find(keys);
  std::optional<Tuple> displaced;
  if (it != fd_index_.end()) {
    displaced = tuples_[it->second];
    if (*displaced == t) return std::nullopt;  // no change
    Erase(*displaced);
  }
  Insert(t);
  return displaced;
}

bool Relation::Contains(const Tuple& t) const { return index_.count(t) > 0; }

const Tuple* Relation::LookupByKeys(const Tuple& keys) const {
  auto it = fd_index_.find(keys);
  if (it == fd_index_.end()) return nullptr;
  return &tuples_[it->second];
}

Tuple Relation::Project(const Tuple& t, uint32_t mask) {
  Tuple out;
  for (size_t i = 0; i < t.size(); ++i) {
    if (mask & (1u << i)) out.push_back(t[i]);
  }
  return out;
}

void Relation::EnsureIndex(uint32_t mask) {
  SecondaryIndex& idx = secondary_[mask];
  if (idx.built_at_version == version_) return;
  // Erases are patched in place, so only the appended tail is missing.
  if (idx.rows_indexed == 0 && !tuples_.empty()) {
    ++index_builds_;
    idx.buckets.reserve(tuples_.size());
  }
  for (size_t i = idx.rows_indexed; i < tuples_.size(); ++i) {
    idx.buckets[Project(tuples_[i], mask)].push_back(i);
  }
  idx.rows_indexed = tuples_.size();
  idx.built_at_version = version_;
}

const std::vector<size_t>& Relation::Probe(uint32_t mask, const Tuple& key) {
  static const std::vector<size_t> kEmpty;
  auto sit = secondary_.find(mask);
  if (sit == secondary_.end() || sit->second.built_at_version != version_) {
    EnsureIndex(mask);  // single-threaded phases only
    sit = secondary_.find(mask);
  }
  const SecondaryIndex& idx = sit->second;
  auto it = idx.buckets.find(key);
  return it == idx.buckets.end() ? kEmpty : it->second;
}

}  // namespace secureblox::engine
