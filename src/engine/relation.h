// Relation storage, hash-partitioned into shards, in one of two layouts:
//
//  * Row-major (the seed layout): each shard holds a dense tuple vector
//    with a full-tuple hash index for set semantics, a key index enforcing
//    functional dependencies, and lazily built secondary hash indexes
//    keyed by bound-column masks for joins.
//  * Columnar (FixpointOptions::columnar / SB_COLUMNAR, default on for
//    workspace-created relations): each shard stores its rows as
//    append-ordered column segments — one dictionary-encoded column per
//    attribute. A relation-level dictionary per column maps each distinct
//    Value to a dense u32 code (codes are append-only and never reused;
//    live-row refcounts track exact per-column distinct counts), and each
//    shard keeps one contiguous code vector per column. All indexes key on
//    code vectors, so probes hash and compare u32 codes instead of values,
//    and a probe value missing from a column's dictionary answers the
//    probe (empty) before any shard or index is touched. Row-major
//    consumers keep working through the accessor layer (At /
//    MaterializeTuple / AllTuples / row); shard_tuples() remains the
//    zero-overhead row-mode accessor and must not be used in columnar
//    mode.
//
// The two layouts hold the identical logical content under the identical
// mutation sequence: shard routing, slot assignment (insertion order +
// swap-remove), duplicate/FD detection, support counts, secondary-bucket
// order, and the per-mask statistics all behave the same, so the fixpoint
// is byte-identical under either layout (tests/planner_test.cc pins this
// across the SB_PLAN x SB_THREADS x SB_SHARDS matrix).
//
// Sharding (scale-out seam): every tuple lives in exactly one shard,
// chosen by a hash of the declared *shard-key columns* — the functional-
// dependency key columns for functional predicates, the first column
// otherwise (the join key in the paper's hash-join tables and path-vector
// route sets). The shard hash is computed from the tuple's values in both
// layouts, so shard choice is layout-independent. A probe whose
// bound-column mask covers the shard key touches exactly one shard;
// unbound scans iterate shards in ascending order. Shard count is fixed
// per relation at construction (FixpointOptions::shards / SB_SHARDS);
// 1 shard reproduces the unsharded layout exactly. Because set membership,
// support counts, and FD slots are per-tuple properties, the logical
// content of a relation is independent of the shard count — only storage
// order changes.
//
// Each row additionally carries a derivation-support count used by the
// counting-based incremental deletion path: the number of rule
// instantiations currently deriving the tuple. Base facts and aggregate
// outputs keep a count of zero; their liveness is tracked elsewhere.
//
// Concurrency contract (parallel fixpoint): all mutations are
// single-threaded. Concurrent Probe() calls are safe only for masks whose
// index is current (EnsureIndex pre-warms every shard before a parallel
// phase); a current index makes Probe a pure read. Dictionary lookups
// (CodeOf, ProbeShard's internal key encoding) are pure reads of maps that
// only mutations grow, so they share the same contract.
//
// Reference-stability contract: ProbeShard() returns a reference to a
// bucket vector inside one shard's secondary index. The reference (and
// iterators into it) stays valid across further ProbeShard()/Probe()/
// EnsureIndex() calls while the relation's version() is unchanged — those
// are pure reads on an up-to-date index — and across index builds for
// *other* masks or *other* shards (bucket maps are node-based, so foreign
// inserts never move this mask's vectors). Any mutation (Insert, Erase,
// ReplaceFunctional, Reserve) or an EnsureIndex that catches an index up
// to a newer version may reallocate buckets and invalidates it. The
// executor relies on exactly the safe window: a rule body holds probe
// results across nested probes of the same enumeration, and the fixpoint
// drivers never mutate relations while an enumeration runs (derived heads
// are buffered and applied between runs). Probe() — the flat convenience
// used by tests and debug paths — additionally gathers matches across
// shards into an internal scratch buffer, so its reference is only valid
// until the *next* Probe() call on this relation; do not use it where
// nested probes of the same relation can occur.
#ifndef SECUREBLOX_ENGINE_RELATION_H_
#define SECUREBLOX_ENGINE_RELATION_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "datalog/catalog.h"
#include "engine/tuple.h"

namespace secureblox::engine {

/// Result of an insertion attempt.
enum class InsertOutcome {
  kInserted,     // new tuple
  kDuplicate,    // already present (set semantics)
  kFdConflict,   // functional dependency violated (same keys, other value)
};

/// Where a cardinality estimate for a bound-column mask comes from
/// (SB_EXPLAIN surfaces this per plan step).
enum class EstimateSource : uint8_t {
  kSize = 0,  // no usable statistic: the full relation size
  kDict,      // exact per-column distinct count from a columnar dictionary
  kStat,      // content-hashed distinct-key statistic (EnsureKeyStat)
};

class Relation {
 public:
  /// Approximate heap bytes by storage component, from container
  /// capacities (string payloads excluded — the estimate is for relative
  /// layout comparisons, not an allocator audit). Row-major relations
  /// report their tuple vectors as column_bytes so the two layouts are
  /// directly comparable.
  struct MemoryFootprint {
    size_t dict_bytes = 0;    // dictionaries: values, code maps, refcounts
    size_t column_bytes = 0;  // code columns + support counts (or tuple rows)
    size_t index_bytes = 0;   // full-tuple/FD indexes + secondary buckets
  };

  /// `shards` is clamped to >= 1 and fixed for the relation's lifetime
  /// (re-hashing live data across a shard-count change is not supported).
  /// `columnar` selects the dictionary-encoded column-segment layout; it
  /// is likewise latched for the relation's lifetime.
  explicit Relation(const datalog::PredicateDecl* decl, size_t shards = 1,
                    bool columnar = false);

  const datalog::PredicateDecl& decl() const { return *decl_; }
  bool columnar() const { return columnar_; }

  /// Insert with set semantics and FD checking.
  InsertOutcome Insert(const Tuple& t);

  /// Remove a tuple; returns true if it was present. Built secondary
  /// indexes are patched in place (swap-remove aware, shard-local), never
  /// invalidated. In columnar mode `t` must not alias this relation's
  /// storage (accessors hand out materialized copies, so callers never
  /// hold such a reference).
  bool Erase(const Tuple& t);

  /// For functional predicates: replace any existing tuple with the same
  /// keys. Returns the displaced tuple if one existed.
  /// (Used by lattice aggregates, which monotonically improve values.)
  std::optional<Tuple> ReplaceFunctional(const Tuple& t);

  bool Contains(const Tuple& t) const;

  /// Functional lookup: full tuple for `keys` (arity-1 values) or nullptr.
  /// The keys determine the shard, so this is a single-shard probe. In
  /// row mode the result points into storage (stable until the next
  /// mutation); in columnar mode the row is materialized into `*scratch`
  /// and the result points there — pass a reusable buffer on hot paths.
  const Tuple* LookupByKeys(const Tuple& keys, Tuple* scratch) const;

  size_t size() const { return total_size_; }
  bool empty() const { return total_size_ == 0; }

  // -- sharded access --------------------------------------------------------

  size_t shard_count() const { return shards_.size(); }
  /// Shard owning `t` (hash of the shard-key columns' values).
  size_t ShardOf(const Tuple& t) const;
  /// Rows in one shard (both layouts).
  size_t shard_size(size_t shard) const {
    const Shard& s = shards_[shard];
    return columnar_ ? s.counts.size() : s.tuples.size();
  }
  /// Tuples of one shard, in shard-local insertion order (stable except
  /// for swap-remove erasure). Full scans iterate shards in order.
  /// Row-major layout only — columnar consumers go through shard_codes()/
  /// At()/MaterializeTuple().
  const std::vector<Tuple>& shard_tuples(size_t shard) const {
    return shards_[shard].tuples;
  }
  /// One column's value at (shard, slot). Columnar mode returns a
  /// reference into the column dictionary (stable: dictionaries are
  /// append-only).
  const datalog::Value& At(size_t shard, size_t slot, size_t col) const {
    const Shard& s = shards_[shard];
    return columnar_ ? dicts_[col].values[s.cols[col][slot]]
                     : s.tuples[slot][col];
  }
  /// Materialized copy of the row at (shard, slot), either layout.
  Tuple MaterializeTuple(size_t shard, size_t slot) const;
  /// Materialized copy of every tuple, shard-by-shard (snapshots, reseeds).
  std::vector<Tuple> AllTuples() const;

  /// Pre-size storage and hash indexes for `n` total rows (batch inserts).
  void Reserve(size_t n);

  // -- columnar access (dictionary-encoded layout only) ----------------------

  /// Dense dictionary code of `v` in column `col`, or nullopt when the
  /// value was never inserted there — a miss proves no row matches on that
  /// column, the executor's selective-filter fast path. Codes outlive
  /// erasure (they are never reused), so a hit does not imply a live row.
  std::optional<uint32_t> CodeOf(size_t col, const datalog::Value& v) const;
  /// One shard's contiguous code vector for `col` (parallel to slots).
  const std::vector<uint32_t>& shard_codes(size_t shard, size_t col) const {
    return shards_[shard].cols[col];
  }
  /// The value a column code decodes to (reference into the dictionary).
  const datalog::Value& Decode(size_t col, uint32_t code) const {
    return dicts_[col].values[code];
  }
  /// Exact number of distinct values currently live in `col` (columnar
  /// mode; nullopt in the row-major layout, which only tracks hashed
  /// per-mask statistics).
  std::optional<size_t> ColumnDistinct(size_t col) const;

  /// Append the dictionary code of each of `t`'s values to `out` (columnar
  /// mode). Returns false — leaving `out` as it was passed in — when any
  /// value is absent from its column's dictionary: such a tuple cannot be
  /// stored in this relation, the executor's exclude-set fast negative.
  bool EncodeTuple(const Tuple& t, std::vector<uint32_t>* out) const;

  // -- sorted-run metadata (columnar layout only) ----------------------------

  /// Build or refresh the sorted-run cache for column `col` in every
  /// shard: the boundaries of the maximal non-decreasing runs of the
  /// shard's append-ordered code vector, stored as slot offsets b with
  /// b.front() == 0 and b.back() == shard rows. Rebuilt only when the
  /// relation's version moved (O(rows) per stale shard). Single-threaded,
  /// like all mutations — call before a parallel phase reads the runs.
  void EnsureSortedRuns(size_t col);

  /// The cached run boundaries for (shard, col) when current at
  /// version(), else nullptr. Pure read — safe from worker threads under
  /// the same contract as warm-index probes; a stale cache simply sends
  /// the caller down the full filter-kernel path.
  const std::vector<uint32_t>* SortedRunBoundsIfWarm(size_t shard,
                                                     size_t col) const;

  // -- derivation-support counts (counting-based deletion) -------------------

  /// Current support of `t`; 0 when absent or purely base.
  uint32_t SupportCount(const Tuple& t) const;
  /// Add one derivation support. Returns the new count (0 if `t` absent).
  uint32_t AddSupport(const Tuple& t);
  /// Overwrite the support of `t` (rollback / over-delete bookkeeping).
  void SetSupport(const Tuple& t, uint32_t count);

  /// Monotonically increasing change counter (secondary index freshness).
  uint64_t version() const { return version_; }

  // -- online statistics (cost-based planning) -------------------------------

  /// Columns that route a tuple to its shard (bit i = column i). Static per
  /// declaration, so planner probe-strategy choices are identical at every
  /// shard count.
  uint32_t shard_key_mask() const { return shard_key_mask_; }

  /// Start tracking distinct-key statistics for `mask` (no-op when already
  /// tracked): seeds a counting map with one scan, after which Insert and
  /// Erase maintain it incrementally — and symmetrically, so heavy
  /// retraction never leaves inflated cardinalities behind. Counting is by
  /// hash of the projected values (content-based), so the statistics are
  /// independent of shard count and insertion order — the property the
  /// planner's determinism rests on. In columnar mode a single-column mask
  /// is already covered exactly by the column dictionary's live count and
  /// is not tracked. Single-threaded, like all mutations.
  void EnsureKeyStat(uint32_t mask);

  /// Distinct projections onto `mask` among the current rows: the exact
  /// dictionary live count for a single-column mask in columnar mode, the
  /// hashed statistic for a tracked mask, nullopt otherwise.
  std::optional<size_t> DistinctKeys(uint32_t mask) const;

  /// Estimated rows matching one probe on `mask`: size()/distinct when a
  /// distinct count is available (dictionary or tracked stat), the full
  /// size for mask 0 or an untracked mask.
  double EstimateMatches(uint32_t mask) const;

  /// Which statistic EstimateMatches(mask) would draw on (SB_EXPLAIN).
  EstimateSource EstimateSourceFor(uint32_t mask) const;

  /// Approximate storage footprint by component (EngineStats gauges).
  MemoryFootprint Memory() const;

  // -- secondary-index probing -----------------------------------------------

  /// Shard a bound-column probe resolves to when `mask` covers every
  /// shard-key column (the key tuple holds the bound values in column
  /// order), or -1 when the probe must fan out over all shards.
  int ProbeShardOf(uint32_t mask, const Tuple& key) const;

  /// Rows of `shard` whose columns selected by `mask` (bit i = column i)
  /// equal `key`. Returns shard-local indices into the shard's rows;
  /// see the reference-stability contract in the file comment. In
  /// columnar mode the key values are encoded through the column
  /// dictionaries first, and any dictionary miss returns empty without
  /// touching the index.
  const std::vector<size_t>& ProbeShard(size_t shard, uint32_t mask,
                                        const Tuple& key);

  /// Flat probe across all shards: encoded row ids (decode with row()).
  /// Convenience for tests/debug only — the returned reference aliases an
  /// internal scratch buffer valid until the next Probe() call; hot paths
  /// use ProbeShard()/shard_tuples()/shard_codes() instead.
  const std::vector<size_t>& Probe(uint32_t mask, const Tuple& key);

  /// Decode a row id produced by Probe() into a materialized tuple. With
  /// one shard the id is the plain row index.
  Tuple row(size_t encoded) const {
    return MaterializeTuple(encoded % shards_.size(),
                            encoded / shards_.size());
  }

  /// Bring every shard's secondary index for `mask` up to the current
  /// version (indexing only the appended tail — erases are patched in
  /// place). Called single-threaded before a parallel phase probes `mask`.
  void EnsureIndex(uint32_t mask);

  /// Bucket-map (re)constructions for this relation: first builds plus any
  /// rebuild after an invalidation, counted per (shard, mask). With
  /// in-place erase maintenance this stays at one per (shard, mask,
  /// relation) — the EngineStats counter benches watch.
  uint64_t index_builds() const { return index_builds_; }

 private:
  /// Projected dictionary codes, the columnar layout's index key.
  using CodeKey = std::vector<uint32_t>;
  struct CodeKeyHash {
    size_t operator()(const CodeKey& k) const {
      size_t h = 0x811C9DC5;
      for (uint32_t c : k) h ^= c + 0x9E3779B9 + (h << 6) + (h >> 2);
      return h;
    }
  };

  /// One column's relation-level dictionary. Codes are dense and
  /// append-only: a value keeps its code across erasure (refs drop to 0),
  /// so codes are comparable across shards and across time within one
  /// relation. `live` counts codes with refs > 0 — the exact distinct
  /// count the planner reads.
  struct ColumnDict {
    std::vector<datalog::Value> values;  // code -> value
    std::unordered_map<datalog::Value, uint32_t, datalog::ValueHash> codes;
    std::vector<uint32_t> refs;  // live rows per code
    size_t live = 0;
  };

  struct SecondaryIndex {
    uint64_t built_at_version = 0;
    /// Rows [0, rows_indexed) of the owning shard are in the buckets; a
    /// grow-only shard (the common case inside a fixpoint round) appends
    /// the tail instead of rebuilding.
    size_t rows_indexed = 0;
    /// Bucket entries are kept sorted ascending (builds append in row
    /// order, erase patching re-inserts at the sort position), so probes
    /// walk each shard's tuple array as a sorted run — forward in memory —
    /// and enumeration order is independent of erase history. Exactly one
    /// of the maps is populated, per the relation's layout.
    std::unordered_map<Tuple, std::vector<size_t>, TupleHash> buckets;
    std::unordered_map<CodeKey, std::vector<size_t>, CodeKeyHash> cbuckets;
  };

  /// Distinct-key statistics for one tracked mask: rows per projected-key
  /// hash. Relation-level (not per shard), so the counts do not depend on
  /// how keys distribute over shards.
  struct KeyStat {
    std::unordered_map<uint64_t, uint32_t> counts;
  };

  /// Sorted-run boundaries of one shard column's code vector, cached
  /// against the relation version (EnsureSortedRuns / SortedRunBoundsIfWarm).
  struct RunCache {
    uint64_t built_at_version = 0;
    std::vector<uint32_t> bounds;
  };

  /// One hash partition: the pre-shard Relation layout in miniature. All
  /// slot values (indexes, secondary buckets) are shard-local. Row mode
  /// populates tuples/index_/fd_index_; columnar mode populates cols (one
  /// code vector per column) and the code-keyed cindex_/cfd_index_.
  struct Shard {
    std::vector<Tuple> tuples;
    std::vector<std::vector<uint32_t>> cols;  // [column][slot] -> code
    std::vector<uint32_t> counts;             // parallel to rows
    std::unordered_map<Tuple, size_t, TupleHash> index_;     // tuple -> slot
    std::unordered_map<Tuple, size_t, TupleHash> fd_index_;  // keys -> slot
    std::unordered_map<CodeKey, size_t, CodeKeyHash> cindex_;
    std::unordered_map<CodeKey, size_t, CodeKeyHash> cfd_index_;
    std::unordered_map<uint32_t, SecondaryIndex> secondary_;
    std::vector<RunCache> runs_;  // per column, sized on first EnsureSortedRuns
  };

  static Tuple Project(const Tuple& t, uint32_t mask);
  static CodeKey ProjectCodes(const Shard& s, size_t slot, uint32_t mask);
  /// Hash of the shard-key columns of a full tuple.
  size_t ShardKeyHash(const Tuple& t) const;
  /// Shard for a probe key (bound values in column order) — only valid
  /// when the probe mask covers shard_key_mask_.
  size_t ShardOfProbeKey(uint32_t mask, const Tuple& key) const;
  void EnsureShardIndex(Shard& shard, uint32_t mask);
  /// Lookup-only full-tuple encoding: out[i] = code of t[i], or kNoCode
  /// for a value absent from column i's dictionary.
  void EncodeLookup(const Tuple& t, CodeKey* out) const;
  /// Columnar swap-remove erase of (shard, slot); mirrors the row-mode
  /// bucket-patch and index-repoint sequence exactly.
  void EraseColumnarSlot(Shard& s, size_t slot, const CodeKey& ck);
  /// Maintain every tracked KeyStat for an inserted / erased tuple.
  void StatsInsert(const Tuple& t);
  void StatsErase(const Tuple& t);

  const datalog::PredicateDecl* decl_;
  /// Bit i set = column i participates in the shard key.
  uint32_t shard_key_mask_ = 0;
  bool columnar_ = false;
  std::vector<Shard> shards_;
  /// Relation-level per-column dictionaries (columnar mode; empty in the
  /// row-major layout). Relation-level — not per shard — so codes are
  /// shard-comparable and the live counts feeding planner estimates are
  /// independent of SB_SHARDS.
  std::vector<ColumnDict> dicts_;
  size_t total_size_ = 0;
  uint64_t version_ = 1;
  uint64_t index_builds_ = 0;
  /// Tracked distinct-key statistics by mask (EnsureKeyStat).
  std::unordered_map<uint32_t, KeyStat> key_stats_;
  /// Probe() gather buffer (see reference-stability contract).
  std::vector<size_t> probe_scratch_;
};

}  // namespace secureblox::engine

#endif  // SECUREBLOX_ENGINE_RELATION_H_
