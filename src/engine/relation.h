// Relation storage, hash-partitioned into shards: each shard holds a dense
// tuple vector with a full-tuple hash index for set semantics, a key index
// enforcing functional dependencies, and lazily built secondary hash
// indexes keyed by bound-column masks for joins.
//
// Sharding (scale-out seam): every tuple lives in exactly one shard,
// chosen by a hash of the declared *shard-key columns* — the functional-
// dependency key columns for functional predicates, the first column
// otherwise (the join key in the paper's hash-join tables and path-vector
// route sets). A probe whose bound-column mask covers the shard key
// touches exactly one shard; unbound scans iterate shards in ascending
// order. Shard count is fixed per relation at construction
// (FixpointOptions::shards / SB_SHARDS); 1 shard reproduces the unsharded
// layout exactly. Because set membership, support counts, and FD slots
// are per-tuple properties, the logical content of a relation is
// independent of the shard count — only storage order changes.
//
// Each row additionally carries a derivation-support count used by the
// counting-based incremental deletion path: the number of rule
// instantiations currently deriving the tuple. Base facts and aggregate
// outputs keep a count of zero; their liveness is tracked elsewhere.
//
// Concurrency contract (parallel fixpoint): all mutations are
// single-threaded. Concurrent Probe() calls are safe only for masks whose
// index is current (EnsureIndex pre-warms every shard before a parallel
// phase); a current index makes Probe a pure read.
//
// Reference-stability contract: ProbeShard() returns a reference to a
// bucket vector inside one shard's secondary index. The reference (and
// iterators into it) stays valid across further ProbeShard()/Probe()/
// EnsureIndex() calls while the relation's version() is unchanged — those
// are pure reads on an up-to-date index — and across index builds for
// *other* masks or *other* shards (bucket maps are node-based, so foreign
// inserts never move this mask's vectors). Any mutation (Insert, Erase,
// ReplaceFunctional, Reserve) or an EnsureIndex that catches an index up
// to a newer version may reallocate buckets and invalidates it. The
// executor relies on exactly the safe window: a rule body holds probe
// results across nested probes of the same enumeration, and the fixpoint
// drivers never mutate relations while an enumeration runs (derived heads
// are buffered and applied between runs). Probe() — the flat convenience
// used by tests and debug paths — additionally gathers matches across
// shards into an internal scratch buffer, so its reference is only valid
// until the *next* Probe() call on this relation; do not use it where
// nested probes of the same relation can occur.
#ifndef SECUREBLOX_ENGINE_RELATION_H_
#define SECUREBLOX_ENGINE_RELATION_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "datalog/catalog.h"
#include "engine/tuple.h"

namespace secureblox::engine {

/// Result of an insertion attempt.
enum class InsertOutcome {
  kInserted,     // new tuple
  kDuplicate,    // already present (set semantics)
  kFdConflict,   // functional dependency violated (same keys, other value)
};

class Relation {
 public:
  /// `shards` is clamped to >= 1 and fixed for the relation's lifetime
  /// (re-hashing live data across a shard-count change is not supported).
  explicit Relation(const datalog::PredicateDecl* decl, size_t shards = 1);

  const datalog::PredicateDecl& decl() const { return *decl_; }

  /// Insert with set semantics and FD checking.
  InsertOutcome Insert(const Tuple& t);

  /// Remove a tuple; returns true if it was present. Built secondary
  /// indexes are patched in place (swap-remove aware, shard-local), never
  /// invalidated.
  bool Erase(const Tuple& t);

  /// For functional predicates: replace any existing tuple with the same
  /// keys. Returns the displaced tuple if one existed.
  /// (Used by lattice aggregates, which monotonically improve values.)
  std::optional<Tuple> ReplaceFunctional(const Tuple& t);

  bool Contains(const Tuple& t) const;

  /// Functional lookup: full tuple for `keys` (arity-1 values) or nullptr.
  /// The keys determine the shard, so this is a single-shard probe.
  const Tuple* LookupByKeys(const Tuple& keys) const;

  size_t size() const { return total_size_; }
  bool empty() const { return total_size_ == 0; }

  // -- sharded access --------------------------------------------------------

  size_t shard_count() const { return shards_.size(); }
  /// Shard owning `t` (hash of the shard-key columns).
  size_t ShardOf(const Tuple& t) const;
  /// Tuples of one shard, in shard-local insertion order (stable except
  /// for swap-remove erasure). Full scans iterate shards in order.
  const std::vector<Tuple>& shard_tuples(size_t shard) const {
    return shards_[shard].tuples;
  }
  /// Materialized copy of every tuple, shard-by-shard (snapshots, reseeds).
  std::vector<Tuple> AllTuples() const;

  /// Pre-size storage and hash indexes for `n` total rows (batch inserts).
  void Reserve(size_t n);

  // -- derivation-support counts (counting-based deletion) -------------------

  /// Current support of `t`; 0 when absent or purely base.
  uint32_t SupportCount(const Tuple& t) const;
  /// Add one derivation support. Returns the new count (0 if `t` absent).
  uint32_t AddSupport(const Tuple& t);
  /// Overwrite the support of `t` (rollback / over-delete bookkeeping).
  void SetSupport(const Tuple& t, uint32_t count);

  /// Monotonically increasing change counter (secondary index freshness).
  uint64_t version() const { return version_; }

  // -- online statistics (cost-based planning) -------------------------------

  /// Columns that route a tuple to its shard (bit i = column i). Static per
  /// declaration, so planner probe-strategy choices are identical at every
  /// shard count.
  uint32_t shard_key_mask() const { return shard_key_mask_; }

  /// Start tracking distinct-key statistics for `mask` (no-op when already
  /// tracked): seeds a counting map with one scan, after which Insert and
  /// Erase maintain it incrementally — and symmetrically, so heavy
  /// retraction never leaves inflated cardinalities behind. Counting is by
  /// hash of the projected values (content-based), so the statistics are
  /// independent of shard count and insertion order — the property the
  /// planner's determinism rests on. Single-threaded, like all mutations.
  void EnsureKeyStat(uint32_t mask);

  /// Distinct projections onto `mask` among the current rows, or nullopt
  /// when the mask is not tracked.
  std::optional<size_t> DistinctKeys(uint32_t mask) const;

  /// Estimated rows matching one probe on `mask`: size()/distinct for a
  /// tracked mask, the full size for mask 0 or an untracked mask.
  double EstimateMatches(uint32_t mask) const;

  // -- secondary-index probing -----------------------------------------------

  /// Shard a bound-column probe resolves to when `mask` covers every
  /// shard-key column (the key tuple holds the bound values in column
  /// order), or -1 when the probe must fan out over all shards.
  int ProbeShardOf(uint32_t mask, const Tuple& key) const;

  /// Rows of `shard` whose columns selected by `mask` (bit i = column i)
  /// equal `key`. Returns shard-local indices into shard_tuples(shard);
  /// see the reference-stability contract in the file comment.
  const std::vector<size_t>& ProbeShard(size_t shard, uint32_t mask,
                                        const Tuple& key);

  /// Flat probe across all shards: encoded row ids (decode with row()).
  /// Convenience for tests/debug only — the returned reference aliases an
  /// internal scratch buffer valid until the next Probe() call; hot paths
  /// use ProbeShard()/shard_tuples() instead.
  const std::vector<size_t>& Probe(uint32_t mask, const Tuple& key);

  /// Decode a row id produced by Probe(). With one shard the id is the
  /// plain row index, so `row(i) == shard_tuples(0)[i]`.
  const Tuple& row(size_t encoded) const {
    return shards_[encoded % shards_.size()]
        .tuples[encoded / shards_.size()];
  }

  /// Bring every shard's secondary index for `mask` up to the current
  /// version (indexing only the appended tail — erases are patched in
  /// place). Called single-threaded before a parallel phase probes `mask`.
  void EnsureIndex(uint32_t mask);

  /// Bucket-map (re)constructions for this relation: first builds plus any
  /// rebuild after an invalidation, counted per (shard, mask). With
  /// in-place erase maintenance this stays at one per (shard, mask,
  /// relation) — the EngineStats counter benches watch.
  uint64_t index_builds() const { return index_builds_; }

 private:
  struct SecondaryIndex {
    uint64_t built_at_version = 0;
    /// Rows [0, rows_indexed) of the owning shard are in the buckets; a
    /// grow-only shard (the common case inside a fixpoint round) appends
    /// the tail instead of rebuilding.
    size_t rows_indexed = 0;
    /// Bucket entries are kept sorted ascending (builds append in row
    /// order, erase patching re-inserts at the sort position), so probes
    /// walk each shard's tuple array as a sorted run — forward in memory —
    /// and enumeration order is independent of erase history.
    std::unordered_map<Tuple, std::vector<size_t>, TupleHash> buckets;
  };

  /// Distinct-key statistics for one tracked mask: rows per projected-key
  /// hash. Relation-level (not per shard), so the counts do not depend on
  /// how keys distribute over shards.
  struct KeyStat {
    std::unordered_map<uint64_t, uint32_t> counts;
  };

  /// One hash partition: the pre-shard Relation layout in miniature. All
  /// slot values (index_, fd_index_, secondary buckets) are shard-local.
  struct Shard {
    std::vector<Tuple> tuples;
    std::vector<uint32_t> counts;  // parallel to tuples
    std::unordered_map<Tuple, size_t, TupleHash> index_;     // tuple -> slot
    std::unordered_map<Tuple, size_t, TupleHash> fd_index_;  // keys -> slot
    std::unordered_map<uint32_t, SecondaryIndex> secondary_;
  };

  static Tuple Project(const Tuple& t, uint32_t mask);
  /// Hash of the shard-key columns of a full tuple.
  size_t ShardKeyHash(const Tuple& t) const;
  /// Shard for a probe key (bound values in column order) — only valid
  /// when the probe mask covers shard_key_mask_.
  size_t ShardOfProbeKey(uint32_t mask, const Tuple& key) const;
  void EnsureShardIndex(Shard& shard, uint32_t mask);
  /// Maintain every tracked KeyStat for an inserted / erased tuple.
  void StatsInsert(const Tuple& t);
  void StatsErase(const Tuple& t);

  const datalog::PredicateDecl* decl_;
  /// Bit i set = column i participates in the shard key.
  uint32_t shard_key_mask_ = 0;
  std::vector<Shard> shards_;
  size_t total_size_ = 0;
  uint64_t version_ = 1;
  uint64_t index_builds_ = 0;
  /// Tracked distinct-key statistics by mask (EnsureKeyStat).
  std::unordered_map<uint32_t, KeyStat> key_stats_;
  /// Probe() gather buffer (see reference-stability contract).
  std::vector<size_t> probe_scratch_;
};

}  // namespace secureblox::engine

#endif  // SECUREBLOX_ENGINE_RELATION_H_
