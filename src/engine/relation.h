// Relation storage: a dense tuple vector with a full-tuple hash index for
// set semantics, a key index enforcing functional dependencies, and lazily
// built secondary hash indexes keyed by bound-column masks for joins.
//
// Each row additionally carries a derivation-support count used by the
// counting-based incremental deletion path: the number of rule
// instantiations currently deriving the tuple. Base facts and aggregate
// outputs keep a count of zero; their liveness is tracked elsewhere.
//
// Concurrency contract (parallel fixpoint): all mutations are
// single-threaded. Concurrent Probe() calls are safe only for masks whose
// index is current (EnsureIndex pre-warms them before a parallel phase);
// a current index makes Probe a pure read.
#ifndef SECUREBLOX_ENGINE_RELATION_H_
#define SECUREBLOX_ENGINE_RELATION_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "datalog/catalog.h"
#include "engine/tuple.h"

namespace secureblox::engine {

/// Result of an insertion attempt.
enum class InsertOutcome {
  kInserted,     // new tuple
  kDuplicate,    // already present (set semantics)
  kFdConflict,   // functional dependency violated (same keys, other value)
};

class Relation {
 public:
  explicit Relation(const datalog::PredicateDecl* decl) : decl_(decl) {}

  const datalog::PredicateDecl& decl() const { return *decl_; }

  /// Insert with set semantics and FD checking.
  InsertOutcome Insert(const Tuple& t);

  /// Remove a tuple; returns true if it was present. Built secondary
  /// indexes are patched in place (swap-remove aware), never invalidated.
  bool Erase(const Tuple& t);

  /// For functional predicates: replace any existing tuple with the same
  /// keys. Returns the displaced tuple if one existed.
  /// (Used by lattice aggregates, which monotonically improve values.)
  std::optional<Tuple> ReplaceFunctional(const Tuple& t);

  bool Contains(const Tuple& t) const;

  /// Functional lookup: full tuple for `keys` (arity-1 values) or nullptr.
  const Tuple* LookupByKeys(const Tuple& keys) const;

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Pre-size storage and hash indexes for `n` total rows (batch inserts).
  void Reserve(size_t n);

  // -- derivation-support counts (counting-based deletion) -------------------

  /// Current support of `t`; 0 when absent or purely base.
  uint32_t SupportCount(const Tuple& t) const;
  /// Add one derivation support. Returns the new count (0 if `t` absent).
  uint32_t AddSupport(const Tuple& t);
  /// Overwrite the support of `t` (rollback / over-delete bookkeeping).
  void SetSupport(const Tuple& t, uint32_t count);

  /// Monotonically increasing change counter (secondary index freshness).
  uint64_t version() const { return version_; }

  /// Rows whose columns selected by `mask` (bit i = column i) equal `key`
  /// (the bound values in column order). Returns indices into tuples().
  const std::vector<size_t>& Probe(uint32_t mask, const Tuple& key);

  /// Bring the secondary index for `mask` up to the current version
  /// (indexing only the appended tail — erases are patched in place).
  /// Called single-threaded before a parallel phase probes this mask.
  void EnsureIndex(uint32_t mask);

  /// Bucket-map (re)constructions for this relation: first builds plus any
  /// rebuild after an invalidation. With in-place erase maintenance this
  /// stays at one per (mask, relation) — the EngineStats counter benches
  /// watch.
  uint64_t index_builds() const { return index_builds_; }

 private:
  struct SecondaryIndex {
    uint64_t built_at_version = 0;
    /// Rows [0, rows_indexed) are in the buckets; a grow-only relation
    /// (the common case inside a fixpoint round) appends the tail instead
    /// of rebuilding.
    size_t rows_indexed = 0;
    std::unordered_map<Tuple, std::vector<size_t>, TupleHash> buckets;
  };

  static Tuple Project(const Tuple& t, uint32_t mask);

  const datalog::PredicateDecl* decl_;
  std::vector<Tuple> tuples_;
  std::vector<uint32_t> counts_;  // parallel to tuples_
  std::unordered_map<Tuple, size_t, TupleHash> index_;     // tuple -> slot
  std::unordered_map<Tuple, size_t, TupleHash> fd_index_;  // keys -> slot
  std::unordered_map<uint32_t, SecondaryIndex> secondary_;
  uint64_t version_ = 1;
  uint64_t index_builds_ = 0;
};

}  // namespace secureblox::engine

#endif  // SECUREBLOX_ENGINE_RELATION_H_
