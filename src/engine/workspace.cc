#include "engine/workspace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string_view>

#include "common/bytes.h"
#include "common/logging.h"
#include "crypto/sha256.h"
#include "datalog/typecheck.h"

namespace secureblox::engine {

using datalog::Catalog;
using datalog::PredicateDecl;
using datalog::PredId;
using datalog::Value;
using datalog::ValueKind;

Workspace::Workspace() : catalog_(std::make_unique<Catalog>()) {
  ctx_.catalog = catalog_.get();
  RegisterCoreBuiltins(&builtins_);
  // Fixpoint worker threads: SB_THREADS=N (0 = one per hardware thread,
  // unset = sequential). Any value computes the identical fixpoint.
  // Garbage or negative values keep the sequential default rather than
  // accidentally meaning "all cores".
  if (const char* env = std::getenv("SB_THREADS")) {
    char* end = nullptr;
    long n = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && n >= 0 && n <= 1024) {
      fixpoint_options_.threads = static_cast<int>(n);
    }
  }
  // Relation storage shards: SB_SHARDS=N (unset/1 = unsharded layout).
  // Any value computes the identical fixpoint; garbage keeps the default.
  if (const char* env = std::getenv("SB_SHARDS")) {
    char* end = nullptr;
    long n = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && n >= 1 && n <= 4096) {
      fixpoint_options_.shards = static_cast<size_t>(n);
    }
  }
  // Cost-based rule planning: SB_PLAN=0 disables (baseline written-order
  // bodies), unset/1 enables. Either value computes the identical
  // fixpoint; garbage keeps the default.
  if (const char* env = std::getenv("SB_PLAN")) {
    char* end = nullptr;
    long n = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && (n == 0 || n == 1)) {
      fixpoint_options_.plan = n == 1;
    }
  }
  // Columnar relation storage: SB_COLUMNAR=0 selects the row-major tuple
  // layout, unset/1 the dictionary-encoded column segments. Either value
  // computes the identical fixpoint; garbage keeps the default. Latched
  // per relation at first touch, like SB_SHARDS.
  if (const char* env = std::getenv("SB_COLUMNAR")) {
    char* end = nullptr;
    long n = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && (n == 0 || n == 1)) {
      fixpoint_options_.columnar = n == 1;
    }
  }
  // Columnar filter kernels: SB_SIMD=0 forces the scalar loops, 1 the best
  // SIMD level the CPU supports, auto/unset runtime dispatch (the
  // default). Every value computes the identical fixpoint; garbage keeps
  // the default.
  if (const char* env = std::getenv("SB_SIMD")) {
    if (std::string_view(env) == "auto") {
      fixpoint_options_.simd = 2;
    } else {
      char* end = nullptr;
      long n = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && (n == 0 || n == 1)) {
        fixpoint_options_.simd = static_cast<int>(n);
      }
    }
  }
  // SB_EXPLAIN=1 dumps every built plan to stderr (docs/engine.md).
  if (const char* env = std::getenv("SB_EXPLAIN")) {
    char* end = nullptr;
    long n = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && n == 1) {
      fixpoint_options_.explain = true;
    }
  }
  // Empty rule graph + driver so transactions work before the first Install.
  rule_graph_ = RuleGraph::Build({}, *catalog_, false).value();
  driver_ = std::make_unique<FixpointDriver>(
      &rule_graph_, &compiled_rules_, &ctx_, this,
      static_cast<FixpointHost*>(this), &fixpoint_options_);
}

Relation* Workspace::GetRelation(PredId pred) {
  if (pred < 0) return nullptr;
  if (static_cast<size_t>(pred) >= relations_.size()) {
    relations_.resize(pred + 1);
  }
  if (relations_[pred] == nullptr) {
    // The shard count and storage layout are latched per relation at
    // creation (first touch), so FixpointOptions::shards/columnar must be
    // set before data arrives.
    relations_[pred] = std::make_unique<Relation>(&catalog_->decl(pred),
                                                 fixpoint_options_.shards,
                                                 fixpoint_options_.columnar);
  }
  return relations_[pred].get();
}

const Relation* Workspace::GetRelationIfExists(PredId pred) const {
  if (pred < 0 || static_cast<size_t>(pred) >= relations_.size()) {
    return nullptr;
  }
  return relations_[pred].get();
}

Status Workspace::Install(const datalog::Program& program) {
  SB_ASSIGN_OR_RETURN(
      datalog::AnalyzedProgram analyzed,
      datalog::AnalyzeProgram(program, catalog_.get(), builtins_.Signatures()));
  if (defer_rules_) {
    // Query-serving mode: record the rules for the query front end and
    // drop runtime constraints — nothing is materialized until a query
    // slice asks for it, and a partially materialized database would
    // raise spurious violations on constraints whose right-hand side is a
    // derived predicate. Validation happened upstream, on the node that
    // committed the facts.
    for (auto& r : analyzed.rules) deferred_rules_.push_back(std::move(r));
  } else {
    for (auto& r : analyzed.rules) installed_rules_.push_back(std::move(r));
    for (auto& c : analyzed.runtime_constraints) {
      installed_constraints_.push_back(std::move(c));
    }
    SB_RETURN_IF_ERROR(Recompile());
  }

  // Apply ground facts through a transaction.
  std::vector<FactUpdate> inserts;
  for (const datalog::Rule& fact : analyzed.facts) {
    for (const datalog::Atom& atom : fact.heads) {
      FactUpdate u;
      u.pred = atom.pred.name;
      for (const auto& arg : atom.args) u.values.push_back(arg->constant);
      inserts.push_back(std::move(u));
    }
  }
  if (!inserts.empty()) {
    auto commit = Apply(inserts);
    if (!commit.ok()) return commit.status();
  }
  return Status::OK();
}

Status Workspace::InstallSlice(const datalog::Program& program) {
  SB_ASSIGN_OR_RETURN(
      datalog::AnalyzedProgram analyzed,
      datalog::AnalyzeProgram(program, catalog_.get(), builtins_.Signatures()));
  if (!analyzed.facts.empty() || !analyzed.runtime_constraints.empty()) {
    return Status::InvalidArgument("query slice must contain rules only");
  }
  for (auto& r : analyzed.rules) installed_rules_.push_back(std::move(r));
  return Recompile();
}

Status Workspace::Recompile() {
  RuleCompiler compiler(*catalog_, builtins_);
  compiled_rules_.clear();
  for (size_t i = 0; i < installed_rules_.size(); ++i) {
    SB_ASSIGN_OR_RETURN(
        CompiledRule cr,
        compiler.CompileRule(installed_rules_[i], static_cast<int>(i)));
    compiled_rules_.push_back(std::move(cr));
  }
  std::vector<CompiledRule*> ptrs;
  for (auto& r : compiled_rules_) ptrs.push_back(&r);
  SB_ASSIGN_OR_RETURN(rule_graph_,
                      RuleGraph::Build(ptrs, *catalog_,
                                       allow_unstratified_negation_));
  for (size_t i = 0; i < compiled_rules_.size(); ++i) {
    compiled_rules_[i].stratum = rule_graph_.stratum_of(i);
  }
  driver_ = std::make_unique<FixpointDriver>(
      &rule_graph_, &compiled_rules_, &ctx_, this,
      static_cast<FixpointHost*>(this), &fixpoint_options_);

  compiled_constraints_.clear();
  for (size_t i = 0; i < installed_constraints_.size(); ++i) {
    SB_ASSIGN_OR_RETURN(CompiledConstraint cc,
                        compiler.CompileConstraint(installed_constraints_[i],
                                                   static_cast<int>(i)));
    compiled_constraints_.push_back(std::move(cc));
  }
  return Status::OK();
}

Result<Tuple> Workspace::NormalizeTuple(PredId pred,
                                        const std::vector<Value>& values) {
  const PredicateDecl& decl = catalog_->decl(pred);
  if (values.size() != decl.arity()) {
    return Status::InvalidArgument(
        "arity mismatch for '" + decl.name + "': got " +
        std::to_string(values.size()) + ", declared " +
        std::to_string(decl.arity()));
  }
  Tuple out;
  out.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    PredId type = decl.arg_types[i];
    const PredicateDecl& t = catalog_->decl(type);
    const Value& v = values[i];
    if (t.is_entity_type) {
      if (v.kind() == ValueKind::kString) {
        SB_ASSIGN_OR_RETURN(Value e, catalog_->InternEntity(type, v.AsString()));
        out.push_back(std::move(e));
        continue;
      }
      if (v.is_entity() && catalog_->IsSubtype(v.entity_type(), type)) {
        out.push_back(v);
        continue;
      }
      return Status::TypeError("value " + catalog_->ValueToString(v) +
                               " does not inhabit entity type '" + t.name +
                               "' (arg " + std::to_string(i) + " of " +
                               decl.name + ")");
    }
    if (t.is_primitive) {
      if (v.kind() != t.primitive_kind) {
        return Status::TypeError("value " + v.ToString() +
                                 " does not have type '" + t.name +
                                 "' (arg " + std::to_string(i) + " of " +
                                 decl.name + ")");
      }
      out.push_back(v);
      continue;
    }
    return Status::TypeError("argument type of '" + decl.name +
                             "' is not a type predicate");
  }
  return out;
}

Status Workspace::EnsureEntityMembership(const Value& v, TxState* tx) {
  if (!v.is_entity()) return Status::OK();
  std::vector<PredId> types = {v.entity_type()};
  for (PredId up : catalog_->SupertypesOf(v.entity_type())) types.push_back(up);
  for (PredId type : types) {
    Relation* rel = GetRelation(type);
    Tuple membership = {v};
    if (rel->Contains(membership)) continue;
    rel->Insert(membership);
    tx->undo.push_back({UndoOp::Kind::kInserted, type, membership});
    // Membership facts are base: they persist across delete-and-rederive.
    base_tuples_[type].insert(membership);
    tx->undo.push_back({UndoOp::Kind::kBaseAdded, type, membership});
    tx->inserted[type].push_back(membership);
    driver_->NotifyInsert(type, membership);
  }
  return Status::OK();
}

Result<bool> Workspace::InsertTuple(PredId pred, const Tuple& tuple,
                                    bool is_base, bool counted, TxState* tx) {
  Relation* rel = GetRelation(pred);
  InsertOutcome outcome = rel->Insert(tuple);
  if (outcome == InsertOutcome::kFdConflict) {
    Tuple scratch;
    const Tuple* existing = rel->LookupByKeys(
        Tuple(tuple.begin(), tuple.end() - 1), &scratch);
    return Status::ConstraintViolation(
        "functional dependency violation on '" + catalog_->decl(pred).name +
        "': keys map to " +
        (existing ? catalog_->ValueToString(existing->back()) : "?") +
        " but derived " + catalog_->ValueToString(tuple.back()));
  }
  if (outcome == InsertOutcome::kDuplicate) {
    if (is_base && !base_tuples_[pred].count(tuple)) {
      base_tuples_[pred].insert(tuple);
      tx->undo.push_back({UndoOp::Kind::kBaseAdded, pred, tuple, 0});
    }
    if (counted) {
      rel->AddSupport(tuple);
      tx->undo.push_back({UndoOp::Kind::kSupportAdded, pred, tuple, 0});
    }
    return false;
  }
  tx->undo.push_back({UndoOp::Kind::kInserted, pred, tuple, 0});
  if (is_base) {
    base_tuples_[pred].insert(tuple);
    tx->undo.push_back({UndoOp::Kind::kBaseAdded, pred, tuple, 0});
  } else {
    ++tx->num_derived;
    if (counted) {
      rel->AddSupport(tuple);
      tx->undo.push_back({UndoOp::Kind::kSupportAdded, pred, tuple, 0});
    }
  }
  tx->inserted[pred].push_back(tuple);
  driver_->NotifyInsert(pred, tuple);
  for (const Value& v : tuple) {
    SB_RETURN_IF_ERROR(EnsureEntityMembership(v, tx));
  }
  return true;
}

Status Workspace::EraseTupleTx(PredId pred, const Tuple& tuple, TxState* tx) {
  Relation* rel = GetRelation(pred);
  // `tuple` may alias the relation's own storage (aggregate replacement
  // passes the LookupByKeys result); swap-remove would clobber it before
  // the undo log and the delete delta read it.
  Tuple copy = tuple;
  uint32_t support = rel->SupportCount(copy);
  if (!rel->Erase(copy)) return Status::OK();
  ++tx->num_erased;
  tx->undo.push_back({UndoOp::Kind::kErased, pred, copy, support});
  auto base_it = base_tuples_.find(pred);
  if (base_it != base_tuples_.end() && base_it->second.erase(copy)) {
    tx->undo.push_back({UndoOp::Kind::kBaseRemoved, pred, copy, 0});
  }
  auto ins_it = tx->inserted.find(pred);
  if (ins_it != tx->inserted.end()) {
    auto& vec = ins_it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), copy), vec.end());
  }
  driver_->NotifyDelete(pred, copy);
  return Status::OK();
}

Status Workspace::EnsureEntityMembershipRaw(const Value& v, TxState* tx) {
  if (!v.is_entity()) return Status::OK();
  std::vector<PredId> types = {v.entity_type()};
  for (PredId up : catalog_->SupertypesOf(v.entity_type())) types.push_back(up);
  for (PredId type : types) {
    Relation* rel = GetRelation(type);
    Tuple membership = {v};
    if (rel->Contains(membership)) continue;
    rel->Insert(membership);
    tx->undo.push_back({UndoOp::Kind::kInserted, type, membership, 0});
    base_tuples_[type].insert(membership);
    tx->undo.push_back({UndoOp::Kind::kBaseAdded, type, membership, 0});
  }
  return Status::OK();
}

// -- placement ----------------------------------------------------------------

std::optional<size_t> Workspace::RemoteShardOf(PredId pred,
                                               const Tuple& tuple) {
  const ShardPlacement* p = fixpoint_options_.placement;
  if (p == nullptr || !p->IsPlaced(pred)) return std::nullopt;
  size_t shard = GetRelation(pred)->ShardOf(tuple);
  if (p->owner_of(shard) == p->local_node) return std::nullopt;
  return shard;
}

Status Workspace::ApplyRemoteOps(const std::vector<RemoteOp>& ops,
                                 std::vector<RemoteOp>* deferred,
                                 TxState* tx) {
  // Kind order inside one delivery transaction: a shard snapshot lands
  // before the live traffic that assumes it, inserts before the deletes
  // that may target them.
  auto apply_kind = [&](RemoteDelta::Kind k) -> Status {
    for (const RemoteOp& op : ops) {
      if (op.kind != k) continue;
      SB_RETURN_IF_ERROR(ApplyOneRemoteOp(op, deferred, tx));
    }
    return Status::OK();
  };
  SB_RETURN_IF_ERROR(apply_kind(RemoteDelta::Kind::kHandoff));
  SB_RETURN_IF_ERROR(apply_kind(RemoteDelta::Kind::kBaseInsert));
  SB_RETURN_IF_ERROR(apply_kind(RemoteDelta::Kind::kSupportAdd));
  // Parked out-of-order deletes retry now that this delivery's inserts
  // landed. Failures park again into `deferred`; deferred_remote_ itself
  // is only replaced at commit, so a rollback forgets the retries.
  for (const RemoteOp& op : deferred_remote_) {
    SB_RETURN_IF_ERROR(ApplyOneRemoteOp(op, deferred, tx));
  }
  SB_RETURN_IF_ERROR(apply_kind(RemoteDelta::Kind::kBaseDelete));
  return apply_kind(RemoteDelta::Kind::kSupportDrop);
}

Status Workspace::ApplyOneRemoteOp(const RemoteOp& op,
                                   std::vector<RemoteOp>* deferred,
                                   TxState* tx) {
  SB_ASSIGN_OR_RETURN(PredId pred, catalog_->Lookup(op.pred));
  SB_ASSIGN_OR_RETURN(Tuple t, NormalizeTuple(pred, op.values));
  // Ownership may have moved since the sender staged this op (stale map
  // epoch, or a parked op surviving a membership change): re-stage for the
  // current owner instead of applying at the wrong node.
  if (auto shard = RemoteShardOf(pred, t)) {
    tx->remote.push_back(
        {op.kind, pred, std::move(t), *shard, op.support, op.is_base});
    return Status::OK();
  }
  Relation* rel = GetRelation(pred);
  switch (op.kind) {
    case RemoteDelta::Kind::kHandoff: {
      // Shard snapshot row: raw install of storage + base mark + support
      // count. No delta is seeded and no rule fires — the support count
      // already includes every shard-local instantiation at the old
      // owner; firing here would double-count. A replayed handoff finds
      // the row present and is ignored.
      if (rel->Contains(t)) return Status::OK();
      rel->Insert(t);
      tx->undo.push_back({UndoOp::Kind::kInserted, pred, t, 0});
      if (op.is_base) {
        base_tuples_[pred].insert(t);
        tx->undo.push_back({UndoOp::Kind::kBaseAdded, pred, t, 0});
      }
      if (op.support > 0) {
        tx->undo.push_back({UndoOp::Kind::kSupportCleared, pred, t, 0});
        rel->SetSupport(t, op.support);
      }
      for (const Value& v : t) {
        SB_RETURN_IF_ERROR(EnsureEntityMembershipRaw(v, tx));
      }
      return Status::OK();
    }
    case RemoteDelta::Kind::kBaseInsert: {
      auto r = InsertTuple(pred, t, /*is_base=*/true, /*counted=*/false, tx);
      return r.ok() ? Status::OK() : r.status();
    }
    case RemoteDelta::Kind::kSupportAdd: {
      auto r = InsertTuple(pred, t, /*is_base=*/false, /*counted=*/true, tx);
      return r.ok() ? Status::OK() : r.status();
    }
    case RemoteDelta::Kind::kBaseDelete: {
      if (!rel->Contains(t) || !base_tuples_[pred].count(t)) {
        // The matching insert is still in flight (deliveries are not
        // FIFO): park and retry on the next transaction.
        deferred->push_back(op);
        return Status::OK();
      }
      base_tuples_[pred].erase(t);
      tx->undo.push_back({UndoOp::Kind::kBaseRemoved, pred, t, 0});
      if (rel->SupportCount(t) == 0) {
        SB_RETURN_IF_ERROR(EraseTupleTx(pred, t, tx));
      }
      return Status::OK();
    }
    case RemoteDelta::Kind::kSupportDrop: {
      if (!rel->Contains(t) || rel->SupportCount(t) == 0) {
        deferred->push_back(op);
        return Status::OK();
      }
      auto r = RetractSupport(pred, t);
      return r.ok() ? Status::OK() : r.status();
    }
  }
  return Status::Internal("unknown remote op kind");
}

Result<std::vector<RemoteDelta>> Workspace::DetachShard(PredId pred,
                                                        size_t shard) {
  if (current_tx_ != nullptr) {
    return Status::Internal("DetachShard called inside a transaction");
  }
  Relation* rel = GetRelation(pred);
  if (shard >= rel->shard_count()) {
    return Status::InvalidArgument("DetachShard: shard " +
                                   std::to_string(shard) + " out of range");
  }
  std::vector<Tuple> rows;
  rows.reserve(rel->shard_size(shard));
  for (size_t i = 0; i < rel->shard_size(shard); ++i) {
    rows.push_back(rel->MaterializeTuple(shard, i));
  }
  auto& base = base_tuples_[pred];
  std::vector<RemoteDelta> out;
  out.reserve(rows.size());
  for (Tuple& t : rows) {
    RemoteDelta d;
    d.kind = RemoteDelta::Kind::kHandoff;
    d.pred = pred;
    d.shard = shard;
    d.support = rel->SupportCount(t);
    d.is_base = base.count(t) > 0;
    d.tuple = std::move(t);
    out.push_back(std::move(d));
  }
  // Erase after snapshotting: co-shardability guarantees no rule at this
  // node can rederive into the departing shard between transactions, so a
  // plain storage erase (no delete deltas, no cascades) is sound.
  for (const RemoteDelta& d : out) {
    base.erase(d.tuple);
    rel->Erase(d.tuple);
  }
  return out;
}

// -- FixpointHost -------------------------------------------------------------

Result<bool> Workspace::InsertHeadTuple(PredId pred, const Tuple& tuple) {
  SB_ASSIGN_OR_RETURN(Tuple normalized, NormalizeTuple(pred, tuple));
  // Placement: a non-recursive rule may re-key its head off the body
  // anchor; when the derived tuple's shard is owned elsewhere, ship one
  // support-add to the owner instead of storing locally. Returning false
  // keeps the firing out of the local delta (the owner's fixpoint
  // continues from it).
  if (auto shard = RemoteShardOf(pred, normalized)) {
    current_tx_->remote.push_back({RemoteDelta::Kind::kSupportAdd, pred,
                                   std::move(normalized), *shard, 0, false});
    return false;
  }
  return InsertTuple(pred, normalized, /*is_base=*/false, /*counted=*/true,
                     current_tx_);
}

Result<bool> Workspace::InsertDerivedTuple(PredId pred, const Tuple& tuple) {
  // Aggregate outputs: liveness is recompute-managed, not counted.
  return InsertTuple(pred, tuple, /*is_base=*/false, /*counted=*/false,
                     current_tx_);
}

Status Workspace::EraseTuple(PredId pred, const Tuple& tuple) {
  return EraseTupleTx(pred, tuple, current_tx_);
}

Result<bool> Workspace::RetractSupport(PredId pred, const Tuple& tuple) {
  // Placement: mirror of the InsertHeadTuple re-key path — the destroyed
  // instantiation supported a tuple stored at a remote owner.
  if (auto shard = RemoteShardOf(pred, tuple)) {
    current_tx_->remote.push_back({RemoteDelta::Kind::kSupportDrop, pred,
                                   tuple, *shard, 0, false});
    return false;
  }
  Relation* rel = GetRelation(pred);
  uint32_t support = rel->SupportCount(tuple);
  if (!rel->Contains(tuple) || support == 0) {
    return Status::Internal(
        "support underflow on '" + catalog_->decl(pred).name +
        "': retraction of an uncounted derivation of " +
        TupleToString(tuple, *catalog_));
  }
  rel->SetSupport(tuple, support - 1);
  current_tx_->undo.push_back(
      {UndoOp::Kind::kSupportDropped, pred, tuple, 0});
  if (support - 1 > 0) return false;  // alternative derivation remains
  auto base_it = base_tuples_.find(pred);
  if (base_it != base_tuples_.end() && base_it->second.count(tuple)) {
    return false;  // still asserted as a base fact
  }
  SB_RETURN_IF_ERROR(EraseTupleTx(pred, tuple, current_tx_));
  return true;
}

Result<uint64_t> Workspace::OverDeleteDerived(PredId pred) {
  Relation* rel = GetRelation(pred);
  const auto& base = base_tuples_[pred];
  std::vector<Tuple> copy = rel->AllTuples();
  uint64_t erased = 0;
  for (const Tuple& t : copy) {
    if (base.count(t)) {
      // Base facts survive over-delete; rederivation recounts them.
      uint32_t support = rel->SupportCount(t);
      if (support > 0) {
        current_tx_->undo.push_back(
            {UndoOp::Kind::kSupportCleared, pred, t, support});
        rel->SetSupport(t, 0);
      }
    } else {
      SB_RETURN_IF_ERROR(EraseTupleTx(pred, t, current_tx_));
      ++erased;
    }
  }
  return erased;
}

Status Workspace::BindExistentials(const CompiledRule& rule, Env* envp,
                                   std::vector<int>* bound_here) {
  Env& env = *envp;
  Tuple memo_key;
  for (int slot : rule.memo_key_slots) memo_key.push_back(*env[slot]);
  auto key = std::make_pair(rule.id, std::move(memo_key));
  auto it = existential_memo_.find(key);
  if (it == existential_memo_.end()) {
    // Content-addressed label: derived from the creating rule and the
    // binding of its head-relevant variables, not from a creation-order
    // counter. The same instantiation therefore yields the same label in
    // every run regardless of enumeration order — the property the
    // sharded/parallel fixpoint's byte-identical guarantee rests on. The
    // node tag keeps labels from colliding across nodes, the rule id and
    // ordinal keep them from colliding within a node. Each component is
    // length-prefixed so no choice of value contents (entity labels are
    // internable verbatim off the wire) can make two distinct bindings
    // serialize identically, and the full 128-bit digest prefix keeps
    // birthday collisions out of reach.
    std::string seed = std::to_string(rule.id);
    for (const Value& v : key.second) {
      std::string part = catalog_->ValueToString(v);
      seed += '|' + std::to_string(part.size()) + ':' + part;
    }
    Bytes digest =
        crypto::Sha256Digest(Bytes(seed.begin(), seed.end()));
    std::string suffix = ToHex(digest.data(), 16);
    std::vector<Value> entities;
    for (size_t k = 0; k < rule.existential_slots.size(); ++k) {
      PredId type = rule.existential_types[k];
      std::string label = catalog_->decl(type).name + "@" +
                          catalog_->node_tag() + "#" + suffix;
      if (rule.existential_slots.size() > 1) {
        label += "." + std::to_string(k);
      }
      SB_ASSIGN_OR_RETURN(Value e, catalog_->InternEntity(type, label));
      entities.push_back(std::move(e));
    }
    it = existential_memo_.emplace(std::move(key), std::move(entities)).first;
  }
  for (size_t k = 0; k < rule.existential_slots.size(); ++k) {
    env[rule.existential_slots[k]] = it->second[k];
    bound_here->push_back(rule.existential_slots[k]);
  }
  return Status::OK();
}

// -----------------------------------------------------------------------------

Status Workspace::CheckConstraints(TxState* tx) {
  Executor executor(&ctx_, this);
  for (const CompiledConstraint& c : compiled_constraints_) {
    auto check_binding = [&](Env& env) -> Status {
      ++stats_.constraint_checks;
      Env probe = env;  // rhs may bind additional slots
      SB_ASSIGN_OR_RETURN(bool ok, executor.Exists(c.rhs_steps, &probe));
      if (ok) return Status::OK();
      std::string binding;
      for (size_t s = 0; s < env.size(); ++s) {
        if (!env[s].has_value()) continue;
        if (!binding.empty()) binding += ", ";
        binding += c.slot_names[s] + "=" + catalog_->ValueToString(*env[s]);
      }
      return Status::ConstraintViolation("integrity constraint violated: " +
                                         c.source.ToString() + " [" + binding +
                                         "]");
    };

    if (tx->full_constraint_check) {
      Env env(c.num_slots);
      SB_RETURN_IF_ERROR(executor.Run(c.lhs_steps, &env, nullptr,
                                      check_binding));
      continue;
    }
    for (int occ = 0; occ < c.num_scan_occurrences; ++occ) {
      auto it = tx->inserted.find(c.scan_preds[occ]);
      if (it == tx->inserted.end() || it->second.empty()) continue;
      // Filter tuples that were later erased (aggregate replacement).
      std::vector<Tuple> live;
      Relation* rel = GetRelation(c.scan_preds[occ]);
      for (const Tuple& t : it->second) {
        if (rel->Contains(t)) live.push_back(t);
      }
      if (live.empty()) continue;
      DeltaOverride override{occ, &live};
      Env env(c.num_slots);
      SB_RETURN_IF_ERROR(executor.Run(c.lhs_steps, &env, &override,
                                      check_binding));
    }
  }
  return Status::OK();
}

void Workspace::Rollback(TxState* tx) {
  // Reverse replay: an erased functional slot is re-inserted only after
  // the tuple that reoccupied it (logged later) has been undone.
  for (auto it = tx->undo.rbegin(); it != tx->undo.rend(); ++it) {
    Relation* rel = GetRelation(it->pred);
    switch (it->kind) {
      case UndoOp::Kind::kInserted:
        rel->Erase(it->tuple);
        break;
      case UndoOp::Kind::kErased: {
        InsertOutcome outcome = rel->Insert(it->tuple);
        if (outcome == InsertOutcome::kFdConflict) {
          // The key slot is still occupied — the undo log cannot express
          // this interleaving, which indicates a missing undo entry.
          // Restore deterministically: the erased tuple wins.
          SB_LOG_STREAM(Error) << "rollback: functional slot of '"
                        << catalog_->decl(it->pred).name
                        << "' still occupied while restoring "
                        << TupleToString(it->tuple, *catalog_)
                        << "; displacing the occupant";
          Tuple scratch;
          const Tuple* occupant = rel->LookupByKeys(
              Tuple(it->tuple.begin(), it->tuple.end() - 1), &scratch);
          if (occupant != nullptr) {
            // Copy before Erase: in row mode the pointer aliases storage.
            Tuple displaced = *occupant;
            rel->Erase(displaced);
          }
          outcome = rel->Insert(it->tuple);
        }
        if (outcome == InsertOutcome::kInserted) {
          if (it->count > 0) rel->SetSupport(it->tuple, it->count);
        } else {
          SB_LOG_STREAM(Error) << "rollback: could not restore erased tuple "
                        << TupleToString(it->tuple, *catalog_) << " into '"
                        << catalog_->decl(it->pred).name << "'";
        }
        break;
      }
      case UndoOp::Kind::kBaseAdded:
        base_tuples_[it->pred].erase(it->tuple);
        break;
      case UndoOp::Kind::kBaseRemoved:
        base_tuples_[it->pred].insert(it->tuple);
        break;
      case UndoOp::Kind::kSupportAdded: {
        uint32_t support = rel->SupportCount(it->tuple);
        if (support > 0) {
          rel->SetSupport(it->tuple, support - 1);
        } else {
          SB_LOG_STREAM(Error) << "rollback: support underflow undoing an insert "
                        << "into '" << catalog_->decl(it->pred).name << "'";
        }
        break;
      }
      case UndoOp::Kind::kSupportDropped:
        rel->AddSupport(it->tuple);
        break;
      case UndoOp::Kind::kSupportCleared:
        rel->SetSupport(it->tuple, it->count);
        break;
    }
  }
  ++stats_.aborts;
}

Result<TxCommit> Workspace::Apply(const std::vector<FactUpdate>& inserts,
                                  const std::vector<FactUpdate>& deletes,
                                  const std::vector<RemoteOp>& remote_ops) {
  auto start = std::chrono::steady_clock::now();
  TxState tx;
  current_tx_ = &tx;
  driver_->Begin();

  auto finish_timing = [&] {
    current_tx_ = nullptr;
    tx_durations_us_.push_back(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };
  auto fail = [&](Status st) -> Result<TxCommit> {
    Rollback(&tx);
    // Aborted transactions still consumed processing time (Figure 7 counts
    // them).
    finish_timing();
    return st;
  };

  // Deletions and negated-predicate inserts can retract derived tuples,
  // which invalidates the insert-delta shortcut the constraint checker
  // normally uses.
  bool may_retract = !deletes.empty();
  for (const RemoteOp& op : remote_ops) {
    may_retract |= op.kind == RemoteDelta::Kind::kBaseDelete ||
                   op.kind == RemoteDelta::Kind::kSupportDrop;
  }
  may_retract |= !deferred_remote_.empty();
  if (!may_retract) {
    for (const FactUpdate& ins : inserts) {
      auto pred = catalog_->Lookup(ins.pred);
      if (pred.ok() && rule_graph_.negated_preds().count(pred.value())) {
        may_retract = true;
        break;
      }
    }
  }
  tx.full_constraint_check = may_retract;

  // Peer placement deliveries apply first: their insert-kind ops may be
  // the targets of this transaction's local deletes, and parked
  // out-of-order deletes retry against them. Failures roll the whole
  // delivery back (the distribution layer bisects).
  std::vector<RemoteOp> still_deferred;
  const bool ran_remote = !remote_ops.empty() || !deferred_remote_.empty();
  if (ran_remote) {
    Status st = ApplyRemoteOps(remote_ops, &still_deferred, &tx);
    if (!st.ok()) return fail(st);
  }

  // Base-fact deletions seed delete deltas; a tuple with remaining
  // derivation support merely loses its base assertion and stays.
  for (const FactUpdate& d : deletes) {
    auto pred = catalog_->Lookup(d.pred);
    if (!pred.ok()) return fail(pred.status());
    auto normalized = NormalizeTuple(pred.value(), d.values);
    if (!normalized.ok()) return fail(normalized.status());
    // Placement: the shard owner executes the delete (it alone knows the
    // tuple's base/derived status).
    if (auto shard = RemoteShardOf(pred.value(), *normalized)) {
      tx.remote.push_back({RemoteDelta::Kind::kBaseDelete, pred.value(),
                           std::move(*normalized), *shard, 0, false});
      continue;
    }
    Relation* rel = GetRelation(pred.value());
    if (!rel->Contains(*normalized)) continue;
    if (!base_tuples_[pred.value()].count(*normalized)) {
      return fail(Status::InvalidArgument(
          "cannot delete derived fact from '" + d.pred + "'"));
    }
    base_tuples_[pred.value()].erase(*normalized);
    tx.undo.push_back({UndoOp::Kind::kBaseRemoved, pred.value(), *normalized,
                       0});
    if (rel->SupportCount(*normalized) == 0) {
      Status st = EraseTupleTx(pred.value(), *normalized, &tx);
      if (!st.ok()) return fail(st);
    }
  }

  for (const FactUpdate& ins : inserts) {
    auto pred = catalog_->Lookup(ins.pred);
    if (!pred.ok()) return fail(pred.status());
    auto normalized = NormalizeTuple(pred.value(), ins.values);
    if (!normalized.ok()) return fail(normalized.status());
    // Placement: route the base fact to its shard owner.
    if (auto shard = RemoteShardOf(pred.value(), *normalized)) {
      tx.remote.push_back({RemoteDelta::Kind::kBaseInsert, pred.value(),
                           std::move(*normalized), *shard, 0, false});
      continue;
    }
    auto inserted = InsertTuple(pred.value(), *normalized, /*is_base=*/true,
                                /*counted=*/false, &tx);
    if (!inserted.ok()) return fail(inserted.status());
  }

  Status fixpoint = driver_->Run();
  if (!fixpoint.ok()) return fail(fixpoint);

  // Cascaded erasures (retractions, group-local over-deletes that did not
  // fully rederive, stale aggregate outputs) also invalidate the
  // insert-delta shortcut.
  if (tx.num_erased > 0) tx.full_constraint_check = true;

  Status constraints = CheckConstraints(&tx);
  if (!constraints.ok()) return fail(constraints);

  // Commit.
  TxCommit commit;
  for (auto& [pred, tuples] : tx.inserted) {
    Relation* rel = GetRelation(pred);
    std::vector<Tuple> live;
    for (Tuple& t : tuples) {
      if (rel->Contains(t)) live.push_back(std::move(t));
    }
    if (!live.empty()) commit.inserted[pred] = std::move(live);
  }
  commit.remote = std::move(tx.remote);
  if (ran_remote) deferred_remote_ = std::move(still_deferred);
  commit.num_derived = tx.num_derived;
  commit.fixpoint = driver_->stats();
  ++stats_.transactions;
  stats_.derived_tuples += tx.num_derived;
  stats_.fixpoint_rounds += commit.fixpoint.rounds;
  stats_.rule_firings += commit.fixpoint.rule_firings;
  stats_.firings_skipped += commit.fixpoint.firings_skipped;
  stats_.agg_recomputes += commit.fixpoint.agg_recomputes;
  stats_.agg_skipped += commit.fixpoint.agg_skipped;
  stats_.waves += commit.fixpoint.waves;
  stats_.parallel_tasks += commit.fixpoint.parallel_tasks;
  stats_.retractions += commit.fixpoint.retractions;
  stats_.deleted_tuples += commit.fixpoint.deleted;
  stats_.rescued_tuples += commit.fixpoint.rescued;
  stats_.group_rederives += commit.fixpoint.group_rederives;
  stats_.plan_builds += commit.fixpoint.plans_built;
  stats_.eval_frame_allocs = EvalFrameAllocs();
  uint64_t index_builds = 0;
  Relation::MemoryFootprint mem;
  for (const auto& rel : relations_) {
    if (rel == nullptr) continue;
    index_builds += rel->index_builds();
    const Relation::MemoryFootprint m = rel->Memory();
    mem.dict_bytes += m.dict_bytes;
    mem.column_bytes += m.column_bytes;
    mem.index_bytes += m.index_bytes;
  }
  stats_.index_rebuilds = index_builds;
  stats_.relation_dict_bytes = mem.dict_bytes;
  stats_.relation_column_bytes = mem.column_bytes;
  stats_.relation_index_bytes = mem.index_bytes;
  finish_timing();
  commit.duration_us = tx_durations_us_.back();
  return commit;
}

Status Workspace::Insert(const std::string& pred,
                         std::vector<Value> values) {
  auto commit = Apply({FactUpdate{pred, std::move(values)}});
  return commit.ok() ? Status::OK() : commit.status();
}

Result<std::vector<Tuple>> Workspace::Query(const std::string& pred) const {
  SB_ASSIGN_OR_RETURN(PredId id, catalog_->Lookup(pred));
  const Relation* rel = GetRelationIfExists(id);
  if (rel == nullptr) return std::vector<Tuple>{};
  return rel->AllTuples();
}

Result<bool> Workspace::ContainsFact(
    const std::string& pred, const std::vector<Value>& values) const {
  SB_ASSIGN_OR_RETURN(PredId id, catalog_->Lookup(pred));
  const Relation* rel = GetRelationIfExists(id);
  if (rel == nullptr) return false;
  // Normalization requires mutability (interning); look up by finding
  // existing entities instead.
  const PredicateDecl& decl = catalog_->decl(id);
  Tuple t;
  for (size_t i = 0; i < values.size() && i < decl.arity(); ++i) {
    const Value& v = values[i];
    PredId type = decl.arg_types[i];
    if (catalog_->decl(type).is_entity_type &&
        v.kind() == ValueKind::kString) {
      auto e = catalog_->FindEntity(type, v.AsString());
      if (!e.ok()) return false;
      t.push_back(e.value());
    } else {
      t.push_back(v);
    }
  }
  if (t.size() != decl.arity()) return false;
  return rel->Contains(t);
}

Result<Value> Workspace::SingletonValue(const std::string& pred) const {
  SB_ASSIGN_OR_RETURN(PredId id, catalog_->Lookup(pred));
  const Relation* rel = GetRelationIfExists(id);
  if (rel == nullptr || rel->empty()) {
    return Status::NotFound("singleton '" + pred + "' has no value");
  }
  for (size_t sh = 0; sh < rel->shard_count(); ++sh) {
    if (rel->shard_size(sh) > 0) {
      return rel->At(sh, 0, rel->decl().arity() - 1);
    }
  }
  return Status::NotFound("singleton '" + pred + "' has no value");
}

}  // namespace secureblox::engine
