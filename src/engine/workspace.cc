#include "engine/workspace.h"

#include <algorithm>
#include <chrono>

#include "datalog/typecheck.h"

namespace secureblox::engine {

using datalog::Catalog;
using datalog::PredicateDecl;
using datalog::PredId;
using datalog::Value;
using datalog::ValueKind;

Workspace::Workspace() : catalog_(std::make_unique<Catalog>()) {
  ctx_.catalog = catalog_.get();
  RegisterCoreBuiltins(&builtins_);
}

Relation* Workspace::GetRelation(PredId pred) {
  if (pred < 0) return nullptr;
  if (static_cast<size_t>(pred) >= relations_.size()) {
    relations_.resize(pred + 1);
  }
  if (relations_[pred] == nullptr) {
    relations_[pred] = std::make_unique<Relation>(&catalog_->decl(pred));
  }
  return relations_[pred].get();
}

const Relation* Workspace::GetRelationIfExists(PredId pred) const {
  if (pred < 0 || static_cast<size_t>(pred) >= relations_.size()) {
    return nullptr;
  }
  return relations_[pred].get();
}

Status Workspace::Install(const datalog::Program& program) {
  SB_ASSIGN_OR_RETURN(
      datalog::AnalyzedProgram analyzed,
      datalog::AnalyzeProgram(program, catalog_.get(), builtins_.Signatures()));
  for (auto& r : analyzed.rules) installed_rules_.push_back(std::move(r));
  for (auto& c : analyzed.runtime_constraints) {
    installed_constraints_.push_back(std::move(c));
  }
  SB_RETURN_IF_ERROR(Recompile());

  // Apply ground facts through a transaction.
  std::vector<FactUpdate> inserts;
  for (const datalog::Rule& fact : analyzed.facts) {
    for (const datalog::Atom& atom : fact.heads) {
      FactUpdate u;
      u.pred = atom.pred.name;
      for (const auto& arg : atom.args) u.values.push_back(arg->constant);
      inserts.push_back(std::move(u));
    }
  }
  if (!inserts.empty()) {
    auto commit = Apply(inserts);
    if (!commit.ok()) return commit.status();
  }
  return Status::OK();
}

Status Workspace::Recompile() {
  RuleCompiler compiler(*catalog_, builtins_);
  compiled_rules_.clear();
  for (size_t i = 0; i < installed_rules_.size(); ++i) {
    SB_ASSIGN_OR_RETURN(
        CompiledRule cr,
        compiler.CompileRule(installed_rules_[i], static_cast<int>(i)));
    compiled_rules_.push_back(std::move(cr));
  }
  std::vector<CompiledRule*> ptrs;
  for (auto& r : compiled_rules_) ptrs.push_back(&r);
  SB_ASSIGN_OR_RETURN(std::vector<int> strata,
                      Stratify(ptrs, *catalog_, &lattice_flags_,
                               allow_unstratified_negation_));
  negated_preds_.clear();
  for (const CompiledRule& r : compiled_rules_) {
    for (const Step& s : r.steps) {
      if (s.kind == Step::Kind::kNegCheck) negated_preds_.insert(s.pred);
    }
  }
  max_stratum_ = 0;
  for (size_t i = 0; i < compiled_rules_.size(); ++i) {
    compiled_rules_[i].stratum = strata[i];
    max_stratum_ = std::max(max_stratum_, strata[i]);
  }
  rules_by_stratum_.assign(max_stratum_ + 1, {});
  for (size_t i = 0; i < compiled_rules_.size(); ++i) {
    rules_by_stratum_[strata[i]].push_back(i);
  }

  compiled_constraints_.clear();
  for (size_t i = 0; i < installed_constraints_.size(); ++i) {
    SB_ASSIGN_OR_RETURN(CompiledConstraint cc,
                        compiler.CompileConstraint(installed_constraints_[i],
                                                   static_cast<int>(i)));
    compiled_constraints_.push_back(std::move(cc));
  }
  return Status::OK();
}

Result<Tuple> Workspace::NormalizeTuple(PredId pred,
                                        const std::vector<Value>& values) {
  const PredicateDecl& decl = catalog_->decl(pred);
  if (values.size() != decl.arity()) {
    return Status::InvalidArgument(
        "arity mismatch for '" + decl.name + "': got " +
        std::to_string(values.size()) + ", declared " +
        std::to_string(decl.arity()));
  }
  Tuple out;
  out.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    PredId type = decl.arg_types[i];
    const PredicateDecl& t = catalog_->decl(type);
    const Value& v = values[i];
    if (t.is_entity_type) {
      if (v.kind() == ValueKind::kString) {
        SB_ASSIGN_OR_RETURN(Value e, catalog_->InternEntity(type, v.AsString()));
        out.push_back(std::move(e));
        continue;
      }
      if (v.is_entity() && catalog_->IsSubtype(v.entity_type(), type)) {
        out.push_back(v);
        continue;
      }
      return Status::TypeError("value " + catalog_->ValueToString(v) +
                               " does not inhabit entity type '" + t.name +
                               "' (arg " + std::to_string(i) + " of " +
                               decl.name + ")");
    }
    if (t.is_primitive) {
      if (v.kind() != t.primitive_kind) {
        return Status::TypeError("value " + v.ToString() +
                                 " does not have type '" + t.name +
                                 "' (arg " + std::to_string(i) + " of " +
                                 decl.name + ")");
      }
      out.push_back(v);
      continue;
    }
    return Status::TypeError("argument type of '" + decl.name +
                             "' is not a type predicate");
  }
  return out;
}

Status Workspace::EnsureEntityMembership(const Value& v, TxState* tx) {
  if (!v.is_entity()) return Status::OK();
  std::vector<PredId> types = {v.entity_type()};
  for (PredId up : catalog_->SupertypesOf(v.entity_type())) types.push_back(up);
  for (PredId type : types) {
    Relation* rel = GetRelation(type);
    Tuple membership = {v};
    if (rel->Contains(membership)) continue;
    rel->Insert(membership);
    tx->undo.push_back({UndoOp::Kind::kInserted, type, membership});
    // Membership facts are base: they persist across delete-and-rederive.
    base_tuples_[type].insert(membership);
    tx->undo.push_back({UndoOp::Kind::kBaseAdded, type, membership});
    tx->inserted[type].push_back(membership);
    for (auto& queue : tx->unseen) queue[type].push_back(membership);
  }
  return Status::OK();
}

Result<bool> Workspace::InsertTuple(PredId pred, const Tuple& tuple,
                                    bool is_base, TxState* tx) {
  Relation* rel = GetRelation(pred);
  InsertOutcome outcome = rel->Insert(tuple);
  if (outcome == InsertOutcome::kFdConflict) {
    const Tuple* existing = rel->LookupByKeys(
        Tuple(tuple.begin(), tuple.end() - 1));
    return Status::ConstraintViolation(
        "functional dependency violation on '" + catalog_->decl(pred).name +
        "': keys map to " +
        (existing ? catalog_->ValueToString(existing->back()) : "?") +
        " but derived " + catalog_->ValueToString(tuple.back()));
  }
  if (outcome == InsertOutcome::kDuplicate) {
    if (is_base && !base_tuples_[pred].count(tuple)) {
      base_tuples_[pred].insert(tuple);
      tx->undo.push_back({UndoOp::Kind::kBaseAdded, pred, tuple});
    }
    return false;
  }
  tx->undo.push_back({UndoOp::Kind::kInserted, pred, tuple});
  if (is_base) {
    base_tuples_[pred].insert(tuple);
    tx->undo.push_back({UndoOp::Kind::kBaseAdded, pred, tuple});
  } else {
    ++tx->num_derived;
  }
  tx->inserted[pred].push_back(tuple);
  for (auto& queue : tx->unseen) queue[pred].push_back(tuple);
  for (const Value& v : tuple) {
    SB_RETURN_IF_ERROR(EnsureEntityMembership(v, tx));
  }
  return true;
}

void Workspace::RemoveFromDeltas(PredId pred, const Tuple& tuple,
                                 TxState* tx) {
  auto remove_from = [&](std::map<PredId, std::vector<Tuple>>& m) {
    auto it = m.find(pred);
    if (it == m.end()) return;
    auto& vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), tuple), vec.end());
  };
  remove_from(tx->inserted);
  for (auto& queue : tx->unseen) remove_from(queue);
}

Status Workspace::EraseTuple(PredId pred, const Tuple& tuple, TxState* tx) {
  Relation* rel = GetRelation(pred);
  if (!rel->Erase(tuple)) return Status::OK();
  tx->undo.push_back({UndoOp::Kind::kErased, pred, tuple});
  auto base_it = base_tuples_.find(pred);
  if (base_it != base_tuples_.end() && base_it->second.erase(tuple)) {
    tx->undo.push_back({UndoOp::Kind::kBaseRemoved, pred, tuple});
  }
  RemoveFromDeltas(pred, tuple, tx);
  return Status::OK();
}

Status Workspace::InstantiateHeads(
    const CompiledRule& rule, Env& env,
    std::vector<std::pair<PredId, Tuple>>* pending) {
  std::vector<int> bound_here;
  if (!rule.existential_slots.empty()) {
    Tuple memo_key;
    for (int slot : rule.memo_key_slots) memo_key.push_back(*env[slot]);
    auto key = std::make_pair(rule.id, std::move(memo_key));
    auto it = existential_memo_.find(key);
    if (it == existential_memo_.end()) {
      std::vector<Value> entities;
      for (size_t k = 0; k < rule.existential_slots.size(); ++k) {
        PredId type = rule.existential_types[k];
        SB_ASSIGN_OR_RETURN(
            Value e,
            catalog_->CreateAnonymousEntity(type, catalog_->decl(type).name));
        entities.push_back(std::move(e));
      }
      it = existential_memo_.emplace(std::move(key), std::move(entities)).first;
    }
    for (size_t k = 0; k < rule.existential_slots.size(); ++k) {
      env[rule.existential_slots[k]] = it->second[k];
      bound_here.push_back(rule.existential_slots[k]);
    }
  }

  for (const CompiledHead& head : rule.heads) {
    Tuple t;
    t.reserve(head.args.size());
    for (const ArgPat& p : head.args) {
      if (p.kind == ArgPat::Kind::kConst) {
        t.push_back(p.constant);
      } else {
        t.push_back(*env[p.slot]);
      }
    }
    pending->emplace_back(head.pred, std::move(t));
  }
  for (int s : bound_here) env[s].reset();
  return Status::OK();
}

Status Workspace::RunRuleVariants(
    const CompiledRule& rule,
    const std::map<PredId, std::vector<Tuple>>& delta, TxState* tx) {
  Executor executor(&ctx_, this);
  std::vector<std::pair<PredId, Tuple>> pending;

  for (int occ = 0; occ < rule.num_scan_occurrences; ++occ) {
    auto it = delta.find(rule.scan_preds[occ]);
    if (it == delta.end() || it->second.empty()) continue;
    DeltaOverride override{occ, &it->second};
    Env env(rule.num_slots);
    SB_RETURN_IF_ERROR(executor.Run(
        rule.steps, &env, &override, [&](Env& e) -> Status {
          return InstantiateHeads(rule, e, &pending);
        }));
  }

  for (auto& [pred, tuple] : pending) {
    SB_ASSIGN_OR_RETURN(Tuple normalized, NormalizeTuple(pred, tuple));
    auto inserted = InsertTuple(pred, normalized, /*is_base=*/false, tx);
    if (!inserted.ok()) return inserted.status();
  }
  return Status::OK();
}

Status Workspace::RecomputeAggregate(const CompiledRule& rule, bool lattice,
                                     TxState* tx) {
  const CompiledAgg& agg = *rule.agg;
  Executor executor(&ctx_, this);

  // Group body bindings by the head keys.
  std::map<Tuple, int64_t> groups;
  Env env(rule.num_slots);
  SB_RETURN_IF_ERROR(executor.Run(
      rule.steps, &env, nullptr, [&](Env& e) -> Status {
        Tuple key;
        for (const ArgPat& p : agg.key_args) {
          key.push_back(p.kind == ArgPat::Kind::kConst ? p.constant
                                                       : *e[p.slot]);
        }
        int64_t v = 0;
        if (agg.input_slot >= 0) {
          const Value& val = *e[agg.input_slot];
          if (val.kind() != ValueKind::kInt) {
            return Status::TypeError("aggregate input is not an integer");
          }
          v = val.AsInt();
        }
        auto [it, fresh] = groups.try_emplace(std::move(key), 0);
        switch (agg.func) {
          case datalog::AggFunc::kMin:
            it->second = fresh ? v : std::min(it->second, v);
            break;
          case datalog::AggFunc::kMax:
            it->second = fresh ? v : std::max(it->second, v);
            break;
          case datalog::AggFunc::kSum:
            it->second += v;
            break;
          case datalog::AggFunc::kCount:
            it->second += 1;
            break;
        }
        return Status::OK();
      }));

  Relation* rel = GetRelation(agg.head_pred);

  if (!lattice) {
    // Full recompute: drop stale groups first.
    std::vector<Tuple> existing = rel->tuples();
    for (const Tuple& t : existing) {
      Tuple keys(t.begin(), t.end() - 1);
      if (!groups.count(keys)) {
        SB_RETURN_IF_ERROR(EraseTuple(agg.head_pred, t, tx));
      }
    }
  }

  for (const auto& [keys, v] : groups) {
    Tuple desired = keys;
    desired.push_back(Value::Int(v));
    const Tuple* current = rel->LookupByKeys(keys);
    if (current != nullptr) {
      int64_t cur = current->back().AsInt();
      bool improve;
      if (lattice) {
        improve = agg.func == datalog::AggFunc::kMin ? v < cur : v > cur;
      } else {
        improve = v != cur;
      }
      if (!improve) continue;
      SB_RETURN_IF_ERROR(EraseTuple(agg.head_pred, *current, tx));
    }
    auto inserted = InsertTuple(agg.head_pred, desired, /*is_base=*/false, tx);
    if (!inserted.ok()) return inserted.status();
  }
  return Status::OK();
}

Status Workspace::RunStratum(int stratum, TxState* tx) {
  // Stratified aggregates recompute on stratum entry (their inputs are
  // complete); lattice aggregates re-run after every round.
  for (size_t idx : rules_by_stratum_[stratum]) {
    const CompiledRule& rule = compiled_rules_[idx];
    if (rule.agg.has_value() && !lattice_flags_[idx]) {
      SB_RETURN_IF_ERROR(RecomputeAggregate(rule, /*lattice=*/false, tx));
    }
  }
  int guard = 0;
  while (true) {
    if (++guard > 1000000) {
      return Status::Internal("fixpoint did not converge (guard tripped)");
    }
    std::map<PredId, std::vector<Tuple>> delta =
        std::move(tx->unseen[stratum]);
    tx->unseen[stratum].clear();
    if (delta.empty()) break;
    for (size_t idx : rules_by_stratum_[stratum]) {
      const CompiledRule& rule = compiled_rules_[idx];
      if (rule.agg.has_value()) continue;
      SB_RETURN_IF_ERROR(RunRuleVariants(rule, delta, tx));
    }
    for (size_t idx : rules_by_stratum_[stratum]) {
      const CompiledRule& rule = compiled_rules_[idx];
      if (rule.agg.has_value() && lattice_flags_[idx]) {
        SB_RETURN_IF_ERROR(RecomputeAggregate(rule, /*lattice=*/true, tx));
      }
    }
  }
  return Status::OK();
}

Status Workspace::RunFixpoint(TxState* tx) {
  // Strata in order; repeat if cross-stratum feedback (multi-head rules)
  // left unconsumed deltas in earlier strata.
  while (true) {
    for (int s = 0; s <= max_stratum_; ++s) {
      SB_RETURN_IF_ERROR(RunStratum(s, tx));
    }
    bool more = false;
    for (const auto& queue : tx->unseen) {
      for (const auto& [pred, tuples] : queue) {
        more |= !tuples.empty();
      }
    }
    if (!more) return Status::OK();
  }
}

Status Workspace::CheckConstraints(TxState* tx) {
  Executor executor(&ctx_, this);
  for (const CompiledConstraint& c : compiled_constraints_) {
    auto check_binding = [&](Env& env) -> Status {
      ++stats_.constraint_checks;
      Env probe = env;  // rhs may bind additional slots
      SB_ASSIGN_OR_RETURN(bool ok, executor.Exists(c.rhs_steps, &probe));
      if (ok) return Status::OK();
      std::string binding;
      for (size_t s = 0; s < env.size(); ++s) {
        if (!env[s].has_value()) continue;
        if (!binding.empty()) binding += ", ";
        binding += c.slot_names[s] + "=" + catalog_->ValueToString(*env[s]);
      }
      return Status::ConstraintViolation("integrity constraint violated: " +
                                         c.source.ToString() + " [" + binding +
                                         "]");
    };

    if (tx->full_constraint_check) {
      Env env(c.num_slots);
      SB_RETURN_IF_ERROR(executor.Run(c.lhs_steps, &env, nullptr,
                                      check_binding));
      continue;
    }
    for (int occ = 0; occ < c.num_scan_occurrences; ++occ) {
      auto it = tx->inserted.find(c.scan_preds[occ]);
      if (it == tx->inserted.end() || it->second.empty()) continue;
      // Filter tuples that were later erased (aggregate replacement).
      std::vector<Tuple> live;
      Relation* rel = GetRelation(c.scan_preds[occ]);
      for (const Tuple& t : it->second) {
        if (rel->Contains(t)) live.push_back(t);
      }
      if (live.empty()) continue;
      DeltaOverride override{occ, &live};
      Env env(c.num_slots);
      SB_RETURN_IF_ERROR(executor.Run(c.lhs_steps, &env, &override,
                                      check_binding));
    }
  }
  return Status::OK();
}

void Workspace::Rollback(TxState* tx) {
  for (auto it = tx->undo.rbegin(); it != tx->undo.rend(); ++it) {
    switch (it->kind) {
      case UndoOp::Kind::kInserted:
        GetRelation(it->pred)->Erase(it->tuple);
        break;
      case UndoOp::Kind::kErased:
        GetRelation(it->pred)->Insert(it->tuple);
        break;
      case UndoOp::Kind::kBaseAdded:
        base_tuples_[it->pred].erase(it->tuple);
        break;
      case UndoOp::Kind::kBaseRemoved:
        base_tuples_[it->pred].insert(it->tuple);
        break;
    }
  }
  ++stats_.aborts;
}

Status Workspace::OverDeleteAndReseed(TxState* tx) {
  // Over-delete every derived tuple (DRed with a maximal overestimate).
  std::unordered_set<PredId> idb;
  for (const CompiledRule& r : compiled_rules_) {
    if (r.agg.has_value()) {
      idb.insert(r.agg->head_pred);
    } else {
      for (const auto& h : r.heads) idb.insert(h.pred);
    }
  }
  for (PredId pred : idb) {
    Relation* rel = GetRelation(pred);
    std::vector<Tuple> copy = rel->tuples();
    const auto& base = base_tuples_[pred];
    for (const Tuple& t : copy) {
      if (!base.count(t)) {
        SB_RETURN_IF_ERROR(EraseTuple(pred, t, tx));
      }
    }
  }
  // Rederive from everything that remains.
  for (size_t pred = 0; pred < relations_.size(); ++pred) {
    if (relations_[pred] == nullptr) continue;
    for (const Tuple& t : relations_[pred]->tuples()) {
      for (auto& queue : tx->unseen) {
        queue[static_cast<PredId>(pred)].push_back(t);
      }
    }
  }
  return Status::OK();
}

Result<TxCommit> Workspace::Apply(const std::vector<FactUpdate>& inserts,
                                  const std::vector<FactUpdate>& deletes) {
  auto start = std::chrono::steady_clock::now();
  TxState tx;
  tx.unseen.resize(max_stratum_ + 1);

  auto fail = [&](Status st) -> Result<TxCommit> {
    Rollback(&tx);
    // Aborted transactions still consumed processing time (Figure 7 counts
    // them).
    tx_durations_us_.push_back(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    return st;
  };

  // Base insertions into negated predicates can invalidate existing
  // derivations; such transactions also go through rederivation.
  bool needs_rederive = !deletes.empty();
  if (!needs_rederive) {
    for (const FactUpdate& ins : inserts) {
      auto pred = catalog_->Lookup(ins.pred);
      if (pred.ok() && negated_preds_.count(pred.value())) {
        needs_rederive = true;
        break;
      }
    }
  }
  tx.full_constraint_check = needs_rederive;

  // Deletions: remove base facts, over-delete all derived tuples, reseed.
  if (!deletes.empty()) {
    for (const FactUpdate& d : deletes) {
      auto pred = catalog_->Lookup(d.pred);
      if (!pred.ok()) return fail(pred.status());
      auto normalized = NormalizeTuple(pred.value(), d.values);
      if (!normalized.ok()) return fail(normalized.status());
      Relation* rel = GetRelation(pred.value());
      if (!rel->Contains(*normalized)) continue;
      if (!base_tuples_[pred.value()].count(*normalized)) {
        return fail(Status::InvalidArgument(
            "cannot delete derived fact from '" + d.pred + "'"));
      }
      Status st = EraseTuple(pred.value(), *normalized, &tx);
      if (!st.ok()) return fail(st);
    }
  }
  if (needs_rederive) {
    Status st = OverDeleteAndReseed(&tx);
    if (!st.ok()) return fail(st);
  }

  for (const FactUpdate& ins : inserts) {
    auto pred = catalog_->Lookup(ins.pred);
    if (!pred.ok()) return fail(pred.status());
    auto normalized = NormalizeTuple(pred.value(), ins.values);
    if (!normalized.ok()) return fail(normalized.status());
    auto inserted = InsertTuple(pred.value(), *normalized, /*is_base=*/true,
                                &tx);
    if (!inserted.ok()) return fail(inserted.status());
  }

  Status fixpoint = RunFixpoint(&tx);
  if (!fixpoint.ok()) return fail(fixpoint);

  Status constraints = CheckConstraints(&tx);
  if (!constraints.ok()) return fail(constraints);

  // Commit.
  TxCommit commit;
  for (auto& [pred, tuples] : tx.inserted) {
    Relation* rel = GetRelation(pred);
    std::vector<Tuple> live;
    for (Tuple& t : tuples) {
      if (rel->Contains(t)) live.push_back(std::move(t));
    }
    if (!live.empty()) commit.inserted[pred] = std::move(live);
  }
  commit.num_derived = tx.num_derived;
  commit.duration_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  ++stats_.transactions;
  stats_.derived_tuples += tx.num_derived;
  tx_durations_us_.push_back(commit.duration_us);
  return commit;
}

Status Workspace::Insert(const std::string& pred,
                         std::vector<Value> values) {
  auto commit = Apply({FactUpdate{pred, std::move(values)}});
  return commit.ok() ? Status::OK() : commit.status();
}

Result<std::vector<Tuple>> Workspace::Query(const std::string& pred) const {
  SB_ASSIGN_OR_RETURN(PredId id, catalog_->Lookup(pred));
  const Relation* rel = GetRelationIfExists(id);
  if (rel == nullptr) return std::vector<Tuple>{};
  return rel->tuples();
}

Result<bool> Workspace::ContainsFact(
    const std::string& pred, const std::vector<Value>& values) const {
  SB_ASSIGN_OR_RETURN(PredId id, catalog_->Lookup(pred));
  const Relation* rel = GetRelationIfExists(id);
  if (rel == nullptr) return false;
  // Normalization requires mutability (interning); look up by finding
  // existing entities instead.
  const PredicateDecl& decl = catalog_->decl(id);
  Tuple t;
  for (size_t i = 0; i < values.size() && i < decl.arity(); ++i) {
    const Value& v = values[i];
    PredId type = decl.arg_types[i];
    if (catalog_->decl(type).is_entity_type &&
        v.kind() == ValueKind::kString) {
      auto e = catalog_->FindEntity(type, v.AsString());
      if (!e.ok()) return false;
      t.push_back(e.value());
    } else {
      t.push_back(v);
    }
  }
  if (t.size() != decl.arity()) return false;
  return rel->Contains(t);
}

Result<Value> Workspace::SingletonValue(const std::string& pred) const {
  SB_ASSIGN_OR_RETURN(PredId id, catalog_->Lookup(pred));
  const Relation* rel = GetRelationIfExists(id);
  if (rel == nullptr || rel->empty()) {
    return Status::NotFound("singleton '" + pred + "' has no value");
  }
  return rel->tuples()[0].back();
}

}  // namespace secureblox::engine
