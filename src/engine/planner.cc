#include "engine/planner.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <memory>
#include <utility>

namespace secureblox::engine {

namespace {

using datalog::PredId;

/// Is every slot the expression reads bound?
bool ExprBound(const CExpr& e, const std::vector<bool>& bound) {
  switch (e.kind) {
    case CExpr::Kind::kConst:
      return true;
    case CExpr::Kind::kSlot:
      return bound[e.slot];
    case CExpr::Kind::kArith:
      return ExprBound(*e.lhs, bound) && ExprBound(*e.rhs, bound);
  }
  return false;
}

bool ArgReady(const ArgPat& p, const std::vector<bool>& bound) {
  if (p.kind == ArgPat::Kind::kConst || p.kind == ArgPat::Kind::kWild) {
    return true;
  }
  return bound[p.slot];
}

/// Can `step` run at a position where exactly `bound` is bound? Scans can
/// always run (they bind their free arguments); everything else needs its
/// inputs ready.
bool StepReady(const Step& step, const std::vector<bool>& bound) {
  switch (step.kind) {
    case Step::Kind::kScan:
      return true;
    case Step::Kind::kLookup:
      for (size_t i = 0; i + 1 < step.args.size(); ++i) {
        if (!ArgReady(step.args[i], bound)) return false;
      }
      return true;
    case Step::Kind::kNegCheck:
      for (const ArgPat& p : step.args) {
        if (!ArgReady(p, bound)) return false;
      }
      return true;
    case Step::Kind::kCompare:
      return ExprBound(*step.lhs, bound) && ExprBound(*step.rhs, bound);
    case Step::Kind::kAssign:
      return ExprBound(*step.rhs, bound);
    case Step::Kind::kBuiltin:
      for (int i = 0; i < step.builtin->sig.num_inputs; ++i) {
        if (!ArgReady(step.args[i], bound)) return false;
      }
      return true;
    case Step::Kind::kTypeCheck:
      return ArgReady(step.args[0], bound);
  }
  return false;
}

/// Priority class for a ready step: cheap filters first, then bound
/// probes, then negations and builtins; class 6 (scans, plus lookups whose
/// keys are not yet bound) is ranked by cardinality estimate instead.
int StepClass(const Step& step, const std::vector<bool>& bound) {
  switch (step.kind) {
    case Step::Kind::kCompare:
      return 0;
    case Step::Kind::kAssign:
      return 1;
    case Step::Kind::kTypeCheck:
      return 2;
    case Step::Kind::kLookup:
      return StepReady(step, bound) ? 3 : 6;
    case Step::Kind::kNegCheck:
      return 4;
    case Step::Kind::kBuiltin:
      return 5;
    case Step::Kind::kScan:
      return 6;
  }
  return 6;
}

/// Recompute one argument pattern for a new position. `may_bind` says the
/// step can bind the slot from a tuple / output at this position.
/// `col`/`step_cols`, passed for scans, track which column of the step
/// being rebound first bound each slot: a repeated variable within one
/// atom must come out kSame (row-vs-row equality), never kBound — the
/// slot is only bound once the row is accepted, so a kBound read of
/// env[slot] at match time would dereference an unengaged optional.
/// Within-atom column order is fixed under reordering, so a baseline
/// kSame arg re-derives the same classification here.
bool RebindArg(ArgPat* p, std::vector<bool>* bound, bool may_bind,
               int col = -1,
               std::vector<std::pair<int, int>>* step_cols = nullptr) {
  if (p->kind == ArgPat::Kind::kConst || p->kind == ArgPat::Kind::kWild) {
    return true;
  }
  if (step_cols != nullptr) {
    for (const auto& [s, c] : *step_cols) {
      if (s == p->slot) {
        p->kind = ArgPat::Kind::kSame;
        p->same_col = c;
        return true;
      }
    }
  }
  if ((*bound)[p->slot]) {
    p->kind = ArgPat::Kind::kBound;
    p->same_col = -1;
    return true;
  }
  if (!may_bind) return false;
  p->kind = ArgPat::Kind::kBind;
  p->same_col = -1;
  (*bound)[p->slot] = true;
  if (step_cols != nullptr && col >= 0) {
    step_cols->push_back({p->slot, col});
  }
  return true;
}

/// Copy `base` rebound for a position where exactly `bound` is bound,
/// updating `bound` with the slots the step binds. `force_scan` turns a
/// kLookup into a kScan over the same atom (delta-first forcing, or keys
/// not yet bound) — sound because a functional relation scanned by pattern
/// enumerates the same rows the lookup would. Occurrence numbers are
/// preserved so semi-naïve views keep applying. Returns false when the
/// step cannot run here (planner bug guard; callers discard the plan).
bool RebindStep(const Step& base, std::vector<bool>* bound, bool force_scan,
                Step* out) {
  *out = base;
  switch (out->kind) {
    case Step::Kind::kScan: {
      std::vector<std::pair<int, int>> step_cols;
      for (size_t i = 0; i < out->args.size(); ++i) {
        if (!RebindArg(&out->args[i], bound, /*may_bind=*/true,
                       static_cast<int>(i), &step_cols)) {
          return false;
        }
      }
      return true;
    }
    case Step::Kind::kLookup: {
      if (force_scan) {
        out->kind = Step::Kind::kScan;
        std::vector<std::pair<int, int>> step_cols;
        for (size_t i = 0; i < out->args.size(); ++i) {
          if (!RebindArg(&out->args[i], bound, /*may_bind=*/true,
                         static_cast<int>(i), &step_cols)) {
            return false;
          }
        }
        return true;
      }
      for (size_t i = 0; i + 1 < out->args.size(); ++i) {
        if (!RebindArg(&out->args[i], bound, /*may_bind=*/false)) {
          return false;
        }
      }
      return RebindArg(&out->args.back(), bound, /*may_bind=*/true);
    }
    case Step::Kind::kNegCheck:
      for (ArgPat& p : out->args) {
        if (!RebindArg(&p, bound, /*may_bind=*/false)) return false;
      }
      return true;
    case Step::Kind::kCompare:
      return ExprBound(*out->lhs, *bound) && ExprBound(*out->rhs, *bound);
    case Step::Kind::kAssign:
      if (!ExprBound(*out->rhs, *bound)) return false;
      if ((*bound)[out->assign_slot]) {
        // The target slot got bound by an earlier (reordered) step: the
        // assignment degenerates to an equality filter.
        auto lhs = std::make_shared<CExpr>();
        lhs->kind = CExpr::Kind::kSlot;
        lhs->slot = out->assign_slot;
        out->kind = Step::Kind::kCompare;
        out->cmp_op = datalog::CmpOp::kEq;
        out->lhs = std::move(lhs);
        out->assign_slot = -1;
        return true;
      }
      (*bound)[out->assign_slot] = true;
      return true;
    case Step::Kind::kBuiltin: {
      const int num_inputs = out->builtin->sig.num_inputs;
      for (size_t i = 0; i < out->args.size(); ++i) {
        const bool may_bind = static_cast<int>(i) >= num_inputs;
        if (!RebindArg(&out->args[i], bound, may_bind)) return false;
      }
      return true;
    }
    case Step::Kind::kTypeCheck:
      return RebindArg(&out->args[0], bound, /*may_bind=*/false);
  }
  return false;
}

const char* KindName(Step::Kind k) {
  switch (k) {
    case Step::Kind::kScan:      return "scan";
    case Step::Kind::kLookup:    return "lookup";
    case Step::Kind::kNegCheck:  return "neg";
    case Step::Kind::kCompare:   return "cmp";
    case Step::Kind::kAssign:    return "assign";
    case Step::Kind::kBuiltin:   return "builtin";
    case Step::Kind::kTypeCheck: return "typecheck";
  }
  return "?";
}

const char* ProbeName(Step::Probe p) {
  switch (p) {
    case Step::Probe::kAuto:       return "auto";
    case Step::Probe::kScanAll:    return "scan-all";
    case Step::Probe::kShardProbe: return "shard";
    case Step::Probe::kFanout:     return "fanout";
  }
  return "?";
}

const char* SourceName(EstimateSource s) {
  switch (s) {
    case EstimateSource::kSize: return "size";
    case EstimateSource::kDict: return "dict";
    case EstimateSource::kStat: return "stat";
  }
  return "?";
}

}  // namespace

double ExecPlanner::EstimateBound(const Step& step,
                                  const std::vector<bool>& bound,
                                  EstimateSource* src,
                                  int64_t* distinct) const {
  *src = EstimateSource::kSize;
  *distinct = -1;
  Relation* rel = store_.GetRelation(step.pred);
  if (rel == nullptr) return 0.0;
  uint32_t mask = 0;
  for (size_t i = 0; i < step.args.size() && i < 32; ++i) {
    const ArgPat& p = step.args[i];
    if (p.kind == ArgPat::Kind::kConst ||
        (p.kind != ArgPat::Kind::kWild && bound[p.slot])) {
      mask |= 1u << i;
    }
  }
  if (mask == 0) return static_cast<double>(rel->size());
  const datalog::PredicateDecl& decl = rel->decl();
  if (decl.functional && decl.arity() >= 2) {
    const uint32_t key_mask = (1u << (decl.arity() - 1)) - 1;
    if ((mask & key_mask) == key_mask) return 1.0;  // FD: at most one row
  }
  rel->EnsureKeyStat(mask);
  *src = rel->EstimateSourceFor(mask);
  if (auto d = rel->DistinctKeys(mask)) {
    *distinct = static_cast<int64_t>(*d);
  }
  return rel->EstimateMatches(mask);
}

VariantPlan ExecPlanner::Build(const CompiledRule& rule, int occ) const {
  VariantPlan plan;
  const std::vector<Step>& base = rule.steps;
  const size_t n = base.size();
  std::vector<bool> placed(n, false);
  std::vector<bool> bound(rule.num_slots, false);
  VariantPlan declined;  // empty steps = use the baseline order

  while (plan.steps.size() < n) {
    int pick = -1;
    bool force_scan = false;
    double pick_est = 0.0;
    EstimateSource pick_src = EstimateSource::kSize;
    int64_t pick_distinct = -1;
    if (plan.steps.empty() && occ >= 0) {
      // Delta atom first: the semi-naïve premise — the round's delta is
      // the small side of every join in this variant.
      for (size_t i = 0; i < n; ++i) {
        if (base[i].occurrence == occ) {
          pick = static_cast<int>(i);
          force_scan = base[i].kind == Step::Kind::kLookup;
          pick_est = -1.0;  // Δ: sized per round, not estimable here
          break;
        }
      }
      if (pick < 0) return declined;
    } else {
      int pick_class = std::numeric_limits<int>::max();
      for (size_t i = 0; i < n; ++i) {
        if (placed[i]) continue;
        const int cls = StepClass(base[i], bound);
        if (cls < 6) {
          if (!StepReady(base[i], bound)) continue;
          if (cls < pick_class) {
            pick_class = cls;
            pick = static_cast<int>(i);
            force_scan = false;
            pick_est = 1.0;
            pick_src = EstimateSource::kSize;
            pick_distinct = -1;
          }
          continue;
        }
        EstimateSource src = EstimateSource::kSize;
        int64_t distinct = -1;
        const double est = EstimateBound(base[i], bound, &src, &distinct);
        if (cls < pick_class || (pick_class == 6 && est < pick_est)) {
          pick_class = 6;
          pick = static_cast<int>(i);
          force_scan = base[i].kind == Step::Kind::kLookup;
          pick_est = est;
          pick_src = src;
          pick_distinct = distinct;
        }
      }
      if (pick < 0) return declined;  // unreachable (see planner.h)
    }

    Step s;
    if (!RebindStep(base[pick], &bound, force_scan, &s)) return declined;
    plan.steps.push_back(std::move(s));
    plan.source_index.push_back(static_cast<size_t>(pick));
    plan.est_rows.push_back(pick_est);
    plan.est_src.push_back(pick_src);
    plan.est_distinct.push_back(pick_distinct);
    placed[pick] = true;
  }

  ComputeProbeInfo(&plan.steps);
  for (Step& s : plan.steps) {
    if (s.kind != Step::Kind::kScan && s.kind != Step::Kind::kNegCheck) {
      continue;
    }
    Relation* rel = store_.GetRelation(s.pred);
    const uint32_t skm = rel != nullptr ? rel->shard_key_mask() : 0;
    // A columnar probe expected to keep a quarter or more of the relation
    // saves little filtering over a linear pass, and the pass runs through
    // the SIMD filter kernels on contiguous code vectors (engine/kernels.h)
    // with no bucket indirection and no index to maintain. Only a real
    // statistic (dictionary live count or tracked mask stat) may make that
    // call — a bare-size default would send every untracked mask down the
    // scan path. Index buckets enumerate slots ascending, exactly the
    // scan's order, so the choice never changes the fixpoint.
    const bool wide_match =
        s.kind == Step::Kind::kScan && rel != nullptr && rel->columnar() &&
        s.probe_mask != 0 &&
        rel->EstimateSourceFor(s.probe_mask) != EstimateSource::kSize &&
        rel->EstimateMatches(s.probe_mask) * 4 >=
            static_cast<double>(rel->size());
    if (s.probe_mask == 0 || wide_match) {
      s.probe = Step::Probe::kScanAll;
    } else if ((s.probe_mask & skm) == skm) {
      s.probe = Step::Probe::kShardProbe;
    } else {
      s.probe = Step::Probe::kFanout;
    }
    if (s.probe_mask != 0 && s.probe != Step::Probe::kScanAll) {
      plan.probe_masks.emplace_back(s.pred, s.probe_mask);
    }
  }
  for (const Step& s : base) {
    if (s.pred == datalog::kInvalidPred) continue;
    bool seen = false;
    for (const auto& [pred, rows] : plan.stat_rows) {
      if (pred == s.pred) { seen = true; break; }
    }
    if (seen) continue;
    Relation* rel = store_.GetRelation(s.pred);
    plan.stat_rows.emplace_back(s.pred,
                                rel != nullptr ? rel->size() : 0);
  }
  return plan;
}

bool ExecPlanner::Stale(const VariantPlan& plan) const {
  for (const auto& [pred, rows] : plan.stat_rows) {
    Relation* rel = store_.GetRelation(pred);
    const size_t now = rel != nullptr ? rel->size() : 0;
    const size_t hi = std::max(now, rows);
    const size_t lo = std::min(now, rows);
    // Replan on a >2x grow/shrink; the +8 floor keeps tiny relations from
    // thrashing the cache on every insert.
    if (hi + 8 > 2 * (lo + 8)) return true;
  }
  return false;
}

const VariantPlan* ExecPlanner::PlanFor(const CompiledRule& rule, int occ) {
  RulePlanCache& cache = *rule.plan_cache;
  if (cache.variants.empty()) {
    // Sized exactly once: executing code holds interior pointers into the
    // slots, so the vector must never reallocate after this.
    cache.variants.resize(static_cast<size_t>(rule.num_scan_occurrences) + 1);
  }
  const size_t slot = static_cast<size_t>(occ + 1);  // kFullBody -> 0
  if (slot >= cache.variants.size()) return nullptr;
  std::optional<VariantPlan>& vp = cache.variants[slot];
  if (!vp.has_value() || Stale(*vp)) {
    const uint64_t builds = vp.has_value() ? vp->builds : 0;
    VariantPlan fresh = Build(rule, occ);
    fresh.builds = builds + 1;
    vp.emplace(std::move(fresh));
    ++plans_built_;
    if (options_.explain && !vp->steps.empty()) {
      const std::string dump = Explain(rule, occ, *vp);
      fwrite(dump.data(), 1, dump.size(), stderr);
    }
  }
  return vp->steps.empty() ? nullptr : &*vp;
}

std::string ExecPlanner::Explain(const CompiledRule& rule, int occ,
                                 const VariantPlan& plan) const {
  std::string out = "[plan] rule#" + std::to_string(rule.id) + " variant=";
  out += occ < 0 ? "full" : "d" + std::to_string(occ);
  out += " builds=" + std::to_string(plan.builds);
  // The kernel instruction set scans will run with (engine/kernels.h) —
  // a throughput property only; it never changes the plan or the result.
  out += " simd=";
  out += SimdModeName(ResolveSimdMode(options_.simd));
  out += "\n";
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const Step& s = plan.steps[i];
    out += "  " + std::to_string(i) + ": ";
    out += KindName(s.kind);
    if (s.pred != datalog::kInvalidPred) {
      out += " " + catalog_.decl(s.pred).name;
    }
    if (s.occurrence >= 0) {
      out += " (occ " + std::to_string(s.occurrence) + ")";
    }
    out += " est=";
    if (i < plan.est_rows.size() && plan.est_rows[i] < 0) {
      out += "delta";
    } else if (i < plan.est_rows.size()) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3g", plan.est_rows[i]);
      out += buf;
    } else {
      out += "?";
    }
    // Estimate provenance: which statistic priced this position (exact
    // dictionary distinct count, hashed mask stat, or bare size) and the
    // distinct count it consulted. Only meaningful on estimated scans.
    if (i < plan.est_src.size() && plan.est_rows[i] >= 0 &&
        (s.kind == Step::Kind::kScan || s.kind == Step::Kind::kNegCheck)) {
      out += " via=";
      out += SourceName(plan.est_src[i]);
      if (i < plan.est_distinct.size() && plan.est_distinct[i] >= 0) {
        out += " distinct=" + std::to_string(plan.est_distinct[i]);
      }
    }
    if (s.kind == Step::Kind::kScan || s.kind == Step::Kind::kNegCheck) {
      char buf[32];
      std::snprintf(buf, sizeof buf, " probe=%s mask=0x%x",
                    ProbeName(s.probe), s.probe_mask);
      out += buf;
    }
    if (i < plan.source_index.size()) {
      out += " src=" + std::to_string(plan.source_index[i]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace secureblox::engine
