// Builtin (user-defined) functions callable from rule bodies and constraint
// right-hand sides — the paper's mechanism for hooking cryptographic
// operators (`rsa_sign`, `hmac_verify`, `aesencrypt`, `sha1`, `serialize`)
// into query execution.
#ifndef SECUREBLOX_ENGINE_BUILTINS_H_
#define SECUREBLOX_ENGINE_BUILTINS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/catalog.h"
#include "datalog/typecheck.h"
#include "datalog/value.h"

namespace secureblox::engine {

/// Execution context handed to builtin implementations. `user` points at
/// runtime-specific state (e.g. the node's key store / circuit table).
struct EvalContext {
  datalog::Catalog* catalog = nullptr;
  void* user = nullptr;
};

/// A builtin maps bound input values to output values.
/// Return value semantics:
///   - ok(true):  outputs produced (out has sig.arity - num_inputs values)
///   - ok(false): no result — the literal filters out this binding
///                (e.g. signature verification failed)
///   - error:     hard evaluation failure, aborts the transaction
using BuiltinFn = std::function<Result<bool>(
    EvalContext&, const std::vector<datalog::Value>&,
    std::vector<datalog::Value>*)>;

struct BuiltinImpl {
  datalog::BuiltinSignature sig;
  BuiltinFn fn;
  /// Safe to call from concurrent enumeration workers. False for builtins
  /// that mutate shared state (e.g. deserializers that intern entities in
  /// the catalog); rules using them are pinned to the sequential merge
  /// phase of the parallel fixpoint.
  bool thread_safe = true;
};

/// Name-keyed registry. The signature view feeds the type checker; the
/// implementations feed the evaluator.
class BuiltinRegistry {
 public:
  Status Register(const std::string& name, datalog::BuiltinSignature sig,
                  BuiltinFn fn, bool thread_safe = true);
  /// Re-register or add (used for policy-generated per-predicate builtins).
  void RegisterOrReplace(const std::string& name,
                         datalog::BuiltinSignature sig, BuiltinFn fn,
                         bool thread_safe = true);

  const BuiltinImpl* Find(const std::string& name) const;
  bool Contains(const std::string& name) const;

  datalog::BuiltinSignatureMap Signatures() const;

 private:
  std::map<std::string, BuiltinImpl> impls_;
};

/// Register the arithmetic/string/hash builtins every workspace gets:
///   sha1(any) -> blob            SHA-1 digest of the serialized value
///   sha1_bucket(any, int) -> int hash of arg0 into [0, arg1)
///   concat(string, string) -> string
///   tostring(any) -> string
/// (Crypto/signing builtins are registered by the policy layer, per node.)
void RegisterCoreBuiltins(BuiltinRegistry* registry);

}  // namespace secureblox::engine

#endif  // SECUREBLOX_ENGINE_BUILTINS_H_
