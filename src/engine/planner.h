// Cost-based execution planning for compiled rule bodies.
//
// The planner sits between the RuleCompiler and the Executor: per compiled
// rule it builds one VariantPlan per semi-naïve occurrence variant (plus one
// for the full body, used by aggregate recomputes), reordering the baseline
// steps greedily by estimated bound-cardinality and fixing each probe's
// strategy (single-shard probe / indexed fan-out / full scan) statically
// instead of per call. Plans are cached on the rule's RulePlanCache and
// rebuilt when body-relation sizes drift past a threshold, so long fixpoints
// replan as relations grow.
//
// Cost model. Statistics come from Relation's online counters: total rows
// plus distinct-key estimates per probe mask (Relation::EstimateMatches),
// maintained incrementally across inserts *and* erases. A candidate step's
// cost is the estimated number of rows matching its currently-bound
// columns; the delta occurrence is forced first (its cardinality is the
// round's delta, the semi-naïve premise), filters/lookups/negations/
// builtins run as early as their bindings allow, and remaining scans go
// ascending by estimate. Reordering is a pure enumeration-order change —
// RebindStep recomputes each argument's bound/bind pattern for the new
// position — so a plan enumerates exactly the bindings of the baseline
// order.
//
// Determinism. Plans are built and cached only from the fixpoint's
// single-threaded merge phase, and every input to a planning decision —
// relation sizes, content-hashed distinct counts, the shard-key mask — is
// independent of SB_THREADS and SB_SHARDS. Identical transaction streams
// therefore produce identical plans (and identical replan points) at every
// thread × shard combination, preserving the engine's byte-identical
// fixpoint contract.
#ifndef SECUREBLOX_ENGINE_PLANNER_H_
#define SECUREBLOX_ENGINE_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/eval.h"
#include "engine/fixpoint.h"

namespace secureblox::engine {

class ExecPlanner {
 public:
  /// Variant index for the full-body plan (aggregate recomputes).
  static constexpr int kFullBody = -1;

  /// All pointers are borrowed and must outlive the planner.
  ExecPlanner(const datalog::Catalog* catalog, RelationStore* store,
              const FixpointOptions* options)
      : catalog_(*catalog), store_(*store), options_(*options) {}

  /// The cached plan for `rule`'s occurrence-`occ` variant (kFullBody for
  /// the whole body), building or rebuilding it when absent or stale.
  /// Returns nullptr when planning declined (callers fall back to the
  /// baseline rule.steps). The returned pointer stays valid for the
  /// relation-frozen window the caller executes in: plans mutate only
  /// through this method, only on the merge phase, and the cache vector is
  /// sized once. Must be called single-threaded (it reads and seeds
  /// relation statistics).
  const VariantPlan* PlanFor(const CompiledRule& rule, int occ);

  /// Plans built or rebuilt through this planner (EngineStats feed).
  uint64_t plans_built() const { return plans_built_; }

  /// Human-readable plan dump (the SB_EXPLAIN format; see docs/engine.md).
  std::string Explain(const CompiledRule& rule, int occ,
                      const VariantPlan& plan) const;

 private:
  /// Greedy bound-cardinality ordering of `rule`'s baseline steps for one
  /// variant. Returns a plan with empty steps when any step cannot be
  /// rebound (defensive: cached so staleness governs retry).
  VariantPlan Build(const CompiledRule& rule, int occ) const;

  /// Has any body relation grown or shrunk past the replan threshold since
  /// `plan` was built?
  bool Stale(const VariantPlan& plan) const;

  /// Estimated rows one enumeration of `step` yields given the bound slot
  /// set (uses and seeds the per-mask distinct-key statistics). `src` and
  /// `distinct` report which statistic answered — exact dictionary live
  /// count, hashed mask stat, or the bare relation size — and the distinct
  /// count consulted (-1 when none was).
  double EstimateBound(const Step& step, const std::vector<bool>& bound,
                       EstimateSource* src, int64_t* distinct) const;

  const datalog::Catalog& catalog_;
  RelationStore& store_;
  const FixpointOptions& options_;
  uint64_t plans_built_ = 0;
};

}  // namespace secureblox::engine

#endif  // SECUREBLOX_ENGINE_PLANNER_H_
