#include "engine/worker_pool.h"

namespace secureblox::engine {

WorkerPool::WorkerPool(int total_threads) {
  for (int i = 1; i < total_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void WorkerPool::Drain(Batch* batch) {
  // Never read through batch->tasks before claiming an index: a straggler
  // can arrive after the batch completed and the caller's vector died.
  const size_t n = batch->size;
  size_t ran = 0;
  while (true) {
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    (*batch->tasks)[i]();
    ++ran;
  }
  if (ran == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  batch->completed += ran;
  if (batch->completed == n) done_cv_.notify_all();
}

void WorkerPool::WorkerLoop() {
  std::shared_ptr<Batch> seen;
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || batch_ != seen; });
      if (stop_) return;
      batch = seen = batch_;
    }
    if (batch != nullptr) Drain(batch.get());
  }
}

void WorkerPool::Run(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    for (const auto& task : tasks) task();
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->tasks = &tasks;
  batch->size = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = batch;
  }
  work_cv_.notify_all();
  Drain(batch.get());
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return batch->completed == tasks.size(); });
    batch_ = nullptr;  // workers fall back to waiting; stale drains no-op
  }
}

}  // namespace secureblox::engine
