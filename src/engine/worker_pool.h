// Worker pool for the parallel fixpoint's enumeration phases.
//
// A batch of tasks is executed across the pool's persistent threads plus
// the calling thread; Run() returns once every task has completed. Each
// batch is an independent heap object, so a worker straggling out of a
// finished batch can never steal indexes from the next one.
//
// The pool provides the synchronization backbone of the fixpoint's
// bulk-synchronous waves: everything written before Run() happens-before
// the tasks, and everything the tasks write happens-before Run() returns.
#ifndef SECUREBLOX_ENGINE_WORKER_POOL_H_
#define SECUREBLOX_ENGINE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace secureblox::engine {

class WorkerPool {
 public:
  /// `total_threads` counts the calling thread: a pool of size N spawns
  /// N-1 workers. Sizes <= 1 spawn nothing and Run() executes inline.
  explicit WorkerPool(int total_threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int total_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Execute every task, in any order, across the workers and the calling
  /// thread. Tasks must not throw. Returns when all tasks have completed.
  void Run(const std::vector<std::function<void()>>& tasks);

 private:
  struct Batch {
    /// Valid while completed < size: the caller's vector outlives every
    /// claimed task. Stragglers that arrive after completion must only
    /// touch `size`/`next`, which live in this shared object.
    const std::vector<std::function<void()>>* tasks = nullptr;
    size_t size = 0;
    std::atomic<size_t> next{0};
    size_t completed = 0;  // guarded by the pool mutex
  };

  void WorkerLoop();
  /// Claim and run tasks from `batch` until it is exhausted.
  void Drain(Batch* batch);

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: a new batch is available
  std::condition_variable done_cv_;   // caller: the batch completed
  std::shared_ptr<Batch> batch_;      // guarded by mu_; null when idle
  bool stop_ = false;                 // guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace secureblox::engine

#endif  // SECUREBLOX_ENGINE_WORKER_POOL_H_
