#include "engine/kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#define SB_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace secureblox::engine {

const char* SimdModeName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kScalar:
      return "scalar";
    case SimdMode::kSse2:
      return "sse2";
    case SimdMode::kAvx2:
      return "avx2";
  }
  return "scalar";
}

SimdMode DetectSimdMode() {
#ifdef SB_KERNELS_X86
  static const SimdMode detected = [] {
    if (__builtin_cpu_supports("avx2")) return SimdMode::kAvx2;
    if (__builtin_cpu_supports("sse2")) return SimdMode::kSse2;
    return SimdMode::kScalar;
  }();
  return detected;
#else
  return SimdMode::kScalar;
#endif
}

SimdMode ResolveSimdMode(int knob) {
  if (knob == 0) return SimdMode::kScalar;
  return DetectSimdMode();
}

namespace {

// The SIMD variants hoist each filter's broadcast code into a small stack
// array; patterns wider than this (arity > 32 never survives probe-mask
// compilation anyway) fall back to the scalar loop.
constexpr size_t kMaxSimdFilters = 32;

// Below ~2 vector widths the per-call broadcast setup costs more than it
// saves, and selective probe buckets are usually this small — the scalar
// loop emits the identical sequence, so tiny inputs skip the SIMD
// variants entirely. The gathered slot-list shape needs far longer lists
// before gather latency amortizes, so its floor is higher.
constexpr size_t kMinSimdInput = 16;
constexpr size_t kMinSimdSelect = 64;

void FusedRangeScalar(const CodeFilter* filters, size_t nf, uint32_t begin,
                      uint32_t end, std::vector<uint32_t>* out) {
  for (uint32_t s = begin; s < end; ++s) {
    bool ok = true;
    for (size_t i = 0; i < nf; ++i) {
      if (filters[i].codes[s] != filters[i].code) {
        ok = false;
        break;
      }
    }
    if (ok) out->push_back(s);
  }
}

void FusedSelectScalar(const CodeFilter* filters, size_t nf,
                       const size_t* sel, size_t n,
                       std::vector<uint32_t>* out) {
  for (size_t k = 0; k < n; ++k) {
    const size_t s = sel[k];
    bool ok = true;
    for (size_t i = 0; i < nf; ++i) {
      if (filters[i].codes[s] != filters[i].code) {
        ok = false;
        break;
      }
    }
    if (ok) out->push_back(static_cast<uint32_t>(s));
  }
}

#ifdef SB_KERNELS_X86

// Emit the slots a 4-lane comparison mask selected, lowest lane first, so
// the output order matches the scalar loop exactly.
inline void EmitMask4(int bits, uint32_t base, std::vector<uint32_t>* out) {
  while (bits != 0) {
    const int lane = __builtin_ctz(bits);
    bits &= bits - 1;
    out->push_back(base + static_cast<uint32_t>(lane));
  }
}

__attribute__((target("sse2"))) void FusedRangeSse2(
    const CodeFilter* filters, size_t nf, uint32_t begin, uint32_t end,
    std::vector<uint32_t>* out) {
  __m128i want[kMaxSimdFilters];
  for (size_t i = 0; i < nf; ++i) {
    want[i] = _mm_set1_epi32(static_cast<int>(filters[i].code));
  }
  uint32_t s = begin;
  for (; s + 4 <= end; s += 4) {
    __m128i m = _mm_cmpeq_epi32(
        _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(filters[0].codes + s)),
        want[0]);
    for (size_t i = 1; i < nf; ++i) {
      m = _mm_and_si128(
          m, _mm_cmpeq_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                 filters[i].codes + s)),
                             want[i]));
    }
    EmitMask4(_mm_movemask_ps(_mm_castsi128_ps(m)), s, out);
  }
  FusedRangeScalar(filters, nf, s, end, out);
}

__attribute__((target("avx2"))) void FusedRangeAvx2(
    const CodeFilter* filters, size_t nf, uint32_t begin, uint32_t end,
    std::vector<uint32_t>* out) {
  __m256i want[kMaxSimdFilters];
  for (size_t i = 0; i < nf; ++i) {
    want[i] = _mm256_set1_epi32(static_cast<int>(filters[i].code));
  }
  uint32_t s = begin;
  for (; s + 8 <= end; s += 8) {
    __m256i m = _mm256_cmpeq_epi32(
        _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(filters[0].codes + s)),
        want[0]);
    for (size_t i = 1; i < nf; ++i) {
      m = _mm256_and_si256(
          m,
          _mm256_cmpeq_epi32(_mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(
                                     filters[i].codes + s)),
                             want[i]));
    }
    int bits = _mm256_movemask_ps(_mm256_castsi256_ps(m));
    while (bits != 0) {
      const int lane = __builtin_ctz(bits);
      bits &= bits - 1;
      out->push_back(s + static_cast<uint32_t>(lane));
    }
  }
  FusedRangeScalar(filters, nf, s, end, out);
}

// Probe slot lists are size_t; the AVX2 variant gathers 4 slots per
// iteration through 64-bit indices. Only compiled in when size_t is the
// gather index width.
__attribute__((target("avx2"))) void FusedSelectAvx2(
    const CodeFilter* filters, size_t nf, const size_t* sel, size_t n,
    std::vector<uint32_t>* out) {
  __m128i want[kMaxSimdFilters];
  for (size_t i = 0; i < nf; ++i) {
    want[i] = _mm_set1_epi32(static_cast<int>(filters[i].code));
  }
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + k));
    __m128i m = _mm_cmpeq_epi32(
        _mm256_i64gather_epi32(
            reinterpret_cast<const int*>(filters[0].codes), idx, 4),
        want[0]);
    for (size_t i = 1; i < nf; ++i) {
      m = _mm_and_si128(
          m, _mm_cmpeq_epi32(
                 _mm256_i64gather_epi32(
                     reinterpret_cast<const int*>(filters[i].codes), idx, 4),
                 want[i]));
    }
    int bits = _mm_movemask_ps(_mm_castsi128_ps(m));
    while (bits != 0) {
      const int lane = __builtin_ctz(bits);
      bits &= bits - 1;
      out->push_back(static_cast<uint32_t>(sel[k + lane]));
    }
  }
  FusedSelectScalar(filters, nf, sel + k, n - k, out);
}

#endif  // SB_KERNELS_X86

}  // namespace

void FilterFusedRange(SimdMode mode, const CodeFilter* filters, size_t nf,
                      uint32_t begin, uint32_t end,
                      std::vector<uint32_t>* out) {
  if (nf == 0) {
    for (uint32_t s = begin; s < end; ++s) out->push_back(s);
    return;
  }
#ifdef SB_KERNELS_X86
  if (nf <= kMaxSimdFilters && end - begin >= kMinSimdInput) {
    if (mode == SimdMode::kAvx2) {
      FusedRangeAvx2(filters, nf, begin, end, out);
      return;
    }
    if (mode == SimdMode::kSse2) {
      FusedRangeSse2(filters, nf, begin, end, out);
      return;
    }
  }
#else
  (void)mode;
#endif
  FusedRangeScalar(filters, nf, begin, end, out);
}

void FilterFusedSelect(SimdMode mode, const CodeFilter* filters, size_t nf,
                       const size_t* sel, size_t n,
                       std::vector<uint32_t>* out) {
  if (nf == 0) {
    for (size_t k = 0; k < n; ++k) {
      out->push_back(static_cast<uint32_t>(sel[k]));
    }
    return;
  }
#ifdef SB_KERNELS_X86
  if (mode == SimdMode::kAvx2 && nf <= kMaxSimdFilters &&
      n >= kMinSimdSelect && sizeof(size_t) == 8) {
    FusedSelectAvx2(filters, nf, sel, n, out);
    return;
  }
#else
  (void)mode;
#endif
  // SSE2 has no gather; the slot-list shape stays scalar below AVX2.
  FusedSelectScalar(filters, nf, sel, n, out);
}

}  // namespace secureblox::engine
