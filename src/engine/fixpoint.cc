#include "engine/fixpoint.h"

#include <algorithm>
#include <set>
#include <tuple>

namespace secureblox::engine {

using datalog::PredId;
using datalog::Value;
using datalog::ValueKind;

namespace {

/// Marks groups as actively (re)computing for a scope; removes only the
/// ids it added so nested scopes compose.
class ActiveSetGuard {
 public:
  explicit ActiveSetGuard(std::unordered_set<int>* set) : set_(set) {}
  ActiveSetGuard(const ActiveSetGuard&) = delete;
  ActiveSetGuard& operator=(const ActiveSetGuard&) = delete;
  ~ActiveSetGuard() {
    for (int id : added_) set_->erase(id);
  }
  void Add(int id) {
    if (set_->insert(id).second) added_.push_back(id);
  }

 private:
  std::unordered_set<int>* set_;
  std::vector<int> added_;
};

}  // namespace

FixpointDriver::FixpointDriver(const RuleGraph* graph,
                               const std::vector<CompiledRule>* rules,
                               EvalContext* ctx, RelationStore* store,
                               FixpointHost* host,
                               const FixpointOptions* options)
    : graph_(*graph), rules_(*rules), ctx_(*ctx), store_(*store),
      host_(*host), options_(*options) {}

void FixpointDriver::Begin() {
  delta_.assign(graph_.groups().size(), {});
  neg_.assign(graph_.groups().size(), {});
  active_.clear();
  touched_.clear();
  stats_ = {};
}

bool FixpointDriver::EraseFromDeltaMap(DeltaMap* m, PredId pred,
                                       const Tuple& tuple) {
  auto it = m->find(pred);
  if (it == m->end()) return false;
  auto& vec = it->second;
  auto mid = std::remove(vec.begin(), vec.end(), tuple);
  if (mid == vec.end()) return false;
  vec.erase(mid, vec.end());
  if (vec.empty()) m->erase(it);
  return true;
}

void FixpointDriver::PushToDeltaMap(DeltaMap* m, PredId pred,
                                    const Tuple& tuple) {
  auto& vec = (*m)[pred];
  // Within a transaction a tuple is notified once per direction (set
  // semantics), so a vector ending in `tuple` means this call already
  // pushed it for another notification of the same group.
  if (!vec.empty() && vec.back() == tuple) return;
  vec.push_back(tuple);
}

void FixpointDriver::NotifyInsert(PredId pred, const Tuple& tuple) {
  touched_.insert(pred);
  for (int g : graph_.consumer_groups_of(pred)) {
    ChangeQueue& q = delta_[g];
    // Annihilation: the tuple left and came back before the group looked —
    // no net change, no downstream work (DRed's "rescued" case).
    if (EraseFromDeltaMap(&q.dels, pred, tuple)) {
      ++stats_.rescued;
      continue;
    }
    PushToDeltaMap(&q.adds, pred, tuple);
  }
  for (int g : graph_.negator_groups_of(pred)) {
    if (active_.count(g)) continue;  // being recomputed against this state
    ChangeQueue& q = neg_[g];
    if (!EraseFromDeltaMap(&q.dels, pred, tuple)) {
      PushToDeltaMap(&q.adds, pred, tuple);
    }
  }
}

void FixpointDriver::NotifyDelete(PredId pred, const Tuple& tuple) {
  touched_.insert(pred);
  for (int g : graph_.consumer_groups_of(pred)) {
    // A group's own erasure churn (lattice improvement replacing a value,
    // over-delete during its rederivation) must not re-queue it.
    if (active_.count(g)) continue;
    ChangeQueue& q = delta_[g];
    // The insert was never consumed: cancel it instead of cascading.
    if (EraseFromDeltaMap(&q.adds, pred, tuple)) continue;
    PushToDeltaMap(&q.dels, pred, tuple);
  }
  for (int g : graph_.negator_groups_of(pred)) {
    if (active_.count(g)) continue;
    ChangeQueue& q = neg_[g];
    if (!EraseFromDeltaMap(&q.adds, pred, tuple)) {
      PushToDeltaMap(&q.dels, pred, tuple);
    }
  }
}

bool FixpointDriver::HasPendingWork() const {
  for (size_t g = 0; g < delta_.size(); ++g) {
    if (!delta_[g].empty() || !neg_[g].empty()) return true;
  }
  return false;
}

bool FixpointDriver::HasRetractWork(int gid) const {
  return !delta_[gid].dels.empty() || !neg_[gid].empty();
}

bool FixpointDriver::HasDeltaFor(const CompiledRule& rule,
                                 const DeltaMap& delta) const {
  for (PredId p : rule.scan_preds) {
    auto it = delta.find(p);
    if (it != delta.end() && !it->second.empty()) return true;
  }
  return false;
}

bool FixpointDriver::TouchedAny(const CompiledRule& rule) const {
  for (PredId p : rule.scan_preds) {
    if (touched_.count(p)) return true;
  }
  return false;
}

Status FixpointDriver::Run() {
  // The budget bounds *new* work: tuples seeded before the run (base
  // updates) and tuples reseeded by group-local rederivation extend the
  // limit so routine maintenance of a large database never trips it.
  budget_limit_ = options_.max_derivations;
  for (const ChangeQueue& q : delta_) {
    for (const auto& [pred, tuples] : q.adds) budget_limit_ += tuples.size();
    for (const auto& [pred, tuples] : q.dels) budget_limit_ += tuples.size();
  }
  // Strata in order; repeat while cross-stratum feedback (multi-head rules
  // whose heads live in an earlier stratum) left unconsumed deltas. The
  // first pass always runs so stratified aggregates see erasures that left
  // no queued delta.
  bool first = true;
  while (first || HasPendingWork()) {
    first = false;
    for (int s = 0; s <= graph_.max_stratum(); ++s) {
      SB_RETURN_IF_ERROR(RunStratum(s));
    }
  }
  return Status::OK();
}

Status FixpointDriver::RunStratum(int stratum) {
  // Stratified aggregates recompute on stratum entry (their inputs are
  // complete); skipped entirely when nothing they read changed.
  for (int gid : graph_.groups_in_stratum(stratum)) {
    for (size_t idx : graph_.group(gid).rules) {
      const CompiledRule& rule = rules_[idx];
      if (!rule.agg.has_value() || graph_.lattice(idx)) continue;
      if (TouchedAny(rule)) {
        ++stats_.agg_recomputes;
        SB_RETURN_IF_ERROR(RecomputeAggregate(rule, /*lattice=*/false));
        SB_RETURN_IF_ERROR(CheckBudget(graph_.group(gid)));
      } else {
        ++stats_.agg_skipped;
      }
    }
  }

  // Group worklist in topological order, retractions ahead of the insert
  // rounds; a later group deriving into an earlier one (multi-head rules)
  // re-arms the scan.
  bool any = true;
  while (any) {
    any = false;
    for (int gid : graph_.groups_in_stratum(stratum)) {
      if (HasRetractWork(gid)) {
        any = true;
        SB_RETURN_IF_ERROR(ProcessRetractions(gid));
      }
      if (!delta_[gid].adds.empty()) {
        any = true;
        SB_RETURN_IF_ERROR(RunGroup(graph_.group(gid)));
      }
    }
  }
  return Status::OK();
}

Status FixpointDriver::ProcessRetractions(int gid) {
  const RuleGroup& group = graph_.group(gid);

  // Pure stratified-aggregate group: the full recompute (already armed via
  // touched_) subsumes retraction; run it now so a delete delta arriving
  // mid-stratum cannot leave a stale aggregate behind.
  bool all_agg = true;
  for (size_t idx : group.rules) {
    if (!rules_[idx].agg.has_value() || graph_.lattice(idx)) {
      all_agg = false;
      break;
    }
  }
  if (all_agg) {
    // A flipped negation probe never shows up in scan_preds (TouchedAny
    // cannot see it), so it forces the recompute on its own.
    bool flipped = !neg_[gid].empty();
    delta_[gid].dels.clear();
    neg_[gid].clear();
    for (size_t idx : group.rules) {
      const CompiledRule& rule = rules_[idx];
      if (!flipped && !TouchedAny(rule)) continue;
      ++stats_.agg_recomputes;
      SB_RETURN_IF_ERROR(RecomputeAggregate(rule, /*lattice=*/false));
      SB_RETURN_IF_ERROR(CheckBudget(group));
    }
    return Status::OK();
  }

  // Recursive groups and flipped negation probes cannot be maintained by
  // counting alone: rederive locally.
  if (group.recursive || !neg_[gid].empty()) return RederiveCluster(gid);

  // Counting path: enumerate destroyed instantiations, drop supports.
  while (!delta_[gid].dels.empty()) {
    DeltaMap dels = std::move(delta_[gid].dels);
    delta_[gid].dels.clear();
    ++stats_.rounds;
    for (size_t idx : group.rules) {
      const CompiledRule& rule = rules_[idx];
      if (HasDeltaFor(rule, dels)) {
        ++stats_.retract_firings;
        SB_RETURN_IF_ERROR(RunRetractVariants(rule, dels, gid));
      } else {
        ++stats_.firings_skipped;
      }
    }
  }
  return Status::OK();
}

Status FixpointDriver::RunGroup(const RuleGroup& group) {
  ActiveSetGuard guard(&active_);
  guard.Add(group.id);
  while (!delta_[group.id].adds.empty()) {
    DeltaMap delta = std::move(delta_[group.id].adds);
    delta_[group.id].adds.clear();
    ++stats_.rounds;
    for (size_t idx : group.rules) {
      const CompiledRule& rule = rules_[idx];
      if (rule.agg.has_value()) continue;
      if (HasDeltaFor(rule, delta)) {
        ++stats_.rule_firings;
        SB_RETURN_IF_ERROR(RunRuleVariants(rule, delta, group.id));
      } else {
        ++stats_.firings_skipped;
      }
    }
    // Lattice aggregates re-run after every round of their group.
    for (size_t idx : group.rules) {
      const CompiledRule& rule = rules_[idx];
      if (!rule.agg.has_value() || !graph_.lattice(idx)) continue;
      if (HasDeltaFor(rule, delta)) {
        ++stats_.agg_recomputes;
        SB_RETURN_IF_ERROR(RecomputeAggregate(rule, /*lattice=*/true));
      } else {
        ++stats_.agg_skipped;
      }
    }
    SB_RETURN_IF_ERROR(CheckBudget(group));
  }
  return Status::OK();
}

Status FixpointDriver::CheckBudget(const RuleGroup& group) {
  if (stats_.derivations <= budget_limit_) return Status::OK();
  std::string culprits;
  for (size_t idx : group.rules) {
    const CompiledRule& rule = rules_[idx];
    if (rule.agg.has_value() ||
        HasDeltaFor(rule, delta_[group.id].adds) || TouchedAny(rule)) {
      if (!culprits.empty()) culprits += "; ";
      culprits += rule.source.ToString();
    }
  }
  return Status::Internal(
      "fixpoint exceeded derivation budget (" +
      std::to_string(options_.max_derivations) + " tuples) in stratum " +
      std::to_string(group.stratum) + ", rule group " +
      std::to_string(group.id) +
      (culprits.empty() ? "" : "; rules still producing deltas: " + culprits));
}

Status FixpointDriver::InstantiateHeads(
    const CompiledRule& rule, Env& env,
    std::vector<std::pair<PredId, Tuple>>* pending) {
  std::vector<int> bound_here;
  if (!rule.existential_slots.empty()) {
    SB_RETURN_IF_ERROR(host_.BindExistentials(rule, &env, &bound_here));
  }
  for (const CompiledHead& head : rule.heads) {
    Tuple t;
    t.reserve(head.args.size());
    for (const ArgPat& p : head.args) {
      if (p.kind == ArgPat::Kind::kConst) {
        t.push_back(p.constant);
      } else {
        t.push_back(*env[p.slot]);
      }
    }
    pending->emplace_back(head.pred, std::move(t));
  }
  for (int s : bound_here) env[s].reset();
  return Status::OK();
}

Status FixpointDriver::RunRuleVariants(const CompiledRule& rule,
                                       const DeltaMap& delta, int gid) {
  Executor executor(&ctx_, &store_);
  std::vector<std::pair<PredId, Tuple>> pending;
  // Tuples born earlier in the current round (queued for the next one):
  // enumerating against them now would count their instantiations twice.
  const DeltaMap& next = delta_[gid].adds;
  const int n = rule.num_scan_occurrences;

  for (int occ = 0; occ < n; ++occ) {
    auto it = delta.find(rule.scan_preds[occ]);
    if (it == delta.end() || it->second.empty()) continue;
    // Mixed semi-naïve variant: occurrence `occ` reads the delta, earlier
    // occurrences pretend the delta has not arrived, and every occurrence
    // hides tuples born this round — each new instantiation is enumerated
    // (and its head support counted) exactly once.
    std::vector<OccView> views(n);
    std::vector<TupleSet> excl(n);
    views[occ].only = &it->second;
    for (int j = 0; j < n; ++j) {
      if (j == occ) continue;
      PredId q = rule.scan_preds[j];
      TupleSet& e = excl[j];
      if (j < occ) {
        auto dj = delta.find(q);
        if (dj != delta.end()) e.insert(dj->second.begin(), dj->second.end());
      }
      auto nj = next.find(q);
      if (nj != next.end()) e.insert(nj->second.begin(), nj->second.end());
      if (!e.empty()) views[j].exclude = &e;
    }
    DeltaOverride override;
    override.views = &views;
    Env env(rule.num_slots);
    SB_RETURN_IF_ERROR(executor.Run(
        rule.steps, &env, &override, [&](Env& e) -> Status {
          return InstantiateHeads(rule, e, &pending);
        }));
  }

  for (auto& [pred, tuple] : pending) {
    SB_ASSIGN_OR_RETURN(bool inserted, host_.InsertHeadTuple(pred, tuple));
    if (inserted) ++stats_.derivations;
  }
  return Status::OK();
}

Status FixpointDriver::RunRetractVariants(const CompiledRule& rule,
                                          const DeltaMap& dels, int gid) {
  Executor executor(&ctx_, &store_);
  std::vector<std::pair<PredId, Tuple>> pending;
  // Insert deltas this group has not consumed yet: their instantiations
  // were never counted, so retraction must not see those tuples either.
  const DeltaMap& unconsumed = delta_[gid].adds;
  const int n = rule.num_scan_occurrences;

  for (int occ = 0; occ < n; ++occ) {
    auto it = dels.find(rule.scan_preds[occ]);
    if (it == dels.end() || it->second.empty()) continue;
    // Destroyed-instantiation variant: occurrence `occ` reads the erased
    // tuples; later occurrences see them restored (the pre-delete state),
    // earlier ones read the post-delete relation — each destroyed
    // instantiation is enumerated exactly once.
    std::vector<OccView> views(n);
    std::vector<TupleSet> excl(n);
    views[occ].only = &it->second;
    for (int j = 0; j < n; ++j) {
      if (j == occ) continue;
      PredId q = rule.scan_preds[j];
      if (j > occ) {
        auto dj = dels.find(q);
        if (dj != dels.end()) views[j].extra = &dj->second;
      }
      auto uj = unconsumed.find(q);
      if (uj != unconsumed.end() && !uj->second.empty()) {
        excl[j].insert(uj->second.begin(), uj->second.end());
        views[j].exclude = &excl[j];
      }
    }
    DeltaOverride override;
    override.views = &views;
    Env env(rule.num_slots);
    SB_RETURN_IF_ERROR(executor.Run(
        rule.steps, &env, &override, [&](Env& e) -> Status {
          return InstantiateHeads(rule, e, &pending);
        }));
  }

  for (auto& [pred, tuple] : pending) {
    ++stats_.retractions;
    SB_ASSIGN_OR_RETURN(bool erased, host_.RetractSupport(pred, tuple));
    if (erased) {
      ++stats_.deleted;
    } else {
      ++stats_.rescued;
    }
  }
  return Status::OK();
}

Status FixpointDriver::RederiveCluster(int gid) {
  ++stats_.group_rederives;
  // Closure over shared head predicates: every rule deriving an
  // over-deleted predicate must re-fire, whichever group it lives in.
  std::set<int> cluster{gid};
  std::set<PredId> cpreds;
  std::vector<int> work{gid};
  while (!work.empty()) {
    int g = work.back();
    work.pop_back();
    for (size_t idx : graph_.group(g).rules) {
      for (PredId h : HeadPreds(rules_[idx])) {
        if (!cpreds.insert(h).second) continue;
        for (size_t r : graph_.producers_of(h)) {
          int pg = graph_.group_of_rule(r);
          if (cluster.insert(pg).second) work.push_back(pg);
        }
      }
    }
  }

  ActiveSetGuard guard(&active_);
  for (int g : cluster) guard.Add(g);
  // Pending deltas and flips for cluster members are superseded by the
  // full local recompute.
  for (int g : cluster) {
    delta_[g].clear();
    neg_[g].clear();
  }
  for (PredId p : cpreds) {
    SB_ASSIGN_OR_RETURN(uint64_t over_deleted, host_.OverDeleteDerived(p));
    // Rederiving what was just over-deleted is not runaway work.
    budget_limit_ += over_deleted;
  }

  // Reseed each cluster group from the full extension of its body
  // predicates — the group-local analogue of DRed's rederivation pass.
  for (int g : cluster) {
    std::set<PredId> seen;
    for (size_t idx : graph_.group(g).rules) {
      for (PredId p : rules_[idx].scan_preds) {
        if (!seen.insert(p).second) continue;
        Relation* rel = store_.GetRelation(p);
        if (rel == nullptr || rel->empty()) continue;
        std::vector<Tuple>& vec = delta_[g].adds[p];
        vec = rel->tuples();
        stats_.rederive_seeded += vec.size();
        budget_limit_ += vec.size();
      }
    }
  }

  // Local fixpoint over the cluster: strata in order, groups topological
  // within. A stratified aggregate whose head was over-deleted recomputes
  // when its inputs have a pending delta — the seed always provides one,
  // so the first pass restores the output and quiet passes skip the scan.
  std::vector<int> order(cluster.begin(), cluster.end());
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return std::make_pair(graph_.group(a).stratum, a) <
           std::make_pair(graph_.group(b).stratum, b);
  });
  bool any = true;
  while (any) {
    any = false;
    for (int g : order) {
      const RuleGroup& grp = graph_.group(g);
      for (size_t idx : grp.rules) {
        const CompiledRule& rule = rules_[idx];
        if (rule.agg.has_value() && !graph_.lattice(idx) &&
            HasDeltaFor(rule, delta_[g].adds)) {
          ++stats_.agg_recomputes;
          SB_RETURN_IF_ERROR(RecomputeAggregate(rule, /*lattice=*/false));
        }
      }
      if (!delta_[g].adds.empty()) {
        any = true;
        SB_RETURN_IF_ERROR(RunGroup(grp));
      }
    }
  }
  return Status::OK();
}

Status FixpointDriver::RecomputeAggregate(const CompiledRule& rule,
                                          bool lattice) {
  const CompiledAgg& agg = *rule.agg;
  Executor executor(&ctx_, &store_);

  // Group body bindings by the head keys.
  std::map<Tuple, int64_t> groups;
  Env env(rule.num_slots);
  SB_RETURN_IF_ERROR(executor.Run(
      rule.steps, &env, nullptr, [&](Env& e) -> Status {
        Tuple key;
        for (const ArgPat& p : agg.key_args) {
          key.push_back(p.kind == ArgPat::Kind::kConst ? p.constant
                                                       : *e[p.slot]);
        }
        int64_t v = 0;
        if (agg.input_slot >= 0) {
          const Value& val = *e[agg.input_slot];
          if (val.kind() != ValueKind::kInt) {
            return Status::TypeError("aggregate input is not an integer");
          }
          v = val.AsInt();
        }
        auto [it, fresh] = groups.try_emplace(std::move(key), 0);
        switch (agg.func) {
          case datalog::AggFunc::kMin:
            it->second = fresh ? v : std::min(it->second, v);
            break;
          case datalog::AggFunc::kMax:
            it->second = fresh ? v : std::max(it->second, v);
            break;
          case datalog::AggFunc::kSum:
            it->second += v;
            break;
          case datalog::AggFunc::kCount:
            it->second += 1;
            break;
        }
        return Status::OK();
      }));

  Relation* rel = store_.GetRelation(agg.head_pred);

  if (!lattice) {
    // Full recompute: drop stale groups first.
    std::vector<Tuple> existing = rel->tuples();
    for (const Tuple& t : existing) {
      Tuple keys(t.begin(), t.end() - 1);
      if (!groups.count(keys)) {
        SB_RETURN_IF_ERROR(host_.EraseTuple(agg.head_pred, t));
      }
    }
  }

  for (const auto& [keys, v] : groups) {
    Tuple desired = keys;
    desired.push_back(Value::Int(v));
    const Tuple* current = rel->LookupByKeys(keys);
    if (current != nullptr) {
      int64_t cur = current->back().AsInt();
      bool improve;
      if (lattice) {
        improve = agg.func == datalog::AggFunc::kMin ? v < cur : v > cur;
      } else {
        improve = v != cur;
      }
      if (!improve) continue;
      SB_RETURN_IF_ERROR(host_.EraseTuple(agg.head_pred, *current));
    }
    SB_ASSIGN_OR_RETURN(bool inserted,
                        host_.InsertDerivedTuple(agg.head_pred, desired));
    if (inserted) ++stats_.derivations;
  }
  return Status::OK();
}

}  // namespace secureblox::engine
