#include "engine/fixpoint.h"

#include <algorithm>
#include <set>
#include <thread>
#include <tuple>

#include "engine/planner.h"

namespace secureblox::engine {

using datalog::PredId;
using datalog::Value;
using datalog::ValueKind;

namespace {

/// Marks groups as actively (re)computing for a scope; removes only the
/// ids it added so nested scopes compose.
class ActiveSetGuard {
 public:
  explicit ActiveSetGuard(std::unordered_set<int>* set) : set_(set) {}
  ActiveSetGuard(const ActiveSetGuard&) = delete;
  ActiveSetGuard& operator=(const ActiveSetGuard&) = delete;
  ~ActiveSetGuard() {
    for (int id : added_) set_->erase(id);
  }
  void Add(int id) {
    if (set_->insert(id).second) added_.push_back(id);
  }

 private:
  std::unordered_set<int>* set_;
  std::vector<int> added_;
};

/// Delta rows per enumeration window. Small enough that a single rule
/// firing over a large round spreads across every worker; large enough
/// that task dispatch overhead stays negligible against the join work per
/// row. With sharded storage a delta is first partitioned on the target
/// relation's shard boundaries and each shard partition is then windowed.
constexpr size_t kChunkTuples = 64;
/// Cap on windows per (rule, occurrence, shard) partition. Both constants
/// are fixed — never derived from the thread count — so the work
/// decomposition, and with it the merge order, is identical at every
/// `threads` setting.
constexpr size_t kMaxChunksPerVariant = 32;

size_t ChunkCountFor(size_t rows) {
  size_t chunks = (rows + kChunkTuples - 1) / kChunkTuples;
  return std::max<size_t>(1, std::min(chunks, kMaxChunksPerVariant));
}

}  // namespace

/// One staged enumeration: a semi-naïve variant of one rule restricted to
/// a chunk of the delta at one occurrence, with a private result buffer.
/// Workers only ever touch `chunk`, the shared read-only views, and their
/// own `pending`/`status`; the wave barrier publishes the results to the
/// merge phase.
struct FixpointDriver::EnumTask {
  const CompiledRule* rule = nullptr;
  /// Step list to enumerate: the rule's planned variant when the planner
  /// produced one (interior pointer into the rule's RulePlanCache, stable
  /// for the task's lifetime), the baseline rule->steps otherwise.
  const std::vector<Step>* steps = nullptr;
  size_t rule_idx = 0;
  int gid = 0;
  bool retract = false;
  int occ = 0;
  /// Shared across the chunks of one variant (read-only while running).
  std::shared_ptr<std::vector<OccView>> base_views;
  std::shared_ptr<std::vector<TupleSet>> excl;
  /// Per-shard partition of the variant's delta as index lists into the
  /// round snapshot's delta vector — segment slices, no tuple copies
  /// (shared by the variant's tasks; null when the target relation has one
  /// shard and the snapshot's vector is windowed directly).
  std::shared_ptr<std::vector<std::vector<uint32_t>>> shard_parts;
  /// The chunk's delta source: the occurrence's whole delta vector (owned
  /// by the round snapshot, which outlives the task), read through
  /// `only_index` when the chunk covers one shard's slice of it, and this
  /// chunk's [lo, hi) window (over only_index when set, over `only`
  /// otherwise).
  const std::vector<Tuple>* only = nullptr;
  const std::vector<uint32_t>* only_index = nullptr;
  size_t lo = 0;
  size_t hi = SIZE_MAX;
  /// Instantiated head tuples (insert) / destroyed instantiations
  /// (retract), in enumeration order.
  std::vector<std::pair<PredId, Tuple>> pending;
  Status status = Status::OK();
};

FixpointDriver::FixpointDriver(const RuleGraph* graph,
                               const std::vector<CompiledRule>* rules,
                               EvalContext* ctx, RelationStore* store,
                               FixpointHost* host,
                               const FixpointOptions* options)
    : graph_(*graph), rules_(*rules), ctx_(*ctx), store_(*store),
      host_(*host), options_(*options) {}

FixpointDriver::~FixpointDriver() = default;

void FixpointDriver::Begin() {
  delta_.assign(graph_.groups().size(), {});
  neg_.assign(graph_.groups().size(), {});
  active_.clear();
  touched_.clear();
  stats_ = {};
  plans_built_at_begin_ =
      planner_ != nullptr ? planner_->plans_built() : 0;
}

bool FixpointDriver::EraseFromDeltaMap(DeltaMap* m, PredId pred,
                                       const Tuple& tuple) {
  auto it = m->find(pred);
  if (it == m->end()) return false;
  auto& vec = it->second;
  auto mid = std::remove(vec.begin(), vec.end(), tuple);
  if (mid == vec.end()) return false;
  vec.erase(mid, vec.end());
  if (vec.empty()) m->erase(it);
  return true;
}

void FixpointDriver::PushToDeltaMap(DeltaMap* m, PredId pred,
                                    const Tuple& tuple) {
  auto& vec = (*m)[pred];
  // Within a transaction a tuple is notified once per direction (set
  // semantics), so a vector ending in `tuple` means this call already
  // pushed it for another notification of the same group.
  if (!vec.empty() && vec.back() == tuple) return;
  vec.push_back(tuple);
}

void FixpointDriver::NotifyInsert(PredId pred, const Tuple& tuple) {
  touched_.insert(pred);
  for (int g : graph_.consumer_groups_of(pred)) {
    ChangeQueue& q = delta_[g];
    // Annihilation: the tuple left and came back before the group looked —
    // no net change, no downstream work (DRed's "rescued" case).
    if (EraseFromDeltaMap(&q.dels, pred, tuple)) {
      ++stats_.rescued;
      continue;
    }
    PushToDeltaMap(&q.adds, pred, tuple);
  }
  for (int g : graph_.negator_groups_of(pred)) {
    if (active_.count(g)) continue;  // being recomputed against this state
    ChangeQueue& q = neg_[g];
    if (!EraseFromDeltaMap(&q.dels, pred, tuple)) {
      PushToDeltaMap(&q.adds, pred, tuple);
    }
  }
}

void FixpointDriver::NotifyDelete(PredId pred, const Tuple& tuple) {
  touched_.insert(pred);
  for (int g : graph_.consumer_groups_of(pred)) {
    // A group's own erasure churn (lattice improvement replacing a value,
    // over-delete during its rederivation) must not re-queue it.
    if (active_.count(g)) continue;
    ChangeQueue& q = delta_[g];
    // The insert was never consumed: cancel it instead of cascading.
    if (EraseFromDeltaMap(&q.adds, pred, tuple)) continue;
    PushToDeltaMap(&q.dels, pred, tuple);
  }
  for (int g : graph_.negator_groups_of(pred)) {
    if (active_.count(g)) continue;
    ChangeQueue& q = neg_[g];
    if (!EraseFromDeltaMap(&q.adds, pred, tuple)) {
      PushToDeltaMap(&q.dels, pred, tuple);
    }
  }
}

bool FixpointDriver::HasPendingWork() const {
  for (size_t g = 0; g < delta_.size(); ++g) {
    if (!delta_[g].empty() || !neg_[g].empty()) return true;
  }
  return false;
}

bool FixpointDriver::HasRetractWork(int gid) const {
  return !delta_[gid].dels.empty() || !neg_[gid].empty();
}

bool FixpointDriver::HasDeltaFor(const CompiledRule& rule,
                                 const DeltaMap& delta) const {
  for (PredId p : rule.scan_preds) {
    auto it = delta.find(p);
    if (it != delta.end() && !it->second.empty()) return true;
  }
  return false;
}

bool FixpointDriver::TouchedAny(const CompiledRule& rule) const {
  for (PredId p : rule.scan_preds) {
    if (touched_.count(p)) return true;
  }
  return false;
}

Status FixpointDriver::Run() {
  // The budget bounds *new* work: tuples seeded before the run (base
  // updates) and tuples reseeded by group-local rederivation extend the
  // limit so routine maintenance of a large database never trips it.
  budget_limit_ = options_.max_derivations;
  for (const ChangeQueue& q : delta_) {
    for (const auto& [pred, tuples] : q.adds) budget_limit_ += tuples.size();
    for (const auto& [pred, tuples] : q.dels) budget_limit_ += tuples.size();
  }
  // Strata in order; repeat while cross-stratum feedback (multi-head rules
  // whose heads live in an earlier stratum) left unconsumed deltas. The
  // first pass always runs so stratified aggregates see erasures that left
  // no queued delta.
  bool first = true;
  while (first || HasPendingWork()) {
    first = false;
    for (int s = 0; s <= graph_.max_stratum(); ++s) {
      SB_RETURN_IF_ERROR(RunStratum(s));
    }
  }
  if (planner_ != nullptr) {
    stats_.plans_built = planner_->plans_built() - plans_built_at_begin_;
  }
  return Status::OK();
}

Status FixpointDriver::RunStratum(int stratum) {
  // Stratified aggregates recompute on stratum entry (their inputs are
  // complete); skipped entirely when nothing they read changed.
  for (int gid : graph_.groups_in_stratum(stratum)) {
    for (size_t idx : graph_.group(gid).rules) {
      const CompiledRule& rule = rules_[idx];
      if (!rule.agg.has_value() || graph_.lattice(idx)) continue;
      if (TouchedAny(rule)) {
        ++stats_.agg_recomputes;
        SB_RETURN_IF_ERROR(RecomputeAggregate(rule, /*lattice=*/false));
        SB_RETURN_IF_ERROR(CheckBudget(graph_.group(gid)));
      } else {
        ++stats_.agg_skipped;
      }
    }
  }

  // Sweep the stratum's groups in topological order, retractions ahead of
  // the insert rounds. Each pending group anchors a wave of concurrently
  // evaluable groups (CollectWave) that is drained to its local fixpoint;
  // a later group deriving into an earlier one re-arms the scan.
  const std::vector<int>& order = graph_.groups_in_stratum(stratum);
  bool any = true;
  while (any) {
    any = false;
    for (size_t i = 0; i < order.size(); ++i) {
      int gid = order[i];
      if (HasRetractWork(gid)) {
        any = true;
        SB_RETURN_IF_ERROR(ProcessRetractions(gid));
      }
      if (!delta_[gid].adds.empty()) {
        any = true;
        SB_RETURN_IF_ERROR(RunWave(CollectWave(order, i)));
      }
    }
  }
  return Status::OK();
}

std::vector<int> FixpointDriver::CollectWave(const std::vector<int>& order,
                                             size_t from) const {
  std::vector<int> wave{order[from]};
  const RuleGroup& anchor = graph_.group(order[from]);
  // Predicates owned by pending groups seen so far. A later group joins
  // the wave only when it touches none of them — it neither reads nor
  // writes anything a pending predecessor or wave member does, so its
  // predecessors are quiescent and its evaluation commutes with theirs.
  std::unordered_set<PredId> taken(anchor.footprint.begin(),
                                   anchor.footprint.end());
  for (size_t j = from + 1; j < order.size(); ++j) {
    int gid = order[j];
    bool pending = HasRetractWork(gid) || !delta_[gid].adds.empty();
    if (!pending) continue;
    const RuleGroup& g = graph_.group(gid);
    bool disjoint = true;
    for (PredId p : g.footprint) {
      if (taken.count(p)) {
        disjoint = false;
        break;
      }
    }
    // Retract work must run before insert rounds, so such groups only
    // block; the sweep reaches them next.
    if (disjoint && !HasRetractWork(gid)) wave.push_back(gid);
    taken.insert(g.footprint.begin(), g.footprint.end());
  }
  return wave;
}

void FixpointDriver::EnsureRelations() {
  if (relations_ensured_) return;
  relations_ensured_ = true;
  // The rule set is fixed for this driver's lifetime (Recompile builds a
  // fresh driver), so one pass covers every predicate a worker can read.
  for (const CompiledRule& rule : rules_) {
    for (const Step& s : rule.steps) {
      if (s.kind == Step::Kind::kScan || s.kind == Step::Kind::kLookup ||
          s.kind == Step::Kind::kNegCheck) {
        store_.GetRelation(s.pred);
      }
    }
  }
}

void FixpointDriver::WarmIndexes(const CompiledRule& rule, size_t rule_idx) {
  if (probe_masks_.size() < rules_.size()) {
    probe_masks_.resize(rules_.size());
    probe_masks_ready_.resize(rules_.size(), false);
  }
  if (!probe_masks_ready_[rule_idx]) {
    probe_masks_ready_[rule_idx] = true;
    // Bound-column masks are precomputed per step by the compiler
    // (ComputeProbeInfo) — exactly what Executor::RunFrom probes with.
    for (const Step& s : rule.steps) {
      if (s.kind != Step::Kind::kScan && s.kind != Step::Kind::kNegCheck) {
        continue;
      }
      if (s.probe_mask != 0) {
        probe_masks_[rule_idx].emplace_back(s.pred, s.probe_mask);
      }
    }
  }
  for (const auto& [pred, mask] : probe_masks_[rule_idx]) {
    Relation* rel = store_.GetRelation(pred);
    if (rel != nullptr) rel->EnsureIndex(mask);
  }
}

void FixpointDriver::BuildVariantViews(const CompiledRule& rule,
                                       const DeltaMap& delta,
                                       const DeltaMap& unconsumed, int occ,
                                       bool retract,
                                       std::vector<OccView>* views,
                                       std::vector<TupleSet>* excl) {
  const int n = rule.num_scan_occurrences;
  for (int j = 0; j < n; ++j) {
    if (j == occ) continue;
    PredId q = rule.scan_preds[j];
    TupleSet& e = (*excl)[j];
    if (!retract) {
      // Mixed semi-naïve insert variant: occurrence `occ` reads the
      // delta, earlier occurrences pretend it has not arrived, and every
      // occurrence hides unconsumed tuples born this round — each new
      // instantiation is enumerated (and its head support counted)
      // exactly once.
      if (j < occ) {
        auto dj = delta.find(q);
        if (dj != delta.end()) e.insert(dj->second.begin(), dj->second.end());
      }
    } else {
      // Destroyed-instantiation variant: occurrence `occ` reads the
      // erased tuples; later occurrences see them restored (the
      // pre-delete state), earlier ones read the post-delete relation —
      // each destroyed instantiation is enumerated exactly once.
      if (j > occ) {
        auto dj = delta.find(q);
        if (dj != delta.end()) (*views)[j].extra = &dj->second;
      }
    }
    auto uj = unconsumed.find(q);
    if (uj != unconsumed.end() && !uj->second.empty()) {
      e.insert(uj->second.begin(), uj->second.end());
    }
    if (!e.empty()) (*views)[j].exclude = &e;
  }
}

void FixpointDriver::StageVariantTasks(
    const CompiledRule& rule, size_t rule_idx, int gid, const DeltaMap& delta,
    bool retract, std::vector<std::unique_ptr<EnumTask>>* tasks) {
  // Insert deltas this group has not consumed yet (meaningful on the
  // retract path; always empty during a wave round, whose snapshot just
  // drained the queue). Copied into the exclude sets so workers never read
  // the live queue.
  const DeltaMap& unconsumed = delta_[gid].adds;
  const int n = rule.num_scan_occurrences;

  for (int occ = 0; occ < n; ++occ) {
    auto it = delta.find(rule.scan_preds[occ]);
    if (it == delta.end() || it->second.empty()) continue;
    // Plan (or fetch the cached plan for) this variant, and warm exactly
    // the indexes its probes hit — still on the coordinating thread, so
    // plan building and stats seeding stay deterministic. One plan serves
    // both the insert and the retract direction of a variant: the step
    // order is cardinality-driven, the delta routing is per occurrence.
    const std::vector<Step>* steps = &rule.steps;
    ExecPlanner* pl = planner();
    const VariantPlan* vp = pl != nullptr ? pl->PlanFor(rule, occ) : nullptr;
    if (vp != nullptr) {
      steps = &vp->steps;
      WarmPlanMasks(*vp);
    } else {
      WarmIndexes(rule, rule_idx);
    }
    WarmScanRuns(*steps);
    auto excl = std::make_shared<std::vector<TupleSet>>(n);
    auto views = std::make_shared<std::vector<OccView>>(n);
    BuildVariantViews(rule, delta, unconsumed, occ, retract, views.get(),
                      excl.get());
    // Chunks are cut on the delta relation's shard boundaries: one
    // partition per shard (relative delta order preserved within each),
    // windowed so a huge shard still spreads across workers. Staging order
    // — and with it the merge order — is (occ, shard, window). With one
    // shard the round snapshot's vector is windowed directly, exactly the
    // pre-shard decomposition.
    auto stage_windows =
        [&](const std::vector<Tuple>* source,
            const std::vector<uint32_t>* index,
            const std::shared_ptr<std::vector<std::vector<uint32_t>>>&
                parts) {
          const size_t rows = index != nullptr ? index->size()
                                               : source->size();
          const size_t chunks = ChunkCountFor(rows);
          for (size_t c = 0; c < chunks; ++c) {
            auto task = std::make_unique<EnumTask>();
            task->rule = &rule;
            task->steps = steps;
            task->rule_idx = rule_idx;
            task->gid = gid;
            task->retract = retract;
            task->occ = occ;
            task->base_views = views;
            task->excl = excl;
            task->shard_parts = parts;
            task->only = source;
            task->only_index = index;
            task->lo = c * rows / chunks;
            task->hi = (c + 1) * rows / chunks;
            tasks->push_back(std::move(task));
          }
        };
    const std::vector<Tuple>& only = it->second;
    Relation* rel = store_.GetRelation(rule.scan_preds[occ]);
    const size_t nshards = rel != nullptr ? rel->shard_count() : 1;
    if (nshards <= 1) {
      stage_windows(&only, nullptr, nullptr);
    } else {
      // Segment slices: partition the delta into per-shard index lists
      // over the snapshot's one vector (relative order preserved within
      // each shard) instead of materializing per-shard tuple copies. The
      // partition sizes — and with them the window decomposition and merge
      // order — are exactly those of the copying layout.
      auto parts =
          std::make_shared<std::vector<std::vector<uint32_t>>>(nshards);
      for (size_t k = 0; k < only.size(); ++k) {
        (*parts)[rel->ShardOf(only[k])].push_back(static_cast<uint32_t>(k));
      }
      for (size_t s = 0; s < nshards; ++s) {
        if ((*parts)[s].empty()) continue;
        stage_windows(&only, &(*parts)[s], parts);
      }
    }
  }
}

ExecPlanner* FixpointDriver::planner() {
  // Checked live (not latched): benches and tests flip
  // FixpointOptions::plan between transactions for A/B runs.
  if (!options_.plan) return nullptr;
  if (planner_ == nullptr) {
    planner_ =
        std::make_unique<ExecPlanner>(ctx_.catalog, &store_, &options_);
  }
  return planner_.get();
}

void FixpointDriver::WarmPlanMasks(const VariantPlan& plan) {
  for (const auto& [pred, mask] : plan.probe_masks) {
    Relation* rel = store_.GetRelation(pred);
    if (rel != nullptr) rel->EnsureIndex(mask);
  }
}

void FixpointDriver::WarmScanRuns(const std::vector<Step>& steps) {
  for (const Step& s : steps) {
    // Only a planner-built scan-all step with exactly one bound column
    // takes the executor's sorted-run path; kAuto steps with bound
    // columns always probe an index instead.
    if (s.kind != Step::Kind::kScan || s.probe != Step::Probe::kScanAll ||
        s.key_cols.size() != 1) {
      continue;
    }
    Relation* rel = store_.GetRelation(s.pred);
    if (rel != nullptr && rel->columnar()) {
      rel->EnsureSortedRuns(static_cast<size_t>(s.key_cols[0]));
    }
  }
}

WorkerPool* FixpointDriver::pool() {
  int want = options_.threads;
  if (want == 0) {
    want = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  if (want <= 1) return nullptr;
  if (pool_ == nullptr || pool_->total_threads() != want) {
    pool_ = std::make_unique<WorkerPool>(want);
  }
  return pool_.get();
}

Status FixpointDriver::RunStagedTasks(
    std::vector<std::unique_ptr<EnumTask>>* tasks) {
  if (tasks->empty()) return Status::OK();
  stats_.parallel_tasks += tasks->size();
  auto run_one = [this](EnumTask& t) {
    // Views are assembled per execution: the base is shared read-only, the
    // occurrence slot points at this task's chunk of the delta.
    std::vector<OccView> views = *t.base_views;
    views[t.occ].only = t.only;
    views[t.occ].only_index = t.only_index;
    views[t.occ].only_begin = t.lo;
    views[t.occ].only_end = t.hi;
    DeltaOverride override;
    override.views = &views;
    Executor executor(&ctx_, &store_, ResolveSimdMode(options_.simd));
    Env env(t.rule->num_slots);
    t.status = executor.Run(
        *t.steps, &env, &override, [&](Env& e) -> Status {
          return InstantiateHeads(*t.rule, e, &t.pending);
        });
  };
  WorkerPool* p = pool();
  if (p == nullptr || tasks->size() == 1) {
    for (auto& t : *tasks) run_one(*t);
  } else {
    std::vector<std::function<void()>> fns;
    fns.reserve(tasks->size());
    for (auto& t : *tasks) {
      fns.push_back([&run_one, task = t.get()] { run_one(*task); });
    }
    p->Run(fns);
  }
  for (const auto& t : *tasks) {
    SB_RETURN_IF_ERROR(t->status);
  }
  return Status::OK();
}

Status FixpointDriver::ApplyStagedTasks(
    std::vector<std::unique_ptr<EnumTask>>& tasks, size_t begin, size_t end) {
  // Pre-size the target relations from the staged batch so the hot insert
  // loop never rehashes mid-round.
  std::map<PredId, size_t> incoming;
  for (size_t i = begin; i < end; ++i) {
    if (tasks[i]->retract) continue;
    for (const auto& [pred, tuple] : tasks[i]->pending) ++incoming[pred];
  }
  for (const auto& [pred, count] : incoming) {
    Relation* rel = store_.GetRelation(pred);
    if (rel != nullptr) rel->Reserve(rel->size() + count);
  }

  for (size_t i = begin; i < end; ++i) {
    EnumTask& t = *tasks[i];
    if (!t.retract) {
      for (auto& [pred, tuple] : t.pending) {
        SB_ASSIGN_OR_RETURN(bool inserted, host_.InsertHeadTuple(pred, tuple));
        if (inserted) ++stats_.derivations;
      }
    } else {
      for (auto& [pred, tuple] : t.pending) {
        ++stats_.retractions;
        SB_ASSIGN_OR_RETURN(bool erased, host_.RetractSupport(pred, tuple));
        if (erased) {
          ++stats_.deleted;
        } else {
          ++stats_.rescued;
        }
      }
    }
  }
  return Status::OK();
}

Status FixpointDriver::RunWave(const std::vector<int>& wave) {
  ActiveSetGuard guard(&active_);
  for (int gid : wave) guard.Add(gid);
  ++stats_.waves;
  EnsureRelations();

  while (true) {
    // Snapshot each member's queued insert delta: one round per member.
    // Members are mutually independent, so draining them together is
    // round-for-round identical to draining each in turn.
    std::vector<std::pair<int, DeltaMap>> rounds;
    for (int gid : wave) {
      if (delta_[gid].adds.empty()) continue;
      rounds.emplace_back(gid, std::move(delta_[gid].adds));
      delta_[gid].adds.clear();
      ++stats_.rounds;
    }
    if (rounds.empty()) return Status::OK();

    // Enumeration phase: chunked semi-naïve variants of every
    // parallel-safe rule with a delta, run against the frozen pre-round
    // state. Nothing mutates the database until the merge phase, so the
    // tasks are pure reads staging into private buffers. Each rule's
    // tasks are contiguous; `staged` records the range for the merge.
    std::vector<std::unique_ptr<EnumTask>> tasks;
    std::map<std::pair<int, size_t>, std::pair<size_t, size_t>> staged;
    for (auto& [gid, delta] : rounds) {
      for (size_t idx : graph_.group(gid).rules) {
        const CompiledRule& rule = rules_[idx];
        if (rule.agg.has_value()) continue;
        if (!HasDeltaFor(rule, delta)) {
          ++stats_.firings_skipped;
          continue;
        }
        ++stats_.rule_firings;
        if (rule.parallel_safe) {
          size_t begin = tasks.size();
          StageVariantTasks(rule, idx, gid, delta, /*retract=*/false,
                            &tasks);
          staged[{gid, idx}] = {begin, tasks.size()};
        }
      }
    }
    SB_RETURN_IF_ERROR(RunStagedTasks(&tasks));

    // Merge phase: strictly sequential and in a fixed order — wave
    // (topological) group order, install-order rules, staged chunk order —
    // so insertion order, entity interning, and FD-conflict detection are
    // reproducible at every thread count.
    for (auto& [gid, delta] : rounds) {
      const RuleGroup& group = graph_.group(gid);
      for (size_t idx : group.rules) {
        const CompiledRule& rule = rules_[idx];
        if (rule.agg.has_value()) continue;
        if (!HasDeltaFor(rule, delta)) continue;
        if (rule.parallel_safe) {
          const auto& [begin, end] = staged.at({gid, idx});
          SB_RETURN_IF_ERROR(ApplyStagedTasks(tasks, begin, end));
        } else {
          // Side effects (head existentials, thread-unsafe builtins):
          // classic sequential evaluation against the live state.
          SB_RETURN_IF_ERROR(RunRuleVariants(rule, delta, gid));
        }
      }
      // Lattice aggregates re-run after every round of their group.
      for (size_t idx : group.rules) {
        const CompiledRule& rule = rules_[idx];
        if (!rule.agg.has_value() || !graph_.lattice(idx)) continue;
        if (HasDeltaFor(rule, delta)) {
          ++stats_.agg_recomputes;
          SB_RETURN_IF_ERROR(RecomputeAggregate(rule, /*lattice=*/true));
        } else {
          ++stats_.agg_skipped;
        }
      }
      SB_RETURN_IF_ERROR(CheckBudget(group));
    }
  }
}

Status FixpointDriver::ProcessRetractions(int gid) {
  const RuleGroup& group = graph_.group(gid);

  // Pure stratified-aggregate group: the full recompute (already armed via
  // touched_) subsumes retraction; run it now so a delete delta arriving
  // mid-stratum cannot leave a stale aggregate behind.
  bool all_agg = true;
  for (size_t idx : group.rules) {
    if (!rules_[idx].agg.has_value() || graph_.lattice(idx)) {
      all_agg = false;
      break;
    }
  }
  if (all_agg) {
    // A flipped negation probe never shows up in scan_preds (TouchedAny
    // cannot see it), so it forces the recompute on its own.
    bool flipped = !neg_[gid].empty();
    delta_[gid].dels.clear();
    neg_[gid].clear();
    for (size_t idx : group.rules) {
      const CompiledRule& rule = rules_[idx];
      if (!flipped && !TouchedAny(rule)) continue;
      ++stats_.agg_recomputes;
      SB_RETURN_IF_ERROR(RecomputeAggregate(rule, /*lattice=*/false));
      SB_RETURN_IF_ERROR(CheckBudget(group));
    }
    return Status::OK();
  }

  // Recursive groups and flipped negation probes cannot be maintained by
  // counting alone: rederive locally.
  if (group.recursive || !neg_[gid].empty()) return RederiveCluster(gid);

  // Counting path: enumerate destroyed instantiations on the pool (same
  // phase split as a wave round — the supports drop in the merge phase).
  EnsureRelations();
  while (!delta_[gid].dels.empty()) {
    DeltaMap dels = std::move(delta_[gid].dels);
    delta_[gid].dels.clear();
    ++stats_.rounds;
    std::vector<std::unique_ptr<EnumTask>> tasks;
    std::map<size_t, std::pair<size_t, size_t>> staged;
    std::vector<size_t> fired;
    for (size_t idx : group.rules) {
      const CompiledRule& rule = rules_[idx];
      if (HasDeltaFor(rule, dels)) {
        ++stats_.retract_firings;
        fired.push_back(idx);
        if (rule.parallel_safe) {
          size_t begin = tasks.size();
          StageVariantTasks(rule, idx, gid, dels, /*retract=*/true, &tasks);
          staged[idx] = {begin, tasks.size()};
        }
      } else {
        ++stats_.firings_skipped;
      }
    }
    SB_RETURN_IF_ERROR(RunStagedTasks(&tasks));
    for (size_t idx : fired) {
      const CompiledRule& rule = rules_[idx];
      if (rule.parallel_safe) {
        const auto& [begin, end] = staged.at(idx);
        SB_RETURN_IF_ERROR(ApplyStagedTasks(tasks, begin, end));
      } else {
        SB_RETURN_IF_ERROR(RunRetractVariants(rule, dels, gid));
      }
    }
  }
  return Status::OK();
}

Status FixpointDriver::CheckBudget(const RuleGroup& group) {
  if (stats_.derivations <= budget_limit_) return Status::OK();
  std::string culprits;
  for (size_t idx : group.rules) {
    const CompiledRule& rule = rules_[idx];
    if (rule.agg.has_value() ||
        HasDeltaFor(rule, delta_[group.id].adds) || TouchedAny(rule)) {
      if (!culprits.empty()) culprits += "; ";
      culprits += rule.source.ToString();
    }
  }
  return Status::Internal(
      "fixpoint exceeded derivation budget (" +
      std::to_string(options_.max_derivations) + " tuples) in stratum " +
      std::to_string(group.stratum) + ", rule group " +
      std::to_string(group.id) +
      (culprits.empty() ? "" : "; rules still producing deltas: " + culprits));
}

Status FixpointDriver::InstantiateHeads(
    const CompiledRule& rule, Env& env,
    std::vector<std::pair<PredId, Tuple>>* pending) {
  std::vector<int> bound_here;
  if (!rule.existential_slots.empty()) {
    SB_RETURN_IF_ERROR(host_.BindExistentials(rule, &env, &bound_here));
  }
  for (const CompiledHead& head : rule.heads) {
    Tuple t;
    t.reserve(head.args.size());
    for (const ArgPat& p : head.args) {
      if (p.kind == ArgPat::Kind::kConst) {
        t.push_back(p.constant);
      } else {
        t.push_back(*env[p.slot]);
      }
    }
    pending->emplace_back(head.pred, std::move(t));
  }
  for (int s : bound_here) env[s].reset();
  return Status::OK();
}

Status FixpointDriver::RunRuleVariants(const CompiledRule& rule,
                                       const DeltaMap& delta, int gid) {
  Executor executor(&ctx_, &store_, ResolveSimdMode(options_.simd));
  std::vector<std::pair<PredId, Tuple>> pending;
  // Tuples born earlier in the current round (queued for the next one):
  // enumerating against them now would count their instantiations twice.
  const DeltaMap& next = delta_[gid].adds;
  const int n = rule.num_scan_occurrences;

  for (int occ = 0; occ < n; ++occ) {
    auto it = delta.find(rule.scan_preds[occ]);
    if (it == delta.end() || it->second.empty()) continue;
    std::vector<OccView> views(n);
    std::vector<TupleSet> excl(n);
    views[occ].only = &it->second;
    BuildVariantViews(rule, delta, next, occ, /*retract=*/false, &views,
                      &excl);
    DeltaOverride override;
    override.views = &views;
    ExecPlanner* pl = planner();
    const VariantPlan* vp = pl != nullptr ? pl->PlanFor(rule, occ) : nullptr;
    Env env(rule.num_slots);
    SB_RETURN_IF_ERROR(executor.Run(
        vp != nullptr ? vp->steps : rule.steps, &env, &override,
        [&](Env& e) -> Status {
          return InstantiateHeads(rule, e, &pending);
        }));
  }

  for (auto& [pred, tuple] : pending) {
    SB_ASSIGN_OR_RETURN(bool inserted, host_.InsertHeadTuple(pred, tuple));
    if (inserted) ++stats_.derivations;
  }
  return Status::OK();
}

Status FixpointDriver::RunRetractVariants(const CompiledRule& rule,
                                          const DeltaMap& dels, int gid) {
  Executor executor(&ctx_, &store_, ResolveSimdMode(options_.simd));
  std::vector<std::pair<PredId, Tuple>> pending;
  // Insert deltas this group has not consumed yet: their instantiations
  // were never counted, so retraction must not see those tuples either.
  const DeltaMap& unconsumed = delta_[gid].adds;
  const int n = rule.num_scan_occurrences;

  for (int occ = 0; occ < n; ++occ) {
    auto it = dels.find(rule.scan_preds[occ]);
    if (it == dels.end() || it->second.empty()) continue;
    std::vector<OccView> views(n);
    std::vector<TupleSet> excl(n);
    views[occ].only = &it->second;
    BuildVariantViews(rule, dels, unconsumed, occ, /*retract=*/true, &views,
                      &excl);
    DeltaOverride override;
    override.views = &views;
    ExecPlanner* pl = planner();
    const VariantPlan* vp = pl != nullptr ? pl->PlanFor(rule, occ) : nullptr;
    Env env(rule.num_slots);
    SB_RETURN_IF_ERROR(executor.Run(
        vp != nullptr ? vp->steps : rule.steps, &env, &override,
        [&](Env& e) -> Status {
          return InstantiateHeads(rule, e, &pending);
        }));
  }

  for (auto& [pred, tuple] : pending) {
    ++stats_.retractions;
    SB_ASSIGN_OR_RETURN(bool erased, host_.RetractSupport(pred, tuple));
    if (erased) {
      ++stats_.deleted;
    } else {
      ++stats_.rescued;
    }
  }
  return Status::OK();
}

Status FixpointDriver::RederiveCluster(int gid) {
  ++stats_.group_rederives;
  // Closure over shared head predicates: every rule deriving an
  // over-deleted predicate must re-fire, whichever group it lives in.
  std::set<int> cluster{gid};
  std::set<PredId> cpreds;
  std::vector<int> work{gid};
  while (!work.empty()) {
    int g = work.back();
    work.pop_back();
    for (size_t idx : graph_.group(g).rules) {
      for (PredId h : HeadPreds(rules_[idx])) {
        if (!cpreds.insert(h).second) continue;
        for (size_t r : graph_.producers_of(h)) {
          int pg = graph_.group_of_rule(r);
          if (cluster.insert(pg).second) work.push_back(pg);
        }
      }
    }
  }

  ActiveSetGuard guard(&active_);
  for (int g : cluster) guard.Add(g);
  // Pending deltas and flips for cluster members are superseded by the
  // full local recompute.
  for (int g : cluster) {
    delta_[g].clear();
    neg_[g].clear();
  }
  for (PredId p : cpreds) {
    SB_ASSIGN_OR_RETURN(uint64_t over_deleted, host_.OverDeleteDerived(p));
    // Rederiving what was just over-deleted is not runaway work.
    budget_limit_ += over_deleted;
  }

  // Reseed each cluster group from the full extension of its body
  // predicates — the group-local analogue of DRed's rederivation pass.
  for (int g : cluster) {
    std::set<PredId> seen;
    for (size_t idx : graph_.group(g).rules) {
      for (PredId p : rules_[idx].scan_preds) {
        if (!seen.insert(p).second) continue;
        Relation* rel = store_.GetRelation(p);
        if (rel == nullptr || rel->empty()) continue;
        std::vector<Tuple>& vec = delta_[g].adds[p];
        vec = rel->AllTuples();
        stats_.rederive_seeded += vec.size();
        budget_limit_ += vec.size();
      }
    }
  }

  // Local fixpoint over the cluster: strata in order, groups topological
  // within; each group drains as a singleton wave (cluster members share
  // head predicates, so they are never mutually independent — but the
  // bulky reseed rounds still fan out across the pool). A stratified
  // aggregate whose head was over-deleted recomputes when its inputs have
  // a pending delta — the seed always provides one, so the first pass
  // restores the output and quiet passes skip the scan.
  std::vector<int> order(cluster.begin(), cluster.end());
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return std::make_pair(graph_.group(a).stratum, a) <
           std::make_pair(graph_.group(b).stratum, b);
  });
  bool any = true;
  while (any) {
    any = false;
    for (int g : order) {
      const RuleGroup& grp = graph_.group(g);
      for (size_t idx : grp.rules) {
        const CompiledRule& rule = rules_[idx];
        if (rule.agg.has_value() && !graph_.lattice(idx) &&
            HasDeltaFor(rule, delta_[g].adds)) {
          ++stats_.agg_recomputes;
          SB_RETURN_IF_ERROR(RecomputeAggregate(rule, /*lattice=*/false));
        }
      }
      if (!delta_[g].adds.empty()) {
        any = true;
        SB_RETURN_IF_ERROR(RunWave({g}));
      }
    }
  }
  return Status::OK();
}

Status FixpointDriver::RecomputeAggregate(const CompiledRule& rule,
                                          bool lattice) {
  const CompiledAgg& agg = *rule.agg;
  Executor executor(&ctx_, &store_, ResolveSimdMode(options_.simd));
  ExecPlanner* pl = planner();
  const VariantPlan* vp =
      pl != nullptr ? pl->PlanFor(rule, ExecPlanner::kFullBody) : nullptr;

  // Group body bindings by the head keys.
  std::map<Tuple, int64_t> groups;
  Env env(rule.num_slots);
  SB_RETURN_IF_ERROR(executor.Run(
      vp != nullptr ? vp->steps : rule.steps, &env, nullptr,
      [&](Env& e) -> Status {
        Tuple key;
        for (const ArgPat& p : agg.key_args) {
          key.push_back(p.kind == ArgPat::Kind::kConst ? p.constant
                                                       : *e[p.slot]);
        }
        int64_t v = 0;
        if (agg.input_slot >= 0) {
          const Value& val = *e[agg.input_slot];
          if (val.kind() != ValueKind::kInt) {
            return Status::TypeError("aggregate input is not an integer");
          }
          v = val.AsInt();
        }
        auto [it, fresh] = groups.try_emplace(std::move(key), 0);
        switch (agg.func) {
          case datalog::AggFunc::kMin:
            it->second = fresh ? v : std::min(it->second, v);
            break;
          case datalog::AggFunc::kMax:
            it->second = fresh ? v : std::max(it->second, v);
            break;
          case datalog::AggFunc::kSum:
            it->second += v;
            break;
          case datalog::AggFunc::kCount:
            it->second += 1;
            break;
        }
        return Status::OK();
      }));

  Relation* rel = store_.GetRelation(agg.head_pred);

  if (!lattice) {
    // Full recompute: drop stale groups first.
    std::vector<Tuple> existing = rel->AllTuples();
    for (const Tuple& t : existing) {
      Tuple keys(t.begin(), t.end() - 1);
      if (!groups.count(keys)) {
        SB_RETURN_IF_ERROR(host_.EraseTuple(agg.head_pred, t));
      }
    }
  }

  Tuple lookup_scratch;
  for (const auto& [keys, v] : groups) {
    Tuple desired = keys;
    desired.push_back(Value::Int(v));
    const Tuple* current = rel->LookupByKeys(keys, &lookup_scratch);
    if (current != nullptr) {
      int64_t cur = current->back().AsInt();
      bool improve;
      if (lattice) {
        improve = agg.func == datalog::AggFunc::kMin ? v < cur : v > cur;
      } else {
        improve = v != cur;
      }
      if (!improve) continue;
      SB_RETURN_IF_ERROR(host_.EraseTuple(agg.head_pred, *current));
    }
    SB_ASSIGN_OR_RETURN(bool inserted,
                        host_.InsertDerivedTuple(agg.head_pred, desired));
    if (inserted) ++stats_.derivations;
  }
  return Status::OK();
}

}  // namespace secureblox::engine
