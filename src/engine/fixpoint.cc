#include "engine/fixpoint.h"

#include <algorithm>
#include <set>

namespace secureblox::engine {

using datalog::PredId;
using datalog::Value;
using datalog::ValueKind;

FixpointDriver::FixpointDriver(const RuleGraph* graph,
                               const std::vector<CompiledRule>* rules,
                               EvalContext* ctx, RelationStore* store,
                               FixpointHost* host,
                               const FixpointOptions* options)
    : graph_(*graph), rules_(*rules), ctx_(*ctx), store_(*store),
      host_(*host), options_(*options) {}

void FixpointDriver::Begin() {
  pending_.assign(graph_.groups().size(), {});
  touched_.clear();
  stats_ = {};
  budget_slack_ = 0;
}

void FixpointDriver::NotifyInsert(PredId pred, const Tuple& tuple) {
  touched_.insert(pred);
  // One queue entry per consuming group (not per consuming rule). Within a
  // transaction a tuple is only notified once (set semantics), so a vector
  // ending in `tuple` means this call already pushed it for another rule of
  // the same group.
  int prev = -1;
  for (size_t rule : graph_.consumers_of(pred)) {
    int g = graph_.group_of_rule(rule);
    if (g == prev) continue;
    prev = g;
    auto& vec = pending_[g][pred];
    if (!vec.empty() && vec.back() == tuple) continue;
    vec.push_back(tuple);
  }
}

void FixpointDriver::NotifyErase(PredId pred, const Tuple& tuple) {
  touched_.insert(pred);
  // Adjacent-group dedupe only (as in NotifyInsert); a repeated purge of
  // the same group is an idempotent no-op.
  int prev = -1;
  for (size_t rule : graph_.consumers_of(pred)) {
    int g = graph_.group_of_rule(rule);
    if (g == prev) continue;
    prev = g;
    auto it = pending_[g].find(pred);
    if (it == pending_[g].end()) continue;
    auto& vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), tuple), vec.end());
    if (vec.empty()) pending_[g].erase(it);
  }
}

bool FixpointDriver::HasPendingWork() const {
  for (const DeltaMap& m : pending_) {
    if (!m.empty()) return true;
  }
  return false;
}

bool FixpointDriver::HasDeltaFor(const CompiledRule& rule,
                                 const DeltaMap& delta) const {
  for (PredId p : rule.scan_preds) {
    auto it = delta.find(p);
    if (it != delta.end() && !it->second.empty()) return true;
  }
  return false;
}

bool FixpointDriver::TouchedAny(const CompiledRule& rule) const {
  for (PredId p : rule.scan_preds) {
    if (touched_.count(p)) return true;
  }
  return false;
}

Status FixpointDriver::Run() {
  // The budget bounds *new* work: tuples seeded before the run (base
  // inserts, and delete-and-rederive reseeding the whole database) extend
  // the limit so routine rederivation of a large database never trips it.
  budget_limit_ = options_.max_derivations + budget_slack_;
  for (const DeltaMap& m : pending_) {
    for (const auto& [pred, tuples] : m) budget_limit_ += tuples.size();
  }
  // Strata in order; repeat while cross-stratum feedback (multi-head rules
  // whose heads live in an earlier stratum) left unconsumed deltas. The
  // first pass always runs so stratified aggregates see erasures that left
  // no queued delta.
  bool first = true;
  while (first || HasPendingWork()) {
    first = false;
    for (int s = 0; s <= graph_.max_stratum(); ++s) {
      SB_RETURN_IF_ERROR(RunStratum(s));
    }
  }
  return Status::OK();
}

Status FixpointDriver::RunStratum(int stratum) {
  // Stratified aggregates recompute on stratum entry (their inputs are
  // complete); skipped entirely when nothing they read changed.
  for (int gid : graph_.groups_in_stratum(stratum)) {
    for (size_t idx : graph_.group(gid).rules) {
      const CompiledRule& rule = rules_[idx];
      if (!rule.agg.has_value() || graph_.lattice(idx)) continue;
      if (TouchedAny(rule)) {
        ++stats_.agg_recomputes;
        SB_RETURN_IF_ERROR(RecomputeAggregate(rule, /*lattice=*/false));
        SB_RETURN_IF_ERROR(CheckBudget(graph_.group(gid)));
      } else {
        ++stats_.agg_skipped;
      }
    }
  }

  // Group worklist in topological order; a later group deriving into an
  // earlier one (multi-head rules) re-arms the scan.
  bool any = true;
  while (any) {
    any = false;
    for (int gid : graph_.groups_in_stratum(stratum)) {
      if (pending_[gid].empty()) continue;
      any = true;
      SB_RETURN_IF_ERROR(RunGroup(graph_.group(gid)));
    }
  }
  return Status::OK();
}

Status FixpointDriver::RunGroup(const RuleGroup& group) {
  while (!pending_[group.id].empty()) {
    DeltaMap delta = std::move(pending_[group.id]);
    pending_[group.id].clear();
    ++stats_.rounds;
    for (size_t idx : group.rules) {
      const CompiledRule& rule = rules_[idx];
      if (rule.agg.has_value()) continue;
      if (HasDeltaFor(rule, delta)) {
        ++stats_.rule_firings;
        SB_RETURN_IF_ERROR(RunRuleVariants(rule, delta));
      } else {
        ++stats_.firings_skipped;
      }
    }
    // Lattice aggregates re-run after every round of their group.
    for (size_t idx : group.rules) {
      const CompiledRule& rule = rules_[idx];
      if (!rule.agg.has_value() || !graph_.lattice(idx)) continue;
      if (HasDeltaFor(rule, delta)) {
        ++stats_.agg_recomputes;
        SB_RETURN_IF_ERROR(RecomputeAggregate(rule, /*lattice=*/true));
      } else {
        ++stats_.agg_skipped;
      }
    }
    SB_RETURN_IF_ERROR(CheckBudget(group));
  }
  return Status::OK();
}

Status FixpointDriver::CheckBudget(const RuleGroup& group) {
  if (stats_.derivations <= budget_limit_) return Status::OK();
  std::string culprits;
  for (size_t idx : group.rules) {
    const CompiledRule& rule = rules_[idx];
    if (rule.agg.has_value() || HasDeltaFor(rule, pending_[group.id]) ||
        TouchedAny(rule)) {
      if (!culprits.empty()) culprits += "; ";
      culprits += rule.source.ToString();
    }
  }
  return Status::Internal(
      "fixpoint exceeded derivation budget (" +
      std::to_string(options_.max_derivations) + " tuples) in stratum " +
      std::to_string(group.stratum) + ", rule group " +
      std::to_string(group.id) +
      (culprits.empty() ? "" : "; rules still producing deltas: " + culprits));
}

Status FixpointDriver::InstantiateHeads(
    const CompiledRule& rule, Env& env,
    std::vector<std::pair<PredId, Tuple>>* pending) {
  std::vector<int> bound_here;
  if (!rule.existential_slots.empty()) {
    SB_RETURN_IF_ERROR(host_.BindExistentials(rule, &env, &bound_here));
  }
  for (const CompiledHead& head : rule.heads) {
    Tuple t;
    t.reserve(head.args.size());
    for (const ArgPat& p : head.args) {
      if (p.kind == ArgPat::Kind::kConst) {
        t.push_back(p.constant);
      } else {
        t.push_back(*env[p.slot]);
      }
    }
    pending->emplace_back(head.pred, std::move(t));
  }
  for (int s : bound_here) env[s].reset();
  return Status::OK();
}

Status FixpointDriver::RunRuleVariants(const CompiledRule& rule,
                                       const DeltaMap& delta) {
  Executor executor(&ctx_, &store_);
  std::vector<std::pair<PredId, Tuple>> pending;

  for (int occ = 0; occ < rule.num_scan_occurrences; ++occ) {
    auto it = delta.find(rule.scan_preds[occ]);
    if (it == delta.end() || it->second.empty()) continue;
    DeltaOverride override{occ, &it->second};
    Env env(rule.num_slots);
    SB_RETURN_IF_ERROR(executor.Run(
        rule.steps, &env, &override, [&](Env& e) -> Status {
          return InstantiateHeads(rule, e, &pending);
        }));
  }

  for (auto& [pred, tuple] : pending) {
    SB_ASSIGN_OR_RETURN(bool inserted, host_.InsertHeadTuple(pred, tuple));
    if (inserted) ++stats_.derivations;
  }
  return Status::OK();
}

Status FixpointDriver::RecomputeAggregate(const CompiledRule& rule,
                                          bool lattice) {
  const CompiledAgg& agg = *rule.agg;
  Executor executor(&ctx_, &store_);

  // Group body bindings by the head keys.
  std::map<Tuple, int64_t> groups;
  Env env(rule.num_slots);
  SB_RETURN_IF_ERROR(executor.Run(
      rule.steps, &env, nullptr, [&](Env& e) -> Status {
        Tuple key;
        for (const ArgPat& p : agg.key_args) {
          key.push_back(p.kind == ArgPat::Kind::kConst ? p.constant
                                                       : *e[p.slot]);
        }
        int64_t v = 0;
        if (agg.input_slot >= 0) {
          const Value& val = *e[agg.input_slot];
          if (val.kind() != ValueKind::kInt) {
            return Status::TypeError("aggregate input is not an integer");
          }
          v = val.AsInt();
        }
        auto [it, fresh] = groups.try_emplace(std::move(key), 0);
        switch (agg.func) {
          case datalog::AggFunc::kMin:
            it->second = fresh ? v : std::min(it->second, v);
            break;
          case datalog::AggFunc::kMax:
            it->second = fresh ? v : std::max(it->second, v);
            break;
          case datalog::AggFunc::kSum:
            it->second += v;
            break;
          case datalog::AggFunc::kCount:
            it->second += 1;
            break;
        }
        return Status::OK();
      }));

  Relation* rel = store_.GetRelation(agg.head_pred);

  if (!lattice) {
    // Full recompute: drop stale groups first.
    std::vector<Tuple> existing = rel->tuples();
    for (const Tuple& t : existing) {
      Tuple keys(t.begin(), t.end() - 1);
      if (!groups.count(keys)) {
        SB_RETURN_IF_ERROR(host_.EraseTuple(agg.head_pred, t));
      }
    }
  }

  for (const auto& [keys, v] : groups) {
    Tuple desired = keys;
    desired.push_back(Value::Int(v));
    const Tuple* current = rel->LookupByKeys(keys);
    if (current != nullptr) {
      int64_t cur = current->back().AsInt();
      bool improve;
      if (lattice) {
        improve = agg.func == datalog::AggFunc::kMin ? v < cur : v > cur;
      } else {
        improve = v != cur;
      }
      if (!improve) continue;
      SB_RETURN_IF_ERROR(host_.EraseTuple(agg.head_pred, *current));
    }
    SB_ASSIGN_OR_RETURN(bool inserted,
                        host_.InsertDerivedTuple(agg.head_pred, desired));
    if (inserted) ++stats_.derivations;
  }
  return Status::OK();
}

}  // namespace secureblox::engine
