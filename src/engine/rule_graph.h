// Rule dependency graph: the static structure the fixpoint driver runs on.
//
// Built once per (re)compile from the compiled rules. Holds
//   - per-rule stratum assignment (stratification, relocated from eval.cc),
//   - lattice flags for recursive min/max aggregation,
//   - a predicate -> consuming-rules index (which rules re-fire when a
//     delta arrives for a predicate),
//   - SCC condensation of the per-stratum rule dependency graph into rule
//     groups, in topological order, so the driver can run one group to its
//     local fixpoint before moving downstream (VLog's reliance groups).
#ifndef SECUREBLOX_ENGINE_RULE_GRAPH_H_
#define SECUREBLOX_ENGINE_RULE_GRAPH_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/catalog.h"
#include "datalog/typecheck.h"
#include "engine/eval.h"

namespace secureblox::engine {

/// Dependency stratification. Returns per-rule stratum assignment and
/// verifies that negation and non-lattice aggregation are stratified.
/// `lattice_flags` receives rule ids whose aggregation is recursive
/// (lattice min/max mode).
///
/// `allow_unstratified_negation` enables the declarative-networking
/// semantics used by distributed protocols (NDlog, and the paper's
/// path-vector loop check `!pathlink[P,N]=_`): negation through a recursive
/// predicate is evaluated against the state at derivation time, without
/// retraction. Off by default (classic stratified Datalog).
Result<std::vector<int>> Stratify(const std::vector<CompiledRule*>& rules,
                                  const datalog::Catalog& catalog,
                                  std::vector<bool>* lattice_flags,
                                  bool allow_unstratified_negation = false);

/// Head predicates of a compiled rule (aggregate head included).
std::vector<datalog::PredId> HeadPreds(const CompiledRule& rule);

/// One strongly connected component of the rule dependency graph, confined
/// to a single stratum. Rules in a group are mutually recursive (or a
/// singleton); groups within a stratum form a DAG.
struct RuleGroup {
  int id = 0;
  int stratum = 0;
  /// Rule indices in install order.
  std::vector<size_t> rules;
  /// Same-stratum groups consuming this group's head predicates.
  std::vector<int> successors;
  /// True when the group contains a rule whose body reads a head predicate
  /// of the same group (needs iteration to a local fixpoint).
  bool recursive = false;
  /// Every predicate the group touches — heads plus body reads (scans,
  /// lookups, negation probes), sorted and unique. Two groups whose
  /// footprints are disjoint neither feed nor observe each other, so the
  /// parallel fixpoint may schedule them in the same wave.
  std::vector<datalog::PredId> footprint;
};

class RuleGraph {
 public:
  RuleGraph() = default;

  /// Analyze `rules` (borrowed for the duration of the call only).
  static Result<RuleGraph> Build(const std::vector<CompiledRule*>& rules,
                                 const datalog::Catalog& catalog,
                                 bool allow_unstratified_negation);

  size_t num_rules() const { return strata_.size(); }
  int max_stratum() const { return max_stratum_; }
  int stratum_of(size_t rule) const { return strata_[rule]; }
  bool lattice(size_t rule) const { return lattice_flags_[rule]; }

  const std::vector<RuleGroup>& groups() const { return groups_; }
  const RuleGroup& group(int id) const { return groups_[id]; }
  int group_of_rule(size_t rule) const { return group_of_rule_[rule]; }
  /// Group ids of one stratum, in topological (producers-first) order.
  const std::vector<int>& groups_in_stratum(int s) const {
    return groups_by_stratum_[s];
  }

  /// Rules with a scan/lookup occurrence of `pred` — exactly the rules the
  /// driver must consider re-firing when `pred` gains a delta tuple.
  const std::vector<size_t>& consumers_of(datalog::PredId pred) const;

  /// Group ids (sorted, unique) containing at least one consumer of `pred`
  /// — the delta-routing targets for inserts and deletes of `pred`.
  const std::vector<int>& consumer_groups_of(datalog::PredId pred) const;

  /// Group ids containing a rule that negates `pred`. Content changes to
  /// `pred` (either direction) can flip those rules' negation probes, so
  /// the groups must rederive (group-local DRed).
  const std::vector<int>& negator_groups_of(datalog::PredId pred) const;

  /// Rules with `pred` among their head predicates. Group-local DRed
  /// over-deletes a predicate and must re-fire every rule deriving it,
  /// whichever group it lives in.
  const std::vector<size_t>& producers_of(datalog::PredId pred) const;

  /// Predicates appearing under negation in some rule body. Base insertions
  /// into these invalidate existing derivations (the workspace routes such
  /// transactions through delete-and-rederive).
  const std::unordered_set<datalog::PredId>& negated_preds() const {
    return negated_preds_;
  }

 private:
  std::vector<int> strata_;             // by rule
  std::vector<bool> lattice_flags_;     // by rule
  int max_stratum_ = 0;
  std::vector<RuleGroup> groups_;
  std::vector<int> group_of_rule_;      // by rule
  std::vector<std::vector<int>> groups_by_stratum_;
  std::unordered_map<datalog::PredId, std::vector<size_t>> consumers_;
  std::unordered_map<datalog::PredId, std::vector<int>> consumer_groups_;
  std::unordered_map<datalog::PredId, std::vector<int>> negator_groups_;
  std::unordered_map<datalog::PredId, std::vector<size_t>> producers_;
  std::unordered_set<datalog::PredId> negated_preds_;
};

// -- query front end: adornment / slice analysis (engine/query) ------------
//
// The magic-sets rewriter works on the AST-level rules a query-serving
// workspace records (Workspace::deferred_rules) — the static half of the
// query module lives here next to the other rule-dependency structure.

/// Bound/free pattern over a predicate's argument positions: bit i set =
/// position i bound. 0 = every position free.
using Adornment = uint32_t;

/// Classic "bf" rendering (b = bound, f = free), used in generated magic
/// predicate names and diagnostics.
std::string AdornmentString(Adornment a, size_t arity);

/// Static index over a query-serving workspace's deferred rules: which
/// rules produce each predicate, which predicates are IDB, and which
/// resist magic restriction. Borrowed pointers must outlive the index;
/// rebuild after every Install that appends deferred rules.
class DeferredRuleIndex {
 public:
  static Result<DeferredRuleIndex> Build(
      const std::vector<datalog::Rule>& rules,
      const datalog::Catalog& catalog,
      const datalog::BuiltinSignatureMap& builtins);

  /// Rules with `pred` among their head predicates (indexes into the
  /// deferred-rule vector the index was built over).
  const std::vector<size_t>& ProducersOf(datalog::PredId pred) const;
  bool IsIdb(datalog::PredId pred) const {
    return !ProducersOf(pred).empty();
  }

  /// Predicates whose rules cannot carry a magic guard — aggregate heads,
  /// multi-head rules, and entity-creating head existentials — closed
  /// downward: a fully materialized predicate needs fully materialized
  /// body predicates.
  bool RequiresFull(datalog::PredId pred) const {
    return full_.count(pred) > 0;
  }

  /// True when `pred`'s dependency closure reads an IDB predicate under
  /// negation. Magic guards re-route derivation order, which negation
  /// semantics (stratified or derivation-time) observe, so such slices
  /// are installed unguarded instead.
  bool SliceHasNegatedIdb(datalog::PredId pred) const;

  /// Every predicate reachable from `pred` through producing rules —
  /// `pred` itself, IDB intermediates, and EDB leaves (negated and
  /// positive reads alike). Sorted.
  std::vector<datalog::PredId> SliceClosure(datalog::PredId pred) const;

  /// Deferred-rule indexes reachable from `pred` (producers of every IDB
  /// predicate in its closure). Sorted.
  std::vector<size_t> SliceRules(datalog::PredId pred) const;

  bool IsBuiltinAtom(const std::string& name) const {
    return builtin_names_.count(name) > 0;
  }
  size_t num_source_rules() const { return num_rules_; }

 private:
  std::unordered_map<datalog::PredId, std::vector<size_t>> producers_;
  /// Head pred -> body preds of its producing rules (deduplicated).
  std::unordered_map<datalog::PredId, std::vector<datalog::PredId>> deps_;
  std::unordered_set<datalog::PredId> full_;
  std::unordered_set<datalog::PredId> negated_idb_;
  std::unordered_set<std::string> builtin_names_;
  size_t num_rules_ = 0;
};

}  // namespace secureblox::engine

#endif  // SECUREBLOX_ENGINE_RULE_GRAPH_H_
