// Tuples and tuple hashing.
#ifndef SECUREBLOX_ENGINE_TUPLE_H_
#define SECUREBLOX_ENGINE_TUPLE_H_

#include <string>
#include <vector>

#include "datalog/catalog.h"
#include "datalog/value.h"

namespace secureblox::engine {

using datalog::Value;

using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 0x811C9DC5;
    for (const Value& v : t) {
      h ^= v.Hash() + 0x9E3779B9 + (h << 6) + (h >> 2);
    }
    return h;
  }
};

inline std::string TupleToString(const Tuple& t,
                                 const datalog::Catalog& catalog) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += catalog.ValueToString(t[i]);
  }
  return out + ")";
}

}  // namespace secureblox::engine

#endif  // SECUREBLOX_ENGINE_TUPLE_H_
