// Query-driven evaluation: a magic-sets front end over the semi-naive
// engine (paper §2's point policy checks — "may P access R?" — without a
// whole-database fixpoint).
//
// Design choice (vs QSQR): QSQR interprets subgoals top-down with its own
// answer tables, which would bypass the Executor, the cost-based planner,
// the columnar probes, and the SIMD kernels — and would need its own
// invalidation protocol under deletion. Instead the goal's rule slice is
// *rewritten* (classic magic sets with a left-to-right sideways
// information passing strategy) and installed into the workspace as
// ordinary rules:
//
//   - per (predicate, adornment) a `magic$p$<ad>` predicate holds the
//     bound-argument patterns demanded so far (the memoized subgoal
//     table, keyed on adornment exactly as QSQR keys its subgoals);
//   - every producing rule gets the magic guard prepended, so the
//     semi-naive driver derives only tuples some demanded pattern can
//     reach (the memoized answer table is the predicate's own relation);
//   - a query seeds its bound pattern as a base fact in the magic
//     predicate; the resulting delta runs the installed slice to a local
//     fixpoint through the standard driver — plan cache, columnar
//     probes, and SIMD kernels included.
//
// Memo invalidation is therefore *inherited*: magic and answer relations
// are ordinary counted relations, so the existing delete-delta machinery
// (counting + group-local DRed) maintains them incrementally under churn.
// No cache protocol exists to get wrong — only the per-query answer
// snapshot carries an epoch (the sum of the slice relations' version
// stamps) so a warm repeat query is a pure read.
//
// Rules that cannot carry a magic guard — aggregate heads, multi-head
// rules, head existentials — and slices that read an IDB predicate under
// negation (guards re-route derivation order, which negation observes)
// are installed *unguarded*, but still only the goal's dependency slice:
// such installs are driven by a one-tuple `magic$seed$<n>` guard whose
// insertion fires them over pre-existing data through the same delta
// machinery.
#ifndef SECUREBLOX_ENGINE_QUERY_H_
#define SECUREBLOX_ENGINE_QUERY_H_

#include <atomic>
#include <list>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/rule_graph.h"
#include "engine/workspace.h"

namespace secureblox::engine {

/// One point query: a predicate plus a bound/free argument pattern.
/// Bound positions carry a value (entity positions accept string labels);
/// free positions are nullopt. All-free asks for the full extension.
struct QueryGoal {
  std::string pred;
  std::vector<std::optional<datalog::Value>> args;
};

class QueryEngine {
 public:
  struct Stats {
    uint64_t queries = 0;
    /// Answered from the epoch-validated snapshot (pure read).
    uint64_t warm_hits = 0;
    /// Memoized subgoal was installed and seeded; only the answer
    /// relation was re-read (epoch moved or first read of this pattern).
    uint64_t reprobes = 0;
    /// InstallSlice batches compiled (new predicate/adornment demand).
    uint64_t slices_installed = 0;
    /// Magic predicates generated across all slices.
    uint64_t magic_preds = 0;
    /// Magic seed facts inserted (distinct bound patterns demanded).
    uint64_t seeds = 0;
    /// Goals answered through an unguarded (non-magic) slice install:
    /// aggregate/multi-head/existential closures or negated-IDB slices.
    uint64_t full_slices = 0;
    /// Answer snapshots dropped by the SB_QUERY_ANSWER_CAP LRU bound.
    /// Eviction only discards the memoized snapshot — the slice and its
    /// magic seeds stay installed, so a repeat query re-probes (cold/warm
    /// accounting shifts) but answers never change.
    uint64_t answer_evictions = 0;
  };

  /// The workspace is borrowed and must outlive the engine. On a
  /// materialized workspace (defer_rules off) queries degrade to direct
  /// relation probes — everything is already derived. The answer-snapshot
  /// cap is seeded from the SB_QUERY_ANSWER_CAP environment variable
  /// (unset/0 = unbounded).
  explicit QueryEngine(Workspace* ws);
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Answer a goal: install/seed the slice as needed, then read the
  /// answer relation filtered by the bound pattern. Answers are sorted
  /// (kind-then-payload value order, per position). NOT thread-safe
  /// against itself or any workspace mutation — callers serialize (see
  /// NodeRuntime::Query).
  Result<std::vector<Tuple>> Query(const QueryGoal& goal);

  /// Pure-read warm path: returns the memoized answers only when the goal
  /// was queried before and no relation in its dependency slice has
  /// changed since (version-stamp epoch). Safe to call concurrently with
  /// other TryWarm callers, but not with Query or workspace mutations.
  std::optional<std::vector<Tuple>> TryWarm(const QueryGoal& goal) const;

  Stats stats() const;

  /// Bound on memoized answer snapshots (0 = unbounded). Shrinking below
  /// the current population evicts least-recently-stored snapshots
  /// immediately. Not thread-safe against Query/TryWarm.
  void set_answer_cap(size_t cap);
  size_t answer_cap() const { return answer_cap_; }

 private:
  struct SubgoalKey {
    datalog::PredId pred = datalog::kInvalidPred;
    Adornment adornment = 0;
    Tuple bound;  // values at bound positions, in position order
    bool operator==(const SubgoalKey& o) const {
      return pred == o.pred && adornment == o.adornment && bound == o.bound;
    }
  };
  struct SubgoalKeyHash {
    size_t operator()(const SubgoalKey& k) const {
      return std::hash<int64_t>()((int64_t(k.pred) << 20) ^ k.adornment) ^
             (TupleHash()(k.bound) * 1099511628211ull);
    }
  };
  struct AnswerSnapshot {
    std::vector<Tuple> tuples;
    uint64_t epoch = 0;
    /// Position in lru_ (recency is maintained on the exclusive Query
    /// path only; the concurrent TryWarm read path never reorders).
    std::list<SubgoalKey>::iterator lru_it;
  };
  /// Normalized goal: resolved predicate plus bound pattern. `missing` is
  /// set when a bound entity label was never interned here — the answer
  /// is empty without touching any slice.
  struct ResolvedGoal {
    datalog::PredId pred = datalog::kInvalidPred;
    Adornment adornment = 0;
    Tuple bound;
    bool missing_entity = false;
  };

  Result<ResolvedGoal> Resolve(const QueryGoal& goal) const;
  Status RefreshIndex();
  /// Install (if new) and seed the slice serving (pred, adornment).
  Status EnsureSliceReady(const ResolvedGoal& goal);
  /// Worklist magic rewrite rooted at (pred, adornment); appends generated
  /// rules to `batch`.
  Status CollectAdorned(datalog::PredId pred, Adornment adornment,
                        datalog::Program* batch,
                        std::vector<FactUpdate>* seeds);
  /// Append `pred`'s not-yet-installed closure rules unguarded (plus the
  /// batch seed guard that fires them over pre-existing data).
  Status CollectFullSlice(datalog::PredId pred, datalog::Program* batch,
                          std::vector<FactUpdate>* seeds);
  /// Declare (idempotently) and name the magic predicate of (pred, ad).
  Result<std::string> EnsureMagicPred(datalog::PredId pred, Adornment a);
  /// The one-tuple guard predicate of the current install batch.
  Result<datalog::Atom> BatchSeedGuard(std::vector<FactUpdate>* seeds);
  /// Read the answer relation filtered by the bound pattern, sorted.
  std::vector<Tuple> Probe(const ResolvedGoal& goal) const;
  /// Sum of version stamps over the goal predicate's dependency closure,
  /// or nullopt when the closure was never memoized (pure read — the memo
  /// is populated only under the exclusive Query path).
  std::optional<uint64_t> EpochIfKnown(datalog::PredId pred) const;

  Workspace* ws_;
  std::optional<DeferredRuleIndex> index_;
  size_t indexed_rules_ = 0;

  /// (pred, adornment) pairs whose rewritten rules are installed, mapped
  /// to the deferred-rule count covered at install time — an Install that
  /// appends rules after queries ran is reconciled by re-rewriting only
  /// the producers at or past this high-water mark.
  std::map<std::pair<datalog::PredId, Adornment>, size_t> installed_adorned_;
  /// Deferred-rule indexes installed unguarded.
  std::set<size_t> installed_full_;
  /// Predicates whose full closure is installed (complete relations).
  std::set<datalog::PredId> full_ready_;
  /// Demanded bound patterns already seeded into magic predicates.
  std::unordered_map<SubgoalKey, bool, SubgoalKeyHash> seeded_;
  /// Evict answer snapshots past answer_cap_ (least recently stored
  /// first), counting each drop.
  void TrimAnswers();

  /// Per-subgoal answer snapshots with their slice epoch, LRU-bounded by
  /// answer_cap_ over lru_ (front = most recently stored).
  std::unordered_map<SubgoalKey, AnswerSnapshot, SubgoalKeyHash> answers_;
  std::list<SubgoalKey> lru_;
  size_t answer_cap_ = 0;
  uint64_t answer_evictions_ = 0;
  /// Memoized SliceClosure per goal predicate (reset on index refresh).
  mutable std::unordered_map<datalog::PredId, std::vector<datalog::PredId>>
      closure_memo_;
  /// Batch-seed guard state for the install currently being collected.
  std::string batch_seed_pred_;
  uint64_t batch_counter_ = 0;
  uint64_t guard_var_counter_ = 0;

  mutable std::atomic<uint64_t> queries_{0}, warm_hits_{0}, reprobes_{0};
  uint64_t slices_installed_ = 0, magic_preds_ = 0, seeds_ = 0,
           full_slices_ = 0;
};

}  // namespace secureblox::engine

#endif  // SECUREBLOX_ENGINE_QUERY_H_
