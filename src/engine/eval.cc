#include "engine/eval.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace secureblox::engine {

using datalog::Atom;
using datalog::Catalog;
using datalog::CmpOp;
using datalog::Literal;
using datalog::PredicateDecl;
using datalog::PredId;
using datalog::Rule;
using datalog::Term;
using datalog::TermKind;
using datalog::TermPtr;
using datalog::Value;
using datalog::ValueKind;

namespace {

bool IsAnonymous(const std::string& name) {
  return name.rfind("_anon", 0) == 0;
}

void CollectTermVars(const TermPtr& t, std::vector<std::string>* out) {
  if (t == nullptr) return;
  if (t->kind == TermKind::kVar) out->push_back(t->name);
  if (t->kind == TermKind::kArith) {
    CollectTermVars(t->lhs, out);
    CollectTermVars(t->rhs, out);
  }
}

// Slot assignment for all variables in a rule/constraint.
class SlotMap {
 public:
  int SlotOf(const std::string& name) {
    auto it = map_.find(name);
    if (it != map_.end()) return it->second;
    int slot = static_cast<int>(names_.size());
    map_[name] = slot;
    names_.push_back(name);
    return slot;
  }
  int Find(const std::string& name) const {
    auto it = map_.find(name);
    return it == map_.end() ? -1 : it->second;
  }
  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::unordered_map<std::string, int> map_;
  std::vector<std::string> names_;
};

std::shared_ptr<CExpr> CompileExpr(const TermPtr& t, SlotMap* slots) {
  auto e = std::make_shared<CExpr>();
  switch (t->kind) {
    case TermKind::kVar:
      e->kind = CExpr::Kind::kSlot;
      e->slot = slots->SlotOf(t->name);
      break;
    case TermKind::kConst:
      e->kind = CExpr::Kind::kConst;
      e->constant = t->constant;
      break;
    case TermKind::kArith:
      e->kind = CExpr::Kind::kArith;
      e->op = t->op;
      e->lhs = CompileExpr(t->lhs, slots);
      e->rhs = CompileExpr(t->rhs, slots);
      break;
    default:
      // Quoted predicates / varargs never reach the evaluator.
      e->kind = CExpr::Kind::kConst;
      break;
  }
  return e;
}

bool ExprBound(const CExpr& e, const std::vector<bool>& bound) {
  switch (e.kind) {
    case CExpr::Kind::kConst:
      return true;
    case CExpr::Kind::kSlot:
      return bound[e.slot];
    case CExpr::Kind::kArith:
      return ExprBound(*e.lhs, bound) && ExprBound(*e.rhs, bound);
  }
  return false;
}

// Planner for one body (rule body, constraint lhs, or constraint rhs).
class BodyPlanner {
 public:
  BodyPlanner(const Catalog& catalog, const BuiltinRegistry& builtins,
              SlotMap* slots, std::vector<bool>* bound)
      : catalog_(catalog), builtins_(builtins), slots_(*slots),
        bound_(*bound) {}

  Result<std::vector<Step>> Plan(const std::vector<Literal>& body,
                                 int* scan_occurrences,
                                 std::vector<PredId>* scan_preds) {
    std::vector<Step> steps;
    std::vector<bool> used(body.size(), false);
    size_t remaining = body.size();

    // Pre-register all variable slots so the environment is sized once.
    for (const Literal& lit : body) {
      std::vector<std::string> vars;
      if (lit.kind == Literal::Kind::kAtom) {
        for (const auto& a : lit.atom.args) CollectTermVars(a, &vars);
      } else {
        CollectTermVars(lit.cmp.lhs, &vars);
        CollectTermVars(lit.cmp.rhs, &vars);
      }
      for (const auto& v : vars) slots_.SlotOf(v);
    }
    if (bound_.size() < slots_.size()) bound_.resize(slots_.size(), false);

    while (remaining > 0) {
      int pick = PickNext(body, used);
      if (pick < 0) {
        return Status::Internal(
            "cannot order body literals (unsafe rule slipped past the type "
            "checker)");
      }
      used[pick] = true;
      --remaining;
      SB_ASSIGN_OR_RETURN(Step step,
                          CompileLiteral(body[pick], scan_occurrences,
                                         scan_preds));
      steps.push_back(std::move(step));
      if (bound_.size() < slots_.size()) bound_.resize(slots_.size(), false);
    }
    return steps;
  }

 private:
  bool TermsBound(const TermPtr& t) const {
    std::vector<std::string> vars;
    CollectTermVars(t, &vars);
    for (const auto& v : vars) {
      int s = slots_.Find(v);
      if (s < 0 || static_cast<size_t>(s) >= bound_.size() || !bound_[s]) {
        return false;
      }
    }
    return true;
  }

  bool IsBoundVar(const std::string& name) const {
    int s = slots_.Find(name);
    return s >= 0 && static_cast<size_t>(s) < bound_.size() && bound_[s];
  }

  bool IsBuiltin(const Atom& a) const {
    return builtins_.Find(a.pred.name) != nullptr;
  }

  bool IsPrimitiveType(const Atom& a) const {
    auto id = catalog_.Lookup(a.pred.name);
    return id.ok() && catalog_.decl(id.value()).is_primitive;
  }

  // Priority: compare > assign > typecheck > lookup > negcheck > builtin >
  // scan (max bound args).
  int PickNext(const std::vector<Literal>& body,
               const std::vector<bool>& used) const {
    int best_scan = -1;
    int best_scan_bound = -1;
    int builtin_ready = -1;
    int neg_ready = -1;
    int lookup_ready = -1;
    int typecheck_ready = -1;

    for (size_t i = 0; i < body.size(); ++i) {
      if (used[i]) continue;
      const Literal& lit = body[i];
      if (lit.kind == Literal::Kind::kCompare) {
        const auto& c = lit.cmp;
        bool lb = TermsBound(c.lhs);
        bool rb = TermsBound(c.rhs);
        if (lb && rb) return static_cast<int>(i);  // pure filter
        if (c.op == CmpOp::kEq &&
            ((lb && c.rhs->kind == TermKind::kVar) ||
             (rb && c.lhs->kind == TermKind::kVar))) {
          return static_cast<int>(i);  // assignment
        }
        continue;
      }
      const Atom& a = lit.atom;
      if (IsBuiltin(a)) {
        const BuiltinImpl* impl = builtins_.Find(a.pred.name);
        bool inputs_ready = true;
        for (int j = 0; j < impl->sig.num_inputs &&
                        j < static_cast<int>(a.args.size());
             ++j) {
          if (a.args[j]->kind == TermKind::kVar &&
              !IsBoundVar(a.args[j]->name)) {
            inputs_ready = false;
          }
        }
        if (inputs_ready && builtin_ready < 0) {
          builtin_ready = static_cast<int>(i);
        }
        continue;
      }
      if (IsPrimitiveType(a)) {
        if (a.args[0]->kind != TermKind::kVar || IsBoundVar(a.args[0]->name)) {
          if (typecheck_ready < 0) typecheck_ready = static_cast<int>(i);
        }
        continue;
      }
      // Relation atom.
      int bound_args = 0;
      bool all_nonanon_bound = true;
      bool keys_bound = true;
      for (size_t j = 0; j < a.args.size(); ++j) {
        const TermPtr& arg = a.args[j];
        bool b = arg->kind == TermKind::kConst ||
                 (arg->kind == TermKind::kVar && IsBoundVar(arg->name));
        if (b) ++bound_args;
        if (!b && arg->kind == TermKind::kVar && !IsAnonymous(arg->name)) {
          all_nonanon_bound = false;
        }
        if (!b && a.functional && j + 1 < a.args.size()) keys_bound = false;
      }
      if (a.negated) {
        if (all_nonanon_bound && neg_ready < 0) neg_ready = static_cast<int>(i);
        continue;
      }
      if (a.functional && keys_bound && lookup_ready < 0) {
        lookup_ready = static_cast<int>(i);
      }
      if (bound_args > best_scan_bound) {
        best_scan_bound = bound_args;
        best_scan = static_cast<int>(i);
      }
    }
    if (typecheck_ready >= 0) return typecheck_ready;
    if (lookup_ready >= 0) return lookup_ready;
    if (neg_ready >= 0) return neg_ready;
    if (builtin_ready >= 0) return builtin_ready;
    return best_scan;
  }

  /// `col`/`atom_cols`, when given, track which column of the atom being
  /// compiled first bound each slot: a later occurrence of the same
  /// variable in the SAME atom compiles to kSame (compare the candidate
  /// row against its own earlier column) instead of kBound — the slot is
  /// only bound once the row is accepted, so a kBound read of env[slot]
  /// here would dereference an unengaged optional.
  Result<ArgPat> PatFor(const TermPtr& arg, bool binds, bool wild_anon,
                        int col = -1,
                        std::vector<std::pair<int, int>>* atom_cols = nullptr) {
    ArgPat pat;
    if (arg->kind == TermKind::kConst) {
      pat.kind = ArgPat::Kind::kConst;
      pat.constant = arg->constant;
      return pat;
    }
    if (arg->kind != TermKind::kVar) {
      return Status::Internal("non-variable term in compiled atom: " +
                              arg->ToString());
    }
    int slot = slots_.SlotOf(arg->name);
    if (static_cast<size_t>(slot) >= bound_.size()) {
      bound_.resize(slot + 1, false);
    }
    pat.slot = slot;
    if (atom_cols != nullptr) {
      for (const auto& [s, c] : *atom_cols) {
        if (s == slot) {
          pat.kind = ArgPat::Kind::kSame;
          pat.same_col = c;
          return pat;
        }
      }
    }
    if (bound_[slot]) {
      pat.kind = ArgPat::Kind::kBound;
    } else if (wild_anon && IsAnonymous(arg->name)) {
      pat.kind = ArgPat::Kind::kWild;
    } else if (binds) {
      pat.kind = ArgPat::Kind::kBind;
      bound_[slot] = true;
      if (atom_cols != nullptr && col >= 0) {
        atom_cols->push_back({slot, col});
      }
    } else {
      return Status::Internal("unbound variable '" + arg->name +
                              "' in non-binding position");
    }
    return pat;
  }

  Result<Step> CompileLiteral(const Literal& lit, int* scan_occurrences,
                              std::vector<PredId>* scan_preds) {
    Step step;
    if (lit.kind == Literal::Kind::kCompare) {
      const auto& c = lit.cmp;
      bool lb = TermsBound(c.lhs);
      bool rb = TermsBound(c.rhs);
      if (lb && rb) {
        step.kind = Step::Kind::kCompare;
        step.cmp_op = c.op;
        step.lhs = CompileExpr(c.lhs, &slots_);
        step.rhs = CompileExpr(c.rhs, &slots_);
        return step;
      }
      // Assignment.
      step.kind = Step::Kind::kAssign;
      const TermPtr& var = lb ? c.rhs : c.lhs;
      const TermPtr& expr = lb ? c.lhs : c.rhs;
      step.assign_slot = slots_.SlotOf(var->name);
      if (static_cast<size_t>(step.assign_slot) >= bound_.size()) {
        bound_.resize(step.assign_slot + 1, false);
      }
      bound_[step.assign_slot] = true;
      step.rhs = CompileExpr(expr, &slots_);
      return step;
    }

    const Atom& a = lit.atom;
    if (const BuiltinImpl* impl = builtins_.Find(a.pred.name)) {
      step.kind = Step::Kind::kBuiltin;
      step.builtin = impl;
      step.builtin_name = a.pred.name;
      for (size_t j = 0; j < a.args.size(); ++j) {
        bool is_output = static_cast<int>(j) >= impl->sig.num_inputs;
        SB_ASSIGN_OR_RETURN(ArgPat pat, PatFor(a.args[j], is_output, false));
        step.args.push_back(std::move(pat));
      }
      return step;
    }

    SB_ASSIGN_OR_RETURN(PredId pred, catalog_.Lookup(a.pred.name));
    const PredicateDecl& decl = catalog_.decl(pred);
    step.pred = pred;

    if (decl.is_primitive) {
      step.kind = Step::Kind::kTypeCheck;
      step.check_kind = decl.primitive_kind;
      SB_ASSIGN_OR_RETURN(ArgPat pat, PatFor(a.args[0], false, false));
      step.args.push_back(std::move(pat));
      return step;
    }

    if (a.negated) {
      step.kind = Step::Kind::kNegCheck;
      for (const auto& arg : a.args) {
        SB_ASSIGN_OR_RETURN(ArgPat pat, PatFor(arg, false, true));
        step.args.push_back(std::move(pat));
      }
      return step;
    }

    // Functional lookup when all keys bound?
    bool keys_bound = decl.functional;
    if (decl.functional) {
      for (size_t j = 0; j + 1 < a.args.size(); ++j) {
        const TermPtr& arg = a.args[j];
        if (arg->kind == TermKind::kVar && !IsBoundVar(arg->name)) {
          keys_bound = false;
        }
      }
    }
    if (keys_bound) {
      step.kind = Step::Kind::kLookup;
      // Lookups still get a delta occurrence so semi-naïve re-runs the rule
      // when the looked-up relation (e.g. a singleton) changes.
      step.occurrence = (*scan_occurrences)++;
      scan_preds->push_back(pred);
      for (size_t j = 0; j < a.args.size(); ++j) {
        SB_ASSIGN_OR_RETURN(ArgPat pat,
                            PatFor(a.args[j], j + 1 == a.args.size(), false));
        step.args.push_back(std::move(pat));
      }
      return step;
    }

    step.kind = Step::Kind::kScan;
    step.occurrence = (*scan_occurrences)++;
    scan_preds->push_back(pred);
    std::vector<std::pair<int, int>> atom_cols;
    for (size_t j = 0; j < a.args.size(); ++j) {
      SB_ASSIGN_OR_RETURN(ArgPat pat,
                          PatFor(a.args[j], true, false,
                                 static_cast<int>(j), &atom_cols));
      step.args.push_back(std::move(pat));
    }
    return step;
  }

  const Catalog& catalog_;
  const BuiltinRegistry& builtins_;
  SlotMap& slots_;
  std::vector<bool>& bound_;
};

}  // namespace

void ComputeProbeInfo(std::vector<Step>* steps) {
  for (Step& s : *steps) {
    s.probe_mask = 0;
    s.key_cols.clear();
    if (s.kind != Step::Kind::kScan && s.kind != Step::Kind::kNegCheck) {
      continue;
    }
    for (size_t i = 0; i < s.args.size() && i < 32; ++i) {
      if (s.args[i].kind == ArgPat::Kind::kConst ||
          s.args[i].kind == ArgPat::Kind::kBound) {
        s.probe_mask |= 1u << i;
        s.key_cols.push_back(static_cast<int>(i));
      }
    }
  }
}

// --- RuleCompiler ----------------------------------------------------------

Result<CompiledRule> RuleCompiler::CompileRule(const Rule& rule,
                                               int id) const {
  CompiledRule out;
  out.source = rule;
  out.id = id;

  SlotMap slots;
  std::vector<bool> bound;
  BodyPlanner planner(catalog_, builtins_, &slots, &bound);
  SB_ASSIGN_OR_RETURN(out.steps,
                      planner.Plan(rule.body, &out.num_scan_occurrences,
                                   &out.scan_preds));
  if (out.num_scan_occurrences == 0) {
    return Status::CompileError("rule body must reference at least one "
                                "predicate: " + rule.ToString());
  }
  for (const Step& s : out.steps) {
    if (s.kind == Step::Kind::kBuiltin && !s.builtin->thread_safe) {
      out.parallel_safe = false;
    }
  }
  ComputeProbeInfo(&out.steps);

  if (rule.agg.has_value()) {
    if (rule.heads.size() != 1 || !rule.heads[0].functional) {
      return Status::CompileError(
          "aggregate rules must have a single functional head: " +
          rule.ToString());
    }
    CompiledAgg agg;
    agg.func = rule.agg->func;
    if (rule.agg->func == datalog::AggFunc::kCount) {
      agg.input_slot = -1;
    } else {
      agg.input_slot = slots.Find(rule.agg->input_var);
      if (agg.input_slot < 0) {
        return Status::CompileError("aggregate input variable '" +
                                    rule.agg->input_var + "' not in body");
      }
    }
    const Atom& head = rule.heads[0];
    SB_ASSIGN_OR_RETURN(agg.head_pred, catalog_.Lookup(head.pred.name));
    // Value position must be exactly the result variable.
    const TermPtr& value_arg = head.args.back();
    if (value_arg->kind != TermKind::kVar ||
        value_arg->name != rule.agg->result_var) {
      return Status::CompileError(
          "aggregate head value must be the aggregate result variable");
    }
    for (size_t j = 0; j + 1 < head.args.size(); ++j) {
      const TermPtr& arg = head.args[j];
      ArgPat pat;
      if (arg->kind == TermKind::kConst) {
        pat.kind = ArgPat::Kind::kConst;
        pat.constant = arg->constant;
      } else if (arg->kind == TermKind::kVar) {
        int slot = slots.Find(arg->name);
        if (slot < 0 || !bound[slot]) {
          return Status::CompileError("aggregate key variable '" + arg->name +
                                      "' is not bound by the body");
        }
        pat.kind = ArgPat::Kind::kBound;
        pat.slot = slot;
      } else {
        return Status::CompileError("bad aggregate key term");
      }
      agg.key_args.push_back(std::move(pat));
    }
    out.agg = std::move(agg);
    out.num_slots = slots.size();
    out.slot_names = slots.names();
    return out;
  }

  // Normal heads (with possible existentials).
  std::set<int> memo_slots;
  std::unordered_map<int, PredId> existential_types;
  for (const Atom& head : rule.heads) {
    CompiledHead ch;
    SB_ASSIGN_OR_RETURN(ch.pred, catalog_.Lookup(head.pred.name));
    const PredicateDecl& decl = catalog_.decl(ch.pred);
    for (size_t j = 0; j < head.args.size(); ++j) {
      const TermPtr& arg = head.args[j];
      ArgPat pat;
      if (arg->kind == TermKind::kConst) {
        pat.kind = ArgPat::Kind::kConst;
        pat.constant = arg->constant;
      } else if (arg->kind == TermKind::kVar) {
        int slot = slots.SlotOf(arg->name);
        pat.slot = slot;
        if (static_cast<size_t>(slot) < bound.size() && bound[slot]) {
          pat.kind = ArgPat::Kind::kBound;
          memo_slots.insert(slot);
        } else {
          // Head existential: entity creation (typecheck verified type).
          pat.kind = ArgPat::Kind::kBind;
          if (!existential_types.count(slot)) {
            existential_types[slot] = decl.arg_types[j];
          }
        }
      } else {
        return Status::CompileError("bad head term " + arg->ToString());
      }
      ch.args.push_back(std::move(pat));
    }
    out.heads.push_back(std::move(ch));
  }
  for (const auto& [slot, type] : existential_types) {
    out.existential_slots.push_back(slot);
    out.existential_types.push_back(type);
  }
  // Head existentials create entities (catalog + memo mutation) during
  // enumeration, so such rules stay on the sequential merge phase.
  if (!out.existential_slots.empty()) out.parallel_safe = false;
  out.memo_key_slots.assign(memo_slots.begin(), memo_slots.end());
  out.num_slots = slots.size();
  out.slot_names = slots.names();
  return out;
}

Result<CompiledConstraint> RuleCompiler::CompileConstraint(
    const datalog::ConstraintDecl& c, int id) const {
  CompiledConstraint out;
  out.source = c;
  out.id = id;

  SlotMap slots;
  std::vector<bool> bound;
  BodyPlanner lhs_planner(catalog_, builtins_, &slots, &bound);
  SB_ASSIGN_OR_RETURN(out.lhs_steps,
                      lhs_planner.Plan(c.lhs, &out.num_scan_occurrences,
                                       &out.scan_preds));
  // rhs: existence check with lhs bindings in scope. Extra rhs scans are
  // not delta candidates (occurrence counter is separate and unused).
  int rhs_occurrences = 0;
  std::vector<PredId> rhs_scan_preds;
  BodyPlanner rhs_planner(catalog_, builtins_, &slots, &bound);
  SB_ASSIGN_OR_RETURN(out.rhs_steps,
                      rhs_planner.Plan(c.rhs, &rhs_occurrences,
                                       &rhs_scan_preds));
  ComputeProbeInfo(&out.lhs_steps);
  ComputeProbeInfo(&out.rhs_steps);
  out.num_slots = slots.size();
  out.slot_names = slots.names();
  return out;
}

// --- Executor ----------------------------------------------------------------

Result<Value> Executor::Eval(const CExpr& e, const Env& env) {
  switch (e.kind) {
    case CExpr::Kind::kConst:
      return e.constant;
    case CExpr::Kind::kSlot:
      if (!env[e.slot].has_value()) {
        return Status::Internal("evaluating unbound slot");
      }
      return *env[e.slot];
    case CExpr::Kind::kArith: {
      SB_ASSIGN_OR_RETURN(Value l, Eval(*e.lhs, env));
      SB_ASSIGN_OR_RETURN(Value r, Eval(*e.rhs, env));
      if (l.kind() != ValueKind::kInt || r.kind() != ValueKind::kInt) {
        return Status::TypeError("arithmetic on non-integer values");
      }
      switch (e.op) {
        case '+':
          return Value::Int(l.AsInt() + r.AsInt());
        case '-':
          return Value::Int(l.AsInt() - r.AsInt());
        case '*':
          return Value::Int(l.AsInt() * r.AsInt());
        case '/':
          if (r.AsInt() == 0) return Status::InvalidArgument("division by zero");
          return Value::Int(l.AsInt() / r.AsInt());
      }
      return Status::Internal("bad arithmetic operator");
    }
  }
  return Status::Internal("bad expression kind");
}

Result<bool> Executor::Compare(const Value& a, CmpOp op, const Value& b) {
  // Entity-vs-string comparisons go through the entity's label (refmode).
  if (a.is_entity() && b.kind() == ValueKind::kString) {
    SB_ASSIGN_OR_RETURN(std::string label, ctx_.catalog->EntityLabel(a));
    return Compare(Value::Str(label), op, b);
  }
  if (b.is_entity() && a.kind() == ValueKind::kString) {
    SB_ASSIGN_OR_RETURN(std::string label, ctx_.catalog->EntityLabel(b));
    return Compare(a, op, Value::Str(label));
  }
  if (a.kind() != b.kind()) {
    switch (op) {
      case CmpOp::kEq:
        return false;
      case CmpOp::kNe:
        return true;
      default:
        return Status::TypeError("ordered comparison between incompatible "
                                 "kinds");
    }
  }
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return !(b < a);
    case CmpOp::kGt:
      return b < a;
    case CmpOp::kGe:
      return !(a < b);
  }
  return Status::Internal("bad comparison operator");
}

namespace {

// Does `tuple` match the bound/const positions of `pats`?
bool TupleMatches(const std::vector<ArgPat>& pats, const Tuple& tuple,
                  const Env& env) {
  for (size_t i = 0; i < pats.size(); ++i) {
    const ArgPat& p = pats[i];
    if (p.kind == ArgPat::Kind::kConst && !(tuple[i] == p.constant)) {
      return false;
    }
    if (p.kind == ArgPat::Kind::kBound && !(tuple[i] == *env[p.slot])) {
      return false;
    }
    if (p.kind == ArgPat::Kind::kSame &&
        !(tuple[i] == tuple[p.same_col])) {
      return false;
    }
  }
  return true;
}

// Per-occurrence view for this step, or nullptr for a plain relation read.
const OccView* ViewFor(const DeltaOverride* delta, const Step& step) {
  if (delta == nullptr || delta->views == nullptr || step.occurrence < 0 ||
      static_cast<size_t>(step.occurrence) >= delta->views->size()) {
    return nullptr;
  }
  const OccView& v = (*delta->views)[step.occurrence];
  return v.active() ? &v : nullptr;
}

/// Reusable per-depth scratch for one body step: probe-key materialization,
/// slots bound at this depth, and builtin argument staging. Frames live in a
/// thread-local pool indexed by absolute depth (`Executor::frame_base_` +
/// step index); containers keep their capacity across calls, so steady-state
/// enumeration allocates nothing here.
struct EvalFrame {
  Tuple key;
  std::vector<int> bound_here;
  std::vector<datalog::Value> inputs;
  std::vector<datalog::Value> outputs;
  /// Columnar scans: (column, expected code) per const/bound argument,
  /// resolved through the dictionaries once per step invocation.
  std::vector<std::pair<int, uint32_t>> col_filters;
  /// Row materialization scratch (columnar lookups, exclude-set checks).
  Tuple row;
  /// Batch scan path: the per-shard filter descriptors handed to the
  /// fused kernels, and the selection vector of surviving slots they emit.
  std::vector<CodeFilter> kernel_filters;
  std::vector<uint32_t> sel;
  /// Exclude set encoded to dictionary codes once per invocation
  /// (arity-stride chunks in exclude_flat, chunk indices sorted
  /// lexicographically in exclude_order) plus the candidate-row code
  /// scratch the membership probe compares against.
  std::vector<uint32_t> exclude_flat;
  std::vector<uint32_t> exclude_order;
  std::vector<uint32_t> row_codes;
};

/// Initial selection-vector capacity reserved when a pooled frame is
/// first constructed, so small steady-state scans never allocate on the
/// batch path (larger shards grow the buffer once, then keep it).
constexpr size_t kSelReserve = 256;

std::atomic<uint64_t> g_frame_allocs{0};
// std::deque: references to existing frames stay valid while nested Run
// calls grow the pool.
thread_local std::deque<EvalFrame> t_frames;
thread_local size_t t_frame_top = 0;

}  // namespace

uint64_t EvalFrameAllocs() {
  return g_frame_allocs.load(std::memory_order_relaxed);
}

Status Executor::RunFrom(const std::vector<Step>& steps, size_t idx, Env& env,
                         const DeltaOverride* delta,
                         const std::function<Status(Env&)>& on_match) {
  if (idx == steps.size()) return on_match(env);
  const Step& step = steps[idx];

  switch (step.kind) {
    case Step::Kind::kScan: {
      Relation* rel = store_.GetRelation(step.pred);
      const OccView* view = ViewFor(delta, step);
      EvalFrame& frame = t_frames[frame_base_ + idx];
      auto try_tuple = [&](const Tuple& t) -> Status {
        if (!TupleMatches(step.args, t, env)) return Status::OK();
        frame.bound_here.clear();
        for (size_t i = 0; i < step.args.size(); ++i) {
          if (step.args[i].kind == ArgPat::Kind::kBind) {
            env[step.args[i].slot] = t[i];
            frame.bound_here.push_back(step.args[i].slot);
          }
        }
        Status st = RunFrom(steps, idx + 1, env, delta, on_match);
        for (int s : frame.bound_here) env[s].reset();
        return st;
      };

      if (view != nullptr && view->only != nullptr) {
        // Segment slice: a staged chunk reads the round's delta vector
        // through an index list instead of a per-shard copy.
        const std::vector<uint32_t>* oi = view->only_index;
        const size_t limit = oi != nullptr ? oi->size() : view->only->size();
        const size_t end = std::min(view->only_end, limit);
        for (size_t k = view->only_begin; k < end; ++k) {
          const Tuple& t =
              oi != nullptr ? (*view->only)[(*oi)[k]] : (*view->only)[k];
          SB_RETURN_IF_ERROR(try_tuple(t));
        }
        return Status::OK();
      }
      if (view == nullptr && delta != nullptr &&
          delta->occurrence == step.occurrence) {
        for (const Tuple& t : *delta->tuples) {
          SB_RETURN_IF_ERROR(try_tuple(t));
        }
        return Status::OK();
      }
      const TupleSet* exclude = view != nullptr ? view->exclude : nullptr;
      auto try_row = [&](const Tuple& t) -> Status {
        if (exclude != nullptr && exclude->count(t)) return Status::OK();
        return try_tuple(t);
      };
      if (view != nullptr && view->extra != nullptr) {
        for (const Tuple& t : *view->extra) {
          SB_RETURN_IF_ERROR(try_tuple(t));
        }
      }
      if (rel == nullptr) return Status::OK();  // no facts yet
      // Probe a secondary index on the bound columns when possible. The
      // bound-column mask and key recipe are precomputed on the step
      // (ComputeProbeInfo); materializing the key is a flat walk over
      // key_cols into this depth's reusable frame.
      const uint32_t mask = step.probe_mask;
      if (rel->columnar()) {
        // Resolve every const/bound argument to its dictionary code once
        // per invocation. Any miss proves no row matches — the whole scan
        // (and any index work) is skipped. Per-row filtering then compares
        // u32 codes on contiguous column segments; values are only decoded
        // for the slots the step binds.
        auto& filters = frame.col_filters;
        filters.clear();
        for (size_t i = 0; i < step.args.size(); ++i) {
          const ArgPat& p = step.args[i];
          if (p.kind != ArgPat::Kind::kConst &&
              p.kind != ArgPat::Kind::kBound) {
            continue;
          }
          const Value& want =
              p.kind == ArgPat::Kind::kConst ? p.constant : *env[p.slot];
          auto code = rel->CodeOf(i, want);
          if (!code) return Status::OK();  // dictionary miss: zero matches
          filters.emplace_back(static_cast<int>(i), *code);
        }
        // Exclude sets are value tuples; encode each to dictionary codes
        // once per invocation. A tuple with any dictionary miss cannot be
        // stored in the relation and is dropped from the encoded set. The
        // encoded chunks are sorted (by index) so membership per surviving
        // slot is a binary search over u32 codes — no per-candidate row
        // materialization.
        const size_t arity = step.args.size();
        frame.exclude_flat.clear();
        frame.exclude_order.clear();
        if (exclude != nullptr && !exclude->empty()) {
          for (const Tuple& t : *exclude) {
            if (rel->EncodeTuple(t, &frame.exclude_flat)) {
              frame.exclude_order.push_back(
                  static_cast<uint32_t>(frame.exclude_order.size()));
            }
          }
          const uint32_t* flat = frame.exclude_flat.data();
          std::sort(frame.exclude_order.begin(), frame.exclude_order.end(),
                    [&](uint32_t a, uint32_t b) {
                      return std::lexicographical_compare(
                          flat + a * arity, flat + (a + 1) * arity,
                          flat + b * arity, flat + (b + 1) * arity);
                    });
        }
        auto excluded = [&](size_t sh, uint32_t slot) -> bool {
          frame.row_codes.clear();
          for (size_t c = 0; c < arity; ++c) {
            frame.row_codes.push_back(rel->shard_codes(sh, c)[slot]);
          }
          const uint32_t* flat = frame.exclude_flat.data();
          const uint32_t* want = frame.row_codes.data();
          auto it = std::lower_bound(
              frame.exclude_order.begin(), frame.exclude_order.end(), want,
              [&](uint32_t a, const uint32_t* w) {
                return std::lexicographical_compare(
                    flat + a * arity, flat + (a + 1) * arity, w, w + arity);
              });
          return it != frame.exclude_order.end() &&
                 std::equal(flat + *it * arity, flat + (*it + 1) * arity,
                            want);
        };
        const bool have_exclude = !frame.exclude_order.empty();
        auto emit_slot = [&](size_t sh, uint32_t slot) -> Status {
          if (have_exclude && excluded(sh, slot)) return Status::OK();
          // Repeated-variable columns: codes live in per-column
          // dictionaries and are not comparable across columns, so the
          // equality is checked on decoded values.
          for (size_t i = 0; i < step.args.size(); ++i) {
            const ArgPat& p = step.args[i];
            if (p.kind == ArgPat::Kind::kSame &&
                !(rel->At(sh, slot, i) ==
                  rel->At(sh, slot, static_cast<size_t>(p.same_col)))) {
              return Status::OK();
            }
          }
          frame.bound_here.clear();
          for (size_t i = 0; i < step.args.size(); ++i) {
            if (step.args[i].kind == ArgPat::Kind::kBind) {
              env[step.args[i].slot] = rel->At(sh, slot, i);
              frame.bound_here.push_back(step.args[i].slot);
            }
          }
          Status st = RunFrom(steps, idx + 1, env, delta, on_match);
          for (int s : frame.bound_here) env[s].reset();
          return st;
        };
        // Per-shard kernel descriptors: the filters' column base pointers
        // for this shard plus the resolved codes.
        auto shard_filters = [&](size_t sh) -> const CodeFilter* {
          frame.kernel_filters.clear();
          for (const auto& [col, code] : filters) {
            frame.kernel_filters.push_back(
                CodeFilter{rel->shard_codes(sh, col).data(), code});
          }
          return frame.kernel_filters.data();
        };
        if (mask != 0 && step.probe != Step::Probe::kScanAll) {
          Tuple& key = frame.key;
          key.clear();
          for (int col : step.key_cols) {
            const ArgPat& p = step.args[col];
            key.push_back(p.kind == ArgPat::Kind::kConst ? p.constant
                                                         : *env[p.slot]);
          }
          const int only = step.probe == Step::Probe::kFanout
                               ? -1
                               : rel->ProbeShardOf(mask, key);
          const size_t begin = only >= 0 ? static_cast<size_t>(only) : 0;
          const size_t end =
              only >= 0 ? static_cast<size_t>(only) + 1 : rel->shard_count();
          for (size_t sh = begin; sh < end; ++sh) {
            const std::vector<size_t>& rows = rel->ProbeShard(sh, mask, key);
            if (rows.empty()) continue;
            // The probe bucket already matched the masked columns, but the
            // filters can cover more than the mask (arity > 32); refine
            // the slot list through the same fused kernels as full scans.
            frame.sel.clear();
            FilterFusedSelect(simd_, shard_filters(sh), filters.size(),
                              rows.data(), rows.size(), &frame.sel);
            for (uint32_t slot : frame.sel) {
              SB_RETURN_IF_ERROR(emit_slot(sh, slot));
            }
          }
        } else {
          for (size_t sh = 0; sh < rel->shard_count(); ++sh) {
            const size_t rows = rel->shard_size(sh);
            if (rows == 0) continue;
            frame.sel.clear();
            // Single-column filters binary-search warm sorted-run metadata
            // (EnsureSortedRuns, warmed by the fixpoint's staging phase)
            // instead of touching every slot; runs are consecutive slot
            // ranges, so emission order stays ascending. Cold or
            // fragmented runs fall through to the fused filter kernels.
            bool emitted = false;
            if (filters.size() == 1) {
              const auto* bounds =
                  rel->SortedRunBoundsIfWarm(sh, filters[0].first);
              if (bounds != nullptr && bounds->size() >= 2 &&
                  (bounds->size() - 1) * 16 <= rows) {
                const std::vector<uint32_t>& codes =
                    rel->shard_codes(sh, filters[0].first);
                const uint32_t code = filters[0].second;
                for (size_t r = 0; r + 1 < bounds->size(); ++r) {
                  auto lo = codes.begin() + (*bounds)[r];
                  auto hi = codes.begin() + (*bounds)[r + 1];
                  auto [first, last] = std::equal_range(lo, hi, code);
                  for (auto it = first; it != last; ++it) {
                    frame.sel.push_back(static_cast<uint32_t>(
                        it - codes.begin()));
                  }
                }
                emitted = true;
              }
            }
            if (!emitted) {
              FilterFusedRange(simd_, shard_filters(sh), filters.size(), 0,
                               static_cast<uint32_t>(rows), &frame.sel);
            }
            for (uint32_t slot : frame.sel) {
              SB_RETURN_IF_ERROR(emit_slot(sh, slot));
            }
          }
        }
        return Status::OK();
      }
      if (mask != 0 && step.probe != Step::Probe::kScanAll) {
        Tuple& key = frame.key;
        key.clear();
        for (int col : step.key_cols) {
          const ArgPat& p = step.args[col];
          key.push_back(p.kind == ArgPat::Kind::kConst ? p.constant
                                                       : *env[p.slot]);
        }
        // NOTE: callbacks must not mutate relations (fixpoint drivers buffer
        // head insertions), so the probe result stays valid — see the
        // reference-stability contract in relation.h. A probe that covers
        // the shard key touches exactly one shard; otherwise it fans out
        // over the shards in order. Planner-built steps carry the choice
        // statically; kAuto (baseline) resolves it here per call.
        const int only = step.probe == Step::Probe::kFanout
                             ? -1
                             : rel->ProbeShardOf(mask, key);
        const size_t begin = only >= 0 ? static_cast<size_t>(only) : 0;
        const size_t end =
            only >= 0 ? static_cast<size_t>(only) + 1 : rel->shard_count();
        for (size_t sh = begin; sh < end; ++sh) {
          const std::vector<size_t>& rows = rel->ProbeShard(sh, mask, key);
          const std::vector<Tuple>& shard = rel->shard_tuples(sh);
          for (size_t slot : rows) {
            SB_RETURN_IF_ERROR(try_row(shard[slot]));
          }
        }
      } else {
        for (size_t sh = 0; sh < rel->shard_count(); ++sh) {
          for (const Tuple& t : rel->shard_tuples(sh)) {
            SB_RETURN_IF_ERROR(try_row(t));
          }
        }
      }
      return Status::OK();
    }

    case Step::Kind::kLookup: {
      const OccView* view = ViewFor(delta, step);
      // Enumerate one candidate row (keys already matched elsewhere or
      // checked via TupleMatches by the caller).
      auto try_row = [&](const Tuple& t) -> Status {
        const ArgPat& vp = step.args.back();
        const Value& v = t.back();
        if (vp.kind == ArgPat::Kind::kConst) {
          if (!(v == vp.constant)) return Status::OK();
          return RunFrom(steps, idx + 1, env, delta, on_match);
        }
        if (vp.kind == ArgPat::Kind::kBound) {
          if (!(v == *env[vp.slot])) return Status::OK();
          return RunFrom(steps, idx + 1, env, delta, on_match);
        }
        env[vp.slot] = v;
        Status st = RunFrom(steps, idx + 1, env, delta, on_match);
        env[vp.slot].reset();
        return st;
      };
      // Delta variant: iterate the delta like a scan (keys are bound, so
      // this is a cheap filter).
      const std::vector<Tuple>* only =
          view != nullptr
              ? view->only
              : (delta != nullptr && delta->occurrence == step.occurrence
                     ? delta->tuples
                     : nullptr);
      if (only != nullptr) {
        const std::vector<uint32_t>* oi =
            view != nullptr ? view->only_index : nullptr;
        const size_t limit = oi != nullptr ? oi->size() : only->size();
        size_t begin = view != nullptr ? view->only_begin : 0;
        size_t end =
            std::min(view != nullptr ? view->only_end : SIZE_MAX, limit);
        for (size_t k = begin; k < end; ++k) {
          const Tuple& t = oi != nullptr ? (*only)[(*oi)[k]] : (*only)[k];
          if (!TupleMatches(step.args, t, env)) continue;
          SB_RETURN_IF_ERROR(try_row(t));
        }
        return Status::OK();
      }
      // Erased tuples restored for retraction variants: these can coexist
      // with a live row under the same keys (the row replaced them within
      // the transaction), so both are enumerated.
      if (view != nullptr && view->extra != nullptr) {
        for (const Tuple& t : *view->extra) {
          if (!TupleMatches(step.args, t, env)) continue;
          SB_RETURN_IF_ERROR(try_row(t));
        }
      }
      Relation* rel = store_.GetRelation(step.pred);
      if (rel == nullptr) return Status::OK();
      EvalFrame& frame = t_frames[frame_base_ + idx];
      Tuple& keys = frame.key;
      keys.clear();
      for (size_t i = 0; i + 1 < step.args.size(); ++i) {
        const ArgPat& p = step.args[i];
        keys.push_back(p.kind == ArgPat::Kind::kConst ? p.constant
                                                      : *env[p.slot]);
      }
      const Tuple* t = rel->LookupByKeys(keys, &frame.row);
      if (t == nullptr) return Status::OK();
      if (view != nullptr && view->exclude != nullptr &&
          view->exclude->count(*t)) {
        return Status::OK();
      }
      return try_row(*t);
    }

    case Step::Kind::kNegCheck: {
      Relation* rel = store_.GetRelation(step.pred);
      if (rel == nullptr || rel->empty()) {
        return RunFrom(steps, idx + 1, env, delta, on_match);
      }
      const uint32_t mask = step.probe_mask;
      bool exists;
      if (mask == 0) {
        exists = !rel->empty();
      } else {
        Tuple& key = t_frames[frame_base_ + idx].key;
        key.clear();
        for (int col : step.key_cols) {
          const ArgPat& p = step.args[col];
          key.push_back(p.kind == ArgPat::Kind::kConst ? p.constant
                                                       : *env[p.slot]);
        }
        const int only = step.probe == Step::Probe::kFanout
                             ? -1
                             : rel->ProbeShardOf(mask, key);
        const size_t begin = only >= 0 ? static_cast<size_t>(only) : 0;
        const size_t end =
            only >= 0 ? static_cast<size_t>(only) + 1 : rel->shard_count();
        exists = false;
        for (size_t sh = begin; sh < end && !exists; ++sh) {
          exists = !rel->ProbeShard(sh, mask, key).empty();
        }
      }
      if (exists) return Status::OK();  // negation fails
      return RunFrom(steps, idx + 1, env, delta, on_match);
    }

    case Step::Kind::kCompare: {
      SB_ASSIGN_OR_RETURN(Value l, Eval(*step.lhs, env));
      SB_ASSIGN_OR_RETURN(Value r, Eval(*step.rhs, env));
      SB_ASSIGN_OR_RETURN(bool pass, Compare(l, step.cmp_op, r));
      if (!pass) return Status::OK();
      return RunFrom(steps, idx + 1, env, delta, on_match);
    }

    case Step::Kind::kAssign: {
      SB_ASSIGN_OR_RETURN(Value v, Eval(*step.rhs, env));
      env[step.assign_slot] = std::move(v);
      Status st = RunFrom(steps, idx + 1, env, delta, on_match);
      env[step.assign_slot].reset();
      return st;
    }

    case Step::Kind::kBuiltin: {
      const auto& sig = step.builtin->sig;
      EvalFrame& frame = t_frames[frame_base_ + idx];
      frame.inputs.clear();
      for (int i = 0; i < sig.num_inputs; ++i) {
        const ArgPat& p = step.args[i];
        frame.inputs.push_back(p.kind == ArgPat::Kind::kConst ? p.constant
                                                              : *env[p.slot]);
      }
      frame.outputs.clear();
      SB_ASSIGN_OR_RETURN(bool produced,
                          step.builtin->fn(ctx_, frame.inputs,
                                           &frame.outputs));
      if (!produced) return Status::OK();
      size_t num_outputs = step.args.size() - sig.num_inputs;
      if (frame.outputs.size() != num_outputs) {
        return Status::Internal("builtin '" + step.builtin_name +
                                "' produced wrong number of outputs");
      }
      frame.bound_here.clear();
      bool ok = true;
      for (size_t i = 0; i < num_outputs; ++i) {
        const ArgPat& p = step.args[sig.num_inputs + i];
        if (p.kind == ArgPat::Kind::kBind) {
          env[p.slot] = frame.outputs[i];
          frame.bound_here.push_back(p.slot);
        } else {
          const Value& want =
              p.kind == ArgPat::Kind::kConst ? p.constant : *env[p.slot];
          if (!(frame.outputs[i] == want)) {
            ok = false;
            break;
          }
        }
      }
      Status st = Status::OK();
      if (ok) st = RunFrom(steps, idx + 1, env, delta, on_match);
      for (int s : frame.bound_here) env[s].reset();
      return st;
    }

    case Step::Kind::kTypeCheck: {
      const ArgPat& p = step.args[0];
      const Value& v =
          p.kind == ArgPat::Kind::kConst ? p.constant : *env[p.slot];
      if (v.kind() != step.check_kind) return Status::OK();
      return RunFrom(steps, idx + 1, env, delta, on_match);
    }
  }
  return Status::Internal("bad step kind");
}

Status Executor::Run(const std::vector<Step>& steps, Env* env,
                     const DeltaOverride* delta,
                     const std::function<Status(Env&)>& on_match) {
  // Claim a window of per-depth frames above any enclosing Run on this
  // thread (the constraint checker nests an rhs Exists inside its lhs
  // enumeration), so equal depths in nested enumerations never share
  // scratch. Frames persist in the thread-local pool; after warm-up this
  // allocates nothing.
  const size_t saved_base = frame_base_;
  const size_t saved_top = t_frame_top;
  frame_base_ = t_frame_top;
  t_frame_top += steps.size();
  while (t_frames.size() < t_frame_top) {
    t_frames.emplace_back();
    // Pre-size the batch-path buffers so small steady-state scans never
    // allocate; a larger scan grows them once and the capacity persists
    // with the pooled frame.
    t_frames.back().sel.reserve(kSelReserve);
    t_frames.back().row_codes.reserve(8);
    t_frames.back().kernel_filters.reserve(8);
    g_frame_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  Status st = RunFrom(steps, 0, *env, delta, on_match);
  t_frame_top = saved_top;
  frame_base_ = saved_base;
  return st;
}

Result<bool> Executor::Exists(const std::vector<Step>& steps, Env* env) {
  bool found = false;
  // A sentinel "error" short-circuits enumeration after the first match.
  Status st = Run(steps, env, nullptr, [&](Env&) -> Status {
    found = true;
    return Status(StatusCode::kInternal, "__found__");
  });
  if (!st.ok() && st.message() != "__found__") return st;
  return found;
}

}  // namespace secureblox::engine
