#include "engine/rule_graph.h"

#include <algorithm>
#include <map>
#include <set>

namespace secureblox::engine {

using datalog::PredId;

std::vector<PredId> HeadPreds(const CompiledRule& rule) {
  std::vector<PredId> out;
  if (rule.agg.has_value()) {
    out.push_back(rule.agg->head_pred);
  } else {
    for (const auto& h : rule.heads) out.push_back(h.pred);
  }
  return out;
}

namespace {

// (pred, negated) pairs read by a rule body.
std::vector<std::pair<PredId, bool>> BodyPreds(const CompiledRule& r) {
  std::vector<std::pair<PredId, bool>> out;
  for (const Step& s : r.steps) {
    if (s.kind == Step::Kind::kScan || s.kind == Step::Kind::kLookup) {
      out.emplace_back(s.pred, false);
    } else if (s.kind == Step::Kind::kNegCheck) {
      out.emplace_back(s.pred, true);
    }
  }
  return out;
}

// Tarjan SCC over predicate ids (stratification).
class PredScc {
 public:
  explicit PredScc(const std::map<PredId, std::set<PredId>>& edges)
      : edges_(edges) {
    for (const auto& [n, _] : edges_) {
      if (!index_.count(n)) Visit(n);
    }
  }

  int ComponentOf(PredId n) const {
    auto it = comp_.find(n);
    return it == comp_.end() ? -1 : it->second;
  }
  int num_components() const { return num_comps_; }

 private:
  void Visit(PredId n) {
    index_[n] = low_[n] = counter_++;
    stack_.push_back(n);
    on_stack_.insert(n);
    auto it = edges_.find(n);
    if (it != edges_.end()) {
      for (PredId m : it->second) {
        if (!index_.count(m)) {
          Visit(m);
          low_[n] = std::min(low_[n], low_[m]);
        } else if (on_stack_.count(m)) {
          low_[n] = std::min(low_[n], index_[m]);
        }
      }
    }
    if (low_[n] == index_[n]) {
      while (true) {
        PredId m = stack_.back();
        stack_.pop_back();
        on_stack_.erase(m);
        comp_[m] = num_comps_;
        if (m == n) break;
      }
      ++num_comps_;
    }
  }

  const std::map<PredId, std::set<PredId>>& edges_;
  std::unordered_map<PredId, int> index_, low_, comp_;
  std::vector<PredId> stack_;
  std::unordered_set<PredId> on_stack_;
  int counter_ = 0;
  int num_comps_ = 0;
};

// Tarjan SCC over rule indices. Components are emitted consumers-first
// (reverse topological order of the condensation).
class RuleScc {
 public:
  explicit RuleScc(const std::vector<std::vector<size_t>>& feeds)
      : feeds_(feeds), index_(feeds.size(), -1), low_(feeds.size(), 0),
        comp_(feeds.size(), -1), on_stack_(feeds.size(), false) {
    for (size_t n = 0; n < feeds.size(); ++n) {
      if (index_[n] < 0) Visit(n);
    }
  }

  int ComponentOf(size_t n) const { return comp_[n]; }
  int num_components() const { return num_comps_; }

 private:
  void Visit(size_t n) {
    index_[n] = low_[n] = counter_++;
    stack_.push_back(n);
    on_stack_[n] = true;
    for (size_t m : feeds_[n]) {
      if (index_[m] < 0) {
        Visit(m);
        low_[n] = std::min(low_[n], low_[m]);
      } else if (on_stack_[m]) {
        low_[n] = std::min(low_[n], index_[m]);
      }
    }
    if (low_[n] == index_[n]) {
      while (true) {
        size_t m = stack_.back();
        stack_.pop_back();
        on_stack_[m] = false;
        comp_[m] = num_comps_;
        if (m == n) break;
      }
      ++num_comps_;
    }
  }

  const std::vector<std::vector<size_t>>& feeds_;
  std::vector<int> index_, low_, comp_;
  std::vector<bool> on_stack_;
  std::vector<size_t> stack_;
  int counter_ = 0;
  int num_comps_ = 0;
};

}  // namespace

Result<std::vector<int>> Stratify(const std::vector<CompiledRule*>& rules,
                                  const datalog::Catalog& catalog,
                                  std::vector<bool>* lattice_flags,
                                  bool allow_unstratified_negation) {
  // Dependency edges head -> body pred, with negation/aggregation marked.
  std::map<PredId, std::set<PredId>> edges;
  struct MarkedEdge {
    PredId from, to;
    const CompiledRule* rule;
  };
  std::vector<MarkedEdge> negative_edges;

  for (const CompiledRule* r : rules) {
    for (PredId h : HeadPreds(*r)) {
      edges[h];  // ensure node
      for (const auto& [b, negated] : BodyPreds(*r)) {
        edges[h].insert(b);
        edges[b];  // ensure node
        if (negated || r->agg.has_value()) {
          negative_edges.push_back({h, b, r});
        }
      }
    }
  }

  PredScc scc(edges);

  // Longest-path levels over the condensation: positive edges weight 0,
  // negative/aggregate edges weight 1. Iterate to fixpoint (few preds).
  std::vector<int> level(scc.num_components(), 0);
  bool changed = true;
  int guard = 0;
  while (changed) {
    changed = false;
    if (++guard > scc.num_components() + 2) break;  // cycles handled below
    for (const auto& [from, tos] : edges) {
      int cf = scc.ComponentOf(from);
      for (PredId to : tos) {
        int ct = scc.ComponentOf(to);
        if (cf == ct) continue;
        if (level[cf] < level[ct]) {
          level[cf] = level[ct];
          changed = true;
        }
      }
    }
    for (const auto& e : negative_edges) {
      int cf = scc.ComponentOf(e.from);
      int ct = scc.ComponentOf(e.to);
      if (cf == ct) continue;  // recursive: validated below
      if (level[cf] < level[ct] + 1) {
        level[cf] = level[ct] + 1;
        changed = true;
      }
    }
  }

  // Validate negation / aggregation.
  lattice_flags->assign(rules.size(), false);
  for (size_t i = 0; i < rules.size(); ++i) {
    const CompiledRule& r = *rules[i];
    for (const Step& s : r.steps) {
      if (s.kind != Step::Kind::kNegCheck) continue;
      for (PredId h : HeadPreds(r)) {
        if (scc.ComponentOf(h) == scc.ComponentOf(s.pred) &&
            !allow_unstratified_negation) {
          return Status::CompileError(
              "unstratified negation through predicate '" +
              catalog.decl(s.pred).name + "' in rule: " + r.source.ToString());
        }
      }
    }
    if (r.agg.has_value()) {
      bool recursive = false;
      for (const auto& [b, negated] : BodyPreds(r)) {
        (void)negated;
        if (scc.ComponentOf(r.agg->head_pred) == scc.ComponentOf(b)) {
          recursive = true;
        }
      }
      if (recursive) {
        if (r.agg->func != datalog::AggFunc::kMin &&
            r.agg->func != datalog::AggFunc::kMax) {
          return Status::CompileError(
              "recursive aggregation must be min or max (lattice mode): " +
              r.source.ToString());
        }
        (*lattice_flags)[i] = true;
      }
    }
  }

  std::vector<int> strata(rules.size(), 0);
  for (size_t i = 0; i < rules.size(); ++i) {
    int s = 0;
    for (PredId h : HeadPreds(*rules[i])) {
      s = std::max(s, level[scc.ComponentOf(h)]);
    }
    strata[i] = s;
  }
  return strata;
}

Result<RuleGraph> RuleGraph::Build(const std::vector<CompiledRule*>& rules,
                                   const datalog::Catalog& catalog,
                                   bool allow_unstratified_negation) {
  RuleGraph g;
  SB_ASSIGN_OR_RETURN(g.strata_,
                      Stratify(rules, catalog, &g.lattice_flags_,
                               allow_unstratified_negation));
  g.max_stratum_ = 0;
  for (int s : g.strata_) g.max_stratum_ = std::max(g.max_stratum_, s);

  // Predicate -> consuming rules (scan/lookup occurrences drive re-firing;
  // negation probes never do — they read completed lower strata, or
  // derivation-time state in declarative-networking mode).
  for (size_t i = 0; i < rules.size(); ++i) {
    std::set<PredId> seen;
    for (PredId p : rules[i]->scan_preds) {
      if (seen.insert(p).second) g.consumers_[p].push_back(i);
    }
    for (const Step& s : rules[i]->steps) {
      if (s.kind == Step::Kind::kNegCheck) g.negated_preds_.insert(s.pred);
    }
  }

  // Rule dependency edges within a stratum: r1 feeds r2 when a head
  // predicate of r1 has a scan occurrence in r2.
  std::vector<std::vector<size_t>> feeds(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    std::set<size_t> outs;
    for (PredId h : HeadPreds(*rules[i])) {
      auto it = g.consumers_.find(h);
      if (it == g.consumers_.end()) continue;
      for (size_t j : it->second) {
        if (j != i && g.strata_[j] == g.strata_[i]) outs.insert(j);
      }
      // Self-loop: a rule reading its own head is recursive even as a
      // singleton SCC.
      if (std::find(it->second.begin(), it->second.end(), i) !=
          it->second.end()) {
        outs.insert(i);
      }
    }
    feeds[i].assign(outs.begin(), outs.end());
  }

  RuleScc scc(feeds);
  // Tarjan emits components consumers-first; flip ids so ascending group id
  // is a producers-first topological order.
  int num = scc.num_components();
  g.group_of_rule_.resize(rules.size());
  g.groups_.assign(num, {});
  for (size_t i = 0; i < rules.size(); ++i) {
    int id = num - 1 - scc.ComponentOf(i);
    g.group_of_rule_[i] = id;
    g.groups_[id].rules.push_back(i);
  }
  for (int id = 0; id < num; ++id) {
    RuleGroup& grp = g.groups_[id];
    grp.id = id;
    grp.stratum = g.strata_[grp.rules.front()];
    std::sort(grp.rules.begin(), grp.rules.end());
    std::set<PredId> touched;
    auto touch_entity_type = [&](PredId type) {
      if (!catalog.decl(type).is_entity_type) return;
      touched.insert(type);
      for (PredId up : catalog.SupertypesOf(type)) touched.insert(up);
    };
    for (size_t r : grp.rules) {
      for (PredId h : HeadPreds(*rules[r])) {
        touched.insert(h);
        // Inserting a head tuple can create entities (existentials, string
        // interning) whose membership facts land in the entity type
        // predicates and their supertypes — those are writes too.
        for (PredId t : catalog.decl(h).arg_types) touch_entity_type(t);
      }
      for (PredId t : rules[r]->existential_types) touch_entity_type(t);
      for (const auto& [b, negated] : BodyPreds(*rules[r])) {
        (void)negated;
        touched.insert(b);
      }
    }
    grp.footprint.assign(touched.begin(), touched.end());
  }
  // Successors + recursion flags from the rule-level edges.
  std::vector<std::set<int>> succ(num);
  for (size_t i = 0; i < rules.size(); ++i) {
    for (size_t j : feeds[i]) {
      int gi = g.group_of_rule_[i], gj = g.group_of_rule_[j];
      if (gi == gj) {
        g.groups_[gi].recursive = true;
      } else {
        succ[gi].insert(gj);
      }
    }
  }
  for (int id = 0; id < num; ++id) {
    g.groups_[id].successors.assign(succ[id].begin(), succ[id].end());
  }

  g.groups_by_stratum_.assign(g.max_stratum_ + 1, {});
  for (int id = 0; id < num; ++id) {
    g.groups_by_stratum_[g.groups_[id].stratum].push_back(id);
  }

  // Delta-routing and rederivation indexes.
  for (const auto& [pred, rule_ids] : g.consumers_) {
    std::set<int> gs;
    for (size_t r : rule_ids) gs.insert(g.group_of_rule_[r]);
    g.consumer_groups_[pred].assign(gs.begin(), gs.end());
  }
  {
    std::map<PredId, std::set<int>> neg_groups;
    for (size_t i = 0; i < rules.size(); ++i) {
      for (const Step& s : rules[i]->steps) {
        if (s.kind == Step::Kind::kNegCheck) {
          neg_groups[s.pred].insert(g.group_of_rule_[i]);
        }
      }
    }
    for (const auto& [pred, gs] : neg_groups) {
      g.negator_groups_[pred].assign(gs.begin(), gs.end());
    }
  }
  for (size_t i = 0; i < rules.size(); ++i) {
    std::set<PredId> seen;
    for (PredId h : HeadPreds(*rules[i])) {
      if (seen.insert(h).second) g.producers_[h].push_back(i);
    }
  }
  return g;
}

const std::vector<size_t>& RuleGraph::consumers_of(PredId pred) const {
  static const std::vector<size_t> kEmpty;
  auto it = consumers_.find(pred);
  return it == consumers_.end() ? kEmpty : it->second;
}

const std::vector<int>& RuleGraph::consumer_groups_of(PredId pred) const {
  static const std::vector<int> kEmpty;
  auto it = consumer_groups_.find(pred);
  return it == consumer_groups_.end() ? kEmpty : it->second;
}

const std::vector<int>& RuleGraph::negator_groups_of(PredId pred) const {
  static const std::vector<int> kEmpty;
  auto it = negator_groups_.find(pred);
  return it == negator_groups_.end() ? kEmpty : it->second;
}

const std::vector<size_t>& RuleGraph::producers_of(PredId pred) const {
  static const std::vector<size_t> kEmpty;
  auto it = producers_.find(pred);
  return it == producers_.end() ? kEmpty : it->second;
}

// -- query front end: adornment / slice analysis ---------------------------

std::string AdornmentString(Adornment a, size_t arity) {
  std::string out;
  out.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    out.push_back((a >> i) & 1 ? 'b' : 'f');
  }
  return out;
}

namespace {

// Variables appearing anywhere in a term (arith descends).
void CollectTermVars(const datalog::TermPtr& t,
                     std::unordered_set<std::string>* out) {
  if (t == nullptr) return;
  if (t->kind == datalog::TermKind::kVar) out->insert(t->name);
  if (t->kind == datalog::TermKind::kArith) {
    CollectTermVars(t->lhs, out);
    CollectTermVars(t->rhs, out);
  }
}

}  // namespace

Result<DeferredRuleIndex> DeferredRuleIndex::Build(
    const std::vector<datalog::Rule>& rules, const datalog::Catalog& catalog,
    const datalog::BuiltinSignatureMap& builtins) {
  DeferredRuleIndex index;
  index.num_rules_ = rules.size();
  for (const auto& [name, sig] : builtins) index.builtin_names_.insert(name);

  // Pass 1: producers, dependency edges, negated-predicate set, and the
  // seeds of the full-materialization set.
  std::unordered_set<PredId> negated;
  for (size_t r = 0; r < rules.size(); ++r) {
    const datalog::Rule& rule = rules[r];
    std::unordered_set<std::string> body_vars;
    std::vector<PredId> body_preds;
    for (const datalog::Literal& lit : rule.body) {
      if (lit.kind == datalog::Literal::Kind::kCompare) {
        CollectTermVars(lit.cmp.lhs, &body_vars);
        CollectTermVars(lit.cmp.rhs, &body_vars);
        continue;
      }
      for (const auto& arg : lit.atom.args) CollectTermVars(arg, &body_vars);
      if (index.builtin_names_.count(lit.atom.pred.name)) continue;
      SB_ASSIGN_OR_RETURN(PredId pid, catalog.Lookup(lit.atom.pred.name));
      body_preds.push_back(pid);
      if (lit.atom.negated) negated.insert(pid);
    }

    // Aggregate rules need complete input groups; multi-head rules derive
    // every head per body match, so restricting one head starves the
    // others; head existentials create entities whose labels depend on the
    // producing rule's identity. All three install unguarded.
    bool unadornable = rule.agg.has_value() || rule.heads.size() > 1;
    for (const datalog::Atom& head : rule.heads) {
      for (const auto& arg : head.args) {
        if (arg->kind == datalog::TermKind::kVar &&
            !body_vars.count(arg->name)) {
          unadornable = true;  // head existential
        }
      }
    }
    for (const datalog::Atom& head : rule.heads) {
      SB_ASSIGN_OR_RETURN(PredId hid, catalog.Lookup(head.pred.name));
      index.producers_[hid].push_back(r);
      auto& deps = index.deps_[hid];
      for (PredId p : body_preds) {
        if (std::find(deps.begin(), deps.end(), p) == deps.end()) {
          deps.push_back(p);
        }
      }
      if (unadornable) index.full_.insert(hid);
    }
  }
  for (PredId p : negated) {
    if (index.IsIdb(p)) index.negated_idb_.insert(p);
  }

  // Pass 2: close the full set downward — an unguarded rule reads its body
  // predicates in full, so they must be complete too.
  std::vector<PredId> work(index.full_.begin(), index.full_.end());
  while (!work.empty()) {
    PredId p = work.back();
    work.pop_back();
    auto it = index.deps_.find(p);
    if (it == index.deps_.end()) continue;
    for (PredId q : it->second) {
      if (index.IsIdb(q) && index.full_.insert(q).second) work.push_back(q);
    }
  }
  return index;
}

const std::vector<size_t>& DeferredRuleIndex::ProducersOf(PredId pred) const {
  static const std::vector<size_t> kEmpty;
  auto it = producers_.find(pred);
  return it == producers_.end() ? kEmpty : it->second;
}

std::vector<PredId> DeferredRuleIndex::SliceClosure(PredId pred) const {
  std::unordered_set<PredId> seen{pred};
  std::vector<PredId> work{pred};
  while (!work.empty()) {
    PredId p = work.back();
    work.pop_back();
    auto it = deps_.find(p);
    if (it == deps_.end()) continue;
    for (PredId q : it->second) {
      if (seen.insert(q).second) work.push_back(q);
    }
  }
  std::vector<PredId> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool DeferredRuleIndex::SliceHasNegatedIdb(PredId pred) const {
  if (negated_idb_.empty()) return false;
  for (PredId p : SliceClosure(pred)) {
    if (negated_idb_.count(p)) return true;
  }
  return false;
}

std::vector<size_t> DeferredRuleIndex::SliceRules(PredId pred) const {
  std::set<size_t> out;
  for (PredId p : SliceClosure(pred)) {
    for (size_t r : ProducersOf(p)) out.insert(r);
  }
  return std::vector<size_t>(out.begin(), out.end());
}

}  // namespace secureblox::engine
