#include "engine/query.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

namespace secureblox::engine {

using datalog::PredId;
using datalog::Value;
using datalog::ValueKind;

namespace {

// Deterministic answer order: position-wise value order (kind, then
// payload — Value::operator<), independent of storage layout and shard
// count.
void SortAnswers(std::vector<Tuple>* tuples) {
  std::sort(tuples->begin(), tuples->end(),
            [](const Tuple& a, const Tuple& b) {
              size_t n = std::min(a.size(), b.size());
              for (size_t i = 0; i < n; ++i) {
                if (a[i] < b[i]) return true;
                if (b[i] < a[i]) return false;
              }
              return a.size() < b.size();
            });
}

std::string MagicPredName(const datalog::PredicateDecl& decl, Adornment a) {
  // '$' cannot appear in parsed predicate names, so generated names never
  // collide with application predicates.
  return "magic$" + decl.name + "$" + AdornmentString(a, decl.arity());
}

}  // namespace

QueryEngine::QueryEngine(Workspace* ws) : ws_(ws) {
  if (const char* env = std::getenv("SB_QUERY_ANSWER_CAP")) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') answer_cap_ = static_cast<size_t>(v);
  }
}

void QueryEngine::set_answer_cap(size_t cap) {
  answer_cap_ = cap;
  TrimAnswers();
}

void QueryEngine::TrimAnswers() {
  while (answer_cap_ != 0 && answers_.size() > answer_cap_) {
    answers_.erase(lru_.back());
    lru_.pop_back();
    ++answer_evictions_;
  }
}

Result<QueryEngine::ResolvedGoal> QueryEngine::Resolve(
    const QueryGoal& goal) const {
  const datalog::Catalog& catalog = ws_->catalog();
  ResolvedGoal out;
  SB_ASSIGN_OR_RETURN(out.pred, catalog.Lookup(goal.pred));
  const datalog::PredicateDecl& decl = catalog.decl(out.pred);
  if (goal.args.size() != decl.arity()) {
    return Status::InvalidArgument(
        "goal arity mismatch for '" + decl.name + "': got " +
        std::to_string(goal.args.size()) + ", declared " +
        std::to_string(decl.arity()));
  }
  if (decl.arity() > 32) {
    return Status::InvalidArgument("goal arity exceeds adornment width");
  }
  for (size_t i = 0; i < goal.args.size(); ++i) {
    if (!goal.args[i].has_value()) continue;
    out.adornment |= 1u << i;
    const Value& v = *goal.args[i];
    PredId type = decl.arg_types[i];
    const datalog::PredicateDecl& t = catalog.decl(type);
    if (t.is_entity_type) {
      if (v.kind() == ValueKind::kString) {
        // A label never interned here names no entity: the goal has no
        // answers. (FindEntity, not InternEntity — a read-only query must
        // not grow the entity tables.)
        auto e = catalog.FindEntity(type, v.AsString());
        if (!e.ok()) {
          out.missing_entity = true;
          return out;
        }
        out.bound.push_back(e.value());
        continue;
      }
      if (v.is_entity() && catalog.IsSubtype(v.entity_type(), type)) {
        out.bound.push_back(v);
        continue;
      }
      return Status::TypeError("bound value " + catalog.ValueToString(v) +
                               " does not inhabit entity type '" + t.name +
                               "' (arg " + std::to_string(i) + " of " +
                               decl.name + ")");
    }
    if (t.is_primitive) {
      if (v.kind() != t.primitive_kind) {
        return Status::TypeError("bound value " + v.ToString() +
                                 " does not have type '" + t.name +
                                 "' (arg " + std::to_string(i) + " of " +
                                 decl.name + ")");
      }
      out.bound.push_back(v);
      continue;
    }
    return Status::TypeError("argument type of '" + decl.name +
                             "' is not a type predicate");
  }
  return out;
}

std::vector<Tuple> QueryEngine::Probe(const ResolvedGoal& goal) const {
  std::vector<Tuple> out;
  const Relation* rel = ws_->GetRelationIfExists(goal.pred);
  if (rel == nullptr) return out;
  for (Tuple& t : rel->AllTuples()) {
    bool match = true;
    size_t bi = 0;
    for (size_t i = 0; i < t.size() && match; ++i) {
      if ((goal.adornment >> i) & 1) {
        if (!(t[i] == goal.bound[bi])) match = false;
        ++bi;
      }
    }
    if (match) out.push_back(std::move(t));
  }
  SortAnswers(&out);
  return out;
}

std::optional<uint64_t> QueryEngine::EpochIfKnown(PredId pred) const {
  auto it = closure_memo_.find(pred);
  if (it == closure_memo_.end()) return std::nullopt;
  uint64_t epoch = 0;
  for (PredId p : it->second) {
    const Relation* rel = ws_->GetRelationIfExists(p);
    // Versions start at 1 and only grow; an uncreated relation counts 0,
    // so the sum is monotone and equality means "nothing changed".
    epoch += rel ? rel->version() : 0;
  }
  return epoch;
}

std::optional<std::vector<Tuple>> QueryEngine::TryWarm(
    const QueryGoal& goal) const {
  auto resolved = Resolve(goal);
  if (!resolved.ok()) return std::nullopt;  // cold path reports the error
  if (resolved->missing_entity) {
    warm_hits_.fetch_add(1, std::memory_order_relaxed);
    queries_.fetch_add(1, std::memory_order_relaxed);
    return std::vector<Tuple>{};
  }
  if (!ws_->defer_rules()) {
    // Materialized workspace: every answer is already derived, so the
    // filtered probe is itself a pure read.
    queries_.fetch_add(1, std::memory_order_relaxed);
    warm_hits_.fetch_add(1, std::memory_order_relaxed);
    return Probe(*resolved);
  }
  if (ws_->deferred_rules().size() != indexed_rules_) return std::nullopt;
  auto it = answers_.find(
      SubgoalKey{resolved->pred, resolved->adornment, resolved->bound});
  if (it == answers_.end()) return std::nullopt;
  auto epoch = EpochIfKnown(resolved->pred);
  if (!epoch.has_value() || *epoch != it->second.epoch) return std::nullopt;
  queries_.fetch_add(1, std::memory_order_relaxed);
  warm_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.tuples;
}

Result<std::vector<Tuple>> QueryEngine::Query(const QueryGoal& goal) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  SB_ASSIGN_OR_RETURN(ResolvedGoal resolved, Resolve(goal));
  if (resolved.missing_entity) return std::vector<Tuple>{};
  if (!ws_->defer_rules()) return Probe(resolved);

  SB_RETURN_IF_ERROR(RefreshIndex());
  if (index_->IsIdb(resolved.pred)) {
    SB_RETURN_IF_ERROR(EnsureSliceReady(resolved));
  }
  std::vector<Tuple> answers = Probe(resolved);
  if (index_->IsIdb(resolved.pred)) {
    if (!closure_memo_.count(resolved.pred)) {
      closure_memo_[resolved.pred] = index_->SliceClosure(resolved.pred);
    }
    reprobes_.fetch_add(1, std::memory_order_relaxed);
    SubgoalKey key{resolved.pred, resolved.adornment, resolved.bound};
    auto [it, inserted] = answers_.try_emplace(key);
    if (!inserted) lru_.erase(it->second.lru_it);
    lru_.push_front(key);
    it->second =
        AnswerSnapshot{answers, *EpochIfKnown(resolved.pred), lru_.begin()};
    TrimAnswers();
  }
  return answers;
}

Status QueryEngine::RefreshIndex() {
  if (index_.has_value() &&
      ws_->deferred_rules().size() == indexed_rules_) {
    return Status::OK();
  }
  SB_ASSIGN_OR_RETURN(
      DeferredRuleIndex index,
      DeferredRuleIndex::Build(ws_->deferred_rules(), ws_->catalog(),
                               ws_->builtins().Signatures()));
  bool first = !index_.has_value();
  size_t old_rules = indexed_rules_;
  // Predicates that just gained their first producer: installed slices
  // read them as plain EDB relations, so their demand chains carry no
  // magic rules for them — those slices must degrade to the unguarded
  // install below.
  std::set<PredId> newly_idb;
  if (!first) {
    const std::vector<datalog::Rule>& rules = ws_->deferred_rules();
    for (size_t r = old_rules; r < rules.size(); ++r) {
      for (const datalog::Atom& head : rules[r].heads) {
        auto hid = ws_->catalog().Lookup(head.pred.name);
        if (hid.ok() && !index_->IsIdb(hid.value())) {
          newly_idb.insert(hid.value());
        }
      }
    }
  }
  index_ = std::move(index);
  indexed_rules_ = ws_->deferred_rules().size();
  closure_memo_.clear();
  answers_.clear();
  lru_.clear();
  if (first) return Status::OK();

  // Install happened after queries ran: reconcile every live slice with
  // the appended rules (the high-water marks make this incremental) so
  // previously answered goals stay complete. The batch seed fires the new
  // rules over pre-existing data and magic facts.
  datalog::Program batch;
  std::vector<FactUpdate> seeds;
  batch_seed_pred_.clear();
  std::vector<PredId> full_snapshot(full_ready_.begin(), full_ready_.end());
  for (PredId p : full_snapshot) {
    SB_RETURN_IF_ERROR(CollectFullSlice(p, &batch, &seeds));
  }
  std::vector<std::pair<PredId, Adornment>> adorned_snapshot;
  for (const auto& [key, covered] : installed_adorned_) {
    adorned_snapshot.push_back(key);
  }
  for (const auto& [pred, a] : adorned_snapshot) {
    bool demote = false;
    if (!newly_idb.empty()) {
      for (PredId p : index_->SliceClosure(pred)) {
        if (newly_idb.count(p)) demote = true;
      }
    }
    if (demote) {
      // The slice's installed rules read a newly derived predicate without
      // demanding it; install the whole (deduplicated) closure unguarded.
      SB_RETURN_IF_ERROR(CollectFullSlice(pred, &batch, &seeds));
    } else {
      SB_RETURN_IF_ERROR(CollectAdorned(pred, a, &batch, &seeds));
    }
  }
  if (!batch.rules.empty()) {
    SB_RETURN_IF_ERROR(ws_->InstallSlice(batch));
    ++slices_installed_;
  }
  if (!seeds.empty()) {
    auto commit = ws_->Apply(seeds);
    if (!commit.ok()) return commit.status();
  }
  return Status::OK();
}

Status QueryEngine::EnsureSliceReady(const ResolvedGoal& goal) {
  datalog::Program batch;
  std::vector<FactUpdate> seeds;
  batch_seed_pred_.clear();

  bool magic = goal.adornment != 0 && !full_ready_.count(goal.pred) &&
               !index_->RequiresFull(goal.pred) &&
               !index_->SliceHasNegatedIdb(goal.pred);
  if (magic) {
    SB_RETURN_IF_ERROR(
        CollectAdorned(goal.pred, goal.adornment, &batch, &seeds));
  } else {
    SB_RETURN_IF_ERROR(CollectFullSlice(goal.pred, &batch, &seeds));
  }
  if (!batch.rules.empty()) {
    SB_RETURN_IF_ERROR(ws_->InstallSlice(batch));
    ++slices_installed_;
  }
  if (magic) {
    SubgoalKey key{goal.pred, goal.adornment, goal.bound};
    if (!seeded_.count(key)) {
      seeded_[key] = true;
      ++seeds_;
      const datalog::PredicateDecl& decl = ws_->catalog().decl(goal.pred);
      seeds.push_back({MagicPredName(decl, goal.adornment), goal.bound});
    }
  }
  if (!seeds.empty()) {
    auto commit = ws_->Apply(seeds);
    if (!commit.ok()) return commit.status();
  }
  return Status::OK();
}

Result<std::string> QueryEngine::EnsureMagicPred(PredId pred, Adornment a) {
  datalog::Catalog& catalog = ws_->catalog();
  const datalog::PredicateDecl& decl = catalog.decl(pred);
  std::string name = MagicPredName(decl, a);
  if (!catalog.IsDeclared(name)) ++magic_preds_;
  std::vector<PredId> arg_types;
  for (size_t i = 0; i < decl.arity(); ++i) {
    if ((a >> i) & 1) arg_types.push_back(decl.arg_types[i]);
  }
  auto id = catalog.DeclarePredicate(name, std::move(arg_types), false);
  if (!id.ok()) return id.status();
  return name;
}

Result<datalog::Atom> QueryEngine::BatchSeedGuard(
    std::vector<FactUpdate>* seeds) {
  datalog::Catalog& catalog = ws_->catalog();
  if (batch_seed_pred_.empty()) {
    batch_seed_pred_ = "magic$seed$" + std::to_string(batch_counter_++);
    auto id = catalog.DeclarePredicate(batch_seed_pred_,
                                       {catalog.string_type()}, false);
    if (!id.ok()) return id.status();
    seeds->push_back({batch_seed_pred_, {Value::Str("go")}});
  }
  datalog::Atom guard;
  guard.pred.name = batch_seed_pred_;
  guard.args.push_back(datalog::Term::Var(
      "SbSeed$" + std::to_string(guard_var_counter_++)));
  return guard;
}

Status QueryEngine::CollectFullSlice(PredId pred, datalog::Program* batch,
                                     std::vector<FactUpdate>* seeds) {
  if (full_ready_.insert(pred).second) ++full_slices_;
  const std::vector<datalog::Rule>& rules = ws_->deferred_rules();
  for (size_t ridx : index_->SliceRules(pred)) {
    if (!installed_full_.insert(ridx).second) continue;
    datalog::Rule guarded = rules[ridx];
    SB_ASSIGN_OR_RETURN(datalog::Atom guard, BatchSeedGuard(seeds));
    guarded.body.insert(guarded.body.begin(),
                        datalog::Literal::MakeAtom(std::move(guard)));
    batch->rules.push_back(std::move(guarded));
  }
  // Every IDB predicate in the closure now has all its producers
  // installed: the whole sub-slice is complete.
  for (PredId p : index_->SliceClosure(pred)) {
    if (index_->IsIdb(p)) full_ready_.insert(p);
  }
  return Status::OK();
}

Status QueryEngine::CollectAdorned(PredId root, Adornment root_a,
                                   datalog::Program* batch,
                                   std::vector<FactUpdate>* seeds) {
  datalog::Catalog& catalog = ws_->catalog();
  const std::vector<datalog::Rule>& rules = ws_->deferred_rules();
  const datalog::BuiltinSignatureMap sigs = ws_->builtins().Signatures();

  std::vector<std::pair<PredId, Adornment>> work{{root, root_a}};
  while (!work.empty()) {
    auto [q, qa] = work.back();
    work.pop_back();
    if (!index_->IsIdb(q)) continue;
    if (qa == 0 || full_ready_.count(q) || index_->RequiresFull(q) ||
        index_->SliceHasNegatedIdb(q)) {
      // All-free demand, unadornable closure, or negation in the slice:
      // fall back to the unguarded (but still sliced) installation.
      SB_RETURN_IF_ERROR(CollectFullSlice(q, batch, seeds));
      continue;
    }
    auto it = installed_adorned_.find({q, qa});
    size_t from = it == installed_adorned_.end() ? 0 : it->second;
    if (from >= rules.size()) continue;
    installed_adorned_[{q, qa}] = rules.size();
    SB_ASSIGN_OR_RETURN(std::string magic_name, EnsureMagicPred(q, qa));

    for (size_t ridx : index_->ProducersOf(q)) {
      if (ridx < from) continue;  // covered by an earlier install
      const datalog::Rule& rule = rules[ridx];
      const datalog::Atom& head = rule.heads[0];

      // The guard: the demanded patterns for this head's bound positions.
      datalog::Atom guard;
      guard.pred.name = magic_name;
      for (size_t i = 0; i < head.args.size(); ++i) {
        if ((qa >> i) & 1) guard.args.push_back(head.args[i]);
      }

      // Answer rule: head <- batch_seed, magic guard, original body. The
      // batch seed makes a freshly installed copy evaluate over
      // pre-existing data (including magic facts seeded before this
      // install); afterwards it is a one-tuple join the planner folds
      // away.
      datalog::Rule answer;
      answer.heads = {head};
      SB_ASSIGN_OR_RETURN(datalog::Atom bseed, BatchSeedGuard(seeds));
      answer.body.push_back(datalog::Literal::MakeAtom(std::move(bseed)));
      answer.body.push_back(datalog::Literal::MakeAtom(guard));
      for (const datalog::Literal& lit : rule.body) {
        answer.body.push_back(lit);
      }
      batch->rules.push_back(std::move(answer));

      // Left-to-right sideways information passing: walk the body tracking
      // bound variables, emitting a magic rule + demand per IDB subgoal.
      //
      // Magic-rule bodies carry only the *bindable prefix*: literals whose
      // variables are available left-to-right (the checker binds from the
      // whole body, so a truncated body may not contain a comparison,
      // negation, or builtin whose variables were bound further right).
      // Dropping such literals over-approximates demand, which is sound —
      // the answer rules still carry the full original body.
      std::unordered_set<std::string> bound;
      for (size_t i = 0; i < head.args.size(); ++i) {
        if (((qa >> i) & 1) &&
            head.args[i]->kind == datalog::TermKind::kVar) {
          bound.insert(head.args[i]->name);
        }
      }
      auto all_bound = [&bound](const datalog::TermPtr& t) {
        std::vector<datalog::TermPtr> stack{t};
        while (!stack.empty()) {
          datalog::TermPtr cur = stack.back();
          stack.pop_back();
          if (cur == nullptr) continue;
          if (cur->kind == datalog::TermKind::kVar &&
              !bound.count(cur->name)) {
            return false;
          }
          if (cur->kind == datalog::TermKind::kArith) {
            stack.push_back(cur->lhs);
            stack.push_back(cur->rhs);
          }
        }
        return true;
      };
      std::vector<datalog::Literal> prefix;
      for (const datalog::Literal& lit : rule.body) {
        if (lit.kind == datalog::Literal::Kind::kCompare) {
          // `V = <expr>` with the other side bound is an assignment.
          if (lit.cmp.op == datalog::CmpOp::kEq) {
            if (lit.cmp.lhs->kind == datalog::TermKind::kVar &&
                !bound.count(lit.cmp.lhs->name) && all_bound(lit.cmp.rhs)) {
              bound.insert(lit.cmp.lhs->name);
              prefix.push_back(lit);
              continue;
            }
            if (lit.cmp.rhs->kind == datalog::TermKind::kVar &&
                !bound.count(lit.cmp.rhs->name) && all_bound(lit.cmp.lhs)) {
              bound.insert(lit.cmp.rhs->name);
              prefix.push_back(lit);
              continue;
            }
          }
          // Fully bound comparisons filter demand; others are dropped.
          if (all_bound(lit.cmp.lhs) && all_bound(lit.cmp.rhs)) {
            prefix.push_back(lit);
          }
          continue;
        }
        const datalog::Atom& atom = lit.atom;
        if (atom.negated) {
          // Keep the probe only when every (non-anonymous) variable is
          // already bound; it binds nothing either way.
          bool ok = true;
          for (const datalog::TermPtr& t : atom.args) {
            if (t->kind == datalog::TermKind::kVar && !bound.count(t->name) &&
                t->name.rfind("_anon", 0) != 0) {
              ok = false;
            }
          }
          if (ok) prefix.push_back(lit);
          continue;
        }
        auto sig = sigs.find(atom.pred.name);
        if (sig != sigs.end()) {
          bool inputs_ok = true;
          for (int i = 0; i < sig->second.num_inputs &&
                          i < static_cast<int>(atom.args.size());
               ++i) {
            if (atom.args[i]->kind == datalog::TermKind::kVar &&
                !bound.count(atom.args[i]->name)) {
              inputs_ok = false;
            }
          }
          if (!inputs_ok) continue;  // outputs stay free downstream
          for (size_t i = sig->second.num_inputs; i < atom.args.size();
               ++i) {
            if (atom.args[i]->kind == datalog::TermKind::kVar) {
              bound.insert(atom.args[i]->name);
            }
          }
          prefix.push_back(lit);
          continue;
        }
        SB_ASSIGN_OR_RETURN(PredId pid, catalog.Lookup(atom.pred.name));
        if (index_->IsIdb(pid)) {
          Adornment sub_a = 0;
          for (size_t i = 0; i < atom.args.size() && i < 32; ++i) {
            const datalog::TermPtr& t = atom.args[i];
            if (t->kind == datalog::TermKind::kConst ||
                (t->kind == datalog::TermKind::kVar &&
                 bound.count(t->name))) {
              sub_a |= 1u << i;
            }
          }
          bool sub_magic = sub_a != 0 && !full_ready_.count(pid) &&
                           !index_->RequiresFull(pid) &&
                           !index_->SliceHasNegatedIdb(pid);
          if (sub_magic) {
            SB_ASSIGN_OR_RETURN(std::string sub_name,
                                EnsureMagicPred(pid, sub_a));
            // magic$sub$a(bound args) <- batch_seed, magic$q$qa(...),
            //                            bindable body prefix.
            datalog::Rule mrule;
            datalog::Atom mhead;
            mhead.pred.name = sub_name;
            for (size_t i = 0; i < atom.args.size(); ++i) {
              if ((sub_a >> i) & 1) mhead.args.push_back(atom.args[i]);
            }
            mrule.heads = {std::move(mhead)};
            SB_ASSIGN_OR_RETURN(datalog::Atom mseed, BatchSeedGuard(seeds));
            mrule.body.push_back(datalog::Literal::MakeAtom(std::move(mseed)));
            mrule.body.push_back(datalog::Literal::MakeAtom(guard));
            for (const datalog::Literal& p : prefix) mrule.body.push_back(p);
            batch->rules.push_back(std::move(mrule));
            work.push_back({pid, sub_a});
          } else {
            work.push_back({pid, 0});  // degrades to the full sub-slice
          }
        }
        for (const datalog::TermPtr& t : atom.args) {
          if (t->kind == datalog::TermKind::kVar) bound.insert(t->name);
        }
        prefix.push_back(lit);
      }
    }
  }
  return Status::OK();
}

QueryEngine::Stats QueryEngine::stats() const {
  Stats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.warm_hits = warm_hits_.load(std::memory_order_relaxed);
  s.reprobes = reprobes_.load(std::memory_order_relaxed);
  s.slices_installed = slices_installed_;
  s.magic_preds = magic_preds_;
  s.seeds = seeds_;
  s.full_slices = full_slices_;
  s.answer_evictions = answer_evictions_;
  return s;
}

}  // namespace secureblox::engine
