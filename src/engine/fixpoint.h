// Semi-naïve fixpoint driver.
//
// Owns the per-transaction delta bookkeeping and runs the installed rules
// to a fixpoint, one rule group at a time (groups come from the RuleGraph's
// SCC condensation, in topological order per stratum). A rule is only
// re-fired when one of its body predicates has a non-empty delta; a group
// re-enters the worklist only when a predecessor group derives into it.
// Lattice aggregates re-run after each round of their group; stratified
// aggregates recompute on stratum entry — their classical recompute points.
//
// The driver mutates the database exclusively through the FixpointHost
// interface so the workspace keeps ownership of undo logging, entity
// interning, and base-fact bookkeeping.
#ifndef SECUREBLOX_ENGINE_FIXPOINT_H_
#define SECUREBLOX_ENGINE_FIXPOINT_H_

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "engine/eval.h"
#include "engine/rule_graph.h"

namespace secureblox::engine {

/// Per-transaction fixpoint counters (also accumulated in EngineStats).
struct FixpointStats {
  /// Delta rounds executed across all rule groups.
  uint64_t rounds = 0;
  /// Rule evaluations actually executed (a body predicate had a delta).
  uint64_t rule_firings = 0;
  /// Rule evaluations skipped because no body predicate changed — the
  /// saving the dependency index buys over naive per-stratum re-firing.
  uint64_t firings_skipped = 0;
  /// Aggregate recomputations executed / skipped (inputs untouched).
  uint64_t agg_recomputes = 0;
  uint64_t agg_skipped = 0;
  /// Tuples newly derived by rules and aggregates.
  uint64_t derivations = 0;
};

struct FixpointOptions {
  /// Abort the transaction once a fixpoint derives more than this many
  /// tuples *beyond* the seeded deltas (guards non-terminating programs
  /// without capping delete-and-rederive of a large database). The error
  /// names the stratum, rule group, and the rules still producing deltas.
  uint64_t max_derivations = 1000000;
};

/// Database mutation callbacks the driver needs from the workspace.
class FixpointHost {
 public:
  virtual ~FixpointHost() = default;
  /// Normalize (intern entity labels) and insert a rule-head tuple as
  /// derived. Returns true when newly inserted.
  virtual Result<bool> InsertHeadTuple(datalog::PredId pred,
                                       const Tuple& tuple) = 0;
  /// Insert an already-normalized derived tuple (aggregate results).
  virtual Result<bool> InsertDerivedTuple(datalog::PredId pred,
                                          const Tuple& tuple) = 0;
  /// Erase a tuple (stale aggregate results), with undo logging.
  virtual Status EraseTuple(datalog::PredId pred, const Tuple& tuple) = 0;
  /// Bind a rule's head-existential slots in `env` (memoized entity
  /// creation); appends the slots bound to `bound_here`.
  virtual Status BindExistentials(const CompiledRule& rule, Env* env,
                                  std::vector<int>* bound_here) = 0;
};

class FixpointDriver {
 public:
  /// All pointers are borrowed and must outlive the driver.
  FixpointDriver(const RuleGraph* graph,
                 const std::vector<CompiledRule>* rules, EvalContext* ctx,
                 RelationStore* store, FixpointHost* host,
                 const FixpointOptions* options);

  // -- per-transaction delta bookkeeping ------------------------------------

  /// Reset delta queues and counters for a new transaction.
  void Begin();
  /// Route a newly inserted tuple to the consuming rule groups.
  void NotifyInsert(datalog::PredId pred, const Tuple& tuple);
  /// Remove a tuple from all unconsumed delta queues (tuple erased before
  /// being seen, e.g. replaced aggregate results).
  void NotifyErase(datalog::PredId pred, const Tuple& tuple);
  /// Extend this transaction's derivation budget: delete-and-rederive
  /// over-deletes the derived database and re-derives it, which must not
  /// count against the runaway-program cap.
  void AddBudgetSlack(uint64_t derivations) { budget_slack_ += derivations; }

  /// Run installed rules to fixpoint over the queued deltas.
  Status Run();

  /// Counters for the transaction since Begin().
  const FixpointStats& stats() const { return stats_; }

 private:
  using DeltaMap = std::map<datalog::PredId, std::vector<Tuple>>;

  bool HasPendingWork() const;
  bool HasDeltaFor(const CompiledRule& rule, const DeltaMap& delta) const;
  bool TouchedAny(const CompiledRule& rule) const;

  Status RunStratum(int stratum);
  Status RunGroup(const RuleGroup& group);
  Status RunRuleVariants(const CompiledRule& rule, const DeltaMap& delta);
  Status InstantiateHeads(const CompiledRule& rule, Env& env,
                          std::vector<std::pair<datalog::PredId, Tuple>>*
                              pending);
  Status RecomputeAggregate(const CompiledRule& rule, bool lattice);
  Status CheckBudget(const RuleGroup& group);

  const RuleGraph& graph_;
  const std::vector<CompiledRule>& rules_;
  EvalContext& ctx_;
  RelationStore& store_;
  FixpointHost& host_;
  const FixpointOptions& options_;

  /// Unconsumed delta queues, one per rule group.
  std::vector<DeltaMap> pending_;
  /// Predicates touched (insert or erase) anywhere in the transaction —
  /// gates stratified-aggregate recomputation.
  std::unordered_set<datalog::PredId> touched_;
  FixpointStats stats_;
  /// max_derivations plus this run's seeded/rederived volume (set by Run()).
  uint64_t budget_limit_ = 0;
  uint64_t budget_slack_ = 0;
};

}  // namespace secureblox::engine

#endif  // SECUREBLOX_ENGINE_FIXPOINT_H_
