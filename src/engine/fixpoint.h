// Semi-naïve fixpoint driver with counting-based incremental deletion and
// a parallel, bulk-synchronous evaluation core.
//
// Owns the per-transaction delta bookkeeping and runs the installed rules
// to a fixpoint over the RuleGraph's SCC-condensed rule groups. Scheduling
// is wave-based: within a stratum, the driver sweeps the groups in
// topological order and gathers every pending group whose predicate
// footprint (heads + body reads) is disjoint from the wave collected so
// far — such groups neither feed nor observe one another, so draining
// them together is indistinguishable from draining them one at a time.
//
// Each wave round splits into two phases:
//   - an *enumeration* phase that fires every parallel-safe rule's
//     semi-naïve variants on the worker pool, with each delta first cut on
//     the target relation's shard boundaries (equal-shard-key tuples stay
//     together — shard-local probes are cache-local) and large shard
//     partitions further split into fixed-size windows so one rule's
//     firing spreads across workers; relations
//     are frozen (no writer exists), so enumeration is a pure read against
//     the pre-round snapshot and tasks stage derived tuples into private
//     buffers;
//   - a *merge* phase on the coordinating thread that applies the staged
//     buffers in a fixed order (group, rule, occurrence, shard, window),
//     runs
//     rules with side effects (head existentials, thread-unsafe builtins)
//     the classic sequential way, re-runs lattice aggregates, and routes
//     new deltas into the (multi-producer) per-group queues.
//
// The work decomposition — waves, rounds, chunks, merge order — depends
// only on the program, the data, and the shard count, never on the thread
// count, so any `threads` setting produces the byte-identical fixpoint
// (same tuples, same support counts, same entity labels) as threads=1.
// Across *shard* counts the decomposition differs (chunks follow shard
// boundaries), but per-round delta sets, derivation multisets, and
// content-addressed entity labels are all order-insensitive, so the final
// fixpoint — tuples, support counts, labels — is byte-identical at any
// SB_SHARDS x SB_THREADS combination; only task counts change.
//
// Lattice aggregates re-run after each round of their group; stratified
// aggregates recompute on stratum entry — their classical recompute points.
//
// Deletions propagate incrementally. Every derived tuple carries a
// derivation-support count (Relation::SupportCount) that insert rounds
// keep exact via mixed semi-naïve variants. A delete delta is processed
// per group:
//   - non-recursive groups enumerate exactly the destroyed rule
//     instantiations (the delta at one occurrence, erased tuples restored
//     at later occurrences) and drop one support per instantiation; a
//     tuple whose support reaches zero — and that is not a base fact — is
//     erased and cascades downstream; the destroyed-instantiation
//     enumeration is chunked onto the pool like the insert path;
//   - recursive groups, and groups whose negation probes flipped, fall
//     back to group-local DRed: over-delete the closure of groups sharing
//     head predicates, reseed just those groups from their body
//     predicates, and re-run them to a local fixpoint (the reseed deltas
//     are large, so this path gains the most from chunked enumeration).
//     Rescued tuples annihilate against their own delete deltas in
//     downstream queues, so downstream work is proportional to the net
//     change.
//
// The driver mutates the database exclusively through the FixpointHost
// interface — only ever from the merge phase — so the workspace keeps
// single-threaded ownership of undo logging, entity interning, and
// base-fact bookkeeping.
#ifndef SECUREBLOX_ENGINE_FIXPOINT_H_
#define SECUREBLOX_ENGINE_FIXPOINT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "engine/eval.h"
#include "engine/rule_graph.h"
#include "engine/worker_pool.h"

namespace secureblox::engine {

struct ShardPlacement;

/// Per-transaction fixpoint counters (also accumulated in EngineStats).
struct FixpointStats {
  /// Delta rounds executed across all rule groups.
  uint64_t rounds = 0;
  /// Rule evaluations actually executed (a body predicate had a delta).
  uint64_t rule_firings = 0;
  /// Rule evaluations skipped because no body predicate changed — the
  /// saving the dependency index buys over naive per-stratum re-firing.
  uint64_t firings_skipped = 0;
  /// Aggregate recomputations executed / skipped (inputs untouched).
  uint64_t agg_recomputes = 0;
  uint64_t agg_skipped = 0;
  /// Tuples newly derived by rules and aggregates.
  uint64_t derivations = 0;
  // -- parallel scheduling ---------------------------------------------------
  /// Scheduling waves (each drains >= 1 footprint-disjoint rule groups).
  uint64_t waves = 0;
  /// Enumeration tasks staged for the worker pool. Independent of the
  /// thread count: the same tasks run inline when threads=1.
  uint64_t parallel_tasks = 0;
  // -- deletion path ---------------------------------------------------------
  /// Retraction rule evaluations (delete-delta analogue of rule_firings).
  uint64_t retract_firings = 0;
  /// Derivation supports dropped by the counting path.
  uint64_t retractions = 0;
  /// Tuples erased by delete propagation (support exhausted, no base fact).
  uint64_t deleted = 0;
  /// Tuples kept alive by an alternative derivation or a base fact, plus
  /// over-deleted tuples rederived by group-local DRed.
  uint64_t rescued = 0;
  /// Group-local DRed invocations (recursive groups / negation flips).
  uint64_t group_rederives = 0;
  /// Tuples reseeded into rederived groups — the rederivation footprint,
  /// bounded by the affected groups instead of the whole database.
  uint64_t rederive_seeded = 0;
  // -- cost-based planning ---------------------------------------------------
  /// Execution plans built or rebuilt (stats drift) this transaction.
  /// Deterministic: planning inputs are thread- and shard-independent.
  uint64_t plans_built = 0;
};

struct FixpointOptions {
  /// Abort the transaction once a fixpoint derives more than this many
  /// tuples *beyond* the seeded deltas (guards non-terminating programs
  /// without capping group-local rederivation). The error names the
  /// stratum, rule group, and the rules still producing deltas.
  uint64_t max_derivations = 1000000;
  /// Worker threads for the enumeration phases (including the calling
  /// thread). 1 = run tasks inline; 0 = one per hardware thread. The
  /// fixpoint result is identical for every value (see file comment).
  /// Seeded from the SB_THREADS environment variable by Workspace.
  int threads = 1;
  /// Hash-partition shards per relation (see relation.h); 1 = the
  /// unsharded layout. Latched into each Relation when it is first
  /// created, so set it before data arrives. Delta chunks are cut on
  /// shard boundaries, and the fixpoint result is identical for every
  /// value. Seeded from the SB_SHARDS environment variable by Workspace.
  size_t shards = 1;
  /// Cost-based rule execution planning (engine/planner.h): reorder body
  /// literals by estimated bound-cardinality per semi-naïve variant and
  /// fix probe strategies statically. false = the compiler's written-order
  /// steps (the pre-planner behavior); the fixpoint is byte-identical
  /// either way. Seeded from SB_PLAN (0/1) by Workspace; read live on
  /// every plan request, so A/B toggling between transactions works.
  bool plan = true;
  /// Dictionary-encoded column-segment relation storage (see relation.h):
  /// each shard stores rows as contiguous per-column u32 code vectors and
  /// scans/probes compare codes instead of values. false = the row-major
  /// tuple layout; the fixpoint is byte-identical either way. Latched into
  /// each Relation when it is first created, so set it before data
  /// arrives. Seeded from SB_COLUMNAR (0/1) by Workspace.
  bool columnar = true;
  /// SIMD level for the columnar filter kernels (engine/kernels.h):
  /// 0 = scalar, 1 = the best level the CPU supports, 2 = auto (runtime
  /// dispatch — the same resolution as 1, kept distinct so "explicitly
  /// requested" and "defaulted" are distinguishable). The fixpoint is
  /// byte-identical at every level: kernels only change how a selection
  /// vector is computed, never its contents or order. Seeded from SB_SIMD
  /// (0/1/auto) by Workspace.
  int simd = 2;
  /// Dump each built plan to stderr (SB_EXPLAIN=1; format in
  /// docs/engine.md).
  bool explain = false;
  /// Partitioned shard placement (engine/placement.h): non-null when this
  /// workspace owns a subset of each placed relation's shards. Mutations
  /// targeting remote shards are staged on the commit (TxCommit::remote)
  /// instead of applied locally. Borrowed; must outlive the workspace's
  /// transactions. nullptr = the replicated baseline.
  const ShardPlacement* placement = nullptr;
};

/// Database mutation callbacks the driver needs from the workspace.
class FixpointHost {
 public:
  virtual ~FixpointHost() = default;
  /// Normalize (intern entity labels) and insert a rule-head tuple as
  /// derived, adding one derivation support. Returns true when newly
  /// inserted.
  virtual Result<bool> InsertHeadTuple(datalog::PredId pred,
                                       const Tuple& tuple) = 0;
  /// Insert an already-normalized derived tuple (aggregate results; no
  /// support counting — aggregates are recompute-managed).
  virtual Result<bool> InsertDerivedTuple(datalog::PredId pred,
                                          const Tuple& tuple) = 0;
  /// Erase a tuple (stale aggregate results), with undo logging.
  virtual Status EraseTuple(datalog::PredId pred, const Tuple& tuple) = 0;
  /// Drop one derivation support (counting deletion). Erases the tuple and
  /// cascades a delete delta when support is exhausted and the tuple is
  /// not a base fact. Returns true when the tuple was erased.
  virtual Result<bool> RetractSupport(datalog::PredId pred,
                                      const Tuple& tuple) = 0;
  /// Group-local DRed over-delete: erase every non-base tuple of `pred`
  /// (cascading delete deltas) and zero the support of surviving base
  /// facts, so rederivation recounts from scratch. Returns the number of
  /// tuples erased — rederiving them is not runaway work and extends the
  /// derivation budget.
  virtual Result<uint64_t> OverDeleteDerived(datalog::PredId pred) = 0;
  /// Bind a rule's head-existential slots in `env` (memoized entity
  /// creation); appends the slots bound to `bound_here`.
  virtual Status BindExistentials(const CompiledRule& rule, Env* env,
                                  std::vector<int>* bound_here) = 0;
};

class ExecPlanner;

class FixpointDriver {
 public:
  /// All pointers are borrowed and must outlive the driver.
  FixpointDriver(const RuleGraph* graph,
                 const std::vector<CompiledRule>* rules, EvalContext* ctx,
                 RelationStore* store, FixpointHost* host,
                 const FixpointOptions* options);
  ~FixpointDriver();

  // -- per-transaction delta bookkeeping ------------------------------------

  /// Reset delta queues and counters for a new transaction.
  void Begin();
  /// Route a newly inserted tuple to the consuming rule groups; annihilates
  /// a matching unconsumed delete delta (the tuple was rescued).
  void NotifyInsert(datalog::PredId pred, const Tuple& tuple);
  /// Route an erased tuple as a delete delta; cancels a matching unconsumed
  /// insert delta instead (the tuple never fired downstream).
  void NotifyDelete(datalog::PredId pred, const Tuple& tuple);

  /// Run installed rules to fixpoint over the queued deltas.
  Status Run();

  /// Counters for the transaction since Begin().
  const FixpointStats& stats() const { return stats_; }

 private:
  using DeltaMap = std::map<datalog::PredId, std::vector<Tuple>>;

  /// Paired insert/delete queues with annihilation: an add cancels a
  /// pending del of the same tuple and vice versa, so a tuple that is
  /// erased and rederived within one transaction causes no downstream
  /// work. Queues are multi-producer (every upstream group's merge phase
  /// routes into them) and single-consumer (the owning group's rounds);
  /// the wave barrier orders producers and consumer, so no per-queue lock
  /// is needed.
  struct ChangeQueue {
    DeltaMap adds;
    DeltaMap dels;
    bool empty() const { return adds.empty() && dels.empty(); }
    void clear() {
      adds.clear();
      dels.clear();
    }
  };

  /// One staged enumeration: a semi-naïve variant of one rule restricted
  /// to a chunk of the delta at one occurrence, with a private result
  /// buffer. Defined in the .cc.
  struct EnumTask;

  static bool EraseFromDeltaMap(DeltaMap* m, datalog::PredId pred,
                                const Tuple& tuple);
  static void PushToDeltaMap(DeltaMap* m, datalog::PredId pred,
                             const Tuple& tuple);

  bool HasPendingWork() const;
  bool HasRetractWork(int gid) const;
  bool HasDeltaFor(const CompiledRule& rule, const DeltaMap& delta) const;
  bool TouchedAny(const CompiledRule& rule) const;

  Status RunStratum(int stratum);
  /// Topo-greedy wave starting at order[from]: every later pending group
  /// whose footprint is disjoint from the wave so far (and that has no
  /// retract work, which must run first) joins.
  std::vector<int> CollectWave(const std::vector<int>& order,
                               size_t from) const;
  /// Drain every wave member to its local fixpoint: rounds of a parallel
  /// enumeration phase followed by a deterministic sequential merge.
  Status RunWave(const std::vector<int>& wave);
  /// Sequential (merge-phase) evaluation of one rule's insert variants —
  /// rules with side effects, and the pre-parallel reference semantics.
  Status RunRuleVariants(const CompiledRule& rule, const DeltaMap& delta,
                         int gid);
  /// Counting retraction / group-local DRed dispatch for one group's
  /// pending delete deltas and negation flips.
  Status ProcessRetractions(int gid);
  Status RunRetractVariants(const CompiledRule& rule, const DeltaMap& dels,
                            int gid);
  /// Group-local DRed: over-delete the head-sharing closure around `gid`,
  /// reseed those groups from their body predicates, re-run to a local
  /// fixpoint.
  Status RederiveCluster(int gid);
  Status InstantiateHeads(const CompiledRule& rule, Env& env,
                          std::vector<std::pair<datalog::PredId, Tuple>>*
                              pending);
  Status RecomputeAggregate(const CompiledRule& rule, bool lattice);
  Status CheckBudget(const RuleGroup& group);

  // -- parallel enumeration machinery ---------------------------------------

  /// Create relations for every predicate the rule bodies read, so worker
  /// threads never take the lazy-creation path. Once per transaction.
  void EnsureRelations();
  /// Build the secondary indexes the rule's probes will hit (masks are
  /// static per compiled step), so worker threads only read them.
  void WarmIndexes(const CompiledRule& rule, size_t rule_idx);
  /// Fill the per-occurrence views for `rule`'s variant firing at `occ`
  /// (views[occ].only is set by the caller). The single source of the
  /// mixed semi-naïve exclusion logic: insert mode hides the delta from
  /// earlier occurrences; retract mode restores erased tuples at later
  /// occurrences; both hide `unconsumed` insert deltas whose
  /// instantiations were never counted.
  static void BuildVariantViews(const CompiledRule& rule,
                                const DeltaMap& delta,
                                const DeltaMap& unconsumed, int occ,
                                bool retract, std::vector<OccView>* views,
                                std::vector<TupleSet>* excl);
  /// Stage chunked variant tasks for one rule over `delta` (insert mode)
  /// or `dels` (retract mode) into `tasks`.
  void StageVariantTasks(const CompiledRule& rule, size_t rule_idx, int gid,
                         const DeltaMap& delta, bool retract,
                         std::vector<std::unique_ptr<EnumTask>>* tasks);
  /// Run staged tasks on the pool (inline when threads=1); fails with the
  /// first task error in staging order.
  Status RunStagedTasks(std::vector<std::unique_ptr<EnumTask>>* tasks);
  /// The cost-based planner, created on first use; nullptr while
  /// options_.plan is off (checked live, so benches can A/B between
  /// transactions). Only called from single-threaded phases.
  ExecPlanner* planner();
  /// Build the secondary indexes a plan's probes will hit before worker
  /// threads read them (the planned analogue of WarmIndexes).
  void WarmPlanMasks(const VariantPlan& plan);
  /// Refresh sorted-run metadata for every single-column filtered full
  /// scan in `steps` (planner-chosen kScanAll probes over columnar
  /// relations), so worker threads read warm run boundaries — the
  /// executor only ever takes the run fast path when the cache is
  /// current (Relation::SortedRunBoundsIfWarm).
  void WarmScanRuns(const std::vector<Step>& steps);
  /// Apply the staged buffers tasks[begin, end) — one rule's contiguous
  /// staging range — in order: InsertHeadTuple for insert tasks,
  /// RetractSupport for retract tasks.
  Status ApplyStagedTasks(std::vector<std::unique_ptr<EnumTask>>& tasks,
                          size_t begin, size_t end);
  WorkerPool* pool();

  const RuleGraph& graph_;
  const std::vector<CompiledRule>& rules_;
  EvalContext& ctx_;
  RelationStore& store_;
  FixpointHost& host_;
  const FixpointOptions& options_;

  /// Unconsumed insert/delete deltas, one queue pair per rule group.
  std::vector<ChangeQueue> delta_;
  /// Net content changes to predicates a group negates (flip triggers);
  /// only emptiness matters, but annihilation keeps transient over-delete/
  /// rederive churn from re-arming the group.
  std::vector<ChangeQueue> neg_;
  /// Groups currently being (re)computed: their own erasure churn (lattice
  /// improvement, over-delete) must not re-queue them.
  std::unordered_set<int> active_;
  /// Predicates touched (insert or erase) anywhere in the transaction —
  /// gates stratified-aggregate recomputation.
  std::unordered_set<datalog::PredId> touched_;
  FixpointStats stats_;
  /// max_derivations plus this run's seeded/rederived volume.
  uint64_t budget_limit_ = 0;
  /// Probe (pred, mask) pairs per rule, resolved on first use.
  std::vector<std::vector<std::pair<datalog::PredId, uint32_t>>>
      probe_masks_;
  std::vector<bool> probe_masks_ready_;
  bool relations_ensured_ = false;
  std::unique_ptr<WorkerPool> pool_;
  std::unique_ptr<ExecPlanner> planner_;
  /// planner()->plans_built() at Begin(): Run() reports the delta.
  uint64_t plans_built_at_begin_ = 0;
};

}  // namespace secureblox::engine

#endif  // SECUREBLOX_ENGINE_FIXPOINT_H_
