// Rule/constraint compilation and body execution.
//
// A rule body compiles to an ordered list of steps (greedy ordering: cheap
// filters first, then functional lookups, negation probes, builtins, and
// scans by descending boundness). Execution enumerates bindings over an
// environment of value slots. Semi-naïve evaluation re-runs each rule once
// per scan occurrence with that occurrence reading the round's delta.
//
// Head existentials (unbound head variables in entity-typed positions)
// create fresh entities, memoized per (rule, binding of head-relevant
// variables) so re-evaluation is idempotent.
#ifndef SECUREBLOX_ENGINE_EVAL_H_
#define SECUREBLOX_ENGINE_EVAL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/catalog.h"
#include "engine/builtins.h"
#include "engine/relation.h"

namespace secureblox::engine {

/// Source of relations during execution (implemented by Workspace).
class RelationStore {
 public:
  virtual ~RelationStore() = default;
  virtual Relation* GetRelation(datalog::PredId pred) = 0;
};

/// Environment: one optional value slot per rule variable.
using Env = std::vector<std::optional<datalog::Value>>;

/// Compiled term: variable slots resolved.
struct CExpr {
  enum class Kind { kSlot, kConst, kArith };
  Kind kind = Kind::kConst;
  int slot = -1;
  datalog::Value constant;
  char op = 0;
  std::shared_ptr<CExpr> lhs, rhs;
};

/// Compiled atom argument pattern.
struct ArgPat {
  enum class Kind {
    kBound,  // slot already holds a value: match/compare
    kBind,   // slot unbound: bind from the tuple / builtin output
    kConst,  // literal constant: match
    kWild,   // anonymous variable in a negation probe: matches anything
  };
  Kind kind = Kind::kConst;
  int slot = -1;
  datalog::Value constant;
};

struct Step {
  enum class Kind {
    kScan,      // enumerate relation (or the round's delta) by pattern
    kLookup,    // functional atom with all keys bound: one probe
    kNegCheck,  // negated atom: probe by bound columns, fail if any match
    kCompare,   // comparison over bound expressions
    kAssign,    // bind a slot from an expression
    kBuiltin,   // builtin function call
    kTypeCheck, // primitive type predicate over a bound slot
  };
  Kind kind;
  datalog::PredId pred = datalog::kInvalidPred;
  std::vector<ArgPat> args;
  int occurrence = -1;  // kScan: index among this body's scan occurrences
  datalog::CmpOp cmp_op = datalog::CmpOp::kEq;
  std::shared_ptr<CExpr> lhs, rhs;  // kCompare: both; kAssign: rhs
  int assign_slot = -1;
  const BuiltinImpl* builtin = nullptr;
  std::string builtin_name;
  datalog::ValueKind check_kind = datalog::ValueKind::kInt;  // kTypeCheck
};

struct CompiledHead {
  datalog::PredId pred = datalog::kInvalidPred;
  std::vector<ArgPat> args;  // kBind entries are existential slots
};

struct CompiledAgg {
  datalog::AggFunc func;
  int input_slot = -1;  // -1 for count
  // Head (single, functional): key arg patterns; value is the agg result.
  datalog::PredId head_pred = datalog::kInvalidPred;
  std::vector<ArgPat> key_args;
  bool lattice = false;  // recursive min/max: monotone improvement semantics
};

struct CompiledRule {
  datalog::Rule source;
  int id = 0;
  int stratum = 0;
  size_t num_slots = 0;
  std::vector<std::string> slot_names;
  std::vector<Step> steps;
  std::vector<CompiledHead> heads;            // empty for aggregate rules
  std::optional<CompiledAgg> agg;
  int num_scan_occurrences = 0;
  std::vector<datalog::PredId> scan_preds;    // indexed by occurrence
  // Head existentials.
  std::vector<int> existential_slots;
  std::vector<datalog::PredId> existential_types;
  std::vector<int> memo_key_slots;  // bound slots used anywhere in heads
  /// Body enumeration is free of side effects (no head existentials, no
  /// thread-unsafe builtins), so the parallel fixpoint may run it on
  /// worker threads; other rules are pinned to the sequential merge phase.
  bool parallel_safe = true;
};

struct CompiledConstraint {
  datalog::ConstraintDecl source;
  int id = 0;
  size_t num_slots = 0;
  std::vector<std::string> slot_names;
  std::vector<Step> lhs_steps;
  std::vector<Step> rhs_steps;
  int num_scan_occurrences = 0;               // lhs only
  std::vector<datalog::PredId> scan_preds;    // lhs scans by occurrence
};

/// Compiles analyzed rules/constraints against a catalog + builtin registry.
class RuleCompiler {
 public:
  RuleCompiler(const datalog::Catalog& catalog,
               const BuiltinRegistry& builtins)
      : catalog_(catalog), builtins_(builtins) {}

  Result<CompiledRule> CompileRule(const datalog::Rule& rule, int id) const;
  Result<CompiledConstraint> CompileConstraint(
      const datalog::ConstraintDecl& c, int id) const;

 private:
  const datalog::Catalog& catalog_;
  const BuiltinRegistry& builtins_;
};

using TupleSet = std::unordered_set<Tuple, TupleHash>;

/// Per-occurrence relation view for exact (counting) delta enumeration:
///  - `only`: the occurrence reads exactly these tuples (a delta), or the
///    [only_begin, only_end) slice of them — the parallel fixpoint chunks
///    a large delta across workers without copying it;
///  - `exclude`: tuples skipped when reading the relation (deltas that a
///    variant with a later occurrence will cover, or queued inserts whose
///    derivations have not been counted yet);
///  - `extra`: tuples appended to the relation's contents (tuples already
///    erased, restored so retraction variants see the pre-delete state).
struct OccView {
  const std::vector<Tuple>* only = nullptr;
  size_t only_begin = 0;
  size_t only_end = SIZE_MAX;  // clamped to only->size()
  const TupleSet* exclude = nullptr;
  const std::vector<Tuple>* extra = nullptr;
  bool active() const { return only || exclude || extra; }
};

/// Delta override: scan occurrence `occurrence` reads `tuples` instead of
/// the full relation (semi-naïve variants, constraint delta checks).
/// `views`, when set, gives a per-occurrence view and wins over the
/// single-occurrence shorthand.
struct DeltaOverride {
  int occurrence = -1;
  const std::vector<Tuple>* tuples = nullptr;
  const std::vector<OccView>* views = nullptr;
};

/// Executes compiled step lists.
class Executor {
 public:
  Executor(EvalContext* ctx, RelationStore* store)
      : ctx_(*ctx), store_(*store) {}

  /// Enumerate all bindings of `steps`; invoke `on_match` for each.
  /// `on_match` returning an error aborts enumeration.
  Status Run(const std::vector<Step>& steps, Env* env,
             const DeltaOverride* delta,
             const std::function<Status(Env&)>& on_match);

  /// Existence check: do `steps` admit at least one binding, starting from
  /// the (partially bound) environment? Used for constraint rhs.
  Result<bool> Exists(const std::vector<Step>& steps, Env* env);

  /// Compare two values under `op`, coercing entity-vs-string comparisons
  /// through entity labels.
  Result<bool> Compare(const datalog::Value& a, datalog::CmpOp op,
                       const datalog::Value& b);

  Result<datalog::Value> Eval(const CExpr& e, const Env& env);

 private:
  Status RunFrom(const std::vector<Step>& steps, size_t idx, Env& env,
                 const DeltaOverride* delta,
                 const std::function<Status(Env&)>& on_match);

  EvalContext& ctx_;
  RelationStore& store_;
  /// Per-step-depth probe keys, reused across bindings instead of
  /// allocating a fresh Tuple per index lookup (hot join path).
  std::vector<Tuple> key_scratch_;
};

// (Stratification and the rule dependency graph live in engine/rule_graph.)

}  // namespace secureblox::engine

#endif  // SECUREBLOX_ENGINE_EVAL_H_
